package kfusion

// Synthesis surface: the simulated world, Web corpus, extractor fleet and
// bundled datasets behind every reproduced experiment.

import (
	"kfusion/internal/exper"
	"kfusion/internal/extract"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Synthesis types.
type (
	// World is the synthetic ground truth.
	World = world.World
	// WorldConfig parameterizes world generation.
	WorldConfig = world.Config
	// Corpus is the synthetic crawled Web.
	Corpus = web.Corpus
	// CorpusConfig parameterizes corpus generation.
	CorpusConfig = web.Config
	// Extraction is one extracted (triple, provenance) pair.
	Extraction = extract.Extraction
	// ExtractorSuite is the 12-extractor fleet.
	ExtractorSuite = extract.Suite
	// Snapshot is the incomplete trusted KB ("Freebase").
	Snapshot = world.Snapshot
	// Dataset bundles world, corpus, extractions and gold standard.
	Dataset = exper.Dataset
	// Scale selects a dataset size.
	Scale = exper.Scale
)

// Dataset scales.
const (
	// ScaleSmall builds in well under a second; good for tests and demos.
	ScaleSmall = exper.ScaleSmall
	// ScaleBench is the scale behind the reported reproduction numbers.
	ScaleBench = exper.ScaleBench
)

// Synthesis constructors.
var (
	// GenerateWorld builds a ground-truth world from a configuration.
	GenerateWorld = world.Generate
	// DefaultWorldConfig is a unit-test-scale world configuration.
	DefaultWorldConfig = world.DefaultConfig
	// GenerateCorpus crawls a world into a Web corpus.
	GenerateCorpus = web.Generate
	// DefaultCorpusConfig is a unit-test-scale corpus configuration.
	DefaultCorpusConfig = web.DefaultConfig
	// NewExtractorSuite builds the 12 simulated extractors over a world.
	NewExtractorSuite = extract.NewSuite
	// BuildFreebase carves the incomplete trusted snapshot out of a world.
	BuildFreebase = world.BuildFreebase
	// Synthesize builds a complete dataset (world, corpus, extractions,
	// gold standard) at the given scale and seed.
	Synthesize = exper.NewDataset
)
