// Command kfeval evaluates fused triples against gold labels: calibration
// curve, deviation, weighted deviation, AUC-PR and the predicted-probability
// distribution.
//
// Usage:
//
//	kfeval -fused fused.jsonl -gold gold.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"kfusion/internal/eval"
	"kfusion/internal/kfio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfeval: ")
	var (
		fusedIn = flag.String("fused", "fused.jsonl", "fused triples input")
		goldIn  = flag.String("gold", "gold.jsonl", "gold labels input")
		buckets = flag.Int("buckets", 20, "calibration buckets (the paper uses 20)")
	)
	flag.Parse()

	gf, err := os.Open(*goldIn)
	if err != nil {
		log.Fatal(err)
	}
	labeler, nLabels, err := kfio.ReadGold(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Stream the fused triples instead of materializing the whole result:
	// evaluation only needs (probability, label) pairs and counters, so
	// arbitrarily large fused feeds evaluate in bounded memory (plus the
	// retained pairs).
	ff, err := os.Open(*fusedIn)
	if err != nil {
		log.Fatal(err)
	}
	fr := kfio.NewFusedReader(ff)
	var preds []eval.Prediction
	var probs []float64
	total, unpredicted, unlabeled := 0, 0, 0
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		total++
		if !f.Predicted {
			unpredicted++
			continue
		}
		probs = append(probs, f.Probability)
		label, ok := labeler(f.Triple)
		if !ok {
			unlabeled++
			continue
		}
		preds = append(preds, eval.Prediction{Prob: f.Probability, Label: label})
	}
	ff.Close()

	curve := eval.Calibration(preds, *buckets)
	fmt.Printf("triples: %d fused, %d without probability, %d labeled (%d gold labels on file)\n",
		total, unpredicted, len(preds), nLabels)
	fmt.Printf("deviation:          %.4f\n", curve.Deviation())
	fmt.Printf("weighted deviation: %.4f\n", curve.WeightedDeviation())
	fmt.Printf("AUC-PR:             %.4f\n", eval.AUCPR(preds))
	fmt.Printf("monotonicity:       %.4f\n", eval.Monotonicity(preds))

	fmt.Println("\ncalibration (predicted -> real, n):")
	for _, b := range curve.Buckets {
		if b.N == 0 {
			continue
		}
		bar := renderBar(b.Real)
		fmt.Printf("  [%.2f,%.2f)  %.3f -> %.3f  %6d  %s\n", b.Lo, b.Hi, b.MeanPred, b.Real, b.N, bar)
	}

	dist := eval.Distribution(probs, 10)
	fmt.Println("\npredicted probability distribution:")
	for i, share := range dist {
		label := fmt.Sprintf("[%.1f,%.1f)", float64(i)/10, float64(i+1)/10)
		if i == 10 {
			label = "=1.0     "
		}
		fmt.Printf("  %s %6.2f%%  %s\n", label, 100*share, renderBar(share))
	}
}

func renderBar(v float64) string {
	n := int(v * 40)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	bar := make([]byte, n)
	for i := range bar {
		bar[i] = '#'
	}
	return string(bar)
}
