// Command kfgen synthesizes a knowledge-extraction corpus: a ground-truth
// world, a crawled Web corpus, the output of the 12 simulated extractors
// (written as JSONL extractions) and the LCWA gold standard over the
// extracted triples (written as JSONL labels).
//
// Usage:
//
//	kfgen -scale bench -seed 42 -out extractions.jsonl -gold gold.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kfusion/internal/exper"
	"kfusion/internal/kb"
	"kfusion/internal/kfio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfgen: ")
	var (
		scaleFlag = flag.String("scale", "small", "dataset scale: small or bench")
		seed      = flag.Int64("seed", 42, "generation seed")
		out       = flag.String("out", "extractions.jsonl", "extraction output file")
		goldOut   = flag.String("gold", "", "gold-label output file (optional)")
		quiet     = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()

	scale := exper.ScaleSmall
	switch *scaleFlag {
	case "small":
	case "bench":
		scale = exper.ScaleBench
	default:
		log.Fatalf("unknown -scale %q (want small or bench)", *scaleFlag)
	}

	ds := exper.NewDataset(scale, *seed)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := kfio.WriteExtractions(f, ds.Extractions); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	if *goldOut != "" {
		triples := make([]kb.Triple, 0, len(ds.Extractions))
		for _, x := range ds.Extractions {
			triples = append(triples, x.Triple)
		}
		g, err := os.Create(*goldOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := kfio.WriteGold(g, ds.Gold.Label, triples); err != nil {
			log.Fatal(err)
		}
		if err := g.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if !*quiet {
		fmt.Printf("world: %s\n", ds.World.Stats())
		fmt.Printf("corpus: %d pages on %d sites\n", len(ds.Corpus.Pages), ds.Corpus.NumSites())
		fmt.Printf("extractions: %d (written to %s)\n", len(ds.Extractions), *out)
		if *goldOut != "" {
			labeled, trueN := coverage(ds)
			fmt.Printf("gold: %d labeled, %d true (written to %s)\n", labeled, trueN, *goldOut)
		}
	}
}

func coverage(ds *exper.Dataset) (labeled, trueN int) {
	seen := map[kb.Triple]bool{}
	for _, x := range ds.Extractions {
		if seen[x.Triple] {
			continue
		}
		seen[x.Triple] = true
		if label, ok := ds.Gold.Label(x.Triple); ok {
			labeled++
			if label {
				trueN++
			}
		}
	}
	return labeled, trueN
}
