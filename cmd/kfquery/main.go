// Command kfquery inspects a persisted fused knowledge base (written by
// kfuse -kb or kbstore.Write).
//
// Usage:
//
//	kfquery -kb fused.kb -stats
//	kfquery -kb fused.kb -subject /m/0abc
//	kfquery -kb fused.kb -min-prob 0.9 -limit 20
package main

import (
	"flag"
	"fmt"
	"log"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/kbstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfquery: ")
	var (
		kbPath  = flag.String("kb", "fused.kb", "knowledge base file")
		subject = flag.String("subject", "", "list triples of one subject")
		minProb = flag.Float64("min-prob", -1, "list triples with probability >= this")
		limit   = flag.Int("limit", 50, "maximum rows to print")
		stats   = flag.Bool("stats", false, "print store statistics")
	)
	flag.Parse()

	store, err := kbstore.Open(*kbPath)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *stats:
		triples, subjects, predicted := store.Stats()
		fmt.Printf("triples:    %d\n", triples)
		fmt.Printf("subjects:   %d\n", subjects)
		fmt.Printf("predicates: %d\n", len(store.Predicates()))
		fmt.Printf("predicted:  %d (%.1f%%)\n", predicted, 100*float64(predicted)/float64(max(triples, 1)))
	case *subject != "":
		rows := store.BySubject(kb.EntityID(*subject))
		if len(rows) == 0 {
			fmt.Printf("no triples for subject %s\n", *subject)
			return
		}
		printRows(rows, *limit)
	case *minProb >= 0:
		var rows []fusion.FusedTriple
		store.Above(*minProb, func(f fusion.FusedTriple) bool {
			rows = append(rows, f)
			return len(rows) < *limit
		})
		printRows(rows, *limit)
	default:
		log.Fatal("nothing to do: pass -stats, -subject or -min-prob")
	}
}

func printRows(rows []fusion.FusedTriple, limit int) {
	for i, f := range rows {
		if i >= limit {
			fmt.Printf("... (%d more)\n", len(rows)-limit)
			return
		}
		prob := "  -  "
		if f.Predicted {
			prob = fmt.Sprintf("%.3f", f.Probability)
		}
		fmt.Printf("%s  %-70s provs=%d exts=%d\n", prob, f.Triple, f.Provenances, f.Extractors)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
