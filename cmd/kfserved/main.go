// Command kfserved runs the long-running fusion service: it opens a durable
// state directory (genstore journal + snapshots), hydrates the compiled
// graph chain — a restart is load-and-replay, never a recompile — and
// serves fused posteriors over the versioned JSON API in internal/httpapi.
//
// Usage:
//
//	kfserved -state /var/lib/kfusion -addr :7607 -method popaccu
//
// The listener is up immediately: /healthz answers while hydration runs in
// the background, /readyz and the data routes return 503 not_ready until it
// completes. SIGINT/SIGTERM drain in-flight requests, then write a final
// snapshot before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kfusion/internal/fusion"
	"kfusion/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("kfserved: ")

	var (
		state     = flag.String("state", "", "state directory (journal + snapshots); required")
		addr      = flag.String("addr", ":7607", "listen address")
		method    = flag.String("method", "popaccu", "fusion method: vote, accu, popaccu, popaccu+unsup, twolayer")
		gran      = flag.String("granularity", "", "claim provenance granularity: url, site, site-pred, site-pred-pattern (default: method preset)")
		siteLevel = flag.Bool("site-level", false, "key twolayer sources at site level")
		workers   = flag.Int("workers", 0, "fusion worker cap (0 = all cores)")
		warm      = flag.Int("warm-rounds", 1, "EM rounds per append after the cold start")
		snapEvery = flag.Int("snapshot-every", 16, "snapshot the store every N appends (journal is durable regardless)")
		maxBody   = flag.Int64("max-body", 64<<20, "append request body cap in bytes")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()
	if *state == "" {
		log.Fatal("-state is required")
	}

	cfg := server.Config{
		StateDir:      *state,
		Method:        *method,
		SiteLevel:     *siteLevel,
		Workers:       *workers,
		WarmRounds:    *warm,
		SnapshotEvery: *snapEvery,
		MaxBody:       *maxBody,
		Logf:          log.Printf,
	}
	switch *gran {
	case "":
	case "url":
		cfg.Granularity = fusion.GranExtractorURL
	case "site":
		cfg.Granularity = fusion.GranExtractorSite
	case "site-pred":
		cfg.Granularity = fusion.GranExtractorSitePred
	case "site-pred-pattern":
		cfg.Granularity = fusion.GranExtractorSitePredPattern
	default:
		log.Fatalf("unknown -granularity %q", *gran)
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Hydrate in the background so the listener (and /healthz) is up
	// immediately; hydrateErr gates the exit status if recovery fails.
	hydrateErr := make(chan error, 1)
	go func() {
		start := time.Now()
		if err := srv.Hydrate(); err != nil {
			log.Printf("hydration failed: %v", err)
			hydrateErr <- err
			return
		}
		log.Printf("ready in %v", time.Since(start).Round(time.Millisecond))
		hydrateErr <- nil
	}()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("serving %s state on %s (method %s)", *state, *addr, *method)
		serveErr <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	exit := 0
	select {
	case sig := <-stop:
		log.Printf("received %v, draining", sig)
	case err := <-serveErr:
		log.Printf("listener failed: %v", err)
		exit = 1
	case err := <-hydrateErr:
		if err == nil {
			// Hydration finished; keep serving until a signal or listener
			// failure.
			select {
			case sig := <-stop:
				log.Printf("received %v, draining", sig)
			case err := <-serveErr:
				log.Printf("listener failed: %v", err)
				exit = 1
			}
		} else {
			exit = 1
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("final snapshot: %v", err)
		exit = 1
	} else {
		log.Print("state closed cleanly")
	}
	if exit != 0 {
		fmt.Fprintln(os.Stderr, "kfserved: exiting with errors")
	}
	os.Exit(exit)
}
