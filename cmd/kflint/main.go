// Command kflint runs kfusion's contract analyzers (internal/lint) over Go
// packages — the determinism and durability invariants the test suite can
// only catch when a test happens to exercise a violation, checked
// structurally on every build.
//
// Two modes:
//
//	kflint ./...                      # multichecker: analyze packages
//	go vet -vettool=$(which kflint) ./...  # unitchecker: driven by go vet
//
// In multichecker mode kflint loads packages via `go list -export`,
// applies every analyzer to the packages it is gated to, prints surviving
// findings (suppressions need a //lint:ignore kflint/<name> <reason>
// directive with a written reason) and exits nonzero if any remain. In
// vettool mode it speaks go vet's config-file protocol: go vet hands it a
// JSON .cfg naming the files and the export data of every import, and
// kflint reports findings on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"kfusion/internal/lint"
)

func main() {
	// go vet probes its -vettool with -V=full before every run and uses
	// the reply as a cache key.
	versionFlag := flag.Bool("V", false, "print version and exit (go vet handshake)")
	list := flag.Bool("help-analyzers", false, "list analyzers and the contracts they enforce")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kflint [packages]\n       go vet -vettool=kflint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  kflint/%-12s %s\n", a.Name, a.Doc)
		}
	}
	// Accept -V=full (not just -V): rewrite it before flag parsing.
	args := os.Args[1:]
	for i, a := range args {
		if a == "-V=full" || a == "--V=full" {
			args[i] = "-V"
		}
		// go vet probes the tool's flag schema with -flags and expects a
		// JSON array of flag definitions; kflint exposes none to vet.
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	flag.CommandLine.Parse(args)

	if *versionFlag {
		fmt.Println("kflint version v1.0.0")
		return
	}
	if *list {
		flag.Usage()
		return
	}

	rest := flag.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(vetUnit(rest[0]))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	pkgs, _, err := lint.Load(".", rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kflint:", err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.Analyzers(), true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kflint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			fmt.Println(d)
		}
	}
	if found {
		os.Exit(1)
	}
}

// vetCfg is the subset of go vet's unitchecker config kflint needs: the
// package's own files, and export data + import-path remapping for every
// dependency.
type vetCfg struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit runs one go vet unit of work. The protocol: read the JSON cfg,
// write the facts file go vet expects (kflint exchanges no facts, so it is
// a stub), report findings on stderr, exit 2 when findings exist.
func vetUnit(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kflint:", err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kflint: parsing vet config:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("kflint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "kflint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// go vet also dispatches test variants (units whose file list includes
	// _test.go files). The contracts guard shipped code only — fixtures
	// exercising forbidden patterns live in tests by design — and the
	// variant's non-test files were already analyzed in the primary unit,
	// so skip the whole unit (matching the multichecker, which loads
	// GoFiles alone).
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}

	lookup := lint.NewExportLookup()
	for importPath, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			lookup.Add(importPath, file)
		}
	}
	for canonical, file := range cfg.PackageFile {
		lookup.Add(canonical, file)
	}

	pkg, err := lint.TypecheckFiles(cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "kflint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkg, lint.Analyzers(), true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kflint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [kflint/%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
