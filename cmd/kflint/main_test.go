package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettoolProtocol builds kflint and drives it through `go vet -vettool`,
// exercising the unitchecker handshake end to end: the -V=full version
// print, the single .cfg argument, the vetx facts stub, and export-data
// type-checking from go vet's PackageFile map. csr is gated by both
// determinism analyzers and clean by contract, so the run must succeed
// silently.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "kflint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "kfusion/internal/csr")
	vet.Dir = filepath.Join("..", "..")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=kflint: %v\n%s", err, out)
	}
}
