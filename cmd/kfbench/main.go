// Command kfbench regenerates the paper's evaluation: every table (1-3) and
// figure (3-7, 9-22) over a synthetic dataset, printing paper-style rows and
// HOLDS/VIOLATED notes for the qualitative claims.
//
// Usage:
//
//	kfbench                      # all experiments at small scale
//	kfbench -scale bench         # the reproduction numbers
//	kfbench -exp fig9,fig13      # selected experiments
//	kfbench -seeds 5             # re-run across 5 seeds; report check stability
//	kfbench -list                # list experiment IDs
//	kfbench -benchjson FILE      # fusion throughput benchmarks as JSON
//
// -benchjson measures the fusion engines (compiled and seed reference) over
// the bench and large shared datasets, plus the multi-config sweep with and
// without compiled-claim-graph reuse (ConfigSweepReuse vs
// ConfigSweepRecompile), and writes one machine-readable JSON record — the
// cross-PR perf trajectory lives in BENCH_<n>.json files at the repository
// root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"kfusion/internal/exper"
	"kfusion/internal/fusion"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfbench: ")
	var (
		scaleFlag = flag.String("scale", "small", "dataset scale: small or bench")
		seed      = flag.Int64("seed", 42, "generation seed")
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		seeds     = flag.Int("seeds", 1, "run across this many consecutive seeds and report per-check stability")
		benchJSON = flag.String("benchjson", "", "run the fusion throughput benchmarks and write JSON to this file")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, ex := range exper.Registry {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Title)
		}
		return
	}

	scale := exper.ScaleSmall
	switch *scaleFlag {
	case "small":
	case "bench":
		scale = exper.ScaleBench
	default:
		log.Fatalf("unknown -scale %q (want small or bench)", *scaleFlag)
	}

	var selected []exper.Experiment
	if *expFlag == "" {
		selected = exper.Registry
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ex := exper.ByID(strings.TrimSpace(id))
			if ex == nil {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *ex)
		}
	}

	if *seeds > 1 {
		runMultiSeed(scale, *seed, *seeds, selected)
		return
	}

	start := time.Now()
	ds := exper.SharedDataset(scale, *seed)
	fmt.Printf("dataset: %s; %d pages, %d extractions (built in %v)\n\n",
		ds.World.Stats(), len(ds.Corpus.Pages), len(ds.Extractions), time.Since(start).Round(time.Millisecond))

	violations := 0
	for _, ex := range selected {
		t0 := time.Now()
		tb := ex.Run(ds)
		tb.Render(os.Stdout)
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
		for _, n := range tb.Notes {
			if strings.HasPrefix(n, "VIOLATED") {
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Printf("%d paper-shape check(s) VIOLATED\n", violations)
		os.Exit(1)
	}
}

// runMultiSeed re-runs the selected experiments on n consecutive seeds and
// reports, for every HOLDS/VIOLATED shape check, how many seeds it held on —
// the honest way to read checks whose margins sit near seed noise.
func runMultiSeed(scale exper.Scale, baseSeed int64, n int, selected []exper.Experiment) {
	type tally struct{ holds, total int }
	checks := map[string]*tally{}
	order := []string{}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*101
		ds := exper.SharedDataset(scale, seed)
		fmt.Printf("seed %d: %d extractions\n", seed, len(ds.Extractions))
		for _, ex := range selected {
			tb := ex.Run(ds)
			for _, note := range tb.Notes {
				var held bool
				var msg string
				switch {
				case strings.HasPrefix(note, "HOLDS: "):
					held, msg = true, strings.TrimPrefix(note, "HOLDS: ")
				case strings.HasPrefix(note, "VIOLATED: "):
					held, msg = false, strings.TrimPrefix(note, "VIOLATED: ")
				default:
					continue
				}
				key := ex.ID + ": " + msg
				t, ok := checks[key]
				if !ok {
					t = &tally{}
					checks[key] = t
					order = append(order, key)
				}
				t.total++
				if held {
					t.holds++
				}
			}
		}
	}
	fmt.Printf("\nshape-check stability across %d seeds:\n", n)
	unstable := 0
	for _, key := range order {
		t := checks[key]
		marker := "stable  "
		if t.holds < t.total {
			marker = "UNSTABLE"
			unstable++
		}
		fmt.Printf("  %s %d/%d  %s\n", marker, t.holds, t.total, key)
	}
	if unstable > 0 {
		fmt.Printf("%d check(s) did not hold on every seed\n", unstable)
	}
}

// benchRecord is one benchmark's machine-readable result.
type benchRecord struct {
	NsPerOp     int64   `json:"ns_op"`
	ClaimsPerS  float64 `json:"claims_per_s"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	Iterations  int     `json:"iterations"`
}

// benchFile is the BENCH_<n>.json schema: environment metadata plus one
// record per benchmark. The Reference* entries run the seed
// shuffle-per-round engine (fusion.FuseReference), so every file carries its
// own before/after pair for the compiled engine.
type benchFile struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	CPU        string                 `json:"goarch"`
	Seed       int64                  `json:"seed"`
	Date       string                 `json:"date"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

// writeBenchJSON measures fusion throughput on the shared bench and large
// datasets — compiled engine and seed reference engine — and writes the
// results as JSON for the cross-PR perf trajectory.
func writeBenchJSON(path string, seed int64) error {
	// Fail on an unwritable path now, not after minutes of benchmarking.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	out := benchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        runtime.GOARCH,
		Seed:       seed,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]benchRecord{},
	}

	fmt.Fprintf(os.Stderr, "building bench dataset...\n")
	bench := exper.SharedDataset(exper.ScaleBench, seed)
	fmt.Fprintf(os.Stderr, "building large dataset...\n")
	large := exper.SharedDataset(exper.ScaleLarge, seed)

	type engine struct {
		prefix string
		fuse   func([]fusion.Claim, fusion.Config) (*fusion.Result, error)
	}
	engines := []engine{
		{"", fusion.Fuse},
		{"Reference", fusion.FuseReference},
	}
	run := func(name string, claims []fusion.Claim, cfg fusion.Config,
		fuse func([]fusion.Claim, fusion.Config) (*fusion.Result, error)) {
		fmt.Fprintf(os.Stderr, "benchmarking %s (%d claims)...\n", name, len(claims))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fuse(claims, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Benchmarks[name] = benchRecord{
			NsPerOp:     r.NsPerOp(),
			ClaimsPerS:  float64(len(claims)) / (float64(r.NsPerOp()) / 1e9),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
	}

	for _, eng := range engines {
		for _, preset := range []struct {
			name string
			cfg  fusion.Config
		}{
			{"FuseVote", fusion.VoteConfig()},
			{"FuseAccu", fusion.AccuConfig()},
			{"FusePopAccu", fusion.PopAccuConfig()},
			{"FusePopAccuPlus", fusion.PopAccuPlusConfig(bench.Gold.Labeler())},
		} {
			claims := fusion.Claims(bench.Extractions, preset.cfg.Granularity)
			run(eng.prefix+preset.name, claims, preset.cfg, eng.fuse)
		}
		cfg := fusion.PopAccuConfig()
		run(eng.prefix+"LargeScaleFusion", fusion.Claims(large.Extractions, cfg.Granularity), cfg, eng.fuse)
	}

	// ---- Multi-config sweep: one compiled claim graph serving every sweep
	// config vs the per-config claims+compile the experiment layer used to
	// do. claims/s counts claims × configs, so the Reuse/Recompile ratio is
	// the amortization win of fusion.Compile.
	sweep := exper.ConfigSweep()
	nSweepClaims := len(fusion.Claims(bench.Extractions, fusion.Granularity{}))
	recordSweep := func(name string, op func()) {
		fmt.Fprintf(os.Stderr, "benchmarking %s (%d claims x %d configs)...\n",
			name, nSweepClaims, len(sweep))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		out.Benchmarks[name] = benchRecord{
			NsPerOp:     r.NsPerOp(),
			ClaimsPerS:  float64(nSweepClaims*len(sweep)) / (float64(r.NsPerOp()) / 1e9),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
	}
	recordSweep("ConfigSweepRecompile", func() {
		for _, p := range sweep {
			fusion.MustFuse(fusion.Claims(bench.Extractions, p.Cfg.Granularity), p.Cfg)
		}
	})
	recordSweep("ConfigSweepReuse", func() {
		compiled := fusion.MustCompile(fusion.Claims(bench.Extractions, fusion.Granularity{}))
		for _, p := range sweep {
			compiled.MustFuse(p.Cfg)
		}
	})

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
