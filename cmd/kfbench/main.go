// Command kfbench regenerates the paper's evaluation: every table (1-3) and
// figure (3-7, 9-22) over a synthetic dataset, printing paper-style rows and
// HOLDS/VIOLATED notes for the qualitative claims.
//
// Usage:
//
//	kfbench                      # all experiments at small scale
//	kfbench -scale bench         # the reproduction numbers
//	kfbench -exp fig9,fig13      # selected experiments
//	kfbench -seeds 5             # re-run across 5 seeds; report check stability
//	kfbench -list                # list experiment IDs
//	kfbench -benchjson FILE      # fusion throughput benchmarks as JSON
//	kfbench -serve FILE          # kfserved read-path latency under load, merged into FILE
//	kfbench -sharded FILE        # web-scale sharded fusion (10M+ claims), merged into FILE
//	kfbench -check BENCH_10.json # CI perf-regression gate against a baseline
//	kfbench -check BENCH_10.json -prior BENCH_5.json  # plus the committed gain gate
//	kfbench -scaling FILE        # parallel hot paths at the current GOMAXPROCS
//	kfbench -scalingcheck A,B,C  # multi-core speedup gate over -scaling cells
//
// -benchjson measures the fusion engines (compiled and seed reference) over
// the bench and large shared datasets, the §5.1 two-layer model (compiled
// extraction graph vs map-keyed reference), claim-graph compilation
// (sequential vs parallel CSR build), the multi-config sweep with and
// without compiled-claim-graph reuse (ConfigSweepReuse vs
// ConfigSweepRecompile), and the append-only feed pairs (AppendFusePopAccu
// vs RecompileFusePopAccu, TwoLayerAppend vs TwoLayerRecompile — a 10%
// batch appended onto a compiled 90% prefix and warm-start re-fused, vs
// flattening, recompiling and cold-fusing the whole feed), the stage-II
// kernel triple (KernelScalarStageII vs KernelBatchStageII vs
// KernelBatchStageIIFast — the scalar, batched-exact and polynomial-fast
// forms of the log-odds + softmax pass over the engines' operating domain),
// and writes one machine-readable JSON record — the cross-PR perf
// trajectory lives in BENCH_<n>.json files at the repository root.
//
// -check is the bench-regression gate CI runs on every push: it re-measures
// the fast compiled/reference benchmark pairs on the bench dataset and
// compares each pair's claims/s SPEEDUP RATIO against the committed baseline
// file. Comparing ratios rather than absolute claims/s cancels the raw speed
// of the machine running the check (CI runners vary wildly), while still
// catching the real failure mode: a compiled fast path losing its edge over
// its reference engine. A ratio drop beyond -checktol (default 30%) fails.
// With -prior it additionally gates the committed baseline against an
// earlier committed BENCH file: the gained records (FusePopAccu,
// TwoLayerFuseReuse) must hold -mingain (default 1.5x) claims/s over the
// prior — a deterministic file-vs-file check, since both were recorded on
// the same reference box.
//
// -scaling measures the deterministically-parallel hot paths — the two-layer
// EM loops over a prebuilt extraction graph (TwoLayerParallel), claim-graph
// compilation (CompileParallel) and extraction-graph compilation
// (ExtractCompileParallel) — at whatever GOMAXPROCS the process was given,
// and writes one JSON cell. CI runs it under a GOMAXPROCS matrix on
// multi-core runners; -scalingcheck then compares the cells and fails if the
// highest-core cell's TwoLayerParallel or CompileParallel claims/s speedup
// over the 1-core cell falls below -minspeedup (default 1.5x). This is the
// measurement the 1-core reference box cannot make: all three paths are
// bit-identical across worker counts, so the only thing the matrix varies is
// speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"slices"
	"sort"
	"strings"
	"testing"
	"time"

	"kfusion/internal/exper"
	"kfusion/internal/extract"
	"kfusion/internal/faultfs"
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
	"kfusion/internal/mathx"
	"kfusion/internal/twolayer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfbench: ")
	var (
		scaleFlag  = flag.String("scale", "small", "dataset scale: small or bench")
		seed       = flag.Int64("seed", 42, "generation seed")
		expFlag    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		seeds      = flag.Int("seeds", 1, "run across this many consecutive seeds and report per-check stability")
		benchJSON  = flag.String("benchjson", "", "run the fusion throughput benchmarks and write JSON to this file")
		check      = flag.String("check", "", "compare fresh benchmark speedup ratios against this baseline BENCH json; exit non-zero on regression")
		prior      = flag.String("prior", "", "with -check: an earlier committed BENCH json; the baseline's gained records must beat it by -mingain")
		minGain    = flag.Float64("mingain", 1.5, "with -check -prior: minimum claims/s gain of the baseline's gained records over the prior file")
		checkJSON  = flag.String("checkjson", "", "with -check: also write the fresh measurements as JSON to this file")
		checkTol   = flag.Float64("checktol", 0.30, "with -check: maximum tolerated fractional drop of a pair's speedup ratio")
		serve      = flag.String("serve", "", "measure kfserved read-path latency under concurrent clients and merge the record into this BENCH json")
		serveCli   = flag.Int("serveclients", 8, "with -serve: concurrent clients")
		serveReqs  = flag.Int("servereqs", 1000, "with -serve: item reads per client")
		sharded    = flag.String("sharded", "", "measure web-scale sharded fusion and merge the record into this BENCH json")
		shardK     = flag.Int("shardk", 8, "with -sharded: shard count K")
		shardTgt   = flag.Int("shardclaims", 10_000_000, "with -sharded: minimum feed size in extraction records")
		shardFeed  = flag.String("shardfeed", "", "with -sharded: reuse/generate the feed at this path instead of a throwaway temp file")
		scaling    = flag.String("scaling", "", "measure the parallel hot paths at the current GOMAXPROCS and write one JSON cell to this file")
		scalingChk = flag.String("scalingcheck", "", "comma-separated -scaling cell files; exit non-zero if the top cell's gated speedups over the 1-core cell fall below -minspeedup")
		minSpeedup = flag.Float64("minspeedup", 1.5, "with -scalingcheck: minimum claims/s speedup of the highest-GOMAXPROCS cell over the 1-core cell")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serve != "" {
		if err := runServeBench(*serve, *seed, *serveCli, *serveReqs); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *sharded != "" {
		if err := runShardedBench(*sharded, *seed, *shardK, *shardTgt, *shardFeed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *check != "" {
		if err := runCheck(*check, *checkJSON, *checkTol, *seed, *prior, *minGain); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *scaling != "" {
		if err := writeScalingJSON(*scaling, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *scalingChk != "" {
		if err := runScalingCheck(*scalingChk, *minSpeedup); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, ex := range exper.Registry {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Title)
		}
		return
	}

	scale := exper.ScaleSmall
	switch *scaleFlag {
	case "small":
	case "bench":
		scale = exper.ScaleBench
	default:
		log.Fatalf("unknown -scale %q (want small or bench)", *scaleFlag)
	}

	var selected []exper.Experiment
	if *expFlag == "" {
		selected = exper.Registry
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ex := exper.ByID(strings.TrimSpace(id))
			if ex == nil {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *ex)
		}
	}

	if *seeds > 1 {
		runMultiSeed(scale, *seed, *seeds, selected)
		return
	}

	start := time.Now()
	ds := exper.SharedDataset(scale, *seed)
	fmt.Printf("dataset: %s; %d pages, %d extractions (built in %v)\n\n",
		ds.World.Stats(), len(ds.Corpus.Pages), len(ds.Extractions), time.Since(start).Round(time.Millisecond))

	violations := 0
	for _, ex := range selected {
		t0 := time.Now()
		tb := ex.Run(ds)
		tb.Render(os.Stdout)
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
		for _, n := range tb.Notes {
			if strings.HasPrefix(n, "VIOLATED") {
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Printf("%d paper-shape check(s) VIOLATED\n", violations)
		os.Exit(1)
	}
}

// runMultiSeed re-runs the selected experiments on n consecutive seeds and
// reports, for every HOLDS/VIOLATED shape check, how many seeds it held on —
// the honest way to read checks whose margins sit near seed noise.
func runMultiSeed(scale exper.Scale, baseSeed int64, n int, selected []exper.Experiment) {
	type tally struct{ holds, total int }
	checks := map[string]*tally{}
	order := []string{}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*101
		ds := exper.SharedDataset(scale, seed)
		fmt.Printf("seed %d: %d extractions\n", seed, len(ds.Extractions))
		for _, ex := range selected {
			tb := ex.Run(ds)
			for _, note := range tb.Notes {
				var held bool
				var msg string
				switch {
				case strings.HasPrefix(note, "HOLDS: "):
					held, msg = true, strings.TrimPrefix(note, "HOLDS: ")
				case strings.HasPrefix(note, "VIOLATED: "):
					held, msg = false, strings.TrimPrefix(note, "VIOLATED: ")
				default:
					continue
				}
				key := ex.ID + ": " + msg
				t, ok := checks[key]
				if !ok {
					t = &tally{}
					checks[key] = t
					order = append(order, key)
				}
				t.total++
				if held {
					t.holds++
				}
			}
		}
	}
	fmt.Printf("\nshape-check stability across %d seeds:\n", n)
	unstable := 0
	for _, key := range order {
		t := checks[key]
		marker := "stable  "
		if t.holds < t.total {
			marker = "UNSTABLE"
			unstable++
		}
		fmt.Printf("  %s %d/%d  %s\n", marker, t.holds, t.total, key)
	}
	if unstable > 0 {
		fmt.Printf("%d check(s) did not hold on every seed\n", unstable)
	}
}

// benchRecord is one benchmark's machine-readable result.
type benchRecord struct {
	NsPerOp     int64   `json:"ns_op"`
	ClaimsPerS  float64 `json:"claims_per_s"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	Iterations  int     `json:"iterations"`
}

// benchFile is the BENCH_<n>.json schema: environment metadata plus one
// record per benchmark. The Reference* entries run the seed
// shuffle-per-round engine (fusion.FuseReference), so every file carries its
// own before/after pair for the compiled engine.
type benchFile struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	CPU        string                 `json:"goarch"`
	Seed       int64                  `json:"seed"`
	Date       string                 `json:"date"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
	// Serve is the kfserved read-path latency record (-serve); absolute
	// and machine-dependent, so the -check gate validates its shape only.
	Serve *serveRecord `json:"serve,omitempty"`
	// Sharded is the web-scale sharded-fusion record (-sharded); absolute
	// throughputs, so the -check gate validates shape and re-verifies
	// shard-count independence live at bench scale.
	Sharded *shardedRecord `json:"sharded,omitempty"`
}

// newBenchFile returns a benchFile stamped with this run's environment.
func newBenchFile(seed int64) benchFile {
	return benchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        runtime.GOARCH,
		Seed:       seed,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]benchRecord{},
	}
}

// measure runs op under testing.Benchmark and converts the result into a
// benchRecord; claimsPerOp is the work-unit count one op processes (claims,
// extractions, or claims × configs), from which claims/s is derived.
func measure(claimsPerOp float64, op func()) benchRecord {
	return measureWithSetup(claimsPerOp, nil, op)
}

// measureWithSetup is measure with an untimed per-iteration setup: setup
// runs with the benchmark timer stopped before every op. The Append
// benchmarks need it because Append consumes the base generation's interning
// index (the production shape is a chain, each generation appended once), so
// every measured append must start from a freshly compiled base — built off
// the clock. A forced GC after each setup keeps the setup's allocation
// garbage from being collected inside — and charged to — the timed region.
func measureWithSetup(claimsPerOp float64, setup, op func()) benchRecord {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if setup != nil {
				b.StopTimer()
				setup()
				runtime.GC()
				b.StartTimer()
			}
			op()
		}
	})
	return benchRecord{
		NsPerOp:     r.NsPerOp(),
		ClaimsPerS:  claimsPerOp / (float64(r.NsPerOp()) / 1e9),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// benchTwoLayer measures the two-layer pair over the bench dataset into out:
// the compiled extraction-graph engine end to end vs the map-keyed reference.
// Shared by -benchjson and -check so the gate compares like with like.
func benchTwoLayer(out *benchFile, bench *exper.Dataset) {
	cfg := twolayer.DefaultConfig()
	cfg.SiteLevel = true
	n := float64(len(bench.Extractions))
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerFuse (%d extractions)...\n", len(bench.Extractions))
	out.Benchmarks["TwoLayerFuse"] = measure(n, func() {
		twolayer.MustFuse(bench.Extractions, cfg)
	})
	g := extract.Compile(bench.Extractions, true)
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerFuseReuse...\n")
	out.Benchmarks["TwoLayerFuseReuse"] = measure(n, func() {
		twolayer.MustFuseCompiled(g, cfg)
	})
	fmt.Fprintf(os.Stderr, "benchmarking ReferenceTwoLayerFuse...\n")
	out.Benchmarks["ReferenceTwoLayerFuse"] = measure(n, func() {
		twolayer.MustFuseReference(bench.Extractions, cfg)
	})
}

// benchAppend measures the AppendVsRecompile pairs on the bench dataset:
// the steady state of an append-only extraction feed, where a 10% batch
// arrives on top of an already-compiled 90% prefix.
//
//   - Recompile records are the before path: flatten the whole feed to
//     claims (or compile the whole extraction graph), compile from scratch
//     and cold-fuse under the paper's R = 5.
//   - Append records are the incremental path: flatten only the batch
//     through the generation's ClaimStream, extend the compiled graph with
//     Append (bit-identical to the recompile), and re-fuse as online EM —
//     one warm-started round carrying the previous generation's posteriors.
//     Evaluation quality matches the cold R = 5 output within the bounds
//     pinned by TestWarmStartQualityOnBenchDataset; the outputs are not
//     pointwise-equal (POPACCU's EM oscillates rather than converges, so
//     R-capped runs are truncations, not fixed points).
//
// claims/s counts the extractions SERVED after the batch lands (the whole
// feed), so the Append/Recompile ratio is the cost ratio of keeping the
// same corpus fresh. The base compile + base fuse run off the clock per
// iteration (measureWithSetup): a production chain appends each generation
// once, so the measured op starts from a warm chain.
func benchAppend(out *benchFile, bench *exper.Dataset) {
	xs := bench.Extractions
	n := len(xs)
	cut := n - n/10
	units := float64(n)

	cfg := fusion.PopAccuConfig()
	fmt.Fprintf(os.Stderr, "benchmarking RecompileFusePopAccu (%d extractions)...\n", n)
	out.Benchmarks["RecompileFusePopAccu"] = measure(units, func() {
		fusion.MustCompile(fusion.Claims(xs, cfg.Granularity)).MustFuse(cfg)
	})
	warmCfg := cfg
	warmCfg.Rounds = 1
	prev := fusion.MustCompile(fusion.Claims(xs[:cut], cfg.Granularity)).MustFuse(cfg)
	var base *fusion.Compiled
	var stream *fusion.ClaimStream
	fmt.Fprintf(os.Stderr, "benchmarking AppendFusePopAccu (10%% batch)...\n")
	out.Benchmarks["AppendFusePopAccu"] = measureWithSetup(units, func() {
		stream = fusion.NewClaimStream(cfg.Granularity)
		base = fusion.MustCompile(stream.Add(xs[:cut]))
	}, func() {
		next := base.MustAppend(stream.Add(xs[cut:]))
		next.MustFuseWarm(warmCfg, prev)
	})

	tcfg := twolayer.DefaultConfig()
	tcfg.SiteLevel = true
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerRecompile...\n")
	out.Benchmarks["TwoLayerRecompile"] = measure(units, func() {
		twolayer.MustFuseCompiled(extract.Compile(xs, true), tcfg)
	})
	twarm := tcfg
	twarm.Rounds = 1
	var tbase *extract.Compiled
	var tstate *twolayer.State
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerAppend (10%% batch)...\n")
	out.Benchmarks["TwoLayerAppend"] = measureWithSetup(units, func() {
		tbase = extract.Compile(xs[:cut], true)
		_, tstate, _ = twolayer.FuseCompiledWarm(tbase, tcfg, nil)
	}, func() {
		next := tbase.Append(xs[cut:])
		if _, _, err := twolayer.FuseCompiledWarm(next, twarm, tstate); err != nil {
			panic(err)
		}
	})
}

// benchWarmBoot measures the durable-state boot pair on the bench dataset:
// restoring the compiled claim graph and fused result from a generation
// store snapshot (the kfuse -append -state restart path: read, checksum,
// decode, validate) vs recompiling the feed and cold-fusing. claims/s counts
// the extractions served once the process is back up, so the
// Restore/Recompile ratio is the warm-boot win of persisting generations.
func benchWarmBoot(out *benchFile, bench *exper.Dataset) {
	xs := bench.Extractions
	units := float64(len(xs))
	cfg := fusion.PopAccuConfig()

	apply := func(st *genstore.State, batch []extract.Extraction) error {
		stream := fusion.NewClaimStream(cfg.Granularity)
		if st.Claim != nil {
			stream = fusion.SeedClaimStream(cfg.Granularity, st.Claim)
		}
		claims := stream.Add(batch)
		if st.Claim == nil {
			st.Claim = fusion.MustCompile(claims)
		} else {
			st.Claim = st.Claim.MustAppend(claims)
		}
		res, err := st.Claim.FuseWarm(cfg, st.Result)
		if err != nil {
			return err
		}
		st.Method = "popaccu"
		st.Gran = cfg.Granularity
		st.Result = res
		return nil
	}

	mem := faultfs.NewMem()
	store, st, err := genstore.OpenFS(mem, apply)
	if err != nil {
		panic(err)
	}
	if err := store.Append(st, xs); err != nil {
		panic(err)
	}
	if err := store.Snapshot(st); err != nil {
		panic(err)
	}
	store.Close()

	fmt.Fprintf(os.Stderr, "benchmarking WarmBootRestore (%d extractions)...\n", len(xs))
	out.Benchmarks["WarmBootRestore"] = measure(units, func() {
		s2, st2, err := genstore.OpenFS(mem, apply)
		if err != nil {
			panic(err)
		}
		if st2.Claim == nil || st2.Result == nil {
			panic("warm boot restored an empty state")
		}
		s2.Close()
	})
	fmt.Fprintf(os.Stderr, "benchmarking WarmBootRecompile...\n")
	out.Benchmarks["WarmBootRecompile"] = measure(units, func() {
		fusion.MustCompile(fusion.Claims(xs, cfg.Granularity)).MustFuse(cfg)
	})
}

// benchConfigSweep measures the multi-config sweep pair over the bench
// dataset into out: one compiled claim graph serving every sweep config vs
// the per-config claims+compile the experiment layer used to do. claims/s
// counts claims × configs, so the Reuse/Recompile ratio is the amortization
// win of fusion.Compile.
func benchConfigSweep(out *benchFile, bench *exper.Dataset) {
	sweep := exper.ConfigSweep()
	nSweepClaims := len(fusion.Claims(bench.Extractions, fusion.Granularity{}))
	units := float64(nSweepClaims * len(sweep))
	fmt.Fprintf(os.Stderr, "benchmarking ConfigSweep (%d claims x %d configs)...\n", nSweepClaims, len(sweep))
	out.Benchmarks["ConfigSweepRecompile"] = measure(units, func() {
		for _, p := range sweep {
			fusion.MustFuse(fusion.Claims(bench.Extractions, p.Cfg.Granularity), p.Cfg)
		}
	})
	out.Benchmarks["ConfigSweepReuse"] = measure(units, func() {
		compiled := fusion.MustCompile(fusion.Claims(bench.Extractions, fusion.Granularity{}))
		for _, p := range sweep {
			compiled.MustFuse(p.Cfg)
		}
	})
}

// benchKernels measures the stage-II scoring kernels in isolation, over
// buffers shaped like the bench dataset's operating domain: a per-claim
// accuracy → log-odds pass followed by per-item softmax normalization in
// fixed 64-lane blocks. The accuracy lanes cycle the dataset's actual fused
// provenance accuracies, so the kernels see the clamped [0.005, 0.995]
// values the engines feed them, not synthetic uniforms.
//
//   - KernelScalarStageII is the seed form: one math.Log per lane plus the
//     two-pass scalar softmax (two math.Exp per lane).
//   - KernelBatchStageII is the mathx exact batched form the engines now
//     run — bit-identical outputs, branches hoisted, one exp per lane.
//   - KernelBatchStageIIFast swaps in the mathx.Fast polynomial kernels
//     (the Config.FastMath path).
//
// claims/s counts lanes per op, so the Batch/Scalar ratio is the pure
// kernel-restructuring win with the EM bookkeeping factored out.
func benchKernels(out *benchFile, bench *exper.Dataset) {
	cfg := fusion.PopAccuConfig()
	res := fusion.MustFuse(fusion.Claims(bench.Extractions, cfg.Granularity), cfg)
	provs := make([]string, 0, len(res.ProvAccuracy))
	for p := range res.ProvAccuracy {
		provs = append(provs, p)
	}
	sort.Strings(provs)

	const lanes = 1 << 20
	const block = 64 // candidate lanes per softmax item
	const nf, lo, hi = 100.0, 0.005, 0.995
	acc := make([]float64, lanes)
	for i := range acc {
		acc[i] = res.ProvAccuracy[provs[i%len(provs)]]
	}
	dst := make([]float64, lanes)

	fmt.Fprintf(os.Stderr, "benchmarking KernelStageII (%d lanes, %d provenance accuracies)...\n", lanes, len(provs))
	out.Benchmarks["KernelScalarStageII"] = measure(lanes, func() {
		for i, a := range acc {
			if a < lo {
				a = lo
			} else if a > hi {
				a = hi
			}
			dst[i] = math.Log(nf * a / (1 - a))
		}
		for b := 0; b < lanes; b += block {
			blk := dst[b : b+block]
			m := 0.0
			for _, s := range blk {
				if s > m {
					m = s
				}
			}
			denom := 0.0
			for _, s := range blk {
				denom += math.Exp(s - m)
			}
			for i, s := range blk {
				blk[i] = math.Exp(s-m) / denom
			}
		}
	})
	batched := func(kern *mathx.Kernels) func() {
		return func() {
			kern.LogOddsSlice(dst, acc, nf, lo, hi)
			for b := 0; b < lanes; b += block {
				blk := dst[b : b+block]
				kern.SoftmaxInto(blk, blk, 0)
			}
		}
	}
	out.Benchmarks["KernelBatchStageII"] = measure(lanes, batched(mathx.Exact))
	out.Benchmarks["KernelBatchStageIIFast"] = measure(lanes, batched(mathx.Fast))
}

// benchFusePair measures one fusion preset under the compiled engine and,
// when ref is true, the seed reference engine.
func benchFusePair(out *benchFile, name string, claims []fusion.Claim, cfg fusion.Config, ref bool) {
	fmt.Fprintf(os.Stderr, "benchmarking %s (%d claims)...\n", name, len(claims))
	out.Benchmarks[name] = measure(float64(len(claims)), func() {
		fusion.MustFuse(claims, cfg)
	})
	if !ref {
		return
	}
	fmt.Fprintf(os.Stderr, "benchmarking Reference%s...\n", name)
	out.Benchmarks["Reference"+name] = measure(float64(len(claims)), func() {
		if _, err := fusion.FuseReference(claims, cfg); err != nil {
			panic(err)
		}
	})
}

// writeBenchJSON measures fusion throughput on the shared bench and large
// datasets — compiled engine and seed reference engine — and writes the
// results as JSON for the cross-PR perf trajectory.
func writeBenchJSON(path string, seed int64) error {
	// Fail on an unwritable path now, not after minutes of benchmarking.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	out := newBenchFile(seed)

	// The bench-dataset records — including the gained FusePopAccu and
	// TwoLayerFuseReuse pairs the -prior gate holds to the cross-PR bar —
	// are all measured BEFORE the large dataset is synthesized: tens of
	// megabytes of extra live heap would otherwise sit in the GC mark set
	// (and the cache) under every op, inflating the committed numbers by a
	// measurement artifact the gate would then bake in.
	fmt.Fprintf(os.Stderr, "building bench dataset...\n")
	bench := exper.SharedDataset(exper.ScaleBench, seed)

	for _, preset := range []struct {
		name string
		cfg  fusion.Config
	}{
		{"FuseVote", fusion.VoteConfig()},
		{"FuseAccu", fusion.AccuConfig()},
		{"FusePopAccu", fusion.PopAccuConfig()},
		{"FusePopAccuPlus", fusion.PopAccuPlusConfig(bench.Gold.Labeler())},
	} {
		claims := fusion.Claims(bench.Extractions, preset.cfg.Granularity)
		benchFusePair(&out, preset.name, claims, preset.cfg, true)
	}
	benchConfigSweep(&out, bench)
	benchTwoLayer(&out, bench)
	benchAppend(&out, bench)
	benchWarmBoot(&out, bench)
	benchKernels(&out, bench)

	fmt.Fprintf(os.Stderr, "building large dataset...\n")
	large := exper.SharedDataset(exper.ScaleLarge, seed)
	cfg := fusion.PopAccuConfig()
	largeClaims := fusion.Claims(large.Extractions, cfg.Granularity)
	benchFusePair(&out, "LargeScaleFusion", largeClaims, cfg, true)

	// Claim-graph compilation itself, sequential vs all cores: the parallel
	// CSR build and shard-and-merge interning only engage past their size
	// thresholds and with GOMAXPROCS > 1, so the pair quantifies the
	// parallel build on this box.
	fmt.Fprintf(os.Stderr, "benchmarking Compile (%d claims)...\n", len(largeClaims))
	out.Benchmarks["CompileSequential"] = measure(float64(len(largeClaims)), func() {
		if _, err := fusion.CompileWorkers(largeClaims, 1, 0); err != nil {
			panic(err)
		}
	})
	out.Benchmarks["CompileParallel"] = measure(float64(len(largeClaims)), func() {
		if _, err := fusion.CompileWorkers(largeClaims, 0, 0); err != nil {
			panic(err)
		}
	})
	return writeBenchFile(path, out)
}

func writeBenchFile(path string, out benchFile) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeScalingJSON measures the deterministically-parallel hot paths at the
// current GOMAXPROCS and writes one scaling cell. Worker bounds are left at
// 0 (= GOMAXPROCS) everywhere, so the matrix environment is the only thing
// that varies across cells; results are bit-identical across cells by the
// forced-worker determinism contract, making claims/s the only signal.
//
//   - TwoLayerParallel: the two-layer EM loops (both E-steps, both M-step
//     passes) over a prebuilt extraction graph — isolates the per-round
//     parallel loops from compilation. Since the batched-kernel
//     restructuring this is also the matrix's view of the mathx passes:
//     the per-round tables, the hoisted layer-1 base and the block softmax
//     all run inside it.
//   - TwoLayerParallelFast: the same loops on the mathx.Fast polynomial
//     kernels (Config.FastMath); reported but not gated — it shows how the
//     approximation's win scales with cores.
//   - CompileParallel: claim-graph compilation on the large claim set
//     (shuffle, shard-and-merge interning, parallel CSR build), matching the
//     -benchjson record of the same name.
//   - ExtractCompileParallel: extraction-graph compilation on the bench
//     extraction set (shard-and-merge interning + parallel CSR and
//     ext→statement builds); reported but not gated — its ordered merge
//     bounds the achievable speedup on small key spaces.
func writeScalingJSON(path string, seed int64) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	out := newBenchFile(seed)

	fmt.Fprintf(os.Stderr, "building bench dataset (GOMAXPROCS=%d)...\n", runtime.GOMAXPROCS(0))
	bench := exper.SharedDataset(exper.ScaleBench, seed)
	cfg := twolayer.DefaultConfig()
	cfg.SiteLevel = true
	g := bench.ExtractionGraph(true)
	n := float64(len(bench.Extractions))
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerParallel (%d extractions)...\n", len(bench.Extractions))
	out.Benchmarks["TwoLayerParallel"] = measure(n, func() {
		twolayer.MustFuseCompiled(g, cfg)
	})
	fastCfg := cfg
	fastCfg.FastMath = true
	fmt.Fprintf(os.Stderr, "benchmarking TwoLayerParallelFast...\n")
	out.Benchmarks["TwoLayerParallelFast"] = measure(n, func() {
		twolayer.MustFuseCompiled(g, fastCfg)
	})
	fmt.Fprintf(os.Stderr, "benchmarking ExtractCompileParallel...\n")
	out.Benchmarks["ExtractCompileParallel"] = measure(n, func() {
		extract.CompileWorkers(bench.Extractions, true, 0)
	})

	fmt.Fprintf(os.Stderr, "building large dataset...\n")
	large := exper.SharedDataset(exper.ScaleLarge, seed)
	largeClaims := fusion.Claims(large.Extractions, fusion.Granularity{})
	fmt.Fprintf(os.Stderr, "benchmarking CompileParallel (%d claims)...\n", len(largeClaims))
	out.Benchmarks["CompileParallel"] = measure(float64(len(largeClaims)), func() {
		if _, err := fusion.CompileWorkers(largeClaims, 0, 0); err != nil {
			panic(err)
		}
	})
	return writeBenchFile(path, out)
}

// scalingGated are the -scalingcheck records whose top-cell speedup must
// clear -minspeedup; other shared records are reported informationally.
var scalingGated = []string{"TwoLayerParallel", "CompileParallel"}

// runScalingCheck reads the -scaling cells, prints every record's claims/s
// per GOMAXPROCS, and enforces the gate: the highest-GOMAXPROCS cell must
// beat the 1-core cell by at least minSpeedup on every gated record. The
// cells come from one matrix run on one runner class but potentially
// different VMs, so absolute claims/s carry fleet variance (CPU generation,
// noisy neighbors); the default 1.5x threshold is deliberately conservative
// against the 2-3x these paths show on a quiet 4-core box, absorbing that
// variance while still catching parallelism regressing into overhead.
func runScalingCheck(filesCSV string, minSpeedup float64) error {
	var cells []benchFile
	for _, path := range strings.Split(filesCSV, ",") {
		raw, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		var cell benchFile
		if err := json.Unmarshal(raw, &cell); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].GOMAXPROCS < cells[j].GOMAXPROCS })
	base := -1
	for i := range cells {
		if cells[i].GOMAXPROCS == 1 {
			base = i
			break
		}
	}
	if base < 0 {
		return fmt.Errorf("no GOMAXPROCS=1 cell among %s; the speedup gate needs the 1-core baseline", filesCSV)
	}
	top := len(cells) - 1
	if cells[top].GOMAXPROCS <= 1 {
		return fmt.Errorf("no multi-core cell among %s; nothing to gate", filesCSV)
	}

	// A gated record that cannot be compared — missing from either end cell,
	// or with a non-positive baseline — must fail the gate, not skip it: a
	// stale binary or truncated artifact would otherwise turn the job into a
	// silent no-op.
	for _, name := range scalingGated {
		if rec, ok := cells[base].Benchmarks[name]; !ok || rec.ClaimsPerS <= 0 {
			return fmt.Errorf("gated record %s missing from the 1-core cell; regenerate the cells with -scaling", name)
		}
		if rec, ok := cells[top].Benchmarks[name]; !ok || rec.ClaimsPerS <= 0 {
			return fmt.Errorf("gated record %s missing from the %d-core cell; regenerate the cells with -scaling",
				name, cells[top].GOMAXPROCS)
		}
	}

	names := make([]string, 0, len(cells[base].Benchmarks))
	for name := range cells[base].Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("parallel scaling across GOMAXPROCS cells (gate: top cell >= %.2fx the 1-core cell)\n", minSpeedup)
	failures := 0
	for _, name := range names {
		baseRec := cells[base].Benchmarks[name]
		fmt.Printf("  %-24s", name)
		for _, cell := range cells {
			rec, ok := cell.Benchmarks[name]
			if !ok {
				fmt.Printf("  %d-core: missing", cell.GOMAXPROCS)
				continue
			}
			fmt.Printf("  %d-core: %8.0f/s", cell.GOMAXPROCS, rec.ClaimsPerS)
		}
		topRec, ok := cells[top].Benchmarks[name]
		if !ok || baseRec.ClaimsPerS <= 0 {
			fmt.Printf("  (not comparable)\n")
			continue
		}
		speedup := topRec.ClaimsPerS / baseRec.ClaimsPerS
		status := ""
		if gated := slices.Contains(scalingGated, name); gated && speedup < minSpeedup {
			status = "  BELOW GATE"
			failures++
		}
		fmt.Printf("  speedup %.2fx%s\n", speedup, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d gated record(s) scaled below %.2fx on %d cores", failures, minSpeedup, cells[top].GOMAXPROCS)
	}
	fmt.Println("scaling gate passed")
	return nil
}

// checkPairs are the (fast path, reference path) benchmark pairs the -check
// gate re-measures. All run on the bench dataset only, so the gate stays
// minutes-fast; the large-scale records in BENCH_<n>.json remain a manual,
// per-PR measurement.
var checkPairs = [][2]string{
	{"FusePopAccu", "ReferenceFusePopAccu"},
	{"ConfigSweepReuse", "ConfigSweepRecompile"},
	{"TwoLayerFuse", "ReferenceTwoLayerFuse"},
	{"AppendFusePopAccu", "RecompileFusePopAccu"},
	{"TwoLayerAppend", "TwoLayerRecompile"},
	{"WarmBootRestore", "WarmBootRecompile"},
}

// gainGated are the records whose committed claims/s must beat the -prior
// file's by -mingain — the ISSUE 10 acceptance bar: the batched kernel
// restructuring must hold ≥1.5× single-core throughput over the BENCH_5
// baselines. Both sides of the comparison are committed files recorded on
// the same reference box, so the gate is a deterministic file check, not a
// re-measurement subject to CI runner speed.
var gainGated = []string{"FusePopAccu", "TwoLayerFuseReuse"}

// checkGain enforces the committed-vs-prior throughput gate over gainGated.
func checkGain(baseline benchFile, baselinePath, priorPath string, minGain float64) error {
	raw, err := os.ReadFile(priorPath)
	if err != nil {
		return err
	}
	var prior benchFile
	if err := json.Unmarshal(raw, &prior); err != nil {
		return fmt.Errorf("parsing %s: %w", priorPath, err)
	}
	for _, name := range gainGated {
		p, ok := prior.Benchmarks[name]
		if !ok || p.ClaimsPerS <= 0 {
			return fmt.Errorf("gained record %s missing from prior %s", name, priorPath)
		}
		b, ok := baseline.Benchmarks[name]
		if !ok || b.ClaimsPerS <= 0 {
			return fmt.Errorf("gained record %s missing from baseline %s", name, baselinePath)
		}
		gain := b.ClaimsPerS / p.ClaimsPerS
		status := "ok      "
		if gain < minGain {
			status = "BELOW GATE"
		}
		fmt.Printf("  %s %-22s %.0f claims/s vs prior %.0f — gain %.2fx (gate %.2fx)\n",
			status, name, b.ClaimsPerS, p.ClaimsPerS, gain, minGain)
		if gain < minGain {
			return fmt.Errorf("%s: committed %.0f claims/s is only %.2fx the prior %s's %.0f (gate %.2fx)",
				name, b.ClaimsPerS, gain, priorPath, p.ClaimsPerS, minGain)
		}
	}
	return nil
}

// runCheck is the CI bench-regression gate: re-measure each checkPairs entry,
// compare its fresh claims/s speedup ratio (fast / reference) against the
// committed baseline's ratio, and fail when any pair lost more than tol of
// its speedup. Ratios cancel absolute machine speed, so the gate is stable
// across heterogeneous CI runners while still catching a compiled path
// regressing toward its reference engine. With priorPath set, it first runs
// the deterministic committed-vs-prior gain gate (checkGain) before paying
// for any measurement.
func runCheck(baselinePath, freshPath string, tol float64, seed int64, priorPath string, minGain float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline benchFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	// Refuse a baseline the gate cannot check against — a renamed or
	// stripped record set would otherwise turn the gate into a silent no-op
	// — and refuse before paying for the dataset build and measurements.
	comparable := 0
	for _, pair := range checkPairs {
		if bs, ok := baseline.Benchmarks[pair[1]]; ok && bs.ClaimsPerS > 0 {
			if bf, ok := baseline.Benchmarks[pair[0]]; ok && bf.ClaimsPerS > 0 {
				comparable++
			}
		}
	}
	if comparable == 0 {
		return fmt.Errorf("%s holds none of the benchmark pairs the gate checks; regenerate it with -benchjson", baselinePath)
	}
	if baseline.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr, "warning: baseline recorded at GOMAXPROCS=%d but this run has %d; "+
			"speedup ratios cancel scalar machine speed, not parallel scaling — pin GOMAXPROCS to match the baseline\n",
			baseline.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}

	if priorPath != "" {
		fmt.Printf("committed throughput gain gate: %s vs prior %s\n", baselinePath, priorPath)
		if err := checkGain(baseline, baselinePath, priorPath, minGain); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "building bench dataset...\n")
	bench := exper.SharedDataset(exper.ScaleBench, seed)
	fresh := newBenchFile(seed)
	cfg := fusion.PopAccuConfig()
	benchFusePair(&fresh, "FusePopAccu", fusion.Claims(bench.Extractions, cfg.Granularity), cfg, true)
	benchConfigSweep(&fresh, bench)
	benchTwoLayer(&fresh, bench)
	benchAppend(&fresh, bench)
	benchWarmBoot(&fresh, bench)

	fmt.Printf("bench-regression check vs %s (baseline: %s, GOMAXPROCS=%d; tolerance %.0f%%)\n",
		baselinePath, baseline.Date, baseline.GOMAXPROCS, tol*100)
	regressions := 0
	for _, pair := range checkPairs {
		fast, slow := pair[0], pair[1]
		bf, okf := baseline.Benchmarks[fast]
		bs, oks := baseline.Benchmarks[slow]
		if !okf || !oks || bf.ClaimsPerS <= 0 || bs.ClaimsPerS <= 0 {
			fmt.Printf("  skip     %-22s (pair missing from baseline)\n", fast)
			continue
		}
		baseRatio := bf.ClaimsPerS / bs.ClaimsPerS
		nf, ns := fresh.Benchmarks[fast], fresh.Benchmarks[slow]
		// A pair the fresh pass failed to measure is a programming error in
		// checkPairs vs the measurement set; without this guard the ratio
		// would be NaN, which never compares as regressed.
		if nf.ClaimsPerS <= 0 || ns.ClaimsPerS <= 0 {
			return fmt.Errorf("pair %s/%s in checkPairs was not measured by the fresh pass", fast, slow)
		}
		newRatio := nf.ClaimsPerS / ns.ClaimsPerS
		status := "ok      "
		if newRatio < baseRatio*(1-tol) {
			status = "REGRESSED"
			regressions++
		}
		fmt.Printf("  %s %-22s speedup %5.2fx vs baseline %5.2fx  (%.0f claims/s vs ref %.0f)\n",
			status, fast+"/"+slow, newRatio, baseRatio, nf.ClaimsPerS, ns.ClaimsPerS)
	}
	// The serve-latency record is absolute (machine-dependent), so its gate
	// is structural: the baseline must carry a clean, well-formed record at
	// the required concurrency. Baselines predating the serve record (BENCH_7
	// and older) pass with a note so -check stays usable against history.
	if baseline.Serve != nil {
		if err := checkServeRecord(baseline.Serve); err != nil {
			return fmt.Errorf("serve record gate: %w", err)
		}
		fmt.Printf("  ok       serve record: %d clients, p50 %.3fms p95 %.3fms p99 %.3fms, %.0f req/s\n",
			baseline.Serve.Clients, baseline.Serve.P50Ms, baseline.Serve.P95Ms, baseline.Serve.P99Ms, baseline.Serve.RPS)
	} else {
		fmt.Println("  note     baseline has no serve record (predates -serve)")
	}
	// The sharded-fusion record is likewise absolute, so its baseline gate is
	// structural — but shard-count independence is machine-free, so the gate
	// re-verifies it live at bench scale: a K-shard coordinator must still
	// reproduce the unsharded engine within RefTol. Baselines predating the
	// record (BENCH_8 and older) pass with a note.
	if baseline.Sharded != nil {
		if err := checkShardedRecord(baseline.Sharded); err != nil {
			return fmt.Errorf("sharded record gate: %w", err)
		}
		diff, err := shardedEquivDiff(bench, baseline.Sharded.EquivShards)
		if err != nil {
			return fmt.Errorf("live sharded equivalence (K=%d): %w", baseline.Sharded.EquivShards, err)
		}
		if diff > twolayer.RefTol {
			return fmt.Errorf("live sharded equivalence (K=%d): max abs diff %.3g exceeds RefTol %.0g",
				baseline.Sharded.EquivShards, diff, twolayer.RefTol)
		}
		fmt.Printf("  ok       sharded record: %d claims over %d shards (max shard %.1f%%), "+
			"append %.0f fuse %.0f claims/s; live K=%d equivalence diff %.3g\n",
			baseline.Sharded.Claims, baseline.Sharded.Shards, baseline.Sharded.MaxShardShare*100,
			baseline.Sharded.AppendClaimsPerS, baseline.Sharded.FuseClaimsPerS,
			baseline.Sharded.EquivShards, diff)
	} else {
		fmt.Println("  note     baseline has no sharded record (predates -sharded)")
	}
	if freshPath != "" {
		if err := writeBenchFile(freshPath, fresh); err != nil {
			return err
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark pair(s) regressed more than %.0f%%", regressions, tol*100)
	}
	fmt.Println("no regressions")
	return nil
}
