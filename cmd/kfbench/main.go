// Command kfbench regenerates the paper's evaluation: every table (1-3) and
// figure (3-7, 9-22) over a synthetic dataset, printing paper-style rows and
// HOLDS/VIOLATED notes for the qualitative claims.
//
// Usage:
//
//	kfbench                      # all experiments at small scale
//	kfbench -scale bench         # the reproduction numbers
//	kfbench -exp fig9,fig13      # selected experiments
//	kfbench -seeds 5             # re-run across 5 seeds; report check stability
//	kfbench -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"kfusion/internal/exper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfbench: ")
	var (
		scaleFlag = flag.String("scale", "small", "dataset scale: small or bench")
		seed      = flag.Int64("seed", 42, "generation seed")
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		seeds     = flag.Int("seeds", 1, "run across this many consecutive seeds and report per-check stability")
	)
	flag.Parse()

	if *list {
		for _, ex := range exper.Registry {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Title)
		}
		return
	}

	scale := exper.ScaleSmall
	switch *scaleFlag {
	case "small":
	case "bench":
		scale = exper.ScaleBench
	default:
		log.Fatalf("unknown -scale %q (want small or bench)", *scaleFlag)
	}

	var selected []exper.Experiment
	if *expFlag == "" {
		selected = exper.Registry
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ex := exper.ByID(strings.TrimSpace(id))
			if ex == nil {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, *ex)
		}
	}

	if *seeds > 1 {
		runMultiSeed(scale, *seed, *seeds, selected)
		return
	}

	start := time.Now()
	ds := exper.SharedDataset(scale, *seed)
	fmt.Printf("dataset: %s; %d pages, %d extractions (built in %v)\n\n",
		ds.World.Stats(), len(ds.Corpus.Pages), len(ds.Extractions), time.Since(start).Round(time.Millisecond))

	violations := 0
	for _, ex := range selected {
		t0 := time.Now()
		tb := ex.Run(ds)
		tb.Render(os.Stdout)
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
		for _, n := range tb.Notes {
			if strings.HasPrefix(n, "VIOLATED") {
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Printf("%d paper-shape check(s) VIOLATED\n", violations)
		os.Exit(1)
	}
}

// runMultiSeed re-runs the selected experiments on n consecutive seeds and
// reports, for every HOLDS/VIOLATED shape check, how many seeds it held on —
// the honest way to read checks whose margins sit near seed noise.
func runMultiSeed(scale exper.Scale, baseSeed int64, n int, selected []exper.Experiment) {
	type tally struct{ holds, total int }
	checks := map[string]*tally{}
	order := []string{}
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)*101
		ds := exper.SharedDataset(scale, seed)
		fmt.Printf("seed %d: %d extractions\n", seed, len(ds.Extractions))
		for _, ex := range selected {
			tb := ex.Run(ds)
			for _, note := range tb.Notes {
				var held bool
				var msg string
				switch {
				case strings.HasPrefix(note, "HOLDS: "):
					held, msg = true, strings.TrimPrefix(note, "HOLDS: ")
				case strings.HasPrefix(note, "VIOLATED: "):
					held, msg = false, strings.TrimPrefix(note, "VIOLATED: ")
				default:
					continue
				}
				key := ex.ID + ": " + msg
				t, ok := checks[key]
				if !ok {
					t = &tally{}
					checks[key] = t
					order = append(order, key)
				}
				t.total++
				if held {
					t.holds++
				}
			}
		}
	}
	fmt.Printf("\nshape-check stability across %d seeds:\n", n)
	unstable := 0
	for _, key := range order {
		t := checks[key]
		marker := "stable  "
		if t.holds < t.total {
			marker = "UNSTABLE"
			unstable++
		}
		fmt.Printf("  %s %d/%d  %s\n", marker, t.holds, t.total, key)
	}
	if unstable > 0 {
		fmt.Printf("%d check(s) did not hold on every seed\n", unstable)
	}
}
