package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"kfusion/client"
	"kfusion/internal/exper"
	"kfusion/internal/faultfs"
	"kfusion/internal/server"
)

// serveRecord is the read-path latency record of the kfserved daemon under
// concurrent load: N clients hammering GET /v1/items/{id} against a server
// holding the fused bench dataset. Latencies are absolute and so
// machine-dependent; the -check gate validates the record's shape (positive
// monotone percentiles, positive throughput, zero request errors), not its
// absolute values — see checkServeRecord.
type serveRecord struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	RPS      float64 `json:"rps"`
}

// runServeBench starts a kfserved core on the fused bench dataset (in-memory
// state: the record measures the read path, not the disk), mounts it on a
// real loopback listener, and drives perClient item reads from nClients
// concurrent typed clients. The serve record is merged into the benchFile at
// path, preserving any -benchjson records already there.
func runServeBench(path string, seed int64, nClients, perClient int) error {
	out, err := loadOrNewBenchFile(path, seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "building bench dataset...\n")
	bench := exper.SharedDataset(exper.ScaleBench, seed)

	srv, err := server.New(server.Config{FS: faultfs.NewMem(), Method: "popaccu"})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.Hydrate(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fusing %d extractions into the server...\n", len(bench.Extractions))
	if _, err := srv.Append(bench.Extractions); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Shutdown below surfaces as ErrServerClosed here
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	// One scan read collects the item ids the workers will hammer (and warms
	// the whole path once).
	scan, err := client.New(base)
	if err != nil {
		return err
	}
	rows, err := scan.Triples(context.Background(), client.TriplesQuery{Limit: 4096})
	if err != nil {
		return err
	}
	if len(rows.Triples) == 0 {
		return fmt.Errorf("serve bench: the fused bench dataset produced no triples")
	}
	type itemID struct{ s, p string }
	items := make([]itemID, 0, len(rows.Triples))
	seen := map[itemID]bool{}
	for _, t := range rows.Triples {
		id := itemID{t.Subject, t.Predicate}
		if !seen[id] {
			seen[id] = true
			items = append(items, id)
		}
	}

	fmt.Fprintf(os.Stderr, "hammering %s with %d clients x %d reads over %d items...\n",
		base, nClients, perClient, len(items))
	latencies := make([][]time.Duration, nClients)
	errCounts := make([]int, nClients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own transport so connection reuse is
			// per-client, as a real fleet of callers would behave.
			c, err := client.New(base,
				client.WithHTTPClient(&http.Client{Transport: &http.Transport{}, Timeout: 30 * time.Second}),
				client.WithRetries(0, 0))
			if err != nil {
				errCounts[w] = perClient
				return
			}
			ctx := context.Background()
			lat := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				id := items[(w+i*nClients)%len(items)]
				t0 := time.Now()
				_, err := c.Item(ctx, id.s, id.p)
				if err != nil {
					errCounts[w]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[w] = lat
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	errors := 0
	for w := range latencies {
		all = append(all, latencies[w]...)
		errors += errCounts[w]
	}
	if len(all) == 0 {
		return fmt.Errorf("serve bench: all %d requests failed", nClients*perClient)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rec := &serveRecord{
		Clients:  nClients,
		Requests: nClients * perClient,
		Errors:   errors,
		P50Ms:    percentileMs(all, 0.50),
		P95Ms:    percentileMs(all, 0.95),
		P99Ms:    percentileMs(all, 0.99),
		RPS:      float64(len(all)) / wall.Seconds(),
	}
	fmt.Fprintf(os.Stderr, "read path: p50 %.3fms  p95 %.3fms  p99 %.3fms  %.0f req/s  (%d errors)\n",
		rec.P50Ms, rec.P95Ms, rec.P99Ms, rec.RPS, rec.Errors)
	out.Serve = rec
	return writeBenchFile(path, out)
}

// percentileMs returns the q-quantile of sorted latencies in milliseconds.
func percentileMs(sorted []time.Duration, q float64) float64 {
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// loadOrNewBenchFile reads an existing BENCH json to merge into, or starts a
// fresh one; either way the result is stamped with this run's environment.
func loadOrNewBenchFile(path string, seed int64) (benchFile, error) {
	out := newBenchFile(seed)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return out, err
	}
	var prev benchFile
	if err := json.Unmarshal(raw, &prev); err != nil {
		return out, fmt.Errorf("parsing %s: %w", path, err)
	}
	for name, rec := range prev.Benchmarks {
		out.Benchmarks[name] = rec
	}
	out.Serve = prev.Serve
	out.Sharded = prev.Sharded
	return out, nil
}

// checkServeRecord validates a baseline's serve-latency record. Absolute
// latencies vary by machine, so the gate enforces shape, not speed: the
// record must exist with the required concurrency, percentiles must be
// positive and monotone (p50 <= p95 <= p99), throughput positive, and the
// measured run error-free.
func checkServeRecord(rec *serveRecord) error {
	if rec == nil {
		return fmt.Errorf("baseline has no serve record; regenerate it with -serve")
	}
	if rec.Clients < 8 {
		return fmt.Errorf("serve record measured only %d concurrent clients; want >= 8", rec.Clients)
	}
	if rec.Errors > 0 {
		return fmt.Errorf("serve record carries %d request errors; a clean baseline must have none", rec.Errors)
	}
	if rec.P50Ms <= 0 || rec.P50Ms > rec.P95Ms || rec.P95Ms > rec.P99Ms {
		return fmt.Errorf("serve percentiles are not positive-monotone: p50 %.3fms, p95 %.3fms, p99 %.3fms",
			rec.P50Ms, rec.P95Ms, rec.P99Ms)
	}
	if rec.RPS <= 0 {
		return fmt.Errorf("serve record has non-positive throughput %.1f req/s", rec.RPS)
	}
	return nil
}
