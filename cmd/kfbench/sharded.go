package main

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"kfusion/internal/exper"
	"kfusion/internal/fusion"
	"kfusion/internal/kfio"
	"kfusion/internal/shard"
	"kfusion/internal/twolayer"
)

// shardedRecord is the web-scale sharded-fusion record (-sharded): a 10M+
// claim corpus synthesized as independent crawl segments, streamed from disk
// through a K-shard fusion coordinator, and fused with the lockstep
// cross-shard EM. Throughputs are absolute and machine-dependent, so the
// -check gate validates the record's shape (positive throughputs, balanced
// shards, equivalence within RefTol) and re-verifies shard-count
// independence live at bench scale — see checkShardedRecord.
type shardedRecord struct {
	// Shards is the coordinator's K.
	Shards int `json:"shards"`
	// Extractions and Claims are the corpus sizes: feed records read, and
	// deduplicated (provenance, triple) claims across all shards.
	Extractions int `json:"extractions"`
	Claims      int `json:"claims"`
	Provenances int `json:"provenances"`
	Triples     int `json:"triples"`
	Rounds      int `json:"rounds"`
	// AppendClaimsPerS is claims per second through Fusion.Append (routing,
	// per-shard dedup, graph compile/append), excluding feed decode;
	// FuseClaimsPerS is claims per second through one cold lockstep Fuse.
	AppendClaimsPerS float64 `json:"append_claims_per_s"`
	FuseClaimsPerS   float64 `json:"fuse_claims_per_s"`
	// GraphBytesTotal sums the shards' ApproxBytes; GraphBytesMaxShard is
	// the largest single shard — the bounded per-shard working set a
	// distributed deployment would hold per node. MaxShardShare is
	// max/total.
	GraphBytesTotal    int64   `json:"graph_bytes_total"`
	GraphBytesMaxShard int64   `json:"graph_bytes_max_shard"`
	MaxShardShare      float64 `json:"max_shard_share"`
	// EquivShards and EquivMaxAbsDiff record the bench-scale equivalence
	// measurement: the largest absolute difference of any triple
	// probability or provenance accuracy between the unsharded engine and
	// a K=EquivShards coordinator over the same corpus.
	EquivShards     int     `json:"equiv_shards"`
	EquivMaxAbsDiff float64 `json:"equiv_max_abs_diff"`
}

// runShardedBench measures web-scale sharded fusion and merges the record
// into the benchFile at path (preserving -benchjson and -serve records).
//
// The corpus is synthesized as independent ScaleLarge crawl segments
// (exper.SegmentExtractions) streamed to a JSONL feed until it holds at
// least target extraction records, then read back in bounded chunks through
// a K-shard coordinator — generation and replay memory stay bounded by one
// segment and one chunk regardless of the corpus size. feedPath == ""
// generates into a throwaway temp file; a non-empty feedPath is reused
// across runs if it already exists (delete it to regenerate).
func runShardedBench(path string, seed int64, k, target int, feedPath string) error {
	out, err := loadOrNewBenchFile(path, seed)
	if err != nil {
		return err
	}

	// Bench-scale equivalence first: it is seconds-cheap and refuses to
	// spend minutes on corpus generation if sharded fusion has drifted.
	fmt.Fprintf(os.Stderr, "building bench dataset for the equivalence measurement...\n")
	bench := exper.SharedDataset(exper.ScaleBench, seed)
	const equivK = 4
	diff, err := shardedEquivDiff(bench, equivK)
	if err != nil {
		return fmt.Errorf("sharded equivalence (K=%d): %w", equivK, err)
	}
	if diff > twolayer.RefTol {
		return fmt.Errorf("sharded equivalence (K=%d): max abs diff %.3g exceeds RefTol %.0g", equivK, diff, twolayer.RefTol)
	}
	fmt.Fprintf(os.Stderr, "equivalence: K=%d vs unsharded max abs diff %.3g (RefTol %.0g)\n", equivK, diff, twolayer.RefTol)

	cleanup := func() {}
	if feedPath == "" {
		feedPath = filepath.Join(os.TempDir(), fmt.Sprintf("kfbench-sharded-%d.jsonl", os.Getpid()))
		cleanup = func() { os.Remove(feedPath) }
	}
	defer cleanup()
	if _, err := os.Stat(feedPath); os.IsNotExist(err) {
		if err := generateShardedFeed(feedPath, seed, target); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "reusing feed %s\n", feedPath)
	}

	rec, err := measureShardedFusion(feedPath, k)
	if err != nil {
		return err
	}
	rec.EquivShards = equivK
	rec.EquivMaxAbsDiff = diff
	out.Sharded = rec
	return writeBenchFile(path, out)
}

// generateShardedFeed streams independent crawl segments into a JSONL feed
// until it holds at least target extraction records. The write goes through
// a temp file renamed into place, so a crashed generation never leaves a
// half-feed to be mistaken for a complete one.
func generateShardedFeed(path string, seed int64, target int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	w := kfio.NewExtractionWriter(f)
	start := time.Now()
	for seg := 0; w.Count() < target; seg++ {
		xs := exper.SegmentExtractions(seed, seg)
		if err := w.WriteBatch(xs); err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "generated segment %d: +%d extractions (%d/%d, %.0fs)\n",
			seg, len(xs), w.Count(), target, time.Since(start).Seconds())
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// shardedChunk bounds how many feed records one Append batch carries; replay
// memory beyond the shard graphs is one chunk of decoded records.
const shardedChunk = 250_000

// measureShardedFusion streams the feed through a fresh K-shard coordinator
// (timing Append exclusive of feed decode), runs one cold lockstep Fuse, and
// sizes the per-shard graphs.
func measureShardedFusion(feedPath string, k int) (*shardedRecord, error) {
	f, err := os.Open(feedPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := kfio.NewExtractionReader(f)

	cfg := fusion.PopAccuConfig()
	fus, err := shard.NewFusion(k, cfg.Granularity)
	if err != nil {
		return nil, err
	}
	extractions := 0
	var appendWall time.Duration
	for {
		batch, err := r.ReadBatch(shardedChunk)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("reading %s: %w", feedPath, err)
		}
		if len(batch) > 0 {
			extractions += len(batch)
			t0 := time.Now()
			if aerr := fus.Append(batch); aerr != nil {
				return nil, aerr
			}
			appendWall += time.Since(t0)
			fmt.Fprintf(os.Stderr, "appended %d extractions -> %d claims across %d shards (%.0fs in Append)\n",
				extractions, fus.NumClaims(), k, appendWall.Seconds())
		}
		if err != nil {
			break // io.EOF after the last complete record
		}
	}
	if fus.NumClaims() == 0 {
		return nil, fmt.Errorf("feed %s holds no extraction records", feedPath)
	}

	fmt.Fprintf(os.Stderr, "fusing %d claims (K=%d, %s)...\n", fus.NumClaims(), k, cfg.Method)
	t0 := time.Now()
	res, err := fus.Fuse(cfg)
	if err != nil {
		return nil, err
	}
	fuseWall := time.Since(t0)

	var total, maxShard int64
	for s := 0; s < k; s++ {
		b := int64(fus.Shard(s).ApproxBytes())
		total += b
		if b > maxShard {
			maxShard = b
		}
	}
	rec := &shardedRecord{
		Shards:             k,
		Extractions:        extractions,
		Claims:             fus.NumClaims(),
		Provenances:        fus.NumProvenances(),
		Triples:            len(res.Triples),
		Rounds:             res.Rounds,
		AppendClaimsPerS:   float64(fus.NumClaims()) / appendWall.Seconds(),
		FuseClaimsPerS:     float64(fus.NumClaims()) / fuseWall.Seconds(),
		GraphBytesTotal:    total,
		GraphBytesMaxShard: maxShard,
		MaxShardShare:      float64(maxShard) / float64(total),
	}
	fmt.Fprintf(os.Stderr, "sharded fusion: %d claims, %d rounds, append %.0f claims/s, fuse %.0f claims/s, "+
		"graphs %.1f MB total, max shard %.1f MB (%.1f%%)\n",
		rec.Claims, rec.Rounds, rec.AppendClaimsPerS, rec.FuseClaimsPerS,
		float64(total)/1e6, float64(maxShard)/1e6, rec.MaxShardShare*100)
	return rec, nil
}

// shardedEquivDiff fuses the bench corpus through the unsharded compiled
// engine and a K-shard coordinator and returns the largest absolute
// difference over triple probabilities and provenance accuracies. Integer
// outputs (triple sets, support counts, rounds) must match exactly; a
// mismatch is an error, not a diff.
func shardedEquivDiff(bench *exper.Dataset, k int) (float64, error) {
	cfg := fusion.PopAccuConfig()
	want := bench.Compiled(cfg.Granularity).MustFuse(cfg)

	fus, err := shard.NewFusion(k, cfg.Granularity)
	if err != nil {
		return 0, err
	}
	if err := fus.Append(bench.Extractions); err != nil {
		return 0, err
	}
	got, err := fus.Fuse(cfg)
	if err != nil {
		return 0, err
	}

	if got.Rounds != want.Rounds || len(got.Triples) != len(want.Triples) {
		return 0, fmt.Errorf("shape differs: rounds %d vs %d, triples %d vs %d",
			got.Rounds, want.Rounds, len(got.Triples), len(want.Triples))
	}
	probs := make(map[string]float64, len(want.Triples))
	for _, t := range want.Triples {
		probs[t.Triple.Encode()] = t.Probability
	}
	diff := 0.0
	for _, t := range got.Triples {
		w, ok := probs[t.Triple.Encode()]
		if !ok {
			return 0, fmt.Errorf("sharded result fused triple %s the unsharded engine did not", t.Triple.Encode())
		}
		if d := math.Abs(t.Probability - w); d > diff {
			diff = d
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		return 0, fmt.Errorf("provenance sets differ: %d vs %d", len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for key, w := range want.ProvAccuracy {
		g, ok := got.ProvAccuracy[key]
		if !ok {
			return 0, fmt.Errorf("provenance %q missing from the sharded result", key)
		}
		if d := math.Abs(g - w); d > diff {
			diff = d
		}
	}
	return diff, nil
}

// checkShardedRecord validates a baseline's sharded-fusion record. Absolute
// throughputs vary by machine, so the gate enforces shape: a web-scale
// corpus (>= 10M claims) actually partitioned (K >= 2, shards balanced
// within 2x of even), positive throughputs, and a recorded equivalence
// measurement within RefTol. The live shard-count-independence check runs
// separately in runCheck.
func checkShardedRecord(rec *shardedRecord) error {
	if rec == nil {
		return fmt.Errorf("baseline has no sharded record; regenerate it with -sharded")
	}
	if rec.Shards < 2 {
		return fmt.Errorf("sharded record measured only %d shard(s); want >= 2", rec.Shards)
	}
	if rec.Claims < 10_000_000 {
		return fmt.Errorf("sharded record covers %d claims; the web-scale measurement wants >= 10M", rec.Claims)
	}
	if rec.AppendClaimsPerS <= 0 || rec.FuseClaimsPerS <= 0 {
		return fmt.Errorf("sharded record has non-positive throughput (append %.1f, fuse %.1f claims/s)",
			rec.AppendClaimsPerS, rec.FuseClaimsPerS)
	}
	if rec.Rounds < 1 || rec.Triples <= 0 {
		return fmt.Errorf("sharded record fused %d triples in %d rounds; want a non-trivial fusion", rec.Triples, rec.Rounds)
	}
	if rec.GraphBytesTotal <= 0 || rec.GraphBytesMaxShard <= 0 || rec.GraphBytesMaxShard > rec.GraphBytesTotal {
		return fmt.Errorf("sharded graph sizes are inconsistent: max shard %d of total %d",
			rec.GraphBytesMaxShard, rec.GraphBytesTotal)
	}
	if maxShare := 2.0 / float64(rec.Shards); rec.MaxShardShare > maxShare {
		return fmt.Errorf("largest shard holds %.1f%% of the graph bytes across %d shards; "+
			"want <= %.1f%% (2x even) — the item-hash routing has gone unbalanced",
			rec.MaxShardShare*100, rec.Shards, maxShare*100)
	}
	if rec.EquivShards < 2 || rec.EquivMaxAbsDiff > twolayer.RefTol {
		return fmt.Errorf("sharded equivalence measurement (K=%d, max abs diff %.3g) is missing or beyond RefTol %.0g",
			rec.EquivShards, rec.EquivMaxAbsDiff, twolayer.RefTol)
	}
	return nil
}
