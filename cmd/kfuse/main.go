// Command kfuse runs knowledge fusion over a JSONL extraction corpus and
// writes fused triples with truthfulness probabilities.
//
// Usage:
//
//	kfuse -in extractions.jsonl -out fused.jsonl -method popaccu+ -gold gold.jsonl
//	kfuse -in feed.jsonl -append -chunk 50000 -method popaccu
//
// Methods: vote, accu, popaccu, popaccu+unsup, popaccu+ (the last requires
// -gold for accuracy initialization), twolayer, ltm.
//
// -append streams the input in -chunk-sized batches over ONE growing
// compiled graph: the first chunk compiles, every later chunk appends
// (incrementally interning only what is new — bit-identical to recompiling
// the whole feed), and each chunk's fusion warm-starts from the previous
// chunk's posteriors, so re-fusing after a batch costs a fraction of a cold
// run. The final output covers the entire feed. Supported for every method
// except ltm.
//
// -state DIR makes -append durable: every batch is journaled before it is
// applied and the compiled graph is snapshotted at the end of the run, so a
// crashed or killed run resumes exactly where it left off — the restarted
// chain produces byte-identical fused output to an uninterrupted run.
//
// -shards K partitions the corpus by data item into K self-contained graphs
// fused in lockstep with deterministic cross-shard merges (internal/shard):
// each shard compiles, appends and fuses in bounded memory, which is what
// holds a web-scale feed. K=1 is bit-identical to the unsharded pipeline;
// K>1 agrees within the documented RefTol. With -append -state the state
// directory holds one generation store per shard (DIR/shard-000 …); sharded
// durable state supports the claim-layer methods (for twolayer, -shards
// runs in memory only). See docs/OPERATIONS.md for the recovery ladder and
// its one sharded caveat (the warm chain restarts from the last snapshot).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
	"kfusion/internal/kbstore"
	"kfusion/internal/kfio"
	"kfusion/internal/multitruth"
	"kfusion/internal/shard"
	"kfusion/internal/twolayer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfuse: ")
	var (
		in      = flag.String("in", "extractions.jsonl", "extraction input file")
		out     = flag.String("out", "fused.jsonl", "fused output file")
		method  = flag.String("method", "popaccu", "vote | accu | popaccu | popaccu+unsup | popaccu+ | twolayer | ltm")
		goldIn  = flag.String("gold", "", "gold labels (required for popaccu+)")
		gran    = flag.String("granularity", "", "url | site | site-pred | site-pred-pattern (default: method preset)")
		rounds  = flag.Int("rounds", 0, "override round cap R")
		theta   = flag.Float64("theta", -1, "override accuracy threshold θ")
		sampleL = flag.Int("L", 0, "override per-reducer sample cap L")
		quiet   = flag.Bool("q", false, "suppress the summary")
		workers = flag.Int("workers", 0, "MapReduce workers (0 = all cores)")
		kbOut   = flag.String("kb", "", "also persist the fused KB to this kbstore file")
		appendM = flag.Bool("append", false, "stream the input in chunks over one growing graph (incremental compile + warm-start fusion)")
		chunk   = flag.Int("chunk", 100000, "with -append: extractions per chunk")
		state   = flag.String("state", "", "with -append: durable state directory (journal + snapshots; a restarted run resumes from it)")
		shards  = flag.Int("shards", 1, "partition the corpus by data item into K lockstep-fused graphs (1 = unsharded)")
	)
	flag.Parse()

	if *appendM && *chunk <= 0 {
		log.Fatalf("-chunk must be positive, got %d", *chunk)
	}
	if *state != "" && !*appendM {
		log.Fatal("-state requires -append")
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}

	var xs []extract.Extraction
	if !*appendM {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		xs, err = kfio.ReadExtractions(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	var labeler fusion.Labeler
	if *goldIn != "" {
		g, err := os.Open(*goldIn)
		if err != nil {
			log.Fatal(err)
		}
		lb, n, err := kfio.ReadGold(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
		labeler = lb
		if !*quiet {
			fmt.Printf("gold labels: %d\n", n)
		}
	}

	// The §5 extension models have their own drivers.
	switch *method {
	case "twolayer":
		tcfg := twolayer.DefaultConfig()
		tcfg.SiteLevel = true
		tcfg.Workers = *workers
		if *rounds > 0 {
			tcfg.Rounds = *rounds
		}
		if *shards > 1 {
			if *state != "" {
				log.Fatal("-state with -shards supports the claim-layer methods only (twolayer state is not yet sharded)")
			}
			res, n := shardedTwoLayer(*in, xs, *appendM, *chunk, *shards, tcfg, *quiet)
			writeResult(res, *out, *kbOut, *quiet, *method, n)
			return
		}
		if *appendM {
			res, n := appendTwoLayer(*in, *chunk, tcfg, *quiet, *state)
			writeResult(res, *out, *kbOut, *quiet, *method, n)
			return
		}
		res, err := twolayer.Fuse(xs, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	case "ltm":
		if *appendM {
			log.Fatal("-append is not supported with -method ltm")
		}
		if *shards > 1 {
			log.Fatal("-shards is not supported with -method ltm")
		}
		mcfg := multitruth.DefaultConfig()
		mcfg.Workers = *workers
		if *rounds > 0 {
			mcfg.Rounds = *rounds
		}
		compiled, err := fusion.CompileWorkers(fusion.Claims(xs, fusion.GranExtractorURL), *workers, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := multitruth.FuseCompiled(compiled, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	}

	var cfg fusion.Config
	switch *method {
	case "vote":
		cfg = fusion.VoteConfig()
	case "accu":
		cfg = fusion.AccuConfig()
	case "popaccu":
		cfg = fusion.PopAccuConfig()
	case "popaccu+unsup":
		cfg = fusion.PopAccuPlusUnsupConfig()
	case "popaccu+":
		if labeler == nil {
			log.Fatal("-method popaccu+ requires -gold")
		}
		cfg = fusion.PopAccuPlusConfig(labeler)
	default:
		log.Fatalf("unknown -method %q", *method)
	}

	switch *gran {
	case "":
	case "url":
		cfg.Granularity = fusion.GranExtractorURL
	case "site":
		cfg.Granularity = fusion.GranExtractorSite
	case "site-pred":
		cfg.Granularity = fusion.GranExtractorSitePred
	case "site-pred-pattern":
		cfg.Granularity = fusion.GranExtractorSitePredPattern
	default:
		log.Fatalf("unknown -granularity %q", *gran)
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *theta >= 0 {
		cfg.AccuracyThreshold = *theta
	}
	if *sampleL > 0 {
		cfg.SampleL = *sampleL
	}
	cfg.Workers = *workers

	if *shards > 1 {
		res, n := shardedFuse(*in, xs, *appendM, *chunk, *shards, cfg, *quiet, *state, *method)
		writeResult(res, *out, *kbOut, *quiet, *method, n)
		return
	}
	if *appendM {
		res, n := appendFuse(*in, *chunk, cfg, *quiet, *state, *method)
		writeResult(res, *out, *kbOut, *quiet, *method, n)
		return
	}

	claims := fusion.Claims(xs, cfg.Granularity)
	res, err := fusion.Fuse(claims, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		fmt.Printf("method %s over %d extractions (%d claims at %s granularity)\n",
			*method, len(xs), len(claims), cfg.Granularity)
	}
	writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
}

// shardedFuse is the -shards driver for the claim-layer methods. One-shot
// mode routes the loaded corpus through a K-shard coordinator; -append
// streams the feed in chunks, fusing after each with a warm start from the
// previous chunk's merged result. With -state the graphs persist in one
// generation store per shard (shard.Stores): batches journal before they
// apply, graphs snapshot at the end, and a restarted run resumes the graphs
// bit-identically — the warm chain itself restarts from the last snapshot's
// merged result (see docs/OPERATIONS.md).
func shardedFuse(in string, xs []extract.Extraction, appendM bool, chunk, k int,
	cfg fusion.Config, quiet bool, stateDir, method string) (*fusion.Result, int) {
	if !appendM {
		f, err := shard.NewFusion(k, cfg.Granularity)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Append(xs); err != nil {
			log.Fatal(err)
		}
		res, err := f.Fuse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !quiet {
			fmt.Printf("method %s over %d extractions (%d claims at %s granularity, %d shards)\n",
				method, len(xs), f.NumClaims(), cfg.Granularity, k)
		}
		return res, len(xs)
	}

	if stateDir == "" {
		f, err := shard.NewFusion(k, cfg.Granularity)
		if err != nil {
			log.Fatal(err)
		}
		var prev *fusion.Result
		n := streamChunks(in, chunk, 0, func(batch []extract.Extraction) error {
			t0 := time.Now()
			if err := f.Append(batch); err != nil {
				return err
			}
			res, err := f.FuseWarm(cfg, prev)
			if err != nil {
				return err
			}
			prev = res
			if !quiet {
				fmt.Printf("chunk: +%d extractions -> %d claims, %d triples, %d rounds (%d shards, %v)\n",
					len(batch), f.NumClaims(), len(res.Triples), res.Rounds, k, time.Since(t0).Round(time.Millisecond))
			}
			return nil
		})
		if prev == nil {
			log.Fatal("no extractions fused: input is empty or ends mid-record before its first complete chunk")
		}
		return prev, n
	}

	// Durable sharded chain: the apply function rebuilds each shard's graph
	// (live appends and journal replay run the identical code); fusion is
	// coordinator-level, outside the per-shard apply.
	streams := make(map[*genstore.State]*fusion.ClaimStream)
	apply := func(st *genstore.State, batch []extract.Extraction) error {
		stream := streams[st]
		if stream == nil {
			if st.Claim != nil {
				stream = fusion.SeedClaimStream(cfg.Granularity, st.Claim)
			} else {
				stream = fusion.NewClaimStream(cfg.Granularity)
			}
			streams[st] = stream
		}
		claims := stream.Add(batch)
		if st.Claim == nil {
			st.Claim = fusion.MustCompile(claims)
		} else {
			st.Claim = st.Claim.MustAppend(claims)
		}
		st.Method = method
		st.Gran = cfg.Granularity
		return nil
	}
	stores, states, err := shard.OpenStores(stateDir, k, apply)
	if err != nil {
		log.Fatal(err)
	}
	defer stores.Close()
	for _, d := range stores.Degradations() {
		log.Printf("state recovery: %s", d)
	}
	for s, st := range states {
		if st.Method != "" && st.Method != method {
			log.Fatalf("shard %d state holds method %q, running %q", s, st.Method, method)
		}
		if st.Claim != nil && st.Gran != cfg.Granularity {
			log.Fatalf("shard %d state holds granularity %s, running %s", s, st.Gran, cfg.Granularity)
		}
	}
	prev := states[0].Result // persisted merged result, the warm seed
	graphs := func() []*fusion.Compiled {
		gs := make([]*fusion.Compiled, k)
		for s, st := range states {
			gs[s] = st.Claim
		}
		return gs
	}
	fused := false
	streamChunks(in, chunk, shard.Consumed(states), func(batch []extract.Extraction) error {
		t0 := time.Now()
		if err := stores.Append(states, batch); err != nil {
			return err
		}
		res, err := shard.FuseShards(graphs(), cfg, prev)
		if err != nil {
			return err
		}
		prev = res
		fused = true
		if !quiet {
			fmt.Printf("chunk %d: +%d extractions -> %d triples, %d rounds (%d shards, %v)\n",
				states[0].Batches-1, len(batch), len(res.Triples), res.Rounds, k, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	})
	if prev != nil && !fused && staleResult(prev, graphs()) {
		// Crash window: journal replay advanced the graphs past the last
		// snapshot's merged result and the feed brought nothing new to
		// trigger a fuse. Re-fuse so the output covers the replayed batches;
		// a clean rerun (counts agree) reuses the stored result byte-for-byte.
		res, err := shard.FuseShards(graphs(), cfg, prev)
		if err != nil {
			log.Fatal(err)
		}
		prev = res
	}
	if prev == nil {
		log.Fatal("no extractions fused: input is empty or ends mid-record before its first complete chunk")
	}
	states[0].Result = prev
	if err := stores.Snapshot(states); err != nil {
		log.Fatal(err)
	}
	return prev, shard.Consumed(states)
}

// staleResult reports whether a persisted merged result no longer covers the
// recovered graphs — the signature of a crash after journaled appends but
// before the end-of-run snapshot. Triple and provenance counts only grow, so
// a mismatch is conclusive; equality can in principle miss a replayed batch
// of purely duplicate-shape claims, which perturbs accuracies but not the
// covered sets.
func staleResult(res *fusion.Result, graphs []*fusion.Compiled) bool {
	triples, provs := 0, make(map[string]bool, len(res.ProvAccuracy))
	for _, g := range graphs {
		if g == nil {
			continue
		}
		triples += g.NumTriples()
		for p := 0; p < g.NumProvenances(); p++ {
			provs[g.ProvKey(p)] = true
		}
	}
	return triples != len(res.Triples) || len(provs) != len(res.ProvAccuracy)
}

// shardedTwoLayer is the -shards driver for the §5.1 two-layer model
// (in-memory: sharded two-layer state persistence is not yet supported).
func shardedTwoLayer(in string, xs []extract.Extraction, appendM bool, chunk, k int,
	cfg twolayer.Config, quiet bool) (*fusion.Result, int) {
	tl, err := shard.NewTwoLayer(k, cfg.SiteLevel)
	if err != nil {
		log.Fatal(err)
	}
	if !appendM {
		tl.Append(xs)
		res, _, err := tl.Fuse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !quiet {
			fmt.Printf("method twolayer over %d extractions (%d statements, %d shards)\n",
				len(xs), tl.NumStatements(), k)
		}
		return res, len(xs)
	}
	var res *fusion.Result
	var warm *twolayer.State
	n := streamChunks(in, chunk, 0, func(batch []extract.Extraction) error {
		t0 := time.Now()
		tl.Append(batch)
		r, st, err := tl.FuseWarm(cfg, warm)
		if err != nil {
			return err
		}
		res, warm = r, st
		if !quiet {
			fmt.Printf("chunk: +%d extractions -> %d statements, %d triples, %d rounds (%d shards, %v)\n",
				len(batch), tl.NumStatements(), len(r.Triples), r.Rounds, k, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	})
	if res == nil {
		log.Fatal("no extractions fused: input is empty or ends mid-record before its first complete chunk")
	}
	return res, n
}

// streamChunks reads the feed in chunk-sized batches, skipping the first
// skip records (already consumed by a resumed state), and hands each
// complete batch to fn. A partial final line — a producer appending right
// now — ends the run cleanly after the last complete chunk, deferring the
// incomplete chunk's records to the next run so re-chunking stays identical.
// It returns the total records consumed including the skipped prefix.
func streamChunks(in string, chunk, skip int, fn func([]extract.Extraction) error) int {
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := kfio.NewExtractionReader(f)
	for i := 0; i < skip; i++ {
		if _, err := r.Next(); err != nil {
			log.Fatalf("state has consumed %d records but the feed ends after %d: %v", skip, i, err)
		}
	}
	consumed := skip
	for {
		batch, rerr := r.ReadBatch(chunk)
		var partial *kfio.ErrPartialLine
		isPartial := errors.As(rerr, &partial)
		if rerr != nil && !errors.Is(rerr, io.EOF) && !isPartial {
			log.Fatal(rerr)
		}
		if isPartial {
			if len(batch) > 0 {
				log.Printf("feed ends mid-record at byte %d; deferring %d complete records so the next run re-chunks them identically",
					partial.Offset, len(batch))
			}
			log.Printf("stopping after %d complete records (rerun to pick up the rest)", consumed)
			return consumed
		}
		if len(batch) > 0 {
			if err := fn(batch); err != nil {
				log.Fatal(err)
			}
			consumed += len(batch)
		}
		if errors.Is(rerr, io.EOF) {
			return consumed
		}
	}
}

// appendFuse is the streaming driver for the single-truth methods: chunks
// flatten through one ClaimStream (cross-batch dedup), compile once, append
// per chunk, and every chunk's fusion warm-starts from the previous chunk's
// provenance accuracies. With a state directory the same apply chain runs
// through the generation store, which journals each batch before applying
// it and snapshots the graph at the end.
func appendFuse(in string, chunk int, cfg fusion.Config, quiet bool, stateDir, method string) (*fusion.Result, int) {
	var stream *fusion.ClaimStream
	apply := func(st *genstore.State, batch []extract.Extraction) error {
		if stream == nil {
			if st.Claim != nil {
				stream = fusion.SeedClaimStream(cfg.Granularity, st.Claim)
			} else {
				stream = fusion.NewClaimStream(cfg.Granularity)
			}
		}
		claims := stream.Add(batch)
		if st.Claim == nil {
			st.Claim = fusion.MustCompile(claims)
		} else {
			st.Claim = st.Claim.MustAppend(claims)
		}
		res, err := st.Claim.FuseWarm(cfg, st.Result)
		if err != nil {
			return err
		}
		st.Method = method
		st.Gran = cfg.Granularity
		st.Result = res
		return nil
	}
	progress := func(st *genstore.State, added int, elapsed time.Duration) {
		if !quiet {
			fmt.Printf("chunk %d: +%d extractions -> %d claims, %d triples, %d rounds (%v)\n",
				st.Batches-1, added, st.Claim.NumClaims(), len(st.Result.Triples), st.Result.Rounds,
				elapsed.Round(time.Millisecond))
		}
	}
	check := func(st *genstore.State) {
		if st.Method != "" && st.Method != method {
			log.Fatalf("state directory holds method %q, running %q", st.Method, method)
		}
		if st.Claim != nil && st.Gran != cfg.Granularity {
			log.Fatalf("state directory holds granularity %s, running %s", st.Gran, cfg.Granularity)
		}
	}
	return runAppend(in, chunk, stateDir, apply, check, progress)
}

// appendTwoLayer is the streaming driver for the §5.1 two-layer model: the
// extraction graph grows by Append per chunk and each chunk's EM
// warm-starts from the previous chunk's source accuracies and extractor
// rates.
func appendTwoLayer(in string, chunk int, cfg twolayer.Config, quiet bool, stateDir string) (*fusion.Result, int) {
	apply := func(st *genstore.State, batch []extract.Extraction) error {
		if st.Ext == nil {
			st.Ext = extract.Compile(batch, cfg.SiteLevel)
		} else {
			st.Ext = st.Ext.Append(batch)
		}
		res, tl, err := twolayer.FuseCompiledWarm(st.Ext, cfg, st.TL)
		if err != nil {
			return err
		}
		st.Method = "twolayer"
		st.SiteLevel = cfg.SiteLevel
		st.Result = res
		st.TL = tl
		return nil
	}
	progress := func(st *genstore.State, added int, elapsed time.Duration) {
		if !quiet {
			fmt.Printf("chunk %d: +%d extractions -> %d statements, %d triples, %d rounds (%v)\n",
				st.Batches-1, added, st.Ext.NumStatements(), len(st.Result.Triples), st.Result.Rounds,
				elapsed.Round(time.Millisecond))
		}
	}
	check := func(st *genstore.State) {
		if st.Method != "" && st.Method != "twolayer" {
			log.Fatalf("state directory holds method %q, running %q", st.Method, "twolayer")
		}
		if st.Ext != nil && st.SiteLevel != cfg.SiteLevel {
			log.Fatalf("state directory holds site-level=%v, running site-level=%v", st.SiteLevel, cfg.SiteLevel)
		}
	}
	return runAppend(in, chunk, stateDir, apply, check, progress)
}

// runAppend is the shared chunked-append loop. With stateDir it opens (or
// resumes) a generation store, reports any recovery degradations, skips the
// feed records the recovered state already consumed, and journals each new
// batch before applying; without it the apply chain runs in memory only. A
// partial final line (a producer appending right now) ends the run cleanly.
// In a durable chain the incomplete chunk's records are deferred to the next
// run rather than applied as a short batch: warm-start fusion is sensitive to
// batch boundaries, so keeping Consumed chunk-aligned is what makes a resumed
// chain byte-identical to one that read the finished feed in one go.
func runAppend(in string, chunk int, stateDir string, apply genstore.ApplyFunc,
	check func(*genstore.State), progress func(*genstore.State, int, time.Duration)) (*fusion.Result, int) {
	var store *genstore.Store
	var st *genstore.State
	if stateDir != "" {
		var err error
		store, st, err = genstore.Open(stateDir, apply)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		for _, d := range store.Degradations() {
			log.Printf("state recovery: %s", d)
		}
		check(st)
	} else {
		st = &genstore.State{}
	}

	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := kfio.NewExtractionReader(f)
	for i := 0; i < st.Consumed; i++ {
		if _, err := r.Next(); err != nil {
			log.Fatalf("state has consumed %d records but the feed ends after %d: %v", st.Consumed, i, err)
		}
	}

	for {
		batch, rerr := r.ReadBatch(chunk)
		var partial *kfio.ErrPartialLine
		isPartial := errors.As(rerr, &partial)
		if rerr != nil && !errors.Is(rerr, io.EOF) && !isPartial {
			log.Fatal(rerr)
		}
		deferring := isPartial && store != nil && len(batch) > 0
		if len(batch) > 0 && !deferring {
			t0 := time.Now()
			if store != nil {
				if err := store.Append(st, batch); err != nil {
					log.Fatal(err)
				}
			} else {
				if err := apply(st, batch); err != nil {
					log.Fatal(err)
				}
				st.Batches++
				st.Consumed += len(batch)
			}
			progress(st, len(batch), time.Since(t0))
		}
		if isPartial {
			if deferring {
				log.Printf("feed ends mid-record at byte %d; deferring %d complete records so the next run re-chunks them identically",
					partial.Offset, len(batch))
			}
			log.Printf("stopping after %d complete records (rerun to pick up the rest)", st.Consumed)
			break
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
	}
	if store != nil {
		if err := store.Snapshot(st); err != nil {
			log.Fatal(err)
		}
	}
	if st.Result == nil {
		log.Fatal("no extractions fused: input is empty or ends mid-record before its first complete chunk")
	}
	return st.Result, st.Consumed
}

// writeResult persists the fused output as JSONL and optionally as a kbstore
// snapshot.
func writeResult(res *fusion.Result, out, kbOut string, quiet bool, method string, nExtractions int) {
	o, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := kfio.WriteFused(o, res); err != nil {
		log.Fatal(err)
	}
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}
	if kbOut != "" {
		if err := kbstore.Write(kbOut, res.Triples); err != nil {
			log.Fatal(err)
		}
	}
	if !quiet {
		fmt.Printf("fused %d unique triples in %d rounds (%d without probability) -> %s\n",
			len(res.Triples), res.Rounds, res.Unpredicted, out)
		if kbOut != "" {
			fmt.Printf("knowledge base snapshot -> %s\n", kbOut)
		}
	}
}
