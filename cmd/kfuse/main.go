// Command kfuse runs knowledge fusion over a JSONL extraction corpus and
// writes fused triples with truthfulness probabilities.
//
// Usage:
//
//	kfuse -in extractions.jsonl -out fused.jsonl -method popaccu+ -gold gold.jsonl
//	kfuse -in feed.jsonl -append -chunk 50000 -method popaccu
//
// Methods: vote, accu, popaccu, popaccu+unsup, popaccu+ (the last requires
// -gold for accuracy initialization), twolayer, ltm.
//
// -append streams the input in -chunk-sized batches over ONE growing
// compiled graph: the first chunk compiles, every later chunk appends
// (incrementally interning only what is new — bit-identical to recompiling
// the whole feed), and each chunk's fusion warm-starts from the previous
// chunk's posteriors, so re-fusing after a batch costs a fraction of a cold
// run. The final output covers the entire feed. Supported for every method
// except ltm.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kbstore"
	"kfusion/internal/kfio"
	"kfusion/internal/multitruth"
	"kfusion/internal/twolayer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfuse: ")
	var (
		in      = flag.String("in", "extractions.jsonl", "extraction input file")
		out     = flag.String("out", "fused.jsonl", "fused output file")
		method  = flag.String("method", "popaccu", "vote | accu | popaccu | popaccu+unsup | popaccu+ | twolayer | ltm")
		goldIn  = flag.String("gold", "", "gold labels (required for popaccu+)")
		gran    = flag.String("granularity", "", "url | site | site-pred | site-pred-pattern (default: method preset)")
		rounds  = flag.Int("rounds", 0, "override round cap R")
		theta   = flag.Float64("theta", -1, "override accuracy threshold θ")
		sampleL = flag.Int("L", 0, "override per-reducer sample cap L")
		quiet   = flag.Bool("q", false, "suppress the summary")
		workers = flag.Int("workers", 0, "MapReduce workers (0 = all cores)")
		kbOut   = flag.String("kb", "", "also persist the fused KB to this kbstore file")
		appendM = flag.Bool("append", false, "stream the input in chunks over one growing graph (incremental compile + warm-start fusion)")
		chunk   = flag.Int("chunk", 100000, "with -append: extractions per chunk")
	)
	flag.Parse()

	if *appendM && *chunk <= 0 {
		log.Fatalf("-chunk must be positive, got %d", *chunk)
	}

	var xs []extract.Extraction
	if !*appendM {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		xs, err = kfio.ReadExtractions(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	var labeler fusion.Labeler
	if *goldIn != "" {
		g, err := os.Open(*goldIn)
		if err != nil {
			log.Fatal(err)
		}
		lb, n, err := kfio.ReadGold(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
		labeler = lb
		if !*quiet {
			fmt.Printf("gold labels: %d\n", n)
		}
	}

	// The §5 extension models have their own drivers.
	switch *method {
	case "twolayer":
		tcfg := twolayer.DefaultConfig()
		tcfg.SiteLevel = true
		tcfg.Workers = *workers
		if *rounds > 0 {
			tcfg.Rounds = *rounds
		}
		if *appendM {
			res, n := appendTwoLayer(*in, *chunk, tcfg, *quiet)
			writeResult(res, *out, *kbOut, *quiet, *method, n)
			return
		}
		res, err := twolayer.Fuse(xs, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	case "ltm":
		if *appendM {
			log.Fatal("-append is not supported with -method ltm")
		}
		mcfg := multitruth.DefaultConfig()
		mcfg.Workers = *workers
		if *rounds > 0 {
			mcfg.Rounds = *rounds
		}
		compiled, err := fusion.CompileWorkers(fusion.Claims(xs, fusion.GranExtractorURL), *workers, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := multitruth.FuseCompiled(compiled, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	}

	var cfg fusion.Config
	switch *method {
	case "vote":
		cfg = fusion.VoteConfig()
	case "accu":
		cfg = fusion.AccuConfig()
	case "popaccu":
		cfg = fusion.PopAccuConfig()
	case "popaccu+unsup":
		cfg = fusion.PopAccuPlusUnsupConfig()
	case "popaccu+":
		if labeler == nil {
			log.Fatal("-method popaccu+ requires -gold")
		}
		cfg = fusion.PopAccuPlusConfig(labeler)
	default:
		log.Fatalf("unknown -method %q", *method)
	}

	switch *gran {
	case "":
	case "url":
		cfg.Granularity = fusion.GranExtractorURL
	case "site":
		cfg.Granularity = fusion.GranExtractorSite
	case "site-pred":
		cfg.Granularity = fusion.GranExtractorSitePred
	case "site-pred-pattern":
		cfg.Granularity = fusion.GranExtractorSitePredPattern
	default:
		log.Fatalf("unknown -granularity %q", *gran)
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *theta >= 0 {
		cfg.AccuracyThreshold = *theta
	}
	if *sampleL > 0 {
		cfg.SampleL = *sampleL
	}
	cfg.Workers = *workers

	if *appendM {
		res, n := appendFuse(*in, *chunk, cfg, *quiet)
		writeResult(res, *out, *kbOut, *quiet, *method, n)
		return
	}

	claims := fusion.Claims(xs, cfg.Granularity)
	res, err := fusion.Fuse(claims, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		fmt.Printf("method %s over %d extractions (%d claims at %s granularity)\n",
			*method, len(xs), len(claims), cfg.Granularity)
	}
	writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
}

// appendFuse is the streaming driver for the single-truth methods: chunks
// flatten through one ClaimStream (cross-batch dedup), compile once, append
// per chunk, and every chunk's fusion warm-starts from the previous chunk's
// provenance accuracies.
func appendFuse(in string, chunk int, cfg fusion.Config, quiet bool) (*fusion.Result, int) {
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := kfio.NewExtractionReader(f)
	stream := fusion.NewClaimStream(cfg.Granularity)
	var graph *fusion.Compiled
	var res *fusion.Result
	total := 0
	for ci := 0; ; ci++ {
		batch, rerr := r.ReadBatch(chunk)
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			log.Fatal(rerr)
		}
		if len(batch) > 0 {
			total += len(batch)
			t0 := time.Now()
			claims := stream.Add(batch)
			if graph == nil {
				graph = fusion.MustCompile(claims)
			} else {
				graph = graph.MustAppend(claims)
			}
			res, err = graph.FuseWarm(cfg, res)
			if err != nil {
				log.Fatal(err)
			}
			if !quiet {
				fmt.Printf("chunk %d: +%d extractions -> %d claims, %d triples, %d rounds (%v)\n",
					ci, len(batch), graph.NumClaims(), len(res.Triples), res.Rounds,
					time.Since(t0).Round(time.Millisecond))
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
	}
	if res == nil {
		log.Fatal("no extractions in input")
	}
	return res, total
}

// appendTwoLayer is the streaming driver for the §5.1 two-layer model: the
// extraction graph grows by Append per chunk and each chunk's EM
// warm-starts from the previous chunk's source accuracies and extractor
// rates.
func appendTwoLayer(in string, chunk int, cfg twolayer.Config, quiet bool) (*fusion.Result, int) {
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := kfio.NewExtractionReader(f)
	var graph *extract.Compiled
	var state *twolayer.State
	var res *fusion.Result
	total := 0
	for ci := 0; ; ci++ {
		batch, rerr := r.ReadBatch(chunk)
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			log.Fatal(rerr)
		}
		if len(batch) > 0 {
			total += len(batch)
			t0 := time.Now()
			if graph == nil {
				graph = extract.Compile(batch, cfg.SiteLevel)
			} else {
				graph = graph.Append(batch)
			}
			res, state, err = twolayer.FuseCompiledWarm(graph, cfg, state)
			if err != nil {
				log.Fatal(err)
			}
			if !quiet {
				fmt.Printf("chunk %d: +%d extractions -> %d statements, %d triples, %d rounds (%v)\n",
					ci, len(batch), graph.NumStatements(), len(res.Triples), res.Rounds,
					time.Since(t0).Round(time.Millisecond))
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
	}
	if res == nil {
		log.Fatal("no extractions in input")
	}
	return res, total
}

// writeResult persists the fused output as JSONL and optionally as a kbstore
// snapshot.
func writeResult(res *fusion.Result, out, kbOut string, quiet bool, method string, nExtractions int) {
	o, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := kfio.WriteFused(o, res); err != nil {
		log.Fatal(err)
	}
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}
	if kbOut != "" {
		if err := kbstore.Write(kbOut, res.Triples); err != nil {
			log.Fatal(err)
		}
	}
	if !quiet {
		fmt.Printf("fused %d unique triples in %d rounds (%d without probability) -> %s\n",
			len(res.Triples), res.Rounds, res.Unpredicted, out)
		if kbOut != "" {
			fmt.Printf("knowledge base snapshot -> %s\n", kbOut)
		}
	}
}
