// Command kfuse runs knowledge fusion over a JSONL extraction corpus and
// writes fused triples with truthfulness probabilities.
//
// Usage:
//
//	kfuse -in extractions.jsonl -out fused.jsonl -method popaccu+ -gold gold.jsonl
//
// Methods: vote, accu, popaccu, popaccu+unsup, popaccu+ (the last requires
// -gold for accuracy initialization).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kfusion/internal/fusion"
	"kfusion/internal/kbstore"
	"kfusion/internal/kfio"
	"kfusion/internal/multitruth"
	"kfusion/internal/twolayer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kfuse: ")
	var (
		in      = flag.String("in", "extractions.jsonl", "extraction input file")
		out     = flag.String("out", "fused.jsonl", "fused output file")
		method  = flag.String("method", "popaccu", "vote | accu | popaccu | popaccu+unsup | popaccu+ | twolayer | ltm")
		goldIn  = flag.String("gold", "", "gold labels (required for popaccu+)")
		gran    = flag.String("granularity", "", "url | site | site-pred | site-pred-pattern (default: method preset)")
		rounds  = flag.Int("rounds", 0, "override round cap R")
		theta   = flag.Float64("theta", -1, "override accuracy threshold θ")
		sampleL = flag.Int("L", 0, "override per-reducer sample cap L")
		quiet   = flag.Bool("q", false, "suppress the summary")
		workers = flag.Int("workers", 0, "MapReduce workers (0 = all cores)")
		kbOut   = flag.String("kb", "", "also persist the fused KB to this kbstore file")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	xs, err := kfio.ReadExtractions(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var labeler fusion.Labeler
	if *goldIn != "" {
		g, err := os.Open(*goldIn)
		if err != nil {
			log.Fatal(err)
		}
		lb, n, err := kfio.ReadGold(g)
		g.Close()
		if err != nil {
			log.Fatal(err)
		}
		labeler = lb
		if !*quiet {
			fmt.Printf("gold labels: %d\n", n)
		}
	}

	// The §5 extension models have their own drivers.
	switch *method {
	case "twolayer":
		tcfg := twolayer.DefaultConfig()
		tcfg.SiteLevel = true
		tcfg.Workers = *workers
		if *rounds > 0 {
			tcfg.Rounds = *rounds
		}
		res, err := twolayer.Fuse(xs, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	case "ltm":
		mcfg := multitruth.DefaultConfig()
		mcfg.Workers = *workers
		if *rounds > 0 {
			mcfg.Rounds = *rounds
		}
		compiled, err := fusion.CompileWorkers(fusion.Claims(xs, fusion.GranExtractorURL), *workers, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := multitruth.FuseCompiled(compiled, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
		return
	}

	var cfg fusion.Config
	switch *method {
	case "vote":
		cfg = fusion.VoteConfig()
	case "accu":
		cfg = fusion.AccuConfig()
	case "popaccu":
		cfg = fusion.PopAccuConfig()
	case "popaccu+unsup":
		cfg = fusion.PopAccuPlusUnsupConfig()
	case "popaccu+":
		if labeler == nil {
			log.Fatal("-method popaccu+ requires -gold")
		}
		cfg = fusion.PopAccuPlusConfig(labeler)
	default:
		log.Fatalf("unknown -method %q", *method)
	}

	switch *gran {
	case "":
	case "url":
		cfg.Granularity = fusion.GranExtractorURL
	case "site":
		cfg.Granularity = fusion.GranExtractorSite
	case "site-pred":
		cfg.Granularity = fusion.GranExtractorSitePred
	case "site-pred-pattern":
		cfg.Granularity = fusion.GranExtractorSitePredPattern
	default:
		log.Fatalf("unknown -granularity %q", *gran)
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *theta >= 0 {
		cfg.AccuracyThreshold = *theta
	}
	if *sampleL > 0 {
		cfg.SampleL = *sampleL
	}
	cfg.Workers = *workers

	claims := fusion.Claims(xs, cfg.Granularity)
	res, err := fusion.Fuse(claims, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		fmt.Printf("method %s over %d extractions (%d claims at %s granularity)\n",
			*method, len(xs), len(claims), cfg.Granularity)
	}
	writeResult(res, *out, *kbOut, *quiet, *method, len(xs))
}

// writeResult persists the fused output as JSONL and optionally as a kbstore
// snapshot.
func writeResult(res *fusion.Result, out, kbOut string, quiet bool, method string, nExtractions int) {
	o, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := kfio.WriteFused(o, res); err != nil {
		log.Fatal(err)
	}
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}
	if kbOut != "" {
		if err := kbstore.Write(kbOut, res.Triples); err != nil {
			log.Fatal(err)
		}
	}
	if !quiet {
		fmt.Printf("fused %d unique triples in %d rounds (%d without probability) -> %s\n",
			len(res.Triples), res.Rounds, res.Unpredicted, out)
		if kbOut != "" {
			fmt.Printf("knowledge base snapshot -> %s\n", kbOut)
		}
	}
}
