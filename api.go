package kfusion

import (
	"kfusion/internal/eval"
	"kfusion/internal/exper"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/twolayer"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Knowledge-base types.
type (
	// Triple is one (subject, predicate, object) statement.
	Triple = kb.Triple
	// Object is a triple's value: an entity reference, string or number.
	Object = kb.Object
	// DataItem is a (subject, predicate) pair — the unit of conflict
	// resolution.
	DataItem = kb.DataItem
	// EntityID identifies an entity (Freebase MID style).
	EntityID = kb.EntityID
	// PredicateID identifies a predicate.
	PredicateID = kb.PredicateID
	// Ontology is the shared schema: types, predicates, entities.
	Ontology = kb.Ontology
	// Store is an in-memory triple store.
	Store = kb.Store
)

// Object constructors.
var (
	// EntityObject wraps an entity ID as a triple object.
	EntityObject = kb.EntityObject
	// StringObject wraps a raw string as a triple object.
	StringObject = kb.StringObject
	// NumberObject wraps a number as a triple object.
	NumberObject = kb.NumberObject
	// ParseTriple parses Triple.Encode output.
	ParseTriple = kb.ParseTriple
)

// Synthesis types.
type (
	// World is the synthetic ground truth.
	World = world.World
	// WorldConfig parameterizes world generation.
	WorldConfig = world.Config
	// Corpus is the synthetic crawled Web.
	Corpus = web.Corpus
	// CorpusConfig parameterizes corpus generation.
	CorpusConfig = web.Config
	// Extraction is one extracted (triple, provenance) pair.
	Extraction = extract.Extraction
	// ExtractorSuite is the 12-extractor fleet.
	ExtractorSuite = extract.Suite
	// Snapshot is the incomplete trusted KB ("Freebase").
	Snapshot = world.Snapshot
	// Dataset bundles world, corpus, extractions and gold standard.
	Dataset = exper.Dataset
	// Scale selects a dataset size.
	Scale = exper.Scale
)

// Dataset scales.
const (
	// ScaleSmall builds in well under a second; good for tests and demos.
	ScaleSmall = exper.ScaleSmall
	// ScaleBench is the scale behind the reported reproduction numbers.
	ScaleBench = exper.ScaleBench
)

// Synthesis constructors.
var (
	// GenerateWorld builds a ground-truth world from a configuration.
	GenerateWorld = world.Generate
	// DefaultWorldConfig is a unit-test-scale world configuration.
	DefaultWorldConfig = world.DefaultConfig
	// GenerateCorpus crawls a world into a Web corpus.
	GenerateCorpus = web.Generate
	// DefaultCorpusConfig is a unit-test-scale corpus configuration.
	DefaultCorpusConfig = web.DefaultConfig
	// NewExtractorSuite builds the 12 simulated extractors over a world.
	NewExtractorSuite = extract.NewSuite
	// BuildFreebase carves the incomplete trusted snapshot out of a world.
	BuildFreebase = world.BuildFreebase
	// Synthesize builds a complete dataset (world, corpus, extractions,
	// gold standard) at the given scale and seed.
	Synthesize = exper.NewDataset
)

// Fusion types.
type (
	// Claim is one (triple, provenance) assertion.
	Claim = fusion.Claim
	// CompiledClaims is a compiled, reusable claim graph: Compile once, then
	// Fuse any number of configurations over it.
	CompiledClaims = fusion.Compiled
	// FuseConfig parameterizes a fusion run.
	FuseConfig = fusion.Config
	// Granularity selects the provenance key shape.
	Granularity = fusion.Granularity
	// FusedTriple is one fused output row.
	FusedTriple = fusion.FusedTriple
	// FusionResult is a fusion run's output.
	FusionResult = fusion.Result
	// Labeler reports gold labels to semi-supervised fusion.
	Labeler = fusion.Labeler
)

// Fusion presets and entry points, named as in the paper.
var (
	// VOTE is the voting baseline.
	VOTE = fusion.VoteConfig
	// ACCU is Bayesian fusion with uniform false values (A=0.8, N=100).
	ACCU = fusion.AccuConfig
	// POPACCU estimates the false-value distribution from the data.
	POPACCU = fusion.PopAccuConfig
	// POPACCUPlusUnsup is POPACCU with the unsupervised refinements of
	// §4.3 (coverage filter, fine granularity, accuracy filter).
	POPACCUPlusUnsup = fusion.PopAccuPlusUnsupConfig
	// POPACCUPlus adds gold-standard accuracy initialization.
	POPACCUPlus = fusion.PopAccuPlusConfig
	// ClaimsFromExtractions flattens extractions into claims under a
	// provenance granularity.
	ClaimsFromExtractions = fusion.Claims
	// Fuse runs a fusion configuration over claims (compile-then-fuse).
	Fuse = fusion.Fuse
	// Compile interns claims into a reusable CompiledClaims graph so one
	// compilation serves many fusion configurations.
	Compile = fusion.Compile
	// CompileWorkers is Compile with explicit parallelism bounds.
	CompileWorkers = fusion.CompileWorkers
	// MustCompile is Compile for callers without error plumbing.
	MustCompile = fusion.MustCompile
)

// Incremental (append-only) fusion: the compiled graphs are generations of
// a growing extraction feed. CompiledClaims.Append / MustAppend and
// CompiledExtractions.Append extend a graph with a batch, bit-identical to
// recompiling the concatenated stream (existing interned IDs never move);
// CompiledClaims.FuseWarm and TwoLayerFuseCompiledWarm seed EM from the
// previous generation's posteriors so appended batches re-fuse in a
// fraction of the cold-start rounds. Dataset.AppendExtractions rides the
// same machinery with generation-aware graph caches.
type (
	// CompiledExtractions is a compiled extraction graph (the §5.1 two-layer
	// model's input): Compile once, Fuse any number of configurations,
	// Append batches to grow it across generations.
	CompiledExtractions = extract.Compiled
	// ClaimStream incrementally flattens an append-only extraction feed
	// into claims, carrying the (provenance, triple) dedup set across
	// batches.
	ClaimStream = fusion.ClaimStream
	// TwoLayerConfig parameterizes the §5.1 two-layer model.
	TwoLayerConfig = twolayer.Config
	// TwoLayerState carries a two-layer run's converged posteriors to the
	// next generation (warm start).
	TwoLayerState = twolayer.State
)

var (
	// NewClaimStream returns an empty incremental claim flattener for a
	// granularity.
	NewClaimStream = fusion.NewClaimStream
	// CompileExtractions interns an extraction set into a reusable
	// CompiledExtractions graph (siteLevel keys sources at site level).
	CompileExtractions = extract.Compile
	// TwoLayerDefaultConfig returns the two-layer model's experiment
	// configuration.
	TwoLayerDefaultConfig = twolayer.DefaultConfig
	// TwoLayerFuse runs the §5.1 two-layer model over raw extractions.
	TwoLayerFuse = twolayer.Fuse
	// TwoLayerFuseCompiled runs the two-layer model over a compiled
	// extraction graph.
	TwoLayerFuseCompiled = twolayer.FuseCompiled
	// TwoLayerFuseCompiledWarm is TwoLayerFuseCompiled seeded from a
	// previous generation's TwoLayerState.
	TwoLayerFuseCompiledWarm = twolayer.FuseCompiledWarm
)

// Provenance granularities from the paper's experiments.
var (
	// GranExtractorURL is the basic (Extractor, URL) provenance.
	GranExtractorURL = fusion.GranExtractorURL
	// GranExtractorSite keys sources at site level.
	GranExtractorSite = fusion.GranExtractorSite
	// GranExtractorSitePred adds the predicate.
	GranExtractorSitePred = fusion.GranExtractorSitePred
	// GranExtractorSitePredPattern adds the extraction pattern — the best
	// calibrated granularity in the paper.
	GranExtractorSitePredPattern = fusion.GranExtractorSitePredPattern
)

// Evaluation types.
type (
	// GoldStandard labels triples under the local closed-world assumption.
	GoldStandard = eval.GoldStandard
	// Prediction pairs a probability with a gold label.
	Prediction = eval.Prediction
	// CalibrationCurve is the predicted-vs-real probability curve.
	CalibrationCurve = eval.CalibrationCurve
	// Report is the paper's standard (Dev, WDev, AUC-PR) metric set.
	Report = eval.Report
	// ErrorAnalysis attributes false positives/negatives to Figure 17's
	// categories.
	ErrorAnalysis = eval.ErrorAnalysis
)

// Evaluation entry points.
var (
	// NewGoldStandard wraps a Freebase snapshot for LCWA labeling.
	NewGoldStandard = eval.NewGoldStandard
	// Evaluate computes Dev, WDev and AUC-PR for a fusion result.
	Evaluate = eval.Evaluate
	// Predictions pairs a fusion result with gold labels.
	Predictions = eval.Predictions
	// Calibration buckets predictions into a calibration curve.
	Calibration = eval.Calibration
	// AUCPR computes the area under the precision-recall curve.
	AUCPR = eval.AUCPR
	// PRCurve computes precision-recall points.
	PRCurve = eval.PRCurve
	// AnalyzeErrors runs the mechanical Figure 17 error analysis.
	AnalyzeErrors = eval.AnalyzeErrors
	// KappaMatrix computes Eq. 1's kappa for every extractor pair.
	KappaMatrix = eval.KappaMatrix
)

// Experiment types and entry points (the paper's tables and figures).
type (
	// Experiment binds a paper artifact to its regeneration function.
	Experiment = exper.Experiment
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = exper.Table
)

var (
	// Experiments lists every reproduced table and figure in paper order.
	Experiments = exper.Registry
	// ExperimentByID resolves an experiment by its ID (e.g. "fig9").
	ExperimentByID = exper.ByID
)
