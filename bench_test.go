package kfusion

// Benchmarks regenerating every table and figure of the paper's evaluation
// section (Tables 1-3, Figures 3-7 and 9-22), plus pipeline-throughput
// benchmarks for the substrates. Quality metrics (weighted deviation,
// AUC-PR) are attached to the fusion benchmarks as custom units so
// `go test -bench` doubles as a reproduction report.
//
// The shared bench dataset is built once per process; fusion caches are
// cleared per iteration so timings measure real recomputation.

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"kfusion/internal/eval"
	"kfusion/internal/exper"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kbstore"
	"kfusion/internal/mapreduce"
	"kfusion/internal/twolayer"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

const benchSeed = 4242

func benchDataset(b *testing.B) *exper.Dataset {
	b.Helper()
	return exper.SharedDataset(exper.ScaleBench, benchSeed)
}

// benchExperiment measures one registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	ds := benchDataset(b)
	ex := exper.ByID(id)
	if ex == nil {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		ds.ClearFusionCache()
		tb := ex.Run(ds)
		rows += len(tb.Rows)
	}
	if rows == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkTable1CorpusStats(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2ExtractorQuality(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3Functionality(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFigure3ContentOverlap(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFigure4PredicateAccuracy(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5ExtractorGap(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFigure6AccuracyByExtractors(b *testing.B) {
	benchExperiment(b, "fig6")
}
func BenchmarkFigure7AccuracyByURLs(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure9BasicModels also reports the reproduction metrics for the
// three basic models as custom benchmark units.
func BenchmarkFigure9BasicModels(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.ClearFusionCache()
		exper.Figure9(ds)
	}
	b.StopTimer()
	reportModelMetrics(b, ds, "VOTE", fusion.VoteConfig())
	reportModelMetrics(b, ds, "ACCU", fusion.AccuConfig())
	reportModelMetrics(b, ds, "POPACCU", fusion.PopAccuConfig())
}

func reportModelMetrics(b *testing.B, ds *exper.Dataset, name string, cfg fusion.Config) {
	res := ds.Fuse(name, cfg)
	rep := eval.Evaluate(name, res, ds.Gold)
	b.ReportMetric(rep.WDev, name+"-wdev")
	b.ReportMetric(rep.AUCPR, name+"-aucpr")
}

func BenchmarkFigure10Granularity(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11Filtering(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFigure12GoldInit(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFigure13Cumulative(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14Convergence(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFigure15PRCurves(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFigure16ProbabilityHistogram(b *testing.B) {
	benchExperiment(b, "fig16")
}
func BenchmarkFigure17ErrorAnalysis(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFigure18ProvenanceStratified(b *testing.B) {
	benchExperiment(b, "fig18")
}
func BenchmarkFigure19Kappa(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFigure20TruthCount(b *testing.B) { benchExperiment(b, "fig20") }
func BenchmarkFigure21Confidence(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkFigure22ConfidenceThreshold(b *testing.B) {
	benchExperiment(b, "fig22")
}

// ---- Pipeline throughput benchmarks ----

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world.MustGenerate(world.BenchConfig(benchSeed))
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	w := world.MustGenerate(world.BenchConfig(benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		web.MustGenerate(w, web.BenchConfig(benchSeed+1))
	}
}

func BenchmarkExtractionSuite(b *testing.B) {
	ds := benchDataset(b)
	suite := NewExtractorSuite(ds.World, benchSeed+2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs := suite.Run(ds.World, ds.Corpus)
		b.ReportMetric(float64(len(xs)), "extractions")
	}
}

// benchFusion measures one fusion preset's throughput in claims/sec.
func benchFusion(b *testing.B, cfg fusion.Config) {
	ds := benchDataset(b)
	claims := fusion.Claims(ds.Extractions, cfg.Granularity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fusion.MustFuse(claims, cfg)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(claims))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
}

func BenchmarkFuseVote(b *testing.B)    { benchFusion(b, fusion.VoteConfig()) }
func BenchmarkFuseAccu(b *testing.B)    { benchFusion(b, fusion.AccuConfig()) }
func BenchmarkFusePopAccu(b *testing.B) { benchFusion(b, fusion.PopAccuConfig()) }
func BenchmarkFusePopAccuPlus(b *testing.B) {
	ds := benchDataset(b)
	benchFusion(b, fusion.PopAccuPlusConfig(ds.Gold.Labeler()))
}

// BenchmarkFuseReferencePopAccu measures the seed shuffle-per-round engine
// on the same dataset, so the compiled engine's before/after gap stays
// visible in every benchmark run.
func BenchmarkFuseReferencePopAccu(b *testing.B) {
	ds := benchDataset(b)
	cfg := fusion.PopAccuConfig()
	claims := fusion.Claims(ds.Extractions, cfg.Granularity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusion.FuseReference(claims, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(claims))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
}

// BenchmarkConfigSweep measures the multi-config workload that dominates the
// experiment layer (Tables 1-3, the ablation suite, θ/coverage sweeps): the
// same extracted claim set fused under 4 configurations. "recompile" pays
// the claims conversion + claim-graph compile per config — what Dataset.Fuse
// did before compiled-graph reuse — while "reuse" compiles once and fuses
// every config over the shared fusion.Compiled. claims/s counts
// claims × configs so the two numbers are directly comparable.
func BenchmarkConfigSweep(b *testing.B) {
	ds := benchDataset(b)
	sweep := exper.ConfigSweep()
	nClaims := len(fusion.Claims(ds.Extractions, fusion.Granularity{}))
	reportSweep := func(b *testing.B) {
		b.ReportMetric(float64(nClaims*len(sweep))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
	}
	b.Run("recompile", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range sweep {
				fusion.MustFuse(fusion.Claims(ds.Extractions, p.Cfg.Granularity), p.Cfg)
			}
		}
		b.StopTimer()
		reportSweep(b)
	})
	b.Run("reuse", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compiled := fusion.MustCompile(fusion.Claims(ds.Extractions, fusion.Granularity{}))
			for _, p := range sweep {
				compiled.MustFuse(p.Cfg)
			}
		}
		b.StopTimer()
		reportSweep(b)
	})
}

// BenchmarkAppendBatch measures the append-only feed scenario the
// incremental compile pipeline exists for: a 10% extraction batch lands on
// top of an already-compiled 90% prefix.
//
//   - recompile: the before path — flatten the whole feed to claims,
//     compile the claim graph from scratch, cold-fuse at the paper's R=5.
//   - append: flatten only the batch through the generation's ClaimStream,
//     Append it to the compiled base (bit-identical to the recompile) and
//     re-fuse as online EM — one warm-started round carrying the previous
//     generation's accuracies (evaluation quality pinned within documented
//     bounds by TestWarmStartQualityOnBenchDataset).
//
// The base compile runs off the clock each iteration (Append consumes the
// base generation's interning index; a production chain appends each
// generation once). claims/s counts the whole feed — the extractions served
// fresh after the batch lands — so append/recompile is the cost ratio of
// keeping the corpus up to date.
func BenchmarkAppendBatch(b *testing.B) {
	ds := benchDataset(b)
	xs := ds.Extractions
	n := len(xs)
	cut := n - n/10
	cfg := fusion.PopAccuConfig()
	report := func(b *testing.B) {
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
	}
	b.Run("recompile", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fusion.MustCompile(fusion.Claims(xs, cfg.Granularity)).MustFuse(cfg)
		}
		b.StopTimer()
		report(b)
	})
	b.Run("append", func(b *testing.B) {
		warmCfg := cfg
		warmCfg.Rounds = 1
		prev := fusion.MustCompile(fusion.Claims(xs[:cut], cfg.Granularity)).MustFuse(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			stream := fusion.NewClaimStream(cfg.Granularity)
			base := fusion.MustCompile(stream.Add(xs[:cut]))
			runtime.GC() // keep setup garbage out of the timed region
			b.StartTimer()
			next := base.MustAppend(stream.Add(xs[cut:]))
			next.MustFuseWarm(warmCfg, prev)
		}
		b.StopTimer()
		report(b)
	})
	b.Run("twolayer-recompile", func(b *testing.B) {
		tcfg := twolayer.DefaultConfig()
		tcfg.SiteLevel = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			twolayer.MustFuseCompiled(extract.Compile(xs, true), tcfg)
		}
		b.StopTimer()
		report(b)
	})
	b.Run("twolayer-append", func(b *testing.B) {
		tcfg := twolayer.DefaultConfig()
		tcfg.SiteLevel = true
		twarm := tcfg
		twarm.Rounds = 1
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			base := extract.Compile(xs[:cut], true)
			_, state, err := twolayer.FuseCompiledWarm(base, tcfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC() // keep setup garbage out of the timed region
			b.StartTimer()
			next := base.Append(xs[cut:])
			if _, _, err := twolayer.FuseCompiledWarm(next, twarm, state); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		report(b)
	})
}

// BenchmarkTwoLayerFuse measures the §5.1 two-layer model on the bench
// extraction set: the compiled extraction-graph engine (end to end, and
// re-fusing over a prebuilt graph) against the map-keyed reference engine.
// claims/s counts raw extractions, the unit the two-layer model consumes.
func BenchmarkTwoLayerFuse(b *testing.B) {
	ds := benchDataset(b)
	cfg := twolayer.DefaultConfig()
	cfg.SiteLevel = true
	report := func(b *testing.B) {
		b.ReportMetric(float64(len(ds.Extractions))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
	}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			twolayer.MustFuse(ds.Extractions, cfg)
		}
		b.StopTimer()
		report(b)
	})
	b.Run("reuse", func(b *testing.B) {
		g := exper.SharedDataset(exper.ScaleBench, benchSeed).ExtractionGraph(true)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			twolayer.MustFuseCompiled(g, cfg)
		}
		b.StopTimer()
		report(b)
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			twolayer.MustFuseReference(ds.Extractions, cfg)
		}
		b.StopTimer()
		report(b)
	})
}

// BenchmarkTwoLayerScaling measures the two-layer EM loops (both E-steps,
// the per-source M-step pass and the fixed-block extractor-rate reduction)
// over a prebuilt extraction graph at several worker counts. Results are
// bit-identical across the counts — the reduction trees are fixed by the
// data — so the sub-benchmarks differ only in speed; on a 1-core box they
// collapse to the workers-1 number (csr.ParallelRange still fans out, but
// the scheduler serializes it).
func BenchmarkTwoLayerScaling(b *testing.B) {
	ds := benchDataset(b)
	g := ds.ExtractionGraph(true)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			cfg := twolayer.DefaultConfig()
			cfg.SiteLevel = true
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				twolayer.MustFuseCompiled(g, cfg)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(ds.Extractions))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
		})
	}
}

// BenchmarkExtractCompileGraph measures extract.Compile itself — interning,
// CSR adjacency and the ext→statement incidence — sequential vs all cores,
// on the bench extraction set where the shard-and-merge interning engages.
func BenchmarkExtractCompileGraph(b *testing.B) {
	ds := benchDataset(b)
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				extract.CompileWorkers(ds.Extractions, true, workers)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(ds.Extractions))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
		})
	}
}

// BenchmarkCompileClaimGraph measures fusion.Compile itself — the interning
// and CSR build every fusion run amortizes — sequential vs all cores, on the
// large claim set where the parallel counting sort engages.
func BenchmarkCompileClaimGraph(b *testing.B) {
	ds := exper.SharedDataset(exper.ScaleLarge, benchSeed)
	claims := fusion.Claims(ds.Extractions, fusion.Granularity{})
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fusion.CompileWorkers(claims, workers, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(claims))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
		})
	}
}

// BenchmarkMapReduceScaling measures the fusion pipeline at several worker
// counts (the paper's scalability concern, at laptop scale).
func BenchmarkMapReduceScaling(b *testing.B) {
	ds := benchDataset(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			cfg := fusion.PopAccuConfig()
			cfg.Workers = workers
			claims := fusion.Claims(ds.Extractions, cfg.Granularity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fusion.MustFuse(claims, cfg)
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + strconv.Itoa(workers)
}

// BenchmarkMapReduceWordCount measures the raw engine.
func BenchmarkMapReduceWordCount(b *testing.B) {
	inputs := make([]int, 100000)
	for i := range inputs {
		inputs[i] = i
	}
	job := mapreduce.Job[int, int, int, [2]int]{
		Name: "bench",
		Map:  func(in int, emit func(int, int)) { emit(in%1024, 1) },
		Reduce: func(k int, vs []int, emit func([2]int)) {
			emit([2]int{k, len(vs)})
		},
		KeyHash: func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := mapreduce.MustRun(job, inputs); len(out) != 1024 {
			b.Fatal("wrong output size")
		}
	}
}

// ---- Ablation benchmarks for the §5 future-direction implementations ----

func BenchmarkAblationTwoLayer(b *testing.B)   { benchExperiment(b, "abl-twolayer") }
func BenchmarkAblationMultiTruth(b *testing.B) { benchExperiment(b, "abl-multitruth") }
func BenchmarkAblationFuncDegree(b *testing.B) { benchExperiment(b, "abl-funcdegree") }
func BenchmarkAblationHierValues(b *testing.B) { benchExperiment(b, "abl-hierval") }
func BenchmarkAblationConfidence(b *testing.B) { benchExperiment(b, "abl-confweight") }
func BenchmarkAblationCopyDetect(b *testing.B) { benchExperiment(b, "abl-copydetect") }
func BenchmarkAblationSoftLCWA(b *testing.B)   { benchExperiment(b, "abl-softlcwa") }
func BenchmarkAblationValueSim(b *testing.B)   { benchExperiment(b, "abl-valuesim") }

// ---- Knowledge-base store benchmarks ----

func BenchmarkKBStoreWrite(b *testing.B) {
	ds := benchDataset(b)
	res := ds.Fuse("POPACCU", fusion.PopAccuConfig())
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.kb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kbstore.Write(path, res.Triples); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(info.Size())/float64(len(res.Triples)), "bytes/triple")
}

func BenchmarkKBStoreOpen(b *testing.B) {
	ds := benchDataset(b)
	res := ds.Fuse("POPACCU", fusion.PopAccuConfig())
	path := filepath.Join(b.TempDir(), "bench.kb")
	if err := kbstore.Write(path, res.Triples); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := kbstore.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if k.Len() != len(res.Triples) {
			b.Fatal("record loss")
		}
	}
}

func BenchmarkKBStoreLookup(b *testing.B) {
	ds := benchDataset(b)
	res := ds.Fuse("POPACCU", fusion.PopAccuConfig())
	path := filepath.Join(b.TempDir(), "bench.kb")
	if err := kbstore.Write(path, res.Triples); err != nil {
		b.Fatal(err)
	}
	k, err := kbstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	subjects := make([]EntityID, 0, 256)
	for _, f := range res.Triples {
		subjects = append(subjects, f.Triple.Subject)
		if len(subjects) == cap(subjects) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(k.BySubject(subjects[i%len(subjects)])) == 0 {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkLargeScaleFusion validates the paper's scale concern (§3.2.2's
// third challenge) at the largest size this harness builds: hundreds of
// thousands of extracted claims through the full 3-stage pipeline.
func BenchmarkLargeScaleFusion(b *testing.B) {
	ds := exper.SharedDataset(exper.ScaleLarge, benchSeed)
	cfg := fusion.PopAccuConfig()
	claims := fusion.Claims(ds.Extractions, cfg.Granularity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fusion.MustFuse(claims, cfg)
		if len(res.Triples) == 0 {
			b.Fatal("no output")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(ds.Extractions)), "extractions")
	b.ReportMetric(float64(len(claims))*float64(b.N)/b.Elapsed().Seconds(), "claims/s")
}
