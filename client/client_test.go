package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kfusion/internal/extract"
	"kfusion/internal/httpapi"
	"kfusion/internal/kb"
)

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, base := range []string{"", "not-a-url", "/just/a/path", "host.only"} {
		if _, err := New(base); err == nil {
			t.Errorf("New(%q) accepted a base without scheme://host", base)
		}
	}
	if _, err := New("http://127.0.0.1:7607"); err != nil {
		t.Fatalf("New rejected a valid base: %v", err)
	}
}

// TestTypedErrorsCrossTheWire pins the client half of the error contract:
// every wire code rebuilds its sentinel, so errors.Is dispatch works across
// the process boundary, and APIError carries the status for errors.As.
func TestTypedErrorsCrossTheWire(t *testing.T) {
	cases := []struct {
		status   int
		code     string
		sentinel error
	}{
		{http.StatusNotFound, httpapi.CodeNotFound, httpapi.ErrNotFound},
		{http.StatusBadRequest, httpapi.CodeBadBatch, httpapi.ErrBadBatch},
		{http.StatusServiceUnavailable, httpapi.CodeNotReady, httpapi.ErrNotReady},
		{http.StatusConflict, httpapi.CodeBusy, httpapi.ErrBusy},
		{http.StatusBadRequest, httpapi.CodeBadRequest, httpapi.ErrBadRequest},
	}
	for _, tc := range cases {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(tc.status)
			w.Write([]byte(`{"code":"` + tc.code + `","message":"m"}`))
		}))
		c, err := New(ts.URL, WithRetries(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Status(context.Background())
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("code %q: errors.Is(err, sentinel) = false (err = %v)", tc.code, err)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("code %q: APIError = %+v, want status %d code %q", tc.code, ae, tc.status, tc.code)
		}
		ts.Close()
	}
}

func TestNonJSONErrorBodyIsInternal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "proxy exploded", http.StatusBadGateway)
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Status(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != httpapi.CodeInternal {
		t.Fatalf("non-JSON 502 decoded as %+v, want internal", ae)
	}
	for _, sentinel := range []error{httpapi.ErrNotFound, httpapi.ErrNotReady, httpapi.ErrBadBatch} {
		if errors.Is(err, sentinel) {
			t.Fatalf("internal error must match no sentinel, matched %v", sentinel)
		}
	}
}

// TestGetRetriesOn5xx pins the retry policy's positive half: a GET that hits
// a hydrating server (503 not_ready) retries with backoff until it lands.
func TestGetRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"code":"not_ready","message":"hydrating"}`))
			return
		}
		w.Write([]byte(`{"method":"popaccu","ready":true,"generation":3,"consumed":10,"triples":5}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("GET did not recover across retries: %v", err)
	}
	if st.Generation != 3 || calls.Load() != 3 {
		t.Fatalf("generation %d after %d calls, want 3 after 3", st.Generation, calls.Load())
	}
}

// TestGetDoesNotRetry4xx pins that typed client-side failures are final.
func TestGetDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"code":"not_found","message":"nope"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(context.Background()); !errors.Is(err, httpapi.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx was retried %d times", calls.Load()-1)
	}
}

// TestAppendNeverRetries pins the retry policy's negative half: the server
// journals a batch before replying, so a failed append must surface, not
// silently double-apply.
func TestAppendNeverRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"code":"internal","message":"boom"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	batch := []extract.Extraction{{
		Triple:     kb.Triple{Subject: "/m/1", Predicate: "/p", Object: kb.StringObject("v")},
		Extractor:  "X",
		URL:        "u",
		Site:       "s",
		Confidence: 1,
	}}
	if _, err := c.Append(context.Background(), batch); err == nil {
		t.Fatal("append swallowed a 500")
	}
	if calls.Load() != 1 {
		t.Fatalf("append was retried %d times; appends must never retry", calls.Load()-1)
	}
}

// TestGetRetriesConnectionErrors pins retry on the no-response case.
func TestGetRetriesConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	base := ts.URL
	ts.Close() // connection refused from the first attempt
	c, err := New(base, WithRetries(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("GET against a closed server succeeded")
	}
	// Two retries at 1ms and 2ms backoff: the loop must have slept.
	if time.Since(start) < 3*time.Millisecond {
		t.Fatal("retry loop returned without backing off")
	}
}

// TestContextCancelsRetryLoop pins that a cancelled context ends the retry
// loop promptly instead of sleeping out the backoff schedule.
func TestContextCancelsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"code":"not_ready","message":"hydrating"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(10, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Ready(ctx)
	if err == nil {
		t.Fatal("Ready succeeded against a permanently not-ready server")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled context did not stop the backoff sleep")
	}
}

// TestTriplesQueryEncoding pins the query-string contract with the server's
// parameter names.
func TestTriplesQueryEncoding(t *testing.T) {
	var gotQuery string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.RawQuery
		w.Write([]byte(`{"generation":1,"total":0,"triples":[]}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithRetries(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Triples(context.Background(), TriplesQuery{
		Subject:    "/m/1",
		Predicate:  "/p",
		MinProb:    0.5,
		HasMinProb: true,
		Limit:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "limit=7&min_prob=0.5&predicate=%2Fp&subject=%2Fm%2F1"
	if gotQuery != want {
		t.Fatalf("query = %q, want %q", gotQuery, want)
	}
}
