// Package client is the typed Go client of the kfserved fusion service.
// It shares every wire shape — routes, DTOs, error codes — with the server
// through kfusion/internal/httpapi (re-exported at the kfusion root), so
// client and server cannot drift.
//
// Construct with New and functional options:
//
//	c, err := client.New("http://127.0.0.1:7607",
//		client.WithTimeout(5*time.Second),
//		client.WithRetries(4, 100*time.Millisecond))
//
// One method per route: Health, Ready, Status, Item, Triples, Append.
// Failures carry the server's typed error, so callers dispatch with
// errors.Is across the process boundary:
//
//	_, err := c.Item(ctx, "/m/02mjmr", "/people/person/place_of_birth")
//	if errors.Is(err, kfusion.ErrNotFound) { ... }
//
// GET requests are retried with exponential backoff on connection errors
// and 5xx responses (including 503 while the server hydrates). Append is
// never retried: the server journals a batch before replying, so a lost
// reply leaves the client unable to tell whether the batch landed, and a
// blind retry would double-apply it. Callers own append retry policy.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"kfusion/internal/extract"
	"kfusion/internal/httpapi"
)

// Client talks to one kfserved instance. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithTimeout bounds each HTTP attempt (not the whole retry loop; use the
// request context for an end-to-end deadline). Default 30s.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithHTTPClient replaces the underlying http.Client (tests inject an
// httptest server's client here). WithTimeout applies on top of it.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets the GET retry budget: up to retries extra attempts after
// the first, sleeping backoff, 2*backoff, 4*backoff, ... between them.
// Default 3 retries from 50ms. WithRetries(0, 0) disables retrying.
func WithRetries(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoff = retries, backoff }
}

// New builds a client for the kfserved instance at base (scheme + host,
// e.g. "http://127.0.0.1:7607").
func New(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q is not scheme://host", base)
	}
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Timeout: 30 * time.Second},
		maxRetries: 3,
		backoff:    50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Health reports liveness.
func (c *Client) Health(ctx context.Context) (*httpapi.HealthResponse, error) {
	var out httpapi.HealthResponse
	return &out, c.get(ctx, httpapi.PathHealthz, &out)
}

// Ready reports readiness; before hydration completes the error matches
// httpapi.ErrNotReady.
func (c *Client) Ready(ctx context.Context) (*httpapi.ReadyResponse, error) {
	var out httpapi.ReadyResponse
	return &out, c.get(ctx, httpapi.PathReadyz, &out)
}

// Status returns the generation counters and method binding.
func (c *Client) Status(ctx context.Context) (*httpapi.StatusResponse, error) {
	var out httpapi.StatusResponse
	return &out, c.get(ctx, httpapi.PathStatus, &out)
}

// Item returns every fused candidate value of one data item. The error
// matches httpapi.ErrNotFound when the current generation holds none.
func (c *Client) Item(ctx context.Context, subject, predicate string) (*httpapi.ItemResponse, error) {
	var out httpapi.ItemResponse
	return &out, c.get(ctx, httpapi.ItemPath(subject, predicate), &out)
}

// TriplesQuery filters a Triples read. The zero value scans the whole
// generation at the server's default page limit.
type TriplesQuery struct {
	Subject   string
	Predicate string
	// MinProb drops rows below this posterior. Leave 0 with HasMinProb
	// false to include everything (even unpredicted rows at -1).
	MinProb    float64
	HasMinProb bool
	// Limit caps returned rows (0 = server default). Total in the response
	// counts all matches regardless.
	Limit int
}

func (q TriplesQuery) encode() string {
	v := url.Values{}
	if q.Subject != "" {
		v.Set("subject", q.Subject)
	}
	if q.Predicate != "" {
		v.Set("predicate", q.Predicate)
	}
	if q.HasMinProb {
		v.Set("min_prob", strconv.FormatFloat(q.MinProb, 'g', -1, 64))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// Triples returns fused posteriors matching q, in the generation's
// deterministic result order.
func (c *Client) Triples(ctx context.Context, q TriplesQuery) (*httpapi.TriplesResponse, error) {
	var out httpapi.TriplesResponse
	return &out, c.get(ctx, httpapi.PathTriples+q.encode(), &out)
}

// Append journals and applies one extraction batch, returning the
// generation it published. Never retried (see the package doc); the error
// matches httpapi.ErrBusy when another append holds the writer slot and
// httpapi.ErrBadBatch when the server refused the body.
func (c *Client) Append(ctx context.Context, batch []extract.Extraction) (*httpapi.AppendResponse, error) {
	req := httpapi.AppendRequest{Extractions: make([]httpapi.Extraction, 0, len(batch))}
	for _, x := range batch {
		req.Extractions = append(req.Extractions, httpapi.FromExtraction(x))
	}
	return c.AppendWire(ctx, &req)
}

// AppendWire is Append for callers already holding wire-form extractions
// (e.g. replaying a kfio JSONL feed without parsing objects locally).
func (c *Client) AppendWire(ctx context.Context, req *httpapi.AppendRequest) (*httpapi.AppendResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+httpapi.PathAppend, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var out httpapi.AppendResponse
	if err := c.do(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// get runs one GET with the retry budget: connection errors and 5xx
// responses retry with exponential backoff; typed 4xx failures never do.
func (c *Client) get(ctx context.Context, path string, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		err = c.do(req, out)
		if err == nil || !retryable(err) || attempt >= c.maxRetries {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff << attempt):
		}
	}
}

// retryable reports whether a GET failure is worth another attempt:
// connection-level errors (no response at all) and 5xx statuses, including
// the typed not-ready 503 of a server still hydrating.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// do runs one attempt and decodes the response into out.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return newAPIError(resp.StatusCode, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// APIError is a non-2xx response. It unwraps to the typed sentinel the
// server's error code stands for, so errors.Is(err, httpapi.ErrNotFound)
// and friends hold across the process boundary.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func newAPIError(status int, body []byte) *APIError {
	ae := &APIError{Status: status}
	var er httpapi.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Code != "" {
		ae.Code, ae.Message = er.Code, er.Message
	} else {
		ae.Code = httpapi.CodeInternal
		ae.Message = strings.TrimSpace(string(body))
	}
	return ae
}

func (e *APIError) Error() string {
	return "client: server returned " + strconv.Itoa(e.Status) + " " + e.Code + ": " + e.Message
}

// Unwrap maps the wire code back to its sentinel (nil for internal and
// unknown codes, which then match no sentinel).
func (e *APIError) Unwrap() error { return httpapi.SentinelForCode(e.Code) }
