package kfusion

// Knowledge-base surface: the triple model every layer shares.

import "kfusion/internal/kb"

// Knowledge-base types.
type (
	// Triple is one (subject, predicate, object) statement.
	Triple = kb.Triple
	// Object is a triple's value: an entity reference, string or number.
	Object = kb.Object
	// DataItem is a (subject, predicate) pair — the unit of conflict
	// resolution.
	DataItem = kb.DataItem
	// EntityID identifies an entity (Freebase MID style).
	EntityID = kb.EntityID
	// PredicateID identifies a predicate.
	PredicateID = kb.PredicateID
	// Ontology is the shared schema: types, predicates, entities.
	Ontology = kb.Ontology
	// Store is an in-memory triple store.
	Store = kb.Store
)

// Object constructors.
var (
	// EntityObject wraps an entity ID as a triple object.
	EntityObject = kb.EntityObject
	// StringObject wraps a raw string as a triple object.
	StringObject = kb.StringObject
	// NumberObject wraps a number as a triple object.
	NumberObject = kb.NumberObject
	// ParseTriple parses Triple.Encode output.
	ParseTriple = kb.ParseTriple
)
