package kfusion

// Engine-equivalence regression test: the compiled claim-graph engine must
// reproduce the seed shuffle-per-round engine on the shared bench dataset,
// for every method and worker count. This pins both determinism across
// Workers and old-vs-new engine parity at realistic scale.

import (
	"math"
	"testing"

	"kfusion/internal/exper"
	"kfusion/internal/fusion"
	"kfusion/internal/twolayer"
)

const engineEquivTol = 1e-12

// TestTwoLayerEquivalenceOnBenchDataset pins the compiled two-layer engine
// against the map-keyed reference engine over the bench extraction set, for
// both source levels and several worker counts: triple order, support counts
// and rounds exactly, probabilities and accuracies within the documented
// twolayer.RefTol (the compiled M-step reduces the per-extractor sums with a
// fixed-block pairwise tree instead of the reference's global left-to-right
// walk, which perturbs low-order bits — see internal/twolayer's package
// comment). Bitwise equality across worker counts is pinned separately by
// the forced-worker property tests in internal/twolayer.
func TestTwoLayerEquivalenceOnBenchDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale dataset in -short mode")
	}
	ds := exper.SharedDataset(exper.ScaleBench, benchSeed)
	for _, siteLevel := range []bool{false, true} {
		cfg := twolayer.DefaultConfig()
		cfg.SiteLevel = siteLevel
		want, err := twolayer.FuseReference(ds.Extractions, cfg)
		if err != nil {
			t.Fatalf("siteLevel=%v: reference: %v", siteLevel, err)
		}
		g := ds.ExtractionGraph(siteLevel)
		for _, workers := range []int{1, 4, 8} {
			c := cfg
			c.Workers = workers
			got, err := twolayer.FuseCompiled(g, c)
			if err != nil {
				t.Fatalf("siteLevel=%v workers=%d: %v", siteLevel, workers, err)
			}
			if got.Rounds != want.Rounds {
				t.Errorf("siteLevel=%v workers=%d: Rounds = %d, want %d", siteLevel, workers, got.Rounds, want.Rounds)
			}
			if len(got.Triples) != len(want.Triples) {
				t.Fatalf("siteLevel=%v workers=%d: %d triples, want %d",
					siteLevel, workers, len(got.Triples), len(want.Triples))
			}
			mismatches := 0
			for i := range got.Triples {
				g, w := got.Triples[i], want.Triples[i]
				if g.Triple != w.Triple || g.Predicted != w.Predicted ||
					g.Provenances != w.Provenances || g.ItemProvenances != w.ItemProvenances ||
					g.Extractors != w.Extractors || !twolayer.CloseToReference(g.Probability, w.Probability) {
					if mismatches < 5 {
						t.Errorf("siteLevel=%v workers=%d: triple %d: %+v vs %+v",
							siteLevel, workers, i, g, w)
					}
					mismatches++
				}
			}
			if mismatches > 0 {
				t.Errorf("siteLevel=%v workers=%d: %d mismatching triples", siteLevel, workers, mismatches)
			}
			if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
				t.Fatalf("siteLevel=%v workers=%d: %d sources, want %d",
					siteLevel, workers, len(got.ProvAccuracy), len(want.ProvAccuracy))
			}
			for src, a := range got.ProvAccuracy {
				if wa := want.ProvAccuracy[src]; !twolayer.CloseToReference(a, wa) {
					t.Errorf("siteLevel=%v workers=%d: ProvAccuracy[%q] = %v, want %v",
						siteLevel, workers, src, a, wa)
					break
				}
			}
		}
	}
}

func TestEngineEquivalenceOnBenchDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale dataset in -short mode")
	}
	ds := exper.SharedDataset(exper.ScaleBench, benchSeed)
	configs := map[string]fusion.Config{
		"VOTE":     fusion.VoteConfig(),
		"ACCU":     fusion.AccuConfig(),
		"POPACCU":  fusion.PopAccuConfig(),
		"POPACCU+": fusion.PopAccuPlusConfig(ds.Gold.Labeler()),
	}
	for name, cfg := range configs {
		claims := fusion.Claims(ds.Extractions, cfg.Granularity)
		want, err := fusion.FuseReference(claims, cfg)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		wantBy := want.ByTriple()
		for _, workers := range []int{1, 4, 8} {
			c := cfg
			c.Workers = workers
			got, err := fusion.Fuse(claims, c)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if got.Rounds != want.Rounds {
				t.Errorf("%s/workers=%d: Rounds = %d, want %d", name, workers, got.Rounds, want.Rounds)
			}
			if got.Unpredicted != want.Unpredicted {
				t.Errorf("%s/workers=%d: Unpredicted = %d, want %d", name, workers, got.Unpredicted, want.Unpredicted)
			}
			if len(got.Triples) != len(want.Triples) {
				t.Fatalf("%s/workers=%d: %d triples, want %d", name, workers, len(got.Triples), len(want.Triples))
			}
			mismatches := 0
			for _, f := range got.Triples {
				w, ok := wantBy[f.Triple]
				if !ok {
					t.Fatalf("%s/workers=%d: unexpected triple %v", name, workers, f.Triple)
				}
				if f.Predicted != w.Predicted || f.Provenances != w.Provenances ||
					f.ItemProvenances != w.ItemProvenances || f.Extractors != w.Extractors ||
					(f.Predicted && math.Abs(f.Probability-w.Probability) > engineEquivTol) {
					if mismatches < 5 {
						t.Errorf("%s/workers=%d: %v: %+v vs %+v", name, workers, f.Triple, f, w)
					}
					mismatches++
				}
			}
			if mismatches > 0 {
				t.Errorf("%s/workers=%d: %d mismatching triples", name, workers, mismatches)
			}
			if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
				t.Fatalf("%s/workers=%d: %d provenances, want %d", name, workers,
					len(got.ProvAccuracy), len(want.ProvAccuracy))
			}
			for p, a := range got.ProvAccuracy {
				if wa := want.ProvAccuracy[p]; math.Abs(a-wa) > engineEquivTol {
					t.Errorf("%s/workers=%d: ProvAccuracy[%q] = %v, want %v", name, workers, p, a, wa)
					break
				}
			}
		}
	}
}
