package kfusion

// Streaming surface: incremental (append-only) fusion, where the compiled
// graphs are generations of a growing extraction feed.
//
// CompiledClaims.Append / MustAppend and CompiledExtractions.Append extend a
// graph with a batch, bit-identical to recompiling the concatenated stream
// (existing interned IDs never move); CompiledClaims.FuseWarm and
// TwoLayerFuseCompiledWarm seed EM from the previous generation's
// posteriors so appended batches re-fuse in a fraction of the cold-start
// rounds. Dataset.AppendExtractions rides the same machinery with
// generation-aware graph caches, and the kfserved daemon (see api_serve.go)
// serves the chain over HTTP.

import (
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/shard"
	"kfusion/internal/twolayer"
)

type (
	// CompiledExtractions is a compiled extraction graph (the §5.1 two-layer
	// model's input): Compile once, Fuse any number of configurations,
	// Append batches to grow it across generations.
	CompiledExtractions = extract.Compiled
	// ClaimStream incrementally flattens an append-only extraction feed
	// into claims, carrying the (provenance, triple) dedup set across
	// batches.
	ClaimStream = fusion.ClaimStream
	// TwoLayerConfig parameterizes the §5.1 two-layer model.
	TwoLayerConfig = twolayer.Config
	// TwoLayerState carries a two-layer run's converged posteriors to the
	// next generation (warm start).
	TwoLayerState = twolayer.State
)

var (
	// NewClaimStream returns an empty incremental claim flattener for a
	// granularity.
	NewClaimStream = fusion.NewClaimStream
	// CompileExtractions interns an extraction set into a reusable
	// CompiledExtractions graph (siteLevel keys sources at site level).
	CompileExtractions = extract.Compile
	// TwoLayerDefaultConfig returns the two-layer model's experiment
	// configuration.
	TwoLayerDefaultConfig = twolayer.DefaultConfig
	// TwoLayerFuse runs the §5.1 two-layer model over raw extractions.
	TwoLayerFuse = twolayer.Fuse
	// TwoLayerFuseCompiled runs the two-layer model over a compiled
	// extraction graph.
	TwoLayerFuseCompiled = twolayer.FuseCompiled
	// TwoLayerFuseCompiledWarm is TwoLayerFuseCompiled seeded from a
	// previous generation's TwoLayerState.
	TwoLayerFuseCompiledWarm = twolayer.FuseCompiledWarm
)

// Sharded streaming surface: grow K item-partitioned shards by appending
// extraction batches (each shard's graph and dedup set stay self-contained
// and bounded), fuse them in lockstep, and persist them one genstore state
// directory per shard. See internal/shard and `kfuse -shards`.
type (
	// ShardedFusion is the K-shard claim-fusion coordinator: Append batches,
	// then Fuse/FuseWarm in lockstep EM rounds.
	ShardedFusion = shard.Fusion
	// ShardedTwoLayer is the K-shard coordinator for the §5.1 two-layer
	// model, with the cross-shard ghost-extractor corrections.
	ShardedTwoLayer = shard.TwoLayer
	// ShardStores bundles one durable genstore per shard with lockstep
	// batch appends and crash-skew detection.
	ShardStores = shard.Stores
)

var (
	// NewShardedFusion returns an empty K-shard fusion pipeline.
	NewShardedFusion = shard.NewFusion
	// NewShardedFusionFromShards reassembles a coordinator over restored
	// per-shard graphs (e.g. from ShardStores states).
	NewShardedFusionFromShards = shard.NewFusionFromShards
	// NewShardedTwoLayer returns an empty K-shard two-layer pipeline.
	NewShardedTwoLayer = shard.NewTwoLayer
	// OpenShardStores opens (or creates) the per-shard genstore directories
	// under one state root, refusing crash-skewed layouts.
	OpenShardStores = shard.OpenStores
	// ShardStateDir names shard s's state directory under a root.
	ShardStateDir = shard.ShardDir
)
