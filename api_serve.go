package kfusion

// Serving surface: the kfserved daemon, its typed client and the wire
// contract they share. Everything here is an alias into kfusion/client and
// the internal server/httpapi packages, so external callers never import
// internal/... — build an in-process server with NewServer, talk to a
// remote one with NewClient, and dispatch failures on the Err* sentinels
// with errors.Is.

import (
	"kfusion/client"
	"kfusion/internal/httpapi"
	"kfusion/internal/server"
)

// Serving types.
type (
	// Server is the kfserved daemon core: it owns a durable generation
	// store and serves fused posteriors over the versioned JSON API.
	Server = server.Server
	// ServerConfig parameterizes a Server (state directory, method,
	// snapshot cadence, body limits).
	ServerConfig = server.Config
	// Client is the typed HTTP client of a kfserved instance.
	Client = client.Client
	// ClientOption customizes a Client (timeout, retry budget).
	ClientOption = client.Option
	// TriplesQuery filters a Client.Triples read.
	TriplesQuery = client.TriplesQuery
	// APIError is a non-2xx server response; it unwraps to the matching
	// Err* sentinel.
	APIError = client.APIError
)

// Serving wire DTOs (the JSON bodies of the /v1 routes).
type (
	// WireExtraction is the wire form of one extraction, field-compatible
	// with the kfio JSONL record.
	WireExtraction = httpapi.Extraction
	// WireFusedTriple is the wire form of one fused posterior row,
	// bit-for-bit the in-process float64.
	WireFusedTriple = httpapi.FusedTriple
	// ItemResponse is the GET /v1/items/{id} body.
	ItemResponse = httpapi.ItemResponse
	// TriplesResponse is the GET /v1/triples body.
	TriplesResponse = httpapi.TriplesResponse
	// AppendRequest is the POST /v1/append body.
	AppendRequest = httpapi.AppendRequest
	// AppendResponse reports the generation an append published.
	AppendResponse = httpapi.AppendResponse
	// StatusResponse is the GET /v1/status body.
	StatusResponse = httpapi.StatusResponse
	// ErrorResponse is the body of every non-2xx data response.
	ErrorResponse = httpapi.ErrorResponse
)

// Serving constructors.
var (
	// NewServer validates a ServerConfig and builds the daemon core; call
	// Server.Hydrate before the data routes can answer.
	NewServer = server.New
	// NewClient builds a typed client for a kfserved base URL.
	NewClient = client.New
	// WithTimeout bounds each client HTTP attempt.
	WithTimeout = client.WithTimeout
	// WithRetries sets the client's GET retry budget.
	WithRetries = client.WithRetries
	// WithHTTPClient replaces the client's underlying http.Client.
	WithHTTPClient = client.WithHTTPClient
	// ServeItemPath returns the read-path URL path of one data item.
	ServeItemPath = httpapi.ItemPath
)

// Typed errors of the serving contract. Producers always wrap; dispatch
// with errors.Is, never identity comparison (kflint/typederr enforces
// this).
var (
	// ErrNotFound reports a route or data item the server does not have.
	ErrNotFound = httpapi.ErrNotFound
	// ErrBadBatch reports an append body the server refused.
	ErrBadBatch = httpapi.ErrBadBatch
	// ErrNotReady reports a request before hydration completed.
	ErrNotReady = httpapi.ErrNotReady
	// ErrBusy reports an append rejected while another holds the writer
	// slot.
	ErrBusy = httpapi.ErrBusy
	// ErrBadRequest reports a malformed read request.
	ErrBadRequest = httpapi.ErrBadRequest
)
