package kfusion

// Fusion surface: the paper's batch fusion methods over compiled claim
// graphs, with their provenance granularities.

import (
	"kfusion/internal/fusion"
	"kfusion/internal/shard"
)

// Fusion types.
type (
	// Claim is one (triple, provenance) assertion.
	Claim = fusion.Claim
	// CompiledClaims is a compiled, reusable claim graph: Compile once, then
	// Fuse any number of configurations over it.
	CompiledClaims = fusion.Compiled
	// FuseConfig parameterizes a fusion run.
	FuseConfig = fusion.Config
	// Granularity selects the provenance key shape.
	Granularity = fusion.Granularity
	// FusedTriple is one fused output row.
	FusedTriple = fusion.FusedTriple
	// FusionResult is a fusion run's output.
	FusionResult = fusion.Result
	// Labeler reports gold labels to semi-supervised fusion.
	Labeler = fusion.Labeler
)

// Fusion presets and entry points, named as in the paper.
var (
	// VOTE is the voting baseline.
	VOTE = fusion.VoteConfig
	// ACCU is Bayesian fusion with uniform false values (A=0.8, N=100).
	ACCU = fusion.AccuConfig
	// POPACCU estimates the false-value distribution from the data.
	POPACCU = fusion.PopAccuConfig
	// POPACCUPlusUnsup is POPACCU with the unsupervised refinements of
	// §4.3 (coverage filter, fine granularity, accuracy filter).
	POPACCUPlusUnsup = fusion.PopAccuPlusUnsupConfig
	// POPACCUPlus adds gold-standard accuracy initialization.
	POPACCUPlus = fusion.PopAccuPlusConfig
	// ClaimsFromExtractions flattens extractions into claims under a
	// provenance granularity.
	ClaimsFromExtractions = fusion.Claims
	// Fuse runs a fusion configuration over claims (compile-then-fuse).
	Fuse = fusion.Fuse
	// Compile interns claims into a reusable CompiledClaims graph so one
	// compilation serves many fusion configurations.
	Compile = fusion.Compile
	// CompileWorkers is Compile with explicit parallelism bounds.
	CompileWorkers = fusion.CompileWorkers
	// MustCompile is Compile for callers without error plumbing.
	MustCompile = fusion.MustCompile
)

// Sharded fusion: the paper's own MapReduce decomposition (§4) — partition
// the corpus by data item into K self-contained shards and fuse them in
// lockstep EM rounds with deterministic cross-shard merges. K=1 is
// bit-identical to the unsharded engine; K>1 agrees within the documented
// RefTol. See internal/shard for the merge contract.
var (
	// ShardOf reports which of k shards a data item routes to.
	ShardOf = shard.Of
	// SplitClaimsSharded partitions a claim set by data item into k slices.
	SplitClaimsSharded = shard.SplitClaims
	// SplitExtractionsSharded partitions an extraction set by data item.
	SplitExtractionsSharded = shard.SplitExtractions
	// FuseSharded runs one lockstep sharded fusion over per-shard compiled
	// claim graphs (graphs[i] holding the claims whose items route to shard
	// i), optionally warm-started from a previous result.
	FuseSharded = shard.FuseShards
)

// Provenance granularities from the paper's experiments.
var (
	// GranExtractorURL is the basic (Extractor, URL) provenance.
	GranExtractorURL = fusion.GranExtractorURL
	// GranExtractorSite keys sources at site level.
	GranExtractorSite = fusion.GranExtractorSite
	// GranExtractorSitePred adds the predicate.
	GranExtractorSitePred = fusion.GranExtractorSitePred
	// GranExtractorSitePredPattern adds the extraction pattern — the best
	// calibrated granularity in the paper.
	GranExtractorSitePredPattern = fusion.GranExtractorSitePredPattern
)
