// Moviefusion: a domain-focused walk through the substrate APIs. Builds a
// small film-heavy world, inspects the synthetic Web pages the paper's
// §3.1.2 describes (TXT sentences, DOM infoboxes, tables, schema.org
// annotations), runs two extractors by hand, and fuses their output.
//
//	go run ./examples/moviefusion
package main

import (
	"fmt"
	"log"

	"kfusion"
)

func main() {
	// A compact world: fewer entities, more facts per entity.
	wcfg := kfusion.DefaultWorldConfig(7)
	wcfg.NumEntities = 300
	w, err := kfusion.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	ccfg := kfusion.DefaultCorpusConfig(8)
	ccfg.NumSites = 60
	corpus, err := kfusion.GenerateCorpus(w, ccfg)
	if err != nil {
		log.Fatal(err)
	}

	// Peek at the raw content forms on the first film-topic page.
	for _, page := range corpus.Pages {
		ent := w.Ont.Entity(page.Topic)
		if ent == nil || len(ent.Types) == 0 || ent.Types[0] != "/film/film" {
			continue
		}
		fmt.Printf("page %s about %q:\n", page.URL, ent.Name)
		for _, b := range page.Blocks {
			switch {
			case len(b.Sentences) > 0:
				fmt.Printf("  TXT: %q\n", b.Sentences[0].Text)
			case b.Root != nil:
				fmt.Printf("  DOM: infobox with %d rows\n", len(b.Root.Children))
			case b.Table != nil:
				fmt.Printf("  TBL: %d rows x %d attrs (%v)\n", len(b.Table.Rows), len(b.Table.Attrs), b.Table.Attrs)
			case len(b.Annotations) > 0:
				fmt.Printf("  ANO: itemprop=%q value=%q\n", b.Annotations[0].ItemProp, b.Annotations[0].Value)
			}
		}
		break
	}

	// Run the full 12-extractor fleet, then fuse.
	suite := kfusion.NewExtractorSuite(w, 9)
	xs := suite.Run(w, corpus)
	fmt.Printf("\nextracted %d (triple, provenance) pairs\n", len(xs))

	snap := kfusion.BuildFreebase(w)
	gold := kfusion.NewGoldStandard(snap)

	claims := kfusion.ClaimsFromExtractions(xs, kfusion.GranExtractorSitePredPattern)
	res, err := kfusion.Fuse(claims, kfusion.POPACCUPlus(gold.Labeler()))
	if err != nil {
		log.Fatal(err)
	}

	// Show the most confident new knowledge about films that Freebase does
	// not already have — the paper's motivation: 83% of extracted triples
	// are not in Freebase.
	fmt.Println("\nmost confident new film facts (not in the trusted KB):")
	shown := 0
	for _, f := range res.Triples {
		if !f.Predicted || f.Probability < 0.9 || snap.Has(f.Triple) {
			continue
		}
		ent := w.Ont.Entity(f.Triple.Subject)
		if ent == nil || len(ent.Types) == 0 || ent.Types[0] != "/film/film" {
			continue
		}
		verdict := "correct"
		if !w.IsTrue(f.Triple) {
			verdict = "WRONG (extraction artifact)"
		}
		fmt.Printf("  p=%.2f  %-55s -> %s\n", f.Probability, f.Triple, verdict)
		shown++
		if shown >= 10 {
			break
		}
	}
	rep := kfusion.Evaluate("POPACCU+", res, gold)
	fmt.Printf("\ncalibration: WDev=%.4f AUC-PR=%.4f over %d labeled triples\n", rep.WDev, rep.AUCPR, rep.N)
}
