// Multitruth: the paper's dominant false-negative class is the single-truth
// assumption (65% of FNs, Figure 17) — a person has several children, an
// actor several films, but VOTE/ACCU/POPACCU normalize each data item's
// probabilities to sum to 1. This example contrasts POPACCU with the latent
// truth model extension (§5.3) on a non-functional predicate, then shows the
// functionality-degree rescaling on a full synthetic corpus.
//
//	go run ./examples/multitruth
package main

import (
	"fmt"

	"kfusion"
	"kfusion/internal/funcdegree"
	"kfusion/internal/fusion"
	"kfusion/internal/multitruth"
)

func main() {
	// Part 1: a hand-built non-functional item. Three reliable provenances
	// report child Alice, three others child Bob — both are true.
	claim := func(subj, obj, prov string) kfusion.Claim {
		return kfusion.Claim{
			Triple: kfusion.Triple{
				Subject:   kfusion.EntityID(subj),
				Predicate: "/people/person/children",
				Object:    kfusion.StringObject(obj),
			},
			Prov: prov,
		}
	}
	var claims []kfusion.Claim
	for _, p := range []string{"wiki/p1", "bio/p2", "news/p3"} {
		claims = append(claims, claim("/m/parent", "Alice", p))
	}
	for _, p := range []string{"wiki/p4", "bio/p5", "news/p6"} {
		claims = append(claims, claim("/m/parent", "Bob", p))
	}
	// Anchors that keep all six provenances credible.
	for i, p := range []string{"wiki/p1", "bio/p2", "news/p3", "wiki/p4", "bio/p5", "news/p6"} {
		anchor := kfusion.Claim{
			Triple: kfusion.Triple{
				Subject:   kfusion.EntityID(fmt.Sprintf("/m/anchor%d", i)),
				Predicate: "/x/p",
				Object:    kfusion.StringObject("v"),
			},
			Prov: p,
		}
		claims = append(claims, anchor)
	}

	single, err := kfusion.Fuse(claims, kfusion.POPACCU())
	if err != nil {
		panic(err)
	}
	ltm := multitruth.MustFuse(claims, multitruth.DefaultConfig())

	fmt.Println("who are the parent's children?  (both Alice and Bob are true)")
	fmt.Printf("%-28s %10s %10s\n", "", "POPACCU", "LTM")
	show := func(obj string) {
		var sp, lp float64
		for _, f := range single.Triples {
			if f.Triple.Subject == "/m/parent" && f.Triple.Object.Str == obj {
				sp = f.Probability
			}
		}
		for _, f := range ltm.Triples {
			if f.Triple.Subject == "/m/parent" && f.Triple.Object.Str == obj {
				lp = f.Probability
			}
		}
		fmt.Printf("  children = %-15s %10.3f %10.3f\n", obj, sp, lp)
	}
	show("Alice")
	show("Bob")
	fmt.Println("  → the single-truth model splits the mass; the latent truth model believes both")

	// Part 2: learned functionality degrees on a synthetic corpus.
	ds := kfusion.Synthesize(kfusion.ScaleSmall, 77)
	res := ds.Fuse("POPACCU+", kfusion.POPACCUPlus(ds.Gold.Labeler()))
	degrees := funcdegree.LearnFromGold(res, ds.Gold.Label, 6)

	fmt.Println("\nmost multi-valued predicates by learned functionality degree:")
	ranked := degrees.Ranked()
	shown := 0
	for _, p := range ranked {
		pr := ds.World.Ont.Predicate(p)
		if pr == nil {
			continue
		}
		kind := "functional"
		if !pr.Functional {
			kind = fmt.Sprintf("non-functional (true cardinality %.1f)", pr.Cardinality)
		}
		fmt.Printf("  degree %.2f  %-45s %s\n", degrees.Degree(p), p, kind)
		shown++
		if shown >= 8 {
			break
		}
	}

	rescaled := funcdegree.Rescale(res, degrees)
	fmt.Printf("\nrecall of gold-true triples at p>=0.5: before %.3f, after degree rescaling %.3f\n",
		recallAt(res, ds), recallAt(rescaled, ds))
}

func recallAt(res *fusion.Result, ds *kfusion.Dataset) float64 {
	hit, total := 0, 0
	for _, f := range res.Triples {
		if !f.Predicted {
			continue
		}
		if label, ok := ds.Gold.Label(f.Triple); ok && label {
			total++
			if f.Probability >= 0.5 {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
