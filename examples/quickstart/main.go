// Quickstart: fuse a hand-built set of conflicting claims about Tom Cruise
// — the paper's running example — and print calibrated probabilities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"kfusion"
)

func main() {
	// Four "provenances" (extractor × page pairs) make claims about two
	// data items. Three agree on the birth date; a low-quality extraction
	// disagrees. The birth place is contested 2-2, but the dissenting
	// provenances are wrong elsewhere, so fusion learns to distrust them.
	claim := func(subj, pred, obj, prov string) kfusion.Claim {
		return kfusion.Claim{
			Triple: kfusion.Triple{
				Subject:   kfusion.EntityID(subj),
				Predicate: kfusion.PredicateID(pred),
				Object:    kfusion.StringObject(obj),
			},
			Prov: prov,
			Conf: -1,
		}
	}

	claims := []kfusion.Claim{
		// Birth date: 3 vs 1.
		claim("/m/tom_cruise", "/people/person/birth_date", "7/3/1962", "TXT1|wiki.example.com/tom"),
		claim("/m/tom_cruise", "/people/person/birth_date", "7/3/1962", "DOM1|bio.example.com/cruise"),
		claim("/m/tom_cruise", "/people/person/birth_date", "7/3/1962", "ANO|fanpage.example.com/tc"),
		claim("/m/tom_cruise", "/people/person/birth_date", "3/7/1962", "DOM2|scrape.example.com/p9"),

		// Birth place: 2 vs 2, but the "Les Miserables"-style provenances
		// also claim known-wrong values on other items below.
		claim("/m/tom_cruise", "/people/person/birth_place", "Syracuse NY", "TXT1|wiki.example.com/tom"),
		claim("/m/tom_cruise", "/people/person/birth_place", "Syracuse NY", "DOM1|bio.example.com/cruise"),
		claim("/m/tom_cruise", "/people/person/birth_place", "New York City", "DOM2|scrape.example.com/p9"),
		claim("/m/tom_cruise", "/people/person/birth_place", "New York City", "DOM2|scrape.example.com/p12"),

		// Anchor items: the reliable provenances agree with each other and
		// with the crowd; DOM2's pages contradict everyone.
		claim("/m/top_gun", "/film/film/release_year", "1986", "TXT1|wiki.example.com/tom"),
		claim("/m/top_gun", "/film/film/release_year", "1986", "DOM1|bio.example.com/cruise"),
		claim("/m/top_gun", "/film/film/release_year", "1986", "ANO|fanpage.example.com/tc"),
		claim("/m/top_gun", "/film/film/release_year", "1996", "DOM2|scrape.example.com/p9"),
		claim("/m/top_gun", "/film/film/release_year", "1996", "DOM2|scrape.example.com/p12"),
	}

	res, err := kfusion.Fuse(claims, kfusion.POPACCU())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fused triples (POPACCU):")
	triples := append([]kfusion.FusedTriple(nil), res.Triples...)
	sort.Slice(triples, func(i, j int) bool {
		if triples[i].Triple.Subject != triples[j].Triple.Subject {
			return triples[i].Triple.Subject < triples[j].Triple.Subject
		}
		return triples[i].Probability > triples[j].Probability
	})
	for _, f := range triples {
		fmt.Printf("  p=%.3f  %-60s (%d provenances)\n", f.Probability, f.Triple, f.Provenances)
	}

	fmt.Println("\nlearned provenance accuracies:")
	var provs []string
	for p := range res.ProvAccuracy {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Printf("  %.3f  %s\n", res.ProvAccuracy[p], p)
	}
}
