// Webscale: the full synthetic pipeline — generate a world, crawl it into a
// Web corpus, run the 12 simulated extractors, build the LCWA gold standard,
// fuse with every preset and compare calibration, then run the mechanical
// error analysis of Figure 17.
//
//	go run ./examples/webscale [-scale bench] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"kfusion"
	"kfusion/internal/copydetect"
	"kfusion/internal/kbstore"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "small or bench")
		seed      = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()
	scale := kfusion.ScaleSmall
	if *scaleFlag == "bench" {
		scale = kfusion.ScaleBench
	} else if *scaleFlag != "small" {
		log.Fatalf("unknown -scale %q", *scaleFlag)
	}

	start := time.Now()
	ds := kfusion.Synthesize(scale, *seed)
	fmt.Printf("synthesized in %v:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  world:       %s\n", ds.World.Stats())
	fmt.Printf("  corpus:      %d pages on %d sites\n", len(ds.Corpus.Pages), ds.Corpus.NumSites())
	fmt.Printf("  extractions: %d by %d extractors\n", len(ds.Extractions), len(ds.Suite.Extractors))
	fmt.Printf("  freebase:    %d triples (incomplete on purpose)\n\n", ds.Snapshot.Store.Len())

	presets := []struct {
		name string
		cfg  kfusion.FuseConfig
	}{
		{"VOTE", kfusion.VOTE()},
		{"ACCU", kfusion.ACCU()},
		{"POPACCU", kfusion.POPACCU()},
		{"POPACCU+unsup", kfusion.POPACCUPlusUnsup()},
		{"POPACCU+", kfusion.POPACCUPlus(ds.Gold.Labeler())},
	}

	fmt.Printf("%-14s %8s %8s %8s %9s\n", "model", "Dev", "WDev", "AUC-PR", "labeled")
	for _, p := range presets {
		res := ds.Fuse(p.name, p.cfg)
		rep := kfusion.Evaluate(p.name, res, ds.Gold)
		fmt.Printf("%-14s %8.4f %8.4f %8.4f %9d\n", p.name, rep.Dev, rep.WDev, rep.AUCPR, rep.N)
	}

	// Calibration detail for the refined system.
	plus := ds.Fuse("POPACCU+", kfusion.POPACCUPlus(ds.Gold.Labeler()))
	rep := kfusion.Evaluate("POPACCU+", plus, ds.Gold)
	fmt.Println("\nPOPACCU+ calibration (predicted -> real, n):")
	for _, b := range rep.Curve.Buckets {
		if b.N == 0 {
			continue
		}
		fmt.Printf("  [%.2f,%.2f)  %.3f -> %.3f  (%d)\n", b.Lo, b.Hi, b.MeanPred, b.Real, b.N)
	}

	// Figure 17-style mechanical error analysis.
	ea := kfusion.AnalyzeErrors(ds.World, ds.Snapshot, ds.Gold, plus, ds.Extractions, 0.95, 0.05)
	fmt.Printf("\nerror analysis (high-confidence mistakes):\n%s", ea)

	// Copy detection (§5.2): the corpus plants syndicated sites.
	pairs := copydetect.Detect(ds.Extractions, copydetect.DefaultConfig())
	genuine := 0
	for _, p := range pairs {
		if ds.Corpus.CopiedFrom[p.A] == p.B || ds.Corpus.CopiedFrom[p.B] == p.A {
			genuine++
		}
	}
	fmt.Printf("\ncopy detection: %d planted copier sites, %d pairs detected (%d genuine)\n",
		len(ds.Corpus.CopiedFrom), len(pairs), genuine)

	// Persist the fused KB and query it back.
	kbPath := filepath.Join(os.TempDir(), "webscale-fused.kb")
	if err := kbstore.Write(kbPath, plus.Triples); err != nil {
		log.Fatal(err)
	}
	store, err := kbstore.Open(kbPath)
	if err != nil {
		log.Fatal(err)
	}
	triples, subjects, predicted := store.Stats()
	fmt.Printf("\npersisted knowledge base: %s (%d triples, %d subjects, %d with probability)\n",
		kbPath, triples, subjects, predicted)
	confident := 0
	store.Above(0.9, func(kfusion.FusedTriple) bool { confident++; return true })
	fmt.Printf("triples trusted at p>=0.9: %d\n", confident)
}
