package kfusion_test

// Runnable examples for the root facade, executed (and output-checked) by
// `go test ./...`. Each one is the minimal form of a workflow the docs
// describe: batch fusion, compile-once reuse, streaming append with warm
// restarts, sharded fusion, and the durable serving loop.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"

	"kfusion"
)

// capitalClaims is the smallest corpus with a conflict: two provenances
// assert Paris, one asserts Lyon, on the same data item.
func capitalClaims() []kfusion.Claim {
	paris := kfusion.Triple{Subject: "france", Predicate: "capital", Object: kfusion.StringObject("Paris")}
	lyon := kfusion.Triple{Subject: "france", Predicate: "capital", Object: kfusion.StringObject("Lyon")}
	return []kfusion.Claim{
		{Triple: paris, Prov: "TXT1|a.example/1", Conf: -1},
		{Triple: paris, Prov: "TXT1|b.example/1", Conf: -1},
		{Triple: lyon, Prov: "TXT1|c.example/1", Conf: -1},
	}
}

// ExampleFuse runs the VOTE baseline over three conflicting claims: each
// value's probability is its share of the data item's provenances.
func ExampleFuse() {
	res, err := kfusion.Fuse(capitalClaims(), kfusion.VOTE())
	if err != nil {
		panic(err)
	}
	triples := append([]kfusion.FusedTriple(nil), res.Triples...)
	sort.Slice(triples, func(i, j int) bool { return triples[i].Probability > triples[j].Probability })
	for _, t := range triples {
		fmt.Printf("%s = %.2f\n", t.Triple.Object, t.Probability)
	}
	// Output:
	// s:Paris = 0.67
	// s:Lyon = 0.33
}

// ExampleCompile compiles a claim set once and fuses two configurations over
// the shared graph — the multi-config sweep pattern. The compiled graph is
// configuration-independent, so the second fuse pays no compilation.
func ExampleCompile() {
	g, err := kfusion.Compile(capitalClaims())
	if err != nil {
		panic(err)
	}
	vote, err := g.Fuse(kfusion.VOTE())
	if err != nil {
		panic(err)
	}
	accu, err := g.Fuse(kfusion.ACCU())
	if err != nil {
		panic(err)
	}
	fmt.Printf("claims=%d triples=%d\n", g.NumClaims(), g.NumTriples())
	fmt.Printf("VOTE rounds=%d ACCU rounds=%d\n", vote.Rounds, accu.Rounds)
	// Output:
	// claims=3 triples=2
	// VOTE rounds=1 ACCU rounds=3
}

// ExampleNewClaimStream grows a claim graph by appending a second extraction
// batch and re-fuses warm from the previous result — the streaming pipeline
// `kfuse -append` drives. The stream carries the (provenance, triple) dedup
// across batches, so the appended graph is bit-identical to compiling the
// whole feed at once.
func ExampleNewClaimStream() {
	xs := capitalExtractions()
	stream := kfusion.NewClaimStream(kfusion.GranExtractorURL)

	g := kfusion.MustCompile(stream.Add(xs[:2]))
	cold, err := g.Fuse(kfusion.POPACCU())
	if err != nil {
		panic(err)
	}
	g = g.MustAppend(stream.Add(xs[2:]))
	warm, err := g.FuseWarm(kfusion.POPACCU(), cold)
	if err != nil {
		panic(err)
	}
	fmt.Printf("generation 1: %d claims, %d triples\n", 2, len(cold.Triples))
	fmt.Printf("generation 2: %d claims, %d triples\n", g.NumClaims(), len(warm.Triples))
	// Output:
	// generation 1: 2 claims, 2 triples
	// generation 2: 3 claims, 3 triples
}

// capitalExtractions is the extraction-layer form of the example corpus:
// three extraction records over two data items.
func capitalExtractions() []kfusion.Extraction {
	return []kfusion.Extraction{
		{Triple: kfusion.Triple{Subject: "france", Predicate: "capital", Object: kfusion.StringObject("Paris")},
			Extractor: "TXT1", URL: "a.example/1", Site: "a.example", Confidence: -1},
		{Triple: kfusion.Triple{Subject: "france", Predicate: "capital", Object: kfusion.StringObject("Lyon")},
			Extractor: "TXT1", URL: "b.example/1", Site: "b.example", Confidence: -1},
		{Triple: kfusion.Triple{Subject: "italy", Predicate: "capital", Object: kfusion.StringObject("Rome")},
			Extractor: "TXT1", URL: "a.example/1", Site: "a.example", Confidence: -1},
	}
}

// ExampleNewShardedFusion partitions a corpus by data item into two shards
// and fuses them in lockstep — the paper's MapReduce decomposition. The
// sharded result carries the same triples and probabilities as the unsharded
// engine (bit-identical at K=1, within RefTol for K>1).
func ExampleNewShardedFusion() {
	xs := capitalExtractions()
	sharded, err := kfusion.NewShardedFusion(2, kfusion.GranExtractorURL)
	if err != nil {
		panic(err)
	}
	if err := sharded.Append(xs); err != nil {
		panic(err)
	}
	res, err := sharded.Fuse(kfusion.VOTE())
	if err != nil {
		panic(err)
	}

	unsharded, err := kfusion.Fuse(kfusion.ClaimsFromExtractions(xs, kfusion.GranExtractorURL), kfusion.VOTE())
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards=%d claims=%d triples=%d\n", sharded.K(), sharded.NumClaims(), len(res.Triples))
	fmt.Printf("matches unsharded: %v\n", len(res.Triples) == len(unsharded.Triples))
	// Output:
	// shards=2 claims=3 triples=3
	// matches unsharded: true
}

// ExampleNewServer runs the durable serving loop end to end: a server owning
// a genstore state directory, an append through the typed client, a restart,
// and the restart contract — the reopened server recovers the identical
// generation from its journal and snapshots.
func ExampleNewServer() {
	dir, err := os.MkdirTemp("", "kfserved-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	open := func() (*kfusion.Server, *httptest.Server) {
		srv, err := kfusion.NewServer(kfusion.ServerConfig{StateDir: dir, Method: "vote"})
		if err != nil {
			panic(err)
		}
		if err := srv.Hydrate(); err != nil {
			panic(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}

	srv, ts := open()
	c, err := kfusion.NewClient(ts.URL)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	batch := []kfusion.Extraction{
		{Triple: kfusion.Triple{Subject: "france", Predicate: "capital", Object: kfusion.StringObject("Paris")},
			Extractor: "TXT1", URL: "a.example/1", Site: "a.example", Confidence: -1},
	}
	if _, err := c.Append(ctx, batch); err != nil {
		panic(err)
	}
	item, err := c.Item(ctx, "france", "capital")
	if err != nil {
		panic(err)
	}
	fmt.Printf("before restart: %s = %.2f\n", item.Triples[0].Object, item.Triples[0].Probability)
	ts.Close()
	srv.Close()

	srv, ts = open() // restart = genstore recovery, never a recompile
	defer ts.Close()
	defer srv.Close()
	c, err = kfusion.NewClient(ts.URL)
	if err != nil {
		panic(err)
	}
	item, err = c.Item(ctx, "france", "capital")
	if err != nil {
		panic(err)
	}
	fmt.Printf("after restart:  %s = %.2f\n", item.Triples[0].Object, item.Triples[0].Probability)
	// Output:
	// before restart: s:Paris = 1.00
	// after restart:  s:Paris = 1.00
}
