package kfusion

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole facade exactly the way the
// README's quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds := Synthesize(ScaleSmall, 4242)
	if len(ds.Extractions) == 0 {
		t.Fatal("no extractions")
	}

	res := ds.Fuse("popaccu+", POPACCUPlus(ds.Gold.Labeler()))
	rep := Evaluate("POPACCU+", res, ds.Gold)
	if rep.N < 200 {
		t.Fatalf("too few labeled predictions: %d", rep.N)
	}
	if rep.WDev > 0.05 {
		t.Errorf("POPACCU+ WDev %.4f too high", rep.WDev)
	}
	if rep.AUCPR < 0.7 {
		t.Errorf("POPACCU+ AUC-PR %.4f too low", rep.AUCPR)
	}

	// Paper headline: when POPACCU+ predicts >= 0.9, real accuracy is high
	// (the paper reports 0.94); when it predicts < 0.1, accuracy is low.
	preds, _ := Predictions(res, ds.Gold)
	hiTrue, hiN, loTrue, loN := 0, 0, 0, 0
	for _, p := range preds {
		if p.Prob >= 0.9 {
			hiN++
			if p.Label {
				hiTrue++
			}
		}
		if p.Prob < 0.1 {
			loN++
			if p.Label {
				loTrue++
			}
		}
	}
	if hiN == 0 || loN == 0 {
		t.Fatal("missing extreme-probability predictions")
	}
	hi := float64(hiTrue) / float64(hiN)
	lo := float64(loTrue) / float64(loN)
	if hi < 0.85 {
		t.Errorf("accuracy at prob>=0.9 is %.2f, want >=0.85 (paper: 0.94)", hi)
	}
	if lo > 0.25 {
		t.Errorf("accuracy at prob<0.1 is %.2f, want <=0.25 (paper: 0.2)", lo)
	}
}

func TestPublicAPIManualFusion(t *testing.T) {
	claims := []Claim{
		{Triple: Triple{Subject: "s", Predicate: "p", Object: StringObject("a")}, Prov: "x"},
		{Triple: Triple{Subject: "s", Predicate: "p", Object: StringObject("a")}, Prov: "y"},
		{Triple: Triple{Subject: "s", Predicate: "p", Object: StringObject("b")}, Prov: "z"},
	}
	res, err := Fuse(claims, POPACCU())
	if err != nil {
		t.Fatal(err)
	}
	var pa, pb float64
	for _, f := range res.Triples {
		switch f.Triple.Object.Str {
		case "a":
			pa = f.Probability
		case "b":
			pb = f.Probability
		}
	}
	if pa <= pb {
		t.Errorf("majority value lost: p(a)=%.3f p(b)=%.3f", pa, pb)
	}
}

func TestPublicAPITripleRoundTrip(t *testing.T) {
	tr := Triple{Subject: "/m/1", Predicate: "/p/x", Object: NumberObject(3)}
	got, err := ParseTriple(tr.Encode())
	if err != nil || got != tr {
		t.Errorf("round trip failed: %v %v", got, err)
	}
	if _, ok := EntityObject("/m/2").Entity(); !ok {
		t.Error("EntityObject lost entity kind")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// Every paper artifact must be present.
	want := []string{
		"table1", "table2", "table3",
		"fig3", "fig4", "fig5", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"abl-twolayer", "abl-multitruth", "abl-funcdegree", "abl-hierval", "abl-confweight",
		"abl-copydetect", "abl-softlcwa", "abl-valuesim",
	}
	for _, id := range want {
		if ExperimentByID(id) == nil {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Experiments) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments), len(want))
	}
}

func TestGranularityPresetsDistinct(t *testing.T) {
	x := ds0().Extractions[0]
	keys := map[string]bool{}
	for _, g := range []Granularity{GranExtractorURL, GranExtractorSite, GranExtractorSitePred, GranExtractorSitePredPattern} {
		keys[g.Key(x)] = true
	}
	if len(keys) < 3 {
		t.Errorf("granularity presets collapse: %v", keys)
	}
}

func ds0() *Dataset {
	return Synthesize(ScaleSmall, 1)
}

func TestCalibrationHelpers(t *testing.T) {
	preds := []Prediction{{Prob: 0.9, Label: true}, {Prob: 0.1, Label: false}}
	if auc := AUCPR(preds); math.Abs(auc-1) > 1e-9 {
		t.Errorf("AUCPR = %v", auc)
	}
	curve := Calibration(preds, 20)
	if curve.WeightedDeviation() > 0.011 {
		t.Errorf("WDev = %v", curve.WeightedDeviation())
	}
	if pts := PRCurve(preds); len(pts) == 0 {
		t.Error("PRCurve empty")
	}
}

// TestAppendWarmSurface smoke-tests the exported append / warm-start
// surface: stream claims in two batches over one growing CompiledClaims,
// warm-start the second fuse, and grow a CompiledExtractions generation
// through the two-layer warm path.
func TestAppendWarmSurface(t *testing.T) {
	ds := ds0()
	xs := ds.Extractions
	cut := len(xs) / 2

	stream := NewClaimStream(GranExtractorURL)
	base := MustCompile(stream.Add(xs[:cut]))
	prev, err := base.Fuse(POPACCU())
	if err != nil {
		t.Fatal(err)
	}
	next, err := base.Append(stream.Add(xs[cut:]))
	if err != nil {
		t.Fatal(err)
	}
	if next.Generation() != 1 || next.NumClaims() <= base.NumClaims() {
		t.Fatalf("append did not grow: gen=%d claims %d -> %d", next.Generation(), base.NumClaims(), next.NumClaims())
	}
	warm, err := next.FuseWarm(POPACCU(), prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Triples) == 0 {
		t.Fatal("warm fuse produced no triples")
	}

	g := CompileExtractions(xs[:cut], true)
	tcfg := TwoLayerDefaultConfig()
	tcfg.SiteLevel = true
	_, state, err := TwoLayerFuseCompiledWarm(g, tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, state2, err := TwoLayerFuseCompiledWarm(g.Append(xs[cut:]), tcfg, state)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) == 0 || len(state2.SrcAcc) < len(state.SrcAcc) {
		t.Fatal("two-layer append/warm surface broken")
	}

	ds.AppendExtractions(xs[:100])
	if ds.Generation() != 1 {
		t.Fatalf("Dataset.Generation = %d, want 1", ds.Generation())
	}
}
