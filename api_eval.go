package kfusion

// Evaluation surface: the paper's metric set (Dev, WDev, AUC-PR),
// calibration and error analysis, plus the experiment registry that
// regenerates its tables and figures.

import (
	"kfusion/internal/eval"
	"kfusion/internal/exper"
)

// Evaluation types.
type (
	// GoldStandard labels triples under the local closed-world assumption.
	GoldStandard = eval.GoldStandard
	// Prediction pairs a probability with a gold label.
	Prediction = eval.Prediction
	// CalibrationCurve is the predicted-vs-real probability curve.
	CalibrationCurve = eval.CalibrationCurve
	// Report is the paper's standard (Dev, WDev, AUC-PR) metric set.
	Report = eval.Report
	// ErrorAnalysis attributes false positives/negatives to Figure 17's
	// categories.
	ErrorAnalysis = eval.ErrorAnalysis
)

// Evaluation entry points.
var (
	// NewGoldStandard wraps a Freebase snapshot for LCWA labeling.
	NewGoldStandard = eval.NewGoldStandard
	// Evaluate computes Dev, WDev and AUC-PR for a fusion result.
	Evaluate = eval.Evaluate
	// Predictions pairs a fusion result with gold labels.
	Predictions = eval.Predictions
	// Calibration buckets predictions into a calibration curve.
	Calibration = eval.Calibration
	// AUCPR computes the area under the precision-recall curve.
	AUCPR = eval.AUCPR
	// PRCurve computes precision-recall points.
	PRCurve = eval.PRCurve
	// AnalyzeErrors runs the mechanical Figure 17 error analysis.
	AnalyzeErrors = eval.AnalyzeErrors
	// KappaMatrix computes Eq. 1's kappa for every extractor pair.
	KappaMatrix = eval.KappaMatrix
)

// Experiment types and entry points (the paper's tables and figures).
type (
	// Experiment binds a paper artifact to its regeneration function.
	Experiment = exper.Experiment
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = exper.Table
)

var (
	// Experiments lists every reproduced table and figure in paper order.
	Experiments = exper.Registry
	// ExperimentByID resolves an experiment by its ID (e.g. "fig9").
	ExperimentByID = exper.ByID
)
