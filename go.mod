module kfusion

// Zero dependencies on purpose. In particular, internal/lint deliberately
// does NOT pin golang.org/x/tools (the usual go/analysis home): the module
// must build with an empty module cache and no network, so the analyzer
// framework mirrors the analysis API shape on the standard library alone
// (go/ast, go/types, `go list -export` data). If a vendored x/tools ever
// lands, internal/lint's Analyzer/Pass types are shaped to lift onto
// analysis.Analyzer mechanically.

go 1.22
