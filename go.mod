module kfusion

go 1.22
