package kfusion

// Warm-start quality regression test: the streaming (online-EM) mode of the
// append pipeline — one warm-started round per appended batch instead of a
// cold R=5 recompile — must match the cold path's evaluation quality within
// documented bounds on the realistic bench dataset. Pointwise equality is
// the wrong contract here: the R-capped EM runs of the paper are forced
// truncations of a non-converging iteration (POPACCU's accuracies oscillate
// above the 1e-4 threshold indefinitely), so warm and cold outputs are two
// different cut points of the same trajectory; what production cares about
// is that freshness via Append + warm start costs no measurable calibration
// or ranking quality. The bounds below carry ~3-7x headroom over the drift
// measured across seeds (WDev within ~0.008, AUC-PR within ~0.025); the
// dataset is deterministic, so the test cannot flake.

import (
	"math"
	"testing"

	"kfusion/internal/eval"
	"kfusion/internal/exper"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/twolayer"
)

const (
	warmWDevTol  = 0.02
	warmAUCPRTol = 0.05
)

func TestWarmStartQualityOnBenchDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale dataset in -short mode")
	}
	ds := exper.SharedDataset(exper.ScaleBench, benchSeed)
	xs := ds.Extractions
	n := len(xs)
	cut := n - n/10

	// POPACCU over the claim graph.
	cfg := fusion.PopAccuConfig()
	cold := fusion.MustCompile(fusion.Claims(xs, cfg.Granularity)).MustFuse(cfg)
	stream := fusion.NewClaimStream(cfg.Granularity)
	base := fusion.MustCompile(stream.Add(xs[:cut]))
	prev := base.MustFuse(cfg)
	next := base.MustAppend(stream.Add(xs[cut:]))
	warmCfg := cfg
	warmCfg.Rounds = 1
	warm := next.MustFuseWarm(warmCfg, prev)
	assertWarmQuality(t, "popaccu", ds, cold, warm)

	// The two-layer model over the extraction graph.
	tcfg := twolayer.DefaultConfig()
	tcfg.SiteLevel = true
	tcold, _, err := twolayer.FuseCompiledWarm(ds.ExtractionGraph(true), tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbase := extract.Compile(xs[:cut], true)
	_, state, err := twolayer.FuseCompiledWarm(tbase, tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	twarmCfg := tcfg
	twarmCfg.Rounds = 1
	twarm, _, err := twolayer.FuseCompiledWarm(tbase.Append(xs[cut:]), twarmCfg, state)
	if err != nil {
		t.Fatal(err)
	}
	assertWarmQuality(t, "twolayer", ds, tcold, twarm)
}

func assertWarmQuality(t *testing.T, name string, ds *exper.Dataset, cold, warm *fusion.Result) {
	t.Helper()
	rc := eval.Evaluate(name+"-cold", cold, ds.Gold)
	rw := eval.Evaluate(name+"-warm", warm, ds.Gold)
	if d := math.Abs(rw.WDev - rc.WDev); d > warmWDevTol {
		t.Errorf("%s: warm-start WDev %.4f vs cold %.4f (|Δ| %.4f > %.2f)", name, rw.WDev, rc.WDev, d, warmWDevTol)
	}
	if d := math.Abs(rw.AUCPR - rc.AUCPR); d > warmAUCPRTol {
		t.Errorf("%s: warm-start AUC-PR %.4f vs cold %.4f (|Δ| %.4f > %.2f)", name, rw.AUCPR, rc.AUCPR, d, warmAUCPRTol)
	}
	t.Logf("%s: cold WDev=%.4f AUCPR=%.4f | warm(1 round) WDev=%.4f AUCPR=%.4f", name, rc.WDev, rc.AUCPR, rw.WDev, rw.AUCPR)
}

// TestAppendBitIdenticalColdStartOnBenchDataset pins the other half of the
// acceptance contract at realistic scale: Append-then-cold-Fuse equals
// recompile-then-cold-Fuse bit-for-bit (the appended graph IS the recompiled
// graph), for both graph layers, at several worker counts.
func TestAppendBitIdenticalColdStartOnBenchDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale dataset in -short mode")
	}
	ds := exper.SharedDataset(exper.ScaleBench, benchSeed)
	xs := ds.Extractions
	n := len(xs)
	cut := n - n/10

	cfg := fusion.PopAccuConfig()
	full := fusion.MustCompile(fusion.Claims(xs, cfg.Granularity))
	stream := fusion.NewClaimStream(cfg.Granularity)
	base := fusion.MustCompile(stream.Add(xs[:cut]))
	next := base.MustAppend(stream.Add(xs[cut:]))
	for _, workers := range []int{1, 4, 8} {
		c := cfg
		c.Workers = workers
		got := next.MustFuse(c)
		want := full.MustFuse(c)
		if len(got.Triples) != len(want.Triples) || got.Rounds != want.Rounds {
			t.Fatalf("workers=%d: shape mismatch", workers)
		}
		for i := range got.Triples {
			if got.Triples[i] != want.Triples[i] {
				t.Fatalf("workers=%d: triple %d differs between append and recompile", workers, i)
			}
		}
	}

	tcfg := twolayer.DefaultConfig()
	tcfg.SiteLevel = true
	tbase := extract.Compile(xs[:cut], true)
	tnext := tbase.Append(xs[cut:])
	for _, workers := range []int{1, 4, 8} {
		c := tcfg
		c.Workers = workers
		got, err := twolayer.FuseCompiled(tnext, c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := twolayer.FuseCompiled(ds.ExtractionGraph(true), c)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Triples) != len(want.Triples) || got.Rounds != want.Rounds {
			t.Fatalf("twolayer workers=%d: shape mismatch", workers)
		}
		for i := range got.Triples {
			if got.Triples[i] != want.Triples[i] {
				t.Fatalf("twolayer workers=%d: triple %d differs between append and recompile", workers, i)
			}
		}
	}
}
