GO ?= go

.PHONY: verify build vet lint test race fault fuzz-smoke bench-smoke bench-json bench-check bench-scaling docs-check

# verify is the tier-1 gate: vet, lint, build, full tests, and a 1-iteration
# benchmark smoke so perf-critical paths cannot silently rot.
verify: vet lint build test bench-smoke docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the in-tree contract analyzers (internal/lint, cmd/kflint):
# deterministic map iteration and fixed-block float reductions in the
# compiled engines, errors.Is/As on the durability sentinels, and the atomic
# temp+fsync+rename write protocol in the stores. Also runnable as
# `go vet -vettool=$$(go build -o /tmp/kflint ./cmd/kflint && echo /tmp/kflint) ./...`.
lint:
	$(GO) run ./cmd/kflint ./...

test:
	$(GO) test ./...

# race exercises the concurrent paths (parallel interning, parallel CSR
# build, the twolayer/fusion EM stage loops, the exper singleflight caches)
# under the race detector; CI runs it on every push.
race:
	$(GO) test -race ./...

# fault runs the durability suite under the race detector: the genstore
# crash-consistency property sweep (recovery after a crash at every sampled
# I/O step is bit-identical to the uncrashed run, clean and torn-rename),
# the degradation-ladder tests, and the faultfs crash model itself.
fault:
	$(GO) test -race ./internal/genstore/ ./internal/faultfs/ ./internal/kbstore/ ./internal/kfio/

# fuzz-smoke gives each corruption-facing fuzz target a short budget — long
# enough to catch a decoder regression on mutated snapshot/journal/JSONL
# bytes, short enough for every CI push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 15s ./internal/genstore/
	$(GO) test -run '^$$' -fuzz FuzzJournalParse -fuzztime 15s ./internal/genstore/
	$(GO) test -run '^$$' -fuzz FuzzExtractionStream -fuzztime 15s ./internal/kfio/
	$(GO) test -run '^$$' -fuzz FuzzReadExtractions -fuzztime 15s ./internal/kfio/

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFusePopAccu$$|BenchmarkFuseReferencePopAccu$$|BenchmarkLargeScaleFusion$$|BenchmarkConfigSweep|BenchmarkTwoLayerFuse|BenchmarkTwoLayerScaling|BenchmarkExtractCompileGraph|BenchmarkAppendBatch' -benchtime 1x -benchmem .

# bench-json regenerates the machine-readable perf record (see BENCH_<n>.json;
# bump N per PR that moves performance): the throughput benchmarks, the
# kfserved read-path latency record under concurrent clients, and the
# web-scale sharded-fusion record (10M+ claim corpus; takes minutes — the
# feed is synthesized segment by segment and streamed through K shards).
bench-json:
	$(GO) run ./cmd/kfbench -benchjson BENCH_10.json
	$(GO) run ./cmd/kfbench -serve BENCH_10.json
	$(GO) run ./cmd/kfbench -sharded BENCH_10.json

# bench-check is the CI perf-regression gate: re-measure the fast/slow
# benchmark pairs — compiled vs reference engines, compiled-graph reuse vs
# recompile, and the append-only feed pairs (Append + warm-start re-fuse vs
# full recompile + cold fuse) — and fail if any pair's claims/s speedup
# ratio dropped more than 30% below the committed BENCH_10.json baseline
# (ratios cancel machine speed, so the gate is meaningful on any runner).
# The -prior gate additionally holds the committed baseline to the ISSUE 10
# bar: FusePopAccu and TwoLayerFuseReuse must keep >= 1.5x claims/s over
# the committed BENCH_5.json — a deterministic file-vs-file check (both
# were recorded on the same reference box), so it costs CI nothing.
# The baseline's serve-latency and sharded-fusion records are gated
# structurally (absolute numbers are machine-bound), and shard-count
# independence is re-verified live at bench scale. The fresh measurements
# land in bench-fresh.json, which CI uploads as a workflow artifact.
bench-check:
	$(GO) run ./cmd/kfbench -check BENCH_10.json -prior BENCH_5.json -checkjson bench-fresh.json

# bench-scaling mirrors the CI bench-scaling/scaling-check jobs locally: one
# kfbench -scaling cell per GOMAXPROCS value, then the speedup gate — on a
# multi-core box the 4-core cell must beat the 1-core cell by >= 1.5x on the
# gated records (TwoLayerParallel, CompileParallel). The hot paths are
# bit-identical across cells, so claims/s is the only thing that varies.
bench-scaling:
	GOMAXPROCS=1 $(GO) run ./cmd/kfbench -scaling bench-scaling-1.json
	GOMAXPROCS=2 $(GO) run ./cmd/kfbench -scaling bench-scaling-2.json
	GOMAXPROCS=4 $(GO) run ./cmd/kfbench -scaling bench-scaling-4.json
	$(GO) run ./cmd/kfbench -scalingcheck bench-scaling-1.json,bench-scaling-2.json,bench-scaling-4.json -minspeedup 1.5

# docs-check resolves every package/symbol reference in README.md and
# docs/*.md with `go doc`, failing on dangling references — the docs cannot
# silently outlive a rename.
docs-check:
	./scripts/check-docs.sh
