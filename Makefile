GO ?= go

.PHONY: verify build vet test race bench-smoke bench-json bench-check

# verify is the tier-1 gate: vet, build, full tests, and a 1-iteration
# benchmark smoke so perf-critical paths cannot silently rot.
verify: vet build test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race exercises the concurrent paths (parallel interning, parallel CSR
# build, the twolayer/fusion EM stage loops, the exper singleflight caches)
# under the race detector; CI runs it on every push.
race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFusePopAccu$$|BenchmarkFuseReferencePopAccu$$|BenchmarkLargeScaleFusion$$|BenchmarkConfigSweep|BenchmarkTwoLayerFuse' -benchtime 1x -benchmem .

# bench-json regenerates the machine-readable perf record (see BENCH_<n>.json;
# bump N per PR that moves performance).
bench-json:
	$(GO) run ./cmd/kfbench -benchjson BENCH_3.json

# bench-check is the CI perf-regression gate: re-measure the fast
# compiled/reference benchmark pairs and fail if any pair's claims/s speedup
# ratio dropped more than 30% below the committed BENCH_3.json baseline
# (ratios cancel machine speed, so the gate is meaningful on any runner).
# The fresh measurements land in bench-fresh.json, which CI uploads as a
# workflow artifact.
bench-check:
	$(GO) run ./cmd/kfbench -check BENCH_3.json -checkjson bench-fresh.json
