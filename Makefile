GO ?= go

.PHONY: verify build vet test bench-smoke bench-json

# verify is the tier-1 gate: vet, build, full tests, and a 1-iteration
# benchmark smoke so perf-critical paths cannot silently rot.
verify: vet build test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFusePopAccu$$|BenchmarkFuseReferencePopAccu$$|BenchmarkLargeScaleFusion$$|BenchmarkConfigSweep' -benchtime 1x -benchmem .

# bench-json regenerates the machine-readable perf record (see BENCH_<n>.json;
# bump N per PR that moves performance).
bench-json:
	$(GO) run ./cmd/kfbench -benchjson BENCH_2.json
