#!/usr/bin/env bash
# check-docs.sh — resolve every package/symbol reference in the prose docs
# against the code with `go doc`, so renames cannot silently strand the
# documentation. CI runs this on every push (docs job; `make docs-check`).
#
# A "reference" is any backticked token in README.md or docs/*.md that looks
# like either a package path (internal/shard, cmd/kfuse, optionally prefixed
# kfusion/) or a qualified symbol (fusion.Compile, kb.DataItem.Hash). Each
# must resolve with `go doc`. The gate fails on any dangling reference, and
# refuses to pass vacuously if extraction finds no references at all.
set -u
cd "$(dirname "$0")/.."

files=(README.md docs/*.md)
refs=$(grep -hoE '`[^` ]+`' "${files[@]}" |
	tr -d '`' |
	grep -E '^((kfusion/)?(internal|cmd)/[a-z0-9/]+|[a-z][a-z0-9]*\.[A-Z][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)?)$' |
	sort -u)

if [ -z "$refs" ]; then
	echo "check-docs: extracted no references from ${files[*]} — the gate would be a no-op" >&2
	exit 1
fi

fail=0
total=0
for ref in $refs; do
	total=$((total + 1))
	if ! go doc "$ref" >/dev/null 2>&1; then
		echo "check-docs: dangling reference: $ref" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "check-docs: FAILED (see dangling references above, $total checked)" >&2
	exit 1
fi
echo "check-docs: $total references resolve"
