package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	a := New(7).Split("pages")
	b := New(7).Split("pages")
	c := New(7).Split("sites")
	same, diff := 0, 0
	for i := 0; i < 256; i++ {
		av, bv, cv := a.Float64(), b.Float64(), c.Float64()
		if av == bv {
			same++
		}
		if av != cv {
			diff++
		}
	}
	if same != 256 {
		t.Errorf("same-label splits matched on %d/256 draws, want 256", same)
	}
	if diff < 250 {
		t.Errorf("different-label splits matched too often: only %d/256 draws differ", diff)
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a, b := New(99), New(99)
	_ = a.Split("x")
	_ = a.SplitN("y", 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("Split consumed parent randomness (draw %d)", i)
		}
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(5)
	seen := make(map[float64]bool)
	for i := int64(0); i < 100; i++ {
		v := parent.SplitN("page", i).Float64()
		if seen[v] {
			t.Fatalf("SplitN produced duplicate first draw for index %d", i)
		}
		seen[v] = true
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(2)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestClamped01Range(t *testing.T) {
	s := New(3)
	err := quick.Check(func(mean, sd float64) bool {
		m := math.Mod(math.Abs(mean), 2) - 0.5 // spread around [−0.5, 1.5]
		d := math.Mod(math.Abs(sd), 1)
		v := s.Clamped01(m, d)
		return v >= 0 && v <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(4)
	z := s.NewZipf(1.5, 1000)
	counts := make(map[int]int)
	n := 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[10] {
		t.Errorf("Zipf head not heavy: count(0)=%d < count(10)=%d", counts[0], counts[10])
	}
	if counts[0] < n/10 {
		t.Errorf("Zipf rank-0 mass too small: %d/%d", counts[0], n)
	}
}

func TestZipfClampsBadParams(t *testing.T) {
	s := New(5)
	z := s.NewZipf(0.5, 0) // exponent and n both invalid
	for i := 0; i < 10; i++ {
		if v := z.Next(); v != 0 {
			t.Fatalf("Zipf over singleton support returned %d", v)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	s := New(6)
	c := NewCategorical([]float64{1, 0, 3})
	counts := make([]int, 3)
	n := 60000
	for i := 0; i < n; i++ {
		counts[c.Sample(s)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight-3 / weight-1 sample ratio = %.2f, want ~3", ratio)
	}
}

func TestCategoricalAllZeroUniform(t *testing.T) {
	s := New(7)
	c := NewCategorical([]float64{0, 0, 0, 0})
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[c.Sample(s)]++
	}
	for i, got := range counts {
		if got < 8000 || got > 12000 {
			t.Errorf("all-zero-weight category %d sampled %d/40000, want ~10000", i, got)
		}
	}
}

func TestReservoirExactUnderCapacity(t *testing.T) {
	r := NewReservoir[int](10, New(8))
	for i := 0; i < 7; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 7 || r.Seen() != 7 {
		t.Fatalf("reservoir under capacity: len=%d seen=%d", len(r.Items()), r.Seen())
	}
	for i, v := range r.Items() {
		if v != i {
			t.Fatalf("reservoir reordered items under capacity: %v", r.Items())
		}
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 items should land in a k=10 reservoir with p≈0.1.
	hits := make([]int, 100)
	trials := 2000
	parent := New(9)
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir[int](10, parent.SplitN("trial", int64(tr)))
		for i := 0; i < 100; i++ {
			r.Add(i)
		}
		for _, v := range r.Items() {
			hits[v]++
		}
	}
	for i, h := range hits {
		p := float64(h) / float64(trials)
		if p < 0.05 || p > 0.16 {
			t.Errorf("item %d selected with frequency %.3f, want ~0.10", i, p)
		}
	}
}

func TestReservoirCapacityClamp(t *testing.T) {
	r := NewReservoir[int](0, New(10))
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 1 {
		t.Fatalf("capacity-0 reservoir holds %d items, want 1", len(r.Items()))
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(12)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal01(1, 2); v <= 0 {
			t.Fatalf("LogNormal01 returned non-positive %v", v)
		}
	}
}
