// Package randx provides deterministic pseudo-randomness utilities shared by
// the synthetic-world, web-corpus and extractor simulators.
//
// Every generator in this repository is seeded explicitly so that corpora,
// extractions and fusion results are exactly reproducible run to run. randx
// wraps math/rand with splittable seeds (derive independent child streams
// from a parent seed and a label), Zipf samplers with bounded support, and
// categorical distributions.
package randx

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It is a thin wrapper around
// *rand.Rand that adds splitting and a few distributions the simulators need.
// A Source is not safe for concurrent use; split one stream per goroutine.
type Source struct {
	rng *rand.Rand
	id  int64 // the construction seed, used to derive child streams
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), id: seed}
}

// Split derives an independent child stream identified by label. Two Sources
// with the same seed and label always produce identical streams, and streams
// for different labels are statistically independent. Splitting does not
// consume randomness from the parent.
func (s *Source) Split(label string) *Source {
	return New(s.childSeed(label))
}

// SplitN derives an independent child stream identified by label and an index,
// e.g. one stream per page or per extractor.
func (s *Source) SplitN(label string, n int64) *Source {
	h := fnv.New64a()
	writeInt64(h, s.seed())
	h.Write([]byte(label))
	writeInt64(h, n)
	return New(int64(h.Sum64()))
}

func (s *Source) childSeed(label string) int64 {
	h := fnv.New64a()
	writeInt64(h, s.seed())
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// seed returns the construction seed; child streams are derived from it so
// that splitting never consumes randomness from the parent stream.
func (s *Source) seed() int64 { return s.id }

func writeInt64(h interface{ Write([]byte) (int, error) }, v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// Float64 returns a uniform float64 in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and stddev 1.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Clamped01 returns a Gaussian sample with the given mean and stddev clamped
// into [0,1]. It is used for noisy-but-bounded quantities such as extraction
// confidences and per-page quality jitter.
func (s *Source) Clamped01(mean, stddev float64) float64 {
	v := mean + s.rng.NormFloat64()*stddev
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomly shuffles n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Zipf draws Zipf-distributed values in [0, n) with exponent exp (> 1 yields
// the heavy head / long tail skew the paper observes throughout Table 1).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf constructs a Zipf sampler over [0, n) with the given exponent.
// Exponents <= 1 are clamped to 1.01 because math/rand requires s > 1.
func (s *Source) NewZipf(exponent float64, n int) *Zipf {
	if exponent <= 1 {
		exponent = 1.01
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(s.rng, exponent, 1, uint64(n-1))}
}

// Next draws the next Zipf value.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Categorical samples indexes proportionally to a fixed weight vector.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical distribution over len(weights) indexes.
// Negative weights are treated as zero. If all weights are zero the
// distribution is uniform.
func NewCategorical(weights []float64) *Categorical {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total == 0 {
		for i := range cum {
			cum[i] = float64(i + 1)
		}
	}
	return &Categorical{cum: cum}
}

// Sample draws an index from the distribution using s.
func (c *Categorical) Sample(s *Source) int {
	if len(c.cum) == 0 {
		return 0
	}
	target := s.Float64() * c.cum[len(c.cum)-1]
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len reports the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// Reservoir maintains a uniform random sample of at most k items from a
// stream of unknown length (Vitter's algorithm R). The fusion pipeline uses
// it to cap per-reducer work at L triples, mirroring the paper's sampling.
type Reservoir[T any] struct {
	k     int
	seen  int
	items []T
	src   *Source
}

// NewReservoir creates a reservoir of capacity k fed by src.
func NewReservoir[T any](k int, src *Source) *Reservoir[T] {
	if k < 1 {
		k = 1
	}
	return &Reservoir[T]{k: k, src: src, items: make([]T, 0, min(k, 1024))}
}

// Add offers one item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.src.Intn(r.seen); j < r.k {
		r.items[j] = item
	}
}

// Items returns the current sample. The returned slice is owned by the
// reservoir; callers must not retain it across further Add calls.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen reports how many items were offered in total.
func (r *Reservoir[T]) Seen() int { return r.seen }

// LogNormal01 returns exp(N(mu, sigma)) — a convenient heavy-tailed positive
// sample for sizes such as page counts per site.
func (s *Source) LogNormal01(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.rng.NormFloat64())
}
