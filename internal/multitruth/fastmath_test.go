package multitruth

// The FastMath equivalence suite for the latent truth model: Config.FastMath
// moves the per-round hit/miss log-ratio tables and the per-claim sigmoids
// onto the mathx.Fast polynomial kernels. Same contract as the fusion and
// twolayer suites — within mathx.FastTol of the exact engine, bit-identical
// across Workers — exercised by CI's fastmath job under -race.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/mathx"
)

// randomLTMClaims builds a collision-heavy claim set: few subjects and
// values over many provenances, so items carry several candidate truths and
// the sensitivity/specificity EM actually moves.
func randomLTMClaims(seed int64, n int) []fusion.Claim {
	rng := rand.New(rand.NewSource(seed))
	var claims []fusion.Claim
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		c := cl(
			fmt.Sprintf("s%d", rng.Intn(12)),
			fmt.Sprintf("/p/%d", rng.Intn(3)),
			fmt.Sprintf("v%d", rng.Intn(5)),
			fmt.Sprintf("prov%d", rng.Intn(9)),
		)
		k := c.Prov + "|" + c.Triple.Encode()
		if seen[k] {
			continue
		}
		seen[k] = true
		claims = append(claims, c)
	}
	return claims
}

// TestFastMathMatchesExactWithinFastTol pins the iterated fast-kernel bound
// for LTM: per-call polynomial error compounds through Rounds of log-odds
// sums and sigmoid squashes, and the final independent per-triple
// probabilities must stay within mathx.FastTol of the exact engine's.
func TestFastMathMatchesExactWithinFastTol(t *testing.T) {
	for _, size := range []int{80, 600} {
		claims := randomLTMClaims(int64(size)*13+5, size)
		cfg := DefaultConfig()
		want := MustFuse(claims, cfg)
		fast := cfg
		fast.FastMath = true
		got := MustFuse(claims, fast)
		if len(got.Triples) != len(want.Triples) {
			t.Fatalf("n=%d: %d triples, want %d", size, len(got.Triples), len(want.Triples))
		}
		wantBy := want.ByTriple()
		for _, g := range got.Triples {
			w, ok := wantBy[g.Triple]
			if !ok {
				t.Fatalf("n=%d: unexpected triple %v", size, g.Triple)
			}
			if g.Provenances != w.Provenances || g.Extractors != w.Extractors {
				t.Errorf("n=%d: %v support mismatch: %+v vs %+v", size, g.Triple, g, w)
			}
			if math.Abs(g.Probability-w.Probability) > mathx.FastTol {
				t.Errorf("n=%d: %v probability %v, want %v (Δ=%g beyond FastTol)",
					size, g.Triple, g.Probability, w.Probability, g.Probability-w.Probability)
			}
		}
	}
}

// TestFastMathWorkerIndependent: FastMath results must be bit-identical for
// any Workers value — the fast kernels run inside the same fixed
// claim-index-order accumulations as the exact path.
func TestFastMathWorkerIndependent(t *testing.T) {
	claims := randomLTMClaims(99, 600)
	cfg := DefaultConfig()
	cfg.FastMath = true
	cfg.Workers = 1
	want := MustFuse(claims, cfg)
	wantBy := want.ByTriple()
	for _, workers := range []int{2, 7} {
		c := cfg
		c.Workers = workers
		got := MustFuse(claims, c)
		if len(got.Triples) != len(want.Triples) {
			t.Fatalf("workers=%d: result size changed", workers)
		}
		for _, f := range got.Triples {
			if wantBy[f.Triple] != f {
				t.Fatalf("workers=%d: %v differs: %+v vs %+v", workers, f.Triple, f, wantBy[f.Triple])
			}
		}
	}
}
