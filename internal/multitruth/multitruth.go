// Package multitruth implements the paper's §5.3 future direction: handling
// non-functional predicates with a latent truth model in the style of Zhao
// et al. (PVLDB 2012). Instead of a single-truth softmax per data item, each
// candidate triple carries an independent Bernoulli truth variable, and each
// provenance is described by its sensitivity (probability of claiming a true
// triple it has the chance to claim) and specificity (probability of NOT
// claiming a false one). The model therefore can assign high probability to
// several values of one data item — exactly what the single-truth models
// cannot do, and the cause of 65% of their false negatives (Figure 17).
//
// The model runs over the fusion package's compiled claim graph
// (fusion.Compiled): FuseCompiled consumes an existing compilation — so the
// experiment layer's one interned graph serves the single-truth methods and
// this model alike — and Fuse is the compile-then-fuse convenience.
package multitruth

import (
	"fmt"
	"math"

	"kfusion/internal/fusion"
	"kfusion/internal/mapreduce"
	"kfusion/internal/mathx"
)

// Config parameterizes the latent truth model.
type Config struct {
	// Rounds is the EM round cap.
	Rounds int
	// PriorTrue is the prior probability that a candidate triple is true.
	PriorTrue float64
	// InitSens and InitSpec initialize provenance sensitivity/specificity.
	InitSens float64
	InitSpec float64
	// Smoothing is the Beta pseudo-count used in the M-step.
	Smoothing float64
	// Workers bounds the E-step parallelism (0 = auto). It never affects
	// results.
	Workers int
	// FastMath runs the per-round likelihood-ratio tables and sigmoids on
	// the mathx.Fast polynomial kernels instead of math.Exp/math.Log.
	// Outputs stay within mathx.FastTol of the exact engine's and remain
	// bit-identical across worker counts.
	FastMath bool
}

// DefaultConfig returns the configuration used in the ablation experiments.
func DefaultConfig() Config {
	return Config{Rounds: 5, PriorTrue: 0.35, InitSens: 0.7, InitSpec: 0.9, Smoothing: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("multitruth: Rounds must be >= 1, got %d", c.Rounds)
	}
	if c.PriorTrue <= 0 || c.PriorTrue >= 1 {
		return fmt.Errorf("multitruth: PriorTrue must be in (0,1), got %v", c.PriorTrue)
	}
	if c.InitSens <= 0 || c.InitSens >= 1 || c.InitSpec <= 0 || c.InitSpec >= 1 {
		return fmt.Errorf("multitruth: InitSens/InitSpec must be in (0,1)")
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("multitruth: Smoothing must be >= 0, got %v", c.Smoothing)
	}
	return nil
}

// Fuse runs the latent truth model over claims and returns independent
// per-triple probabilities (they do NOT sum to 1 within a data item). It is
// the compile-then-fuse convenience around FuseCompiled.
func Fuse(claims []fusion.Claim, cfg Config) (*fusion.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := fusion.CompileWorkers(claims, cfg.Workers, 0)
	if err != nil {
		return nil, err
	}
	return FuseCompiled(c, cfg)
}

// MustFuse is Fuse for statically-valid configurations.
func MustFuse(claims []fusion.Claim, cfg Config) *fusion.Result {
	r, err := Fuse(claims, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// FuseCompiled runs the latent truth model over an already-compiled claim
// graph, sharing the compilation with any other fusion runs on the same
// claim set. Results are deterministic and independent of cfg.Workers: every
// log-odds and pseudo-count accumulation runs in the graph's fixed
// claim-index order.
func FuseCompiled(c *fusion.Compiled, cfg Config) (*fusion.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nItems, nTriples, nProvs := c.NumItems(), c.NumTriples(), c.NumProvenances()

	// Distinct claimer provenances per triple and distinct seer provenances
	// per item, both in claim-index order of first use, deduplicated with an
	// epoch-stamped scratch over prov IDs — O(claims), never O(claims ×
	// provenances) even on hot items.
	seen := make([]int32, nProvs)
	epoch := int32(0)
	distinct := func(claimIDs []int32) []int32 {
		epoch++
		provs := make([]int32, 0, min(len(claimIDs), 8))
		for _, cl := range claimIDs {
			if p := c.ClaimProv(cl); seen[p] != epoch {
				seen[p] = epoch
				provs = append(provs, p)
			}
		}
		return provs
	}
	tripleProvs := make([][]int32, nTriples)
	for t := 0; t < nTriples; t++ {
		tripleProvs[t] = distinct(c.TripleClaims(t))
	}
	itemProvs := make([][]int32, nItems)
	for i := 0; i < nItems; i++ {
		itemProvs[i] = distinct(c.ItemClaims(i))
	}

	sens := make([]float64, nProvs)
	spec := make([]float64, nProvs)
	for p := range sens {
		sens[p] = cfg.InitSens
		spec[p] = cfg.InitSpec
	}
	probs := make([]float64, nTriples)
	logPrior := math.Log(cfg.PriorTrue) - math.Log(1-cfg.PriorTrue)

	// E-step: per-triple posterior under the current provenance parameters.
	// Items are independent and each triple belongs to exactly one item, so
	// the item loop parallelizes without races; per-triple log-odds sum in
	// seer order, which is fixed by the graph. "Did this seer claim this
	// triple" is answered by a per-worker scratch stamped with the (globally
	// unique) triple ID — O(claimers + seers) per triple. The per-provenance
	// claim/no-claim likelihood ratios are batched into per-round tables
	// (one kernel pass over staging buffers) instead of four transcendentals
	// per seer incidence — the same expressions, evaluated once each.
	kern := mathx.ForConfig(cfg.FastMath)
	sig := mathx.Sigmoid
	if cfg.FastMath {
		sig = mathx.FastSigmoid
	}
	hitLR := make([]float64, nProvs)  // log(sens) - log(1-spec)
	missLR := make([]float64, nProvs) // log(1-sens) - log(spec)
	oneMinusSens := make([]float64, nProvs)
	oneMinusSpec := make([]float64, nProvs)
	eStep := func() {
		for p := range sens {
			oneMinusSens[p] = 1 - sens[p]
			oneMinusSpec[p] = 1 - spec[p]
		}
		kern.LogRatioSlice(hitLR, sens, oneMinusSpec)
		kern.LogRatioSlice(missLR, oneMinusSens, spec)
		parallelItems(nItems, cfg.Workers, func(lo, hi int) {
			claimed := make([]int32, nProvs) // stamp: triple ID + 1
			for i := lo; i < hi; i++ {
				for _, t := range c.ItemTriples(i) {
					for _, p := range tripleProvs[t] {
						claimed[p] = t + 1
					}
					logOdds := logPrior
					for _, p := range itemProvs[i] {
						if claimed[p] == t+1 {
							logOdds += hitLR[p]
						} else {
							logOdds += missLR[p]
						}
					}
					probs[t] = sig(logOdds)
				}
			}
		})
	}

	// M-step: re-estimate sensitivity/specificity from the posteriors, with
	// Beta smoothing anchored at the INITIAL values: provenances with little
	// evidence keep their priors instead of collapsing toward 0.5 and losing
	// all discrimination. The specificity prior is much stronger (as in Zhao
	// et al.): the universe of false triples is vast and sources rarely
	// claim them, so the few observed false candidates must not drag spec
	// down.
	mStep := func() float64 {
		claimedTrue := make([]float64, nProvs)
		sawTrue := make([]float64, nProvs)
		unclaimedFalse := make([]float64, nProvs)
		sawFalse := make([]float64, nProvs)
		claimed := make([]int32, nProvs) // stamp: triple ID + 1
		for i := 0; i < nItems; i++ {
			for _, t := range c.ItemTriples(i) {
				for _, p := range tripleProvs[t] {
					claimed[p] = t + 1
				}
				pt := probs[t]
				for _, p := range itemProvs[i] {
					sawTrue[p] += pt
					sawFalse[p] += 1 - pt
					if claimed[p] == t+1 {
						claimedTrue[p] += pt
					} else {
						unclaimedFalse[p] += 1 - pt
					}
				}
			}
		}
		sSens := cfg.Smoothing * 2
		sSpec := cfg.Smoothing * 10
		maxDelta := 0.0
		for p := 0; p < nProvs; p++ {
			newSens := clamp01((claimedTrue[p] + sSens*cfg.InitSens) / (sawTrue[p] + sSens))
			newSpec := clamp01((unclaimedFalse[p] + sSpec*cfg.InitSpec) / (sawFalse[p] + sSpec))
			if d := math.Abs(newSens - sens[p]); d > maxDelta {
				maxDelta = d
			}
			if d := math.Abs(newSpec - spec[p]); d > maxDelta {
				maxDelta = d
			}
			sens[p], spec[p] = newSens, newSpec
		}
		return maxDelta
	}

	rounds := 0
	mapreduce.Iterate(struct{}{}, cfg.Rounds, func(_ struct{}, r int) (struct{}, bool) {
		eStep()
		rounds++
		return struct{}{}, mStep() < 1e-4
	})
	eStep() // final probabilities under converged parameters

	res := &fusion.Result{Rounds: rounds, ProvAccuracy: make(map[string]float64, nProvs)}
	for p := 0; p < nProvs; p++ {
		res.ProvAccuracy[c.ProvKey(p)] = sens[p] // report sensitivity as the headline quality
	}
	res.Triples = make([]fusion.FusedTriple, 0, nTriples)
	for i := 0; i < nItems; i++ {
		itemClaims := len(c.ItemClaims(i))
		for _, t := range c.ItemTriples(i) {
			res.Triples = append(res.Triples, fusion.FusedTriple{
				Triple:          c.Triple(int(t)),
				Probability:     probs[t],
				Predicted:       true,
				Provenances:     len(tripleProvs[t]),
				ItemProvenances: itemClaims,
				// As in the seed model, "extractors" are the distinct
				// claiming provenances — the LTM has no extractor axis.
				Extractors: len(tripleProvs[t]),
			})
		}
	}
	return res, nil
}

// MustFuseCompiled is FuseCompiled for statically-valid configurations.
func MustFuseCompiled(c *fusion.Compiled, cfg Config) *fusion.Result {
	r, err := FuseCompiled(c, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// parallelItems splits [0, n) across workers on the fusion package's shared
// range splitter; f only writes state owned by its item range, so shard
// boundaries never influence results.
func parallelItems(n, workers int, f func(lo, hi int)) {
	fusion.ParallelRange(n, workers, func(_, lo, hi int) { f(lo, hi) })
}

func clamp01(v float64) float64 {
	const lo, hi = 0.01, 0.99
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
