// Package multitruth implements the paper's §5.3 future direction: handling
// non-functional predicates with a latent truth model in the style of Zhao
// et al. (PVLDB 2012). Instead of a single-truth softmax per data item, each
// candidate triple carries an independent Bernoulli truth variable, and each
// provenance is described by its sensitivity (probability of claiming a true
// triple it has the chance to claim) and specificity (probability of NOT
// claiming a false one). The model therefore can assign high probability to
// several values of one data item — exactly what the single-truth models
// cannot do, and the cause of 65% of their false negatives (Figure 17).
package multitruth

import (
	"fmt"
	"math"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
)

// Config parameterizes the latent truth model.
type Config struct {
	// Rounds is the EM round cap.
	Rounds int
	// PriorTrue is the prior probability that a candidate triple is true.
	PriorTrue float64
	// InitSens and InitSpec initialize provenance sensitivity/specificity.
	InitSens float64
	InitSpec float64
	// Smoothing is the Beta pseudo-count used in the M-step.
	Smoothing float64
	// Workers configures the MapReduce substrate (0 = auto).
	Workers int
}

// DefaultConfig returns the configuration used in the ablation experiments.
func DefaultConfig() Config {
	return Config{Rounds: 5, PriorTrue: 0.35, InitSens: 0.7, InitSpec: 0.9, Smoothing: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("multitruth: Rounds must be >= 1, got %d", c.Rounds)
	}
	if c.PriorTrue <= 0 || c.PriorTrue >= 1 {
		return fmt.Errorf("multitruth: PriorTrue must be in (0,1), got %v", c.PriorTrue)
	}
	if c.InitSens <= 0 || c.InitSens >= 1 || c.InitSpec <= 0 || c.InitSpec >= 1 {
		return fmt.Errorf("multitruth: InitSens/InitSpec must be in (0,1)")
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("multitruth: Smoothing must be >= 0, got %v", c.Smoothing)
	}
	return nil
}

type provParams struct {
	sens float64
	spec float64
}

// Fuse runs the latent truth model over claims and returns independent
// per-triple probabilities (they do NOT sum to 1 within a data item).
func Fuse(claims []fusion.Claim, cfg Config) (*fusion.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Index: triples, items, and which provenances saw which items.
	type tripleInfo struct {
		triple   kb.Triple
		claimers []string
	}
	tripleIdx := map[kb.Triple]int{}
	var triples []tripleInfo
	itemProvs := map[kb.DataItem]map[string]bool{}
	itemTriples := map[kb.DataItem][]int{}
	provs := map[string]*provParams{}
	type claimKey struct {
		prov   string
		triple kb.Triple
	}
	seenClaim := map[claimKey]bool{}

	for _, c := range claims {
		item := c.Triple.Item()
		ti, ok := tripleIdx[c.Triple]
		if !ok {
			ti = len(triples)
			tripleIdx[c.Triple] = ti
			triples = append(triples, tripleInfo{triple: c.Triple})
			itemTriples[item] = append(itemTriples[item], ti)
		}
		key := claimKey{prov: c.Prov, triple: c.Triple}
		if !seenClaim[key] {
			seenClaim[key] = true
			triples[ti].claimers = append(triples[ti].claimers, c.Prov)
		}
		if itemProvs[item] == nil {
			itemProvs[item] = map[string]bool{}
		}
		itemProvs[item][c.Prov] = true
		if provs[c.Prov] == nil {
			provs[c.Prov] = &provParams{sens: cfg.InitSens, spec: cfg.InitSpec}
		}
	}

	probs := make([]float64, len(triples))
	logPrior := math.Log(cfg.PriorTrue) - math.Log(1-cfg.PriorTrue)

	items := make([]kb.DataItem, 0, len(itemTriples))
	for it := range itemTriples {
		items = append(items, it)
	}

	eStep := func() {
		job := mapreduce.Job[kb.DataItem, int, float64, struct{}]{
			Name: "ltm-estep",
			Map: func(item kb.DataItem, emit func(int, float64)) {
				seers := itemProvs[item]
				for _, ti := range itemTriples[item] {
					claimed := map[string]bool{}
					for _, p := range triples[ti].claimers {
						claimed[p] = true
					}
					logOdds := logPrior
					for p := range seers {
						pp := provs[p]
						if claimed[p] {
							logOdds += math.Log(pp.sens) - math.Log(1-pp.spec)
						} else {
							logOdds += math.Log(1-pp.sens) - math.Log(pp.spec)
						}
					}
					emit(ti, sigmoid(logOdds))
				}
			},
			Reduce: func(ti int, vs []float64, emit func(struct{})) {
				probs[ti] = vs[0]
			},
			KeyHash: func(ti int) uint64 { return uint64(ti)*0x9e3779b97f4a7c15 + 1 },
			Workers: cfg.Workers,
		}
		mapreduce.MustRun(job, items)
	}

	mStep := func() float64 {
		type acc struct {
			claimedTrue, sawTrue     float64
			unclaimedFalse, sawFalse float64
		}
		accs := map[string]*acc{}
		for p := range provs {
			accs[p] = &acc{}
		}
		for it, seers := range itemProvs {
			for _, ti := range itemTriples[it] {
				claimed := map[string]bool{}
				for _, p := range triples[ti].claimers {
					claimed[p] = true
				}
				pt := probs[ti]
				for p := range seers {
					a := accs[p]
					a.sawTrue += pt
					a.sawFalse += 1 - pt
					if claimed[p] {
						a.claimedTrue += pt
					} else {
						a.unclaimedFalse += 1 - pt
					}
				}
			}
		}
		// Beta smoothing anchored at the INITIAL sensitivity/specificity:
		// provenances with little evidence keep their priors instead of
		// collapsing toward 0.5 and losing all discrimination. The
		// specificity prior is much stronger (as in Zhao et al.): the
		// universe of false triples is vast and sources rarely claim them,
		// so the few observed false candidates must not drag spec down.
		sSens := cfg.Smoothing * 2
		sSpec := cfg.Smoothing * 10
		maxDelta := 0.0
		for p, a := range accs {
			pp := provs[p]
			newSens := clamp01((a.claimedTrue + sSens*cfg.InitSens) / (a.sawTrue + sSens))
			newSpec := clamp01((a.unclaimedFalse + sSpec*cfg.InitSpec) / (a.sawFalse + sSpec))
			if d := math.Abs(newSens - pp.sens); d > maxDelta {
				maxDelta = d
			}
			if d := math.Abs(newSpec - pp.spec); d > maxDelta {
				maxDelta = d
			}
			pp.sens, pp.spec = newSens, newSpec
		}
		return maxDelta
	}

	rounds := 0
	mapreduce.Iterate(struct{}{}, cfg.Rounds, func(_ struct{}, r int) (struct{}, bool) {
		eStep()
		rounds++
		return struct{}{}, mStep() < 1e-4
	})
	eStep() // final probabilities under converged parameters

	res := &fusion.Result{Rounds: rounds, ProvAccuracy: map[string]float64{}}
	for p, pp := range provs {
		res.ProvAccuracy[p] = pp.sens // report sensitivity as the headline quality
	}
	itemCounts := map[kb.DataItem]int{}
	for _, c := range claims {
		itemCounts[c.Triple.Item()]++
	}
	for ti := range triples {
		t := triples[ti]
		exts := map[string]bool{}
		for _, p := range t.claimers {
			exts[p] = true
		}
		res.Triples = append(res.Triples, fusion.FusedTriple{
			Triple:          t.triple,
			Probability:     probs[ti],
			Predicted:       true,
			Provenances:     len(t.claimers),
			ItemProvenances: itemCounts[t.triple.Item()],
			Extractors:      len(exts),
		})
	}
	return res, nil
}

// MustFuse is Fuse for statically-valid configurations.
func MustFuse(claims []fusion.Claim, cfg Config) *fusion.Result {
	r, err := Fuse(claims, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

func clamp01(v float64) float64 {
	const lo, hi = 0.01, 0.99
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
