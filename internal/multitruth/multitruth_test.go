package multitruth

import (
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func cl(subj, pred, obj, prov string) fusion.Claim {
	return fusion.Claim{
		Triple: kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: kb.StringObject(obj)},
		Prov:   prov,
	}
}

func probOf(t *testing.T, res *fusion.Result, subj, obj string) float64 {
	t.Helper()
	for _, f := range res.Triples {
		if f.Triple.Subject == kb.EntityID(subj) && f.Triple.Object.Str == obj {
			return f.Probability
		}
	}
	t.Fatalf("triple (%s, %s) missing", subj, obj)
	return 0
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Rounds = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted Rounds=0")
	}
	bad = DefaultConfig()
	bad.PriorTrue = 1
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted PriorTrue=1")
	}
	bad = DefaultConfig()
	bad.InitSens = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted InitSens=0")
	}
	bad = DefaultConfig()
	bad.Smoothing = -1
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted Smoothing=-1")
	}
}

func TestMultipleTruthsBothHigh(t *testing.T) {
	// Two true children claimed by disjoint-but-reliable provenance sets:
	// single-truth fusion must split the mass; the latent truth model can
	// believe both.
	var claims []fusion.Claim
	for _, p := range []string{"a1", "a2", "a3"} {
		claims = append(claims, cl("person", "/people/person/children", "Alice", p))
	}
	for _, p := range []string{"b1", "b2", "b3"} {
		claims = append(claims, cl("person", "/people/person/children", "Bob", p))
	}
	// Anchor all provenances as reliable on uncontested items.
	for _, p := range []string{"a1", "a2", "a3", "b1", "b2", "b3"} {
		claims = append(claims, cl("anchor-"+p, "/x/p", "v", p))
	}

	ltm := MustFuse(claims, DefaultConfig())
	alice, bob := probOf(t, ltm, "person", "Alice"), probOf(t, ltm, "person", "Bob")
	if alice < 0.6 || bob < 0.6 {
		t.Errorf("LTM: both truths should score high: Alice=%.3f Bob=%.3f", alice, bob)
	}

	single := fusion.MustFuse(claims, fusion.PopAccuConfig())
	sAlice, sBob := probOf(t, single, "person", "Alice"), probOf(t, single, "person", "Bob")
	if sAlice+sBob > 1.01 {
		t.Fatalf("single-truth probabilities exceed 1: %.3f + %.3f", sAlice, sBob)
	}
	if alice+bob <= sAlice+sBob {
		t.Errorf("LTM total mass %.3f not above single-truth %.3f", alice+bob, sAlice+sBob)
	}
}

func TestUnreliableMinorityRejected(t *testing.T) {
	var claims []fusion.Claim
	// Reliable provenances claim v on many items; "junk" claims unique
	// garbage everywhere, including on the contested item.
	for i := 0; i < 5; i++ {
		item := string(rune('a' + i))
		claims = append(claims,
			cl(item, "/x/p", "v-"+item, "g1"),
			cl(item, "/x/p", "v-"+item, "g2"),
			cl(item, "/x/p", "junk-"+item, "junk"),
		)
	}
	claims = append(claims,
		cl("target", "/x/p", "right", "g1"),
		cl("target", "/x/p", "right", "g2"),
		cl("target", "/x/p", "wrong", "junk"),
	)
	res := MustFuse(claims, DefaultConfig())
	if pr, pw := probOf(t, res, "target", "right"), probOf(t, res, "target", "wrong"); pr <= pw {
		t.Errorf("LTM failed to prefer reliable sources: right=%.3f wrong=%.3f", pr, pw)
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	claims := []fusion.Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "a", "p3"),
		cl("t", "p", "c", "p1"),
	}
	res := MustFuse(claims, DefaultConfig())
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %d, want 3 (s-a, s-b, t-c)", len(res.Triples))
	}
	for _, f := range res.Triples {
		if !f.Predicted || f.Probability < 0 || f.Probability > 1 {
			t.Errorf("bad probability: %+v", f)
		}
	}
}

// TestFuseCompiledSharesGraph pins that the latent truth model over a
// shared, already-used compilation matches the compile-then-fuse path
// exactly — the LTM leaks no state into the graph either.
func TestFuseCompiledSharesGraph(t *testing.T) {
	claims := []fusion.Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "a", "p3"),
		cl("t", "p", "c", "p1"),
	}
	compiled := fusion.MustCompile(claims)
	compiled.MustFuse(fusion.PopAccuConfig()) // share with a single-truth run first
	a := MustFuseCompiled(compiled, DefaultConfig())
	b := MustFuse(claims, DefaultConfig())
	am, bm := a.ByTriple(), b.ByTriple()
	if len(am) != len(bm) {
		t.Fatalf("%d triples via shared graph, want %d", len(am), len(bm))
	}
	for tr, fa := range am {
		if fa != bm[tr] {
			t.Fatalf("shared-graph result differs at %v: %+v vs %+v", tr, fa, bm[tr])
		}
	}
}

func TestDeterministic(t *testing.T) {
	claims := []fusion.Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "a", "p3"),
	}
	a, b := MustFuse(claims, DefaultConfig()), MustFuse(claims, DefaultConfig())
	am, bm := a.ByTriple(), b.ByTriple()
	for tr, fa := range am {
		if fa != bm[tr] {
			t.Fatalf("nondeterministic: %v", tr)
		}
	}
}

func TestSensitivityLearning(t *testing.T) {
	var claims []fusion.Claim
	// "thorough" claims every value the crowd supports; "lazy" claims few.
	for i := 0; i < 6; i++ {
		item := string(rune('a' + i))
		claims = append(claims,
			cl(item, "/x/p", "v", "thorough"),
			cl(item, "/x/p", "v", "w1"),
			cl(item, "/x/p", "v", "w2"),
		)
	}
	claims = append(claims, cl("a", "/x/p", "v2", "lazy")) // lone dissent
	res := MustFuse(claims, DefaultConfig())
	if res.ProvAccuracy["thorough"] <= res.ProvAccuracy["lazy"] {
		t.Errorf("sensitivity(thorough)=%.3f <= sensitivity(lazy)=%.3f",
			res.ProvAccuracy["thorough"], res.ProvAccuracy["lazy"])
	}
}
