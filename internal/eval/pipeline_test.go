package eval

import (
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// pipeline runs the full generate → crawl → extract flow once per test
// binary; fusion configs vary per test.
type pipelineData struct {
	w    *world.World
	snap *world.Snapshot
	gold *GoldStandard
	xs   []extract.Extraction
}

var pipeCache *pipelineData

func pipeline(t testing.TB) *pipelineData {
	t.Helper()
	if pipeCache != nil {
		return pipeCache
	}
	w := world.MustGenerate(world.DefaultConfig(60))
	corpus := web.MustGenerate(w, web.DefaultConfig(61))
	suite := extract.NewSuite(w, 62)
	pipeCache = &pipelineData{
		w:    w,
		snap: world.BuildFreebase(w),
		xs:   suite.Run(w, corpus),
	}
	pipeCache.gold = NewGoldStandard(pipeCache.snap)
	return pipeCache
}

func TestEndToEndBasicModels(t *testing.T) {
	p := pipeline(t)
	reports := map[string]Report{}
	for name, cfg := range map[string]fusion.Config{
		"VOTE":    fusion.VoteConfig(),
		"ACCU":    fusion.AccuConfig(),
		"POPACCU": fusion.PopAccuConfig(),
	} {
		claims := fusion.Claims(p.xs, cfg.Granularity)
		res := fusion.MustFuse(claims, cfg)
		rep := Evaluate(name, res, p.gold)
		reports[name] = rep
		t.Logf("%-8s Dev=%.4f WDev=%.4f AUC-PR=%.4f N=%d", name, rep.Dev, rep.WDev, rep.AUCPR, rep.N)
		if rep.N < 500 {
			t.Fatalf("%s: too few labeled predictions: %d", name, rep.N)
		}
		if rep.AUCPR <= 0.2 {
			t.Errorf("%s: AUC-PR %.3f implausibly low", name, rep.AUCPR)
		}
	}
	// Figure 9's qualitative findings. The WDev gap between POPACCU and
	// VOTE is small at sub-paper scale and flips sign across seeds, so the
	// robust assertions are: POPACCU stays within noise of VOTE on
	// calibration while clearly beating it on ranking (AUC-PR), and ACCU
	// beats VOTE on AUC-PR as in the paper's table.
	if reports["POPACCU"].WDev > reports["VOTE"].WDev+0.02 {
		t.Errorf("POPACCU WDev %.4f far above VOTE's %.4f",
			reports["POPACCU"].WDev, reports["VOTE"].WDev)
	}
	if reports["POPACCU"].AUCPR <= reports["VOTE"].AUCPR {
		t.Errorf("POPACCU AUC-PR %.4f not above VOTE's %.4f",
			reports["POPACCU"].AUCPR, reports["VOTE"].AUCPR)
	}
	if reports["ACCU"].AUCPR <= reports["VOTE"].AUCPR {
		t.Errorf("ACCU AUC-PR %.4f not above VOTE's %.4f",
			reports["ACCU"].AUCPR, reports["VOTE"].AUCPR)
	}
	// And the Bayesian models should be informative: AUC-PR above the
	// label base rate by a clear margin.
	preds, _ := Predictions(mustFuse(p, fusion.PopAccuConfig()), p.gold)
	base := 0.0
	for _, pr := range preds {
		if pr.Label {
			base++
		}
	}
	base /= float64(len(preds))
	if reports["POPACCU"].AUCPR < base+0.1 {
		t.Errorf("POPACCU AUC-PR %.3f barely above base rate %.3f", reports["POPACCU"].AUCPR, base)
	}
}

func mustFuse(p *pipelineData, cfg fusion.Config) *fusion.Result {
	return fusion.MustFuse(fusion.Claims(p.xs, cfg.Granularity), cfg)
}

func TestEndToEndRefinementsImproveCalibration(t *testing.T) {
	p := pipeline(t)
	baseRep := Evaluate("POPACCU", mustFuse(p, fusion.PopAccuConfig()), p.gold)
	plusRep := Evaluate("POPACCU+", mustFuse(p, fusion.PopAccuPlusConfig(p.gold.Labeler())), p.gold)
	t.Logf("POPACCU  Dev=%.4f WDev=%.4f AUC=%.4f", baseRep.Dev, baseRep.WDev, baseRep.AUCPR)
	t.Logf("POPACCU+ Dev=%.4f WDev=%.4f AUC=%.4f", plusRep.Dev, plusRep.WDev, plusRep.AUCPR)
	if plusRep.WDev >= baseRep.WDev {
		t.Errorf("POPACCU+ WDev %.4f did not improve on POPACCU %.4f (§4.3.4)", plusRep.WDev, baseRep.WDev)
	}
	if plusRep.AUCPR <= baseRep.AUCPR {
		t.Errorf("POPACCU+ AUC-PR %.4f did not improve on POPACCU %.4f", plusRep.AUCPR, baseRep.AUCPR)
	}
}

func TestEndToEndErrorAnalysis(t *testing.T) {
	p := pipeline(t)
	// The unsupervised refined system keeps enough residual errors to
	// categorize (POPACCU+ with full gold labels is nearly perfect at this
	// scale); wider thresholds mirror the paper's "high/low confidence"
	// sampling.
	res := mustFuse(p, fusion.PopAccuPlusUnsupConfig())
	ea := AnalyzeErrors(p.w, p.snap, p.gold, res, p.xs, 0.8, 0.2)
	t.Logf("\n%s", ea)
	if ea.FPTotal == 0 {
		t.Fatal("no false positives analyzed")
	}
	if ea.FNTotal == 0 {
		t.Fatal("no false negatives analyzed")
	}
	// The paper's headline: a large share of "false positives" are LCWA
	// artifacts, not real mistakes (10 of 20 in Figure 17).
	lcwa := ea.FP[FPClosedWorld] + ea.FP[FPSpecificValue] + ea.FP[FPGeneralValue] + ea.FP[FPFreebaseWrong]
	if lcwa == 0 {
		t.Error("no LCWA-artifact false positives found")
	}
	if ea.FP[FPExtractionError] == 0 {
		t.Error("no extraction-error false positives found")
	}
	// And most false negatives trace to the single-truth assumption or
	// value hierarchies.
	if ea.FN[FNMultipleTruths]+ea.FN[FNSpecificGeneral] == 0 {
		t.Error("no single-truth/hierarchy false negatives found")
	}
}

func TestEndToEndKappa(t *testing.T) {
	p := pipeline(t)
	suite := extract.NewSuite(p.w, 62)
	pairs := KappaMatrix(p.xs, func(a, b string) bool {
		return suite.ContentTypeOf(a) == suite.ContentTypeOf(b)
	})
	if len(pairs) != 66 {
		t.Fatalf("pair count = %d, want 66 (12 choose 2)", len(pairs))
	}
	neg := 0
	for _, pr := range pairs {
		if pr.Kappa < -1 || pr.Kappa > 1 {
			t.Fatalf("κ out of range: %+v", pr)
		}
		if pr.Kappa < -0.001 {
			neg++
		}
	}
	// Figure 19: a substantial share of extractor pairs are anti-correlated.
	if neg < 10 {
		t.Errorf("only %d/66 anti-correlated pairs; Figure 19 reports ~40%%", neg)
	}
}

func TestPredictionsSkipsUnpredictedAndUnlabeled(t *testing.T) {
	p := pipeline(t)
	cfg := fusion.PopAccuConfig()
	cfg.FilterByCoverage = true
	res := mustFuse(p, cfg)
	preds, unlabeled := Predictions(res, p.gold)
	if unlabeled == 0 {
		t.Error("expected some unlabeled predictions under LCWA")
	}
	if res.Unpredicted == 0 {
		t.Error("expected some unpredicted triples under coverage filtering")
	}
	if len(preds)+unlabeled+res.Unpredicted != len(res.Triples) {
		t.Errorf("prediction partition mismatch: %d + %d + %d != %d",
			len(preds), unlabeled, res.Unpredicted, len(res.Triples))
	}
}
