package eval

import (
	"kfusion/internal/kb"
)

// SoftGold implements the paper's §5.7 future direction: relaxing the local
// closed-world assumption by attaching a confidence to each negative label.
// "One possible solution is to associate a confidence with each ground truth
// in the gold standard; the confidence can be associated with the
// functionality of the predicate."
//
// Positive labels (triple present in the trusted KB) keep confidence 1.
// Negative labels (item known, value absent) get confidence 1/degree(p):
// for a functional predicate the KB's single value really does refute other
// values; for a highly multi-valued predicate the absent value may simply be
// missing, so the negative evidence is weak.
type SoftGold struct {
	gold *GoldStandard
	// degree maps predicates to their (expected) number of true values.
	degree func(kb.PredicateID) float64
}

// NewSoftGold wraps a gold standard with a per-predicate functionality
// degree (e.g. funcdegree.Degrees.Degree, or the schema's cardinality).
func NewSoftGold(gold *GoldStandard, degree func(kb.PredicateID) float64) *SoftGold {
	return &SoftGold{gold: gold, degree: degree}
}

// Label returns the LCWA label, its confidence in [0,1], and whether the
// triple is labeled at all.
func (s *SoftGold) Label(t kb.Triple) (label bool, confidence float64, ok bool) {
	label, ok = s.gold.Label(t)
	if !ok {
		return false, 0, false
	}
	if label {
		return true, 1, true
	}
	d := s.degree(t.Predicate)
	if d < 1 {
		d = 1
	}
	return false, 1 / d, true
}

// WeightedPrediction pairs a prediction with a label confidence.
type WeightedPrediction struct {
	Prob       float64
	Label      bool
	Confidence float64
}

// WeightedPredictions labels a fused result under the soft gold standard.
func WeightedPredictions(triples []kb.Triple, probs []float64, s *SoftGold) []WeightedPrediction {
	out := make([]WeightedPrediction, 0, len(triples))
	for i, t := range triples {
		label, conf, ok := s.Label(t)
		if !ok {
			continue
		}
		out = append(out, WeightedPrediction{Prob: probs[i], Label: label, Confidence: conf})
	}
	return out
}

// WeightedDeviation computes the confidence-weighted calibration loss: each
// prediction's squared error is weighted by its label confidence, so
// conflicts with uncertain negatives (absent values of multi-valued
// predicates) incur a lower penalty — the paper's "lower penalty for
// conflicts with uncertain ground truths".
func WeightedDeviation(preds []WeightedPrediction, buckets int) float64 {
	if buckets < 1 {
		buckets = 1
	}
	type agg struct {
		wSum, pSum, realSum float64
	}
	bs := make([]agg, buckets+1)
	idxOf := func(p float64) int {
		if p >= 1 {
			return buckets
		}
		i := int(p * float64(buckets))
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		return i
	}
	for _, p := range preds {
		b := &bs[idxOf(p.Prob)]
		b.wSum += p.Confidence
		b.pSum += p.Confidence * p.Prob
		y := 0.0
		if p.Label {
			y = 1
		}
		b.realSum += p.Confidence * y
	}
	num, den := 0.0, 0.0
	for _, b := range bs {
		if b.wSum == 0 {
			continue
		}
		d := b.pSum/b.wSum - b.realSum/b.wSum
		num += b.wSum * d * d
		den += b.wSum
	}
	if den == 0 {
		return 0
	}
	return num / den
}
