// Package eval implements the paper's evaluation machinery: the LCWA gold
// standard built from the Freebase snapshot (§3.2.1), calibration curves
// with deviation and weighted deviation, PR curves with AUC-PR (§4.2), the
// kappa measure over extractor pairs (Eq. 1), and a mechanical version of
// §4.4's error analysis that attributes false positives and false negatives
// to the paper's categories using the simulator's ground truth.
package eval

import (
	"kfusion/internal/kb"
	"kfusion/internal/world"
)

// GoldStandard labels triples under the Local Closed-World Assumption: a
// triple (s,p,o) is true if the trusted KB holds it, false if the KB knows
// the data item (s,p) but not o, and unlabeled otherwise.
type GoldStandard struct {
	snap *world.Snapshot
}

// NewGoldStandard wraps a Freebase snapshot.
func NewGoldStandard(snap *world.Snapshot) *GoldStandard {
	return &GoldStandard{snap: snap}
}

// Label returns (label, ok): ok is false when LCWA abstains.
func (g *GoldStandard) Label(t kb.Triple) (bool, bool) {
	if g.snap.Has(t) {
		return true, true
	}
	if g.snap.HasItem(t.Item()) {
		return false, true
	}
	return false, false
}

// Labeler returns the labeling function in the shape the fusion layer
// consumes (§4.3.3's semi-supervised initialization).
func (g *GoldStandard) Labeler() func(kb.Triple) (bool, bool) {
	return g.Label
}

// TrueObjects returns the gold objects for an item (empty when unknown).
func (g *GoldStandard) TrueObjects(d kb.DataItem) []kb.Object {
	return g.snap.Store.Objects(d)
}

// HasItem reports whether the gold standard knows the item.
func (g *GoldStandard) HasItem(d kb.DataItem) bool { return g.snap.HasItem(d) }

// Coverage reports, over the given triples, how many are labeled and how
// many of the labeled ones are true — the paper's "650M (40%) have gold
// standard labels, of which 200M are labeled as correct".
func (g *GoldStandard) Coverage(triples []kb.Triple) (labeled, trueN int) {
	for _, t := range triples {
		if label, ok := g.Label(t); ok {
			labeled++
			if label {
				trueN++
			}
		}
	}
	return labeled, trueN
}
