package eval

import (
	"kfusion/internal/fusion"
)

// Predictions pairs a fusion result with gold labels, skipping unlabeled and
// unpredicted triples. The second result is the number of predicted triples
// the gold standard abstained on.
func Predictions(res *fusion.Result, gold *GoldStandard) (preds []Prediction, unlabeled int) {
	for _, f := range res.Triples {
		if !f.Predicted {
			continue
		}
		label, ok := gold.Label(f.Triple)
		if !ok {
			unlabeled++
			continue
		}
		preds = append(preds, Prediction{Prob: f.Probability, Label: label})
	}
	return preds, unlabeled
}

// Report is the (Dev, WDev, AUC-PR) triple the paper tabulates for every
// model variant.
type Report struct {
	Name      string
	Dev       float64
	WDev      float64
	AUCPR     float64
	N         int
	Unlabeled int
	Curve     CalibrationCurve
}

// Evaluate computes the paper's standard metric set over a fusion result.
func Evaluate(name string, res *fusion.Result, gold *GoldStandard) Report {
	preds, unlabeled := Predictions(res, gold)
	curve := Calibration(preds, 20)
	return Report{
		Name:      name,
		Dev:       curve.Deviation(),
		WDev:      curve.WeightedDeviation(),
		AUCPR:     AUCPR(preds),
		N:         len(preds),
		Unlabeled: unlabeled,
		Curve:     curve,
	}
}
