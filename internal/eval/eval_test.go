package eval

import (
	"math"
	"testing"
	"testing/quick"

	"kfusion/internal/extract"
	"kfusion/internal/kb"
	"kfusion/internal/world"
)

func TestGoldStandardLCWA(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(50))
	snap := world.BuildFreebase(w)
	gold := NewGoldStandard(snap)

	// Every snapshot triple labels true.
	for _, tr := range snap.Store.Triples()[:100] {
		if label, ok := gold.Label(tr); !ok || !label {
			t.Fatalf("snapshot triple labeled (%v,%v): %v", label, ok, tr)
		}
	}
	// A bogus value on a known item labels false.
	known := snap.Store.Items()[0]
	bogus := known.WithObject(kb.StringObject("no-such-value-xyzzy"))
	if label, ok := gold.Label(bogus); !ok || label {
		t.Errorf("bogus value on known item labeled (%v,%v)", label, ok)
	}
	// An unknown item abstains.
	unknown := kb.Triple{Subject: "/m/doesnotexist", Predicate: "/people/person/birth_date", Object: kb.StringObject("x")}
	if _, ok := gold.Label(unknown); ok {
		t.Error("unknown item did not abstain")
	}
}

func TestGoldCoverage(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(51))
	snap := world.BuildFreebase(w)
	gold := NewGoldStandard(snap)
	triples := snap.Store.Triples()
	labeled, trueN := gold.Coverage(triples)
	if labeled != len(triples) || trueN != len(triples) {
		t.Errorf("coverage over snapshot triples = (%d,%d), want (%d,%d)", labeled, trueN, len(triples), len(triples))
	}
}

func TestCalibrationPerfect(t *testing.T) {
	// Predictions that are exactly calibrated: prob p true with rate p.
	var preds []Prediction
	for _, p := range []float64{0.1, 0.3, 0.7, 0.9} {
		for i := 0; i < 100; i++ {
			preds = append(preds, Prediction{Prob: p, Label: float64(i) < p*100})
		}
	}
	c := Calibration(preds, 20)
	if d := c.Deviation(); d > 1e-6 {
		t.Errorf("perfectly calibrated deviation = %v", d)
	}
	if wd := c.WeightedDeviation(); wd > 1e-6 {
		t.Errorf("perfectly calibrated weighted deviation = %v", wd)
	}
}

func TestCalibrationBuckets(t *testing.T) {
	preds := []Prediction{
		{Prob: 0, Label: false}, {Prob: 0.049, Label: true},
		{Prob: 1, Label: true}, {Prob: 0.999, Label: false},
	}
	c := Calibration(preds, 20)
	if len(c.Buckets) != 21 {
		t.Fatalf("bucket count = %d, want 21", len(c.Buckets))
	}
	if c.Buckets[0].N != 2 {
		t.Errorf("bucket 0 N = %d, want 2 (0 and 0.049)", c.Buckets[0].N)
	}
	if c.Buckets[20].N != 1 {
		t.Errorf("prob==1 bucket N = %d, want 1", c.Buckets[20].N)
	}
	if c.Buckets[19].N != 1 {
		t.Errorf("bucket 19 N = %d, want 1 (0.999)", c.Buckets[19].N)
	}
	total := 0
	for _, b := range c.Buckets {
		total += b.N
	}
	if total != len(preds) {
		t.Errorf("bucket conservation: %d vs %d", total, len(preds))
	}
}

func TestCalibrationBucketConservationQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var preds []Prediction
		for i, r := range raw {
			p := math.Abs(r)
			p -= math.Floor(p) // [0,1)
			preds = append(preds, Prediction{Prob: p, Label: i%2 == 0})
		}
		c := Calibration(preds, 20)
		total := 0
		for _, b := range c.Buckets {
			total += b.N
		}
		return total == len(preds) && c.Deviation() >= 0 && c.WeightedDeviation() >= 0 && c.Deviation() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealAt(t *testing.T) {
	preds := []Prediction{{Prob: 0.95, Label: true}, {Prob: 0.95, Label: true}, {Prob: 0.95, Label: false}}
	c := Calibration(preds, 20)
	real, n := c.RealAt(0.95)
	if n != 3 || math.Abs(real-2.0/3.0) > 1e-12 {
		t.Errorf("RealAt = (%v,%v)", real, n)
	}
}

func TestPRCurveAndAUC(t *testing.T) {
	// Perfect ranking: all true above all false → AUC-PR = 1.
	var preds []Prediction
	for i := 0; i < 50; i++ {
		preds = append(preds, Prediction{Prob: 0.9, Label: true}, Prediction{Prob: 0.1, Label: false})
	}
	if auc := AUCPR(preds); math.Abs(auc-1) > 1e-9 {
		t.Errorf("perfect AUC-PR = %v, want 1", auc)
	}
	// Inverted ranking: all false above all true → low AUC.
	var inv []Prediction
	for i := 0; i < 50; i++ {
		inv = append(inv, Prediction{Prob: 0.1, Label: true}, Prediction{Prob: 0.9, Label: false})
	}
	if auc := AUCPR(inv); auc > 0.6 {
		t.Errorf("inverted AUC-PR = %v, want low", auc)
	}
	// Random-ish baseline: AUC ≈ base rate.
	var rnd []Prediction
	for i := 0; i < 1000; i++ {
		rnd = append(rnd, Prediction{Prob: 0.5, Label: i%4 == 0})
	}
	if auc := AUCPR(rnd); math.Abs(auc-0.25) > 0.05 {
		t.Errorf("uniform AUC-PR = %v, want ≈0.25 (base rate)", auc)
	}
}

func TestAUCPRBoundsQuick(t *testing.T) {
	f := func(raw []float64, labels []bool) bool {
		n := len(raw)
		if len(labels) < n {
			n = len(labels)
		}
		var preds []Prediction
		for i := 0; i < n; i++ {
			p := math.Abs(raw[i])
			p -= math.Floor(p)
			preds = append(preds, Prediction{Prob: p, Label: labels[i]})
		}
		auc := AUCPR(preds)
		return auc >= 0 && auc <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	preds := []Prediction{
		{0.9, true}, {0.8, false}, {0.7, true}, {0.6, true}, {0.5, false},
	}
	pts := PRCurve(preds)
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Fatalf("recall not monotone: %+v", pts)
		}
	}
	last := pts[len(pts)-1]
	if math.Abs(last.Recall-1) > 1e-12 {
		t.Errorf("final recall = %v, want 1", last.Recall)
	}
}

func TestMonotonicity(t *testing.T) {
	perfect := []Prediction{{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}}
	if m := Monotonicity(perfect); math.Abs(m-1) > 1e-12 {
		t.Errorf("perfect monotonicity = %v", m)
	}
	random := []Prediction{{0.5, true}, {0.5, false}}
	if m := Monotonicity(random); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("tied monotonicity = %v", m)
	}
	if m := Monotonicity(nil); m != 0.5 {
		t.Errorf("empty monotonicity = %v", m)
	}
}

func TestDistribution(t *testing.T) {
	probs := []float64{0.02, 0.03, 0.5, 1.0}
	d := Distribution(probs, 20)
	if len(d) != 21 {
		t.Fatalf("distribution len = %d", len(d))
	}
	if math.Abs(d[0]-0.5) > 1e-12 {
		t.Errorf("bucket 0 = %v, want 0.5", d[0])
	}
	if math.Abs(d[20]-0.25) > 1e-12 {
		t.Errorf("==1 bucket = %v, want 0.25", d[20])
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestBrier(t *testing.T) {
	preds := []Prediction{{1, true}, {0, false}}
	if b := Brier(preds); b != 0 {
		t.Errorf("perfect Brier = %v", b)
	}
	preds = []Prediction{{0, true}}
	if b := Brier(preds); b != 1 {
		t.Errorf("worst Brier = %v", b)
	}
}

func TestKappaProperties(t *testing.T) {
	// Identical sets: κ = (n·N − n²)/(N² − n²) > 0 for n < N.
	if k := Kappa(50, 50, 50, 100); k <= 0 {
		t.Errorf("identical sets κ = %v, want > 0", k)
	}
	// Disjoint sets κ < 0.
	if k := Kappa(0, 50, 50, 100); k >= 0 {
		t.Errorf("disjoint sets κ = %v, want < 0", k)
	}
	// Independence: intersection = t1·t2/N → κ = 0.
	if k := Kappa(25, 50, 50, 100); math.Abs(k) > 1e-12 {
		t.Errorf("independent sets κ = %v, want 0", k)
	}
	// Symmetry.
	if Kappa(10, 30, 60, 200) != Kappa(10, 60, 30, 200) {
		t.Error("κ not symmetric")
	}
	// Degenerate denominator.
	if k := Kappa(5, 5, 5, 5); k != 0 {
		t.Errorf("degenerate κ = %v, want 0", k)
	}
}

func TestKappaMatrix(t *testing.T) {
	tr := func(s string) kb.Triple {
		return kb.Triple{Subject: kb.EntityID(s), Predicate: "p", Object: kb.StringObject("v")}
	}
	xs := []extract.Extraction{
		{Triple: tr("a"), Extractor: "E1"}, {Triple: tr("b"), Extractor: "E1"},
		{Triple: tr("a"), Extractor: "E2"}, {Triple: tr("b"), Extractor: "E2"},
		{Triple: tr("c"), Extractor: "E3"},
	}
	pairs := KappaMatrix(xs, func(a, b string) bool { return a[0] == b[0] })
	if len(pairs) != 3 {
		t.Fatalf("pair count = %d, want 3", len(pairs))
	}
	for _, p := range pairs {
		switch {
		case p.A == "E1" && p.B == "E2":
			if p.Kappa <= 0 {
				t.Errorf("overlapping extractors κ = %v, want > 0", p.Kappa)
			}
		case p.B == "E3":
			if p.Kappa >= 0 {
				t.Errorf("disjoint extractor κ = %v, want < 0", p.Kappa)
			}
		}
		if !p.SameType {
			t.Error("sameType callback not honored")
		}
	}
}
