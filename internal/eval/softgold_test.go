package eval

import (
	"math"
	"testing"

	"kfusion/internal/kb"
	"kfusion/internal/world"
)

func TestSoftGoldConfidences(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(80))
	snap := world.BuildFreebase(w)
	gold := NewGoldStandard(snap)
	soft := NewSoftGold(gold, func(p kb.PredicateID) float64 {
		if pr := w.Ont.Predicate(p); pr != nil {
			return pr.Cardinality
		}
		return 1
	})

	// A positive label keeps confidence 1.
	pos := snap.Store.Triples()[0]
	if label, conf, ok := soft.Label(pos); !ok || !label || conf != 1 {
		t.Errorf("positive label = (%v,%v,%v)", label, conf, ok)
	}

	// Negatives: functional predicates keep full confidence, multi-valued
	// ones are discounted.
	sawFunctional, sawMulti := false, false
	for _, item := range snap.Store.Items() {
		pr := w.Ont.Predicate(item.Predicate)
		if pr == nil {
			continue
		}
		bogus := item.WithObject(kb.StringObject("bogus-value-xyz"))
		label, conf, ok := soft.Label(bogus)
		if !ok || label {
			t.Fatalf("bogus value labeled (%v,%v)", label, ok)
		}
		if pr.Functional {
			sawFunctional = true
			if conf != 1 {
				t.Errorf("functional negative confidence = %v, want 1", conf)
			}
		} else if pr.Cardinality > 1 {
			sawMulti = true
			want := 1 / pr.Cardinality
			if math.Abs(conf-want) > 1e-9 {
				t.Errorf("multi-valued negative confidence = %v, want %v", conf, want)
			}
		}
		if sawFunctional && sawMulti {
			break
		}
	}
	if !sawFunctional || !sawMulti {
		t.Skip("world lacks one of the predicate kinds at this seed")
	}

	// Unlabeled items abstain.
	unknown := kb.Triple{Subject: "/m/none", Predicate: "/p/none", Object: kb.StringObject("x")}
	if _, _, ok := soft.Label(unknown); ok {
		t.Error("unknown item did not abstain")
	}
}

func TestWeightedDeviationDiscountsUncertainNegatives(t *testing.T) {
	// A model that assigns 0.8 to true-but-missing values of a multi-valued
	// predicate: under hard LCWA this is a big calibration error; under the
	// soft gold standard the penalty shrinks with the label confidence.
	hard := []WeightedPrediction{
		{Prob: 0.8, Label: false, Confidence: 1},
		{Prob: 0.8, Label: false, Confidence: 1},
		{Prob: 0.8, Label: true, Confidence: 1},
	}
	soft := []WeightedPrediction{
		{Prob: 0.8, Label: false, Confidence: 0.2},
		{Prob: 0.8, Label: false, Confidence: 0.2},
		{Prob: 0.8, Label: true, Confidence: 1},
	}
	h := WeightedDeviation(hard, 20)
	s := WeightedDeviation(soft, 20)
	if s >= h {
		t.Errorf("soft deviation %v not below hard %v", s, h)
	}
}

func TestWeightedDeviationMatchesUnweighted(t *testing.T) {
	// With all confidences 1, the weighted deviation equals the standard
	// weighted deviation.
	preds := []Prediction{
		{Prob: 0.1, Label: false}, {Prob: 0.9, Label: true},
		{Prob: 0.6, Label: false}, {Prob: 0.3, Label: true},
	}
	var wp []WeightedPrediction
	for _, p := range preds {
		wp = append(wp, WeightedPrediction{Prob: p.Prob, Label: p.Label, Confidence: 1})
	}
	want := Calibration(preds, 20).WeightedDeviation()
	got := WeightedDeviation(wp, 20)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted %v != unweighted %v", got, want)
	}
}

func TestWeightedDeviationEmpty(t *testing.T) {
	if WeightedDeviation(nil, 20) != 0 {
		t.Error("empty weighted deviation != 0")
	}
	if WeightedDeviation([]WeightedPrediction{{Prob: 0.5, Label: true, Confidence: 0}}, 0) != 0 {
		t.Error("zero-confidence-only deviation != 0")
	}
}

func TestWeightedPredictions(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(81))
	snap := world.BuildFreebase(w)
	gold := NewGoldStandard(snap)
	soft := NewSoftGold(gold, func(kb.PredicateID) float64 { return 2 })
	triples := snap.Store.Triples()[:10]
	probs := make([]float64, len(triples))
	for i := range probs {
		probs[i] = 0.9
	}
	wp := WeightedPredictions(triples, probs, soft)
	if len(wp) != 10 {
		t.Fatalf("got %d weighted predictions, want 10", len(wp))
	}
	for _, p := range wp {
		if !p.Label || p.Confidence != 1 {
			t.Errorf("snapshot triple mislabeled: %+v", p)
		}
	}
}
