package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Prediction pairs a predicted probability with a gold label; calibration
// and PR evaluation run over labeled triples only.
type Prediction struct {
	Prob  float64
	Label bool
}

// CalBucket is one calibration bucket.
type CalBucket struct {
	// Lo and Hi bound the predicted-probability range [Lo, Hi).
	Lo, Hi float64
	// MeanPred is the mean predicted probability in the bucket.
	MeanPred float64
	// Real is the fraction of bucket triples that are actually true.
	Real float64
	// N is the number of predictions in the bucket.
	N int
}

// CalibrationCurve is the paper's predicted-vs-real probability plot: l
// equal-width buckets over [0,1) plus a final bucket holding predictions of
// exactly 1 (§4.2 uses l = 20).
type CalibrationCurve struct {
	Buckets []CalBucket
}

// Calibration buckets the predictions. l must be >= 1.
func Calibration(preds []Prediction, l int) CalibrationCurve {
	if l < 1 {
		l = 1
	}
	sums := make([]float64, l+1)
	hits := make([]int, l+1)
	counts := make([]int, l+1)
	for _, p := range preds {
		idx := l // the ==1 bucket
		if p.Prob < 1 {
			idx = int(p.Prob * float64(l))
			if idx < 0 {
				idx = 0
			}
			if idx >= l {
				idx = l - 1
			}
		}
		counts[idx]++
		sums[idx] += p.Prob
		if p.Label {
			hits[idx]++
		}
	}
	curve := CalibrationCurve{Buckets: make([]CalBucket, l+1)}
	for i := range curve.Buckets {
		b := CalBucket{
			Lo: float64(i) / float64(l),
			Hi: float64(i+1) / float64(l),
			N:  counts[i],
		}
		if i == l {
			b.Lo, b.Hi = 1, 1
		}
		if counts[i] > 0 {
			b.MeanPred = sums[i] / float64(counts[i])
			b.Real = float64(hits[i]) / float64(counts[i])
		}
		curve.Buckets[i] = b
	}
	return curve
}

// Deviation is the unweighted mean square gap between predicted and real
// probability over the non-empty buckets.
func (c CalibrationCurve) Deviation() float64 {
	sum, n := 0.0, 0
	for _, b := range c.Buckets {
		if b.N == 0 {
			continue
		}
		d := b.MeanPred - b.Real
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WeightedDeviation weighs each bucket by its triple count — the average
// square loss of an individual prediction.
func (c CalibrationCurve) WeightedDeviation() float64 {
	sum, n := 0.0, 0
	for _, b := range c.Buckets {
		if b.N == 0 {
			continue
		}
		d := b.MeanPred - b.Real
		sum += float64(b.N) * d * d
		n += b.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RealAt returns the real accuracy of the bucket containing prob, and the
// bucket size.
func (c CalibrationCurve) RealAt(prob float64) (float64, int) {
	l := len(c.Buckets) - 1
	idx := l
	if prob < 1 {
		idx = int(prob * float64(l))
		if idx >= l {
			idx = l - 1
		}
		if idx < 0 {
			idx = 0
		}
	}
	return c.Buckets[idx].Real, c.Buckets[idx].N
}

// String renders the curve compactly for reports.
func (c CalibrationCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pred→real (n): ")
	for _, bk := range c.Buckets {
		if bk.N == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.2f→%.2f (%d)] ", bk.MeanPred, bk.Real, bk.N)
	}
	return strings.TrimSpace(b.String())
}

// PRPoint is one point of the precision-recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
	Threshold float64
}

// PRCurve computes precision-recall points over predictions sorted by
// descending probability, one point per distinct threshold.
func PRCurve(preds []Prediction) []PRPoint {
	if len(preds) == 0 {
		return nil
	}
	sorted := append([]Prediction(nil), preds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Prob > sorted[j].Prob })
	totalTrue := 0
	for _, p := range sorted {
		if p.Label {
			totalTrue++
		}
	}
	if totalTrue == 0 {
		return nil
	}
	var out []PRPoint
	tp := 0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Prob == sorted[i].Prob {
			if sorted[j].Label {
				tp++
			}
			j++
		}
		out = append(out, PRPoint{
			Recall:    float64(tp) / float64(totalTrue),
			Precision: float64(tp) / float64(j),
			Threshold: sorted[i].Prob,
		})
		i = j
	}
	return out
}

// AUCPR integrates the PR curve by trapezoid over recall, anchored at the
// first point's precision for recall 0.
func AUCPR(preds []Prediction) float64 {
	pts := PRCurve(preds)
	if len(pts) == 0 {
		return 0
	}
	area := 0.0
	prevR, prevP := 0.0, pts[0].Precision
	for _, pt := range pts {
		area += (pt.Recall - prevR) * (pt.Precision + prevP) / 2
		prevR, prevP = pt.Recall, pt.Precision
	}
	return area
}

// Monotonicity measures how well the probability ordering separates true
// from false predictions: the probability that a random true triple is
// ranked above a random false one (AUC-ROC flavored; 0.5 = random). Used by
// ablation tests.
func Monotonicity(preds []Prediction) float64 {
	var tp, fp []float64
	for _, p := range preds {
		if p.Label {
			tp = append(tp, p.Prob)
		} else {
			fp = append(fp, p.Prob)
		}
	}
	if len(tp) == 0 || len(fp) == 0 {
		return 0.5
	}
	sort.Float64s(fp)
	wins := 0.0
	for _, v := range tp {
		lo := sort.SearchFloat64s(fp, v)                                  // #false strictly below
		hi := sort.Search(len(fp), func(i int) bool { return fp[i] > v }) // first strictly above
		wins += float64(lo) + 0.5*float64(hi-lo)
	}
	return wins / (float64(len(tp)) * float64(len(fp)))
}

// Distribution returns the fraction of predictions in each of l probability
// buckets (plus the ==1 bucket) — Figure 16's histogram.
func Distribution(probs []float64, l int) []float64 {
	if l < 1 {
		l = 1
	}
	counts := make([]float64, l+1)
	for _, p := range probs {
		idx := l
		if p < 1 {
			idx = int(p * float64(l))
			if idx < 0 {
				idx = 0
			}
			if idx >= l {
				idx = l - 1
			}
		}
		counts[idx]++
	}
	if len(probs) > 0 {
		for i := range counts {
			counts[i] /= float64(len(probs))
		}
	}
	return counts
}

// Brier returns the mean squared error of predictions — a scalar calibration
// summary used in extension ablations.
func Brier(preds []Prediction) float64 {
	if len(preds) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range preds {
		y := 0.0
		if p.Label {
			y = 1
		}
		d := p.Prob - y
		sum += d * d
	}
	return sum / float64(len(preds))
}
