package eval

import (
	"sort"

	"kfusion/internal/extract"
	"kfusion/internal/kb"
)

// Kappa computes the paper's Eq. 1 over two extractors' triple sets T1, T2
// within the overall extracted set KB:
//
//	κ = (|T1∩T2|·|KB| − |T1|·|T2|) / (|KB|² − |T1|·|T2|)
//
// Positive κ indicates positive correlation, negative κ anti-correlation,
// and κ ≈ 0 independence.
func Kappa(intersection, t1, t2, kbSize int) float64 {
	num := float64(intersection)*float64(kbSize) - float64(t1)*float64(t2)
	den := float64(kbSize)*float64(kbSize) - float64(t1)*float64(t2)
	if den == 0 {
		return 0
	}
	return num / den
}

// ExtractorPairKappa is one Figure 19 observation.
type ExtractorPairKappa struct {
	A, B     string
	Kappa    float64
	SameType bool
}

// KappaMatrix computes κ for every extractor pair over an extraction set.
// sameType reports whether two extractor names target the same content type
// (e.g. TXT2 vs TXT3).
func KappaMatrix(xs []extract.Extraction, sameType func(a, b string) bool) []ExtractorPairKappa {
	sets := make(map[string]map[kb.Triple]bool)
	all := make(map[kb.Triple]bool)
	for _, x := range xs {
		if sets[x.Extractor] == nil {
			sets[x.Extractor] = make(map[kb.Triple]bool)
		}
		sets[x.Extractor][x.Triple] = true
		all[x.Triple] = true
	}
	names := make([]string, 0, len(sets))
	for n := range sets {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []ExtractorPairKappa
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			inter := 0
			small, large := sets[a], sets[b]
			if len(small) > len(large) {
				small, large = large, small
			}
			for t := range small {
				if large[t] {
					inter++
				}
			}
			out = append(out, ExtractorPairKappa{
				A:        a,
				B:        b,
				Kappa:    Kappa(inter, len(sets[a]), len(sets[b]), len(all)),
				SameType: sameType(a, b),
			})
		}
	}
	return out
}
