package eval

import (
	"fmt"
	"sort"
	"strings"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/world"
)

// FPReason categorizes a false positive — a triple the fuser believes with
// high probability but the gold standard labels false (Figure 17, left).
type FPReason uint8

const (
	// FPExtractionError: the triple is genuinely false and traces back to a
	// common extraction error.
	FPExtractionError FPReason = iota
	// FPSourceError: the triple is genuinely false; the Web sources said so.
	FPSourceError
	// FPClosedWorld: the triple is actually TRUE in the world but the
	// (incomplete) trusted KB labels it false under LCWA.
	FPClosedWorld
	// FPSpecificValue: true, but more specific than the KB's value.
	FPSpecificValue
	// FPGeneralValue: true, but more general than the KB's value.
	FPGeneralValue
	// FPFreebaseWrong: the trusted KB's own value is wrong.
	FPFreebaseWrong
)

// String names the category as in Figure 17.
func (r FPReason) String() string {
	switch r {
	case FPExtractionError:
		return "common extraction error"
	case FPSourceError:
		return "wrong value on source"
	case FPClosedWorld:
		return "closed-world assumption"
	case FPSpecificValue:
		return "specific (but correct) value"
	case FPGeneralValue:
		return "general (but correct) value"
	case FPFreebaseWrong:
		return "wrong value in Freebase"
	default:
		return "unknown"
	}
}

// FNReason categorizes a false negative — a true triple the fuser assigned a
// very low probability (Figure 17, right).
type FNReason uint8

const (
	// FNMultipleTruths: the data item has several true values; the
	// single-truth assumption gave the mass to another one.
	FNMultipleTruths FNReason = iota
	// FNSpecificGeneral: the winning value is a more/less specific version
	// of this one on a value hierarchy.
	FNSpecificGeneral
	// FNWeakSupport: the triple simply had too little or too unreliable
	// support.
	FNWeakSupport
)

// String names the category as in Figure 17.
func (r FNReason) String() string {
	switch r {
	case FNMultipleTruths:
		return "multiple truths"
	case FNSpecificGeneral:
		return "specific/general value"
	case FNWeakSupport:
		return "weak support"
	default:
		return "unknown"
	}
}

// ErrorAnalysis is the mechanical counterpart of the paper's 20+20 manual
// sample: because the simulator knows the ground truth, the Freebase
// snapshot's flaws, and each extraction's injected error, every false
// positive and false negative can be attributed exactly.
type ErrorAnalysis struct {
	FP map[FPReason]int
	FN map[FNReason]int
	// FPTotal and FNTotal are the numbers of analyzed errors.
	FPTotal, FNTotal int
}

// AnalyzeErrors attributes all false positives (prob >= hiThreshold, gold
// false) and false negatives (prob <= loThreshold, gold true) of a fusion
// result.
func AnalyzeErrors(w *world.World, snap *world.Snapshot, gold *GoldStandard, res *fusion.Result, xs []extract.Extraction, hiThreshold, loThreshold float64) *ErrorAnalysis {
	ea := &ErrorAnalysis{FP: make(map[FPReason]int), FN: make(map[FNReason]int)}

	// Dominant injected error per triple, for FP attribution.
	errOf := make(map[kb.Triple]extract.ErrorKind)
	for _, x := range xs {
		cur, ok := errOf[x.Triple]
		if !ok || rankError(x.Error) > rankError(cur) {
			errOf[x.Triple] = x.Error
		}
	}

	// Winner value per item, for FN attribution.
	winner := make(map[kb.DataItem]fusion.FusedTriple)
	for _, f := range res.Triples {
		if !f.Predicted {
			continue
		}
		if cur, ok := winner[f.Item()]; !ok || f.Probability > cur.Probability {
			winner[f.Item()] = f
		}
	}

	for _, f := range res.Triples {
		if !f.Predicted {
			continue
		}
		label, ok := gold.Label(f.Triple)
		if !ok {
			continue
		}
		switch {
		case f.Probability >= hiThreshold && !label:
			ea.FPTotal++
			ea.FP[classifyFP(w, snap, f.Triple, errOf[f.Triple])]++
		case f.Probability <= loThreshold && label:
			ea.FNTotal++
			ea.FN[classifyFN(w, gold, f, winner[f.Item()])]++
		}
	}
	return ea
}

func rankError(k extract.ErrorKind) int {
	switch k {
	case extract.ErrTripleID:
		return 4
	case extract.ErrEntityLink:
		return 3
	case extract.ErrPredicateLink:
		return 2
	case extract.ErrSource:
		return 1
	default:
		return 0
	}
}

func classifyFP(w *world.World, snap *world.Snapshot, t kb.Triple, kind extract.ErrorKind) FPReason {
	if w.IsTrue(t) {
		// Actually true: an LCWA artifact. Distinguish the paper's
		// sub-cases.
		item := t.Item()
		if snap.WrongItems[item] {
			return FPFreebaseWrong
		}
		if obj, ok := t.Object.Entity(); ok {
			for _, fbObj := range snap.Store.Objects(item) {
				if fbEnt, isEnt := fbObj.Entity(); isEnt {
					if w.Hier.IsAncestor(fbEnt, obj) {
						return FPSpecificValue // our value is below Freebase's
					}
					if w.Hier.IsAncestor(obj, fbEnt) {
						return FPGeneralValue
					}
				}
			}
		}
		return FPClosedWorld
	}
	if kind == extract.ErrSource {
		return FPSourceError
	}
	return FPExtractionError
}

func classifyFN(w *world.World, gold *GoldStandard, f fusion.FusedTriple, win fusion.FusedTriple) FNReason {
	item := f.Item()
	// Specific/general: the winner sits on the same hierarchy chain.
	if winObj, ok := win.Triple.Object.Entity(); ok && win.Triple != f.Triple {
		if obj, ok2 := f.Triple.Object.Entity(); ok2 && w.Hier.Related(winObj, obj) {
			return FNSpecificGeneral
		}
	}
	// Multiple truths: the item has more than one gold value and the mass
	// went to another true value.
	if len(gold.TrueObjects(item)) > 1 && win.Triple != f.Triple {
		if label, ok := gold.Label(win.Triple); ok && label {
			return FNMultipleTruths
		}
	}
	if len(w.TrueObjects(item)) > 1 && win.Triple != f.Triple && w.IsTrue(win.Triple) {
		return FNMultipleTruths
	}
	return FNWeakSupport
}

// String renders the analysis as Figure 17-style lines.
func (ea *ErrorAnalysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "False positives (%d):\n", ea.FPTotal)
	for _, r := range sortedFPReasons(ea.FP) {
		fmt.Fprintf(&b, "  %-30s %d\n", r.String(), ea.FP[r])
	}
	fmt.Fprintf(&b, "False negatives (%d):\n", ea.FNTotal)
	for _, r := range sortedFNReasons(ea.FN) {
		fmt.Fprintf(&b, "  %-30s %d\n", r.String(), ea.FN[r])
	}
	return b.String()
}

func sortedFPReasons(m map[FPReason]int) []FPReason {
	out := make([]FPReason, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return m[out[i]] > m[out[j]] })
	return out
}

func sortedFNReasons(m map[FNReason]int) []FNReason {
	out := make([]FNReason, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return m[out[i]] > m[out[j]] })
	return out
}
