// Package kfio serializes the pipeline's interchange records as JSON Lines:
// extractions (kfgen → kfuse), gold labels (kfgen → kfuse/kfeval) and fused
// triples (kfuse → kfeval). JSONL keeps the tools composable with standard
// Unix tooling and streams without loading whole corpora.
package kfio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// ExtractionRecord is the JSONL form of one extraction.
type ExtractionRecord struct {
	Subject   string  `json:"s"`
	Predicate string  `json:"p"`
	Object    string  `json:"o"`
	Extractor string  `json:"extractor"`
	Pattern   string  `json:"pattern,omitempty"`
	URL       string  `json:"url"`
	Site      string  `json:"site"`
	Conf      float64 `json:"conf"`
}

// GoldRecord is the JSONL form of one gold label.
type GoldRecord struct {
	Subject   string `json:"s"`
	Predicate string `json:"p"`
	Object    string `json:"o"`
	Label     bool   `json:"label"`
}

// FusedRecord is the JSONL form of one fused triple.
type FusedRecord struct {
	Subject     string  `json:"s"`
	Predicate   string  `json:"p"`
	Object      string  `json:"o"`
	Probability float64 `json:"prob"`
	Predicted   bool    `json:"predicted"`
	Provenances int     `json:"provenances"`
	Extractors  int     `json:"extractors"`
}

// WriteExtractions writes extractions as JSONL.
func WriteExtractions(w io.Writer, xs []extract.Extraction) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, x := range xs {
		rec := ExtractionRecord{
			Subject:   string(x.Triple.Subject),
			Predicate: string(x.Triple.Predicate),
			Object:    x.Triple.Object.String(),
			Extractor: x.Extractor,
			Pattern:   x.Pattern,
			URL:       x.URL,
			Site:      x.Site,
			Conf:      x.Confidence,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write extraction: %w", err)
		}
	}
	return bw.Flush()
}

// ExtractionReader iterates a JSONL extraction stream without loading the
// whole file — the reader side of an append-only extraction feed. Next
// returns one extraction at a time (io.EOF at end); ReadBatch chunks the
// stream for the incremental compile pipeline (kfuse -append). Error
// attribution is hidden in files (it is simulator ground truth), so
// Extraction.Error is always ErrNone after a round trip.
type ExtractionReader struct {
	sc *lineScanner
}

// NewExtractionReader returns a streaming reader over r.
func NewExtractionReader(r io.Reader) *ExtractionReader {
	return &ExtractionReader{sc: newScanner(r)}
}

// Next returns the next extraction, or io.EOF after the last one.
func (r *ExtractionReader) Next() (extract.Extraction, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ExtractionRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return extract.Extraction{}, fmt.Errorf("kfio: parse extraction line %d: %w", r.sc.line, err)
		}
		obj, err := kb.ParseObject(rec.Object)
		if err != nil {
			return extract.Extraction{}, fmt.Errorf("kfio: extraction line %d: %w", r.sc.line, err)
		}
		return extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(rec.Subject),
				Predicate: kb.PredicateID(rec.Predicate),
				Object:    obj,
			},
			Extractor:  rec.Extractor,
			Pattern:    rec.Pattern,
			URL:        rec.URL,
			Site:       rec.Site,
			Confidence: rec.Conf,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		return extract.Extraction{}, err
	}
	return extract.Extraction{}, io.EOF
}

// ReadBatch returns up to max extractions (at least one unless the stream is
// exhausted). It returns io.EOF — possibly alongside a final short batch —
// when the stream ends; any other error aborts the batch. max must be
// positive: a non-positive max would return an empty batch without ever
// reaching io.EOF, turning any read-until-EOF loop into a spin.
func (r *ExtractionReader) ReadBatch(max int) ([]extract.Extraction, error) {
	if max <= 0 {
		return nil, fmt.Errorf("kfio: ReadBatch size must be positive, got %d", max)
	}
	out := make([]extract.Extraction, 0, max)
	for len(out) < max {
		x, err := r.Next()
		if err == io.EOF {
			return out, io.EOF
		}
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

// ReadExtractions parses a whole JSONL extraction stream (see
// ExtractionReader for chunked iteration).
func ReadExtractions(r io.Reader) ([]extract.Extraction, error) {
	var out []extract.Extraction
	er := NewExtractionReader(r)
	for {
		x, err := er.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
}

// WriteGold writes gold labels for the given triples.
func WriteGold(w io.Writer, label func(kb.Triple) (bool, bool), triples []kb.Triple) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	seen := make(map[kb.Triple]bool, len(triples))
	for _, t := range triples {
		if seen[t] {
			continue
		}
		seen[t] = true
		l, ok := label(t)
		if !ok {
			continue
		}
		rec := GoldRecord{Subject: string(t.Subject), Predicate: string(t.Predicate), Object: t.Object.String(), Label: l}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write gold: %w", err)
		}
	}
	return bw.Flush()
}

// ReadGold parses JSONL gold labels into a labeling function over the read
// set (triples absent from the file are unlabeled).
func ReadGold(r io.Reader) (func(kb.Triple) (bool, bool), int, error) {
	labels := make(map[kb.Triple]bool)
	sc := newScanner(r)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec GoldRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, fmt.Errorf("kfio: parse gold line %d: %w", sc.line, err)
		}
		obj, err := kb.ParseObject(rec.Object)
		if err != nil {
			return nil, 0, fmt.Errorf("kfio: gold line %d: %w", sc.line, err)
		}
		t := kb.Triple{Subject: kb.EntityID(rec.Subject), Predicate: kb.PredicateID(rec.Predicate), Object: obj}
		labels[t] = rec.Label
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return func(t kb.Triple) (bool, bool) {
		l, ok := labels[t]
		return l, ok
	}, len(labels), nil
}

// WriteFused writes fused triples as JSONL.
func WriteFused(w io.Writer, res *fusion.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range res.Triples {
		rec := FusedRecord{
			Subject:     string(f.Triple.Subject),
			Predicate:   string(f.Triple.Predicate),
			Object:      f.Triple.Object.String(),
			Probability: f.Probability,
			Predicted:   f.Predicted,
			Provenances: f.Provenances,
			Extractors:  f.Extractors,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write fused: %w", err)
		}
	}
	return bw.Flush()
}

// FusedReader iterates a JSONL fused-triple stream without loading the whole
// file, so evaluation (kfeval) streams instead of materializing the result.
type FusedReader struct {
	sc *lineScanner
}

// NewFusedReader returns a streaming reader over r.
func NewFusedReader(r io.Reader) *FusedReader {
	return &FusedReader{sc: newScanner(r)}
}

// Next returns the next fused triple, or io.EOF after the last one.
func (r *FusedReader) Next() (fusion.FusedTriple, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec FusedRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fusion.FusedTriple{}, fmt.Errorf("kfio: parse fused line %d: %w", r.sc.line, err)
		}
		obj, err := kb.ParseObject(rec.Object)
		if err != nil {
			return fusion.FusedTriple{}, fmt.Errorf("kfio: fused line %d: %w", r.sc.line, err)
		}
		return fusion.FusedTriple{
			Triple: kb.Triple{
				Subject:   kb.EntityID(rec.Subject),
				Predicate: kb.PredicateID(rec.Predicate),
				Object:    obj,
			},
			Probability: rec.Probability,
			Predicted:   rec.Predicted,
			Provenances: rec.Provenances,
			Extractors:  rec.Extractors,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		return fusion.FusedTriple{}, err
	}
	return fusion.FusedTriple{}, io.EOF
}

// ReadFused parses a whole JSONL fused-triple stream (see FusedReader for
// chunked iteration).
func ReadFused(r io.Reader) (*fusion.Result, error) {
	res := &fusion.Result{}
	fr := NewFusedReader(r)
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		if !f.Predicted {
			res.Unpredicted++
		}
		res.Triples = append(res.Triples, f)
	}
}

// lineScanner wraps bufio.Scanner with a line counter and a generous buffer.
type lineScanner struct {
	*bufio.Scanner
	line int
}

func newScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	return &lineScanner{Scanner: sc}
}

func (s *lineScanner) Scan() bool {
	ok := s.Scanner.Scan()
	if ok {
		s.line++
	}
	return ok
}
