// Package kfio serializes the pipeline's interchange records as JSON Lines:
// extractions (kfgen → kfuse), gold labels (kfgen → kfuse/kfeval) and fused
// triples (kfuse → kfeval). JSONL keeps the tools composable with standard
// Unix tooling and streams without loading whole corpora.
package kfio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// ExtractionRecord is the JSONL form of one extraction.
type ExtractionRecord struct {
	Subject   string  `json:"s"`
	Predicate string  `json:"p"`
	Object    string  `json:"o"`
	Extractor string  `json:"extractor"`
	Pattern   string  `json:"pattern,omitempty"`
	URL       string  `json:"url"`
	Site      string  `json:"site"`
	Conf      float64 `json:"conf"`
}

// GoldRecord is the JSONL form of one gold label.
type GoldRecord struct {
	Subject   string `json:"s"`
	Predicate string `json:"p"`
	Object    string `json:"o"`
	Label     bool   `json:"label"`
}

// FusedRecord is the JSONL form of one fused triple.
type FusedRecord struct {
	Subject     string  `json:"s"`
	Predicate   string  `json:"p"`
	Object      string  `json:"o"`
	Probability float64 `json:"prob"`
	Predicted   bool    `json:"predicted"`
	Provenances int     `json:"provenances"`
	Extractors  int     `json:"extractors"`
}

// WriteExtractions writes extractions as JSONL.
func WriteExtractions(w io.Writer, xs []extract.Extraction) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, x := range xs {
		rec := ExtractionRecord{
			Subject:   string(x.Triple.Subject),
			Predicate: string(x.Triple.Predicate),
			Object:    x.Triple.Object.String(),
			Extractor: x.Extractor,
			Pattern:   x.Pattern,
			URL:       x.URL,
			Site:      x.Site,
			Conf:      x.Confidence,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write extraction: %w", err)
		}
	}
	return bw.Flush()
}

// ErrPartialLine reports a final line with no terminating newline — the
// half-written record of a producer appending to the feed right now. Offset
// is where the partial line starts, so a tailing consumer (kfuse -append)
// can process every complete record, remember Offset, and retry the read
// from there once the producer finishes the line.
type ErrPartialLine struct {
	// Offset is the byte offset of the first byte of the partial line.
	Offset int64
	// Line holds the partial bytes read so far.
	Line []byte
}

func (e *ErrPartialLine) Error() string {
	return fmt.Sprintf("kfio: partial line at byte offset %d (%d bytes so far)", e.Offset, len(e.Line))
}

// ExtractionReader iterates a JSONL extraction stream without loading the
// whole file — the reader side of an append-only extraction feed. Next
// returns one extraction at a time (io.EOF at end, *ErrPartialLine for a
// truncated final line); ReadBatch chunks the stream for the incremental
// compile pipeline (kfuse -append). Error attribution is hidden in files (it
// is simulator ground truth), so Extraction.Error is always ErrNone after a
// round trip.
type ExtractionReader struct {
	sc *lineScanner
}

// NewExtractionReader returns a streaming reader over r.
func NewExtractionReader(r io.Reader) *ExtractionReader {
	return &ExtractionReader{sc: newScanner(r)}
}

// parseExtractionLine decodes one JSONL extraction record.
func parseExtractionLine(line []byte, lineNo int) (extract.Extraction, error) {
	var rec ExtractionRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return extract.Extraction{}, fmt.Errorf("kfio: parse extraction line %d: %w", lineNo, err)
	}
	obj, err := kb.ParseObject(rec.Object)
	if err != nil {
		return extract.Extraction{}, fmt.Errorf("kfio: extraction line %d: %w", lineNo, err)
	}
	return extract.Extraction{
		Triple: kb.Triple{
			Subject:   kb.EntityID(rec.Subject),
			Predicate: kb.PredicateID(rec.Predicate),
			Object:    obj,
		},
		Extractor:  rec.Extractor,
		Pattern:    rec.Pattern,
		URL:        rec.URL,
		Site:       rec.Site,
		Confidence: rec.Conf,
	}, nil
}

// Next returns the next extraction, io.EOF after the last one, or
// *ErrPartialLine when the stream ends mid-line. A complete record is one
// the producer terminated with a newline; an unterminated tail is never
// parsed — even when its bytes happen to form valid JSON, the record may
// still be growing.
func (r *ExtractionReader) Next() (extract.Extraction, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if r.sc.partial {
			return extract.Extraction{}, &ErrPartialLine{Offset: r.sc.start, Line: append([]byte(nil), line...)}
		}
		if len(line) == 0 {
			continue
		}
		return parseExtractionLine(line, r.sc.line)
	}
	if err := r.sc.Err(); err != nil {
		return extract.Extraction{}, err
	}
	return extract.Extraction{}, io.EOF
}

// ReadBatch returns up to max extractions (at least one unless the stream is
// exhausted). It returns io.EOF — possibly alongside a final short batch —
// when the stream ends, and *ErrPartialLine — alongside the complete records
// before it — when the stream ends mid-line; any other error aborts the
// batch. max must be positive: a non-positive max would return an empty
// batch without ever reaching io.EOF, turning any read-until-EOF loop into a
// spin.
func (r *ExtractionReader) ReadBatch(max int) ([]extract.Extraction, error) {
	if max <= 0 {
		return nil, fmt.Errorf("kfio: ReadBatch size must be positive, got %d", max)
	}
	out := make([]extract.Extraction, 0, max)
	for len(out) < max {
		x, err := r.Next()
		if err == io.EOF {
			return out, io.EOF
		}
		var partial *ErrPartialLine
		if errors.As(err, &partial) {
			return out, err
		}
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

// ReadExtractions parses a whole JSONL extraction stream (see
// ExtractionReader for chunked iteration). Unlike the streaming reader it
// accepts a parseable unterminated final line: a whole-file read means the
// producer is done, so a missing trailing newline is cosmetic, not a
// half-written record.
func ReadExtractions(r io.Reader) ([]extract.Extraction, error) {
	var out []extract.Extraction
	er := NewExtractionReader(r)
	for {
		x, err := er.Next()
		if err == io.EOF {
			return out, nil
		}
		var partial *ErrPartialLine
		if errors.As(err, &partial) {
			if len(partial.Line) == 0 {
				return out, nil
			}
			x, perr := parseExtractionLine(partial.Line, er.sc.line)
			if perr != nil {
				return nil, perr
			}
			return append(out, x), nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
}

// WriteGold writes gold labels for the given triples.
func WriteGold(w io.Writer, label func(kb.Triple) (bool, bool), triples []kb.Triple) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	seen := make(map[kb.Triple]bool, len(triples))
	for _, t := range triples {
		if seen[t] {
			continue
		}
		seen[t] = true
		l, ok := label(t)
		if !ok {
			continue
		}
		rec := GoldRecord{Subject: string(t.Subject), Predicate: string(t.Predicate), Object: t.Object.String(), Label: l}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write gold: %w", err)
		}
	}
	return bw.Flush()
}

// ReadGold parses JSONL gold labels into a labeling function over the read
// set (triples absent from the file are unlabeled).
func ReadGold(r io.Reader) (func(kb.Triple) (bool, bool), int, error) {
	labels := make(map[kb.Triple]bool)
	sc := newScanner(r)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec GoldRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, fmt.Errorf("kfio: parse gold line %d: %w", sc.line, err)
		}
		obj, err := kb.ParseObject(rec.Object)
		if err != nil {
			return nil, 0, fmt.Errorf("kfio: gold line %d: %w", sc.line, err)
		}
		t := kb.Triple{Subject: kb.EntityID(rec.Subject), Predicate: kb.PredicateID(rec.Predicate), Object: obj}
		labels[t] = rec.Label
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return func(t kb.Triple) (bool, bool) {
		l, ok := labels[t]
		return l, ok
	}, len(labels), nil
}

// WriteFused writes fused triples as JSONL.
func WriteFused(w io.Writer, res *fusion.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range res.Triples {
		rec := FusedRecord{
			Subject:     string(f.Triple.Subject),
			Predicate:   string(f.Triple.Predicate),
			Object:      f.Triple.Object.String(),
			Probability: f.Probability,
			Predicted:   f.Predicted,
			Provenances: f.Provenances,
			Extractors:  f.Extractors,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("kfio: write fused: %w", err)
		}
	}
	return bw.Flush()
}

// FusedReader iterates a JSONL fused-triple stream without loading the whole
// file, so evaluation (kfeval) streams instead of materializing the result.
type FusedReader struct {
	sc *lineScanner
}

// NewFusedReader returns a streaming reader over r.
func NewFusedReader(r io.Reader) *FusedReader {
	return &FusedReader{sc: newScanner(r)}
}

// Next returns the next fused triple, or io.EOF after the last one.
func (r *FusedReader) Next() (fusion.FusedTriple, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec FusedRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fusion.FusedTriple{}, fmt.Errorf("kfio: parse fused line %d: %w", r.sc.line, err)
		}
		obj, err := kb.ParseObject(rec.Object)
		if err != nil {
			return fusion.FusedTriple{}, fmt.Errorf("kfio: fused line %d: %w", r.sc.line, err)
		}
		return fusion.FusedTriple{
			Triple: kb.Triple{
				Subject:   kb.EntityID(rec.Subject),
				Predicate: kb.PredicateID(rec.Predicate),
				Object:    obj,
			},
			Probability: rec.Probability,
			Predicted:   rec.Predicted,
			Provenances: rec.Provenances,
			Extractors:  rec.Extractors,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		return fusion.FusedTriple{}, err
	}
	return fusion.FusedTriple{}, io.EOF
}

// ReadFused parses a whole JSONL fused-triple stream (see FusedReader for
// chunked iteration).
func ReadFused(r io.Reader) (*fusion.Result, error) {
	res := &fusion.Result{}
	fr := NewFusedReader(r)
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		if !f.Predicted {
			res.Unpredicted++
		}
		res.Triples = append(res.Triples, f)
	}
}

// maxLineLen bounds a single JSONL line, matching the old bufio.Scanner cap.
const maxLineLen = 8 * 1024 * 1024

// lineScanner yields lines with a line counter, the byte offset each line
// starts at, and a flag for an unterminated final line — the tell that a
// producer is mid-append. The \n (and a preceding \r) is stripped from the
// yielded bytes.
type lineScanner struct {
	r       *bufio.Reader
	buf     []byte
	line    int
	start   int64 // byte offset of the current line's first byte
	next    int64 // byte offset of the next unread byte
	partial bool  // current line had no terminating newline (stream tail)
	err     error
}

func newScanner(r io.Reader) *lineScanner {
	return &lineScanner{r: bufio.NewReaderSize(r, 64*1024)}
}

func (s *lineScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	s.start = s.next
	s.partial = false
	s.buf = s.buf[:0]
	for {
		chunk, err := s.r.ReadSlice('\n')
		s.buf = append(s.buf, chunk...)
		s.next += int64(len(chunk))
		if len(s.buf) > maxLineLen {
			s.err = fmt.Errorf("kfio: line %d exceeds %d bytes", s.line+1, maxLineLen)
			return false
		}
		switch err {
		case nil:
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(s.buf) == 0 {
				return false
			}
			s.partial = true
		default:
			s.err = err
			return false
		}
		break
	}
	if !s.partial {
		s.buf = s.buf[:len(s.buf)-1]
		if n := len(s.buf); n > 0 && s.buf[n-1] == '\r' {
			s.buf = s.buf[:n-1]
		}
	}
	s.line++
	return true
}

// Bytes returns the current line, valid until the next Scan.
func (s *lineScanner) Bytes() []byte { return s.buf }

// Err reports the first non-EOF error the scanner hit.
func (s *lineScanner) Err() error { return s.err }
