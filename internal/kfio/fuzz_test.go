package kfio

import (
	"strings"
	"testing"
)

// FuzzReadExtractions checks the JSONL reader never panics on arbitrary
// bytes and that any accepted corpus re-serializes losslessly.
func FuzzReadExtractions(f *testing.F) {
	f.Add(`{"s":"/m/1","p":"/p/x","o":"s:v","extractor":"TXT1","url":"u","site":"s","conf":0.5}`)
	f.Add(`{"s":"a","p":"b","o":"n:12","extractor":"E","url":"u","site":"s","conf":-1}`)
	f.Add("")
	f.Add("{not json")
	f.Add(`{"s":"a","p":"b","o":"zz:bad"}`)
	f.Fuzz(func(t *testing.T, in string) {
		xs, err := ReadExtractions(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteExtractions(&buf, xs); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, err := ReadExtractions(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(xs) {
			t.Fatalf("record count changed: %d -> %d", len(xs), len(back))
		}
		for i := range xs {
			if xs[i] != back[i] {
				t.Fatalf("record %d drifted: %+v vs %+v", i, xs[i], back[i])
			}
		}
	})
}

// FuzzReadGold checks the gold-label reader on arbitrary bytes.
func FuzzReadGold(f *testing.F) {
	f.Add(`{"s":"a","p":"b","o":"s:x","label":true}`)
	f.Add("junk")
	f.Fuzz(func(t *testing.T, in string) {
		labeler, n, err := ReadGold(strings.NewReader(in))
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatal("negative label count")
		}
		if labeler == nil {
			t.Fatal("nil labeler on success")
		}
	})
}
