package kfio

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadExtractions checks the JSONL reader never panics on arbitrary
// bytes and that any accepted corpus re-serializes losslessly.
func FuzzReadExtractions(f *testing.F) {
	f.Add(`{"s":"/m/1","p":"/p/x","o":"s:v","extractor":"TXT1","url":"u","site":"s","conf":0.5}`)
	f.Add(`{"s":"a","p":"b","o":"n:12","extractor":"E","url":"u","site":"s","conf":-1}`)
	f.Add("")
	f.Add("{not json")
	f.Add(`{"s":"a","p":"b","o":"zz:bad"}`)
	f.Fuzz(func(t *testing.T, in string) {
		xs, err := ReadExtractions(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteExtractions(&buf, xs); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, err := ReadExtractions(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(xs) {
			t.Fatalf("record count changed: %d -> %d", len(xs), len(back))
		}
		for i := range xs {
			if xs[i] != back[i] {
				t.Fatalf("record %d drifted: %+v vs %+v", i, xs[i], back[i])
			}
		}
	})
}

// FuzzReadGold checks the gold-label reader on arbitrary bytes.
func FuzzReadGold(f *testing.F) {
	f.Add(`{"s":"a","p":"b","o":"s:x","label":true}`)
	f.Add("junk")
	f.Fuzz(func(t *testing.T, in string) {
		labeler, n, err := ReadGold(strings.NewReader(in))
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatal("negative label count")
		}
		if labeler == nil {
			t.Fatal("nil labeler on success")
		}
	})
}

// FuzzExtractionStream checks the streaming reader's partial-line contract
// on arbitrary bytes: Next never panics, a reported partial offset is in
// bounds and points at the true unterminated tail, and retrying from that
// offset with a completed line yields exactly the missing record.
func FuzzExtractionStream(f *testing.F) {
	whole := `{"s":"/m/1","p":"/p/x","o":"s:v","extractor":"TXT1","url":"u","site":"s","conf":0.5}` + "\n"
	f.Add(whole + whole)
	// Truncated mid-record: the crash/partial-append corpus.
	f.Add(whole + whole[:len(whole)/2])
	f.Add(whole[:10])
	// Bit-flipped byte inside a record.
	flipped := []byte(whole + whole)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(string(flipped))
	f.Add("\n\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, in string) {
		r := NewExtractionReader(strings.NewReader(in))
		var complete int
		for {
			_, err := r.Next()
			if err == nil {
				complete++
				continue
			}
			if err == io.EOF {
				if len(in) > 0 && in[len(in)-1] != '\n' {
					t.Fatal("unterminated tail reached EOF without ErrPartialLine")
				}
				return
			}
			var partial *ErrPartialLine
			if errors.As(err, &partial) {
				if partial.Offset < 0 || partial.Offset > int64(len(in)) {
					t.Fatalf("partial offset %d outside %d-byte input", partial.Offset, len(in))
				}
				tail := in[partial.Offset:]
				if strings.ContainsRune(tail, '\n') {
					t.Fatalf("partial tail %q contains a newline", tail)
				}
				if tail != string(partial.Line) {
					t.Fatalf("partial line %q is not the input tail %q", partial.Line, tail)
				}
				// Retry contract: completing the line and re-reading from
				// Offset yields the tail as one record (or a parse error).
				retry := NewExtractionReader(strings.NewReader(tail + "\n"))
				if _, err := retry.Next(); err != nil && err != io.EOF {
					var pp *ErrPartialLine
					if errors.As(err, &pp) {
						t.Fatalf("completed line still partial: %v", err)
					}
				}
				return
			}
			return // parse error: fine, just must not panic
		}
	})
}
