package kfio

import (
	"bytes"
	"strings"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func sampleExtractions() []extract.Extraction {
	return []extract.Extraction{
		{
			Triple:     kb.Triple{Subject: "/m/1", Predicate: "/p/a", Object: kb.EntityObject("/m/2")},
			Extractor:  "TXT1",
			Pattern:    "tpl1|x",
			URL:        "http://a/p1",
			Site:       "a",
			Confidence: 0.75,
		},
		{
			Triple:     kb.Triple{Subject: "/m/3", Predicate: "/p/b", Object: kb.NumberObject(1986)},
			Extractor:  "TBL2",
			URL:        "http://b/p2",
			Site:       "b",
			Confidence: -1,
		},
	}
}

func TestExtractionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExtractions(&buf, sampleExtractions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExtractions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleExtractions()
	if len(got) != len(want) {
		t.Fatalf("count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestGoldRoundTrip(t *testing.T) {
	triples := []kb.Triple{
		{Subject: "/m/1", Predicate: "/p/a", Object: kb.StringObject("x")},
		{Subject: "/m/2", Predicate: "/p/a", Object: kb.StringObject("y")},
		{Subject: "/m/3", Predicate: "/p/a", Object: kb.StringObject("z")}, // unlabeled
	}
	label := func(t kb.Triple) (bool, bool) {
		switch t.Subject {
		case "/m/1":
			return true, true
		case "/m/2":
			return false, true
		default:
			return false, false
		}
	}
	var buf bytes.Buffer
	if err := WriteGold(&buf, label, triples); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadGold(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("read %d labels, want 2", n)
	}
	if l, ok := got(triples[0]); !ok || !l {
		t.Error("triple 0 label lost")
	}
	if l, ok := got(triples[1]); !ok || l {
		t.Error("triple 1 label lost")
	}
	if _, ok := got(triples[2]); ok {
		t.Error("unlabeled triple gained a label")
	}
}

func TestFusedRoundTrip(t *testing.T) {
	res := &fusion.Result{
		Triples: []fusion.FusedTriple{
			{Triple: kb.Triple{Subject: "/m/1", Predicate: "/p/a", Object: kb.StringObject("x")},
				Probability: 0.83, Predicted: true, Provenances: 4, Extractors: 2},
			{Triple: kb.Triple{Subject: "/m/2", Predicate: "/p/b", Object: kb.StringObject("y")},
				Probability: -1, Predicted: false, Provenances: 1, Extractors: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteFused(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFused(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Triples) != 2 || got.Unpredicted != 1 {
		t.Fatalf("round trip: %d triples, %d unpredicted", len(got.Triples), got.Unpredicted)
	}
	for i := range res.Triples {
		a, b := res.Triples[i], got.Triples[i]
		a.ItemProvenances = 0 // not serialized
		if a != b {
			t.Errorf("fused %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadExtractions(strings.NewReader("{not json")); err == nil {
		t.Error("accepted malformed extraction JSON")
	}
	if _, err := ReadExtractions(strings.NewReader(`{"s":"a","p":"b","o":"zz:bad"}`)); err == nil {
		t.Error("accepted malformed object")
	}
	if _, _, err := ReadGold(strings.NewReader("oops")); err == nil {
		t.Error("accepted malformed gold JSON")
	}
	if _, err := ReadFused(strings.NewReader("oops")); err == nil {
		t.Error("accepted malformed fused JSON")
	}
}

func TestBlankLinesIgnored(t *testing.T) {
	in := "\n" + `{"s":"a","p":"b","o":"s:x","extractor":"E","url":"u","site":"s","conf":0.5}` + "\n\n"
	got, err := ReadExtractions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %d records, want 1", len(got))
	}
}
