package kfio

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"

	"kfusion/internal/faultfs"
)

// AtomicWrite writes name through fs with the crash-safe protocol the
// generation store established: stream into name+".tmp", flush, fsync, close,
// rename over name, then fsync the directory so the rename itself is durable.
// A crash at any step leaves either the old file or the new one — never a
// torn mix. Taking the write as a callback keeps the protocol in one place;
// callers only produce bytes.
func AtomicWrite(fs faultfs.FS, name string, write func(io.Writer) error) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("kfio: create %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	fail := func(step string, err error) error {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("kfio: %s %s: %w", step, tmp, err)
	}
	if err := write(bw); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		return fail("flush", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("kfio: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, name); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("kfio: rename %s: %w", name, err)
	}
	if err := fs.SyncDir(); err != nil {
		return fmt.Errorf("kfio: sync dir for %s: %w", name, err)
	}
	return nil
}

// AtomicWriteFile is AtomicWrite on the real filesystem, rooted at path's
// parent directory (created if absent).
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	fs, err := faultfs.NewOS(dir)
	if err != nil {
		return err
	}
	return AtomicWrite(fs, base, write)
}
