package kfio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kfusion/internal/extract"
)

// ExtractionWriter streams extraction records to a JSONL feed without
// holding the corpus in memory — the writer side of ExtractionReader, and
// what lets the benchmark harness generate web-scale feeds (tens of millions
// of records) in bounded memory. Writes buffer through one bufio.Writer;
// call Flush (or Close a flushing wrapper around the underlying file) before
// handing the feed to a reader.
type ExtractionWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewExtractionWriter returns a streaming writer over w.
func NewExtractionWriter(w io.Writer) *ExtractionWriter {
	bw := bufio.NewWriter(w)
	return &ExtractionWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one extraction record.
func (w *ExtractionWriter) Write(x extract.Extraction) error {
	rec := ExtractionRecord{
		Subject:   string(x.Triple.Subject),
		Predicate: string(x.Triple.Predicate),
		Object:    x.Triple.Object.String(),
		Extractor: x.Extractor,
		Pattern:   x.Pattern,
		URL:       x.URL,
		Site:      x.Site,
		Conf:      x.Confidence,
	}
	if err := w.enc.Encode(&rec); err != nil {
		return fmt.Errorf("kfio: write extraction: %w", err)
	}
	w.n++
	return nil
}

// WriteBatch appends a slice of records.
func (w *ExtractionWriter) WriteBatch(xs []extract.Extraction) error {
	for i := range xs {
		if err := w.Write(xs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Count reports the records written so far.
func (w *ExtractionWriter) Count() int { return w.n }

// Flush drains the buffer to the underlying writer. Always call it once
// after the last Write; the records are not on the wire until it returns.
func (w *ExtractionWriter) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("kfio: flush extractions: %w", err)
	}
	return nil
}
