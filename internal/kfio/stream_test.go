package kfio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// manyExtractions builds a deterministic stream larger than any batch size
// used in the tests.
func manyExtractions(n int) []extract.Extraction {
	out := make([]extract.Extraction, n)
	for i := range out {
		out[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("/m/%d", i%50)),
				Predicate: "/p/a",
				Object:    kb.StringObject(fmt.Sprintf("v%d", i%7)),
			},
			Extractor:  fmt.Sprintf("X%d", i%3),
			URL:        fmt.Sprintf("http://s%d/p%d", i%9, i),
			Site:       fmt.Sprintf("s%d", i%9),
			Confidence: -1,
		}
	}
	return out
}

// TestExtractionStreamingRoundTrip pins the chunked reader against the batch
// writer: iterating per-record and per-batch must reproduce the written
// stream exactly, with a final short batch signalled by io.EOF.
func TestExtractionStreamingRoundTrip(t *testing.T) {
	want := manyExtractions(257)
	var buf bytes.Buffer
	if err := WriteExtractions(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Per-record iteration.
	r := NewExtractionReader(bytes.NewReader(raw))
	var got []extract.Extraction
	for {
		x, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, x)
	}
	if len(got) != len(want) {
		t.Fatalf("Next: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next: record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	// Batched iteration: 257 records in batches of 100 -> 100, 100, 57+EOF.
	r = NewExtractionReader(bytes.NewReader(raw))
	var batches [][]extract.Extraction
	for {
		batch, err := r.ReadBatch(100)
		if len(batch) > 0 {
			batches = append(batches, batch)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(batches) != 3 || len(batches[0]) != 100 || len(batches[2]) != 57 {
		t.Fatalf("batch shapes wrong: %d batches", len(batches))
	}
	var joined []extract.Extraction
	for _, b := range batches {
		joined = append(joined, b...)
	}
	for i := range want {
		if joined[i] != want[i] {
			t.Fatalf("ReadBatch: record %d differs", i)
		}
	}
}

// TestFusedStreamingRoundTrip pins the fused-triple streaming reader against
// the writer and the batch ReadFused.
func TestFusedStreamingRoundTrip(t *testing.T) {
	res := &fusion.Result{}
	for i := 0; i < 123; i++ {
		f := fusion.FusedTriple{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("/m/%d", i)),
				Predicate: "/p/a",
				Object:    kb.NumberObject(float64(i)),
			},
			Probability: float64(i) / 123,
			Predicted:   i%5 != 0,
			Provenances: i % 7,
			Extractors:  i % 3,
		}
		if !f.Predicted {
			f.Probability = -1
			res.Unpredicted++
		}
		res.Triples = append(res.Triples, f)
	}
	var buf bytes.Buffer
	if err := WriteFused(&buf, res); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	fr := NewFusedReader(bytes.NewReader(raw))
	n := 0
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Triple != res.Triples[n].Triple || f.Predicted != res.Triples[n].Predicted {
			t.Fatalf("record %d differs", n)
		}
		n++
	}
	if n != len(res.Triples) {
		t.Fatalf("streamed %d records, want %d", n, len(res.Triples))
	}
	batch, err := ReadFused(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Triples) != len(res.Triples) || batch.Unpredicted != res.Unpredicted {
		t.Fatalf("batch ReadFused diverged: %d/%d vs %d/%d",
			len(batch.Triples), batch.Unpredicted, len(res.Triples), res.Unpredicted)
	}
}

// TestStreamingReaderErrors pins error propagation through the streaming
// path: malformed JSON and bad objects surface with line attribution.
func TestStreamingReaderErrors(t *testing.T) {
	r := NewExtractionReader(strings.NewReader("{bad json\n"))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatal("want parse error, got", err)
	}
	fr := NewFusedReader(strings.NewReader(`{"s":"a","p":"b","o":"garbage"}` + "\n"))
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatal("want object error, got", err)
	}
}

// TestPartialLineRetry checks the tailing-consumer contract end to end: a
// feed ending mid-record yields the complete prefix plus a typed
// *ErrPartialLine whose offset lets the consumer resume exactly where the
// producer left off.
func TestPartialLineRetry(t *testing.T) {
	var buf bytes.Buffer
	xs := manyExtractions(5)
	if err := WriteExtractions(&buf, xs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the final record.
	cut := len(full) - 17
	feed := full[:cut]

	r := NewExtractionReader(bytes.NewReader(feed))
	got, err := r.ReadBatch(100)
	var partial *ErrPartialLine
	if !errors.As(err, &partial) {
		t.Fatalf("ReadBatch error = %v, want *ErrPartialLine", err)
	}
	if len(got) != 4 {
		t.Fatalf("complete records = %d, want 4", len(got))
	}
	wantOff := int64(bytes.LastIndexByte(feed, '\n') + 1)
	if partial.Offset != wantOff {
		t.Fatalf("Offset = %d, want %d", partial.Offset, wantOff)
	}
	if !bytes.Equal(partial.Line, feed[wantOff:]) {
		t.Fatalf("Line = %q, want %q", partial.Line, feed[wantOff:])
	}

	// The producer finishes the record; the consumer re-reads from Offset.
	retry := NewExtractionReader(bytes.NewReader(full[partial.Offset:]))
	rest, err := retry.ReadBatch(100)
	if err != io.EOF {
		t.Fatalf("retry error = %v, want io.EOF", err)
	}
	if len(rest) != 1 {
		t.Fatalf("retry records = %d, want 1", len(rest))
	}
	all := append(got, rest...)
	for i := range xs {
		if all[i] != xs[i] {
			t.Fatalf("record %d drifted: %+v vs %+v", i, all[i], xs[i])
		}
	}

	// Whole-file semantics stay lenient: a parseable unterminated tail is a
	// cosmetic missing newline, not a partial record.
	lenient, err := ReadExtractions(bytes.NewReader(bytes.TrimSuffix(full, []byte("\n"))))
	if err != nil {
		t.Fatalf("ReadExtractions on unterminated file: %v", err)
	}
	if len(lenient) != len(xs) {
		t.Fatalf("lenient read = %d records, want %d", len(lenient), len(xs))
	}
}
