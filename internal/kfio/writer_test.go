package kfio

import (
	"bytes"
	"testing"
)

// TestExtractionWriterMatchesWriteExtractions: the streaming writer emits
// byte-identical JSONL to the one-shot WriteExtractions, whether records go
// one at a time or in batches.
func TestExtractionWriterMatchesWriteExtractions(t *testing.T) {
	xs := sampleExtractions()
	var want bytes.Buffer
	if err := WriteExtractions(&want, xs); err != nil {
		t.Fatal(err)
	}

	var one bytes.Buffer
	w := NewExtractionWriter(&one)
	for _, x := range xs {
		if err := w.Write(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), one.Bytes()) {
		t.Fatalf("per-record stream differs from WriteExtractions:\n%q\nvs\n%q", one.Bytes(), want.Bytes())
	}
	if w.Count() != len(xs) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(xs))
	}

	var batched bytes.Buffer
	bw := NewExtractionWriter(&batched)
	if err := bw.WriteBatch(xs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBatch(xs[2:]); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), batched.Bytes()) {
		t.Fatal("batched stream differs from WriteExtractions")
	}

	// And the reader round-trips it.
	got, err := ReadExtractions(&one)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(xs))
	}
}
