package shard

import (
	"fmt"
	"sort"

	"kfusion/internal/csr"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/twolayer"
)

// TwoLayer is the sharded §5.1 two-layer pipeline: K shard-local extraction
// graphs grown by Append, fused in lockstep EM rounds with merged per-source
// and per-extractor M-steps and the per-source ghost-miss correction (see
// the package comment). Single-writer state: Append and Fuse must not race.
type TwoLayer struct {
	k         int
	siteLevel bool
	graphs    []*extract.Compiled
	srcs      *table
	exts      *table

	// ghosts[s][ls] lists, ascending, the global IDs of extractors that
	// processed shard s's local source ls only in other shards — rebuilt
	// after appends (the extractor sets may have grown).
	ghosts  [][][]int32
	gmDirty bool
}

// NewTwoLayer returns an empty K-shard two-layer pipeline at the given
// source level. K = 1 degrades to the unsharded compiled engine
// (bit-identical results, pinned by the property tests).
func NewTwoLayer(k int, siteLevel bool) (*TwoLayer, error) {
	if err := validateK(k); err != nil {
		return nil, err
	}
	return &TwoLayer{
		k:         k,
		siteLevel: siteLevel,
		graphs:    make([]*extract.Compiled, k),
		srcs:      newTable(k),
		exts:      newTable(k),
		gmDirty:   true,
	}, nil
}

// NewTwoLayerFromShards reassembles a coordinator over restored per-shard
// extraction graphs, as produced by a prior TwoLayer with the same K and
// source level (graphs[i] holds exactly the items hashing to shard i).
func NewTwoLayerFromShards(graphs []*extract.Compiled, siteLevel bool) (*TwoLayer, error) {
	t, err := NewTwoLayer(len(graphs), siteLevel)
	if err != nil {
		return nil, err
	}
	for s, g := range graphs {
		if g == nil {
			g = extract.Compile(nil, siteLevel)
		}
		if g.SiteLevel() != siteLevel {
			return nil, fmt.Errorf("shard %d: graph compiled with SiteLevel=%v, want %v", s, g.SiteLevel(), siteLevel)
		}
		t.graphs[s] = g
		t.extendTables(s)
	}
	return t, nil
}

// K reports the shard count.
func (t *TwoLayer) K() int { return t.k }

// Shard exposes shard s's compiled extraction graph (nil until the first
// Append).
func (t *TwoLayer) Shard(s int) *extract.Compiled { return t.graphs[s] }

// NumStatements reports the deduplicated (source, triple) statements across
// all shards.
func (t *TwoLayer) NumStatements() int {
	n := 0
	for _, g := range t.graphs {
		if g != nil {
			n += g.NumStatements()
		}
	}
	return n
}

// Append routes one extraction batch to its shards and compiles or appends
// each shard's graph. Statement dedup is shard-local because the triple's
// item fixes the shard.
func (t *TwoLayer) Append(xs []extract.Extraction) {
	parts := SplitExtractions(xs, t.k)
	for s := 0; s < t.k; s++ {
		switch {
		case t.graphs[s] == nil:
			t.graphs[s] = extract.Compile(parts[s], t.siteLevel)
		case len(parts[s]) > 0:
			t.graphs[s] = t.graphs[s].Append(parts[s])
		}
		t.extendTables(s)
	}
	t.gmDirty = true
}

func (t *TwoLayer) extendTables(s int) {
	g := t.graphs[s]
	t.srcs.extend(s, g.NumSources(), func(i int32) string { return g.SourceKey(i) })
	t.exts.extend(s, g.NumExtractors(), func(i int32) string { return g.ExtractorName(i) })
}

// ensureGhosts rebuilds the per-shard ghost extractor sets: for each global
// source, the union of its extractor sets across shards, minus each holding
// shard's local set. With K = 1 there are no ghosts and the engines keep
// their nil (bit-identical) path.
func (t *TwoLayer) ensureGhosts() {
	if !t.gmDirty {
		return
	}
	t.gmDirty = false
	if t.k == 1 {
		t.ghosts = nil
		return
	}
	union := make([][]int32, t.srcs.n()) // global source -> global exts, sorted
	for s, g := range t.graphs {
		for ls := 0; ls < g.NumSources(); ls++ {
			gs := t.srcs.l2g[s][ls]
			for _, lx := range g.SourceExtractors(int32(ls)) {
				union[gs] = append(union[gs], t.exts.l2g[s][lx])
			}
		}
	}
	for gs := range union {
		u := union[gs]
		sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
		w := 0
		for i, x := range u {
			if i == 0 || x != u[i-1] {
				u[w] = x
				w++
			}
		}
		union[gs] = u[:w]
	}
	t.ghosts = make([][][]int32, t.k)
	local := make([]bool, t.exts.n())
	for s, g := range t.graphs {
		t.ghosts[s] = make([][]int32, g.NumSources())
		for ls := 0; ls < g.NumSources(); ls++ {
			exts := g.SourceExtractors(int32(ls))
			for _, lx := range exts {
				local[t.exts.l2g[s][lx]] = true
			}
			var ghost []int32
			for _, gx := range union[t.srcs.l2g[s][ls]] {
				if !local[gx] {
					ghost = append(ghost, gx)
				}
			}
			t.ghosts[s][ls] = ghost
			for _, lx := range exts {
				local[t.exts.l2g[s][lx]] = false
			}
		}
	}
}

// Fuse runs the two-layer model across the shards: merged results (triples
// in shard-major interned order, the global source-accuracy map) plus the
// run's global State for the next generation's warm start.
func (t *TwoLayer) Fuse(cfg twolayer.Config) (*fusion.Result, *twolayer.State, error) {
	return t.fuse(cfg, nil)
}

// FuseWarm is Fuse seeded from a previous sharded run's State. The State is
// indexed by this coordinator's global tables (append-stable, like the
// graph IDs they are built from); with K = 1 those coincide with the single
// graph's IDs, so unsharded States interchange.
func (t *TwoLayer) FuseWarm(cfg twolayer.Config, warm *twolayer.State) (*fusion.Result, *twolayer.State, error) {
	return t.fuse(cfg, warm)
}

func (t *TwoLayer) fuse(cfg twolayer.Config, warm *twolayer.State) (*fusion.Result, *twolayer.State, error) {
	for s, g := range t.graphs {
		if g == nil {
			return nil, nil, fmt.Errorf("shard %d: Fuse before first Append", s)
		}
	}
	runs := make([]*twolayer.Run, t.k)
	for s, g := range t.graphs {
		r, err := twolayer.NewRun(g, cfg)
		if err != nil {
			return nil, nil, err
		}
		runs[s] = r
	}

	nS, nX := t.srcs.n(), t.exts.n()
	srcAcc := make([]float64, nS)
	recall := make([]float64, nX)
	falsePos := make([]float64, nX)
	for i := range srcAcc {
		srcAcc[i] = cfg.InitSourceAccuracy
	}
	for i := range recall {
		recall[i] = cfg.InitRecall
		falsePos[i] = cfg.InitFalsePos
	}
	if warm != nil {
		copy(srcAcc, warm.SrcAcc) // copy clamps to the shorter slice
		copy(recall, warm.Recall)
		copy(falsePos, warm.FalsePos)
	}
	broadcast := func() {
		for s, r := range runs {
			for local, g := range t.srcs.l2g[s] {
				r.SetSourceAccuracy(int32(local), srcAcc[g])
			}
			for local, g := range t.exts.l2g[s] {
				r.SetExtractorRates(int32(local), recall[g], falsePos[g])
			}
		}
	}
	broadcast()

	// Ghost-miss tables: one []float64 per shard, installed once and
	// rewritten from the global rates before each statement inference.
	var gm [][]float64
	if t.k > 1 {
		t.ensureGhosts()
		gm = make([][]float64, t.k)
		for s, r := range runs {
			gm[s] = make([]float64, r.NumSources())
			r.SetGhostMiss(gm[s])
		}
	}
	refreshGhosts := func() {
		for s := range gm {
			for ls, ghost := range t.ghosts[s] {
				sum := 0.0
				for _, gx := range ghost {
					//lint:ignore kflint/floatsum tiny per-source sum over the ghost extractor set in fixed ascending global-ID order — deterministic by construction, far below a block.
					sum += twolayer.MissLogRatio(recall[gx], falsePos[gx])
				}
				gm[s][ls] = sum
			}
		}
	}

	numP := make([][]float64, t.k)
	denP := make([][]float64, t.k)
	extP := make([][][4]float64, t.k)
	var statedSum [][]float64
	var statedCnt [][]int32
	var ghostP [][4]float64
	for s, r := range runs {
		numP[s] = make([]float64, r.NumSources())
		denP[s] = make([]float64, r.NumSources())
		extP[s] = make([][4]float64, r.NumExtractors())
	}
	if t.k > 1 {
		statedSum = make([][]float64, t.k)
		statedCnt = make([][]int32, t.k)
		for s, r := range runs {
			statedSum[s] = make([]float64, r.NumSources())
			statedCnt[s] = make([]int32, r.NumSources())
		}
		ghostP = make([][4]float64, nX)
	}
	// ghostPartials rebuilds each ghost extractor's cross-shard M-step mass:
	// for every (shard, source) pair the extractor processed only elsewhere,
	// it covers all of the source's local statements without hitting any.
	// Accumulation order is fixed (ascending shard, source, ghost ID), so the
	// totals are deterministic.
	ghostPartials := func() {
		for s, run := range runs {
			run.SourceStatedMass(statedSum[s], statedCnt[s])
		}
		for gx := range ghostP {
			ghostP[gx] = [4]float64{}
		}
		for s := range runs {
			for ls, ghost := range t.ghosts[s] {
				if len(ghost) == 0 {
					continue
				}
				sum := statedSum[s][ls]
				miss := float64(statedCnt[s][ls]) - sum
				for _, gx := range ghost {
					ghostP[gx][0] += sum
					ghostP[gx][1] += miss
				}
			}
		}
	}
	parts := make([]float64, 0, t.k)
	parts4 := make([][4]float64, 0, t.k+1)

	rounds := 0
	for r := 0; r < cfg.Rounds; r++ {
		if gm != nil {
			refreshGhosts()
		}
		for _, run := range runs {
			run.InferStatements()
			run.InferTruth()
		}
		rounds++

		for s, run := range runs {
			run.SourcePartials(numP[s], denP[s])
		}
		maxDelta := 0.0
		for gs, hold := range t.srcs.g2l {
			parts = parts[:0]
			for _, l := range hold {
				parts = append(parts, denP[l.shard][l.local])
			}
			den := csr.Pairwise(parts, csr.AddFloat64)
			if den < twolayer.MinEvidence {
				continue
			}
			parts = parts[:0]
			for _, l := range hold {
				parts = append(parts, numP[l.shard][l.local])
			}
			num := csr.Pairwise(parts, csr.AddFloat64)
			v := twolayer.SourceAccuracyUpdate(num, den, cfg.InitSourceAccuracy)
			if d := v - srcAcc[gs]; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
			srcAcc[gs] = v
		}

		for s, run := range runs {
			run.ExtractorPartials(extP[s])
		}
		if ghostP != nil {
			ghostPartials()
		}
		for gx, hold := range t.exts.g2l {
			parts4 = parts4[:0]
			for _, l := range hold {
				parts4 = append(parts4, extP[l.shard][l.local])
			}
			if ghostP != nil {
				parts4 = append(parts4, ghostP[gx])
			}
			tot := csr.Pairwise(parts4, twolayer.AddPartials)
			if tot[0] > twolayer.MinEvidence {
				recall[gx] = twolayer.RecallUpdate(tot[2], tot[0])
			}
			if tot[1] > twolayer.MinEvidence {
				falsePos[gx] = twolayer.FalsePosUpdate(tot[3], tot[1])
			}
		}

		broadcast()
		if maxDelta < twolayer.ConvergeTol {
			break
		}
	}

	// Final E-steps over the converged parameters, mirroring the unsharded
	// loop's trailing inferStatements+inferTruth.
	if gm != nil {
		refreshGhosts()
	}
	out := &fusion.Result{Rounds: rounds}
	for _, run := range runs {
		run.InferStatements()
		run.InferTruth()
		res := run.Result(rounds)
		out.Triples = append(out.Triples, res.Triples...)
		out.Unpredicted += res.Unpredicted
	}
	out.ProvAccuracy = make(map[string]float64, nS)
	for gs, key := range t.srcs.keys {
		out.ProvAccuracy[key] = srcAcc[gs]
	}
	return out, &twolayer.State{SrcAcc: srcAcc, Recall: recall, FalsePos: falsePos}, nil
}
