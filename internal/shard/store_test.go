package shard

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
)

// TestStoresRoundTrip: append a feed through per-shard stores in chunks with
// snapshots, reopen, and verify the recovered graphs continue the pipeline
// bit-identically to an unpersisted run.
func TestStoresRoundTrip(t *testing.T) {
	const k = 3
	rng := rand.New(rand.NewSource(31))
	xs := testExtractions(rng, 3000)
	tail := testExtractions(rng, 600)
	cfg := fusion.PopAccuConfig()
	dir := t.TempDir()

	// Live run: sharded coordinator without persistence.
	ref, err := NewFusion(k, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}

	stores, states, err := OpenStores(dir, k, statelessApply(cfg.Granularity))
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(xs); lo += 800 {
		hi := lo + 800
		if hi > len(xs) {
			hi = len(xs)
		}
		if err := stores.Append(states, xs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Append(xs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := stores.Snapshot(states); err != nil {
		t.Fatal(err)
	}
	if got, want := Consumed(states), len(xs); got != want {
		t.Fatalf("Consumed = %d, want %d", got, want)
	}
	if err := stores.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovered graphs reassemble a coordinator that continues the
	// pipeline exactly.
	stores, states, err = OpenStores(dir, k, statelessApply(cfg.Granularity))
	if err != nil {
		t.Fatal(err)
	}
	defer stores.Close()
	if d := stores.Degradations(); len(d) != 0 {
		t.Fatalf("clean reopen degraded: %v", d)
	}
	if Batches(states) == 0 {
		t.Fatal("no batches recovered")
	}
	graphs := make([]*fusion.Compiled, k)
	for s, st := range states {
		graphs[s] = st.Claim
	}
	restored, err := NewFusionFromShards(graphs, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	if err := stores.Append(states, tail); err != nil {
		t.Fatal(err)
	}
	if err := restored.Append(tail); err != nil {
		t.Fatal(err)
	}
	if err := ref.Append(tail); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "stores/restored", want, got)

	// The persisted graphs after the tail append match the live ones byte
	// for byte (canonical snapshot encoding).
	for s, st := range states {
		var a, b bytes.Buffer
		if err := st.Claim.EncodeSnapshot(&a); err != nil {
			t.Fatal(err)
		}
		if err := ref.Shard(s).EncodeSnapshot(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("shard %d: persisted graph differs from live graph", s)
		}
	}
}

// statelessApply reseeds the shard's dedup stream from the recovered graph on
// every call, so one ApplyFunc value serves any shard's replay.
func statelessApply(gran fusion.Granularity) genstore.ApplyFunc {
	return func(st *genstore.State, batch []extract.Extraction) error {
		var stream *fusion.ClaimStream
		if st.Claim != nil {
			stream = fusion.SeedClaimStream(gran, st.Claim)
		} else {
			stream = fusion.NewClaimStream(gran)
		}
		claims := stream.Add(batch)
		if st.Claim == nil {
			st.Claim = fusion.MustCompile(claims)
		} else {
			st.Claim = st.Claim.MustAppend(claims)
		}
		st.Method = "popaccu"
		st.Gran = gran
		return nil
	}
}

// TestStoresSkewRefused: a batch applied to some shards but not others — the
// crash-between-appends signature — is detected at open and refused with a
// message naming the remedy.
func TestStoresSkewRefused(t *testing.T) {
	const k = 2
	xs := testExtractions(rand.New(rand.NewSource(32)), 500)
	gran := fusion.GranExtractorURL
	dir := t.TempDir()

	stores, states, err := OpenStores(dir, k, statelessApply(gran))
	if err != nil {
		t.Fatal(err)
	}
	if err := stores.Append(states, xs); err != nil {
		t.Fatal(err)
	}
	// Skew shard 0 by one batch, bypassing the lockstep Append.
	solo, soloState, err := genstore.Open(ShardDir(dir, 0), statelessApply(gran))
	if err != nil {
		t.Fatal(err)
	}
	extra := testExtractions(rand.New(rand.NewSource(33)), 100)
	if err := solo.Append(soloState, SplitExtractions(extra, k)[0]); err != nil {
		t.Fatal(err)
	}
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stores.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = OpenStores(dir, k, statelessApply(gran))
	if err == nil {
		t.Fatal("skewed state dir opened without error")
	}
	if !strings.Contains(err.Error(), "skewed") || !strings.Contains(err.Error(), "remove the state directory") {
		t.Fatalf("skew error lacks diagnosis/remedy: %v", err)
	}
}
