// Package shard partitions the fusion pipeline by data item — the paper's
// own MapReduce decomposition (§4: items are independent in Stage I and
// Stage III; only the per-provenance accuracy re-estimation of Stage II
// crosses items). Each of K shards owns a self-contained slice of the
// corpus: extractions route by kb.DataItem.Hash (every extraction of one
// item lands in one shard, so triples, statements, candidate lists and the
// (provenance, triple) claim dedup are all shard-local), and each shard
// compiles, appends and fuses over its own fusion.Compiled /
// extract.Compiled handle in bounded memory.
//
// # Lockstep EM with deterministic cross-shard merges
//
// Running K independent EM loops would let per-provenance accuracies drift
// apart; instead the coordinators (Fusion, TwoLayer) drive the per-shard
// stepping engines (fusion.Run, twolayer.Run) in lockstep rounds:
//
//  1. Every shard runs its item-local E-step(s) with the current GLOBAL
//     parameters.
//  2. Every shard reports M-step partials — per-provenance (sum, count),
//     per-source (num, den), per-extractor [4]float64 evidence — indexed by
//     a global table built in (shard, first-occurrence) order.
//  3. The coordinator folds each entity's shard partials with csr.Pairwise
//     in shard order — the same fixed-tree contract the in-graph block
//     reductions use, extended across shard boundaries — applies the
//     engines' own exported update formulas (fusion.GoldInitAccuracy,
//     twolayer.SourceAccuracyUpdate/RecallUpdate/FalsePosUpdate), and
//     broadcasts the merged parameters back to every shard.
//
// The two-layer model has one genuinely cross-shard structure: a source's
// extractor set. A statement's layer-1 walk covers every extractor that
// processed its source, but a shard only sees the local ones; the remote
// ones are structural misses there (their hits route with their own items),
// so each round the coordinator folds them into a per-source ghost-miss
// constant (twolayer.MissLogRatio over global rates, summed in ascending
// global extractor ID order) that the shard engine adds to each statement's
// prior. The same pairs owe M-step mass: an extractor covers every
// statement of every source it processed, so for each (shard, source) it
// touched only remotely it contributes the source's local statements as
// all-miss evidence — [stated, unstated, 0, 0] ghost partials folded into
// its merged extractor totals.
//
// # Equivalence policy
//
// K = 1 is bit-identical to the unsharded engines: one shard receives the
// identical stream, the single-element Pairwise fold is the identity, the
// ghost sets are empty (nil — the engine adds nothing), and the update
// formulas are the same code. The property tests pin this bitwise.
//
// K > 1 re-groups cross-shard float sums (a provenance's claims now add
// shard-by-shard before the final division) — exactly the perturbation the
// twolayer.RefTol policy already prices for the in-graph block reductions,
// and the same documented bound applies: float outputs (probabilities,
// accuracies, all in [0,1]) agree within RefTol across K ∈ {1,2,4,8};
// integer outputs (per-item triple sets, support counts, round counts)
// match exactly, modulo the shard-major output order (sorting by item
// restores a canonical order). Two documented K>1 divergence classes fall
// outside the bit-level argument and are policy, not accident: stage-II
// reservoir sampling runs per shard when one provenance exceeds SampleL
// locally (unreached at the default SampleL = 1<<20), and a given K fixes
// its own merge-tree shape (results are deterministic per K, compared
// across K under RefTol).
//
// For a fixed K, results remain bit-identical for any Workers value — the
// per-shard engines keep their worker-count-independence contract, and the
// merge order is a pure function of the shard tables.
package shard
