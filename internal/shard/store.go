package shard

import (
	"fmt"
	"path/filepath"

	"kfusion/internal/extract"
	"kfusion/internal/genstore"
)

// Stores is the durability layer under a sharded pipeline: one genstore
// generation store per shard, living in DIR/shard-000 … DIR/shard-NNN. Each
// shard store carries the full per-shard crash-recovery ladder (snapshot +
// write-ahead journal, checksummed, atomic); the coordinator-level protocol
// keeps their batch sequences in lockstep by appending every batch to every
// shard — empty slices included — so the per-shard Batches counters are all
// the same global sequence number.
//
// The one gap the ladder cannot bridge alone is a crash BETWEEN the per-shard
// appends of a single batch: the first shards have journaled it, the rest
// have not, and each half recovers a consistent but mutually skewed state.
// OpenStores detects that skew (and a shard-count mismatch) at open and
// refuses with an error naming the shards, rather than silently fusing a
// corpus with a batch half-applied; the remedy is to remove the state
// directory and recompile from the feed (see docs/OPERATIONS.md).
type Stores struct {
	dir    string
	stores []*genstore.Store
}

// ShardDir names shard s's state directory under dir.
func ShardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}

// OpenStores opens (or creates) the K per-shard generation stores under dir
// and returns the recovered per-shard states, apply-replayed exactly like
// genstore.Open. It refuses a directory whose recovered states disagree on
// the batch sequence number — the signature of a crash between the per-shard
// appends of one batch — or whose method binding disagrees with the unsharded
// store contract the caller enforces per state.
func OpenStores(dir string, k int, apply genstore.ApplyFunc) (*Stores, []*genstore.State, error) {
	if err := validateK(k); err != nil {
		return nil, nil, err
	}
	st := &Stores{dir: dir, stores: make([]*genstore.Store, k)}
	states := make([]*genstore.State, k)
	for s := 0; s < k; s++ {
		store, state, err := genstore.Open(ShardDir(dir, s), apply)
		if err != nil {
			st.Close()
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		st.stores[s] = store
		states[s] = state
	}
	for s := 1; s < k; s++ {
		if states[s].Batches != states[0].Batches {
			st.Close()
			return nil, nil, fmt.Errorf(
				"shard: state dir %s is skewed: shard 0 has %d batches but shard %d has %d — "+
					"a previous run crashed between per-shard appends of one batch; "+
					"remove the state directory and recompile from the feed", dir, states[0].Batches, s, states[s].Batches)
		}
	}
	return st, states, nil
}

// Batches reports the common batch sequence number of the recovered states
// (OpenStores guarantees they agree).
func Batches(states []*genstore.State) int {
	if len(states) == 0 {
		return 0
	}
	return states[0].Batches
}

// Consumed sums the per-shard feed cursors. Every record routes to exactly
// one shard, so with an apply function that counts its batch lengths the sum
// is the global feed cursor a resumed driver skips to.
func Consumed(states []*genstore.State) int {
	n := 0
	for _, st := range states {
		n += st.Consumed
	}
	return n
}

// Append routes one extraction batch and journals-then-applies each shard's
// slice to its store, in ascending shard order. Every shard receives an
// append — empty slices too — so the batch sequence numbers stay in
// lockstep; the per-shard apply functions see exactly the slices a replay
// would.
func (st *Stores) Append(states []*genstore.State, xs []extract.Extraction) error {
	parts := SplitExtractions(xs, len(st.stores))
	for s, store := range st.stores {
		if err := store.Append(states[s], parts[s]); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Snapshot writes every shard's state to its store (ascending shard order),
// each with genstore's atomic temp-file + fsync + rename protocol.
func (st *Stores) Snapshot(states []*genstore.State) error {
	for s, store := range st.stores {
		if err := store.Snapshot(states[s]); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Degradations concatenates the per-shard recovery reports, each prefixed
// with its shard directory.
func (st *Stores) Degradations() []string {
	var out []string
	for s, store := range st.stores {
		for _, d := range store.Degradations() {
			out = append(out, fmt.Sprintf("shard-%03d: %s", s, d))
		}
	}
	return out
}

// Close closes every shard store, returning the first error.
func (st *Stores) Close() error {
	var first error
	for _, store := range st.stores {
		if store == nil {
			continue
		}
		if err := store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
