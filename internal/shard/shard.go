package shard

import (
	"fmt"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Of routes a data item to a shard: its 64-bit FNV hash mod k. Every triple
// of the item — and therefore every extraction, claim, statement and
// candidate referencing it — belongs to shard Of(item, k).
func Of(item kb.DataItem, k int) int {
	return int(item.Hash() % uint64(k))
}

// SplitExtractions partitions an extraction batch into k per-shard batches
// by data item, preserving input order within each shard. The result always
// has k slices; shards untouched by the batch get nil.
func SplitExtractions(xs []extract.Extraction, k int) [][]extract.Extraction {
	out := make([][]extract.Extraction, k)
	if k == 1 {
		out[0] = xs
		return out
	}
	for _, x := range xs {
		s := Of(x.Triple.Item(), k)
		out[s] = append(out[s], x)
	}
	return out
}

// SplitClaims partitions a claim batch into k per-shard batches by the
// claimed triple's data item, preserving input order within each shard.
func SplitClaims(claims []fusion.Claim, k int) [][]fusion.Claim {
	out := make([][]fusion.Claim, k)
	if k == 1 {
		out[0] = claims
		return out
	}
	for _, c := range claims {
		s := Of(c.Triple.Item(), k)
		out[s] = append(out[s], c)
	}
	return out
}

func validateK(k int) error {
	if k < 1 {
		return fmt.Errorf("shard: K must be >= 1, got %d", k)
	}
	return nil
}

// loc addresses one entity's slice in one shard: the shard index and the
// entity's local interned ID there. Global merge tables hold each entity's
// locs in ascending shard order — the fold order of the cross-shard
// Pairwise merges.
type loc struct {
	shard int32
	local int32
}

// table is the cross-shard identity map for one interned ID space
// (provenances, sources, extractors): global IDs assigned in (shard,
// first-occurrence) order, with both directions materialized. Appends only
// ever extend it — global IDs are as append-stable as the underlying
// graphs' local IDs.
type table struct {
	id   map[string]int32 // key -> global ID
	keys []string         // global ID -> key
	l2g  [][]int32        // shard -> local ID -> global ID
	g2l  [][]loc          // global ID -> holders in ascending shard order
}

func newTable(k int) *table {
	return &table{id: make(map[string]int32), l2g: make([][]int32, k)}
}

// extend registers shard s's local IDs [len(l2g[s]), n) under their keys.
// Called after every compile/append, in shard order, so global IDs are
// deterministic for a given feed and shard count.
func (t *table) extend(s, n int, key func(int32) string) {
	for local := int32(len(t.l2g[s])); local < int32(n); local++ {
		k := key(local)
		g, ok := t.id[k]
		if !ok {
			g = int32(len(t.keys))
			t.id[k] = g
			t.keys = append(t.keys, k)
			t.g2l = append(t.g2l, nil)
		}
		t.l2g[s] = append(t.l2g[s], g)
		// Insert in ascending shard order (a later append can introduce an
		// existing key to an earlier shard): the fold order of the merge
		// then depends only on which shards hold the key, never on the
		// append history — chunked feeds merge bit-identically to one-shot
		// compiles of the same content.
		hold := t.g2l[g]
		at := len(hold)
		for at > 0 && hold[at-1].shard > int32(s) {
			at--
		}
		hold = append(hold, loc{})
		copy(hold[at+1:], hold[at:])
		hold[at] = loc{shard: int32(s), local: local}
		t.g2l[g] = hold
	}
}

func (t *table) n() int { return len(t.keys) }
