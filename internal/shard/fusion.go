package shard

import (
	"fmt"

	"kfusion/internal/csr"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
)

// Fusion is the sharded claim-fusion pipeline: K shard-local ClaimStreams
// and compiled claim graphs grown by Append, fused in lockstep EM rounds
// with the cross-shard stage-II merge described in the package comment.
// Single-writer state like ClaimStream: Append and Fuse calls must not
// race (concurrent Fuse calls would also race on the merge scratch).
type Fusion struct {
	k       int
	gran    fusion.Granularity
	streams []*fusion.ClaimStream
	graphs  []*fusion.Compiled
	provs   *table
	claims  int
}

// NewFusion returns an empty K-shard fusion pipeline flattening extractions
// under gran. K = 1 degrades to the unsharded streaming pipeline
// (bit-identical results, pinned by the property tests).
func NewFusion(k int, gran fusion.Granularity) (*Fusion, error) {
	if err := validateK(k); err != nil {
		return nil, err
	}
	f := &Fusion{
		k:       k,
		gran:    gran,
		streams: make([]*fusion.ClaimStream, k),
		graphs:  make([]*fusion.Compiled, k),
		provs:   newTable(k),
	}
	for s := range f.streams {
		f.streams[s] = fusion.NewClaimStream(gran)
	}
	return f, nil
}

// NewFusionFromShards reassembles a coordinator over restored per-shard
// graphs (e.g. genstore states): graphs[i] must be the graph shard i's feed
// slice compiled to — every item it holds hashing to shard i under
// len(graphs) — as produced by a prior Fusion with the same K and
// granularity. Each shard's ClaimStream reseeds its cross-batch dedup from
// the graph's claims, so subsequent Appends continue the stream exactly.
func NewFusionFromShards(graphs []*fusion.Compiled, gran fusion.Granularity) (*Fusion, error) {
	f, err := NewFusion(len(graphs), gran)
	if err != nil {
		return nil, err
	}
	for s, g := range graphs {
		if g == nil {
			g = fusion.MustCompile(nil)
		}
		f.graphs[s] = g
		f.streams[s] = fusion.SeedClaimStream(gran, g)
		f.claims += g.NumClaims()
		f.extendProvs(s)
	}
	return f, nil
}

// K reports the shard count.
func (f *Fusion) K() int { return f.k }

// Granularity reports the provenance granularity the streams flatten under.
func (f *Fusion) Granularity() fusion.Granularity { return f.gran }

// NumClaims reports the deduplicated claims across all shards.
func (f *Fusion) NumClaims() int { return f.claims }

// NumProvenances reports the global (cross-shard) provenance count.
func (f *Fusion) NumProvenances() int { return f.provs.n() }

// Shard exposes shard s's compiled graph (nil until the first Append) —
// the handle per-shard persistence and memory accounting work against.
func (f *Fusion) Shard(s int) *fusion.Compiled { return f.graphs[s] }

// Append routes one extraction batch to its shards, flattens each slice
// through the shard's ClaimStream (the (provenance, triple) dedup is
// shard-local because the triple's item fixes the shard), and compiles or
// appends each shard's graph. Shards receiving nothing are untouched.
func (f *Fusion) Append(xs []extract.Extraction) error {
	parts := SplitExtractions(xs, f.k)
	for s := 0; s < f.k; s++ {
		batch := f.streams[s].Add(parts[s])
		f.claims += len(batch)
		switch {
		case f.graphs[s] == nil:
			g, err := fusion.Compile(batch)
			if err != nil {
				return fmt.Errorf("shard %d: compile: %w", s, err)
			}
			f.graphs[s] = g
		case len(batch) > 0:
			g, err := f.graphs[s].Append(batch)
			if err != nil {
				return fmt.Errorf("shard %d: append: %w", s, err)
			}
			f.graphs[s] = g
		}
		f.extendProvs(s)
	}
	return nil
}

func (f *Fusion) extendProvs(s int) {
	g := f.graphs[s]
	f.provs.extend(s, g.NumProvenances(), func(p int32) string { return g.ProvKey(int(p)) })
}

// Fuse runs one fusion configuration across the shards and merges the
// results: fused triples in shard-major compiled order, the global
// provenance-accuracy map, and Rounds from the coordinator's lockstep loop.
// The OnRound hook is not supported (a shard's round is a partial view).
func (f *Fusion) Fuse(cfg fusion.Config) (*fusion.Result, error) {
	return f.fuse(cfg, nil)
}

// FuseWarm is Fuse seeded from a previous sharded result — provenances in
// prev.ProvAccuracy start there (and count as evaluated), exactly like the
// unsharded FuseWarm. Keys are granularity strings, so a result from any
// shard count seeds any other.
func (f *Fusion) FuseWarm(cfg fusion.Config, prev *fusion.Result) (*fusion.Result, error) {
	return f.fuse(cfg, prev)
}

func (f *Fusion) fuse(cfg fusion.Config, prev *fusion.Result) (*fusion.Result, error) {
	return fuseShards(f.k, f.graphs, f.provs, cfg, prev)
}

// FuseShards runs one lockstep sharded fusion over externally-maintained
// per-shard graphs — the entry point for drivers that grow the graphs
// through their own durability layer (per-shard genstore states) rather than
// through a live Fusion coordinator. graphs[i] must hold exactly the claims
// whose items hash to shard i under K = len(graphs); a nil entry is an empty
// shard. The cross-shard provenance table is rebuilt per call (cheap:
// provenances are few), so FuseShards(graphs, cfg, prev) equals a
// NewFusionFromShards(graphs).FuseWarm(cfg, prev) without touching the claim
// streams.
func FuseShards(graphs []*fusion.Compiled, cfg fusion.Config, prev *fusion.Result) (*fusion.Result, error) {
	if err := validateK(len(graphs)); err != nil {
		return nil, err
	}
	gs := make([]*fusion.Compiled, len(graphs))
	provs := newTable(len(graphs))
	for s, g := range graphs {
		if g == nil {
			g = fusion.MustCompile(nil)
		}
		gs[s] = g
		provs.extend(s, g.NumProvenances(), func(p int32) string { return g.ProvKey(int(p)) })
	}
	return fuseShards(len(gs), gs, provs, cfg, prev)
}

func fuseShards(k int, graphs []*fusion.Compiled, provs *table, cfg fusion.Config, prev *fusion.Result) (*fusion.Result, error) {
	if cfg.OnRound != nil {
		return nil, fmt.Errorf("shard: Config.OnRound is not supported in sharded fusion")
	}
	for s, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("shard %d: Fuse before first Append", s)
		}
	}
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}
	runs := make([]*fusion.Run, k)
	for s, g := range graphs {
		r, err := g.NewRun(cfg)
		if err != nil {
			return nil, err
		}
		runs[s] = r
	}

	nG := provs.n()
	globalAcc := make([]float64, nG)
	evaluated := make([]bool, nG)
	for g := range globalAcc {
		globalAcc[g] = cfg.DefaultAccuracy
	}
	if prev != nil && len(prev.ProvAccuracy) > 0 {
		for g, key := range provs.keys {
			if a, ok := prev.ProvAccuracy[key]; ok {
				globalAcc[g] = a
				evaluated[g] = true
			}
		}
	}
	if cfg.GoldLabeler != nil {
		trueG := make([]int64, nG)
		labeledG := make([]int64, nG)
		for s, r := range runs {
			trueN, labeled := r.GoldCounts()
			for local, g := range provs.l2g[s] {
				trueG[g] += int64(trueN[local])
				labeledG[g] += int64(labeled[local])
			}
		}
		for g := range labeledG {
			if labeledG[g] == 0 {
				continue
			}
			globalAcc[g] = fusion.GoldInitAccuracy(trueG[g], labeledG[g])
			evaluated[g] = true
		}
	}
	broadcast := func() {
		for s, r := range runs {
			for local, g := range provs.l2g[s] {
				if evaluated[g] {
					r.SetProvAccuracy(int32(local), globalAcc[g])
				}
			}
		}
	}
	broadcast()

	rounds := 0
	if cfg.Method == fusion.Vote {
		for _, r := range runs {
			r.StageI(0)
		}
		rounds = 1
	} else {
		sums := make([][]float64, k)
		cnts := make([][]int32, k)
		for s, r := range runs {
			sums[s] = make([]float64, r.NumProvenances())
			cnts[s] = make([]int32, r.NumProvenances())
		}
		parts := make([]float64, 0, k)
		for rounds < cfg.Rounds {
			r := rounds
			for _, run := range runs {
				run.StageI(r)
			}
			for s, run := range runs {
				run.ProvPartials(r, sums[s], cnts[s])
			}
			maxDelta := 0.0
			for g, hold := range provs.g2l {
				parts = parts[:0]
				var cnt int64
				for _, l := range hold {
					parts = append(parts, sums[l.shard][l.local])
					cnt += int64(cnts[l.shard][l.local])
				}
				if cnt == 0 {
					continue // never scored anywhere: keeps its accuracy
				}
				acc := csr.Pairwise(parts, csr.AddFloat64) / float64(cnt)
				if d := acc - globalAcc[g]; d > maxDelta {
					maxDelta = d
				} else if -d > maxDelta {
					maxDelta = -d
				}
				globalAcc[g] = acc
				evaluated[g] = true
			}
			rounds++
			broadcast()
			if maxDelta < eps {
				break
			}
		}
	}

	out := &fusion.Result{Rounds: rounds}
	for _, run := range runs {
		res := run.Finish(rounds)
		out.Triples = append(out.Triples, res.Triples...)
		out.Unpredicted += res.Unpredicted
	}
	out.ProvAccuracy = make(map[string]float64, nG)
	for g, key := range provs.keys {
		out.ProvAccuracy[key] = globalAcc[g]
	}
	return out, nil
}
