package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/twolayer"
)

// testExtractions builds a synthetic stream with heavy (item, source,
// extractor) collisions so claim dedup, cross-shard provenances, and the
// ghost extractor sets all get exercised: a source's extractions spread over
// many items, so for K > 1 almost every source and extractor spans shards.
func testExtractions(rng *rand.Rand, n int) []extract.Extraction {
	xs := make([]extract.Extraction, n)
	for i := range xs {
		site := fmt.Sprintf("site%d", rng.Intn(7))
		xs[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", rng.Intn(40))),
				Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", rng.Intn(5))),
				Object:    kb.StringObject(fmt.Sprintf("v%d", rng.Intn(6))),
			},
			Extractor:  fmt.Sprintf("E%d", rng.Intn(6)),
			Pattern:    fmt.Sprintf("pat%d", rng.Intn(3)),
			URL:        fmt.Sprintf("http://%s/page%d", site, rng.Intn(9)),
			Site:       site,
			Confidence: -1,
		}
	}
	return xs
}

// goldLabeler labels a deterministic half of the triples.
func goldLabeler(t kb.Triple) (bool, bool) {
	h := 0
	for _, b := range []byte(t.Encode()) {
		h = h*31 + int(b)
	}
	if h%3 == 0 {
		return false, false
	}
	return h%2 == 0, true
}

func fusionConfigs() map[string]fusion.Config {
	vote := fusion.VoteConfig()
	accu := fusion.AccuConfig()
	pop := fusion.PopAccuConfig()
	popPlus := fusion.PopAccuPlusConfig(goldLabeler)
	unsup := fusion.PopAccuPlusUnsupConfig()
	return map[string]fusion.Config{
		"vote":     vote,
		"accu":     accu,
		"popaccu":  pop,
		"popplus":  popPlus,
		"popunsup": unsup,
	}
}

// unshardedFuse is the reference single-graph streaming pipeline.
func unshardedFuse(t *testing.T, xs []extract.Extraction, cfg fusion.Config) *fusion.Result {
	t.Helper()
	stream := fusion.NewClaimStream(cfg.Granularity)
	g := fusion.MustCompile(stream.Add(xs))
	res, err := g.Fuse(cfg)
	if err != nil {
		t.Fatalf("unsharded fuse: %v", err)
	}
	return res
}

func shardedFuse(t *testing.T, xs []extract.Extraction, k int, cfg fusion.Config) *fusion.Result {
	t.Helper()
	f, err := NewFusion(k, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(xs); err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuse(cfg)
	if err != nil {
		t.Fatalf("sharded fuse K=%d: %v", k, err)
	}
	return res
}

// sortedTriples returns a result's fused triples in canonical (encoded
// triple) order, so shard-major output order can be compared across K.
func sortedTriples(res *fusion.Result) []fusion.FusedTriple {
	out := append([]fusion.FusedTriple(nil), res.Triples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Triple.Encode() < out[j].Triple.Encode() })
	return out
}

// requireBitIdentical asserts two results match exactly, including output
// order and every float bit.
func requireBitIdentical(t *testing.T, tag string, want, got *fusion.Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Unpredicted != want.Unpredicted || len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: shape differs: rounds %d/%d unpredicted %d/%d triples %d/%d",
			tag, got.Rounds, want.Rounds, got.Unpredicted, want.Unpredicted, len(got.Triples), len(want.Triples))
	}
	for i := range want.Triples {
		w, g := want.Triples[i], got.Triples[i]
		if w != g {
			t.Fatalf("%s: triple %d differs:\nwant %+v\ngot  %+v", tag, i, w, g)
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: prov accuracy sizes differ: %d vs %d", tag, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for k, w := range want.ProvAccuracy {
		if g, ok := got.ProvAccuracy[k]; !ok || g != w {
			t.Fatalf("%s: prov %q accuracy %v, want %v", tag, k, g, w)
		}
	}
}

// requireCloseToReference asserts integer outputs match exactly (after
// canonical ordering) and float outputs agree within the documented RefTol.
func requireCloseToReference(t *testing.T, tag string, want, got *fusion.Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Unpredicted != want.Unpredicted || len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: shape differs: rounds %d/%d unpredicted %d/%d triples %d/%d",
			tag, got.Rounds, want.Rounds, got.Unpredicted, want.Unpredicted, len(got.Triples), len(want.Triples))
	}
	ws, gs := sortedTriples(want), sortedTriples(got)
	for i := range ws {
		w, g := ws[i], gs[i]
		if w.Triple != g.Triple || w.Predicted != g.Predicted ||
			w.Provenances != g.Provenances || w.ItemProvenances != g.ItemProvenances || w.Extractors != g.Extractors {
			t.Fatalf("%s: integer fields differ at %d:\nwant %+v\ngot  %+v", tag, i, w, g)
		}
		if !twolayer.CloseToReference(w.Probability, g.Probability) {
			t.Fatalf("%s: %s probability %v vs %v beyond RefTol", tag, w.Triple.Encode(), g.Probability, w.Probability)
		}
	}
	for k, w := range want.ProvAccuracy {
		g, ok := got.ProvAccuracy[k]
		if !ok || !twolayer.CloseToReference(w, g) {
			t.Fatalf("%s: prov %q accuracy %v, want %v within RefTol", tag, k, g, w)
		}
	}
}

// TestFusionShardOneBitIdentical pins the K=1 anchor: the sharded pipeline
// with one shard is bit-for-bit the unsharded streaming pipeline, for every
// method family.
func TestFusionShardOneBitIdentical(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(7)), 4000)
	for name, cfg := range fusionConfigs() {
		want := unshardedFuse(t, xs, cfg)
		got := shardedFuse(t, xs, 1, cfg)
		requireBitIdentical(t, name+"/K=1", want, got)
	}
}

// TestFusionShardCountIndependence pins the K>1 policy: K in {2,4,8} agrees
// with K=1 exactly on every integer output and within RefTol on every float.
func TestFusionShardCountIndependence(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(8)), 4000)
	for name, cfg := range fusionConfigs() {
		want := shardedFuse(t, xs, 1, cfg)
		for _, k := range []int{2, 4, 8} {
			got := shardedFuse(t, xs, k, cfg)
			requireCloseToReference(t, fmt.Sprintf("%s/K=%d", name, k), want, got)
		}
	}
}

// TestFusionShardWorkerIndependence: for a fixed K, results are bit-identical
// for any Workers value (the per-shard engines keep their contract and the
// merge order is worker-free).
func TestFusionShardWorkerIndependence(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(9)), 3000)
	cfg := fusion.PopAccuConfig()
	cfg.Workers = 1
	want := shardedFuse(t, xs, 4, cfg)
	for _, workers := range []int{2, 3, 8} {
		cfg.Workers = workers
		got := shardedFuse(t, xs, 4, cfg)
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), want, got)
	}
}

// TestFusionShardAppendVsOneShot: for a fixed K, growing the pipeline in
// chunks fuses bit-identically to one Append of the whole feed — the
// sharded extension of the append==recompile contract.
func TestFusionShardAppendVsOneShot(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(10)), 4000)
	cfg := fusion.PopAccuConfig()
	for _, k := range []int{1, 3} {
		want := shardedFuse(t, xs, k, cfg)
		f, err := NewFusion(k, cfg.Granularity)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(xs); lo += 1000 {
			hi := lo + 1000
			if hi > len(xs) {
				hi = len(xs)
			}
			if err := f.Append(xs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := f.Fuse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, fmt.Sprintf("K=%d chunked", k), want, got)
	}
}

// TestFusionShardWarm: FuseWarm over a sharded pipeline matches the
// unsharded warm start bit-for-bit at K=1, and a warm start from a prior
// generation's result works across appends.
func TestFusionShardWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := testExtractions(rng, 4000)
	batch := testExtractions(rng, 800)
	cfg := fusion.PopAccuConfig()

	stream := fusion.NewClaimStream(cfg.Granularity)
	g := fusion.MustCompile(stream.Add(xs))
	prevU, err := g.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g = g.MustAppend(stream.Add(batch))
	wantWarm, err := g.FuseWarm(cfg, prevU)
	if err != nil {
		t.Fatal(err)
	}

	f, err := NewFusion(1, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(xs); err != nil {
		t.Fatal(err)
	}
	prevS, err := f.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "warm/prev", prevU, prevS)
	if err := f.Append(batch); err != nil {
		t.Fatal(err)
	}
	gotWarm, err := f.FuseWarm(cfg, prevS)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "warm/K=1", wantWarm, gotWarm)
}

// TestFusionFromShards: persisting the per-shard graphs and reassembling a
// coordinator over them continues the pipeline (append + fuse) exactly.
func TestFusionFromShards(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := testExtractions(rng, 3000)
	batch := testExtractions(rng, 700)
	cfg := fusion.PopAccuConfig()
	const k = 3

	f, err := NewFusion(k, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(xs); err != nil {
		t.Fatal(err)
	}
	graphs := make([]*fusion.Compiled, k)
	for s := range graphs {
		graphs[s] = f.Shard(s)
	}
	restored, err := NewFusionFromShards(graphs, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := restored.Append(batch); err != nil {
		t.Fatal(err)
	}
	want, err := f.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "restored", want, got)
}

// TestFuseShardsMatchesCoordinator: the fuse-only entry point over external
// graphs is bit-identical to the live coordinator's FuseWarm.
func TestFuseShardsMatchesCoordinator(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(15)), 2500)
	cfg := fusion.PopAccuConfig()
	for _, k := range []int{1, 3} {
		f, err := NewFusion(k, cfg.Granularity)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(xs); err != nil {
			t.Fatal(err)
		}
		prev, err := f.Fuse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.FuseWarm(cfg, prev)
		if err != nil {
			t.Fatal(err)
		}
		graphs := make([]*fusion.Compiled, k)
		for s := range graphs {
			graphs[s] = f.Shard(s)
		}
		got, err := FuseShards(graphs, cfg, prev)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, fmt.Sprintf("FuseShards/K=%d", k), want, got)
	}
}

// TestSplitRouting: the split helpers agree with Of and partition their
// input completely.
func TestSplitRouting(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(13)), 1000)
	for _, k := range []int{1, 2, 5} {
		parts := SplitExtractions(xs, k)
		if len(parts) != k {
			t.Fatalf("K=%d: got %d parts", k, len(parts))
		}
		total := 0
		for s, part := range parts {
			total += len(part)
			for _, x := range part {
				if Of(x.Triple.Item(), k) != s {
					t.Fatalf("K=%d: extraction for %v routed to shard %d", k, x.Triple.Item(), s)
				}
			}
		}
		if total != len(xs) {
			t.Fatalf("K=%d: split covers %d of %d", k, total, len(xs))
		}
	}
	claims := fusion.Claims(testExtractions(rand.New(rand.NewSource(14)), 500), fusion.GranExtractorURL)
	parts := SplitClaims(claims, 4)
	total := 0
	for s, part := range parts {
		total += len(part)
		for _, c := range part {
			if Of(c.Triple.Item(), 4) != s {
				t.Fatalf("claim for %v routed to shard %d", c.Triple.Item(), s)
			}
		}
	}
	if total != len(claims) {
		t.Fatalf("claim split covers %d of %d", total, len(claims))
	}
}
