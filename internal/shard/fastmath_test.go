package shard

// FastMath across shard counts: the coordinators thread Config.FastMath
// through to every shard's engine, and the sharded determinism contract
// must survive the kernel swap — K=1 stays bit-for-bit the unsharded fast
// engine, any K is bit-identical across Workers, and K>1 lands within
// mathx.FastTol of K=1 (the shard merge re-groups the same sums it
// re-groups on the exact path; FastTol is the documented engine-level
// bound for the fast kernels). Part of CI's fastmath job.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/mathx"
	"kfusion/internal/twolayer"
)

// requireWithinFastTol is requireCloseToReference with mathx.FastTol in
// place of RefTol on the float outputs.
func requireWithinFastTol(t *testing.T, tag string, want, got *fusion.Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Unpredicted != want.Unpredicted || len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: shape differs: rounds %d/%d unpredicted %d/%d triples %d/%d",
			tag, got.Rounds, want.Rounds, got.Unpredicted, want.Unpredicted, len(got.Triples), len(want.Triples))
	}
	ws, gs := sortedTriples(want), sortedTriples(got)
	for i := range ws {
		w, g := ws[i], gs[i]
		if w.Triple != g.Triple || w.Predicted != g.Predicted ||
			w.Provenances != g.Provenances || w.ItemProvenances != g.ItemProvenances || w.Extractors != g.Extractors {
			t.Fatalf("%s: integer fields differ at %d:\nwant %+v\ngot  %+v", tag, i, w, g)
		}
		if math.Abs(w.Probability-g.Probability) > mathx.FastTol {
			t.Fatalf("%s: %s probability %v vs %v beyond FastTol", tag, w.Triple.Encode(), g.Probability, w.Probability)
		}
	}
	for k, w := range want.ProvAccuracy {
		g, ok := got.ProvAccuracy[k]
		if !ok || math.Abs(w-g) > mathx.FastTol {
			t.Fatalf("%s: prov %q accuracy %v, want %v within FastTol", tag, k, g, w)
		}
	}
}

// TestFusionFastMathShardSweep: single-layer fusion under FastMath — the
// K=1 anchor is bit-identical to the unsharded fast pipeline, K in {2,4}
// stays within FastTol of K=1, and Workers never perturbs a bit at fixed K.
func TestFusionFastMathShardSweep(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(47)), 4000)
	cfg := fusion.PopAccuConfig()
	cfg.FastMath = true

	want := unshardedFuse(t, xs, cfg)
	got := shardedFuse(t, xs, 1, cfg)
	requireBitIdentical(t, "fusion/fastmath/K=1", want, got)

	for _, k := range []int{2, 4} {
		requireWithinFastTol(t, fmt.Sprintf("fusion/fastmath/K=%d", k),
			got, shardedFuse(t, xs, k, cfg))
	}

	fixedK := shardedFuse(t, xs, 3, cfg)
	for _, workers := range []int{2, 7} {
		c := cfg
		c.Workers = workers
		requireBitIdentical(t, fmt.Sprintf("fusion/fastmath/workers=%d", workers),
			fixedK, shardedFuse(t, xs, 3, c))
	}
}

// TestTwoLayerFastMathShardSweep: the same sweep for the two-layer model,
// whose merge crosses shards twice per round plus the ghost-miss
// correction — the strongest exercise of the fast kernels' shard contract.
func TestTwoLayerFastMathShardSweep(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(48)), 4000)
	cfg := twoLayerConfig()
	cfg.FastMath = true

	g := extract.Compile(xs, cfg.SiteLevel)
	want, wantState, err := twolayer.FuseCompiledWarm(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, got := shardedTwoLayer(t, xs, 1, cfg)
	requireBitIdentical(t, "twolayer/fastmath/K=1", want, got.res)
	requireSameState(t, "fastmath/K=1", wantState, got.state)

	for _, k := range []int{2, 4} {
		_, gotK := shardedTwoLayer(t, xs, k, cfg)
		requireWithinFastTol(t, fmt.Sprintf("twolayer/fastmath/K=%d", k), got.res, gotK.res)
	}

	_, fixedK := shardedTwoLayer(t, xs, 3, cfg)
	for _, workers := range []int{2, 7} {
		c := cfg
		c.Workers = workers
		_, gotW := shardedTwoLayer(t, xs, 3, c)
		requireBitIdentical(t, fmt.Sprintf("twolayer/fastmath/workers=%d", workers), fixedK.res, gotW.res)
		requireSameState(t, fmt.Sprintf("fastmath/workers=%d", workers), fixedK.state, gotW.state)
	}
}
