package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/twolayer"
)

func twoLayerConfig() twolayer.Config {
	cfg := twolayer.DefaultConfig()
	cfg.Workers = 1
	return cfg
}

func shardedTwoLayer(t *testing.T, xs []extract.Extraction, k int, cfg twolayer.Config) (*TwoLayer, *twolayerResult) {
	t.Helper()
	tl, err := NewTwoLayer(k, cfg.SiteLevel)
	if err != nil {
		t.Fatal(err)
	}
	tl.Append(xs)
	res, state, err := tl.Fuse(cfg)
	if err != nil {
		t.Fatalf("sharded two-layer K=%d: %v", k, err)
	}
	return tl, &twolayerResult{res: res, state: state}
}

type twolayerResult struct {
	res   *fusion.Result
	state *twolayer.State
}

// TestTwoLayerShardOneBitIdentical pins the K=1 anchor: one shard is
// bit-for-bit the unsharded compiled engine, including the returned State.
func TestTwoLayerShardOneBitIdentical(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(21)), 4000)
	for _, siteLevel := range []bool{false, true} {
		cfg := twoLayerConfig()
		cfg.SiteLevel = siteLevel
		g := extract.Compile(xs, siteLevel)
		want, wantState, err := twolayer.FuseCompiledWarm(g, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, got := shardedTwoLayer(t, xs, 1, cfg)
		requireBitIdentical(t, fmt.Sprintf("twolayer/site=%v/K=1", siteLevel), want, got.res)
		requireSameState(t, "K=1", wantState, got.state)
	}
}

// TestTwoLayerShardCountIndependence pins the K>1 policy for the two-layer
// model: K in {2,4} agrees with K=1 exactly on integers and within RefTol
// on floats. The two-layer merge crosses shards twice per round (source
// evidence and extractor rates) plus the ghost-miss correction, so this is
// the strongest exercise of the documented tolerance.
func TestTwoLayerShardCountIndependence(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(22)), 4000)
	cfg := twoLayerConfig()
	_, want := shardedTwoLayer(t, xs, 1, cfg)
	for _, k := range []int{2, 4} {
		_, got := shardedTwoLayer(t, xs, k, cfg)
		requireCloseToReference(t, fmt.Sprintf("twolayer/K=%d", k), want.res, got.res)
	}
}

// TestTwoLayerShardWorkerIndependence: for a fixed K, results are
// bit-identical for any Workers value.
func TestTwoLayerShardWorkerIndependence(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(23)), 3000)
	cfg := twoLayerConfig()
	_, want := shardedTwoLayer(t, xs, 3, cfg)
	for _, workers := range []int{2, 7} {
		cfg.Workers = workers
		_, got := shardedTwoLayer(t, xs, 3, cfg)
		requireBitIdentical(t, fmt.Sprintf("twolayer/workers=%d", workers), want.res, got.res)
		requireSameState(t, fmt.Sprintf("workers=%d", workers), want.state, got.state)
	}
}

// TestTwoLayerShardAppendVsOneShot: chunked appends fuse bit-identically to
// one append of the whole feed, for K=1 and K>1.
func TestTwoLayerShardAppendVsOneShot(t *testing.T) {
	xs := testExtractions(rand.New(rand.NewSource(24)), 4000)
	cfg := twoLayerConfig()
	for _, k := range []int{1, 3} {
		_, want := shardedTwoLayer(t, xs, k, cfg)
		tl, err := NewTwoLayer(k, cfg.SiteLevel)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(xs); lo += 900 {
			hi := lo + 900
			if hi > len(xs) {
				hi = len(xs)
			}
			tl.Append(xs[lo:hi])
		}
		res, state, err := tl.Fuse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, fmt.Sprintf("twolayer/K=%d chunked", k), want.res, res)
		requireSameState(t, fmt.Sprintf("K=%d chunked", k), want.state, state)
	}
}

// TestTwoLayerShardWarm: the returned State warm-starts the next generation;
// at K=1 this matches the unsharded warm path bit-for-bit.
func TestTwoLayerShardWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	xs := testExtractions(rng, 3500)
	batch := testExtractions(rng, 700)
	cfg := twoLayerConfig()

	g := extract.Compile(xs, cfg.SiteLevel)
	_, prevState, err := twolayer.FuseCompiledWarm(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	g = g.Append(batch)
	want, _, err := twolayer.FuseCompiledWarm(g, cfg, prevState)
	if err != nil {
		t.Fatal(err)
	}

	tl, first := func() (*TwoLayer, *twolayerResult) {
		tl, r := shardedTwoLayer(t, xs, 1, cfg)
		return tl, r
	}()
	requireSameState(t, "warm/prev", prevState, first.state)
	tl.Append(batch)
	got, _, err := tl.FuseWarm(cfg, first.state)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "twolayer/warm/K=1", want, got)
}

// TestTwoLayerFromShards: reassembling a coordinator over the per-shard
// graphs continues the pipeline exactly.
func TestTwoLayerFromShards(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	xs := testExtractions(rng, 3000)
	batch := testExtractions(rng, 600)
	cfg := twoLayerConfig()
	const k = 3

	tl, err := NewTwoLayer(k, cfg.SiteLevel)
	if err != nil {
		t.Fatal(err)
	}
	tl.Append(xs)
	graphs := make([]*extract.Compiled, k)
	for s := range graphs {
		graphs[s] = tl.Shard(s)
	}
	restored, err := NewTwoLayerFromShards(graphs, cfg.SiteLevel)
	if err != nil {
		t.Fatal(err)
	}
	tl.Append(batch)
	restored.Append(batch)
	want, wantState, err := tl.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotState, err := restored.Fuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "twolayer/restored", want, got)
	requireSameState(t, "restored", wantState, gotState)
}

func requireSameState(t *testing.T, tag string, want, got *twolayer.State) {
	t.Helper()
	if len(want.SrcAcc) != len(got.SrcAcc) || len(want.Recall) != len(got.Recall) || len(want.FalsePos) != len(got.FalsePos) {
		t.Fatalf("%s: state sizes differ", tag)
	}
	for i := range want.SrcAcc {
		if want.SrcAcc[i] != got.SrcAcc[i] {
			t.Fatalf("%s: SrcAcc[%d] = %v, want %v", tag, i, got.SrcAcc[i], want.SrcAcc[i])
		}
	}
	for i := range want.Recall {
		if want.Recall[i] != got.Recall[i] || want.FalsePos[i] != got.FalsePos[i] {
			t.Fatalf("%s: extractor %d rates differ", tag, i)
		}
	}
}
