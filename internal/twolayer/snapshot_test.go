package twolayer

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	st := &State{
		SrcAcc:   []float64{0.1, 0.8, 0.99},
		Recall:   []float64{0.5, 0.25},
		FalsePos: []float64{0.15, 0.05},
	}
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeState(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, st) {
		t.Fatalf("decoded state differs: got %+v want %+v", dec, st)
	}
	for cut := 0; cut < buf.Len(); cut++ {
		if _, err := DecodeState(buf.Bytes()[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
