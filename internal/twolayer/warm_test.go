package twolayer

import (
	"fmt"
	"math"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// warmStream synthesizes a deterministic extraction stream with a handful of
// mostly-consistent extractors over a growing source pool — data on which
// the two-layer EM converges (threshold-stopped), the regime WarmTol covers.
func warmStream(n int) []extract.Extraction {
	xs := make([]extract.Extraction, n)
	for i := range xs {
		val := "true"
		if (i*2654435761)%100 < 12 { // deterministic ~12% noise
			val = fmt.Sprintf("f%d", i%2)
		}
		xs[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", i%(n/10+1))),
				Predicate: "p",
				Object:    kb.StringObject(val),
			},
			Extractor:  fmt.Sprintf("X%d", i%5),
			URL:        fmt.Sprintf("http://site%d.example/page%d", i%13, i%37),
			Site:       fmt.Sprintf("site%d.example", i%13),
			Confidence: -1,
		}
	}
	return xs
}

// TestFuseCompiledWarmWithinToleranceOfCold pins the warm-start contract in
// its converged regime: seeding generation k+1 from generation k's State
// converges in no more rounds than cold start and lands within WarmTol of
// the cold-start output on every probability and accuracy.
func TestFuseCompiledWarmWithinToleranceOfCold(t *testing.T) {
	xs := warmStream(4000)
	split := len(xs) - len(xs)/10
	cfg := DefaultConfig()
	cfg.SiteLevel = true
	cfg.Rounds = 100 // let the 1e-4 threshold terminate; R=5 is a forced cut

	base := extract.Compile(xs[:split], true)
	_, prev, err := FuseCompiledWarm(base, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	next := base.Append(xs[split:])
	cold, _, err := FuseCompiledWarm(next, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, nextState, err := FuseCompiledWarm(next, cfg, prev)
	if err != nil {
		t.Fatal(err)
	}

	if cold.Rounds >= cfg.Rounds {
		t.Fatalf("cold start did not converge within %d rounds; test scenario broken", cfg.Rounds)
	}
	if warm.Rounds > cold.Rounds {
		t.Errorf("warm start took %d rounds, cold %d — warm must not be slower to converge", warm.Rounds, cold.Rounds)
	}
	if len(warm.Triples) != len(cold.Triples) {
		t.Fatalf("%d triples, want %d", len(warm.Triples), len(cold.Triples))
	}
	maxDrift := 0.0
	for i := range warm.Triples {
		w, c := warm.Triples[i], cold.Triples[i]
		if w.Triple != c.Triple || w.Provenances != c.Provenances || w.Extractors != c.Extractors {
			t.Fatalf("triple %d: structural mismatch %+v vs %+v", i, w, c)
		}
		if d := math.Abs(w.Probability - c.Probability); d > maxDrift {
			maxDrift = d
		}
	}
	for src, a := range warm.ProvAccuracy {
		if d := math.Abs(a - cold.ProvAccuracy[src]); d > maxDrift {
			maxDrift = d
		}
	}
	if maxDrift > WarmTol {
		t.Errorf("warm-vs-cold drift %.2e exceeds WarmTol %.0e", maxDrift, WarmTol)
	}
	t.Logf("warm rounds %d vs cold %d; max drift %.2e", warm.Rounds, cold.Rounds, maxDrift)

	if len(nextState.SrcAcc) != next.NumSources() || len(nextState.Recall) != next.NumExtractors() {
		t.Fatalf("returned State sized %d/%d, want %d/%d",
			len(nextState.SrcAcc), len(nextState.Recall), next.NumSources(), next.NumExtractors())
	}
}

// TestFuseCompiledWarmDeterministicAcrossWorkers pins that warm start
// preserves the bitwise worker-independence contract.
func TestFuseCompiledWarmDeterministicAcrossWorkers(t *testing.T) {
	xs := warmStream(1500)
	split := 1300
	cfg := DefaultConfig()
	cfg.SiteLevel = false

	base := extract.Compile(xs[:split], false)
	_, prev, err := FuseCompiledWarm(base, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	next := base.Append(xs[split:])
	var first *fusion.Result
	for _, workers := range []int{1, 2, 3, 7, 8} {
		c := cfg
		c.Workers = workers
		res, _, err := FuseCompiledWarm(next, c, prev)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Rounds != first.Rounds {
			t.Fatalf("workers=%d: rounds %d vs %d", workers, res.Rounds, first.Rounds)
		}
		for i := range res.Triples {
			if res.Triples[i] != first.Triples[i] {
				t.Fatalf("workers=%d: triple %d differs bitwise", workers, i)
			}
		}
		for src, a := range res.ProvAccuracy {
			if a != first.ProvAccuracy[src] {
				t.Fatalf("workers=%d: accuracy of %q differs bitwise", workers, src)
			}
		}
	}
}
