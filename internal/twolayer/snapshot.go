package twolayer

import (
	"fmt"
	"io"

	"kfusion/internal/wire"
)

// snapshotVersion versions the State wire encoding.
const snapshotVersion = 1

// EncodeState serializes warm-start state. The three vectors are ID-indexed
// and append-stable, so a decoded State seeds FuseCompiledWarm on any later
// generation of the same graph exactly as the in-memory original would.
func EncodeState(out io.Writer, st *State) error {
	w := wire.NewWriter(out)
	w.U8(snapshotVersion)
	w.F64s(st.SrcAcc)
	w.F64s(st.Recall)
	w.F64s(st.FalsePos)
	return w.Err()
}

// DecodeState reconstructs a State from EncodeState bytes.
func DecodeState(data []byte) (*State, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("twolayer: state version %d, want %d", v, snapshotVersion)
	}
	st := &State{SrcAcc: r.F64s(), Recall: r.F64s(), FalsePos: r.F64s()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("twolayer: state: %w", err)
	}
	return st, nil
}
