package twolayer

import (
	"fmt"
	"math/rand"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// randomExtractions generates a collision-heavy synthetic extraction stream:
// few subjects, values, extractors and pages, so statements stack up with
// partial extractor agreement — the regime where the two EM layers interact.
func randomExtractions(rng *rand.Rand, n int) []extract.Extraction {
	xs := make([]extract.Extraction, n)
	for i := range xs {
		site := fmt.Sprintf("site%d", rng.Intn(6))
		xs[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", rng.Intn(15))),
				Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", rng.Intn(3))),
				Object:    kb.StringObject(fmt.Sprintf("v%d", rng.Intn(5))),
			},
			Extractor: fmt.Sprintf("E%d", rng.Intn(6)),
			URL:       fmt.Sprintf("http://%s/p%d", site, rng.Intn(5)),
			Site:      site,
		}
	}
	return xs
}

// requireBitIdentical asserts two results are exactly equal: same triple
// order, bitwise-equal probabilities and accuracies, same support counts.
// This is the bar for the compiled engine against itself across Workers
// values — the reduction trees are fixed by the data, so any drift is a bug.
func requireBitIdentical(t *testing.T, label string, got, want *fusion.Result) {
	t.Helper()
	requireEquivalent(t, label, got, want, true)
}

// requireClose is requireBitIdentical with the documented RefTol on the
// float outputs (triple probabilities, source accuracies); integer outputs
// — triple order, support counts, rounds — must still match exactly. This
// is the bar for compiled-vs-reference comparisons.
func requireClose(t *testing.T, label string, got, want *fusion.Result) {
	t.Helper()
	requireEquivalent(t, label, got, want, false)
}

func requireEquivalent(t *testing.T, label string, got, want *fusion.Result, exact bool) {
	t.Helper()
	floatsMatch := func(a, b float64) bool {
		if exact {
			return a == b
		}
		return CloseToReference(a, b)
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: Rounds = %d, want %d", label, got.Rounds, want.Rounds)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", label, len(got.Triples), len(want.Triples))
	}
	for i := range got.Triples {
		g, w := got.Triples[i], want.Triples[i]
		if g.Triple != w.Triple || g.Predicted != w.Predicted ||
			g.Provenances != w.Provenances || g.ItemProvenances != w.ItemProvenances ||
			g.Extractors != w.Extractors || !floatsMatch(g.Probability, w.Probability) {
			t.Fatalf("%s: triple %d differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: %d sources, want %d", label, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for src, a := range got.ProvAccuracy {
		wa, ok := want.ProvAccuracy[src]
		if !ok {
			t.Fatalf("%s: unexpected source %q", label, src)
		}
		if !floatsMatch(a, wa) {
			t.Fatalf("%s: ProvAccuracy[%q] = %v, want %v", label, src, a, wa)
		}
	}
}

// TestCompiledMatchesReference pins the compiled flat-slice engine against
// the map-keyed reference engine — integer outputs exactly, float outputs
// within the documented refTol (the M-step's fixed-block pairwise reduction
// re-groups the reference's left-to-right sums) — across source levels,
// worker counts and input sizes (including sizes that cross the csr.ByGroup
// parallel threshold via the shared large case in the root equivalence test).
func TestCompiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 40, 2500} {
		xs := randomExtractions(rng, n)
		for _, siteLevel := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.SiteLevel = siteLevel
			want := MustFuseReference(xs, cfg)
			g := extract.Compile(xs, siteLevel)
			for _, workers := range []int{1, 4, 8} {
				c := cfg
				c.Workers = workers
				got, err := FuseCompiled(g, c)
				if err != nil {
					t.Fatalf("n=%d siteLevel=%v workers=%d: %v", n, siteLevel, workers, err)
				}
				requireClose(t, fmt.Sprintf("n=%d siteLevel=%v workers=%d", n, siteLevel, workers), got, want)
			}
		}
	}
}

// randomExtractionsWide is randomExtractions with much wider key spaces: a
// statement population in the tens of thousands, so per-extractor spans
// cover many csr.ReduceBlockSize blocks and the extraction count crosses the
// parallel-interning shard threshold — the regime where the parallel M-step
// reduction and the shard-and-merge compile actually engage.
func randomExtractionsWide(rng *rand.Rand, n int) []extract.Extraction {
	xs := make([]extract.Extraction, n)
	for i := range xs {
		site := fmt.Sprintf("site%d", rng.Intn(12))
		xs[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", rng.Intn(400))),
				Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", rng.Intn(6))),
				Object:    kb.StringObject(fmt.Sprintf("v%d", rng.Intn(8))),
			},
			Extractor: fmt.Sprintf("E%d", rng.Intn(7)),
			URL:       fmt.Sprintf("http://%s/p%d", site, rng.Intn(6)),
			Site:      site,
		}
	}
	return xs
}

// TestForcedWorkerDeterminism is the tentpole's pin: at a scale where the
// M-step reduction spans many blocks and compilation interns in parallel
// shards, the full pipeline — CompileWorkers + FuseCompiled — must produce
// bit-identical results (exact float equality) at Workers 1, 2, 3, 7 and 8.
func TestForcedWorkerDeterminism(t *testing.T) {
	xs := randomExtractionsWide(rand.New(rand.NewSource(31)), 20000)
	for _, siteLevel := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.SiteLevel = siteLevel
		cfg.Workers = 1
		base := extract.CompileWorkers(xs, siteLevel, 1)
		// Guard the regime: some extractor span must need several blocks, or
		// the pairwise fold degenerates and the test pins nothing.
		if len(base.ExtStatementBlocks()) <= base.NumExtractors() {
			t.Fatalf("siteLevel=%v: dataset too small to exercise the multi-block reduction", siteLevel)
		}
		want := MustFuseCompiled(base, cfg)
		for _, workers := range []int{2, 3, 7, 8} {
			g := extract.CompileWorkers(xs, siteLevel, workers)
			c := cfg
			c.Workers = workers
			requireBitIdentical(t, fmt.Sprintf("siteLevel=%v workers=%d", siteLevel, workers),
				MustFuseCompiled(g, c), want)
		}
	}
}

// TestFuseCompiledRejectsLevelMismatch: the graph's source grouping is baked
// in at compile time, so fusing a mismatched config must fail loudly instead
// of silently using the wrong grouping.
func TestFuseCompiledRejectsLevelMismatch(t *testing.T) {
	xs := randomExtractions(rand.New(rand.NewSource(1)), 50)
	g := extract.Compile(xs, true)
	if _, err := FuseCompiled(g, DefaultConfig()); err == nil {
		t.Fatal("site-level graph accepted URL-level config")
	}
}

// TestFuseDeterministicAcrossWorkers is the seed-stability regression test
// for the map-iteration-order nondeterminism the seed implementation had:
// results must be identical run to run and for every Workers value, for both
// engines.
func TestFuseDeterministicAcrossWorkers(t *testing.T) {
	xs := randomExtractions(rand.New(rand.NewSource(23)), 1500)
	cfg := DefaultConfig()
	cfg.SiteLevel = true

	want := MustFuse(xs, cfg)
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 2, 8} {
			c := cfg
			c.Workers = workers
			requireBitIdentical(t, fmt.Sprintf("compiled run=%d workers=%d", run, workers),
				MustFuse(xs, c), want)
		}
	}

	wantRef := MustFuseReference(xs, cfg)
	for run := 0; run < 3; run++ {
		for _, workers := range []int{1, 8} {
			c := cfg
			c.Workers = workers
			requireBitIdentical(t, fmt.Sprintf("reference run=%d workers=%d", run, workers),
				MustFuseReference(xs, c), wantRef)
		}
	}
}
