package twolayer

import (
	"math"
	"sort"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
	"kfusion/internal/mathx"
)

// FuseReference is the original map-keyed two-layer engine, retained as the
// golden oracle the compiled engine (FuseCompiled) is regression-tested
// against — the same role fusion.FuseReference plays for the claim-graph
// engine. It indexes statements, sources and extractors with string/struct
// maps and re-walks them every EM round.
//
// One behavioral fix relative to the seed implementation: the per-source
// extractor sets are kept as first-extraction-ordered slices instead of maps.
// The layer-1 log-odds is a float sum over those sets, and summing in Go's
// randomized map-iteration order made low-order result bits vary run to run;
// the ordered walk makes the reference deterministic and is the exact order
// the compiled engine's CSR spans reproduce.
func FuseReference(xs []extract.Extraction, cfg Config) (*fusion.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sourceOf := func(x extract.Extraction) string {
		if cfg.SiteLevel {
			return x.Site
		}
		return x.URL
	}

	// Indexes.
	type stKey struct {
		source string
		triple kb.Triple
	}
	type stInfo struct {
		source     string
		triple     kb.Triple
		extractors []string // extractors that extracted it there
	}
	stIdx := map[stKey]int{}
	var sts []stInfo
	extsOnSource := map[string][]string{} // source → extractors that processed it, first-extraction order
	srcAcc := map[string]float64{}
	extPar := map[string]*extParams{}
	tripleIdx := map[kb.Triple]int{}
	var triples []kb.Triple
	itemTriples := map[kb.DataItem][]int{}
	stByTriple := map[int][]int{} // triple index → st indexes

	for _, x := range xs {
		src := sourceOf(x)
		if !containsString(extsOnSource[src], x.Extractor) {
			extsOnSource[src] = append(extsOnSource[src], x.Extractor)
		}
		if _, ok := srcAcc[src]; !ok {
			srcAcc[src] = cfg.InitSourceAccuracy
		}
		if extPar[x.Extractor] == nil {
			extPar[x.Extractor] = &extParams{recall: cfg.InitRecall, falsePos: cfg.InitFalsePos}
		}
		k := stKey{source: src, triple: x.Triple}
		si, ok := stIdx[k]
		if !ok {
			si = len(sts)
			stIdx[k] = si
			sts = append(sts, stInfo{source: src, triple: x.Triple})
			ti, tok := tripleIdx[x.Triple]
			if !tok {
				ti = len(triples)
				tripleIdx[x.Triple] = ti
				triples = append(triples, x.Triple)
				itemTriples[x.Triple.Item()] = append(itemTriples[x.Triple.Item()], ti)
			}
			stByTriple[ti] = append(stByTriple[ti], si)
		}
		if !containsString(sts[si].extractors, x.Extractor) {
			sts[si].extractors = append(sts[si].extractors, x.Extractor)
		}
	}

	stated := make([]float64, len(sts))      // P(source states triple)
	tripleP := make([]float64, len(triples)) // P(triple true)
	for i := range tripleP {
		tripleP[i] = 0.5
	}

	// Layer 1 E-step: statement probabilities from extractor agreement.
	inferStatements := func() {
		job := mapreduce.Job[int, int, float64, struct{}]{
			Name: "twolayer-statements",
			Map: func(si int, emit func(int, float64)) {
				st := &sts[si]
				claimed := map[string]bool{}
				for _, e := range st.extractors {
					claimed[e] = true
				}
				logOdds := math.Log(cfg.PriorStated) - math.Log(1-cfg.PriorStated)
				for _, e := range extsOnSource[st.source] {
					p := extPar[e]
					if claimed[e] {
						//lint:ignore kflint/floatsum extsOnSource holds each source's extractors in the sorted order PR 3 established; the per-statement log-odds sum therefore adds identical terms in identical order every run.
						logOdds += math.Log(p.recall) - math.Log(p.falsePos) //lint:ignore kflint/scalarmath reference spec: the inline scalar ratio is the golden expression the compiled engine's LogRatioSlice tables are measured against.
					} else {
						//lint:ignore kflint/floatsum same fixed extsOnSource order as the branch above — the absent-extractor terms accumulate deterministically too.
						logOdds += math.Log(1-p.recall) - math.Log(1-p.falsePos) //lint:ignore kflint/scalarmath reference spec: same golden miss-ratio expression as the hit branch.
					}
				}
				emit(si, mathx.Sigmoid(logOdds))
			},
			Reduce: func(si int, vs []float64, emit func(struct{})) {
				stated[si] = vs[0]
			},
			KeyHash: func(si int) uint64 { return uint64(si)*0x9e3779b97f4a7c15 + 7 },
			Workers: cfg.Workers,
		}
		mapreduce.MustRun(job, stIndexes(len(sts)))
	}

	// Layer 2: weighted Bayesian truth inference per data item.
	items := make([]kb.DataItem, 0, len(itemTriples))
	for it := range itemTriples {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Subject != items[j].Subject {
			return items[i].Subject < items[j].Subject
		}
		return items[i].Predicate < items[j].Predicate
	})

	inferTruth := func() {
		job := mapreduce.Job[kb.DataItem, int, float64, struct{}]{
			Name: "twolayer-truth",
			Map: func(item kb.DataItem, emit func(int, float64)) {
				tis := itemTriples[item]
				scores := make([]float64, len(tis))
				for vi, ti := range tis {
					s := 0.0
					for _, si := range stByTriple[ti] {
						// Corroboration gate: an uninformed statement
						// (stated ≈ 0.5) contributes nothing, a confident
						// one (stated >= 0.95) votes with full weight.
						w := (stated[si] - 0.5) / 0.45
						if w <= 0 {
							continue
						}
						if w > 1 {
							w = 1
						}
						a := clampAcc(srcAcc[sts[si].source])
						//lint:ignore kflint/scalarmath reference spec: the scalar source log-weight is the golden expression the compiled engine's LogOddsSlice table is measured against.
						s += w * math.Log(float64(cfg.NFalse)*a/(1-a))
					}
					scores[vi] = s
				}
				unknown := float64(cfg.NFalse - len(tis))
				if unknown < 0 {
					unknown = 0
				}
				m := 0.0
				for _, s := range scores {
					if s > m {
						m = s
					}
				}
				denom := unknown * math.Exp(-m)
				for _, s := range scores {
					//lint:ignore kflint/floatsum per-item softmax over one data item's candidate triples, in the item's fixed triple order — a handful of terms, not a corpus reduction.
					denom += math.Exp(s - m) //lint:ignore kflint/scalarmath reference spec: the two-pass scalar softmax is the golden form mathx.SoftmaxInto is pinned bit-identical to.
				}
				for vi, ti := range tis {
					//lint:ignore kflint/scalarmath reference spec: same golden two-pass softmax as the denominator above.
					emit(ti, math.Exp(scores[vi]-m)/denom)
				}
			},
			Reduce: func(ti int, vs []float64, emit func(struct{})) {
				tripleP[ti] = vs[0]
			},
			KeyHash: func(ti int) uint64 { return uint64(ti)*0x9e3779b97f4a7c15 + 13 },
			Workers: cfg.Workers,
		}
		mapreduce.MustRun(job, items)
	}

	// M-step: source accuracies and extractor recall/false-positive rates.
	updateParams := func() float64 {
		// Source accuracy: expected-stated-weighted mean truth of claims.
		num := map[string]float64{}
		den := map[string]float64{}
		for si := range sts {
			ti := tripleIdx[sts[si].triple]
			w := stated[si]
			num[sts[si].source] += w * tripleP[ti]
			den[sts[si].source] += w
		}
		maxDelta := 0.0
		const anchor = 2.0 // pseudo-claims at the initial accuracy
		//lint:ignore kflint/mapiter each key updates only srcAcc[src] from that key's own (num, den), and maxDelta is a running max — both commute across visit orders.
		for src, d := range den {
			if d < 1e-9 {
				continue
			}
			// Small sources are anchored toward the prior so a source with
			// one claim does not spiral down with its own claim's
			// probability (the isolated-conflict drift).
			v := (num[src] + anchor*cfg.InitSourceAccuracy) / (d + anchor)
			if diff := math.Abs(v - srcAcc[src]); diff > maxDelta {
				maxDelta = diff
			}
			srcAcc[src] = v
		}
		// Extractor recall / false positives against expected statements.
		type extAcc struct{ hitStated, stated, hitUnstated, unstated float64 }
		ea := map[string]*extAcc{}
		for e := range extPar {
			ea[e] = &extAcc{}
		}
		for si := range sts {
			st := &sts[si]
			claimed := map[string]bool{}
			for _, e := range st.extractors {
				claimed[e] = true
			}
			for _, e := range extsOnSource[st.source] {
				a := ea[e]
				a.stated += stated[si]
				a.unstated += 1 - stated[si]
				if claimed[e] {
					a.hitStated += stated[si]
					a.hitUnstated += 1 - stated[si]
				}
			}
		}
		//lint:ignore kflint/mapiter each key rewrites only its own extractor's parameters via clampRate, a pure function of that key's tallies — disjoint per-key effects commute.
		for e, a := range ea {
			p := extPar[e]
			if a.stated > 1e-9 {
				p.recall = clampRate(a.hitStated / (a.stated + 1))
			}
			if a.unstated > 1e-9 {
				p.falsePos = clampRate(a.hitUnstated / (a.unstated + 1))
			}
		}
		return maxDelta
	}

	rounds := 0
	mapreduce.Iterate(struct{}{}, cfg.Rounds, func(_ struct{}, r int) (struct{}, bool) {
		inferStatements()
		inferTruth()
		rounds++
		return struct{}{}, updateParams() < 1e-4
	})
	inferStatements()
	inferTruth()

	// Assemble the result.
	itemCounts := map[kb.DataItem]int{}
	extractorsOf := map[int]map[string]bool{}
	for si := range sts {
		ti := tripleIdx[sts[si].triple]
		itemCounts[sts[si].triple.Item()]++
		if extractorsOf[ti] == nil {
			extractorsOf[ti] = map[string]bool{}
		}
		for _, e := range sts[si].extractors {
			extractorsOf[ti][e] = true
		}
	}
	res := &fusion.Result{Rounds: rounds, ProvAccuracy: map[string]float64{}}
	for src, a := range srcAcc {
		res.ProvAccuracy[src] = a
	}
	for ti, t := range triples {
		res.Triples = append(res.Triples, fusion.FusedTriple{
			Triple:          t,
			Probability:     tripleP[ti],
			Predicted:       true,
			Provenances:     len(stByTriple[ti]),
			ItemProvenances: itemCounts[t.Item()],
			Extractors:      len(extractorsOf[ti]),
		})
	}
	return res, nil
}

// MustFuseReference is FuseReference for statically-valid configurations.
func MustFuseReference(xs []extract.Extraction, cfg Config) *fusion.Result {
	r, err := FuseReference(xs, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

type extParams struct {
	recall   float64
	falsePos float64
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func stIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
