package twolayer

// The FastMath equivalence suite for the two-layer engine: Config.FastMath
// swaps the per-round likelihood-ratio tables, sigmoids and softmax onto the
// mathx.Fast polynomial kernels. The contract mirrors the exact path's
// RefTol policy one tolerance class up — float outputs within mathx.FastTol
// of the exact engine, discrete outputs identical, and bit-identical results
// across worker counts. CI's fastmath job runs this suite under -race.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/mathx"
)

// requireWithinFastTol is requireClose with mathx.FastTol in place of
// RefTol: integer outputs exact, float outputs within the documented
// fast-kernel engine tolerance.
func requireWithinFastTol(t *testing.T, label string, got, want *fusion.Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: Rounds = %d, want %d", label, got.Rounds, want.Rounds)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", label, len(got.Triples), len(want.Triples))
	}
	for i := range got.Triples {
		g, w := got.Triples[i], want.Triples[i]
		if g.Triple != w.Triple || g.Predicted != w.Predicted ||
			g.Provenances != w.Provenances || g.ItemProvenances != w.ItemProvenances ||
			g.Extractors != w.Extractors {
			t.Fatalf("%s: triple %d integer fields differ:\n got %+v\nwant %+v", label, i, g, w)
		}
		if math.Abs(g.Probability-w.Probability) > mathx.FastTol {
			t.Fatalf("%s: triple %d probability %v, want %v (Δ=%g beyond FastTol)",
				label, i, g.Probability, w.Probability, g.Probability-w.Probability)
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: %d sources, want %d", label, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for src, a := range got.ProvAccuracy {
		wa, ok := want.ProvAccuracy[src]
		if !ok {
			t.Fatalf("%s: unexpected source %q", label, src)
		}
		if math.Abs(a-wa) > mathx.FastTol {
			t.Fatalf("%s: ProvAccuracy[%q] = %v, want %v beyond FastTol", label, src, a, wa)
		}
	}
}

// TestFastMathMatchesExactWithinFastTol pins the iterated approximation
// bound: the fast kernels' per-call error compounds through both EM layers
// (extractor log-ratios into statement sigmoids into the per-item softmax,
// round after round), and the engine-level drift must still stay within
// mathx.FastTol on both site levels and across input scales, including the
// wide regime where the layer-1 hoist and single-hit cache carry the load.
func TestFastMathMatchesExactWithinFastTol(t *testing.T) {
	cases := []struct {
		name string
		xs   []extract.Extraction
	}{
		{"dense", randomExtractions(rand.New(rand.NewSource(17)), 1500)},
		{"wide", randomExtractionsWide(rand.New(rand.NewSource(31)), 20000)},
	}
	for _, tc := range cases {
		for _, siteLevel := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.SiteLevel = siteLevel
			g := extract.Compile(tc.xs, siteLevel)
			want := MustFuseCompiled(g, cfg)
			fast := cfg
			fast.FastMath = true
			got := MustFuseCompiled(g, fast)
			requireWithinFastTol(t, fmt.Sprintf("%s/siteLevel=%v", tc.name, siteLevel), got, want)
		}
	}
}

// TestFastMathForcedWorkerDeterminism: with FastMath on, the forced-worker
// sweep from TestForcedWorkerDeterminism must still hold bit-for-bit — the
// fast kernels are pure per-lane functions inside the same fixed reduction
// trees, so Workers cannot perturb a single result bit.
func TestFastMathForcedWorkerDeterminism(t *testing.T) {
	xs := randomExtractionsWide(rand.New(rand.NewSource(31)), 20000)
	for _, siteLevel := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.SiteLevel = siteLevel
		cfg.FastMath = true
		cfg.Workers = 1
		base := extract.CompileWorkers(xs, siteLevel, 1)
		want := MustFuseCompiled(base, cfg)
		for _, workers := range []int{2, 3, 7, 8} {
			g := extract.CompileWorkers(xs, siteLevel, workers)
			c := cfg
			c.Workers = workers
			requireBitIdentical(t, fmt.Sprintf("fastmath siteLevel=%v workers=%d", siteLevel, workers),
				MustFuseCompiled(g, c), want)
		}
	}
}
