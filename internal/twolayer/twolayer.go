// Package twolayer implements the paper's §5.1 future direction:
// distinguishing mistakes made by extractors from erroneous information
// provided by Web sources. The flat (extractor, URL) provenance of the base
// system buries an important signal — "for triples with the same number of
// provenances, those extracted by at least 8 extractors have a much higher
// accuracy than those extracted by a single extractor" (Figure 18).
//
// The model has two layers with an EM loop across both:
//
//	Layer 1 (statement inference): for every (source, triple) pair, infer
//	the probability that the source actually STATES the triple, from which
//	extractors did and did not extract it there, using per-extractor recall
//	and false-positive rates. Many extractors agreeing on one page is strong
//	evidence the page says it; one noisy extractor repeating itself across a
//	thousand pages is not.
//
//	Layer 2 (truth inference): classical Bayesian fusion over SOURCES (not
//	extractor × source pairs), weighting each source's vote by the
//	probability it states the triple, with per-source accuracy re-estimated
//	from expected-stated claims.
//
// # Compiled engine
//
// Fuse rides the compiled extraction graph (extract.Compiled): sources,
// extractors, (source, triple) statement pairs, candidate triples and data
// items are interned into dense int32 IDs with CSR adjacency once, and every
// EM round iterates flat ID-indexed slices — the same compile-once
// architecture fusion.Fuse uses for the claim graph. FuseCompiled consumes an
// existing compilation, so the experiment layer shares one graph across
// configurations. The original map-keyed engine survives as FuseReference,
// pinned against the compiled engine by golden equivalence tests; both are
// deterministic and independent of Config.Workers.
//
// # Deterministic parallel reductions
//
// Every EM stage runs in parallel, and every one is bit-identical for any
// Config.Workers value (pinned by forced-worker property tests at Workers
// 1/2/3/7/8):
//
//   - The layer-1 and layer-2 E-steps and the per-source M-step pass
//     parallelize over statements, items and sources respectively; each
//     index owns its outputs, so chunk boundaries cannot influence results.
//   - The M-step extractor-rate pass — the last hot path that was sequential
//     — reduces over the graph's ext→statement CSR in fixed
//     csr.ReduceBlockSize blocks: each block is summed left-to-right by
//     whichever worker picks it up, and per-extractor block partials are
//     folded with csr.Pairwise, whose tree shape depends only on the block
//     count. The reduction tree is a pure function of the span lengths, so
//     the result never depends on scheduling.
//
// # Reference-tolerance policy
//
// Two engine optimizations legitimately change the low-order bits of float
// sums relative to the reference engine: the M-step extractor-rate pass
// re-groups the reference's single left-to-right walk into fixed blocks
// folded pairwise (if anything, more accurate), and the layer-1 E-step
// hoists each source's miss terms into a per-source base, so a statement's
// log-odds becomes base plus per-hit corrections instead of one interleaved
// walk over the source's whole extractor span. Compiled-vs-reference
// equivalence therefore relaxes from bit-equality to a documented <= 1e-9
// absolute tolerance (RefTol, CloseToReference) on the float outputs —
// triple probabilities and source accuracies, all in [0,1], where an
// absolute bound is at least as strict as a relative one; everything integer
// — triple order, support counts, round counts — remains exact.
// Compiled-vs-compiled equality across worker counts remains bitwise.
package twolayer

import (
	"fmt"
	"math"
	"runtime"

	"kfusion/internal/csr"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/mathx"
)

// RefTol is the documented compiled-vs-reference tolerance (see the
// package comment's reference-tolerance policy): the M-step's fixed-block
// pairwise reduction re-groups the reference engine's left-to-right float
// sums, perturbing low-order bits of the M-step-affected outputs. Every
// equivalence suite comparing FuseCompiled against FuseReference uses this
// one constant, so revisiting the policy (e.g. after a csr.ReduceBlockSize
// change) happens in exactly one place.
const RefTol = 1e-9

// CloseToReference reports whether two float outputs agree within RefTol,
// absolutely. Every compared output — triple probabilities, source
// accuracies — lives in [0,1], where an absolute bound is at least as
// strict as a relative one; 1e-9 is still ~1000x looser than the observed
// ~1e-12 drift, so the bar catches real divergence without flaking.
// Integer outputs (triple order, support counts, rounds) are outside the
// policy: they must match exactly.
func CloseToReference(a, b float64) bool {
	return math.Abs(a-b) <= RefTol
}

// Config parameterizes the two-layer model.
type Config struct {
	// Rounds is the outer EM round cap.
	Rounds int
	// SiteLevel keys sources at site level instead of URL level.
	SiteLevel bool
	// InitSourceAccuracy is the starting per-source accuracy.
	InitSourceAccuracy float64
	// InitRecall is the starting per-extractor recall (probability of
	// extracting a statement the source makes, given the extractor
	// processed the source).
	InitRecall float64
	// InitFalsePos is the starting per-extractor hallucination rate.
	InitFalsePos float64
	// PriorStated is the prior that a candidate (source, triple) pair is
	// actually stated by the source.
	PriorStated float64
	// NFalse is the layer-2 ACCU false-value count.
	NFalse int
	// Workers bounds the parallel EM stage loops (0 = GOMAXPROCS). Results
	// never depend on it.
	Workers int
	// FastMath runs the per-round transcendental tables and sigmoids on the
	// mathx.Fast polynomial kernels instead of math.Exp/math.Log. Outputs
	// stay within mathx.FastTol of the exact engine's (pinned by the
	// FastMath equivalence suite) and remain bit-identical across worker and
	// shard counts — the approximation is elementwise and deterministic.
	FastMath bool
}

// DefaultConfig returns the configuration used in the ablation experiments.
func DefaultConfig() Config {
	return Config{
		Rounds:             5,
		InitSourceAccuracy: 0.8,
		InitRecall:         0.5,
		InitFalsePos:       0.15,
		PriorStated:        0.5,
		NFalse:             100,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("twolayer: Rounds must be >= 1, got %d", c.Rounds)
	}
	// A slice, not a map: with several fields invalid, the reported one
	// must not depend on map iteration order.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"InitSourceAccuracy", c.InitSourceAccuracy},
		{"InitRecall", c.InitRecall},
		{"InitFalsePos", c.InitFalsePos},
		{"PriorStated", c.PriorStated},
	} {
		if f.v <= 0 || f.v >= 1 {
			return fmt.Errorf("twolayer: %s must be in (0,1), got %v", f.name, f.v)
		}
	}
	if c.NFalse < 1 {
		return fmt.Errorf("twolayer: NFalse must be >= 1, got %d", c.NFalse)
	}
	return nil
}

// Fuse runs the two-layer model over raw extractions: it compiles the
// extraction graph at the configured source level and fuses over it. Callers
// running several configurations over one extraction set should Compile once
// and use FuseCompiled.
func Fuse(xs []extract.Extraction, cfg Config) (*fusion.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return FuseCompiled(extract.CompileWorkers(xs, cfg.SiteLevel, cfg.Workers), cfg)
}

// MustFuse is Fuse for statically-valid configurations.
func MustFuse(xs []extract.Extraction, cfg Config) *fusion.Result {
	r, err := Fuse(xs, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// FuseCompiled runs the two-layer model over an already-compiled extraction
// graph. The graph's source level must match cfg.SiteLevel — the grouping is
// baked in at extract.Compile time. All model state (statement probabilities,
// source accuracies, extractor rates) lives in the per-call engine, so one
// graph serves any number of concurrent FuseCompiled calls.
func FuseCompiled(g *extract.Compiled, cfg Config) (*fusion.Result, error) {
	res, _, err := FuseCompiledWarm(g, cfg, nil)
	return res, err
}

// State carries one two-layer run's converged model parameters forward to
// the next generation of an append-only extraction graph: per-source
// accuracies and per-extractor recall / false-positive rates, indexed by the
// graph's interned IDs. IDs are append-stable (extract.Compiled.Append never
// renumbers an existing source or extractor), so a State captured on
// generation k seeds generation k+1 directly — entities new to the appended
// batch simply start at the configured initial values. The slices are owned
// by the State (copies, not views into engine state).
type State struct {
	SrcAcc   []float64 // source ID -> accuracy
	Recall   []float64 // extractor ID -> recall
	FalsePos []float64 // extractor ID -> false-positive rate
}

// WarmTol is the documented warm-start-vs-cold-start tolerance, in the
// converged regime: when both the warm and the cold run stop because the
// per-round accuracy delta fell below the 1e-4 convergence threshold
// (rather than hitting the Rounds cap — the paper's R = 5 is a forced
// cut-off), they halt in threshold-sized neighborhoods of the same EM fixed
// point, and every triple probability and source accuracy (all in [0,1])
// agrees within this absolute bound. When the cap bites first, warm and
// cold are different truncations of the same iteration and can differ up to
// the remaining convergence distance. The warm-start equivalence tests pin
// the bound.
const WarmTol = 5e-3

// FuseCompiledWarm is FuseCompiled seeded from a previous generation's
// State — the warm start of the append pipeline. Sources and extractors
// covered by warm start at their previous posteriors instead of the
// configured initial values. On data where the EM threshold-converges,
// that typically cuts the round count and lands within WarmTol of cold
// start; under the paper's forced round cap R, run it as online EM instead
// — carry the State batch to batch with cfg.Rounds = 1 — which costs a
// fraction of a cold R-round run and matches its evaluation quality (WDev
// and AUC-PR bounds pinned by the bench-scale warm-quality test) without
// being pointwise-close to it. It returns the run's own State for the next
// generation. A nil warm is a cold start (exactly FuseCompiled).
func FuseCompiledWarm(g *extract.Compiled, cfg Config, warm *State) (*fusion.Result, *State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if g.SiteLevel() != cfg.SiteLevel {
		return nil, nil, fmt.Errorf("twolayer: graph compiled with SiteLevel=%v but Config.SiteLevel=%v",
			g.SiteLevel(), cfg.SiteLevel)
	}
	e := newEngine(g, cfg)
	if warm != nil {
		copy(e.srcAcc, warm.SrcAcc) // copy clamps to the shorter slice
		copy(e.recall, warm.Recall)
		copy(e.falsePos, warm.FalsePos)
	}
	rounds := 0
	for r := 0; r < cfg.Rounds; r++ {
		e.inferStatements()
		e.inferTruth()
		rounds++
		if e.updateParams() < ConvergeTol {
			break
		}
	}
	e.inferStatements()
	e.inferTruth()
	return e.result(rounds), e.state(), nil
}

// state snapshots the engine's converged parameters as a State.
func (e *engine) state() *State {
	return &State{
		SrcAcc:   append([]float64(nil), e.srcAcc...),
		Recall:   append([]float64(nil), e.recall...),
		FalsePos: append([]float64(nil), e.falsePos...),
	}
}

// MustFuseCompiled is FuseCompiled for statically-valid configurations.
func MustFuseCompiled(g *extract.Compiled, cfg Config) *fusion.Result {
	r, err := FuseCompiled(g, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// engine is the per-call EM state over a compiled extraction graph. Every
// slice is indexed by an interned ID; the EM rounds allocate nothing.
//
// Closeness to FuseReference is an invariant pinned by the golden
// equivalence tests: per-source and per-triple sums walk statements in
// ascending ID order, and the per-round extractor likelihood ratios and
// source log-weights are batched mathx kernel passes over the exact
// expressions the reference evaluates inline. Two documented re-groupings
// separate the engines within RefTol while staying bit-identical across
// Workers (see the package comment): the M-step extractor-rate pass's
// fixed-block pairwise reduction, and the layer-1 hoist that assembles each
// statement's log-odds as a per-source miss base plus per-hit corrections
// instead of the reference's straight extractor-span walk.
type engine struct {
	g       *extract.Compiled
	cfg     Config
	workers int
	kern    *mathx.Kernels        // transcendental kernel set (Exact or Fast)
	sig     func(float64) float64 // scalar sigmoid matching kern

	stated  []float64 // statement ID -> P(source states triple)
	tripleP []float64 // triple ID -> P(triple true)
	srcAcc  []float64 // source ID -> accuracy

	// stWeight stages the layer-2 corroboration vote per statement:
	// clamp((stated-0.5)/0.45) * srcLogW[source], written by inferStatements
	// in the same pass that writes stated (the source index is already in
	// hand there). An uninformed statement stages exactly +0.0, which the
	// per-triple sums absorb bit-identically to the historical skip (no
	// term or partial sum in a span can be -0.0), so inferTruth's scoring
	// loop is a branch-free run over each triple's statement span.
	stWeight []float64

	recall    []float64 // extractor ID -> recall
	falsePos  []float64 // extractor ID -> hallucination rate
	lrHit     []float64 // per round: log(recall) - log(falsePos)
	lrMiss    []float64 // per round: log(1-recall) - log(1-falsePos)
	lrAdj     []float64 // per round: lrHit - lrMiss (hit correction over the miss base)
	oneMinusR []float64 // staging for the batched lrMiss kernel pass
	oneMinusF []float64
	srcBase   []float64 // per round: prior + ghost + summed lrMiss of the source's extractors
	srcLogW   []float64 // per round: log(NFalse * a / (1-a)), a clamped

	// Per-worker scratch: candidate score buffers for the layer-2 softmax.
	scores [][]float64
	deltas []float64

	// Single-hit sigmoid cache, per worker: most statements are hit by
	// exactly one extractor and distinct (source, extractor) pairs are an
	// order of magnitude fewer, so the layer-1 loop caches
	// sigmoid(srcBase + lrAdj) per pair per round in dense
	// [source*nExt + ext] value/round-stamp arrays. nil (cache disabled, the
	// same expression computed inline) when the pair space exceeds
	// pairCacheMaxCells. The cached value is a pure function of the round's
	// tables — independent of which statements a worker sees — so the cache
	// never changes a bit for any Workers value.
	pairP     [][]float64
	pairStamp [][]int32
	roundSeq  int32

	// ghostMiss is the sharded pipeline's cross-shard correction (nil and
	// inert outside internal/shard): per local source, the summed
	// miss-log-ratio of extractors that processed the source only in OTHER
	// shards. A statement's global layer-1 walk covers every extractor that
	// processed its source; a shard sees only the local ones, and every
	// remote extractor is a structural miss here (hits route with the
	// statement's item), so their terms fold into one per-source constant.
	ghostMiss []float64

	// M-step extractor-rate reduction state: one [stated, unstated,
	// hitStated, hitUnstated] partial per fixed block of the graph's
	// ext→statement spans, folded per extractor with csr.Pairwise.
	// blockWorkers is the reduction's worker bound: 1 when the whole
	// incidence is below the shared elementwise threshold (goroutine fan-out
	// would dominate the few float adds), e.workers otherwise — a pure
	// function of the graph, so results stay Workers-independent either way
	// (block sums are scheduling-independent by construction).
	blockSums    [][4]float64
	extTotals    [][4]float64 // extractor ID -> folded block partials
	blockWorkers int

	// baseWorkers bounds the per-source miss-base pass: 1 when the
	// source→extractor incidence is below the shared elementwise threshold,
	// e.workers otherwise — a pure function of the graph, like blockWorkers.
	baseWorkers int
}

// pairCacheMaxCells caps the single-hit sigmoid cache's per-worker pair
// space (source count × extractor count). Above it the cache would cost more
// zeroed memory than the sigmoids it saves; the layer-1 loop then computes
// the identical expression inline, so the gate — a pure function of the
// graph — cannot affect results.
const pairCacheMaxCells = 1 << 18

func newEngine(g *extract.Compiled, cfg Config) *engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nExt := g.NumExtractors()
	e := &engine{
		g:       g,
		cfg:     cfg,
		workers: workers,
		kern:    mathx.ForConfig(cfg.FastMath),
		sig:     mathx.Sigmoid,

		stated:   make([]float64, g.NumStatements()),
		stWeight: make([]float64, g.NumStatements()),
		tripleP:  make([]float64, g.NumTriples()),
		srcAcc:   make([]float64, g.NumSources()),

		recall:    make([]float64, nExt),
		falsePos:  make([]float64, nExt),
		lrHit:     make([]float64, nExt),
		lrMiss:    make([]float64, nExt),
		lrAdj:     make([]float64, nExt),
		oneMinusR: make([]float64, nExt),
		oneMinusF: make([]float64, nExt),
		srcBase:   make([]float64, g.NumSources()),
		srcLogW:   make([]float64, g.NumSources()),

		scores:    make([][]float64, workers),
		deltas:    make([]float64, workers),
		pairP:     make([][]float64, workers),
		pairStamp: make([][]int32, workers),

		blockSums:    make([][4]float64, len(g.ExtStatementBlocks())),
		extTotals:    make([][4]float64, nExt),
		blockWorkers: 1,
		baseWorkers:  1,
	}
	if cfg.FastMath {
		e.sig = mathx.FastSigmoid
	}
	incidence := 0
	for _, b := range g.ExtStatementBlocks() {
		incidence += int(b.Hi - b.Lo)
	}
	if incidence >= elementwiseParallelThreshold {
		e.blockWorkers = workers
	}
	srcExtIncidence := 0
	for s := 0; s < g.NumSources(); s++ {
		srcExtIncidence += len(g.SourceExtractors(int32(s)))
	}
	if srcExtIncidence >= elementwiseParallelThreshold {
		e.baseWorkers = workers
	}
	for i := range e.tripleP {
		e.tripleP[i] = 0.5
	}
	for i := range e.srcAcc {
		e.srcAcc[i] = cfg.InitSourceAccuracy
	}
	for i := 0; i < nExt; i++ {
		e.recall[i] = cfg.InitRecall
		e.falsePos[i] = cfg.InitFalsePos
	}
	cells := g.NumSources() * nExt
	for w := 0; w < workers; w++ {
		e.scores[w] = make([]float64, g.MaxItemTriples())
		if cells > 0 && cells <= pairCacheMaxCells {
			e.pairP[w] = make([]float64, cells)
			e.pairStamp[w] = make([]int32, cells)
		}
	}
	return e
}

// inferStatements is the layer-1 E-step: statement probabilities from
// extractor agreement, in parallel over statements. The per-round extractor
// likelihood-ratio tables come from batched kernel passes over staging
// buffers, and each statement's log-odds is assembled hoisted: a per-source
// base — prior, ghost correction and the summed miss ratio of every
// extractor that processed the source — plus one hit-minus-miss correction
// per extractor that actually extracted the statement. That shrinks the
// walk from the source's whole extractor span to the statement's hit list
// (a handful of terms); the re-grouping is covered by the package comment's
// reference-tolerance policy. Statements hit by exactly one extractor — the
// bulk of an extraction corpus — share the per-(source, extractor) sigmoid
// cache.
func (e *engine) inferStatements() {
	g := e.g
	e.roundSeq++
	seq := e.roundSeq
	// The layer-2 source log-weight table is staged here too: srcAcc is
	// final for the round before layer 1 starts, and having srcLogW ready
	// lets the statement loop below stage each statement's corroboration
	// vote (stWeight) the moment its probability is computed, while the
	// source index is still in hand — inferTruth then never re-streams the
	// statement table.
	nFalse := float64(e.cfg.NFalse)
	lw := e.workers
	if len(e.srcAcc) < elementwiseParallelThreshold {
		lw = 1
	}
	csr.ParallelRange(len(e.srcAcc), lw, func(_, lo, hi int) {
		e.kern.LogOddsSlice(e.srcLogW[lo:hi], e.srcAcc[lo:hi], nFalse, accClampLo, accClampHi)
	})
	e.kern.LogRatioSlice(e.lrHit, e.recall, e.falsePos)
	for x := range e.recall {
		e.oneMinusR[x] = 1 - e.recall[x]
		e.oneMinusF[x] = 1 - e.falsePos[x]
	}
	e.kern.LogRatioSlice(e.lrMiss, e.oneMinusR, e.oneMinusF)
	for x := range e.lrAdj {
		e.lrAdj[x] = e.lrHit[x] - e.lrMiss[x]
	}
	prior := math.Log(e.cfg.PriorStated) - math.Log(1-e.cfg.PriorStated)
	csr.ParallelRange(g.NumSources(), e.baseWorkers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			b := prior
			if e.ghostMiss != nil {
				b += e.ghostMiss[s]
			}
			for _, x := range g.SourceExtractors(int32(s)) {
				b += e.lrMiss[x]
			}
			e.srcBase[s] = b
		}
	})
	nExt := int32(len(e.recall))
	csr.ParallelRange(g.NumStatements(), e.workers, func(w, lo, hi int) {
		pairP, pairStamp := e.pairP[w], e.pairStamp[w]
		for si := lo; si < hi; si++ {
			src := g.StatementSource(int32(si))
			hits := g.StatementExtractors(int32(si))
			var pv float64
			if len(hits) == 1 && pairStamp != nil {
				k := src*nExt + hits[0]
				if pairStamp[k] != seq {
					pairP[k] = e.sig(e.srcBase[src] + e.lrAdj[hits[0]])
					pairStamp[k] = seq
				}
				pv = pairP[k]
			} else {
				logOdds := e.srcBase[src]
				for _, x := range hits {
					logOdds += e.lrAdj[x]
				}
				pv = e.sig(logOdds)
			}
			e.stated[si] = pv
			// Corroboration gate, staged for layer 2: an uninformed
			// statement (stated ≈ 0.5) contributes nothing, a confident
			// one (stated >= 0.95) votes with full source weight. This is
			// the sublinear source counting that stops one extractor's
			// repeated mistake from out-voting genuinely corroborated
			// statements (Figure 7's drops, §5.1). A gated-out vote stages
			// +0.0, bit-identical to the historical skip (see the stWeight
			// field comment).
			wgt := (pv - 0.5) / 0.45
			if wgt <= 0 {
				e.stWeight[si] = 0
				continue
			}
			if wgt > 1 {
				wgt = 1
			}
			e.stWeight[si] = wgt * e.srcLogW[src]
		}
	})
}

// elementwiseParallelThreshold is the element count below which the
// per-round elementwise precomputes (source log-weights) stay sequential
// (the shared elementwise cutoff; tuned in internal/csr). The gate depends
// only on the input size, so results stay independent of Workers.
const elementwiseParallelThreshold = csr.ElementwiseThreshold

// inferTruth is the layer-2 E-step: weighted Bayesian truth inference, in
// parallel over data items (each item owns its candidates' tripleP entries).
// The round's source log-weights and corroboration votes were staged by
// inferStatements (srcLogW, stWeight), so each triple's score is a pure
// add loop over its statement span followed by one softmax kernel call per
// item.
func (e *engine) inferTruth() {
	g := e.g
	nFalse := float64(e.cfg.NFalse)
	csr.ParallelRange(g.NumItems(), e.workers, func(w, lo, hi int) {
		buf := e.scores[w]
		for it := lo; it < hi; it++ {
			tis := g.ItemTriples(int32(it))
			scores := buf[:len(tis)]
			for vi, ti := range tis {
				s := 0.0
				for _, si := range g.TripleStatements(ti) {
					//lint:ignore kflint/floatsum one triple's staged corroboration votes in statement-span order — the per-group partial the item's owner folds whole; identical order across runs.
					s += e.stWeight[si]
				}
				scores[vi] = s
			}
			unknown := nFalse - float64(len(tis))
			if unknown < 0 {
				unknown = 0
			}
			e.kern.SoftmaxInto(scores, scores, unknown)
			for vi, ti := range tis {
				e.tripleP[ti] = scores[vi]
			}
		}
	})
}

// updateParams is the M-step: source accuracies (parallel over sources, each
// source summing its statement span in ascending order) and extractor
// recall/false-positive rates (a parallel fixed-block reduction over the
// graph's ext→statement CSR — see the package comment for the determinism
// contract and the tolerance this re-grouping costs against the reference).
// It returns the largest source-accuracy change.
func (e *engine) updateParams() float64 {
	g := e.g
	for w := range e.deltas {
		e.deltas[w] = 0
	}
	csr.ParallelRange(g.NumSources(), e.workers, func(w, lo, hi int) {
		maxDelta := 0.0
		for s := lo; s < hi; s++ {
			num, den := e.sourceStat(int32(s))
			if den < MinEvidence {
				continue
			}
			v := SourceAccuracyUpdate(num, den, e.cfg.InitSourceAccuracy)
			if d := math.Abs(v - e.srcAcc[s]); d > maxDelta {
				maxDelta = d
			}
			e.srcAcc[s] = v
		}
		e.deltas[w] = maxDelta
	})
	maxDelta := 0.0
	for _, d := range e.deltas {
		if d > maxDelta {
			maxDelta = d
		}
	}

	e.extractorTotals()
	for x := range e.recall {
		tot := &e.extTotals[x]
		if tot[0] > MinEvidence {
			e.recall[x] = RecallUpdate(tot[2], tot[0])
		}
		if tot[1] > MinEvidence {
			e.falsePos[x] = FalsePosUpdate(tot[3], tot[1])
		}
	}
	return maxDelta
}

// sourceStat sums one source's expected-stated evidence over its statement
// span in ascending ID order: num is the expected true-claim mass, den the
// expected claim mass. The (num, den) pair is also the cross-shard merge
// unit of internal/shard.
func (e *engine) sourceStat(s int32) (num, den float64) {
	g := e.g
	for _, si := range g.SourceStatements(s) {
		wgt := e.stated[si]
		//lint:ignore kflint/floatsum one source's partial over its compiled CSR statement span in ascending ID order — the per-group (num, den) merge unit of internal/shard; addition order is identical across runs.
		num += wgt * e.tripleP[g.StatementTriple(si)]
		//lint:ignore kflint/floatsum same fixed statement-span order as num — the pair is folded across shards with csr.Pairwise.
		den += wgt
	}
	return num, den
}

// extractorTotals fills extTotals with each extractor's [stated, unstated,
// hitStated, hitUnstated] evidence: a parallel reduction over the
// ext→statement CSR. Workers sum whole fixed blocks (left-to-right within a
// block, ascending statement order), then each extractor's block partials
// fold with a pairwise tree shaped only by its block count — so every bit
// of the totals is independent of the worker count and of which worker
// summed which block.
func (e *engine) extractorTotals() {
	g := e.g
	blocks := g.ExtStatementBlocks()
	csr.ParallelRange(len(blocks), e.blockWorkers, func(_, blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			// The 0/1 float hit flags keep this loop — the hottest
			// fixed-block walk in the engine — branch-free without touching
			// a bit of the totals: f*sv is sv or +0, and adding +0 to a
			// non-negative partial is the identity.
			sts, hitsF := g.ExtBlockStatementsF(blocks[bi])
			var s, u, hs, hu float64
			for k, si := range sts {
				sv := e.stated[si]
				f := hitsF[k]
				s += sv
				u += 1 - sv
				hs += f * sv
				hu += f * (1 - sv)
			}
			e.blockSums[bi] = [4]float64{s, u, hs, hu}
		}
	})
	bi := 0
	for x := range e.extTotals {
		lo := bi
		for bi < len(blocks) && blocks[bi].Group == int32(x) {
			bi++
		}
		e.extTotals[x] = csr.Pairwise(e.blockSums[lo:bi], AddPartials)
	}
}

// ConvergeTol is the EM loop's convergence threshold on the per-round
// maximum source-accuracy change; the sharded coordinator tests its merged
// delta against the same constant.
const ConvergeTol = 1e-4

// MinEvidence is the floor under which an M-step denominator counts as no
// evidence: the source (or extractor rate) keeps its current value. Shared
// with the sharded coordinator so merged updates skip identically.
const MinEvidence = 1e-9

// sourceAnchor is the M-step's pseudo-claim mass: small sources are
// anchored toward the prior so a source with one claim does not spiral down
// with its own claim's probability (the isolated-conflict drift).
const sourceAnchor = 2.0

// SourceAccuracyUpdate is the M-step source-accuracy formula over merged
// evidence. Exported so the sharded coordinator applies the exact
// expression the engine does.
func SourceAccuracyUpdate(num, den, initAccuracy float64) float64 {
	return (num + sourceAnchor*initAccuracy) / (den + sourceAnchor)
}

// RecallUpdate is the M-step recall formula (hit-stated mass over stated
// mass, Laplace-smoothed and clamped).
func RecallUpdate(hitStated, stated float64) float64 {
	return clampRate(hitStated / (stated + 1))
}

// FalsePosUpdate is the M-step false-positive formula (hit-unstated mass
// over unstated mass, Laplace-smoothed and clamped).
func FalsePosUpdate(hitUnstated, unstated float64) float64 {
	return clampRate(hitUnstated / (unstated + 1))
}

// MissLogRatio is the layer-1 log-likelihood ratio of an extractor NOT
// extracting a statement it processed the source for:
// log(1-recall) - log(1-falsePos). The engine precomputes it per round
// (batched, via the kernel LogRatioSlice pass); the sharded coordinator
// evaluates the same expression over global rates to build each shard's
// ghost-miss table. The implementation lives in mathx alongside the batched
// kernels; this re-export keeps the coordinator's call site stable.
func MissLogRatio(recall, falsePos float64) float64 {
	return mathx.MissLogRatio(recall, falsePos)
}

// AddPartials combines two [stated, unstated, hitStated, hitUnstated]
// M-step partials — the fold operator for both the in-graph block reduction
// and the cross-shard extractor merge.
func AddPartials(a, b [4]float64) [4]float64 {
	return [4]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// result assembles the fusion.Result: triples in interned (first-occurrence)
// order with the graph's precomputed support counts.
func (e *engine) result(rounds int) *fusion.Result {
	g := e.g
	res := &fusion.Result{
		Rounds:       rounds,
		ProvAccuracy: make(map[string]float64, g.NumSources()),
	}
	for s := 0; s < g.NumSources(); s++ {
		res.ProvAccuracy[g.SourceKey(int32(s))] = e.srcAcc[s]
	}
	if n := g.NumTriples(); n > 0 {
		res.Triples = make([]fusion.FusedTriple, n)
		for ti := 0; ti < n; ti++ {
			res.Triples[ti] = fusion.FusedTriple{
				Triple:          g.Triple(int32(ti)),
				Probability:     e.tripleP[ti],
				Predicted:       true,
				Provenances:     len(g.TripleStatements(int32(ti))),
				ItemProvenances: int(g.ItemStatements(g.ItemOfTriple(int32(ti)))),
				Extractors:      int(g.TripleExtractors(int32(ti))),
			}
		}
	}
	return res
}

// accClampLo/Hi bound every source accuracy before it enters the layer-2
// log-odds — both the engine's kernel LogOddsSlice pass and the reference
// engine's inline clampAcc use the same constants.
const accClampLo, accClampHi = 0.005, 0.995

func clampAcc(a float64) float64 {
	if a < accClampLo {
		return accClampLo
	}
	if a > accClampHi {
		return accClampHi
	}
	return a
}

func clampRate(v float64) float64 {
	const lo, hi = 0.01, 0.99
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
