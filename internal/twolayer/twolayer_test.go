package twolayer

import (
	"fmt"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func ex(subj, obj, extractor, url string) extract.Extraction {
	return extract.Extraction{
		Triple:    kb.Triple{Subject: kb.EntityID(subj), Predicate: "/x/p", Object: kb.StringObject(obj)},
		Extractor: extractor,
		URL:       url,
		Site:      url,
	}
}

func probOf(t *testing.T, res *fusion.Result, subj, obj string) float64 {
	t.Helper()
	for _, f := range res.Triples {
		if f.Triple.Subject == kb.EntityID(subj) && f.Triple.Object.Str == obj {
			return f.Probability
		}
	}
	t.Fatalf("triple (%s,%s) missing", subj, obj)
	return 0
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Rounds = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted Rounds=0")
	}
	bad = DefaultConfig()
	bad.InitRecall = 1
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted InitRecall=1")
	}
	bad = DefaultConfig()
	bad.NFalse = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted NFalse=0")
	}
}

// TestManyExtractorsBeatManyPages reproduces the Figure 18 signal: a triple
// extracted by many extractors from few pages should outrank a triple
// extracted by ONE extractor from many pages, even when the flat provenance
// count favors the latter.
func TestManyExtractorsBeatManyPages(t *testing.T) {
	var xs []extract.Extraction

	// "deep": 6 extractors agree on one page (plus a second page with 2).
	for _, e := range []string{"E1", "E2", "E3", "E4", "E5", "E6"} {
		xs = append(xs, ex("deep", "v", e, "http://p1"))
	}
	xs = append(xs, ex("deep", "v", "E1", "http://p2"), ex("deep", "v", "E2", "http://p2"))

	// "wide": one extractor repeats one value across 8 pages where other
	// extractors also ran but never corroborate it.
	for i := 0; i < 8; i++ {
		url := fmt.Sprintf("http://w%d", i)
		xs = append(xs, ex("wide", "v", "E7", url))
		// E1 and E2 processed the same pages and extracted something else
		// from them, so their silence on (wide, v) is informative.
		xs = append(xs, ex("other", "x", "E1", url), ex("other2", "y", "E2", url))
	}
	// Competing value for "wide" corroborated by two extractors on one page.
	xs = append(xs, ex("wide", "u", "E1", "http://wz"), ex("wide", "u", "E2", "http://wz"))

	res := MustFuse(xs, DefaultConfig())
	deep := probOf(t, res, "deep", "v")
	wideV := probOf(t, res, "wide", "v")
	wideU := probOf(t, res, "wide", "u")
	if deep <= wideV {
		t.Errorf("multi-extractor agreement (%.3f) should beat single-extractor repetition (%.3f)", deep, wideV)
	}
	if wideU <= wideV {
		t.Errorf("corroborated value (%.3f) should beat uncorroborated repetition (%.3f)", wideU, wideV)
	}

	// The flat single-layer baseline prefers the repeated value on the
	// contested item — the failure mode §5.1 describes.
	claims := fusion.Claims(xs, fusion.GranExtractorURL)
	flat := fusion.MustFuse(claims, fusion.PopAccuConfig())
	flatWideV := probOf(t, flat, "wide", "v")
	flatWideU := probOf(t, flat, "wide", "u")
	if flatWideV <= flatWideU {
		t.Logf("note: flat baseline also preferred the corroborated value here (%.3f vs %.3f)", flatWideU, flatWideV)
	}
}

func TestProbabilitiesInRangeAndDeterministic(t *testing.T) {
	var xs []extract.Extraction
	for i := 0; i < 20; i++ {
		xs = append(xs,
			ex(fmt.Sprintf("s%d", i%5), fmt.Sprintf("v%d", i%3), fmt.Sprintf("E%d", i%4), fmt.Sprintf("http://u%d", i%7)),
		)
	}
	a := MustFuse(xs, DefaultConfig())
	b := MustFuse(xs, DefaultConfig())
	if len(a.Triples) != len(b.Triples) {
		t.Fatal("nondeterministic sizes")
	}
	am, bm := a.ByTriple(), b.ByTriple()
	for tr, fa := range am {
		if fa != bm[tr] {
			t.Fatalf("nondeterministic result for %v", tr)
		}
		if fa.Probability < 0 || fa.Probability > 1 {
			t.Fatalf("probability out of range: %+v", fa)
		}
	}
}

func TestSiteLevelGrouping(t *testing.T) {
	var xs []extract.Extraction
	a := ex("s", "v", "E1", "http://x/1")
	a.Site = "x"
	b := ex("s", "v", "E1", "http://x/2")
	b.Site = "x"
	xs = append(xs, a, b)

	cfg := DefaultConfig()
	cfg.SiteLevel = true
	res := MustFuse(xs, cfg)
	// At site level both extractions collapse into one (source, triple)
	// statement.
	for _, f := range res.Triples {
		if f.Provenances != 1 {
			t.Errorf("site-level statements = %d, want 1", f.Provenances)
		}
	}
	if _, ok := res.ProvAccuracy["x"]; !ok {
		t.Error("site-level source accuracy missing")
	}
}

func TestEmptyInput(t *testing.T) {
	res := MustFuse(nil, DefaultConfig())
	if len(res.Triples) != 0 {
		t.Errorf("empty input produced %d triples", len(res.Triples))
	}
}
