package twolayer

// The stepping two-layer API: internal/shard drives one Run per shard in
// lockstep EM rounds. A Run is the compiled engine with the round loop
// inverted — the same newEngine state and E-step passes, with the M-step
// split into its per-source / per-extractor evidence (SourcePartials,
// ExtractorPartials) and its update, which the coordinator applies over
// merged evidence (SourceAccuracyUpdate, RecallUpdate, FalsePosUpdate) and
// broadcasts back (SetSourceAccuracy, SetExtractorRates). Statements and
// candidate triples route with their data item, so both E-steps are
// shard-local except the layer-1 ghost-miss correction (SetGhostMiss).
// Driving a single Run with the unsharded loop order and nil ghosts is
// bit-identical to FuseCompiled — the K=1 anchor of the
// shard-count-independence property tests.

import (
	"fmt"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
)

// Run is an open-loop two-layer fusion over one compiled extraction graph:
// the caller sequences the EM stages instead of FuseCompiled's internal
// loop. Not safe for concurrent use; one Run per goroutine.
type Run struct {
	e *engine
}

// NewRun builds the stepping engine for one two-layer configuration over a
// compiled extraction graph (whose source level must match cfg.SiteLevel).
func NewRun(g *extract.Compiled, cfg Config) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.SiteLevel() != cfg.SiteLevel {
		return nil, fmt.Errorf("twolayer: graph compiled with SiteLevel=%v but Config.SiteLevel=%v",
			g.SiteLevel(), cfg.SiteLevel)
	}
	return &Run{e: newEngine(g, cfg)}, nil
}

// NumSources and NumExtractors report the lengths the partial and broadcast
// arrays are indexed by.
func (r *Run) NumSources() int    { return r.e.g.NumSources() }
func (r *Run) NumExtractors() int { return r.e.g.NumExtractors() }

// SourceKey and ExtractorName name local IDs; coordinators use them to
// build the cross-shard source and extractor tables.
func (r *Run) SourceKey(s int32) string     { return r.e.g.SourceKey(s) }
func (r *Run) ExtractorName(x int32) string { return r.e.g.ExtractorName(x) }

// SetGhostMiss installs the per-source cross-shard miss correction: for
// each local source, the summed MissLogRatio of the extractors that
// processed it only in other shards, added once to every local statement's
// layer-1 log-odds. nil (the default) disables the correction — the K=1 /
// unsharded path, where adding nothing keeps bits identical. The slice is
// retained, not copied; the coordinator rewrites it each round.
func (r *Run) SetGhostMiss(gm []float64) { r.e.ghostMiss = gm }

// SetSourceAccuracy / SetExtractorRates broadcast merged parameters into
// the engine — warm-start seeds before round 0, merged M-step updates
// after each round.
func (r *Run) SetSourceAccuracy(s int32, acc float64) { r.e.srcAcc[s] = acc }
func (r *Run) SetExtractorRates(x int32, recall, falsePos float64) {
	r.e.recall[x] = recall
	r.e.falsePos[x] = falsePos
}

// InferStatements runs the layer-1 E-step (statement probabilities from
// extractor agreement, plus the ghost-miss correction if set).
func (r *Run) InferStatements() { r.e.inferStatements() }

// InferTruth runs the layer-2 E-step (weighted Bayesian truth inference).
func (r *Run) InferTruth() { r.e.inferTruth() }

// SourcePartials writes each local source's M-step evidence — expected
// true-claim mass and expected claim mass, summed over the source's local
// statement span in ascending ID order — into num and den (each of length
// NumSources). Merged across shards, SourceAccuracyUpdate over the totals
// (skipping dens below MinEvidence) reproduces the engine's own update.
func (r *Run) SourcePartials(num, den []float64) {
	e := r.e
	for s := 0; s < e.g.NumSources(); s++ {
		num[s], den[s] = e.sourceStat(int32(s))
	}
}

// SourceStatedMass writes, per local source, the sum of its local
// statements' stated probabilities (ascending statement-ID order) and the
// statement count. This is the raw material of the coordinator's ghost
// extractor partials: an extractor that processed a source only in other
// shards covers all of the source's local statements without hitting any,
// so it owes [sum, cnt-sum, 0, 0] to its merged M-step totals — mass the
// local ExtractorPartials cannot see.
func (r *Run) SourceStatedMass(sums []float64, cnts []int32) {
	e := r.e
	for s := 0; s < e.g.NumSources(); s++ {
		span := e.g.SourceStatements(int32(s))
		sum := 0.0
		for _, si := range span {
			//lint:ignore kflint/floatsum per-source span sum in ascending statement-ID order, mirroring sourceStat — deterministic by construction.
			sum += e.stated[si]
		}
		sums[s] = sum
		cnts[s] = int32(len(span))
	}
}

// ExtractorPartials writes each local extractor's M-step evidence — the
// [stated, unstated, hitStated, hitUnstated] totals of the fixed-block
// pairwise reduction — into dst (length NumExtractors). Merged across
// shards with AddPartials, RecallUpdate/FalsePosUpdate over the totals
// reproduce the engine's own update.
func (r *Run) ExtractorPartials(dst [][4]float64) {
	e := r.e
	e.extractorTotals()
	copy(dst, e.extTotals)
}

// Result assembles the shard's fusion.Result — triples in interned order
// with the graph's support counts — with Rounds as given (the coordinator's
// global round count).
func (r *Run) Result(rounds int) *fusion.Result { return r.e.result(rounds) }

// State snapshots the engine's current parameters (after the final
// broadcast these are the merged global values restricted to local IDs).
func (r *Run) State() *State { return r.e.state() }
