// Package lint is kfusion's in-tree static-analysis suite: a small family
// of analyzers that machine-check the contracts the rest of the codebase
// rides on — deterministic iteration in the compiled engines (mapiter),
// fixed-shape float reductions (floatsum), batched transcendentals in the
// EM hot loops (scalarmath), wrap-safe sentinel-error handling (typederr),
// and atomic durable writes (atomicwrite). The
// analyzers run on every build via `make lint` / `cmd/kflint` and inside
// `go test ./...` through the self-test, so a contract violation fails the
// tree the same way a broken unit test does.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library alone —
// go/ast, go/types, and export data produced by `go list -export` — because
// the module vendors nothing. If the repo ever grows an x/tools dependency,
// each analyzer's Run is written so it can be lifted onto analysis.Pass
// mechanically.
//
// # Suppression
//
// A finding is suppressed by a directive comment on the flagged line or the
// line above it:
//
//	//lint:ignore kflint/<analyzer> <reason>
//
// The reason text is mandatory — a directive without one is itself a
// diagnostic. Suppressions are for sites where the flagged pattern is the
// contract (a reference engine whose global left-to-right sum IS the spec,
// the in-block summation primitive the block reduction is built from),
// never for convenience; the reason is reviewed like code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Name is the bare analyzer
// name; diagnostics and suppression directives refer to it as
// "kflint/<name>".
type Analyzer struct {
	Name string
	// Doc is the one-paragraph contract statement shown by `kflint -help`.
	Doc string
	// Packages lists the import paths the analyzer is gated to when run by
	// the driver or the repo self-test (empty = every package). The fixture
	// harness bypasses the gate: fixtures live under synthetic paths.
	Packages []string
	Run      func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string // bare analyzer name
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [kflint/%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, FloatSum, ScalarMath, TypedErr, AtomicWrite}
}

// Applies reports whether a is gated onto the package with import path
// pkgPath when run by the driver/self-test.
func Applies(a *Analyzer, pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// ---- Suppression directives ----

// IgnorePrefix is the directive comment prefix.
const IgnorePrefix = "//lint:ignore "

type directive struct {
	analyzer string // bare analyzer name, "" if malformed
	reason   string
	pos      token.Position
	used     bool
}

// directivesByLine scans a file's comments for //lint:ignore kflint/<name>
// directives and indexes them by the line they are written on. Malformed
// directives (missing kflint/ target or missing reason) are returned
// separately so the runner can report them.
func directivesByLine(fset *token.FileSet, file *ast.File) (byLine map[int][]*directive, malformed []Diagnostic) {
	byLine = map[int][]*directive{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			target, reason, _ := strings.Cut(rest, " ")
			name, ok := strings.CutPrefix(target, "kflint/")
			if !ok {
				// Some other tool's lint:ignore (e.g. staticcheck checks);
				// not ours to police.
				continue
			}
			if !knownAnalyzer(name) {
				malformed = append(malformed, Diagnostic{
					Analyzer: name, Pos: pos,
					Message: fmt.Sprintf("//lint:ignore names unknown analyzer kflint/%s", name),
				})
				continue
			}
			if strings.TrimSpace(reason) == "" {
				malformed = append(malformed, Diagnostic{
					Analyzer: name, Pos: pos,
					Message: fmt.Sprintf("//lint:ignore kflint/%s requires a reason: justify why the contract does not apply here", name),
				})
				continue
			}
			byLine[pos.Line] = append(byLine[pos.Line], &directive{
				analyzer: name, reason: strings.TrimSpace(reason), pos: pos,
			})
		}
	}
	return byLine, malformed
}

func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer in as (gated by Applies when gate is
// true) over pkg and returns the surviving diagnostics: findings with a
// well-formed same-line or preceding-line suppression directive are
// dropped, and malformed directives are reported as findings in their own
// right. The result is sorted by position.
func RunAnalyzers(pkg *Package, as []*Analyzer, gate bool) ([]Diagnostic, error) {
	byLine := map[int][]*directive{}
	var out []Diagnostic
	for _, f := range pkg.Files {
		m, malformed := directivesByLine(pkg.Fset, f)
		for line, ds := range m {
			byLine[line] = append(byLine[line], ds...)
		}
		out = append(out, malformed...)
	}

	for _, a := range as {
		if gate && !Applies(a, pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("kflint/%s on %s: %w", a.Name, pkg.Path, err)
		}
	diags:
		for _, d := range pass.diags {
			for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
				for _, dir := range byLine[line] {
					if dir.analyzer == a.Name && samePosFile(dir.pos, d.Pos) {
						dir.used = true
						continue diags
					}
				}
			}
			out = append(out, d)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, nil
}

func samePosFile(a token.Position, b token.Position) bool {
	return a.Filename == b.Filename
}
