package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader turns `go list -deps -export -json` output into type-checked
// packages without golang.org/x/tools: target packages (the ones matching
// the requested patterns) are parsed from source and type-checked against
// the compiler export data `go list -export` produces for every dependency,
// which works offline and rides the normal build cache. Test files are not
// analyzed — the contracts guard shipped code, and fixtures exercising
// forbidden patterns live in tests by design.

// A Package is one type-checked target package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load runs `go list -deps -export -json patterns...` in dir and returns
// the matched (non-dependency) packages parsed and type-checked, sorted by
// import path, plus an export-data lookup covering the full dependency
// closure (reused by the fixture harness to type-check testdata against
// real repo packages).
func Load(dir string, patterns ...string) ([]*Package, *ExportLookup, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	lookup := NewExportLookup()
	for _, lp := range listed {
		if lp.Export != "" {
			lookup.exports[lp.ImportPath] = lp.Export
		}
	}

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(lp.ImportPath, lp.Dir, lp.GoFiles, lookup)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, lookup, nil
}

func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var out []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// ExportLookup resolves import paths to gc export data files, the way
// `go vet`'s unitchecker resolves them from its PackageFile map.
type ExportLookup struct {
	exports map[string]string
}

func NewExportLookup() *ExportLookup { return &ExportLookup{exports: map[string]string{}} }

// Add registers an import path → export data file mapping.
func (l *ExportLookup) Add(path, file string) { l.exports[path] = file }

func (l *ExportLookup) open(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// Importer returns a go/types importer reading from the lookup's export
// data. fset must be the FileSet positions will be decoded against.
func (l *ExportLookup) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", l.open)
}

// typecheck parses files (basenames relative to dir) and type-checks them
// as package path against export data for every import.
func typecheck(path, dir string, files []string, lookup *ExportLookup) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: lookup.Importer(fset)}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{
		Path: path, Dir: dir,
		Fset: fset, Files: parsed,
		Types: tpkg, TypesInfo: info,
	}, nil
}

// TypecheckFiles type-checks an explicit file list as one package — the
// entry point shared by the fixture harness (files under testdata) and the
// vettool cfg mode (files named by go vet's config).
func TypecheckFiles(path string, filenames []string, lookup *ExportLookup) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no files for %s", path)
	}
	dir := filepath.Dir(filenames[0])
	base := make([]string, len(filenames))
	for i, f := range filenames {
		base[i] = filepath.Base(f)
	}
	return typecheck(path, dir, base, lookup)
}
