package lint

import (
	"go/ast"
)

// AtomicWrite guards the PR 6 durability protocol: everything the durable
// stores put on disk goes through an atomic temp+fsync+rename sequence,
// and — in genstore — through the faultfs.FS seam, so the crash-injection
// property suite can place a crash inside every I/O step and prove
// recovery. A direct os.Create/os.WriteFile/os.Rename in those packages
// is invisible to the crash model and can tear: a partially written file
// under the final name is exactly the corruption class the snapshot
// protocol exists to rule out.
//
// The analyzer flags direct calls to the os write-path functions inside
// the durable-store packages. Reads (os.ReadFile, os.Open) are untouched.
// Write through the faultfs.FS seam (genstore) or the
// kfio.AtomicWriteFile helper (kbstore) instead; a call site that is
// genuinely outside the durability contract suppresses with
// //lint:ignore kflint/atomicwrite <reason>.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "flags direct os write calls in the durable-store packages that bypass the temp+fsync+rename protocol and the faultfs seam",
	Packages: []string{
		"kfusion/internal/genstore",
		"kfusion/internal/kbstore",
	},
	Run: runAtomicWrite,
}

// osWritePath is the os surface that mutates the filesystem. Create and
// OpenFile tear on crash mid-write; Rename outside the protocol can
// publish a file that was never fsynced; WriteFile is both at once.
var osWritePath = map[string]bool{
	"Create":    true,
	"WriteFile": true,
	"Rename":    true,
	"OpenFile":  true,
	"NewFile":   true,
	"Truncate":  true,
	"Remove":    true,
	"RemoveAll": true,
}

func runAtomicWrite(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calledPkgLevel(pass.TypesInfo, call)
			if pkg == "os" && osWritePath[name] {
				pass.Reportf(call.Pos(),
					"direct os.%s bypasses the atomic temp+fsync+rename protocol: a crash here tears durable state invisibly to the fault-injection suite; write through the faultfs.FS seam or kfio.AtomicWriteFile", name)
			}
			return true
		})
	}
	return nil
}
