// Package fixture holds the wrap-safe forms the typederr analyzer must
// accept, plus the comparisons it must leave alone.
package fixture

import (
	"errors"
	"io"

	"kfusion/internal/httpapi"
	"kfusion/internal/kbstore"
	"kfusion/internal/kfio"
)

func isCorrupt(err error) bool {
	return errors.Is(err, kbstore.ErrCorrupt)
}

func partialOffset(err error) int64 {
	var p *kfio.ErrPartialLine
	if errors.As(err, &p) {
		return p.Offset
	}
	return -1
}

// The serving sentinels dispatch the same way: errors.Is survives both the
// server-side fmt.Errorf wrapping and the client-side APIError rebuild.
func isServingNotFound(err error) bool {
	return errors.Is(err, httpapi.ErrNotFound)
}

func badBatchIndex(err error) int {
	var b *httpapi.BadBatchError
	if errors.As(err, &b) {
		return b.Index
	}
	return -1
}

// nil comparisons and identity checks against foreign sentinels (io.EOF is
// documented as never wrapped by its producers here) are untouched.
func plainChecks(err error) bool {
	if err == nil {
		return true
	}
	return err == io.EOF
}
