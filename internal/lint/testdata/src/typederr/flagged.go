// Package fixture holds wrap-unsafe uses of the durability sentinels the
// typederr analyzer must flag: every producer wraps these errors, so
// identity comparison and concrete-type dispatch silently stop matching.
package fixture

import (
	"kfusion/internal/genstore"
	"kfusion/internal/httpapi"
	"kfusion/internal/kbstore"
	"kfusion/internal/kfio"
)

func eqSentinel(err error) bool {
	return err == kbstore.ErrCorrupt // want `use errors\.Is`
}

func neqSentinel(err error) bool {
	return err != genstore.ErrVersion // want `use errors\.Is`
}

func switchSentinel(err error) string {
	switch err {
	case kbstore.ErrVersion: // want `use errors\.Is`
		return "version"
	default:
		return "other"
	}
}

func assertPartial(err error) int64 {
	if p, ok := err.(*kfio.ErrPartialLine); ok { // want `use errors\.As`
		return p.Offset
	}
	return -1
}

func typeSwitchPartial(err error) bool {
	switch err.(type) {
	case *kfio.ErrPartialLine: // want `use errors\.As`
		return true
	}
	return false
}

// The kfserved serving sentinels cross the HTTP boundary wrapped (the
// client rebuilds them via APIError.Unwrap), so identity comparison breaks
// the moment the response is decoded.
func eqServing(err error) bool {
	return err == httpapi.ErrNotFound // want `use errors\.Is`
}

func switchServing(err error) string {
	switch err {
	case httpapi.ErrNotReady: // want `use errors\.Is`
		return "wait"
	case httpapi.ErrBusy: // want `use errors\.Is`
		return "retry"
	default:
		return "fail"
	}
}

func assertBadBatch(err error) int {
	if b, ok := err.(*httpapi.BadBatchError); ok { // want `use errors\.As`
		return b.Index
	}
	return -1
}
