// Package fixture holds transcendental shapes the scalarmath analyzer must
// NOT flag: one-time evaluations outside any loop, per-iteration positions
// that are not math.Exp/math.Log, and suppressed reference-spec spots.
package fixture

import "math"

// oncePerRound is the engines' legitimate scalar use: a prior or constant
// computed once before the loops start.
func oncePerRound(prior float64, dst []float64) {
	logPrior := math.Log(prior) - math.Log(1-prior)
	for i := range dst {
		dst[i] = logPrior
	}
}

// loopInit is evaluated once, not per iteration.
func loopInit(x float64) float64 {
	s := 0.0
	for i := int(math.Log(x)); i > 0; i-- {
		s++
	}
	return s
}

// rangeOperand is evaluated once to produce the ranged value.
func rangeOperand(xs []float64) float64 {
	s := 0.0
	for range xs[:int(math.Log(float64(len(xs)+2)))] {
		s++
	}
	return s
}

// otherMath stays unflagged: the gate is exactly the two EM hot-loop
// transcendentals, not every math call.
func otherMath(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s = math.Max(s, math.Abs(x))
	}
	return s
}

// suppressed is the reference-engine shape: the scalar evaluation IS the
// golden spec, and says so.
func suppressed(xs []float64) {
	for i := range xs {
		//lint:ignore kflint/scalarmath fixture reference spec: the inline scalar evaluation is the golden expression the batched engines are compared against.
		xs[i] = math.Exp(xs[i])
	}
}
