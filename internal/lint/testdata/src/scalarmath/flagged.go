// Package fixture holds per-element transcendental shapes the scalarmath
// analyzer must flag: math.Exp/math.Log evaluated one call at a time inside
// a loop — the scalar form a batched mathx kernel pass replaces.
package fixture

import "math"

// perElementLog is the classic per-round table built scalar: one math.Log
// pair per element instead of one LogRatioSlice pass.
func perElementLog(dst, recall, falsePos []float64) {
	for i := range dst {
		// Both calls on the line below are flagged independently.
		// want@+1 `scalar math.Log inside a loop`
		dst[i] = math.Log(recall[i]) - math.Log(falsePos[i]) // want `scalar math.Log inside a loop`
	}
}

// perElementExp is the scalar softmax tail: an exp per lane per iteration.
func perElementExp(scores []float64, m float64) float64 {
	denom := 0.0
	for _, s := range scores {
		denom += math.Exp(s - m) // want `scalar math.Exp inside a loop`
	}
	return denom
}

// inCallback models the parallel-chunk shape: the loop lives inside a
// worker callback, which still evaluates the transcendental per element.
func inCallback(xs []float64, run func(func(lo, hi int))) {
	run(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = math.Exp(xs[i]) // want `scalar math.Exp inside a loop`
		}
	})
}

// inCondition is flagged too: a loop condition re-evaluates per iteration.
func inCondition(x float64) int {
	n := 0
	for i := 0; float64(i) < math.Log(x); i++ { // want `scalar math.Log inside a loop`
		n++
	}
	return n
}
