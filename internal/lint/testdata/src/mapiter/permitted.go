// Package fixture holds order-INSENSITIVE map ranges the mapiter analyzer
// must accept without diagnostics.
package fixture

import "sort"

// counters: integer updates are exact and commutative.
func counters(m map[string]int) (int, int) {
	n, sum := 0, 0
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// invert: each iteration writes its own map cell.
func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// prune: delete is order-safe by spec.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// sortedKeys is the collect-then-sort idiom: the keys are ordered before
// anything can observe them.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

type state struct{ v float64 }

// rescale is order-insensitive for a reason the checker cannot prove (the
// per-key writes are disjoint), so the contract is carried by a reviewed
// suppression.
func rescale(acc map[string]*state) {
	//lint:ignore kflint/mapiter each key rewrites only its own entry's field — disjoint per-key effects commute
	for k, st := range acc {
		st.v = normalize(k, st.v)
	}
}

func normalize(k string, v float64) float64 {
	if k == "" {
		return 0
	}
	return v / 2
}
