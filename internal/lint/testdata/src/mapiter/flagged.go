// Package fixture holds order-SENSITIVE map ranges the mapiter analyzer
// must flag. The `want` comments are the golden expectations checked by
// fixtures_test.go.
package fixture

import (
	"math"
	"strings"
)

type extParams struct{ recall, falsePos float64 }

// statementLogOdds reproduces the pre-PR-3 two-layer EM bug in shape: the
// per-statement log-odds folds the extractor-parameter MAP in iteration
// order, so the accumulated float — and the converged EM fixpoint built on
// it — differed run to run until the engine moved onto sorted extractor
// slices.
func statementLogOdds(claimed map[string]bool, extPar map[string]extParams) float64 {
	logOdds := 0.0
	for e, p := range extPar { // want `assignment value calls a function with unknown effects`
		if claimed[e] {
			logOdds += math.Log(p.recall) - math.Log(p.falsePos)
		} else {
			logOdds += math.Log(1-p.recall) - math.Log(1-p.falsePos)
		}
	}
	return logOdds
}

// totalWeight is the same bug without the call noise: a pure float
// accumulation whose low-order bits depend on visit order.
func totalWeight(w map[string]float64) float64 {
	t := 0.0
	for _, v := range w { // want `float accumulation in map order`
		t += v
	}
	return t
}

// anyKey leaks whichever key the runtime happens to visit last.
func anyKey(m map[string]int) string {
	out := ""
	for k := range m { // want `last-writer-wins`
		out = k
	}
	return out
}

// joined collects keys but consumes them unsorted — the broken half of the
// collect-then-sort idiom.
func joined(m map[string]int) string {
	var ks []string
	for k := range m { // want `collected but not sorted`
		ks = append(ks, k)
	}
	return strings.Join(ks, " ")
}

// firstKey returns from inside the range: the result is whichever key the
// runtime visits first.
func firstKey(m map[string]int) string {
	for k := range m { // want `which key is visited first`
		return k
	}
	return ""
}
