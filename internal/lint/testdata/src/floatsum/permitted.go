// Package fixture holds the float-reduction shapes the floatsum analyzer
// recognizes as within the fixed-block contract.
package fixture

import "kfusion/internal/csr"

// blockSum is the in-block primitive itself: the range is bounded by a
// csr.Block's Lo/Hi, so this IS one leaf of the deterministic tree.
func blockSum(xs []float64, b csr.Block) float64 {
	s := 0.0
	for _, x := range xs[b.Lo:b.Hi] {
		s += x
	}
	return s
}

// blockSumIdx is the same leaf written as an index loop.
func blockSumIdx(xs []float64, b csr.Block) float64 {
	s := 0.0
	for i := int(b.Lo); i < int(b.Hi); i++ {
		s += xs[i]
	}
	return s
}

// elementwise: each iteration owns its own output cell — there is no
// cross-iteration reduction order at all.
func elementwise(out, xs []float64) {
	for i := range xs {
		out[i] += xs[i]
	}
}

// perGroup: the accumulator lives inside the enclosing loop, so each sum is
// one group's partial in the group's own span order — the per-item softmax
// denominator shape.
func perGroup(spans [][]float64) []float64 {
	out := make([]float64, 0, len(spans))
	for _, span := range spans {
		d := 0.0
		for _, x := range span {
			d += x
		}
		out = append(out, d)
	}
	return out
}

// count: integer totals are exact; the contract is about floats.
func count(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
