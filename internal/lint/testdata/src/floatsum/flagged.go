// Package fixture holds ad-hoc float reductions the floatsum analyzer must
// flag: whole-pass totals and worker-shaped partials, the two groupings the
// fixed-block contract (csr.SpanBlocks + csr.Pairwise) exists to replace.
package fixture

// wholePassTotal folds the full slice into one function-scope scalar — the
// naive reduction whose grouping silently diverges from the blocked engines.
func wholePassTotal(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // want `naive float accumulation`
	}
	return sum
}

// plusEqual is the same shape spelled `x = x + e` over an index loop.
func plusEqual(xs []float64) float64 {
	var t float64
	for i := 0; i < len(xs); i++ {
		t = t + xs[i] // want `naive float accumulation`
	}
	return t
}

// workerPartial models the PR 4 bug class: a per-worker partial declared in
// a parallel callback. A closure is not a loop, so the partial's grouping is
// worker-count-shaped — exactly the nondeterminism the block reduction
// removed.
func workerPartial(xs []float64, run func(func(lo, hi int))) []float64 {
	var partials []float64
	run(func(lo, hi int) {
		part := 0.0
		for _, x := range xs[lo:hi] {
			part += x // want `naive float accumulation`
		}
		partials = append(partials, part)
	})
	return partials
}
