// Package fixture holds direct os write-path calls the atomicwrite analyzer
// must flag: each one can tear durable state invisibly to the
// crash-injection suite.
package fixture

import "os"

// snapshot writes the final file in place: a crash mid-write leaves a torn
// file under the durable name.
func snapshot(path string, data []byte) error {
	return os.WriteFile(path, data, 0o666) // want `direct os\.WriteFile bypasses`
}

func create(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses`
	if err != nil {
		return err
	}
	return f.Close()
}

// publish renames outside the protocol: the temp file was never fsynced, so
// the rename can publish garbage.
func publish(tmp, final string) error {
	return os.Rename(tmp, final) // want `direct os\.Rename bypasses`
}
