// Package fixture holds the blessed write paths the atomicwrite analyzer
// must accept: reads, the kfio atomic helper, the faultfs seam, and a
// reviewed suppression.
package fixture

import (
	"io"
	"os"

	"kfusion/internal/faultfs"
	"kfusion/internal/kfio"
)

// Reads are untouched — the protocol governs mutation only.
func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// save uses the temp+fsync+rename helper on the real filesystem.
func save(path string, data []byte) error {
	return kfio.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// saveVia writes through the faultfs seam, so the crash-injection suite can
// place a fault inside every step.
func saveVia(fs faultfs.FS, name string, data []byte) error {
	return kfio.AtomicWrite(fs, name, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// cleanup deletes a scratch file no recovery invariant reads; the exemption
// is carried by a reviewed suppression.
func cleanup(path string) {
	//lint:ignore kflint/atomicwrite scratch file outside the durable dataset — no recovery invariant reads it
	os.Remove(path)
}
