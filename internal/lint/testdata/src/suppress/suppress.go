// Package fixture exercises the suppression-directive contract: a directive
// without a reason is itself a diagnostic and suppresses nothing, and a
// directive naming an unknown analyzer is flagged as a typo rather than
// silently ignored.
package fixture

func missingReason(m map[string]float64) float64 {
	t := 0.0
	// want@+2 `requires a reason`
	// want@+2 `float accumulation in map order`
	//lint:ignore kflint/mapiter
	for _, v := range m {
		t += v
	}
	return t
}

func unknownAnalyzer(m map[string]int) {
	// want@+1 `unknown analyzer`
	//lint:ignore kflint/nosuch the loop only deletes
	for k := range m {
		delete(m, k)
	}
}
