package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shared AST/type-resolution helpers for the analyzers.

// parentMap records the immediate parent of every node in a file, so
// analyzers can climb from a flagged node to its enclosing block.
type parentMap map[ast.Node]ast.Node

func buildParents(file *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// usedObj resolves an expression to the object it names, through parens:
// `ident` or `pkg.Ident`. Returns nil for anything else.
func usedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "os".Create).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := usedObj(info, call.Fun)
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// calledPkgLevel returns (package path, func name) when call invokes a
// package-level function, else ("", "").
func calledPkgLevel(info *types.Info, call *ast.CallExpr) (string, string) {
	obj := usedObj(info, call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSliceOrArray reports whether t is (or points to) a slice or array.
func isSliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// isFloat reports whether t is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if n, isNamed := t.(*types.Named); isNamed {
			b, ok = n.Underlying().(*types.Basic)
		}
	}
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t is an integer scalar.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok && iface.NumMethods() == 1 {
		m := iface.Method(0)
		if m.Name() == "Error" {
			sig := m.Type().(*types.Signature)
			return sig.Params().Len() == 0 && sig.Results().Len() == 1
		}
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// funcName renders a diagnostic-friendly name for the function enclosing
// pos, for messages that want context.
func funcName(file *ast.File, pos token.Pos) string {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd.Name.Name
		}
	}
	return "<init>"
}

// hasPrefixErr reports the Err* naming convention the sentinel contracts
// use.
func hasPrefixErr(name string) bool { return strings.HasPrefix(name, "Err") }

// isBuiltin reports whether id names the predeclared builtin (not a
// shadowing declaration): the type checker records builtins as
// *types.Builtin in Uses.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}
