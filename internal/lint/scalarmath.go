package lint

import (
	"go/ast"
	"go/types"
)

// ScalarMath guards the PR 10 batched-kernel contract: in the EM engine
// packages, per-element transcendentals must not be evaluated one call at a
// time inside a loop — they belong in a batched internal/mathx kernel pass
// (ExpSlice, LogSlice, LogOddsSlice, LogRatioSlice, SigmoidSlice,
// SoftmaxInto) over a staging buffer. The contract has two motivations: the
// kernel passes are the single place the FastMath approximation can swap in
// (a scalar math.Log call in a loop silently pins its caller to the exact
// path, so Config.FastMath stops covering it), and hoisting the
// transcendentals out of the per-statement/per-claim loops is where the
// batched engines' throughput comes from — a stray scalar call in a hot
// loop is a regression waiting to recur.
//
// The analyzer flags direct math.Exp / math.Log calls lexically inside any
// for/range loop (including loops inside parallel-callback closures — those
// run the loop per chunk, which is exactly the per-element shape). Calls
// outside loops — a prior computed once per round, a constant folded at
// engine construction — are fine and stay unflagged.
//
// Intentionally-scalar spots suppress with //lint:ignore kflint/scalarmath
// <reason>: the reference engines, whose inline scalar evaluation IS the
// golden spec the batched engines are measured against, and hook paths
// where the operand really is per-element (a per-claim accuracy override
// has no table to batch). internal/mathx itself is not gated — its kernel
// loops over math.Exp/math.Log are the batching primitive.
var ScalarMath = &Analyzer{
	Name: "scalarmath",
	Doc:  "flags per-element math.Exp/math.Log calls inside loops in the EM engine packages; batch through an internal/mathx kernel pass",
	Packages: []string{
		"kfusion/internal/fusion",
		"kfusion/internal/twolayer",
		"kfusion/internal/multitruth",
	},
	Run: runScalarMath,
}

func runScalarMath(pass *Pass) error {
	for _, file := range pass.Files {
		loopDepth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				// Init runs once — visit it at the current depth; Cond,
				// Post and Body run per iteration. The manual recursion
				// exists because ast.Inspect has no post-order hook to
				// close the depth with.
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				loopDepth++
				if n.Cond != nil {
					ast.Inspect(n.Cond, walk)
				}
				if n.Post != nil {
					ast.Inspect(n.Post, walk)
				}
				ast.Inspect(n.Body, walk)
				loopDepth--
				return false
			case *ast.RangeStmt:
				ast.Inspect(n.X, walk) // evaluated once
				loopDepth++
				ast.Inspect(n.Body, walk)
				loopDepth--
				return false
			case *ast.CallExpr:
				if loopDepth > 0 {
					if name := mathTranscendental(pass.TypesInfo, n); name != "" {
						pass.Reportf(n.Pos(),
							"scalar math.%s inside a loop: per-element transcendentals belong in a batched mathx kernel pass over a staging buffer", name)
					}
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

// mathTranscendental reports which gated transcendental (Exp or Log) the
// call invokes from package math, or "" if it is any other call. The list
// is deliberately the two EM hot-loop transcendentals; widening it means
// auditing every gated package for the new name first.
func mathTranscendental(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Exp", "Log":
	default:
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return ""
	}
	return sel.Sel.Name
}
