package lint

import "testing"

// TestRepoIsClean is the meta-test: it runs the gated analyzer suite over
// every package of the module — exactly what `make lint` / cmd/kflint does —
// so a contract violation anywhere in the tree fails `go test ./...` the
// same way a broken unit test would. Suppressions carry their reviewed
// reasons in-line; a malformed suppression is a failure here too.
func TestRepoIsClean(t *testing.T) {
	pkgs, _ := loadRepo(t)
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, Analyzers(), true)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d finding(s): fix the site or add //lint:ignore kflint/<name> <reason> with a reviewable justification", total)
	}
}
