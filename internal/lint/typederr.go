package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr guards the typed-error contracts: the durable stores report
// corruption through typed errors — the kbstore/genstore sentinels
// ErrCorrupt and ErrVersion and kfio's *ErrPartialLine struct — and the
// kfserved HTTP boundary dispatches on the httpapi sentinels (ErrNotFound,
// ErrBadBatch, ErrNotReady, ErrBusy, ErrBadRequest, re-exported at the
// kfusion root). Every producer wraps them (`fmt.Errorf("%w: ...",
// ErrCorrupt)`; the HTTP client wraps via APIError.Unwrap), so a direct
// `==`/`!=` comparison or a type switch on the concrete type silently
// stops matching the moment a wrapping layer is added. Callers must use
// errors.Is for sentinels and errors.As for the structured types; the
// degradation ladder (snapshot fallback, journal tail repair, partial-line
// retry) and the server's error-to-status mapping dispatch on exactly
// these results, so a broken match turns a graceful degradation into a
// hard failure.
//
// The analyzer flags, in any package: ==/!= against an Err* sentinel
// variable exported by the durability packages (comparisons with nil are
// untouched), a switch on an error value whose cases name such sentinels,
// and type assertions or type-switch cases on the packages' Err* struct
// types.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "flags ==/!= or type-switch use of the kbstore/genstore/kfio/httpapi typed errors where errors.Is/errors.As is required",
	// Empty Packages: a wrap-unsafe comparison is wrong wherever it
	// appears — cmd/ drivers and the experiment layers consume these
	// errors too.
	Run: runTypedErr,
}

// sentinelPkgs are the packages whose Err* values/types carry the
// durability and serving contracts. httpapi holds the HTTP serving
// sentinels (ErrNotFound, ErrBadBatch, ErrNotReady, ErrBusy,
// ErrBadRequest), which the kfserved server and typed client wrap on both
// sides of the wire; the root kfusion package re-exports them, so the same
// values reached through either path are protected.
var sentinelPkgs = map[string]bool{
	"kfusion/internal/kbstore":  true,
	"kfusion/internal/genstore": true,
	"kfusion/internal/kfio":     true,
	"kfusion/internal/faultfs":  true,
	"kfusion/internal/httpapi":  true,
	"kfusion":                   true,
}

func runTypedErr(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if v, ok := sentinelVar(info, side); ok {
						pass.Reportf(n.OpPos,
							"%s compares the wrapped sentinel %s.%s by identity; use errors.Is — producers wrap it with fmt.Errorf(\"%%w: ...\")",
							n.Op, v.Pkg().Name(), v.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case kbstore.ErrCorrupt: ... } compares by
				// identity exactly like ==.
				if n.Tag == nil || !isErrorType(info.TypeOf(n.Tag)) {
					return true
				}
				for _, cs := range n.Body.List {
					cc := cs.(*ast.CaseClause)
					for _, e := range cc.List {
						if v, ok := sentinelVar(info, e); ok {
							pass.Reportf(cc.Case,
								"switch case compares the wrapped sentinel %s.%s by identity; use errors.Is in an if/else chain",
								v.Pkg().Name(), v.Name())
						}
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // the type-switch header; cases handled below
				}
				if tn, ok := sentinelType(info, n.Type); ok {
					pass.Reportf(n.Lparen,
						"type assertion to %s.%s misses wrapped instances; use errors.As",
						tn.Pkg().Name(), tn.Name())
				}
			case *ast.TypeSwitchStmt:
				for _, cs := range n.Body.List {
					cc := cs.(*ast.CaseClause)
					for _, e := range cc.List {
						if tn, ok := sentinelType(info, e); ok {
							pass.Reportf(cc.Case,
								"type switch case %s.%s misses wrapped instances; use errors.As",
								tn.Pkg().Name(), tn.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelVar reports whether e names a package-level Err* error variable
// from one of the durability packages.
func sentinelVar(info *types.Info, e ast.Expr) (*types.Var, bool) {
	obj := usedObj(info, e)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !sentinelPkgs[v.Pkg().Path()] || !hasPrefixErr(v.Name()) {
		return nil, false
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	if !isErrorType(v.Type()) {
		return nil, false
	}
	return v, true
}

// sentinelType reports whether the type expression e names (a pointer to)
// a typed-error struct declared in one of the contract packages — the Err*
// prefix convention of the durability packages, or the *Error suffix
// convention of the serving wire contract (httpapi.BadBatchError).
func sentinelType(info *types.Info, e ast.Expr) (*types.TypeName, bool) {
	t := info.TypeOf(e)
	if t == nil {
		return nil, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || !sentinelPkgs[tn.Pkg().Path()] {
		return nil, false
	}
	if !hasPrefixErr(tn.Name()) && !strings.HasSuffix(tn.Name(), "Error") {
		return nil, false
	}
	return tn, true
}
