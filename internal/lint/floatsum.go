package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum guards the PR 4 worker-independence contract: in the
// deterministic packages, a float total over slice data must not be built
// by an ad-hoc `+=` loop — it must be produced by the shared block
// reduction, which cuts every span into fixed csr.ReduceBlockSize blocks
// (csr.SpanBlocks), sums each block left-to-right, and folds the partials
// with a combine tree shaped only by the block count (csr.Pairwise). An
// ad-hoc loop has two failure modes the contract exists to prevent: its
// grouping silently diverges from the blocked engines' (so "equivalent"
// code paths stop being bit-identical), and the first person to
// parallelize it with a scheduler-shaped reduction makes every low-order
// bit worker-dependent.
//
// The analyzer flags loops over slice/array data that fold elements into a
// float accumulator declared outside the loop with `+=`/`-=` or
// `x = x + e`. Three shapes are recognized as within contract and
// permitted:
//
//   - accumulation into an element indexed by the loop variable
//     (elementwise: each iteration owns its cell, no cross-iteration
//     order);
//   - a loop whose range is bounded by a csr.Block's Lo/Hi fields — that
//     IS the in-block sum the reduction is built from;
//   - an accumulator declared inside an enclosing loop of the same
//     function: a per-group partial (one item's softmax denominator, one
//     provenance's span sum) whose order is the group's CSR span order,
//     fixed by the data and owned whole by a single worker.
//
// What stays flagged is exactly the dangerous residue: whole-pass totals
// (function- or package-scope accumulators) and per-worker partials
// declared in a ParallelRange callback — a closure is not a loop, and
// chunk-shaped partial sums are the worker-count-dependent grouping PR 4
// removed. Reference engines whose global left-to-right order is the
// golden spec suppress with //lint:ignore kflint/floatsum <reason>.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "flags naive float += accumulation over slice data in the deterministic packages; use csr.SpanBlocks + csr.Pairwise",
	Packages: []string{
		"kfusion/internal/fusion",
		"kfusion/internal/twolayer",
		"kfusion/internal/extract",
		"kfusion/internal/csr",
		"kfusion/internal/multitruth",
	},
	Run: runFloatSum,
}

const blockPkg = "kfusion/internal/csr"

func runFloatSum(pass *Pass) error {
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var loop ast.Node
			loopVars := map[types.Object]bool{}
			switch l := n.(type) {
			case *ast.RangeStmt:
				if !isSliceOrArray(pass.TypesInfo.TypeOf(l.X)) {
					return true
				}
				if blockBoundedExpr(pass.TypesInfo, l.X) {
					return true // in-block sum: the reduction primitive itself
				}
				body, loop = l.Body, l
				for _, v := range []ast.Expr{l.Key, l.Value} {
					if id, ok := v.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			case *ast.ForStmt:
				if blockBoundedFor(pass.TypesInfo, l) {
					return true
				}
				body, loop = l.Body, l
				if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lh := range init.Lhs {
						if id, ok := lh.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								loopVars[obj] = true
							}
						}
					}
				}
			default:
				return true
			}

			for _, st := range body.List {
				checkFloatAccum(pass, st, loop, loopVars, parents)
			}
			return true
		})
	}
	return nil
}

// checkFloatAccum flags float accumulations in the loop's direct statement
// list (and through if/block nesting — nested for/range loops are visited
// as loops in their own right).
func checkFloatAccum(pass *Pass, s ast.Stmt, loop ast.Node, loopVars map[types.Object]bool, parents parentMap) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			checkFloatAccum(pass, st, loop, loopVars, parents)
		}
	case *ast.IfStmt:
		checkFloatAccum(pass, s.Body, loop, loopVars, parents)
		if s.Else != nil {
			checkFloatAccum(pass, s.Else, loop, loopVars, parents)
		}
	case *ast.AssignStmt:
		if accum, lhs := floatAccumTarget(pass.TypesInfo, s); accum {
			if obj := rootObject(pass.TypesInfo, lhs); obj != nil && !declaredWithin(obj, loop) && !elementwiseTarget(pass.TypesInfo, lhs, loopVars) &&
				!perGroupPartial(obj, loop, parents) {
				// Accumulation over data derived from the loop, into an
				// accumulator that outlives every group: the naive
				// whole-pass reduction shape.
				if usesLoopLocal(pass.TypesInfo, s.Rhs[0], loop) {
					pass.Reportf(s.TokPos,
						"naive float accumulation over slice data: the reduction shape is ad hoc, not the fixed-block contract; sum csr.SpanBlocks blocks and fold with csr.Pairwise")
				}
			}
		}
	}
}

// perGroupPartial reports whether the accumulator obj is declared inside a
// loop of the same function that encloses the flagged loop: a per-group
// partial whose whole sum is owned by one iteration of that outer loop.
// The climb stops at function literals — a ParallelRange callback is not a
// loop, and a per-worker partial declared in one is exactly the
// chunk-shaped reduction the contract forbids.
func perGroupPartial(obj types.Object, loop ast.Node, parents parentMap) bool {
	for n := parents[loop]; n != nil; n = parents[n] {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if declaredWithin(obj, n) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// usesLoopLocal reports whether the expression reads anything declared
// within the loop — the range/index variables or values derived from them
// in the body — i.e. the accumulation actually folds loop data.
func usesLoopLocal(info *types.Info, n ast.Node, loop ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && declaredWithin(obj, loop) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// floatAccumTarget reports whether s is `x += e`, `x -= e` or `x = x + e`
// with x of float type, returning the accumulator expression.
func floatAccumTarget(info *types.Info, s *ast.AssignStmt) (bool, ast.Expr) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false, nil
	}
	lhs := s.Lhs[0]
	if !isFloat(info.TypeOf(lhs)) {
		return false, nil
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true, lhs
	case token.ASSIGN:
		// x = x + e / x = e + x
		bin, ok := ast.Unparen(s.Rhs[0]).(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD && bin.Op != token.SUB {
			return false, nil
		}
		lobj := rootObject(info, lhs)
		if lobj == nil {
			return false, nil
		}
		if sameTarget(info, bin.X, lhs) || bin.Op == token.ADD && sameTarget(info, bin.Y, lhs) {
			return true, lhs
		}
	}
	return false, nil
}

func sameTarget(info *types.Info, a, b ast.Expr) bool {
	ra, rb := rootObject(info, a), rootObject(info, b)
	return ra != nil && ra == rb
}

// rootObject resolves the variable at the root of an lvalue: `x` → x,
// `x[i]` → x, `s.f` → s, `(*p).f[i]` → p.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[t]; obj != nil {
				return obj
			}
			return info.Defs[t]
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			// A qualified name (pkg.Var) resolves through the selection.
			if obj := info.Uses[t.Sel]; obj != nil {
				if _, ok := obj.(*types.Var); ok && t.Sel.Name == obj.Name() {
					if id, isIdent := t.X.(*ast.Ident); isIdent {
						if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
							return obj
						}
					}
				}
			}
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// elementwiseTarget reports whether lhs is an element indexed by a loop
// variable (out[i] += ...): each iteration owns its own cell, so there is
// no cross-iteration reduction order at all.
func elementwiseTarget(info *types.Info, lhs ast.Expr, loopVars map[types.Object]bool) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return usesAnyObject(info, idx.Index, loopVars)
}

func usesAnyObject(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// blockBoundedExpr reports whether e is `xs[b.Lo:b.Hi]` (or with int
// conversions) where b is a csr.Block — the fixed-block slice of the
// deterministic reduction.
func blockBoundedExpr(info *types.Info, e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return isBlockField(info, sl.Low, "Lo") && isBlockField(info, sl.High, "Hi")
}

// blockBoundedFor reports whether the for loop's condition bound is a
// csr.Block Hi field (`for i := int(b.Lo); i < int(b.Hi); i++`).
func blockBoundedFor(info *types.Info, l *ast.ForStmt) bool {
	cond, ok := l.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS && cond.Op != token.LEQ {
		return false
	}
	return isBlockField(info, cond.Y, "Hi")
}

// isBlockField reports whether e is (a conversion of) a selector field
// sel on a value of type csr.Block.
func isBlockField(info *types.Info, e ast.Expr, field string) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			e = ast.Unparen(call.Args[0])
		}
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Block" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == blockPkg
}
