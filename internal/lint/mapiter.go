package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter guards the determinism contract PR 3 established when it fixed
// the seed two-layer engine's map-iteration-order bug: inside the packages
// whose outputs must be bit-reproducible, `range` over a map is forbidden
// unless the loop body is provably order-insensitive. Go randomizes map
// iteration order per run, so any order-sensitive effect — a float
// accumulation, a last-writer-wins assignment, an append consumed unsorted
// — makes results differ run to run and machine to machine.
//
// A body is accepted as order-insensitive when every statement is one of:
//
//   - a write to a map element or to a variable local to the loop body;
//   - an exact commutative update (integer += -= |= &= ^=, ++/--) — integer
//     arithmetic is associative, so the visit order cannot change the total;
//   - delete(m, k);
//   - an append to an outer slice that is sorted (sort.* / slices.Sort*)
//     before its first use after the loop — the collect-then-sort idiom;
//   - control flow (if/continue/break, nested loops) built from the above,
//     with call-free conditions.
//
// Everything else — float accumulation, returns, channel sends, calls with
// unknown effects — is flagged. Restructure onto sorted keys or a compiled
// ID space, or suppress with //lint:ignore kflint/mapiter <reason> where
// the order-insensitivity is real but beyond the checker.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags range over a map in the deterministic packages unless the loop body is provably order-insensitive",
	Packages: []string{
		// The compiled engines and their shared primitives: outputs are
		// contractually bit-identical across runs, machines and worker
		// counts.
		"kfusion/internal/fusion",
		"kfusion/internal/twolayer",
		"kfusion/internal/extract",
		"kfusion/internal/csr",
		"kfusion/internal/multitruth",
		// The layers that produce the paper's published numbers: tables,
		// figures and metrics must reproduce exactly between two runs of
		// the same experiment.
		"kfusion/internal/eval",
		"kfusion/internal/stats",
		"kfusion/internal/exper",
	},
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, file := range pass.Files {
		parents := buildParents(file)
		c := &mapIterChecker{pass: pass, parents: parents}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			if reason := c.orderSensitive(rs); reason != "" {
				pass.Reportf(rs.For,
					"map iteration order is nondeterministic and the loop body is order-sensitive (%s); iterate sorted keys, or restructure the body to be order-insensitive", reason)
			}
			return true
		})
	}
	return nil
}

type mapIterChecker struct {
	pass    *Pass
	parents parentMap
}

// orderSensitive returns "" when every effect of the range body is provably
// independent of visit order, else a short description of the first
// order-sensitive statement found.
func (c *mapIterChecker) orderSensitive(rs *ast.RangeStmt) string {
	return c.checkStmt(rs.Body, rs)
}

// checkStmt returns "" when s is order-insensitive within the map range rs.
func (c *mapIterChecker) checkStmt(s ast.Stmt, rs *ast.RangeStmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *ast.BlockStmt:
		for _, st := range s.List {
			if r := c.checkStmt(st, rs); r != "" {
				return r
			}
		}
		return ""
	case *ast.IfStmt:
		if r := c.checkStmt(s.Init, rs); r != "" {
			return r
		}
		if !c.pureExpr(s.Cond) {
			return "condition calls a function with unknown effects"
		}
		if r := c.checkStmt(s.Body, rs); r != "" {
			return r
		}
		return c.checkStmt(s.Else, rs)
	case *ast.AssignStmt:
		return c.checkAssign(s, rs)
	case *ast.IncDecStmt:
		if c.allowedTarget(s.X, rs) || isInteger(c.pass.TypesInfo.TypeOf(s.X)) {
			return ""
		}
		return "increment of an outer non-integer variable"
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return "unsupported declaration"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !c.pureExpr(v) {
						return "declaration initializer calls a function with unknown effects"
					}
				}
			}
		}
		return ""
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && isBuiltin(c.pass.TypesInfo, id) {
				return ""
			}
			// Sorting state local to this iteration (sort.Slice(ts, ...)
			// on a slice rebuilt every pass) mutates nothing the next
			// iteration can observe.
			pkg, _ := calledPkgLevel(c.pass.TypesInfo, call)
			if (pkg == "sort" || pkg == "slices") && len(call.Args) > 0 {
				if obj := rootObject(c.pass.TypesInfo, call.Args[0]); obj != nil && declaredWithin(obj, rs) {
					return ""
				}
			}
		}
		return "statement with unknown effects"
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return ""
		}
		return "goto/fallthrough in loop body"
	case *ast.RangeStmt:
		if !c.pureExpr(s.X) {
			return "nested range over a computed expression"
		}
		return c.checkStmt(s.Body, rs)
	case *ast.ForStmt:
		if r := c.checkStmt(s.Init, rs); r != "" {
			return r
		}
		if s.Cond != nil && !c.pureExpr(s.Cond) {
			return "nested loop condition calls a function with unknown effects"
		}
		if r := c.checkStmt(s.Post, rs); r != "" {
			return r
		}
		return c.checkStmt(s.Body, rs)
	case *ast.ReturnStmt:
		return "return inside the range makes the result depend on which key is visited first"
	default:
		return "statement with order-dependent effects"
	}
}

// checkAssign decides whether one assignment inside the range body is
// order-insensitive.
func (c *mapIterChecker) checkAssign(s *ast.AssignStmt, rs *ast.RangeStmt) string {
	for _, rhs := range s.Rhs {
		if !c.pureExpr(rhs) && !isAppendCall(rhs) {
			return "assignment value calls a function with unknown effects"
		}
	}
	switch s.Tok {
	case token.DEFINE:
		return "" // all LHS are fresh loop-local variables
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			// s = append(s, ...) on an outer slice is the collect idiom —
			// allowed iff the slice is sorted before first use after the
			// loop.
			if i < len(s.Rhs) {
				if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok && isAppendCall(call) {
					if obj := usedObj(c.pass.TypesInfo, lhs); obj != nil && !declaredWithin(obj, rs) {
						if c.sortedBeforeUse(obj, rs) {
							continue
						}
						return "keys are collected but not sorted before first use after the loop"
					}
				}
			}
			if !c.allowedTarget(lhs, rs) {
				return "assignment to an outer variable is last-writer-wins under random key order"
			}
		}
		return ""
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		lhs := s.Lhs[0]
		if c.allowedTarget(lhs, rs) {
			return ""
		}
		if isInteger(c.pass.TypesInfo.TypeOf(lhs)) {
			return "" // exact commutative update: visit order cannot change the total
		}
		if isFloat(c.pass.TypesInfo.TypeOf(lhs)) {
			return "float accumulation in map order — the PR 3 bug class: low-order bits differ run to run"
		}
		return "compound assignment to an outer non-integer variable"
	default:
		return "compound assignment with order-dependent semantics"
	}
}

// allowedTarget reports whether writing to e cannot observe iteration
// order: blank, a variable local to the loop body, or a map element (each
// key is written independently; for range-key-indexed writes the cells are
// disjoint).
func (c *mapIterChecker) allowedTarget(e ast.Expr, rs *ast.RangeStmt) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return declaredWithin(obj, rs)
	case *ast.IndexExpr:
		return isMapType(c.pass.TypesInfo.TypeOf(e.X))
	}
	return false
}

// pureExpr conservatively reports whether evaluating e has no effects: no
// calls except len/cap/min/max and type conversions.
func (c *mapIterChecker) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
			switch id.Name {
			case "len", "cap", "min", "max":
				if isBuiltin(c.pass.TypesInfo, id) {
					return true
				}
			}
		}
		// A type conversion is effect-free.
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		pure = false
		return false
	})
	return pure
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedBeforeUse climbs from the range statement through its enclosing
// blocks and checks that the first statement mentioning obj after the loop
// passes it to a sort (sort.* or slices.Sort*). No further use at all also
// passes — an unconsumed collection cannot observe order.
func (c *mapIterChecker) sortedBeforeUse(obj types.Object, rs *ast.RangeStmt) bool {
	var node ast.Node = rs
	for {
		parent := c.parents[node]
		if parent == nil {
			return true
		}
		if block, ok := parent.(*ast.BlockStmt); ok {
			after := false
			for _, st := range block.List {
				if !after {
					if st == node {
						after = true
					}
					continue
				}
				if usesObject(c.pass.TypesInfo, st, obj) {
					return isSortOf(c.pass.TypesInfo, st, obj)
				}
			}
		}
		if _, ok := parent.(*ast.FuncDecl); ok {
			return true
		}
		if _, ok := parent.(*ast.FuncLit); ok {
			return true
		}
		node = parent
	}
}

func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isSortOf reports whether stmt is `sort.X(obj...)` / `slices.SortX(obj...)`
// (possibly `obj = slices.Sort...`), i.e. the collected keys are ordered
// before anything can observe them.
func isSortOf(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			call, _ = ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	pkg, name := calledPkgLevel(info, call)
	sortFn := pkg == "sort" || (pkg == "slices" && hasSortPrefix(name))
	if !sortFn {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	return false
}

func hasSortPrefix(name string) bool {
	return len(name) >= 4 && name[:4] == "Sort"
}
