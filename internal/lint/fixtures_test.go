package lint

// The fixture harness is the stdlib stand-in for analysistest: each fixture
// file under testdata/src/<analyzer>/ is type-checked against the real
// repo's export-data closure and run through one analyzer ungated; `want`
// comments are the golden expectations.
//
//	x := f()  // want `regexp`        – a diagnostic on this line matching regexp
//	// want@+2 `regexp`               – a diagnostic two lines below this comment
//
// Every want must be matched by a diagnostic and every diagnostic by a
// want; permitted fixtures simply carry no wants.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

var (
	repoOnce   sync.Once
	repoPkgs   []*Package
	repoLookup *ExportLookup
	repoErr    error
)

// loadRepo lists, exports and type-checks the whole module once per test
// binary; the closure doubles as the import universe for fixtures.
func loadRepo(t *testing.T) ([]*Package, *ExportLookup) {
	t.Helper()
	repoOnce.Do(func() {
		repoPkgs, repoLookup, repoErr = Load(filepath.Join("..", ".."), "./...")
	})
	if repoErr != nil {
		t.Fatalf("loading repo packages: %v", repoErr)
	}
	return repoPkgs, repoLookup
}

type wantSpec struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want(?:@\\+(\\d+))? `([^`]+)`")

func parseWants(t *testing.T, pkg *Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				if m[1] != "" {
					var off int
					fmt.Sscanf(m[1], "%d", &off)
					line += off
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[2], err)
				}
				wants = append(wants, &wantSpec{line: line, re: re})
			}
		}
	}
	return wants
}

// checkFixture type-checks testdata/src/<dir>/<file> and runs analyzer a
// over it (ungated — fixtures live under synthetic import paths), comparing
// diagnostics against the file's want comments.
func checkFixture(t *testing.T, a *Analyzer, dir string, files ...string) {
	t.Helper()
	_, lookup := loadRepo(t)
	paths := make([]string, len(files))
	for i, f := range files {
		paths[i] = filepath.Join("testdata", "src", dir, f)
	}
	pkg, err := TypecheckFiles("kflint/fixture/"+dir, paths, lookup)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a}, false)
	if err != nil {
		t.Fatalf("running kflint/%s: %v", a.Name, err)
	}
	wants := parseWants(t, pkg)

diags:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				continue diags
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at line %d matching %q", dir, w.line, w.re)
		}
	}
}

func TestMapIterFixtures(t *testing.T) {
	checkFixture(t, MapIter, "mapiter", "flagged.go")
	checkFixture(t, MapIter, "mapiter", "permitted.go")
}

func TestFloatSumFixtures(t *testing.T) {
	checkFixture(t, FloatSum, "floatsum", "flagged.go")
	checkFixture(t, FloatSum, "floatsum", "permitted.go")
}

func TestScalarMathFixtures(t *testing.T) {
	checkFixture(t, ScalarMath, "scalarmath", "flagged.go")
	checkFixture(t, ScalarMath, "scalarmath", "permitted.go")
}

func TestTypedErrFixtures(t *testing.T) {
	checkFixture(t, TypedErr, "typederr", "flagged.go")
	checkFixture(t, TypedErr, "typederr", "permitted.go")
}

func TestAtomicWriteFixtures(t *testing.T) {
	checkFixture(t, AtomicWrite, "atomicwrite", "flagged.go")
	checkFixture(t, AtomicWrite, "atomicwrite", "permitted.go")
}

func TestSuppressionDirectives(t *testing.T) {
	checkFixture(t, MapIter, "suppress", "suppress.go")
}

// TestGating pins the package gates: the determinism analyzers must cover
// the compiled engines and the published-numbers layers, typederr must be
// global, and none may fire on packages outside their contract.
func TestGating(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		pkg  string
		want bool
	}{
		{MapIter, "kfusion/internal/fusion", true},
		{MapIter, "kfusion/internal/exper", true},
		{MapIter, "kfusion/internal/web", false},
		{FloatSum, "kfusion/internal/csr", true},
		{FloatSum, "kfusion/internal/eval", false},
		{ScalarMath, "kfusion/internal/twolayer", true},
		{ScalarMath, "kfusion/internal/multitruth", true},
		{ScalarMath, "kfusion/internal/mathx", false},
		{TypedErr, "kfusion/cmd/kfuse", true},
		{AtomicWrite, "kfusion/internal/genstore", true},
		{AtomicWrite, "kfusion/internal/kfio", false},
	}
	for _, c := range cases {
		if got := Applies(c.a, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.a.Name, c.pkg, got, c.want)
		}
	}
}
