package fusion

import (
	"math"

	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
	"kfusion/internal/randx"
)

// This file preserves the original shuffle-per-round fusion engine exactly as
// it shipped in the seed: every round re-runs the three MapReduce jobs of
// Figure 8 over string-keyed shuffles. It is kept as the golden oracle the
// compiled engine (engine.go + compile.go) is regression-tested against, and
// as the "before" subject of the throughput benchmarks. Stages I and II
// deliberately keep the seed's string-built partition keys
// (mapreduce.StringHash over String()) because their partition order feeds
// the floating-point summation order, keeping values bit-identical to the
// seed engine's; Stage III's dedup is keyed by the field-wise kb.Triple.Hash
// — there the partition choice only affects output order, never a value.

// provState tracks one provenance's estimated accuracy across rounds.
type provState struct {
	acc float64
	// isDefault is true while the accuracy is still the unevaluated
	// default; the coverage filter drops such provenances in later rounds.
	isDefault bool
}

// probEntry is Stage I's output: a scored claim.
type probEntry struct {
	idx  int32
	prob float64
}

// refEngine holds the immutable claim set and the evolving per-provenance
// state for one reference fusion run.
type refEngine struct {
	cfg    Config
	claims []Claim
	provs  map[string]*provState
	// itemTotal counts all claims per data item (pre-filtering), reported
	// as FusedTriple.ItemProvenances.
	itemTotal map[kb.DataItem]int
}

// FuseReference runs the seed engine: the literal three-stage MapReduce
// pipeline, re-shuffling all claims every round. It computes the same result
// as Fuse (to within floating-point summation order) and exists so tests can
// prove the compiled engine's equivalence. Production callers should use
// Fuse.
//
// One approximation boundary is not bit-pinned between the engines: when a
// single provenance accumulates more than SampleL scored claims, stage II's
// reservoir consumes the probabilities in shuffle emission order here but in
// compiled claim order in Fuse, so the two (equally deterministic, equally
// sized) samples can differ. Item-level SampleL sampling is identical in
// both engines. Exactness is not required at this boundary — both estimates
// are means of uniform SampleL-sized samples of the same scored-probability
// multiset, so they concentrate around the same full mean with sampling
// error O(spread/√L) — and TestStageIIOversampleDivergenceBounded bounds
// the resulting drift.
func FuseReference(claims []Claim, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-4
	}
	e := &refEngine{
		cfg:       cfg,
		claims:    claims,
		provs:     make(map[string]*provState),
		itemTotal: make(map[kb.DataItem]int),
	}
	for _, c := range claims {
		e.itemTotal[c.Triple.Item()]++
		if _, ok := e.provs[c.Prov]; !ok {
			e.provs[c.Prov] = &provState{acc: cfg.DefaultAccuracy, isDefault: true}
		}
	}
	if cfg.GoldLabeler != nil {
		e.initFromGold()
	}

	var lastProbs []probEntry
	rounds := 0
	if cfg.Method == Vote {
		lastProbs = e.stageI(0)
		rounds = 1
		e.reportRound(0, lastProbs)
	} else {
		maxRounds := cfg.Rounds
		_, rounds = mapreduce.Iterate(struct{}{}, maxRounds, func(_ struct{}, round int) (struct{}, bool) {
			lastProbs = e.stageI(round)
			e.reportRound(round, lastProbs)
			delta := e.stageII(lastProbs)
			return struct{}{}, delta < cfg.Epsilon
		})
	}

	res := e.stageIII(lastProbs)
	res.Rounds = rounds
	res.ProvAccuracy = make(map[string]float64, len(e.provs))
	for p, st := range e.provs {
		res.ProvAccuracy[p] = st.acc
	}
	return res, nil
}

// initFromGold implements §4.3.3: initialize each provenance's accuracy as
// the fraction of its gold-labeled claims that are true, at the configured
// label sampling rate. Provenances with no labeled claims keep the default.
func (e *refEngine) initFromGold() {
	rate := e.cfg.GoldSampleRate
	if rate == 0 {
		rate = 1
	}
	trueN := make(map[string]int)
	labeled := make(map[string]int)
	for _, c := range e.claims {
		label, ok := e.cfg.GoldLabeler(c.Triple)
		if !ok {
			continue
		}
		if rate < 1 {
			// Deterministic per (prov, triple) sampling so runs with the
			// same rate see the same label subset.
			if hashUnit(c.Prov, c.Triple.Encode()) >= rate {
				continue
			}
		}
		labeled[c.Prov]++
		if label {
			trueN[c.Prov]++
		}
	}
	//lint:ignore kflint/mapiter each key writes only its own provenance's state through the pointer, and clampAcc is a pure function of that key's counts — disjoint per-key effects commute.
	for prov, n := range labeled {
		st := e.provs[prov]
		st.acc = clampAcc(float64(trueN[prov]) / float64(n))
		st.isDefault = false
	}
}

// stageI groups claims by data item and computes triple probabilities with
// the current provenance accuracies (Figure 8, Stage I).
func (e *refEngine) stageI(round int) []probEntry {
	job := mapreduce.Job[int32, kb.DataItem, int32, probEntry]{
		Name: "fusion-stageI",
		Map: func(idx int32, emit func(kb.DataItem, int32)) {
			emit(e.claims[idx].Triple.Item(), idx)
		},
		Reduce: func(item kb.DataItem, idxs []int32, emit func(probEntry)) {
			e.scoreItem(item, idxs, round, emit)
		},
		KeyHash:    func(d kb.DataItem) uint64 { return mapreduce.StringHash(d.String()) },
		Workers:    e.cfg.Workers,
		Partitions: e.cfg.Partitions,
	}
	return mapreduce.MustRun(job, claimIndexes(len(e.claims)))
}

// scoreItem computes the probability of each candidate triple of one data
// item and emits one probEntry per surviving claim.
func (e *refEngine) scoreItem(item kb.DataItem, idxs []int32, round int, emit func(probEntry)) {
	idxs = e.sampleClaims(item.String(), idxs)

	// Coverage filter (§4.3.2): in round 0, only score items where some
	// triple has >= 2 provenances; later, drop provenances still at the
	// default accuracy.
	if e.cfg.FilterByCoverage {
		if round == 0 {
			counts := make(map[kb.Triple]int)
			maxN := 0
			for _, i := range idxs {
				counts[e.claims[i].Triple]++
				if counts[e.claims[i].Triple] > maxN {
					maxN = counts[e.claims[i].Triple]
				}
			}
			if maxN < 2 {
				return
			}
		} else {
			kept := idxs[:0:len(idxs)]
			for _, i := range idxs {
				if !e.provs[e.claims[i].Prov].isDefault {
					kept = append(kept, i)
				}
			}
			idxs = kept
			if len(idxs) == 0 {
				return
			}
		}
	}

	// Accuracy filter (θ): drop low-accuracy provenances; if the item loses
	// everything, fall back to the mean provenance accuracy per triple.
	scored := idxs
	if θ := e.cfg.AccuracyThreshold; θ > 0 {
		kept := make([]int32, 0, len(idxs))
		for _, i := range idxs {
			if e.provs[e.claims[i].Prov].acc >= θ {
				kept = append(kept, i)
			}
		}
		if len(kept) == 0 {
			// Fallback: p(T) = mean accuracy of T's provenances. Groups are
			// emitted in first-occurrence order — the seed ranged over the
			// map here, leaving the emission order (and thus downstream
			// floating-point summation order) randomized per run; a golden
			// oracle must be deterministic.
			byTriple := make(map[kb.Triple][]int32)
			var order []kb.Triple
			for _, i := range idxs {
				t := e.claims[i].Triple
				if _, ok := byTriple[t]; !ok {
					order = append(order, t)
				}
				byTriple[t] = append(byTriple[t], i)
			}
			for _, t := range order {
				group := byTriple[t]
				sum := 0.0
				for _, i := range group {
					sum += e.provs[e.claims[i].Prov].acc
				}
				p := sum / float64(len(group))
				for _, i := range group {
					emit(probEntry{idx: i, prob: p})
				}
			}
			return
		}
		scored = kept
	}

	probs := e.itemProbabilities(scored)
	for _, i := range scored {
		emit(probEntry{idx: i, prob: probs[e.claims[i].Triple]})
	}
}

// itemProbabilities runs the configured method over one item's claims.
func (e *refEngine) itemProbabilities(idxs []int32) map[kb.Triple]float64 {
	counts := make(map[kb.Triple]int)
	order := make([]kb.Triple, 0, 4)
	for _, i := range idxs {
		t := e.claims[i].Triple
		if counts[t] == 0 {
			order = append(order, t)
		}
		counts[t]++
	}
	n := len(idxs)
	out := make(map[kb.Triple]float64, len(order))

	switch e.cfg.Method {
	case Vote:
		for _, t := range order {
			out[t] = float64(counts[t]) / float64(n)
		}
	case Accu:
		scores := make([]float64, len(order))
		for vi, t := range order {
			s := 0.0
			for _, i := range idxs {
				if e.claims[i].Triple != t {
					continue
				}
				a := e.claimAccuracy(i)
				//lint:ignore kflint/scalarmath reference spec: the inline scalar log is the golden expression the compiled engine's batched LogOddsSlice pass is measured against.
				s += math.Log(float64(e.cfg.NFalse) * a / (1 - a))
			}
			scores[vi] = s
		}
		// The denominator includes the N - |V| unobserved false values,
		// each with vote score 0 — this is what keeps single-claim items
		// below probability 1.
		unknown := float64(e.cfg.NFalse - len(order))
		if unknown < 0 {
			unknown = 0
		}
		softmaxInto(out, order, scores, unknown)
	case PopAccu:
		// POPACCU replaces ACCU's uniform false-value distribution with the
		// popularity observed in the data: q(v) = n(v)/n. A claim on a
		// popular value earns a smaller boost than a claim on a rare one,
		// which is what makes POPACCU robust to copied (popular) false
		// values — they "may be considered as popular false values" [14].
		probs := make([]float64, len(order))
		scores := make([]float64, len(order))
		for vi, t := range order {
			q := float64(counts[t]) / float64(n)
			s := 0.0
			for _, i := range idxs {
				if e.claims[i].Triple != t {
					continue
				}
				a := e.claimAccuracy(i)
				//lint:ignore kflint/scalarmath reference spec: the scalar POPACCU vote term is the golden expression the compiled engine's table-driven form is measured against.
				s += math.Log(a / ((1 - a) * q))
			}
			scores[vi] = s
		}
		// One unit of unknown-value mass: a single-claim item with the
		// default accuracy 0.8 lands exactly at probability 0.8 — the
		// mechanism behind Figure 9's calibration valleys.
		softmaxSlice(probs, scores, 1)
		for vi, t := range order {
			out[t] = probs[vi]
		}
	}
	return out
}

// stageII re-estimates provenance accuracies as the mean probability of
// their claims (Figure 8, Stage II) and returns the largest accuracy change.
func (e *refEngine) stageII(entries []probEntry) float64 {
	type provAcc struct {
		prov string
		acc  float64
	}
	job := mapreduce.Job[probEntry, string, float64, provAcc]{
		Name: "fusion-stageII",
		Map: func(pe probEntry, emit func(string, float64)) {
			emit(e.claims[pe.idx].Prov, pe.prob)
		},
		Reduce: func(prov string, probs []float64, emit func(provAcc)) {
			probs = e.sampleProbs(prov, probs)
			sum := 0.0
			for _, p := range probs {
				//lint:ignore kflint/floatsum this is the golden MapReduce spec the compiled engine is differentially tested against; mapreduce delivers reduce values in a deterministic key-sorted order, so the naive sum is reproducible by construction.
				sum += p
			}
			emit(provAcc{prov: prov, acc: sum / float64(len(probs))})
		},
		KeyHash:    mapreduce.StringHash,
		Workers:    e.cfg.Workers,
		Partitions: e.cfg.Partitions,
	}
	updates := mapreduce.MustRun(job, entries)
	maxDelta := 0.0
	for _, u := range updates {
		st := e.provs[u.prov]
		if d := math.Abs(st.acc - u.acc); d > maxDelta {
			maxDelta = d
		}
		st.acc = u.acc
		st.isDefault = false
	}
	return maxDelta
}

// stageIII deduplicates claims into unique fused triples (Figure 8, Stage
// III).
func (e *refEngine) stageIII(entries []probEntry) *Result {
	probByIdx := make(map[int32]float64, len(entries))
	for _, pe := range entries {
		probByIdx[pe.idx] = pe.prob
	}
	type fused = FusedTriple
	job := mapreduce.Job[int32, kb.Triple, int32, fused]{
		Name: "fusion-stageIII",
		Map: func(idx int32, emit func(kb.Triple, int32)) {
			emit(e.claims[idx].Triple, idx)
		},
		Reduce: func(t kb.Triple, idxs []int32, emit func(fused)) {
			f := fused{
				Triple:          t,
				Probability:     -1,
				Provenances:     len(idxs),
				ItemProvenances: e.itemTotal[t.Item()],
			}
			exts := make(map[string]bool)
			for _, i := range idxs {
				exts[e.claims[i].Extractor] = true
				if p, ok := probByIdx[i]; ok {
					f.Probability = p
					f.Predicted = true
				}
			}
			f.Extractors = len(exts)
			emit(f)
		},
		KeyHash:    kb.Triple.Hash,
		Workers:    e.cfg.Workers,
		Partitions: e.cfg.Partitions,
	}
	triples := mapreduce.MustRun(job, claimIndexes(len(e.claims)))
	res := &Result{Triples: triples}
	for _, t := range triples {
		if !t.Predicted {
			res.Unpredicted++
		}
	}
	return res
}

// reportRound surfaces per-round probabilities to the OnRound callback.
func (e *refEngine) reportRound(round int, entries []probEntry) {
	if e.cfg.OnRound == nil {
		return
	}
	// Sized for the worst case (every entry a distinct triple) so the map
	// never rehashes while filling.
	probs := make(map[kb.Triple]float64, len(entries))
	for _, pe := range entries {
		probs[e.claims[pe.idx].Triple] = pe.prob
	}
	e.cfg.OnRound(round, probs)
}

// sampleClaims caps a reducer's claim list at SampleL with a deterministic
// reservoir (the paper's L sampling).
func (e *refEngine) sampleClaims(key string, idxs []int32) []int32 {
	if len(idxs) <= e.cfg.SampleL {
		return idxs
	}
	src := randx.New(e.cfg.SampleSeed ^ int64(mapreduce.StringHash(key)))
	r := randx.NewReservoir[int32](e.cfg.SampleL, src)
	for _, i := range idxs {
		r.Add(i)
	}
	return append([]int32(nil), r.Items()...)
}

func (e *refEngine) sampleProbs(key string, probs []float64) []float64 {
	if len(probs) <= e.cfg.SampleL {
		return probs
	}
	src := randx.New(e.cfg.SampleSeed ^ int64(mapreduce.StringHash(key)))
	r := randx.NewReservoir[float64](e.cfg.SampleL, src)
	for _, p := range probs {
		r.Add(p)
	}
	return r.Items()
}

// claimAccuracy returns the effective accuracy for one claim: the
// provenance accuracy, optionally modulated by the ClaimAccuracy hook.
func (e *refEngine) claimAccuracy(i int32) float64 {
	a := e.provs[e.claims[i].Prov].acc
	if e.cfg.ClaimAccuracy != nil {
		a = e.cfg.ClaimAccuracy(e.claims[i], a)
	}
	return clampAcc(a)
}

// softmaxInto computes P(v) = exp(s_v) / (Σ exp(s) + unknownMass·exp(0)),
// shifted for stability.
func softmaxInto(out map[kb.Triple]float64, order []kb.Triple, scores []float64, unknownMass float64) {
	probs := make([]float64, len(scores))
	softmaxSlice(probs, scores, unknownMass)
	for vi, t := range order {
		out[t] = probs[vi]
	}
}

func softmaxSlice(probs, scores []float64, unknownMass float64) {
	m := 0.0 // the implicit unknown-value score is 0
	for _, s := range scores {
		if s > m {
			m = s
		}
	}
	denom := unknownMass * math.Exp(-m)
	for _, s := range scores {
		//lint:ignore kflint/floatsum per-item softmax over one data item's candidate values — a handful of terms in fixed candidate order, not a corpus-scale reduction.
		denom += math.Exp(s - m) //lint:ignore kflint/scalarmath reference spec: the two-pass scalar softmax is the golden form mathx.SoftmaxInto is pinned bit-identical to.
	}
	for i, s := range scores {
		//lint:ignore kflint/scalarmath reference spec: same golden two-pass softmax as the denominator above.
		probs[i] = math.Exp(s-m) / denom
	}
}
