package fusion

import "kfusion/internal/extract"

// ClaimStream incrementally flattens an append-only extraction feed into
// claims under one provenance granularity. Claims deduplicates (provenance,
// triple) pairs across the whole stream, so converting an appended batch in
// isolation would re-emit pairs the prefix already asserted; the stream
// carries the dedup set forward instead, and Add returns exactly the claims
// a full Claims call over the concatenated feed would have appended:
//
//	s := fusion.NewClaimStream(gran)
//	g := fusion.MustCompile(s.Add(batch0))
//	g = g.MustAppend(s.Add(batch1)) // == MustCompile(Claims(batch0+batch1))
//
// A ClaimStream is single-writer state: Add calls must not race.
type ClaimStream struct {
	gran Granularity
	seen map[provTriple]bool
	n    int
}

// NewClaimStream returns an empty stream flattening under g.
func NewClaimStream(g Granularity) *ClaimStream {
	return &ClaimStream{gran: g, seen: make(map[provTriple]bool, 1024)}
}

// Granularity reports the stream's provenance granularity.
func (s *ClaimStream) Granularity() Granularity { return s.gran }

// NumClaims reports the total claims emitted so far.
func (s *ClaimStream) NumClaims() int { return s.n }

// Add flattens one appended extraction batch and returns only the claims new
// to the stream, in batch order. Appending the returned slices in call order
// reproduces Claims over the concatenated feed exactly.
func (s *ClaimStream) Add(xs []extract.Extraction) []Claim {
	out := make([]Claim, 0, len(xs))
	for _, x := range xs {
		prov := s.gran.Key(x)
		k := provTriple{prov: prov, triple: x.Triple}
		if s.seen[k] {
			continue
		}
		s.seen[k] = true
		out = append(out, Claim{Triple: x.Triple, Prov: prov, Conf: x.Confidence, Extractor: x.Extractor})
	}
	s.n += len(out)
	return out
}
