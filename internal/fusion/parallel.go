package fusion

import (
	"runtime"
	"sync"
)

// ParallelRange splits [0, n) into one contiguous chunk per worker and
// waits for all of them. workers <= 0 defaults to GOMAXPROCS; the count is
// clamped to n. The chunk formula is deterministic, so two calls with the
// same (n, workers) see identical (worker, lo, hi) triples. Chunk
// boundaries never influence results — f must only touch state owned by the
// indexes it is given, plus per-worker state keyed by its worker index.
// (Exported for the sibling fusion-model packages, e.g. multitruth; the
// internal/ tree keeps it out of the public module surface.)
func ParallelRange(n, workers int, f func(worker, lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
