package fusion

import "kfusion/internal/csr"

// ParallelRange splits [0, n) into one contiguous chunk per worker and
// waits for all of them. workers <= 0 defaults to GOMAXPROCS; the count is
// clamped to n. The chunk formula is deterministic, so two calls with the
// same (n, workers) see identical (worker, lo, hi) triples. Chunk
// boundaries never influence results — f must only touch state owned by the
// indexes it is given, plus per-worker state keyed by its worker index.
// (Exported for the sibling fusion-model packages, e.g. multitruth; the
// implementation lives in internal/csr so the extraction-layer graph can
// share it without importing this package.)
func ParallelRange(n, workers int, f func(worker, lo, hi int)) {
	csr.ParallelRange(n, workers, f)
}
