package fusion

// The stepping fusion API: internal/shard drives one Run per shard in
// lockstep rounds, merging the per-provenance stage-II partials across
// shards between StageI calls. A Run is exactly the compiled engine with
// its round loop turned inside out — the same newEngine state, the same
// stageI/stageIII passes, and stage II split into its statistic
// (ProvPartials, the engine's provStat over every provenance) and its
// update (applied by the coordinator and broadcast back through
// SetProvAccuracy). Driving a single Run with the unsharded loop order is
// therefore bit-identical to (*Compiled).Fuse — the K=1 anchor of the
// shard-count-independence property tests.

// Run is an open-loop fusion over one compiled graph: the caller sequences
// the EM stages instead of (*Compiled).Fuse's internal loop. Not safe for
// concurrent use; one Run per goroutine.
type Run struct {
	e         *engine
	lastStamp int32
}

// NewRun builds the stepping engine for one fusion configuration. The
// OnRound hook is not supported in stepping mode (per-shard rounds are
// partial views; the coordinator owns the global round).
func (c *Compiled) NewRun(cfg Config) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-4
	}
	cfg.OnRound = nil
	return &Run{e: newEngine(c.g, cfg), lastStamp: 1}, nil
}

// NumProvenances reports the graph's provenance count — the length
// ProvPartials and GoldCounts results are indexed by.
func (r *Run) NumProvenances() int { return len(r.e.g.provKeys) }

// ProvKey names a local provenance; coordinators use it to build the
// cross-shard provenance table.
func (r *Run) ProvKey(p int32) string { return r.e.g.provKeys[p] }

// Epsilon is the run's effective convergence threshold (the configured one,
// or the engine default) — coordinators test the merged delta against it.
func (r *Run) Epsilon() float64 { return r.e.cfg.Epsilon }

// GoldCounts tallies the §4.3.3 per-provenance (true, labeled) gold counts,
// or (nil, nil) when no GoldLabeler is configured. Counts are integers;
// summing them across shards and applying GoldInitAccuracy reproduces the
// unsharded initialization exactly.
func (r *Run) GoldCounts() (trueN, labeled []int32) {
	if r.e.cfg.GoldLabeler == nil {
		return nil, nil
	}
	return r.e.goldCounts()
}

// SetProvAccuracy installs a provenance accuracy and marks the provenance
// evaluated (for the §4.3.2 coverage filter) — the broadcast half of the
// cross-shard stage-II merge, also used to seed gold-initialized and
// warm-started accuracies.
func (r *Run) SetProvAccuracy(p int32, acc float64) {
	r.e.provAcc[p] = acc
	r.e.provDefault[p] = false
}

// StageI scores every data item with the current provenance accuracies as
// EM round `round` (0-based) and remembers the round's stamp for Finish.
func (r *Run) StageI(round int) {
	r.e.stageI(round)
	r.lastStamp = int32(round + 1)
}

// ProvPartials writes each provenance's stage-II statistic for `round` —
// the (probability sum, scored-claim count) pair whose quotient is the
// re-estimated accuracy — into sums and cnts (each of length
// NumProvenances). cnts[p] == 0 means provenance p scored no claims this
// round and must keep its current accuracy. Provenances above SampleL
// report their deterministic reservoir sample instead, so a provenance
// split across shards samples per shard — a documented K>1 divergence
// (never reached at the default SampleL).
func (r *Run) ProvPartials(round int, sums []float64, cnts []int32) {
	e := r.e
	stamp := int32(round + 1)
	e.parallelRange(len(e.g.provKeys), func(w, lo, hi int) {
		sc := &e.scratches[w]
		for p := lo; p < hi; p++ {
			sums[p], cnts[p] = e.provStat(sc, int32(p), stamp)
		}
	})
}

// Finish runs stage III against the last StageI's stamp and returns the
// shard's result: fused triples in compiled order, Unpredicted counted, the
// local provenance-accuracy map, and Rounds as given (the coordinator's
// global round count).
func (r *Run) Finish(rounds int) *Result {
	res := r.e.stageIII(r.lastStamp)
	res.Rounds = rounds
	res.ProvAccuracy = make(map[string]float64, len(r.e.g.provKeys))
	for p, key := range r.e.g.provKeys {
		res.ProvAccuracy[key] = r.e.provAcc[p]
	}
	return res
}
