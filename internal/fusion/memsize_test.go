package fusion

import (
	"fmt"
	"testing"

	"kfusion/internal/kb"
)

// TestApproxBytes pins the accounting walk's basic sanity: deterministic,
// growing with the corpus, and roughly linear in claim count.
func TestApproxBytes(t *testing.T) {
	mk := func(n int) *Compiled {
		claims := make([]Claim, n)
		for i := range claims {
			claims[i] = Claim{
				Triple: kb.Triple{
					Subject:   kb.EntityID(fmt.Sprintf("s%d", i%50)),
					Predicate: "/p/x",
					Object:    kb.StringObject(fmt.Sprintf("v%d", i%7)),
				},
				Prov: fmt.Sprintf("E%d|url%d", i%5, i%90),
				Conf: -1,
			}
		}
		return MustCompile(claims)
	}
	small, big := mk(200), mk(2000)
	a, b := small.ApproxBytes(), big.ApproxBytes()
	if a <= 0 || b <= 0 {
		t.Fatalf("non-positive sizes: %d, %d", a, b)
	}
	if b <= a {
		t.Fatalf("10x corpus not larger: %d vs %d", a, b)
	}
	if got := small.ApproxBytes(); got != a {
		t.Fatalf("not deterministic: %d then %d", a, got)
	}
}
