package fusion

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"kfusion/internal/kb"
)

// assertBitIdentical requires two results to be exactly equal — same triple
// order, same bits in every float. Reusing a Compiled across configs must
// not perturb anything, because the graph carries no per-run state.
func assertBitIdentical(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: Rounds = %d, want %d", name, got.Rounds, want.Rounds)
	}
	if got.Unpredicted != want.Unpredicted {
		t.Fatalf("%s: Unpredicted = %d, want %d", name, got.Unpredicted, want.Unpredicted)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", name, len(got.Triples), len(want.Triples))
	}
	for i := range got.Triples {
		if got.Triples[i] != want.Triples[i] {
			t.Fatalf("%s: triple %d differs: %+v vs %+v", name, i, got.Triples[i], want.Triples[i])
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: %d provenances, want %d", name, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for p, a := range got.ProvAccuracy {
		if wa, ok := want.ProvAccuracy[p]; !ok || wa != a {
			t.Fatalf("%s: ProvAccuracy[%q] = %v, want %v", name, p, a, wa)
		}
	}
}

// TestCompiledReuseBitIdentical is the no-leak contract of the Compiled
// handle: one compilation fused under every method (and twice under one
// config) must give results bit-identical to fresh compile-per-config
// fusion.Fuse calls. Any config-dependent state smuggled into the shared
// graph would show up here.
func TestCompiledReuseBitIdentical(t *testing.T) {
	claims := randomClaims(20260728, 400)
	compiled := MustCompile(claims)

	goldLabeler := func(tr kb.Triple) (bool, bool) {
		h := kb.Triple.Hash(tr)
		return h%3 != 0, h%2 == 0
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"VOTE", VoteConfig()},
		{"ACCU", AccuConfig()},
		{"POPACCU", PopAccuConfig()},
		{"POPACCU+unsup", PopAccuPlusUnsupConfig()},
		{"POPACCU+", PopAccuPlusConfig(goldLabeler)},
	}
	for _, c := range cfgs {
		fresh := MustFuse(claims, c.cfg)
		reused := compiled.MustFuse(c.cfg)
		assertBitIdentical(t, c.name, reused, fresh)
	}

	// Twice under one config, interleaved with the sweep above: the n-th run
	// must not see anything from the previous n-1.
	again := compiled.MustFuse(PopAccuConfig())
	assertBitIdentical(t, "POPACCU/repeat", again, MustFuse(claims, PopAccuConfig()))
}

// TestCompiledConcurrentFuse exercises simultaneous Fuse calls on one
// Compiled: the graph is immutable shared input, so parallel runs must all
// produce the same bits.
func TestCompiledConcurrentFuse(t *testing.T) {
	claims := randomClaims(77, 300)
	compiled := MustCompile(claims)
	base := compiled.MustFuse(PopAccuConfig())
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := compiled.MustFuse(PopAccuConfig())
			for i := range res.Triples {
				if res.Triples[i] != base.Triples[i] {
					t.Errorf("concurrent fuse diverged at triple %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCompileEmpty pins the degenerate input: compiling no claims yields an
// empty, fusable graph.
func TestCompileEmpty(t *testing.T) {
	compiled := MustCompile(nil)
	if compiled.NumClaims() != 0 || compiled.NumItems() != 0 || compiled.NumTriples() != 0 {
		t.Fatalf("empty compile not empty: %d claims, %d items, %d triples",
			compiled.NumClaims(), compiled.NumItems(), compiled.NumTriples())
	}
	res := compiled.MustFuse(VoteConfig())
	if len(res.Triples) != 0 {
		t.Fatalf("empty fuse produced %d triples", len(res.Triples))
	}
}

// shardedClaims builds a claim set large enough to trigger the parallel
// interning path, with provenances interleaved across shard boundaries plus
// rare keys that first occur deep inside later shards.
func shardedClaims(n int) []Claim {
	claims := make([]Claim, n)
	for i := 0; i < n; i++ {
		prov := fmt.Sprintf("prov%d", i%2048)
		if i%97 == 0 {
			prov = fmt.Sprintf("rare%d", i)
		}
		claims[i] = Claim{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", i/8)),
				Predicate: "p",
				Object:    kb.StringObject(fmt.Sprintf("v%d", i%4)),
			},
			Prov:      prov,
			Extractor: fmt.Sprintf("X%d", i%13),
			Conf:      -1,
		}
	}
	return claims
}

// TestInternClaimsParallelMatchesSequential pins the shard-and-merge
// interning (pairwise-merged key lists + parallel remap) against the
// sequential loop: identical IDs, identical key tables, for any worker
// count.
func TestInternClaimsParallelMatchesSequential(t *testing.T) {
	claims := shardedClaims(internShardThreshold + internShardThreshold/2)
	seq, seqIdx := compile(claims, 1, 0)
	for _, workers := range []int{2, 3, 8} {
		par, parIdx := compile(claims, workers, 0)
		if parIdx.nExt != seqIdx.nExt {
			t.Fatalf("workers=%d: %d extractor keys, want %d", workers, parIdx.nExt, seqIdx.nExt)
		}
		if len(par.provKeys) != len(seq.provKeys) {
			t.Fatalf("workers=%d: %d prov keys, want %d", workers, len(par.provKeys), len(seq.provKeys))
		}
		for i := range seq.provKeys {
			if par.provKeys[i] != seq.provKeys[i] {
				t.Fatalf("workers=%d: provKeys[%d] = %q, want %q", workers, i, par.provKeys[i], seq.provKeys[i])
			}
		}
		if len(par.triples) != len(seq.triples) {
			t.Fatalf("workers=%d: %d triples, want %d", workers, len(par.triples), len(seq.triples))
		}
		for i := range seq.triples {
			if par.triples[i] != seq.triples[i] {
				t.Fatalf("workers=%d: triples[%d] differs", workers, i)
			}
		}
		for i := range claims {
			if par.provOfClaim[i] != seq.provOfClaim[i] {
				t.Fatalf("workers=%d: provOfClaim[%d] = %d, want %d", workers, i, par.provOfClaim[i], seq.provOfClaim[i])
			}
			if parIdx.extOfClaim[i] != seqIdx.extOfClaim[i] {
				t.Fatalf("workers=%d: extOfClaim[%d] = %d, want %d", workers, i, parIdx.extOfClaim[i], seqIdx.extOfClaim[i])
			}
			if par.tripleOfClaim[i] != seq.tripleOfClaim[i] {
				t.Fatalf("workers=%d: tripleOfClaim[%d] = %d, want %d", workers, i, par.tripleOfClaim[i], seq.tripleOfClaim[i])
			}
		}
	}
}

// TestCompileLargeWorkerIndependent runs the full compile above the parallel
// interning threshold at several worker counts and requires bit-identical
// fusion results — the large-input version of the existing worker-
// independence pins.
func TestCompileLargeWorkerIndependent(t *testing.T) {
	claims := shardedClaims(internShardThreshold + 512)
	base := MustFuse(claims, PopAccuConfig())
	for _, workers := range []int{1, 4} {
		cfg := PopAccuConfig()
		cfg.Workers = workers
		assertBitIdentical(t, fmt.Sprintf("workers=%d", workers), MustFuse(claims, cfg), base)
	}
}

// TestStageIIOversampleDivergenceBounded pins the one documented
// approximation boundary between the engines: when a provenance exceeds
// SampleL scored claims, stage II's reservoir consumes the probabilities in
// shuffle emission order in FuseReference but in compiled claim order in
// Fuse, so the two samples — equally sized, equally deterministic, drawn
// from the same scored-probability multiset — can differ. Exactness is not
// required: both accuracy estimates are means of uniform SampleL-sized
// samples of the same stream, so they concentrate around the same full mean
// with sampling error O(spread/√L), and the EM update contracts rather than
// amplifies the gap. This test bounds the drift and re-asserts bit-level
// (1e-12) agreement once SampleL stops binding.
func TestStageIIOversampleDivergenceBounded(t *testing.T) {
	var claims []Claim
	for j := 0; j < 240; j++ {
		item := fmt.Sprintf("s%d", j)
		claims = append(claims, cl(item, "p", "v", "big"))
		if j%2 == 0 {
			claims = append(claims, cl(item, "p", "v", fmt.Sprintf("sup%d", j%7)))
		}
		if j%3 == 0 {
			claims = append(claims, cl(item, "p", "w", fmt.Sprintf("con%d", j%5)))
		}
	}
	cfg := PopAccuConfig()
	cfg.SampleL = 16 // "big" has 240 scored claims -> reservoir binds
	cfg.SampleSeed = 11
	cfg.Epsilon = 1e-300 // pin the round count in both engines

	want, err := FuseReference(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fuse(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Everything discrete still matches exactly.
	if got.Rounds != want.Rounds {
		t.Fatalf("Rounds = %d, want %d", got.Rounds, want.Rounds)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%d triples, want %d", len(got.Triples), len(want.Triples))
	}
	wantBy := want.ByTriple()
	const driftTol = 0.1
	maxProbDrift := 0.0
	for _, f := range got.Triples {
		w, ok := wantBy[f.Triple]
		if !ok {
			t.Fatalf("unexpected triple %v", f.Triple)
		}
		if f.Predicted != w.Predicted || f.Provenances != w.Provenances ||
			f.ItemProvenances != w.ItemProvenances || f.Extractors != w.Extractors {
			t.Fatalf("%v support mismatch: %+v vs %+v", f.Triple, f, w)
		}
		if d := math.Abs(f.Probability - w.Probability); d > maxProbDrift {
			maxProbDrift = d
		}
	}
	maxAccDrift := 0.0
	for p, a := range got.ProvAccuracy {
		if d := math.Abs(a - want.ProvAccuracy[p]); d > maxAccDrift {
			maxAccDrift = d
		}
	}
	if maxAccDrift > driftTol || maxProbDrift > driftTol {
		t.Errorf("divergence beyond sampling-noise bound: acc drift %.4f, prob drift %.4f (tol %.2f)",
			maxAccDrift, maxProbDrift, driftTol)
	}
	if maxAccDrift == 0 {
		t.Error("expected the oversampled provenance to drift; SampleL never bound — test scenario broken")
	}

	// With SampleL no longer binding, the engines must agree bit-tight again.
	cfg.SampleL = 1 << 20
	want, err = FuseReference(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Fuse(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "sampleL-unbound", got, want)
}
