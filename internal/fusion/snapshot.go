package fusion

import (
	"fmt"
	"io"
	"sort"

	"kfusion/internal/kb"
	"kfusion/internal/wire"
)

// snapshotVersion versions the Compiled wire encoding. Bump on any layout
// change; DecodeSnapshot rejects mismatches so a store written by a newer
// binary degrades to recompile instead of misparsing.
const snapshotVersion = 1

// EncodeSnapshot serializes the compiled claim graph — every dense ID table
// and CSR span verbatim, no recomputation on decode — so a restored graph is
// field-identical to the encoded one and Append/Fuse behave bit-identically.
// The encoding is canonical: one graph always produces the same bytes.
//
// The interning index (the Append byproduct) is NOT serialized; a decoded
// generation rebuilds it on first Append (see takeIndex), trading one linear
// rebuild for a format free of map iteration order.
func (c *Compiled) EncodeSnapshot(out io.Writer) error {
	g := c.g
	w := wire.NewWriter(out)
	w.U8(snapshotVersion)
	w.Int(c.gen)

	// Key tables. The extractor axis is aggregated in the graph, so its key
	// table and per-claim assignment are re-interned here in claim order —
	// the same first-occurrence order compile assigns, hence canonical.
	extKeys, extOfClaim := internExtractors(g.claims)
	w.Strings(g.provKeys)
	w.Strings(extKeys)
	kb.EncodeTriples(w, g.triples)
	kb.EncodeItems(w, g.items)

	// Per-claim columns; Triple and Prov are recovered through the ID maps.
	conf := make([]float64, len(g.claims))
	for i := range g.claims {
		conf[i] = g.claims[i].Conf
	}
	w.F64s(conf)
	w.Int32s(extOfClaim)
	w.Int32s(g.provOfClaim)
	w.Int32s(g.tripleOfClaim)
	w.Int32s(g.localOfClaim)

	// Item and triple structure.
	w.Int32s(g.itemClaimStart)
	w.Int32s(g.itemClaims)
	w.Int32s(g.itemCandStart)
	w.Int32s(g.itemCands)
	w.Int32s(g.itemOfTriple)
	w.Int32s(g.localOfTriple)
	w.Int32s(g.tripleClaimStart)
	w.Int32s(g.tripleClaims)
	w.Int32s(g.tripleExtractors)

	// Provenance structure.
	w.Int32s(g.provClaimStart)
	w.Int32s(g.provClaims)

	w.Int(g.maxCandidates)
	return w.Err()
}

// internExtractors assigns extractor IDs in claim-order first occurrence —
// the exact assignment compile produces.
func internExtractors(claims []Claim) (keys []string, ofClaim []int32) {
	idx := make(map[string]int32, 32)
	ofClaim = make([]int32, len(claims))
	for i := range claims {
		x := claims[i].Extractor
		id, ok := idx[x]
		if !ok {
			id = int32(len(keys))
			idx[x] = id
			keys = append(keys, x)
		}
		ofClaim[i] = id
	}
	return keys, ofClaim
}

// DecodeSnapshot reconstructs a Compiled from EncodeSnapshot bytes. Every
// length, ID and CSR span is validated before use, so corrupt or truncated
// input returns an error instead of panicking; the checks make the function
// safe as a fuzz target over raw bytes.
func DecodeSnapshot(data []byte) (*Compiled, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("fusion: snapshot version %d, want %d", v, snapshotVersion)
	}
	gen := r.Int()

	provKeys := r.Strings()
	extKeys := r.Strings()
	triples, err := kb.DecodeTriples(r)
	if err != nil {
		return nil, fmt.Errorf("fusion: snapshot: %w", err)
	}
	items, err := kb.DecodeItems(r)
	if err != nil {
		return nil, fmt.Errorf("fusion: snapshot: %w", err)
	}

	conf := r.F64s()
	extOfClaim := r.Int32s()
	g := &graph{
		provKeys:      provKeys,
		triples:       triples,
		items:         items,
		provOfClaim:   r.Int32s(),
		tripleOfClaim: r.Int32s(),
		localOfClaim:  r.Int32s(),

		itemClaimStart:   r.Int32s(),
		itemClaims:       r.Int32s(),
		itemCandStart:    r.Int32s(),
		itemCands:        r.Int32s(),
		itemOfTriple:     r.Int32s(),
		localOfTriple:    r.Int32s(),
		tripleClaimStart: r.Int32s(),
		tripleClaims:     r.Int32s(),
		tripleExtractors: r.Int32s(),

		provClaimStart: r.Int32s(),
		provClaims:     r.Int32s(),
	}
	g.maxCandidates = r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fusion: snapshot: %w", err)
	}

	n := len(conf)
	nTriples := len(triples)
	nItems := len(items)
	nProvs := len(provKeys)
	for _, c := range []struct {
		name string
		got  int
	}{
		{"extOfClaim", len(extOfClaim)},
		{"provOfClaim", len(g.provOfClaim)},
		{"tripleOfClaim", len(g.tripleOfClaim)},
		{"localOfClaim", len(g.localOfClaim)},
	} {
		if c.got != n {
			return nil, fmt.Errorf("fusion: snapshot: %s has %d entries, want %d claims", c.name, c.got, n)
		}
	}
	for _, c := range []struct {
		name string
		ids  []int32
		n    int
	}{
		{"extOfClaim", extOfClaim, len(extKeys)},
		{"provOfClaim", g.provOfClaim, nProvs},
		{"tripleOfClaim", g.tripleOfClaim, nTriples},
		{"itemOfTriple", g.itemOfTriple, nItems},
		{"itemClaims", g.itemClaims, n},
		{"itemCands", g.itemCands, nTriples},
		{"tripleClaims", g.tripleClaims, n},
		{"provClaims", g.provClaims, n},
	} {
		if err := wire.CheckIDs(c.name, c.ids, c.n); err != nil {
			return nil, fmt.Errorf("fusion: snapshot: %w", err)
		}
	}
	if len(g.itemOfTriple) != nTriples || len(g.localOfTriple) != nTriples || len(g.tripleExtractors) != nTriples {
		return nil, fmt.Errorf("fusion: snapshot: triple column lengths disagree with %d triples", nTriples)
	}
	for _, c := range []struct {
		name    string
		start   []int32
		groups  int
		flatLen int
	}{
		{"itemClaimStart", g.itemClaimStart, nItems, len(g.itemClaims)},
		{"itemCandStart", g.itemCandStart, nItems, len(g.itemCands)},
		{"tripleClaimStart", g.tripleClaimStart, nTriples, len(g.tripleClaims)},
		{"provClaimStart", g.provClaimStart, nProvs, len(g.provClaims)},
	} {
		if err := wire.CheckCSR(c.name, c.start, c.groups, c.flatLen); err != nil {
			return nil, fmt.Errorf("fusion: snapshot: %w", err)
		}
	}

	// Deep structural invariants. The fusion engine indexes candidate scratch
	// by these relations without bounds checks, so a decoded graph must
	// satisfy them exactly, not just stay in ID range.
	for t := 0; t < nTriples; t++ {
		i := g.itemOfTriple[t]
		lo, hi := g.itemCandStart[i], g.itemCandStart[i+1]
		l := g.localOfTriple[t]
		if l < 0 || l >= hi-lo || g.itemCands[lo+l] != int32(t) {
			return nil, fmt.Errorf("fusion: snapshot: triple %d has inconsistent candidate position", t)
		}
	}
	for i := 0; i < nItems; i++ {
		for _, tc := range g.itemCands[g.itemCandStart[i]:g.itemCandStart[i+1]] {
			if g.itemOfTriple[tc] != int32(i) {
				return nil, fmt.Errorf("fusion: snapshot: triple %d listed under item %d, belongs to %d", tc, i, g.itemOfTriple[tc])
			}
		}
		for _, cl := range g.itemClaims[g.itemClaimStart[i]:g.itemClaimStart[i+1]] {
			if g.itemOfTriple[g.tripleOfClaim[cl]] != int32(i) {
				return nil, fmt.Errorf("fusion: snapshot: claim %d grouped under item %d, belongs to %d", cl, i, g.itemOfTriple[g.tripleOfClaim[cl]])
			}
		}
	}
	for i := 0; i < n; i++ {
		if g.localOfClaim[i] != g.localOfTriple[g.tripleOfClaim[i]] {
			return nil, fmt.Errorf("fusion: snapshot: claim %d candidate offset disagrees with its triple", i)
		}
	}
	maxCand := 0
	for i := 0; i < nItems; i++ {
		if c := int(g.itemCandStart[i+1] - g.itemCandStart[i]); c > maxCand {
			maxCand = c
		}
	}
	if g.maxCandidates != maxCand {
		return nil, fmt.Errorf("fusion: snapshot: maxCandidates %d, computed %d", g.maxCandidates, maxCand)
	}

	g.claims = make([]Claim, n)
	for i := range g.claims {
		g.claims[i] = Claim{
			Triple:    triples[g.tripleOfClaim[i]],
			Prov:      provKeys[g.provOfClaim[i]],
			Conf:      conf[i],
			Extractor: extKeys[extOfClaim[i]],
		}
	}
	// idx stays nil: the first Append rebuilds it from the graph.
	return &Compiled{g: g, gen: gen}, nil
}

// EncodeResult serializes a fusion Result (the warm-start payload plus the
// fused triples, so a resumed run can re-emit output without re-fusing).
// ProvAccuracy is written in sorted key order, making the bytes canonical.
func EncodeResult(out io.Writer, res *Result) error {
	w := wire.NewWriter(out)
	w.U8(snapshotVersion)
	w.Int(res.Rounds)
	w.Int(res.Unpredicted)

	keys := make([]string, 0, len(res.ProvAccuracy))
	for k := range res.ProvAccuracy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.F64(res.ProvAccuracy[k])
	}

	w.Int(len(res.Triples))
	for i := range res.Triples {
		f := &res.Triples[i]
		w.String(string(f.Triple.Subject))
		w.String(string(f.Triple.Predicate))
		w.String(f.Triple.Object.String())
		w.F64(f.Probability)
		w.Bool(f.Predicted)
		w.Int(f.Provenances)
		w.Int(f.ItemProvenances)
		w.Int(f.Extractors)
	}
	return w.Err()
}

// DecodeResult reconstructs a Result from EncodeResult bytes.
func DecodeResult(data []byte) (*Result, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("fusion: result version %d, want %d", v, snapshotVersion)
	}
	res := &Result{Rounds: r.Int(), Unpredicted: r.Int()}

	nAcc := r.Int()
	if r.Err() == nil && nAcc > r.Remaining() {
		return nil, fmt.Errorf("fusion: result: accuracy count %d exceeds input: %w", nAcc, wire.ErrTruncated)
	}
	if r.Err() == nil {
		res.ProvAccuracy = make(map[string]float64, nAcc)
		for i := 0; i < nAcc; i++ {
			k := r.String()
			v := r.F64()
			if r.Err() != nil {
				break
			}
			res.ProvAccuracy[k] = v
		}
	}

	nTriples := r.Int()
	if r.Err() == nil && nTriples > r.Remaining() {
		return nil, fmt.Errorf("fusion: result: triple count %d exceeds input: %w", nTriples, wire.ErrTruncated)
	}
	if r.Err() == nil && nTriples > 0 {
		res.Triples = make([]FusedTriple, 0, nTriples)
		for i := 0; i < nTriples; i++ {
			subj := r.String()
			pred := r.String()
			objStr := r.String()
			if r.Err() != nil {
				break
			}
			obj, err := kb.ParseObject(objStr)
			if err != nil {
				return nil, fmt.Errorf("fusion: result triple %d: %w", i, err)
			}
			res.Triples = append(res.Triples, FusedTriple{
				Triple:          kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: obj},
				Probability:     r.F64(),
				Predicted:       r.Bool(),
				Provenances:     r.Int(),
				ItemProvenances: r.Int(),
				Extractors:      r.Int(),
			})
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fusion: result: %w", err)
	}
	return res, nil
}

// SeedClaimStream rebuilds the claim-stream dedup state of an append-only
// feed from a restored generation: the compiled claims are exactly the
// (provenance, triple) pairs the uncrashed stream had seen, so Add calls on
// the returned stream continue it bit-identically.
func SeedClaimStream(g Granularity, c *Compiled) *ClaimStream {
	s := NewClaimStream(g)
	for i := range c.g.claims {
		cl := &c.g.claims[i]
		s.seen[provTriple{prov: cl.Prov, triple: cl.Triple}] = true
	}
	s.n = len(c.g.claims)
	return s
}
