package fusion

import (
	"math"
	"testing"

	"kfusion/internal/kb"
)

// claim builds a test claim quickly.
func cl(subj, pred, obj, prov string) Claim {
	return Claim{
		Triple: kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: kb.StringObject(obj)},
		Prov:   prov,
		Conf:   -1,
	}
}

func probOf(t *testing.T, res *Result, subj, pred, obj string) float64 {
	t.Helper()
	want := kb.Triple{Subject: kb.EntityID(subj), Predicate: kb.PredicateID(pred), Object: kb.StringObject(obj)}
	for _, f := range res.Triples {
		if f.Triple == want {
			if !f.Predicted {
				t.Fatalf("triple %v has no prediction", want)
			}
			return f.Probability
		}
	}
	t.Fatalf("triple %v not in result", want)
	return 0
}

func TestVoteProbabilities(t *testing.T) {
	claims := []Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "a", "p2"), cl("s", "p", "a", "p3"),
		cl("s", "p", "b", "p4"),
	}
	res := MustFuse(claims, VoteConfig())
	if got := probOf(t, res, "s", "p", "a"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("vote p(a) = %v, want 0.75", got)
	}
	if got := probOf(t, res, "s", "p", "b"); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("vote p(b) = %v, want 0.25", got)
	}
	if res.Rounds != 1 {
		t.Errorf("VOTE rounds = %d, want 1", res.Rounds)
	}
}

func TestVoteSingleClaimIsOne(t *testing.T) {
	res := MustFuse([]Claim{cl("s", "p", "a", "p1")}, VoteConfig())
	if got := probOf(t, res, "s", "p", "a"); got != 1 {
		t.Errorf("vote singleton = %v, want 1 (the paper's criticism of VOTE)", got)
	}
}

func TestAccuSingleClaimNearDefault(t *testing.T) {
	// One claim from one provenance with default accuracy 0.8 and N=100:
	// p = 400/(400+99) ≈ 0.80.
	res := MustFuse([]Claim{cl("s", "p", "a", "p1")}, AccuConfig())
	got := probOf(t, res, "s", "p", "a")
	if math.Abs(got-0.8) > 0.02 {
		t.Errorf("ACCU singleton = %v, want ≈0.80", got)
	}
}

func TestPopAccuSingleClaimAtDefault(t *testing.T) {
	// The paper: "that single triple would carry this default accuracy as
	// its probability" — the 0.8 calibration valley.
	res := MustFuse([]Claim{cl("s", "p", "a", "p1")}, PopAccuConfig())
	got := probOf(t, res, "s", "p", "a")
	if math.Abs(got-0.8) > 0.02 {
		t.Errorf("POPACCU singleton = %v, want ≈0.80", got)
	}
}

func TestPopAccuTwoWayConflictNearHalf(t *testing.T) {
	// With default accuracies (round 1), a 1-vs-1 conflict lands near 0.5 —
	// the paper's 0.5 calibration valley.
	cfg := PopAccuConfig()
	cfg.Rounds = 1
	claims := []Claim{cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2")}
	res := MustFuse(claims, cfg)
	pa, pb := probOf(t, res, "s", "p", "a"), probOf(t, res, "s", "p", "b")
	if math.Abs(pa-pb) > 1e-9 {
		t.Errorf("symmetric conflict asymmetric: %v vs %v", pa, pb)
	}
	if pa < 0.4 || pa > 0.55 {
		t.Errorf("two-way conflict p = %v, want ≈0.5 (the 0.5 valley)", pa)
	}
}

func TestPopAccuIsolatedConflictDriftsDown(t *testing.T) {
	// Over multiple EM rounds, two isolated provenances that only ever
	// contradict each other drag each other's accuracy (and the triple
	// probabilities) down — both end below the round-1 value.
	claims := []Claim{cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2")}
	r1cfg := PopAccuConfig()
	r1cfg.Rounds = 1
	r1 := probOf(t, MustFuse(claims, r1cfg), "s", "p", "a")
	r5 := probOf(t, MustFuse(claims, PopAccuConfig()), "s", "p", "a")
	if r5 >= r1 {
		t.Errorf("isolated conflict should drift down: round1=%.3f round5=%.3f", r1, r5)
	}
}

func TestMajorityWinsAllMethods(t *testing.T) {
	claims := []Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "a", "p2"), cl("s", "p", "a", "p3"),
		cl("s", "p", "a", "p4"), cl("s", "p", "a", "p5"),
		cl("s", "p", "b", "p6"), cl("s", "p", "b", "p7"),
	}
	for _, cfg := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig()} {
		res := MustFuse(claims, cfg)
		pa, pb := probOf(t, res, "s", "p", "a"), probOf(t, res, "s", "p", "b")
		if pa <= pb {
			t.Errorf("%v: majority value not preferred: p(a)=%v p(b)=%v", cfg.Method, pa, pb)
		}
	}
}

func TestProbabilitiesInRangeAndItemSumBounded(t *testing.T) {
	claims := []Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "c", "p3"),
		cl("s", "p", "a", "p4"), cl("s2", "p", "x", "p1"), cl("s2", "p", "y", "p4"),
	}
	for _, cfg := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig()} {
		res := MustFuse(claims, cfg)
		sums := map[kb.DataItem]float64{}
		for _, f := range res.Triples {
			if !f.Predicted {
				continue
			}
			if f.Probability < 0 || f.Probability > 1 {
				t.Fatalf("%v: probability out of range: %v", cfg.Method, f.Probability)
			}
			sums[f.Item()] += f.Probability
		}
		for item, s := range sums {
			if s > 1+1e-9 {
				t.Errorf("%v: item %v probabilities sum to %v > 1", cfg.Method, item, s)
			}
		}
	}
}

func TestAccuIterationSharpensGoodSources(t *testing.T) {
	// Provenances g1-g3 always agree (on items i1..i5); provenance bad
	// disagrees everywhere. After iteration the agreeing provenances should
	// earn high accuracy and dominate a 3-vs-1... actually 3-vs-1 is already
	// a majority; the sharper check: on a fresh item where only g1 and bad
	// conflict 1-vs-1, g1 should win after accuracy estimation.
	var claims []Claim
	items := []string{"i1", "i2", "i3", "i4", "i5"}
	for _, it := range items {
		claims = append(claims,
			cl(it, "p", "v", "g1"), cl(it, "p", "v", "g2"), cl(it, "p", "v", "g3"),
			cl(it, "p", "w", "bad"),
		)
	}
	claims = append(claims, cl("fresh", "p", "v", "g1"), cl("fresh", "p", "w", "bad"))
	for _, cfg := range []Config{AccuConfig(), PopAccuConfig()} {
		res := MustFuse(claims, cfg)
		pv, pw := probOf(t, res, "fresh", "p", "v"), probOf(t, res, "fresh", "p", "w")
		if pv <= pw {
			t.Errorf("%v: trusted source did not win the 1-vs-1: p(v)=%.3f p(w)=%.3f", cfg.Method, pv, pw)
		}
		if res.ProvAccuracy["g1"] <= res.ProvAccuracy["bad"] {
			t.Errorf("%v: accuracy(g1)=%.3f <= accuracy(bad)=%.3f", cfg.Method,
				res.ProvAccuracy["g1"], res.ProvAccuracy["bad"])
		}
	}
}

func TestPopAccuRobustToPopularFalseValue(t *testing.T) {
	// A popular false value shared by many weak provenances that are wrong
	// elsewhere; ACCU with uniform false values trusts the crowd more than
	// POPACCU, which discounts popular wrong values.
	var claims []Claim
	// Establish that c1..c5 are inaccurate: they disagree with 6 good
	// provenances on items e1..e4.
	for _, it := range []string{"e1", "e2", "e3", "e4"} {
		for _, g := range []string{"g1", "g2", "g3", "g4", "g5", "g6"} {
			claims = append(claims, cl(it, "p", "true-"+it, g))
		}
		for _, c := range []string{"c1", "c2", "c3", "c4", "c5"} {
			claims = append(claims, cl(it, "p", "copied-wrong", c))
		}
	}
	// Target item: copiers vs two good provenances.
	for _, c := range []string{"c1", "c2", "c3", "c4", "c5"} {
		claims = append(claims, cl("target", "p", "copied-wrong", c))
	}
	claims = append(claims, cl("target", "p", "right", "g1"), cl("target", "p", "right", "g2"))

	pop := MustFuse(claims, PopAccuConfig())
	pRight := probOf(t, pop, "target", "p", "right")
	pWrong := probOf(t, pop, "target", "p", "copied-wrong")
	if pRight <= pWrong {
		t.Errorf("POPACCU: popular false value beat trusted minority: right=%.3f wrong=%.3f", pRight, pWrong)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	claims := []Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "a", "p3"),
		cl("t", "p", "c", "p1"), cl("t", "p", "d", "p2"),
	}
	for _, cfg := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig()} {
		a, b := MustFuse(claims, cfg), MustFuse(claims, cfg)
		if len(a.Triples) != len(b.Triples) {
			t.Fatalf("%v: result sizes differ", cfg.Method)
		}
		am, bm := a.ByTriple(), b.ByTriple()
		for tr, fa := range am {
			if fb := bm[tr]; fa != fb {
				t.Fatalf("%v: %v differs: %+v vs %+v", cfg.Method, tr, fa, fb)
			}
		}
	}
}

func TestCoverageFilterDropsSingletons(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.FilterByCoverage = true
	claims := []Claim{
		// Item with repeated support: scored.
		cl("s", "p", "a", "p1"), cl("s", "p", "a", "p2"),
		// Lone item from a lone provenance: cannot evaluate, no prediction.
		cl("lone", "p", "x", "lonely"),
	}
	res := MustFuse(claims, cfg)
	if res.Unpredicted != 1 {
		t.Errorf("Unpredicted = %d, want 1", res.Unpredicted)
	}
	for _, f := range res.Triples {
		if f.Triple.Subject == "lone" && f.Predicted {
			t.Error("coverage-filtered triple still predicted")
		}
		if f.Triple.Subject == "s" && !f.Predicted {
			t.Error("supported triple lost its prediction")
		}
	}
}

func TestAccuracyThresholdFallback(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.AccuracyThreshold = 0.6
	// Gold-initialize one provenance below threshold so its items fall back.
	cfg.GoldLabeler = func(tr kb.Triple) (bool, bool) {
		return false, tr.Subject == "labeled"
	}
	claims := []Claim{
		cl("labeled", "p", "a", "weak"), cl("labeled", "p", "a", "weak2"),
		cl("only", "p", "x", "weak"),
	}
	// weak gets gold accuracy ≈0 (its labeled claim is false) → filtered;
	// item "only" loses all provenances → fallback to mean accuracy.
	res := MustFuse(claims, cfg)
	found := false
	for _, f := range res.Triples {
		if f.Triple.Subject == "only" {
			found = true
			if !f.Predicted {
				t.Error("fallback did not assign a probability")
			}
			if f.Probability > 0.1 {
				t.Errorf("fallback probability %.3f should reflect the weak provenance accuracy", f.Probability)
			}
		}
	}
	if !found {
		t.Fatal("item lost entirely")
	}
}

func TestGoldInitUsesLabels(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.Rounds = 1
	truths := map[string]bool{"a": true, "b": false}
	cfg.GoldLabeler = func(tr kb.Triple) (bool, bool) {
		v, ok := truths[tr.Object.Str]
		return v, ok
	}
	claims := []Claim{
		cl("s1", "p", "a", "good"), cl("s2", "p", "a", "good"),
		cl("s3", "p", "b", "bad"), cl("s4", "p", "b", "bad"),
	}
	res := MustFuse(claims, cfg)
	if res.ProvAccuracy["good"] <= res.ProvAccuracy["bad"] {
		t.Errorf("gold init: accuracy(good)=%.3f <= accuracy(bad)=%.3f",
			res.ProvAccuracy["good"], res.ProvAccuracy["bad"])
	}
}

func TestGoldSampleRateZeroKeepsSomeDefaults(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.GoldLabeler = func(tr kb.Triple) (bool, bool) { return true, true }
	cfg.GoldSampleRate = 0.0001 // nearly no labels survive sampling
	claims := []Claim{cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2")}
	res, err := Fuse(claims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // behaviourally: must not crash and must keep defaults
}

func TestSamplingCapStillPredicts(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.SampleL = 8
	cfg.SampleSeed = 7
	var claims []Claim
	for i := 0; i < 200; i++ {
		claims = append(claims, cl("s", "p", "a", "prov"+string(rune('A'+i%26))+string(rune('0'+i/26))))
	}
	claims = append(claims, cl("s", "p", "b", "dissent"))
	res := MustFuse(claims, cfg)
	// The majority triple must still be predicted and dominant.
	var pa float64
	for _, f := range res.Triples {
		if f.Triple.Object.Str == "a" && f.Predicted {
			pa = f.Probability
		}
	}
	if pa < 0.5 {
		t.Errorf("sampled fusion lost the majority value: p(a)=%v", pa)
	}
	// And sampling must be deterministic.
	res2 := MustFuse(claims, cfg)
	if res.ByTriple()[claims[0].Triple] != res2.ByTriple()[claims[0].Triple] {
		t.Error("sampling not deterministic")
	}
}

func TestOnRoundCallback(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.Rounds = 3
	cfg.Epsilon = 0 // force full rounds
	var rounds []int
	cfg.OnRound = func(r int, probs map[kb.Triple]float64) {
		rounds = append(rounds, r)
		if len(probs) == 0 {
			t.Error("empty probs in OnRound")
		}
	}
	claims := []Claim{cl("s", "p", "a", "p1"), cl("s", "p", "b", "p2"), cl("s", "p", "a", "p3")}
	MustFuse(claims, cfg)
	if len(rounds) != 3 {
		t.Errorf("OnRound fired %d times, want 3", len(rounds))
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	cfg := PopAccuConfig()
	cfg.Rounds = 50
	cfg.Epsilon = 1e-6
	claims := []Claim{
		cl("s", "p", "a", "p1"), cl("s", "p", "a", "p2"), cl("s", "p", "b", "p3"),
	}
	res := MustFuse(claims, cfg)
	if res.Rounds >= 50 {
		t.Errorf("no early convergence: rounds = %d", res.Rounds)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := AccuConfig()
	bad.DefaultAccuracy = 1.5
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted DefaultAccuracy=1.5")
	}
	bad = AccuConfig()
	bad.NFalse = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted NFalse=0")
	}
	bad = PopAccuConfig()
	bad.SampleL = 0
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted SampleL=0")
	}
	bad = PopAccuConfig()
	bad.AccuracyThreshold = 1
	if _, err := Fuse(nil, bad); err == nil {
		t.Error("accepted AccuracyThreshold=1")
	}
}

func TestEmptyInput(t *testing.T) {
	res := MustFuse(nil, PopAccuConfig())
	if len(res.Triples) != 0 {
		t.Errorf("empty input produced %d triples", len(res.Triples))
	}
}

func TestSupportCounts(t *testing.T) {
	claims := []Claim{
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("a")}, Prov: "x1", Extractor: "E1"},
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("a")}, Prov: "x2", Extractor: "E2"},
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("a")}, Prov: "x3", Extractor: "E1"},
		{Triple: kb.Triple{Subject: "s", Predicate: "p", Object: kb.StringObject("b")}, Prov: "x4", Extractor: "E3"},
	}
	res := MustFuse(claims, VoteConfig())
	for _, f := range res.Triples {
		switch f.Triple.Object.Str {
		case "a":
			if f.Provenances != 3 || f.ItemProvenances != 4 || f.Extractors != 2 {
				t.Errorf("support counts for a: %+v", f)
			}
		case "b":
			if f.Provenances != 1 || f.ItemProvenances != 4 || f.Extractors != 1 {
				t.Errorf("support counts for b: %+v", f)
			}
		}
	}
}

func TestGranularityKeys(t *testing.T) {
	x := testExtraction()
	cases := []struct {
		g    Granularity
		want string
	}{
		{GranExtractorURL, "TXT1|http://wiki001.example.com/p3"},
		{GranExtractorSite, "TXT1|wiki001.example.com"},
		{GranExtractorSitePred, "TXT1|wiki001.example.com|/people/person/birth_place"},
		{GranExtractorSitePredPattern, "TXT1|wiki001.example.com|/people/person/birth_place|tpl2|birth place"},
		{GranExtractorOnly, "TXT1|tpl2|birth place"},
		{GranSourceOnly, "http://wiki001.example.com/p3"},
	}
	for _, c := range cases {
		if got := c.g.Key(x); got != c.want {
			t.Errorf("%v key = %q, want %q", c.g, got, c.want)
		}
		if c.g.String() == "" {
			t.Error("empty granularity name")
		}
	}
}
