package fusion

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kfusion/internal/kb"
)

// randomClaims builds a reproducible random claim set from a seed: a handful
// of items, values and provenances.
func randomClaims(seed int64, n int) []Claim {
	rng := rand.New(rand.NewSource(seed))
	claims := make([]Claim, 0, n)
	for i := 0; i < n; i++ {
		claims = append(claims, Claim{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", rng.Intn(6))),
				Predicate: kb.PredicateID(fmt.Sprintf("p%d", rng.Intn(3))),
				Object:    kb.StringObject(fmt.Sprintf("v%d", rng.Intn(5))),
			},
			Prov: fmt.Sprintf("prov%d", rng.Intn(10)),
			Conf: -1,
		})
	}
	// Deduplicate (prov, triple) pairs as Claims() would.
	type pk struct {
		p string
		t kb.Triple
	}
	seen := map[pk]bool{}
	out := claims[:0]
	for _, c := range claims {
		k := pk{c.Prov, c.Triple}
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// TestQuickProbabilityInvariants: for random claim sets and all methods,
// probabilities stay in [0,1] and per-item sums stay <= 1.
func TestQuickProbabilityInvariants(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		claims := randomClaims(seed, int(size%64)+1)
		for _, cfg := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig()} {
			res, err := Fuse(claims, cfg)
			if err != nil {
				return false
			}
			sums := map[kb.DataItem]float64{}
			for _, fz := range res.Triples {
				if !fz.Predicted {
					continue
				}
				if fz.Probability < 0 || fz.Probability > 1 {
					return false
				}
				sums[fz.Item()] += fz.Probability
			}
			for _, s := range sums {
				if s > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAgreementMonotonicity: adding a fresh agreeing provenance for a
// value must not decrease that value's probability in the first round
// (POPACCU's monotonicity property from [14], checked before EM feedback).
func TestQuickAgreementMonotonicity(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		claims := randomClaims(seed, int(size%48)+2)
		target := claims[0].Triple
		cfg := PopAccuConfig()
		cfg.Rounds = 1

		before, err := Fuse(claims, cfg)
		if err != nil {
			return false
		}
		extended := append(append([]Claim(nil), claims...), Claim{
			Triple: target,
			Prov:   "fresh-agreeing-provenance",
			Conf:   -1,
		})
		after, err := Fuse(extended, cfg)
		if err != nil {
			return false
		}
		pb := before.ByTriple()[target].Probability
		pa := after.ByTriple()[target].Probability
		return pa >= pb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicAcrossWorkers: results are identical regardless of
// MapReduce parallelism.
func TestQuickDeterministicAcrossWorkers(t *testing.T) {
	claims := randomClaims(99, 60)
	for _, cfg := range []Config{AccuConfig(), PopAccuConfig()} {
		ref, err := Fuse(claims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refMap := ref.ByTriple()
		for _, workers := range []int{1, 2, 7} {
			c := cfg
			c.Workers = workers
			got, err := Fuse(claims, c)
			if err != nil {
				t.Fatal(err)
			}
			for tr, fz := range got.ByTriple() {
				if refMap[tr] != fz {
					t.Fatalf("%v workers=%d: %v differs: %+v vs %+v", cfg.Method, workers, tr, fz, refMap[tr])
				}
			}
		}
	}
}

// TestQuickVoteMatchesCounts: VOTE's probability is exactly m/n for every
// random claim set.
func TestQuickVoteMatchesCounts(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		claims := randomClaims(seed, int(size%64)+1)
		res, err := Fuse(claims, VoteConfig())
		if err != nil {
			return false
		}
		m := map[kb.Triple]int{}
		n := map[kb.DataItem]int{}
		for _, c := range claims {
			m[c.Triple]++
			n[c.Triple.Item()]++
		}
		for _, fz := range res.Triples {
			want := float64(m[fz.Triple]) / float64(n[fz.Item()])
			if diff := fz.Probability - want; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGoldInitAccuracyBounds: gold-initialized accuracies are always
// valid probabilities regardless of label pattern.
func TestQuickGoldInitAccuracyBounds(t *testing.T) {
	f := func(seed int64, size uint8, flip bool) bool {
		claims := randomClaims(seed, int(size%48)+1)
		cfg := PopAccuConfig()
		cfg.Rounds = 1
		cfg.GoldLabeler = func(tr kb.Triple) (bool, bool) {
			h := int64(len(tr.Object.Str)) + seed
			return (h%2 == 0) != flip, h%3 != 0
		}
		res, err := Fuse(claims, cfg)
		if err != nil {
			return false
		}
		for _, a := range res.ProvAccuracy {
			if a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
