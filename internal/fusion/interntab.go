package fusion

import (
	"hash/maphash"
	"math"

	"kfusion/internal/kb"
)

// Open-addressing intern tables for the compile hot loop.
//
// Interning a claim stream is one hash-table hit per claim per ID space, and
// the generic Go map pays for a bucket walk, tophash checks and a map header
// on every access. The compiled graph already stores every interned key
// densely in ID order (g.triples, g.items, g.provKeys), so the table here
// keeps only (hash, ID+1) pairs in flat arrays: lookups probe linearly from
// the hash slot, compare the stored 64-bit hash first and touch the external
// key slice only on a hash match. Hashing is maphash.Comparable — the
// runtime's hardware-accelerated hash, which folds -0.0/+0.0 and treats
// struct keys fieldwise like the built-in map would.
//
// The seed is random per table, but nothing observable depends on it: IDs
// are assigned by the caller in stream first-occurrence order, the table is
// a pure lookup structure over them, and no iteration ever walks it. Graph
// bits stay identical across runs, workers and processes.

// mixPrime is an odd 64-bit multiplier (the golden-ratio constant) for the
// word-wise mixing hash below.
const mixPrime = 0x9E3779B97F4A7C15

// mixWord folds one 64-bit word into h. The xorshift after the multiply
// carries high input bits back into the low bits the table mask reads —
// a bare multiply would let them influence upward only.
func mixWord(h, k uint64) uint64 {
	h = (h ^ k) * mixPrime
	return h ^ h>>32
}

// mixString folds s into h eight bytes at a time. Byte-serial FNV chains one
// ~5-cycle multiply per input byte, and interning is the compile hot loop;
// word loads cut that chain 8x. The tail word folds the length so field
// boundaries cannot collide ("ab"+"c" vs "a"+"bc").
func mixString(h uint64, s string) uint64 {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		k := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = mixWord(h, k)
	}
	var k uint64
	for j := len(s) - 1; j >= i; j-- {
		k = k<<8 | uint64(s[j])
	}
	return mixWord(h, k^uint64(len(s))<<56)
}

// hashTriple is the intern-table hash for candidate triples: equal triples
// hash equal (±0 objects fold together, as they compare equal), and the
// value is private to one table, so it owes nothing to kb's stable
// field-wise FNV hashes.
func hashTriple(t kb.Triple) uint64 {
	h := mixString(mixPrime, string(t.Subject))
	h = mixString(h, string(t.Predicate))
	h = mixString(h, t.Object.Str)
	num := t.Object.Num
	if num == 0 {
		num = 0 // fold -0 onto +0: they compare equal
	}
	return mixWord(h, math.Float64bits(num)^uint64(t.Object.Kind))
}

// hashItem is the intern-table hash for data items.
func hashItem(d kb.DataItem) uint64 {
	return mixString(mixString(mixPrime, string(d.Subject)), string(d.Predicate))
}

// internTable maps a key's hash to its dense ID. Keys live in the caller's
// dense slice (ID order); construct with newInternTable or buildInternTable.
type internTable[K comparable] struct {
	seed   maphash.Seed
	hashFn func(K) uint64 // overrides maphash when non-nil (kb's FNV hashes)
	hashes []uint64
	slots  []int32 // ID+1; 0 marks an empty slot
	mask   uint64
	n      int
}

// newInternTable returns a table presized for sizeHint keys (it will not
// grow before exceeding that many inserts). hashFn, when non-nil, replaces
// maphash.Comparable — struct keys hash measurably faster through kb's
// field-wise FNV than through the runtime's generic typehash walk.
func newInternTable[K comparable](sizeHint int, hashFn func(K) uint64) internTable[K] {
	size := 16
	for size*3 < sizeHint*4 { // capacity / 0.75 load
		size *= 2
	}
	return internTable[K]{
		seed:   maphash.MakeSeed(),
		hashFn: hashFn,
		hashes: make([]uint64, size),
		slots:  make([]int32, size),
		mask:   uint64(size - 1),
	}
}

// hash returns key's probe hash; pass it to id and insert so one interning
// step hashes once.
func (t *internTable[K]) hash(key K) uint64 {
	if t.hashFn != nil {
		return t.hashFn(key)
	}
	return maphash.Comparable(t.seed, key)
}

// id returns the ID interned for key (whose hash(key) is h) or -1. keys is
// the caller's dense ID->key slice.
func (t *internTable[K]) id(h uint64, key K, keys []K) int32 {
	i := h & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		if t.hashes[i] == h && keys[s-1] == key {
			return s - 1
		}
		i = (i + 1) & t.mask
	}
}

// insert records id for a key with hash h. The key must be absent (callers
// intern: one failed id lookup, append to the key slice, insert).
func (t *internTable[K]) insert(h uint64, id int32) {
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := h & t.mask
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.hashes[i] = h
	t.slots[i] = id + 1
	t.n++
}

// grow doubles the slot array, re-slotting every entry from its stored hash
// (keys are never re-read, so growth cost is pure memory movement).
func (t *internTable[K]) grow() {
	size := len(t.slots) * 2
	if size == 0 {
		size = 16
	}
	hashes := make([]uint64, size)
	slots := make([]int32, size)
	mask := uint64(size - 1)
	for j, s := range t.slots {
		if s == 0 {
			continue
		}
		h := t.hashes[j]
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		hashes[i] = h
		slots[i] = s
	}
	t.hashes, t.slots, t.mask = hashes, slots, mask
}

// buildInternTable bulk-loads a table over an existing dense key slice —
// the parallel-intern merge and the takeIndex rebuild both end with the full
// key list in ID order and just need the lookup structure over it.
func buildInternTable[K comparable](keys []K, hashFn func(K) uint64) internTable[K] {
	t := newInternTable[K](len(keys), hashFn)
	for i := range keys {
		t.insert(t.hash(keys[i]), int32(i))
	}
	return t
}
