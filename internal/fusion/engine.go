package fusion

import (
	"math"
	"runtime"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
	"kfusion/internal/mathx"
	"kfusion/internal/randx"
)

// The compiled engine: Fuse first interns the claim set into a graph
// (compile.go) — the only shuffle of the run — and then executes Figure 8's
// stages as flat loops over that graph:
//
//   - Stage I walks items through CSR spans, scoring candidates into dense
//     per-worker scratch arrays and writing per-claim probabilities into a
//     round-stamped flat slice. Provenance accuracies live in a []float64
//     indexed by prov ID; with no ClaimAccuracy hook, each provenance's
//     log-score term is precomputed once per round.
//   - Stage II walks provenances through their CSR spans and re-estimates
//     accuracies from the stamped probabilities.
//   - Stage III reads the per-triple support counts interned at compile
//     time and attaches the final round's probabilities.
//
// The per-round inner loop allocates nothing; rounds reuse the same graph
// and buffers. Results are deterministic for a fixed input order and
// independent of Workers: items (and provenances) are scored independently,
// and every floating-point reduction runs in a fixed CSR order.

// engine holds the compiled graph plus the evolving per-round state.
type engine struct {
	cfg  Config
	g    *graph
	kern *mathx.Kernels // exact or fast transcendental kernels (Config.FastMath)

	provAcc     []float64 // prov ID -> current accuracy estimate (raw)
	provDefault []bool    // prov ID -> still at the unevaluated default
	provTerm    []float64 // prov ID -> per-round log score term (no hook)

	claimProb  []float64 // claim ID -> probability of its triple this round
	claimStamp []int32   // claim ID -> round+1 when last scored

	// logCount[k] = log(k) for every possible per-item support count
	// (POPACCU only): the popularity term log q(v) = log n(v) - log n then
	// needs no transcendental in the per-item loop. logCount[0] = -Inf, the
	// absent-lane convention the softmax kernel expects.
	logCount []float64

	// Stage II block reduction over giant provenances: nil while every
	// provenance span fits in one csr.ReduceBlockSize block (the linear walk
	// is then already the block reduction). Otherwise provBlocks holds the
	// SpanBlocks cut of provClaimStart and provBlockStart[p] the index of
	// provenance p's first block.
	provBlocks     []csr.Block
	provBlockStart []int32

	workers     int
	scratches   []scoreScratch
	workerDelta []float64
}

// scoreScratch is one worker's dense per-item scoring state, sized by the
// largest candidate list.
type scoreScratch struct {
	counts []int32      // per candidate: claims supporting it this round
	aux    []float64    // per candidate: log-popularity / fallback accuracy sum
	scores []float64    // per candidate: accumulated vote score
	probs  []float64    // per candidate: resulting probability
	selCov []int32      // coverage-filtered claim list
	selAcc []int32      // accuracy-filtered claim list
	parts  [][2]float64 // per stage-II block of one provenance: {prob sum, count}
}

// Fuse runs the configured method over the claims and returns per-triple
// probabilities. It is the compile-then-fuse convenience: the claim set is
// compiled once into an interned graph (see Compile) and fused under cfg.
// It is deterministic for a fixed (claims, cfg) and independent of
// cfg.Workers. Callers fusing the same claim set under several
// configurations should Compile once and call (*Compiled).Fuse per config
// instead, amortizing the compilation. FuseReference preserves the original
// shuffle-per-round pipeline for cross-checking.
func Fuse(claims []Claim, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, idx := compile(claims, cfg.Workers, cfg.Partitions)
	return (&Compiled{g: g, idx: idx}).fuse(cfg), nil
}

// MustFuse is Fuse for statically-valid configurations.
func MustFuse(claims []Claim, cfg Config) *Result {
	r, err := Fuse(claims, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Fuse runs one fusion configuration over the compiled claim graph. The
// graph is shared, immutable input: every call builds fresh per-run engine
// state (provenance accuracies, per-claim probabilities, scratch), so
// results are bit-identical to a fresh fusion.Fuse of the same claims and
// concurrent calls on one Compiled are safe. cfg.Workers bounds only the
// per-round stage parallelism here — the compile-time shuffle already
// happened — and, as everywhere, never affects results. cfg.Granularity is
// inert at this point: it selects how extractions were flattened into the
// claims this graph was compiled from (see the Compiled doc); fuse each
// granularity's claim set through its own Compile.
func (c *Compiled) Fuse(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return c.fuse(cfg), nil
}

// MustFuse is Compiled.Fuse for statically-valid configurations.
func (c *Compiled) MustFuse(cfg Config) *Result {
	r, err := c.Fuse(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// WarmTol is the documented warm-start-vs-cold-start tolerance, and it
// applies in the converged regime: when both the warm and the cold run stop
// because the per-round accuracy delta fell below Config.Epsilon (rather
// than hitting the Rounds cap), they halt in Epsilon-sized neighborhoods of
// the same EM fixed point approached from different sides, and every
// probability and provenance accuracy (all in [0,1]) agrees within this
// absolute bound — a small multiple of the default 1e-4 Epsilon, pinned by
// the warm-start equivalence tests. When the Rounds cap bites first (the
// paper's R = 5 is a forced cut-off, not convergence), warm and cold are
// different truncations of the same iteration and can differ up to the
// remaining convergence distance; callers who need the bound on appended
// batches should let Epsilon terminate (the whole point of warm start is
// that it then stops after one or two rounds).
const WarmTol = 5e-3

// FuseWarm is Fuse seeded from a previous fusion result — the warm start of
// the append pipeline. Every provenance whose key appears in prev's
// ProvAccuracy starts at that accuracy (and counts as evaluated for the
// coverage filter) instead of Config.DefaultAccuracy; provenances new to
// this generation start cold. Two regimes:
//
//   - Converged (Epsilon-stopped) data: seeding near the fixed point makes
//     the per-round delta start small, so EM stops after a round or two and
//     the output stays within the documented WarmTol of cold start.
//
//   - Round-capped streaming (the paper's forced R; real POPACCU runs
//     oscillate rather than converge): run FuseWarm as online EM — carry
//     the accuracies batch to batch with cfg.Rounds = 1 — for a fraction
//     of the cold-start cost. The output is then a different truncation of
//     the same non-converging iteration, not pointwise-close to cold
//     start; the documented equivalence is in evaluation quality (WDev and
//     AUC-PR within small bounds of the cold R=5 recompile, pinned by the
//     bench-scale warm-quality test and measured by kfbench's
//     AppendVsRecompile records).
//
// A nil or empty prev degrades to Fuse. Gold-standard initialization
// (Config.GoldLabeler), when configured, runs after seeding and overrides
// it for labeled provenances, exactly as it overrides the default.
func (c *Compiled) FuseWarm(cfg Config, prev *Result) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-4
	}
	e := newEngine(c.g, cfg)
	if prev != nil && len(prev.ProvAccuracy) > 0 {
		for p, key := range c.g.provKeys {
			if a, ok := prev.ProvAccuracy[key]; ok {
				e.provAcc[p] = a
				e.provDefault[p] = false
			}
		}
	}
	return e.run(), nil
}

// MustFuseWarm is FuseWarm for statically-valid configurations.
func (c *Compiled) MustFuseWarm(cfg Config, prev *Result) *Result {
	r, err := c.FuseWarm(cfg, prev)
	if err != nil {
		panic(err)
	}
	return r
}

// fuse runs a validated configuration over the compiled graph.
func (c *Compiled) fuse(cfg Config) *Result {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-4
	}
	return newEngine(c.g, cfg).run()
}

func newEngine(g *graph, cfg Config) *engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// Tiny inputs run single-threaded; per-item work is independent,
		// so this cannot change the output, only the goroutine overhead.
		// An explicit Workers is always honored, so multi-worker tests
		// exercise real parallelism even on small claim sets.
		if len(g.claims) < 2048 {
			workers = 1
		}
	}
	nProvs := len(g.provKeys)
	e := &engine{
		cfg:         cfg,
		g:           g,
		kern:        mathx.ForConfig(cfg.FastMath),
		provAcc:     make([]float64, nProvs),
		provDefault: make([]bool, nProvs),
		provTerm:    make([]float64, nProvs),
		claimProb:   make([]float64, len(g.claims)),
		claimStamp:  make([]int32, len(g.claims)),
		workers:     workers,
		scratches:   make([]scoreScratch, workers),
		workerDelta: make([]float64, workers),
	}
	for p := range e.provAcc {
		e.provAcc[p] = cfg.DefaultAccuracy
		e.provDefault[p] = true
	}
	// Giant provenances (spans past one fixed block) re-estimate through the
	// csr.SpanBlocks/Pairwise block reduction. The cut depends only on span
	// lengths: whether a provenance block-reduces is a property of the data,
	// never of Workers, and a single-block fold is the identity, so every
	// span at or under ReduceBlockSize keeps the historical linear-walk bits.
	maxBlocks := 0
	for p := 0; p < nProvs; p++ {
		if int(g.provClaimStart[p+1])-int(g.provClaimStart[p]) > csr.ReduceBlockSize {
			e.provBlocks = csr.SpanBlocks(g.provClaimStart)
			e.provBlockStart = make([]int32, nProvs+1)
			for b := range e.provBlocks {
				e.provBlockStart[e.provBlocks[b].Group+1] = int32(b + 1)
			}
			for q := 1; q <= nProvs; q++ {
				if e.provBlockStart[q] < e.provBlockStart[q-1] {
					e.provBlockStart[q] = e.provBlockStart[q-1] // empty span
				}
			}
			for q := 0; q < nProvs; q++ {
				if n := int(e.provBlockStart[q+1] - e.provBlockStart[q]); n > maxBlocks {
					maxBlocks = n
				}
			}
			break
		}
	}
	if cfg.Method == PopAccu {
		maxSpan := 0
		for i := 0; i+1 < len(g.itemClaimStart); i++ {
			if n := int(g.itemClaimStart[i+1] - g.itemClaimStart[i]); n > maxSpan {
				maxSpan = n
			}
		}
		e.logCount = make([]float64, maxSpan+1)
		for k := range e.logCount {
			e.logCount[k] = float64(k)
		}
		e.kern.LogSlice(e.logCount, e.logCount)
	}
	for w := range e.scratches {
		e.scratches[w] = scoreScratch{
			counts: make([]int32, g.maxCandidates),
			aux:    make([]float64, g.maxCandidates),
			scores: make([]float64, g.maxCandidates),
			probs:  make([]float64, g.maxCandidates),
			parts:  make([][2]float64, maxBlocks),
		}
	}
	return e
}

func (e *engine) run() *Result {
	if e.cfg.GoldLabeler != nil {
		e.initFromGold()
	}
	rounds := 0
	lastStamp := int32(1)
	if e.cfg.Method == Vote {
		e.stageI(0)
		rounds = 1
		e.reportRound(0)
	} else {
		for rounds < e.cfg.Rounds {
			r := rounds
			e.stageI(r)
			lastStamp = int32(r + 1)
			e.reportRound(r)
			delta := e.stageII(r)
			rounds++
			if delta < e.cfg.Epsilon {
				break
			}
		}
	}
	res := e.stageIII(lastStamp)
	res.Rounds = rounds
	res.ProvAccuracy = make(map[string]float64, len(e.g.provKeys))
	for p, key := range e.g.provKeys {
		res.ProvAccuracy[key] = e.provAcc[p]
	}
	return res
}

// initFromGold implements §4.3.3: initialize each provenance's accuracy as
// the fraction of its gold-labeled claims that are true, at the configured
// label sampling rate. Provenances with no labeled claims keep the default.
func (e *engine) initFromGold() {
	trueN, labeled := e.goldCounts()
	for p := range labeled {
		if labeled[p] == 0 {
			continue
		}
		e.provAcc[p] = GoldInitAccuracy(int64(trueN[p]), int64(labeled[p]))
		e.provDefault[p] = false
	}
}

// goldCounts tallies each provenance's (true, labeled) gold-claim counts at
// the configured sampling rate. Counts are integers, so cross-shard merges
// in internal/shard sum them exactly.
func (e *engine) goldCounts() (trueN, labeled []int32) {
	rate := e.cfg.GoldSampleRate
	if rate == 0 {
		rate = 1
	}
	nProvs := len(e.g.provKeys)
	trueN = make([]int32, nProvs)
	labeled = make([]int32, nProvs)
	for i := range e.g.claims {
		c := &e.g.claims[i]
		label, ok := e.cfg.GoldLabeler(c.Triple)
		if !ok {
			continue
		}
		if rate < 1 {
			// Deterministic per (prov, triple) sampling so runs with the
			// same rate see the same label subset.
			if hashUnit(c.Prov, c.Triple.Encode()) >= rate {
				continue
			}
		}
		p := e.g.provOfClaim[i]
		labeled[p]++
		if label {
			trueN[p]++
		}
	}
	return trueN, labeled
}

// GoldInitAccuracy is the §4.3.3 initialization formula: the clamped
// fraction of a provenance's labeled claims that are true. Exported so the
// sharded coordinator applies the identical expression to merged counts
// (int64 so cross-shard sums cannot wrap; a single shard's int32 counts
// convert losslessly).
func GoldInitAccuracy(trueN, labeled int64) float64 {
	return clampAcc(float64(trueN) / float64(labeled))
}

// parallelRange splits [0,n) across the engine's workers and waits (see
// ParallelRange for the contract).
func (e *engine) parallelRange(n int, f func(worker, lo, hi int)) {
	ParallelRange(n, e.workers, f)
}

// provTermParallelThreshold is the provenance count below which the
// per-round provTerm table stays sequential (the shared elementwise cutoff;
// tuned in internal/csr). The gate depends only on the provenance count, so
// results stay independent of Workers (the pass is elementwise — exact for
// any split).
const provTermParallelThreshold = csr.ElementwiseThreshold

// stageI scores every data item with the current provenance accuracies
// (Figure 8, Stage I) — a parallel flat loop over the compiled item spans.
func (e *engine) stageI(round int) {
	// Without a ClaimAccuracy hook, a claim's log score term depends only
	// on its provenance, so the log is taken once per provenance per round
	// instead of once per claim per candidate — elementwise over the
	// provenance table, in parallel once the table is large enough to pay
	// for the goroutines.
	if e.cfg.ClaimAccuracy == nil && (e.cfg.Method == Accu || e.cfg.Method == PopAccu) {
		pw := e.workers
		if len(e.provAcc) < provTermParallelThreshold {
			pw = 1
		}
		// POPACCU's term log(a/(1-a)) is ACCU's with nf = 1 (1*a == a
		// exactly, so the shared expression is bit-identical to the
		// per-method ones).
		nf := 1.0
		if e.cfg.Method == Accu {
			nf = float64(e.cfg.NFalse)
		}
		ParallelRange(len(e.provAcc), pw, func(_, lo, hi int) {
			e.kern.LogOddsSlice(e.provTerm[lo:hi], e.provAcc[lo:hi], nf, accClampLo, accClampHi)
		})
	}
	e.parallelRange(len(e.g.items), func(w, lo, hi int) {
		sc := &e.scratches[w]
		for item := lo; item < hi; item++ {
			e.scoreItem(sc, int32(item), round)
		}
	})
}

// scoreItem computes the probability of each candidate triple of one data
// item and stamps the surviving claims with their probabilities.
func (e *engine) scoreItem(sc *scoreScratch, item int32, round int) {
	g := e.g
	claims := g.itemClaims[g.itemClaimStart[item]:g.itemClaimStart[item+1]]
	if len(claims) > e.cfg.SampleL {
		claims = e.sampleClaims(g.items[item], claims)
	}
	nCand := int(g.itemCandStart[item+1] - g.itemCandStart[item])
	counts := sc.counts[:nCand]
	stamp := int32(round + 1)

	// Coverage filter (§4.3.2): in round 0, only score items where some
	// triple has >= 2 provenances; later, drop provenances still at the
	// default accuracy.
	if e.cfg.FilterByCoverage {
		if round == 0 {
			for l := range counts {
				counts[l] = 0
			}
			maxN := int32(0)
			for _, c := range claims {
				l := g.localOfClaim[c]
				counts[l]++
				if counts[l] > maxN {
					maxN = counts[l]
				}
			}
			if maxN < 2 {
				return
			}
		} else {
			kept := sc.selCov[:0]
			for _, c := range claims {
				if !e.provDefault[g.provOfClaim[c]] {
					kept = append(kept, c)
				}
			}
			sc.selCov = kept[:0:cap(kept)]
			if len(kept) == 0 {
				return
			}
			claims = kept
		}
	}

	// Accuracy filter (θ): drop low-accuracy provenances; if the item loses
	// everything, fall back to the mean provenance accuracy per triple.
	scored := claims
	if θ := e.cfg.AccuracyThreshold; θ > 0 {
		kept := sc.selAcc[:0]
		for _, c := range claims {
			if e.provAcc[g.provOfClaim[c]] >= θ {
				kept = append(kept, c)
			}
		}
		sc.selAcc = kept[:0:cap(kept)]
		if len(kept) == 0 {
			accSum := sc.aux[:nCand]
			for l := range counts {
				counts[l] = 0
				accSum[l] = 0
			}
			for _, c := range claims {
				l := g.localOfClaim[c]
				counts[l]++
				//lint:ignore kflint/floatsum scatter-add indexed by the claim's own candidate, in fixed claim-span order — not a parallel reduction; every run adds the same terms in the same order.
				accSum[l] += e.provAcc[g.provOfClaim[c]]
			}
			for _, c := range claims {
				l := g.localOfClaim[c]
				e.claimProb[c] = accSum[l] / float64(counts[l])
				e.claimStamp[c] = stamp
			}
			return
		}
		scored = kept
	}

	for l := range counts {
		counts[l] = 0
	}
	for _, c := range scored {
		counts[g.localOfClaim[c]]++
	}
	n := len(scored)
	probs := sc.probs[:nCand]

	switch e.cfg.Method {
	case Vote:
		for l := 0; l < nCand; l++ {
			if counts[l] > 0 {
				probs[l] = float64(counts[l]) / float64(n)
			}
		}
	case Accu, PopAccu:
		scores := sc.scores[:nCand]
		var logq []float64
		nPresent := 0
		for l := 0; l < nCand; l++ {
			if counts[l] > 0 {
				scores[l] = 0
				nPresent++
			} else {
				// Absent candidates carry -Inf so the full-width softmax
				// kernel gives them exp(-Inf) = 0 mass without a presence
				// branch in its lanes.
				scores[l] = math.Inf(-1)
			}
		}
		if e.cfg.Method == PopAccu {
			// q(v) = n(v)/n — the observed popularity that replaces ACCU's
			// uniform false-value distribution and discounts popular
			// (possibly copied) false values. Support counts are small
			// integers, so log q comes from the engine's log-count table —
			// no transcendental per lane. Absent lanes get
			// logCount[0] = -Inf and are never read.
			logq = sc.aux[:nCand]
			logN := e.logCount[n]
			for l := 0; l < nCand; l++ {
				logq[l] = e.logCount[counts[l]] - logN
			}
		}
		hook := e.cfg.ClaimAccuracy
		for _, c := range scored {
			l := g.localOfClaim[c]
			var term float64
			if hook == nil {
				term = e.provTerm[g.provOfClaim[c]]
			} else {
				a := clampAcc(hook(g.claims[c], e.provAcc[g.provOfClaim[c]]))
				if e.cfg.Method == Accu {
					//lint:ignore kflint/scalarmath the hook returns a per-claim accuracy, so the log really is per claim; the hookless path (the default and every preset) batches it per provenance via LogOddsSlice.
					term = math.Log(float64(e.cfg.NFalse) * a / (1 - a))
				} else {
					//lint:ignore kflint/scalarmath same per-claim hook accuracy as the ACCU arm — there is no per-provenance table to batch when the hook rewrites it per claim.
					term = math.Log(a / (1 - a))
				}
			}
			if logq != nil {
				term -= logq[l]
			}
			//lint:ignore kflint/floatsum scatter-add indexed by the claim's own candidate, in fixed claim-span order — the span is a compiled CSR row, so the addition order is identical across runs.
			scores[l] += term
		}
		// Softmax over the present candidates plus the unknown-value mass:
		// ACCU reserves the N - |V| unobserved false values, POPACCU one
		// unit — the mechanism behind Figure 9's calibration valleys. The
		// kernel's implicit extra candidate at score 0 is exactly the
		// unknown-value mass, and its single-exp pass is bit-identical to
		// the historical two-exp max-subtraction form.
		unknown := 1.0
		if e.cfg.Method == Accu {
			unknown = float64(e.cfg.NFalse - nPresent)
			if unknown < 0 {
				unknown = 0
			}
		}
		e.kern.SoftmaxInto(probs, scores, unknown)
	}

	for _, c := range scored {
		e.claimProb[c] = probs[g.localOfClaim[c]]
		e.claimStamp[c] = stamp
	}
}

// stageII re-estimates provenance accuracies as the mean probability of
// their scored claims (Figure 8, Stage II) and returns the largest accuracy
// change — a parallel flat loop over the compiled provenance spans.
func (e *engine) stageII(round int) float64 {
	g := e.g
	stamp := int32(round + 1)
	for w := range e.workerDelta {
		e.workerDelta[w] = 0
	}
	e.parallelRange(len(g.provKeys), func(w, lo, hi int) {
		sc := &e.scratches[w]
		maxDelta := 0.0
		for p := lo; p < hi; p++ {
			sum, cnt := e.provStat(sc, int32(p), stamp)
			if cnt == 0 {
				continue // never scored: keeps the default accuracy
			}
			acc := sum / float64(cnt)
			if d := math.Abs(e.provAcc[p] - acc); d > maxDelta {
				maxDelta = d
			}
			e.provAcc[p] = acc
			e.provDefault[p] = false
		}
		e.workerDelta[w] = maxDelta
	})
	maxDelta := 0.0
	for _, d := range e.workerDelta {
		if d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// stageIII attaches the final probabilities to the deduplicated triple set
// interned at compile time (Figure 8, Stage III).
func (e *engine) stageIII(lastStamp int32) *Result {
	g := e.g
	out := make([]FusedTriple, len(g.triples))
	e.parallelRange(len(g.triples), func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			item := g.itemOfTriple[t]
			f := FusedTriple{
				Triple:          g.triples[t],
				Probability:     -1,
				Provenances:     int(g.tripleClaimStart[t+1] - g.tripleClaimStart[t]),
				ItemProvenances: int(g.itemClaimStart[item+1] - g.itemClaimStart[item]),
				Extractors:      int(g.tripleExtractors[t]),
			}
			for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
				if e.claimStamp[c] == lastStamp {
					f.Probability = e.claimProb[c]
					f.Predicted = true
					break
				}
			}
			out[t] = f
		}
	})
	res := &Result{Triples: out}
	for i := range out {
		if !out[i].Predicted {
			res.Unpredicted++
		}
	}
	return res
}

// reportRound surfaces per-round probabilities to the OnRound callback.
func (e *engine) reportRound(round int) {
	if e.cfg.OnRound == nil {
		return
	}
	g := e.g
	stamp := int32(round + 1)
	// Sized up front from the compiled triple set so the map never rehashes.
	probs := make(map[kb.Triple]float64, len(g.triples))
	for t := range g.triples {
		for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
			if e.claimStamp[c] == stamp {
				probs[g.triples[t]] = e.claimProb[c]
				break
			}
		}
	}
	e.cfg.OnRound(round, probs)
}

// sampleClaims caps an item's claim list at SampleL with a deterministic
// reservoir (the paper's L sampling). The stream order and seed match the
// seed engine's, so the sampled subset is identical.
func (e *engine) sampleClaims(item kb.DataItem, claims []int32) []int32 {
	src := randx.New(e.cfg.SampleSeed ^ int64(mapreduce.StringHash(item.String())))
	r := randx.NewReservoir[int32](e.cfg.SampleL, src)
	for _, c := range claims {
		r.Add(c)
	}
	return r.Items()
}

// provStat computes one provenance's stage-II statistic over its claims
// scored at stamp: the probability sum and count, in compiled claim-span
// order. When the scored span exceeds SampleL it switches to the paper's
// deterministic reservoir sample (sampleProbsSum), so the returned count is
// the reservoir size; either way the re-estimated accuracy is exactly
// sum/cnt. The (sum, cnt) pair is also the cross-shard merge unit of
// internal/shard — partials from shards holding slices of one provenance
// add before the final division.
//
// Spans past csr.ReduceBlockSize block-reduce: each fixed block sums
// left-to-right into a {sum, count} partial and the partials fold with the
// csr.Pairwise tree, so a giant provenance's re-estimate is a pure function
// of its span length — same bits for any Workers — with pairwise instead of
// linear error growth. Spans within one block (the common case, and the
// whole graph when provBlocks is nil) keep the historical linear walk, which
// a single-block fold is identical to.
func (e *engine) provStat(sc *scoreScratch, p, stamp int32) (float64, int32) {
	g := e.g
	if e.provBlocks != nil {
		if b0, b1 := e.provBlockStart[p], e.provBlockStart[p+1]; b1-b0 > 1 {
			parts := sc.parts[:b1-b0]
			for i, b := range e.provBlocks[b0:b1] {
				sum := 0.0
				cnt := 0.0
				for _, c := range g.provClaims[b.Lo:b.Hi] {
					if e.claimStamp[c] == stamp {
						//lint:ignore kflint/floatsum one fixed csr.SpanBlocks block of this provenance's claim span, summed left-to-right — the block partial the Pairwise fold below combines.
						sum += e.claimProb[c]
						cnt++
					}
				}
				parts[i] = [2]float64{sum, cnt}
			}
			folded := csr.Pairwise(parts, func(a, b [2]float64) [2]float64 {
				return [2]float64{a[0] + b[0], a[1] + b[1]}
			})
			sum, cnt := folded[0], int32(folded[1])
			if int(cnt) > e.cfg.SampleL {
				return e.sampleProbsSum(p, stamp)
			}
			return sum, cnt
		}
	}
	sum := 0.0
	cnt := int32(0)
	for _, c := range g.provClaims[g.provClaimStart[p]:g.provClaimStart[p+1]] {
		if e.claimStamp[c] == stamp {
			//lint:ignore kflint/floatsum one provenance's partial over its compiled CSR claim span in ascending ID order — the per-group partial the shard merge folds with csr.Pairwise; addition order is identical across runs.
			sum += e.claimProb[c]
			cnt++
		}
	}
	if int(cnt) > e.cfg.SampleL {
		return e.sampleProbsSum(p, stamp)
	}
	return sum, cnt
}

// sampleProbsSum is stage II's L sampling: a deterministic reservoir over
// one provenance's scored probabilities, in compiled claim order. Returns
// the reservoir's sum and size.
func (e *engine) sampleProbsSum(p, stamp int32) (float64, int32) {
	g := e.g
	src := randx.New(e.cfg.SampleSeed ^ int64(mapreduce.StringHash(g.provKeys[p])))
	r := randx.NewReservoir[float64](e.cfg.SampleL, src)
	for _, c := range g.provClaims[g.provClaimStart[p]:g.provClaimStart[p+1]] {
		if e.claimStamp[c] == stamp {
			r.Add(e.claimProb[c])
		}
	}
	sum := 0.0
	for _, v := range r.Items() {
		//lint:ignore kflint/floatsum the reservoir holds at most SampleL values in an order fixed by the per-provenance seed; the sum is tiny and bit-identical across runs.
		sum += v
	}
	return sum, int32(len(r.Items()))
}

func claimIndexes(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// accClampLo/Hi bound every provenance accuracy before it enters a log-odds
// term; the same bounds feed mathx.LogOddsSlice so the batched table and the
// scalar hook path clamp identically.
const accClampLo, accClampHi = 0.005, 0.995

func clampAcc(a float64) float64 {
	if a < accClampLo {
		return accClampLo
	}
	if a > accClampHi {
		return accClampHi
	}
	return a
}

// hashUnit maps strings to a deterministic value in [0,1).
func hashUnit(parts ...string) float64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}
