package fusion

import (
	"testing"
)

// TestCompileGraphInvariants checks the structural invariants the engine
// relies on: CSR spans tile their ID spaces, per-item claim order preserves
// claim-index order, and every interning round-trips to the original claim.
func TestCompileGraphInvariants(t *testing.T) {
	claims := randomClaims(1234, 300)
	g, _ := compile(claims, 0, 0)

	n := len(claims)
	if len(g.itemClaims) != n || len(g.provClaims) != n || len(g.tripleClaims) != n {
		t.Fatalf("CSR leaf arrays must cover all %d claims", n)
	}
	if got := int(g.itemClaimStart[len(g.items)]); got != n {
		t.Fatalf("itemClaimStart tiles %d claims, want %d", got, n)
	}
	if got := int(g.itemCandStart[len(g.items)]); got != len(g.triples) {
		t.Fatalf("itemCandStart tiles %d triples, want %d", got, len(g.triples))
	}

	// Per-item claims keep ascending claim-index order (the reservoir
	// stream order), and every claim's interned fields match the original.
	for item := range g.items {
		span := g.itemClaims[g.itemClaimStart[item]:g.itemClaimStart[item+1]]
		for k, c := range span {
			if k > 0 && span[k-1] >= c {
				t.Fatalf("item %d: claim order not ascending: %v", item, span)
			}
			if claims[c].Triple.Item() != g.items[item] {
				t.Fatalf("claim %d grouped under wrong item", c)
			}
		}
	}
	for i := range claims {
		tid := g.tripleOfClaim[i]
		if g.triples[tid] != claims[i].Triple {
			t.Fatalf("claim %d: interned triple mismatch", i)
		}
		if g.provKeys[g.provOfClaim[i]] != claims[i].Prov {
			t.Fatalf("claim %d: interned provenance mismatch", i)
		}
		item := g.itemOfTriple[tid]
		if g.itemCands[g.itemCandStart[item]+g.localOfClaim[i]] != tid {
			t.Fatalf("claim %d: local candidate offset inconsistent", i)
		}
	}
	// Triple IDs are global first-occurrence order: within every item's
	// candidate span they ascend, and localOfTriple indexes into the span.
	for item := range g.items {
		span := g.itemCands[g.itemCandStart[item]:g.itemCandStart[item+1]]
		for k, tid := range span {
			if k > 0 && span[k-1] >= tid {
				t.Fatalf("item %d: candidate IDs not ascending: %v", item, span)
			}
			if g.localOfTriple[tid] != int32(k) {
				t.Fatalf("triple %d: localOfTriple = %d, want %d", tid, g.localOfTriple[tid], k)
			}
		}
	}

	// Triple spans group exactly the claims asserting that triple.
	for tid := range g.triples {
		for _, c := range g.tripleClaims[g.tripleClaimStart[tid]:g.tripleClaimStart[tid+1]] {
			if claims[c].Triple != g.triples[tid] {
				t.Fatalf("triple %d: foreign claim %d in span", tid, c)
			}
		}
	}

	// The dedup must agree with a naive recount.
	distinct := map[string]bool{}
	for i := range claims {
		distinct[claims[i].Triple.Encode()] = true
	}
	if len(g.triples) != len(distinct) {
		t.Fatalf("%d interned triples, want %d", len(g.triples), len(distinct))
	}
}

// TestCompileManyValuedItem exercises candidate dedup on an item with many
// distinct values (one global triple interning pass, no per-item maps).
func TestCompileManyValuedItem(t *testing.T) {
	var claims []Claim
	for i := 0; i < 100; i++ {
		v := string(rune('a'+i%50)) + string(rune('a'+i/50))
		claims = append(claims, cl("s", "p", v, "prov"+v))
	}
	g, _ := compile(claims, 0, 0)
	if len(g.items) != 1 {
		t.Fatalf("%d items, want 1", len(g.items))
	}
	if len(g.triples) != 100 {
		t.Fatalf("%d candidates, want 100", len(g.triples))
	}
	res := MustFuse(claims, VoteConfig())
	want, err := FuseReference(claims, VoteConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "manyvalued", res, want)
}
