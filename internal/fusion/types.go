// Package fusion implements the paper's core contribution: knowledge fusion
// by adaptation of three data-fusion methods — VOTE, ACCU and POPACCU — plus
// the four refinements of §4.3 (provenance granularity, coverage filtering,
// accuracy filtering, gold-standard accuracy initialization), executed as the
// three-stage MapReduce pipeline of Figure 8 with per-reducer sampling (L)
// and a forced round cap (R).
//
// The input is the three-dimensional extraction matrix flattened into
// (triple, provenance) claims, where a provenance is an (extractor, URL)
// pair — or a coarser/finer key under the granularity refinements. The
// output is a calibrated probability of truth per unique triple.
//
// # Compile-once architecture
//
// The paper's scalability answer (§3.2.2, Figure 8) is a MapReduce pipeline
// tuned so iterations are cheap. Fuse realizes that here by splitting a run
// into a one-time compilation and allocation-free rounds:
//
//   - compile (compile.go) interns provenances, extractors, data items and
//     candidate triples into dense int32 IDs — every space in
//     first-occurrence order of the claim stream, with no key strings
//     built — and builds CSR adjacency with a parallel counting sort
//     (item → claim spans, provenance → claim spans, triple → claim spans,
//     claim → prov/candidate IDs). Figure 8's Stage III dedup (grouping
//     claims into unique triples) is the triple interning itself.
//   - Stage I scores items by walking flat CSR spans with provenance
//     accuracies in a []float64 indexed by prov ID; per-item candidate
//     state lives in dense per-worker scratch arrays.
//   - Stage II re-estimates each provenance's accuracy over its claim span.
//   - Stage III attaches final probabilities to the precomputed triple set.
//
// Rounds allocate nothing and never rehash or reshuffle; results are
// deterministic and independent of Config.Workers. FuseReference preserves
// the original shuffle-per-round engine as the golden oracle the compiled
// engine is regression-tested against (see equivalence_test.go).
//
// # Compile/Fuse split, append-only generations
//
// The compiled graph is a first-class, reusable artifact: Compile interns a
// claim set once into a Compiled handle, and (*Compiled).Fuse runs any
// number of configurations over it. The graph depends only on the claims —
// provenance accuracies and all other per-run state live in the engine each
// Fuse call builds — so multi-config workloads (method comparisons,
// θ/coverage sweeps, the ablation suite) pay for interning once and results
// stay bit-identical to compile-per-config fusion.Fuse calls. Interning
// itself is parallel on large inputs (per-worker shard interning with
// csr.MergeKeys' ordered pairwise merge). fusion.Fuse remains the one-shot
// compile-then-fuse convenience.
//
// Because every ID space is assigned in first-occurrence order, a Compiled
// is also one generation of an append-only claim feed: (*Compiled).Append
// extends the graph with a batch — re-hashing nothing but the batch —
// bit-identically to recompiling the concatenated stream, and
// (*Compiled).FuseWarm re-fuses the grown graph seeded from the previous
// generation's accuracies (one warm round per batch in streaming use; see
// FuseWarm for the two-regime equivalence contract). ClaimStream carries
// the (provenance, triple) dedup across batches.
package fusion

import (
	"strings"

	"kfusion/internal/extract"
	"kfusion/internal/kb"
)

// Granularity selects how an extraction's provenance key is built (§4.3.1).
// The default (zero value) is the paper's basic (Extractor, URL) provenance.
type Granularity struct {
	// SiteLevel keys Web sources at site level instead of URL level.
	SiteLevel bool
	// PerPredicate appends the predicate, evaluating source quality
	// separately per predicate.
	PerPredicate bool
	// PerPattern appends the extractor pattern.
	PerPattern bool
	// ExtractorOnly drops the Web-source component entirely: provenance =
	// (extractor, pattern) — Figure 9's "Only ext" variant.
	ExtractorOnly bool
	// SourceOnly drops the extractor component: provenance = URL —
	// Figure 9's "Only src" variant.
	SourceOnly bool
}

// Standard granularities from the paper's experiments.
var (
	// GranExtractorURL is the basic (Extractor, URL) provenance.
	GranExtractorURL = Granularity{}
	// GranExtractorSite is (Extractor, Site).
	GranExtractorSite = Granularity{SiteLevel: true}
	// GranExtractorSitePred is (Extractor, Site, Predicate).
	GranExtractorSitePred = Granularity{SiteLevel: true, PerPredicate: true}
	// GranExtractorSitePredPattern is (Extractor, Site, Predicate, Pattern)
	// — the best calibrated granularity in Figure 10.
	GranExtractorSitePredPattern = Granularity{SiteLevel: true, PerPredicate: true, PerPattern: true}
	// GranExtractorOnly is (Extractor, Pattern) — "Only ext".
	GranExtractorOnly = Granularity{ExtractorOnly: true, PerPattern: true}
	// GranSourceOnly is (URL) — "Only src".
	GranSourceOnly = Granularity{SourceOnly: true}
)

// String names the granularity as in the paper's figures.
func (g Granularity) String() string {
	switch {
	case g.ExtractorOnly:
		return "(Extractor, Pattern)"
	case g.SourceOnly:
		return "(URL)"
	default:
		parts := []string{"Extractor"}
		if g.SiteLevel {
			parts = append(parts, "Site")
		} else {
			parts = append(parts, "URL")
		}
		if g.PerPredicate {
			parts = append(parts, "Predicate")
		}
		if g.PerPattern {
			parts = append(parts, "Pattern")
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
}

// Key builds the provenance key for an extraction.
func (g Granularity) Key(x extract.Extraction) string {
	var b strings.Builder
	if g.SourceOnly {
		b.WriteString(x.URL)
		return b.String()
	}
	b.WriteString(x.Extractor)
	if !g.ExtractorOnly {
		b.WriteByte('|')
		if g.SiteLevel {
			b.WriteString(x.Site)
		} else {
			b.WriteString(x.URL)
		}
	}
	if g.PerPredicate {
		b.WriteByte('|')
		b.WriteString(string(x.Triple.Predicate))
	}
	if g.PerPattern {
		b.WriteByte('|')
		b.WriteString(x.Pattern)
	}
	return b.String()
}

// Claim is one (triple, provenance) assertion — the unit the fusion methods
// consume after reducing the 3-dimensional input.
type Claim struct {
	Triple kb.Triple
	Prov   string
	// Conf is the extractor confidence carried through for the
	// confidence-aware extension (-1 when absent).
	Conf float64
	// Extractor is retained for per-extractor diagnostics (Figure 18).
	Extractor string
}

// provTriple is the (provenance, triple) dedup key shared by Claims and
// ClaimStream.
type provTriple struct {
	prov   string
	triple kb.Triple
}

// Claims converts extractions to claims under granularity g, deduplicating
// (provenance, triple) pairs: a provenance asserts a triple once. For an
// append-only feed converted batch by batch, use ClaimStream, which carries
// the dedup set across batches.
func Claims(xs []extract.Extraction, g Granularity) []Claim {
	seen := make(map[provTriple]bool, len(xs))
	out := make([]Claim, 0, len(xs))
	for _, x := range xs {
		prov := g.Key(x)
		k := provTriple{prov: prov, triple: x.Triple}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, Claim{Triple: x.Triple, Prov: prov, Conf: x.Confidence, Extractor: x.Extractor})
	}
	return out
}

// FusedTriple is one output row: a unique triple with its predicted
// probability of truth and support counts.
type FusedTriple struct {
	Triple kb.Triple
	// Probability is the predicted truthfulness in [0,1]. When Predicted is
	// false (the provenance filters removed all evidence, §4.3.2), it is -1.
	Probability float64
	Predicted   bool
	// Provenances is the number of provenances asserting this triple (m in
	// the paper's VOTE description).
	Provenances int
	// ItemProvenances is the total number of claims on the triple's data
	// item (n).
	ItemProvenances int
	// Extractors is the number of distinct extractors asserting the triple.
	Extractors int
}

// Item returns the data item of the fused triple.
func (f FusedTriple) Item() kb.DataItem { return f.Triple.Item() }

// Result is the output of a fusion run.
type Result struct {
	Triples []FusedTriple
	// Rounds is the number of EM rounds executed (1 for VOTE).
	Rounds int
	// ProvAccuracy is the final accuracy estimate per provenance key.
	ProvAccuracy map[string]float64
	// Unpredicted counts triples for which filtering removed all evidence.
	Unpredicted int
}

// ByTriple indexes the result for lookups.
func (r *Result) ByTriple() map[kb.Triple]FusedTriple {
	m := make(map[kb.Triple]FusedTriple, len(r.Triples))
	for _, t := range r.Triples {
		m[t.Triple] = t
	}
	return m
}
