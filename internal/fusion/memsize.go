package fusion

import (
	"unsafe"

	"kfusion/internal/kb"
)

// ApproxBytes estimates the resident heap size of the compiled claim graph:
// every CSR slice at element size, every claim's struct plus its string
// payloads, and the interned key tables. It is an accounting walk, not a
// runtime measurement — deterministic, allocation-free, and cheap enough to
// sample per shard — and it deliberately ignores allocator rounding and the
// Append index byproduct, so treat it as a lower-bound working-set figure.
// The sharded benchmarks use it to record how corpus memory divides across
// shards (max shard bytes vs the unsharded total).
func (c *Compiled) ApproxBytes() int {
	g := c.g
	n := 0
	for i := range g.claims {
		cl := &g.claims[i]
		n += int(unsafe.Sizeof(*cl))
		n += len(cl.Prov) + len(cl.Extractor) + tripleBytes(&cl.Triple)
	}
	for i := range g.items {
		n += int(unsafe.Sizeof(g.items[i])) + len(g.items[i].Subject) + len(g.items[i].Predicate)
	}
	for i := range g.triples {
		n += int(unsafe.Sizeof(g.triples[i])) + tripleBytes(&g.triples[i])
	}
	for _, k := range g.provKeys {
		n += int(unsafe.Sizeof(k)) + len(k)
	}
	for _, s := range [][]int32{
		g.itemClaimStart, g.itemClaims,
		g.itemCandStart, g.itemCands, g.itemOfTriple, g.localOfTriple,
		g.tripleOfClaim, g.localOfClaim, g.tripleClaimStart, g.tripleClaims,
		g.tripleExtractors,
		g.provOfClaim, g.provClaimStart, g.provClaims,
	} {
		n += 4 * len(s)
	}
	return n
}

// tripleBytes counts a triple's string payloads (the struct shell is counted
// by the caller, sized in place).
func tripleBytes(t *kb.Triple) int {
	return len(t.Subject) + len(t.Predicate) + len(t.Object.Str)
}
