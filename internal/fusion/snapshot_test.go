package fusion

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSnapshotRoundTrip checks the durability contract at the claim layer: a
// decoded snapshot is field-identical to the encoded graph, re-encodes to the
// same bytes (canonical form), and behaves bit-identically under Fuse.
func TestSnapshotRoundTrip(t *testing.T) {
	claims := randomClaims(41, 500)
	c := MustCompile(claims)

	var buf bytes.Buffer
	if err := c.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	graphsEqual(t, "decoded", dec.g, c.g)
	if dec.gen != c.gen {
		t.Fatalf("gen = %d, want %d", dec.gen, c.gen)
	}

	var buf2 bytes.Buffer
	if err := dec.EncodeSnapshot(&buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding a decoded snapshot changed the bytes")
	}

	want, err := c.Fuse(PopAccuConfig())
	if err != nil {
		t.Fatalf("fuse original: %v", err)
	}
	got, err := dec.Fuse(PopAccuConfig())
	if err != nil {
		t.Fatalf("fuse decoded: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded graph fuses differently from the original")
	}
}

// TestSnapshotAppendMatchesOriginal checks that a decoded generation accepts
// Append (rebuilding the interning index from the graph) and produces the
// exact graph the in-memory generation does.
func TestSnapshotAppendMatchesOriginal(t *testing.T) {
	claims := randomClaims(17, 400)
	split := len(claims) / 2
	base := MustCompile(claims[:split])

	var buf bytes.Buffer
	if err := base.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	want := base.MustAppend(claims[split:])
	got := dec.MustAppend(claims[split:])
	graphsEqual(t, "appended", got.g, want.g)
	if got.gen != want.gen {
		t.Fatalf("gen = %d, want %d", got.gen, want.gen)
	}
}

// TestSnapshotDecodeCorrupt truncates and bit-flips an encoded snapshot at
// every offset and asserts decode fails cleanly (no panic) or — for flips the
// format cannot distinguish (e.g. a confidence bit) — succeeds without
// violating graph invariants. Checksums above this layer catch silent flips;
// this test is about memory safety of the decoder itself.
func TestSnapshotDecodeCorrupt(t *testing.T) {
	c := MustCompile(randomClaims(7, 120))
	var buf bytes.Buffer
	if err := c.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for off := 0; off < len(full); off += 11 {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x41
		dec, err := DecodeSnapshot(mut) // must not panic
		if err != nil || dec == nil {
			continue
		}
		// Whatever decoded must be internally consistent enough to fuse.
		if _, err := dec.Fuse(VoteConfig()); err != nil {
			t.Fatalf("bit flip at %d produced a graph that fails to fuse: %v", off, err)
		}
	}
}

// TestResultRoundTrip checks EncodeResult/DecodeResult losslessness.
func TestResultRoundTrip(t *testing.T) {
	c := MustCompile(randomClaims(3, 300))
	res, err := c.Fuse(PopAccuConfig())
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeResult(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(dec, res) {
		t.Fatal("decoded result differs from original")
	}
	for cut := 0; cut < buf.Len(); cut += 5 {
		if _, err := DecodeResult(buf.Bytes()[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// TestSeedClaimStream checks that a stream seeded from a restored generation
// continues exactly where the original stream left off.
func TestSeedClaimStream(t *testing.T) {
	xs := benchExtractions(300)
	gran := GranExtractorSitePred

	fresh := NewClaimStream(gran)
	first := fresh.Add(xs[:200])
	c := MustCompile(first)

	seeded := SeedClaimStream(gran, c)
	if seeded.NumClaims() != fresh.NumClaims() {
		t.Fatalf("seeded NumClaims = %d, want %d", seeded.NumClaims(), fresh.NumClaims())
	}
	want := fresh.Add(xs[200:])
	got := seeded.Add(xs[200:])
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seeded stream emitted %d claims, fresh emitted %d (or contents differ)", len(got), len(want))
	}
}
