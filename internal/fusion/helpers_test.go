package fusion

import (
	"kfusion/internal/extract"
	"kfusion/internal/kb"
)

// testExtraction returns a representative extraction for granularity tests.
func testExtraction() extract.Extraction {
	return extract.Extraction{
		Triple: kb.Triple{
			Subject:   "/m/07r1h",
			Predicate: "/people/person/birth_place",
			Object:    kb.EntityObject("/m/loc1"),
		},
		Extractor:  "TXT1",
		Pattern:    "tpl2|birth place",
		URL:        "http://wiki001.example.com/p3",
		Site:       "wiki001.example.com",
		Confidence: 0.8,
	}
}
