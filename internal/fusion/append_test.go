package fusion

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/kb"
)

// graphsEqual compares every field of two compiled graphs. Empty and nil
// slices are interchangeable (an append over an empty span materializes an
// empty slice where a fresh compile may leave nil).
func graphsEqual(t *testing.T, name string, got, want *graph) {
	t.Helper()
	eq := func(field string, g, w any) {
		t.Helper()
		gv, wv := reflect.ValueOf(g), reflect.ValueOf(w)
		if gv.Kind() == reflect.Slice && gv.Len() == 0 && wv.Len() == 0 {
			return
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: graph field %s differs:\n got %v\nwant %v", name, field, g, w)
		}
	}
	eq("claims", got.claims, want.claims)
	eq("items", got.items, want.items)
	eq("itemClaimStart", got.itemClaimStart, want.itemClaimStart)
	eq("itemClaims", got.itemClaims, want.itemClaims)
	eq("triples", got.triples, want.triples)
	eq("itemCandStart", got.itemCandStart, want.itemCandStart)
	eq("itemCands", got.itemCands, want.itemCands)
	eq("itemOfTriple", got.itemOfTriple, want.itemOfTriple)
	eq("localOfTriple", got.localOfTriple, want.localOfTriple)
	eq("tripleOfClaim", got.tripleOfClaim, want.tripleOfClaim)
	eq("localOfClaim", got.localOfClaim, want.localOfClaim)
	eq("tripleClaimStart", got.tripleClaimStart, want.tripleClaimStart)
	eq("tripleClaims", got.tripleClaims, want.tripleClaims)
	eq("tripleExtractors", got.tripleExtractors, want.tripleExtractors)
	eq("provKeys", got.provKeys, want.provKeys)
	eq("provOfClaim", got.provOfClaim, want.provOfClaim)
	eq("provClaimStart", got.provClaimStart, want.provClaimStart)
	eq("provClaims", got.provClaims, want.provClaims)
	eq("maxCandidates", got.maxCandidates, want.maxCandidates)
}

// TestAppendMatchesRecompile is the tentpole contract: appending a batch to a
// compiled generation produces the exact graph a fresh compile of the
// concatenated claim stream builds — same IDs for every pre-existing
// provenance, item, triple and claim, same CSR bits — at several split points
// and worker counts, including splits that add new provenances, new items,
// new candidates on existing items, and duplicate claims of existing triples.
func TestAppendMatchesRecompile(t *testing.T) {
	claims := randomClaims(99, 600)
	n := len(claims) // randomClaims dedups, so n < 600
	for _, split := range []int{0, 1, n / 2, n - n/10, n - 1, n} {
		for _, workers := range []int{1, 2, 4, 8} {
			base, err := CompileWorkers(claims[:split], workers, 0)
			if err != nil {
				t.Fatal(err)
			}
			next, err := base.AppendWorkers(claims[split:], workers)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := compile(claims, workers, 0)
			graphsEqual(t, fmt.Sprintf("split=%d workers=%d", split, workers), next.g, want)
			if next.Generation() != 1 {
				t.Fatalf("generation = %d, want 1", next.Generation())
			}
		}
	}
}

// TestAppendChainMatchesRecompile appends in several batches — the streaming
// shape — and requires the final generation to equal one big compile, with
// fusion results bit-identical under every method.
func TestAppendChainMatchesRecompile(t *testing.T) {
	claims := shardedClaims(2000)
	g := MustCompile(claims[:500])
	for _, cut := range []int{800, 1200, 1999, 2000} {
		prev := 0
		switch cut {
		case 800:
			prev = 500
		case 1200:
			prev = 800
		case 1999:
			prev = 1200
		case 2000:
			prev = 1999
		}
		g = g.MustAppend(claims[prev:cut])
	}
	if g.Generation() != 4 {
		t.Fatalf("generation = %d, want 4", g.Generation())
	}
	want, _ := compile(claims, 0, 0)
	graphsEqual(t, "chain", g.g, want)

	full := MustCompile(claims)
	for _, cfg := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig(), PopAccuPlusUnsupConfig()} {
		assertBitIdentical(t, "chain/"+cfg.Method.String(), g.MustFuse(cfg), full.MustFuse(cfg))
	}
}

// TestAppendAboveShardThreshold crosses the parallel interning threshold so
// the appended generation extends a graph whose base was compiled by the
// shard-and-merge path.
func TestAppendAboveShardThreshold(t *testing.T) {
	claims := shardedClaims(internShardThreshold + 4096)
	split := internShardThreshold + 100
	base, _ := CompileWorkers(claims[:split], 4, 0)
	next, err := base.AppendWorkers(claims[split:], 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := compile(claims, 4, 0)
	graphsEqual(t, "sharded", next.g, want)
}

// TestAppendLeavesPreviousGenerationUsable pins the generational contract:
// after an append, the base handle must still fuse to its own (pre-append)
// results, bit-identically.
func TestAppendLeavesPreviousGenerationUsable(t *testing.T) {
	claims := randomClaims(3, 500)
	n := len(claims)
	base := MustCompile(claims[:n/2])
	before := base.MustFuse(PopAccuConfig())
	next := base.MustAppend(claims[n/2:])
	after := base.MustFuse(PopAccuConfig())
	assertBitIdentical(t, "base-after-append", after, before)
	if next.NumClaims() != n {
		t.Fatalf("appended generation has %d claims, want %d", next.NumClaims(), n)
	}
	// A second append on the consumed base rebuilds the index and must still
	// match the recompile.
	again := base.MustAppend(claims[n/2:])
	want, _ := compile(claims, 0, 0)
	graphsEqual(t, "rebuilt-index", again.g, want)
}

// TestClaimStreamMatchesClaims pins the incremental flattening: Add batches
// concatenated reproduce Claims over the whole feed, including cross-batch
// (provenance, triple) dedup.
func TestClaimStreamMatchesClaims(t *testing.T) {
	xs := benchExtractions(400)
	for _, gran := range []Granularity{GranExtractorURL, GranExtractorSitePredPattern} {
		want := Claims(xs, gran)
		s := NewClaimStream(gran)
		var got []Claim
		for _, cut := range [][2]int{{0, 100}, {100, 101}, {101, 400}} {
			got = append(got, s.Add(xs[cut[0]:cut[1]])...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("gran %v: streamed claims diverge from Claims (%d vs %d)", gran, len(got), len(want))
		}
		if s.NumClaims() != len(want) {
			t.Fatalf("gran %v: NumClaims = %d, want %d", gran, s.NumClaims(), len(want))
		}
	}
}

// convergingRaw builds a claim stream on which EM actually converges
// (Epsilon-stopped, not Rounds-capped): a pool of mostly-accurate
// provenances, each item with one dominant true value and occasional
// per-provenance conflicts. This is the regime the WarmTol contract covers.
func convergingRaw(n int) []Claim {
	claims := make([]Claim, 0, n)
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("s%d", i%(n/12+1))
		prov := fmt.Sprintf("prov%d", i%37)
		val := "true"
		if (i*2654435761)%100 < 15 { // deterministic ~15% noise
			val = fmt.Sprintf("f%d", i%3)
		}
		claims = append(claims, cl(item, "p", val, prov))
	}
	return claims
}

// dedupClaims removes duplicate (prov, triple) pairs, as Claims would.
func dedupClaims(claims []Claim) []Claim {
	seen := make(map[provTriple]bool, len(claims))
	out := claims[:0:0]
	for _, c := range claims {
		k := provTriple{prov: c.Prov, triple: c.Triple}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// TestFuseWarmWithinToleranceOfCold pins the documented warm-start contract
// in its converged regime: with Epsilon (not the Rounds cap) terminating
// both runs, seeding from the previous generation's accuracies converges in
// no more rounds than cold start and lands within WarmTol of the cold-start
// output on every probability and accuracy.
func TestFuseWarmWithinToleranceOfCold(t *testing.T) {
	claims := dedupClaims(convergingRaw(4000))
	split := len(claims) - len(claims)/10
	base := MustCompile(claims[:split])
	cfg := PopAccuConfig()
	cfg.Rounds = 100 // let Epsilon terminate; the paper's R=5 is a forced cut
	prev := base.MustFuse(cfg)

	next := base.MustAppend(claims[split:])
	cold := next.MustFuse(cfg)
	warm := next.MustFuseWarm(cfg, prev)

	if cold.Rounds >= cfg.Rounds {
		t.Fatalf("cold start did not converge within %d rounds; test scenario broken", cfg.Rounds)
	}
	if warm.Rounds > cold.Rounds {
		t.Errorf("warm start took %d rounds, cold %d — warm must not be slower to converge", warm.Rounds, cold.Rounds)
	}
	coldBy := cold.ByTriple()
	maxDrift := 0.0
	for _, f := range warm.Triples {
		w := coldBy[f.Triple]
		if f.Predicted != w.Predicted {
			t.Fatalf("%v: Predicted %v vs cold %v", f.Triple, f.Predicted, w.Predicted)
		}
		if !f.Predicted {
			continue
		}
		if d := math.Abs(f.Probability - w.Probability); d > maxDrift {
			maxDrift = d
		}
	}
	for p, a := range warm.ProvAccuracy {
		if d := math.Abs(a - cold.ProvAccuracy[p]); d > maxDrift {
			maxDrift = d
		}
	}
	if maxDrift > WarmTol {
		t.Errorf("warm-vs-cold drift %.2e exceeds WarmTol %.0e", maxDrift, WarmTol)
	}
	t.Logf("warm rounds %d vs cold %d; max drift %.2e", warm.Rounds, cold.Rounds, maxDrift)

	// Nil previous result must degrade to a plain (cold) Fuse, bit-identically.
	assertBitIdentical(t, "warm-nil", next.MustFuseWarm(cfg, nil), cold)
}

// TestFuseWarmDeterministicAcrossWorkers pins that warm start preserves the
// worker-independence contract.
func TestFuseWarmDeterministicAcrossWorkers(t *testing.T) {
	claims := shardedClaims(800)
	base := MustCompile(claims[:700])
	prev := base.MustFuse(PopAccuConfig())
	next := base.MustAppend(claims[700:])
	var want *Result
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := PopAccuConfig()
		cfg.Workers = workers
		got := next.MustFuseWarm(cfg, prev)
		if want == nil {
			want = got
			continue
		}
		assertBitIdentical(t, fmt.Sprintf("warm workers=%d", workers), got, want)
	}
}

// benchExtractions synthesizes a small deterministic extraction stream with
// repeated (prov, triple) pairs across batch boundaries.
func benchExtractions(n int) []extract.Extraction {
	out := make([]extract.Extraction, n)
	for i := range out {
		out[i] = extract.Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", i%40)),
				Predicate: "p",
				Object:    kb.StringObject(fmt.Sprintf("v%d", i%5)),
			},
			Extractor:  fmt.Sprintf("X%d", i%4),
			Pattern:    fmt.Sprintf("pat%d", i%3),
			URL:        fmt.Sprintf("http://site%d.example/p%d", i%11, i%23),
			Site:       fmt.Sprintf("site%d.example", i%11),
			Confidence: -1,
		}
	}
	return out
}
