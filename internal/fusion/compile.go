package fusion

import (
	"runtime"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
)

// graph is the compiled, immutable form of a claim set: every provenance,
// extractor, data item and candidate triple interned into a dense int32 ID,
// with CSR adjacency connecting them. It is built once per compilation
// (compile) and then every EM round of every fusion run over it iterates
// flat slices — no maps, no string hashing, no re-shuffling.
//
// ID spaces and invariants:
//
//   - Claim IDs are the indexes of the input []Claim, unchanged.
//   - Item IDs are assigned in the (deterministic) output order of the
//     compile shuffle; itemClaims groups claim IDs by item, preserving
//     claim-index order within an item — the same order the per-round
//     shuffle of the seed engine produced, so reservoir sampling sees the
//     identical stream.
//   - Triple IDs are grouped by item: the candidates of item i occupy
//     [itemTripleStart[i], itemTripleStart[i+1]), in first-occurrence
//     order. localOfClaim maps a claim to its candidate's offset within
//     that span, so per-item counting uses a dense scratch array.
//   - Provenance IDs are assigned in claim-index order of first use.
//
// The graph holds no configuration-dependent state: provenance accuracies,
// per-claim probabilities and scoring scratch all live in the per-run engine
// (engine.go), which is why one graph can serve any number of configs.
type graph struct {
	claims []Claim

	// Items.
	items          []kb.DataItem
	itemClaimStart []int32 // len nItems+1; span into itemClaims
	itemClaims     []int32 // claim IDs grouped by item, claim-index order

	// Candidate triples (the deduplicated Stage III output set).
	triples          []kb.Triple
	itemTripleStart  []int32 // len nItems+1; candidate span of each item
	itemOfTriple     []int32 // triple ID -> item ID
	tripleOfClaim    []int32 // claim ID -> triple ID
	localOfClaim     []int32 // claim ID -> candidate offset within its item
	tripleClaimStart []int32 // len nTriples+1; span into tripleClaims
	tripleClaims     []int32 // claim IDs grouped by triple, claim-index order
	tripleExtractors []int32 // triple ID -> distinct extractor count

	// Provenances.
	provKeys       []string // prov ID -> provenance key
	provOfClaim    []int32  // claim ID -> prov ID
	provClaimStart []int32  // len nProvs+1; span into provClaims
	provClaims     []int32  // claim IDs grouped by prov, claim-index order

	// maxCandidates is the largest candidate count of any single item; it
	// sizes the per-worker scoring scratch.
	maxCandidates int
}

// Compiled is a compiled claim set: a reusable, immutable handle over the
// interned claim graph. Compilation is the expensive part of a fusion run —
// the only shuffle plus all interning — and it depends solely on the claims,
// never on a Config, so one Compiled can serve any number of fusion
// configurations:
//
//	c, _ := fusion.Compile(claims)
//	vote, _ := c.Fuse(fusion.VoteConfig())
//	accu, _ := c.Fuse(fusion.AccuConfig())
//	pop, _ := c.Fuse(fusion.PopAccuConfig())
//
// Each Fuse call builds its own engine state (provenance accuracies,
// per-claim probabilities, scratch buffers), so results are bit-identical to
// a fresh fusion.Fuse of the same claims and concurrent Fuse calls on one
// Compiled are safe. The caller must not mutate the claim slice after
// Compile.
//
// A Compiled is bound to its claims' provenance granularity:
// Config.Granularity acts when extractions are flattened into claims
// (Claims), never afterwards, so fusing configs that differ only in
// Granularity over one Compiled returns identical results. A granularity
// sweep needs one Compile per granularity's claim set — exper.Dataset does
// exactly that, caching one compiled graph per granularity.
type Compiled struct {
	g *graph
}

// Compile interns a claim set into a reusable Compiled graph using all
// available cores. It is deterministic for a fixed input order: the same
// claims always produce the same graph (and therefore the same Fuse
// results), regardless of available parallelism. Compilation currently
// cannot fail — the error is reserved for future claim validation, keeping
// the signature stable for callers that already plumb it.
func Compile(claims []Claim) (*Compiled, error) {
	return CompileWorkers(claims, 0, 0)
}

// CompileWorkers is Compile with explicit resource bounds: workers caps the
// shuffle, interning and counting goroutines (0 = GOMAXPROCS) and
// partitions sets the compile shuffle's partition count (0 = default). The
// graph — and every result fused from it — is identical for any workers
// value; partitions only permutes the item/triple ID order, exactly as it
// does in fusion.Fuse.
func CompileWorkers(claims []Claim, workers, partitions int) (*Compiled, error) {
	return &Compiled{g: compile(claims, workers, partitions)}, nil
}

// MustCompile is Compile for callers without error plumbing.
func MustCompile(claims []Claim) *Compiled {
	c, err := Compile(claims)
	if err != nil {
		panic(err)
	}
	return c
}

// ---- Read-only graph accessors ----
//
// These expose the interned ID spaces to other fusion models (e.g.
// internal/multitruth) so they can ride one compilation instead of building
// their own string-keyed indexes. All returned slices are views into the
// compiled graph and must not be modified.

// NumClaims reports the number of input claims.
func (c *Compiled) NumClaims() int { return len(c.g.claims) }

// NumItems reports the number of distinct data items.
func (c *Compiled) NumItems() int { return len(c.g.items) }

// NumTriples reports the number of distinct candidate triples.
func (c *Compiled) NumTriples() int { return len(c.g.triples) }

// NumProvenances reports the number of distinct provenance keys.
func (c *Compiled) NumProvenances() int { return len(c.g.provKeys) }

// Claims returns the compiled claim slice (claim ID -> Claim).
func (c *Compiled) Claims() []Claim { return c.g.claims }

// Triple returns the triple with the given triple ID.
func (c *Compiled) Triple(t int) kb.Triple { return c.g.triples[t] }

// Item returns the data item with the given item ID.
func (c *Compiled) Item(i int) kb.DataItem { return c.g.items[i] }

// ProvKey returns the provenance key with the given provenance ID.
func (c *Compiled) ProvKey(p int) string { return c.g.provKeys[p] }

// ItemTripleSpan returns the half-open triple-ID range [lo, hi) holding the
// candidate triples of item i.
func (c *Compiled) ItemTripleSpan(i int) (lo, hi int32) {
	return c.g.itemTripleStart[i], c.g.itemTripleStart[i+1]
}

// ItemClaims returns the claim IDs of item i in claim-index order.
func (c *Compiled) ItemClaims(i int) []int32 {
	return c.g.itemClaims[c.g.itemClaimStart[i]:c.g.itemClaimStart[i+1]]
}

// TripleClaims returns the claim IDs asserting triple t in claim-index order.
func (c *Compiled) TripleClaims(t int) []int32 {
	return c.g.tripleClaims[c.g.tripleClaimStart[t]:c.g.tripleClaimStart[t+1]]
}

// ClaimProv returns the provenance ID of a claim.
func (c *Compiled) ClaimProv(claim int32) int32 { return c.g.provOfClaim[claim] }

// itemGroup is the compile shuffle's per-item output: the item's claims and
// its deduplicated candidate triples.
type itemGroup struct {
	item   kb.DataItem
	claims []int32     // claim IDs in claim-index order
	local  []int32     // per claim, candidate offset within cands
	cands  []kb.Triple // distinct triples in first-occurrence order
}

// compile interns a claim set into a graph. It runs the only shuffle of the
// whole fusion run: claims are grouped by data item on the mapreduce
// substrate (partitioned by the cheap field-wise kb.DataItem.Hash), and the
// per-item candidate dedup — Figure 8's Stage III grouping — happens inside
// the reducers. Provenance and extractor interning runs as a parallel
// shard-and-merge pass; everything else is sequential O(n) array assembly.
// The result is deterministic for a fixed input order and independent of
// workers.
func compile(claims []Claim, workers, partitions int) *graph {
	n := len(claims)
	g := &graph{claims: claims}

	job := mapreduce.Job[int32, kb.DataItem, int32, itemGroup]{
		Name: "fusion-compile",
		Map: func(idx int32, emit func(kb.DataItem, int32)) {
			emit(claims[idx].Triple.Item(), idx)
		},
		Reduce: func(item kb.DataItem, idxs []int32, emit func(itemGroup)) {
			emit(dedupItem(claims, item, idxs))
		},
		KeyHash:       kb.DataItem.Hash,
		EmitsPerInput: 1,
		Workers:       workers,
		Partitions:    partitions,
	}
	groups := mapreduce.MustRun(job, claimIndexes(n))

	// ---- Assemble the item/triple side of the graph ----
	nItems := len(groups)
	nTriples := 0
	for i := range groups {
		nTriples += len(groups[i].cands)
	}
	g.items = make([]kb.DataItem, nItems)
	g.itemClaimStart = make([]int32, nItems+1)
	g.itemClaims = make([]int32, n)
	g.itemTripleStart = make([]int32, nItems+1)
	g.triples = make([]kb.Triple, 0, nTriples)
	g.itemOfTriple = make([]int32, nTriples)
	g.tripleOfClaim = make([]int32, n)
	g.localOfClaim = make([]int32, n)
	pos := int32(0)
	for gi := range groups {
		grp := &groups[gi]
		g.items[gi] = grp.item
		g.itemClaimStart[gi] = pos
		base := int32(len(g.triples))
		g.itemTripleStart[gi] = base
		g.triples = append(g.triples, grp.cands...)
		for k := range grp.cands {
			g.itemOfTriple[base+int32(k)] = int32(gi)
		}
		if len(grp.cands) > g.maxCandidates {
			g.maxCandidates = len(grp.cands)
		}
		for k, c := range grp.claims {
			g.itemClaims[pos] = c
			g.localOfClaim[c] = grp.local[k]
			g.tripleOfClaim[c] = base + grp.local[k]
			pos++
		}
	}
	g.itemClaimStart[nItems] = pos
	g.itemTripleStart[nItems] = int32(len(g.triples))

	// ---- Intern provenances and extractors (claim-index order) ----
	var extOfClaim []int32
	var extKeys int
	g.provOfClaim, g.provKeys, extOfClaim, extKeys = internClaims(claims, workers)

	// ---- CSR adjacency by counting sort ----
	g.provClaimStart, g.provClaims = csrByGroup(g.provOfClaim, len(g.provKeys), workers)
	g.tripleClaimStart, g.tripleClaims = csrByGroup(g.tripleOfClaim, nTriples, workers)

	g.tripleExtractors = countTripleExtractors(g, extOfClaim, extKeys, workers)
	return g
}

// internShardThreshold is the claim count below which interning runs
// sequentially: per-shard map setup and the merge pass only pay off once the
// single-threaded hashing loop dominates (the shared cutoff of every
// shard-and-merge pass; tuned in internal/csr).
const internShardThreshold = csr.ParallelThreshold

// internClaims interns provenance and extractor keys into dense int32 IDs in
// claim-index order of first use. Large inputs run a parallel shard pass —
// each worker interns a contiguous claim range into shard-local IDs — then a
// sequential ordered merge assigns global IDs and a parallel remap rewrites
// the local IDs in place. Processing shards in claim order makes the global
// assignment identical to the sequential one, so results never depend on the
// worker count.
func internClaims(claims []Claim, workers int) (provOfClaim []int32, provKeys []string, extOfClaim []int32, nExt int) {
	n := len(claims)
	provOfClaim = make([]int32, n)
	extOfClaim = make([]int32, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < internShardThreshold || workers == 1 {
		provID := make(map[string]int32, 256)
		extID := make(map[string]int32, 32)
		for i := range claims {
			id, ok := provID[claims[i].Prov]
			if !ok {
				id = int32(len(provKeys))
				provID[claims[i].Prov] = id
				provKeys = append(provKeys, claims[i].Prov)
			}
			provOfClaim[i] = id
			xid, ok := extID[claims[i].Extractor]
			if !ok {
				xid = int32(nExt)
				extID[claims[i].Extractor] = xid
				nExt++
			}
			extOfClaim[i] = xid
		}
		return provOfClaim, provKeys, extOfClaim, nExt
	}

	type shard struct {
		provKeys, extKeys   []string // shard-local first-use order
		provRemap, extRemap []int32  // shard-local ID -> global ID
	}
	shards := make([]shard, workers)
	ParallelRange(n, workers, func(w, lo, hi int) {
		s := &shards[w]
		provID := make(map[string]int32, 256)
		extID := make(map[string]int32, 32)
		for i := lo; i < hi; i++ {
			id, ok := provID[claims[i].Prov]
			if !ok {
				id = int32(len(s.provKeys))
				provID[claims[i].Prov] = id
				s.provKeys = append(s.provKeys, claims[i].Prov)
			}
			provOfClaim[i] = id
			xid, ok := extID[claims[i].Extractor]
			if !ok {
				xid = int32(len(s.extKeys))
				extID[claims[i].Extractor] = xid
				s.extKeys = append(s.extKeys, claims[i].Extractor)
			}
			extOfClaim[i] = xid
		}
	})

	// Ordered merge: walking shards (and their local key lists) in claim
	// order assigns each key its global ID at its overall first use.
	globalProv := make(map[string]int32, 256)
	globalExt := make(map[string]int32, 32)
	for w := range shards {
		s := &shards[w]
		s.provRemap = make([]int32, len(s.provKeys))
		for li, key := range s.provKeys {
			gid, ok := globalProv[key]
			if !ok {
				gid = int32(len(provKeys))
				globalProv[key] = gid
				provKeys = append(provKeys, key)
			}
			s.provRemap[li] = gid
		}
		s.extRemap = make([]int32, len(s.extKeys))
		for li, key := range s.extKeys {
			gid, ok := globalExt[key]
			if !ok {
				gid = int32(len(globalExt))
				globalExt[key] = gid
			}
			s.extRemap[li] = gid
		}
	}
	// Same (n, workers) split as the intern pass, so chunk w rewrites
	// exactly the IDs shard w assigned.
	ParallelRange(n, workers, func(w, lo, hi int) {
		s := &shards[w]
		for i := lo; i < hi; i++ {
			provOfClaim[i] = s.provRemap[provOfClaim[i]]
			extOfClaim[i] = s.extRemap[extOfClaim[i]]
		}
	})
	return provOfClaim, provKeys, extOfClaim, len(globalExt)
}

// countTripleExtractors computes the distinct extractor count of every
// triple, in parallel over triple ranges. Each worker stamps a private
// seen-set with the triple ID, so the scratch is never cleared; counts are
// exact, making the result independent of the split.
func countTripleExtractors(g *graph, extOfClaim []int32, extKeys, workers int) []int32 {
	nTriples := len(g.triples)
	out := make([]int32, nTriples)
	if nTriples < internShardThreshold {
		workers = 1 // goroutine setup would dominate
	}
	ParallelRange(nTriples, workers, func(_, lo, hi int) {
		seen := make([]int32, extKeys)
		for i := range seen {
			seen[i] = -1
		}
		for t := lo; t < hi; t++ {
			for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
				if x := extOfClaim[c]; seen[x] != int32(t) {
					seen[x] = int32(t)
					out[t]++
				}
			}
		}
	})
	return out
}

// dedupItem builds one item's group: its claims plus the deduplicated
// candidate list. Small items use a linear candidate scan; items with many
// distinct values switch to a map.
func dedupItem(claims []Claim, item kb.DataItem, idxs []int32) itemGroup {
	grp := itemGroup{item: item, claims: idxs, local: make([]int32, len(idxs))}
	var candIdx map[kb.Triple]int32 // lazily built past the scan threshold
	for k, c := range idxs {
		t := claims[c].Triple
		l := int32(-1)
		if candIdx == nil {
			for j := range grp.cands {
				if grp.cands[j] == t {
					l = int32(j)
					break
				}
			}
			if l < 0 && len(grp.cands) >= 32 {
				candIdx = make(map[kb.Triple]int32, 2*len(grp.cands))
				for j := range grp.cands {
					candIdx[grp.cands[j]] = int32(j)
				}
			}
		}
		if candIdx != nil {
			if j, ok := candIdx[t]; ok {
				l = j
			}
		}
		if l < 0 {
			l = int32(len(grp.cands))
			grp.cands = append(grp.cands, t)
			if candIdx != nil {
				candIdx[t] = l
			}
		}
		grp.local[k] = l
	}
	return grp
}

// csrByGroup builds a CSR adjacency from a dense group assignment: start has
// one span per group, and ids lists the element indexes of each group in
// ascending order. Large inputs run csr.ByGroup's parallel counting sort
// (per-worker counts + prefix-sum merge + parallel scatter), which is exact:
// the adjacency is identical for every workers value.
func csrByGroup(groupOf []int32, nGroups, workers int) (start, ids []int32) {
	return csr.ByGroup(groupOf, nGroups, workers)
}
