package fusion

import (
	"kfusion/internal/kb"
	"kfusion/internal/mapreduce"
)

// graph is the compiled, immutable form of a claim set: every provenance,
// extractor, data item and candidate triple interned into a dense int32 ID,
// with CSR adjacency connecting them. It is built once per fusion run
// (compile) and then every EM round iterates flat slices — no maps, no
// string hashing, no re-shuffling.
//
// ID spaces and invariants:
//
//   - Claim IDs are the indexes of the input []Claim, unchanged.
//   - Item IDs are assigned in the (deterministic) output order of the
//     compile shuffle; itemClaims groups claim IDs by item, preserving
//     claim-index order within an item — the same order the per-round
//     shuffle of the seed engine produced, so reservoir sampling sees the
//     identical stream.
//   - Triple IDs are grouped by item: the candidates of item i occupy
//     [itemTripleStart[i], itemTripleStart[i+1]), in first-occurrence
//     order. localOfClaim maps a claim to its candidate's offset within
//     that span, so per-item counting uses a dense scratch array.
//   - Provenance IDs are assigned in claim-index order of first use.
type graph struct {
	claims []Claim

	// Items.
	items          []kb.DataItem
	itemClaimStart []int32 // len nItems+1; span into itemClaims
	itemClaims     []int32 // claim IDs grouped by item, claim-index order

	// Candidate triples (the deduplicated Stage III output set).
	triples          []kb.Triple
	itemTripleStart  []int32 // len nItems+1; candidate span of each item
	itemOfTriple     []int32 // triple ID -> item ID
	tripleOfClaim    []int32 // claim ID -> triple ID
	localOfClaim     []int32 // claim ID -> candidate offset within its item
	tripleClaimStart []int32 // len nTriples+1; span into tripleClaims
	tripleClaims     []int32 // claim IDs grouped by triple, claim-index order
	tripleExtractors []int32 // triple ID -> distinct extractor count

	// Provenances.
	provKeys       []string // prov ID -> provenance key
	provOfClaim    []int32  // claim ID -> prov ID
	provClaimStart []int32  // len nProvs+1; span into provClaims
	provClaims     []int32  // claim IDs grouped by prov, claim-index order

	// maxCandidates is the largest candidate count of any single item; it
	// sizes the per-worker scoring scratch.
	maxCandidates int
}

// itemGroup is the compile shuffle's per-item output: the item's claims and
// its deduplicated candidate triples.
type itemGroup struct {
	item   kb.DataItem
	claims []int32     // claim IDs in claim-index order
	local  []int32     // per claim, candidate offset within cands
	cands  []kb.Triple // distinct triples in first-occurrence order
}

// compile interns a claim set into a graph. It runs the only shuffle of the
// whole fusion run: claims are grouped by data item on the mapreduce
// substrate (partitioned by the cheap field-wise kb.DataItem.Hash), and the
// per-item candidate dedup — Figure 8's Stage III grouping — happens inside
// the reducers. Everything after that is sequential O(n) array assembly.
// The result is deterministic for a fixed input order and independent of
// cfg.Workers.
func compile(claims []Claim, cfg Config) *graph {
	n := len(claims)
	g := &graph{claims: claims}

	job := mapreduce.Job[int32, kb.DataItem, int32, itemGroup]{
		Name: "fusion-compile",
		Map: func(idx int32, emit func(kb.DataItem, int32)) {
			emit(claims[idx].Triple.Item(), idx)
		},
		Reduce: func(item kb.DataItem, idxs []int32, emit func(itemGroup)) {
			emit(dedupItem(claims, item, idxs))
		},
		KeyHash:       kb.DataItem.Hash,
		EmitsPerInput: 1,
		Workers:       cfg.Workers,
		Partitions:    cfg.Partitions,
	}
	groups := mapreduce.MustRun(job, claimIndexes(n))

	// ---- Assemble the item/triple side of the graph ----
	nItems := len(groups)
	nTriples := 0
	for i := range groups {
		nTriples += len(groups[i].cands)
	}
	g.items = make([]kb.DataItem, nItems)
	g.itemClaimStart = make([]int32, nItems+1)
	g.itemClaims = make([]int32, n)
	g.itemTripleStart = make([]int32, nItems+1)
	g.triples = make([]kb.Triple, 0, nTriples)
	g.itemOfTriple = make([]int32, nTriples)
	g.tripleOfClaim = make([]int32, n)
	g.localOfClaim = make([]int32, n)
	pos := int32(0)
	for gi := range groups {
		grp := &groups[gi]
		g.items[gi] = grp.item
		g.itemClaimStart[gi] = pos
		base := int32(len(g.triples))
		g.itemTripleStart[gi] = base
		g.triples = append(g.triples, grp.cands...)
		for k := range grp.cands {
			g.itemOfTriple[base+int32(k)] = int32(gi)
		}
		if len(grp.cands) > g.maxCandidates {
			g.maxCandidates = len(grp.cands)
		}
		for k, c := range grp.claims {
			g.itemClaims[pos] = c
			g.localOfClaim[c] = grp.local[k]
			g.tripleOfClaim[c] = base + grp.local[k]
			pos++
		}
	}
	g.itemClaimStart[nItems] = pos
	g.itemTripleStart[nItems] = int32(len(g.triples))

	// ---- Intern provenances and extractors (claim-index order) ----
	provID := make(map[string]int32, 256)
	extID := make(map[string]int32, 32)
	extKeys := 0
	g.provOfClaim = make([]int32, n)
	extOfClaim := make([]int32, n)
	for i := range claims {
		id, ok := provID[claims[i].Prov]
		if !ok {
			id = int32(len(g.provKeys))
			provID[claims[i].Prov] = id
			g.provKeys = append(g.provKeys, claims[i].Prov)
		}
		g.provOfClaim[i] = id
		xid, ok := extID[claims[i].Extractor]
		if !ok {
			xid = int32(extKeys)
			extID[claims[i].Extractor] = xid
			extKeys++
		}
		extOfClaim[i] = xid
	}

	// ---- CSR adjacency by counting sort ----
	g.provClaimStart, g.provClaims = csrByGroup(g.provOfClaim, len(g.provKeys))
	g.tripleClaimStart, g.tripleClaims = csrByGroup(g.tripleOfClaim, nTriples)

	// Distinct extractors per triple, with an epoch-stamped seen-set so the
	// scratch is never cleared.
	g.tripleExtractors = make([]int32, nTriples)
	seen := make([]int32, extKeys)
	for i := range seen {
		seen[i] = -1
	}
	for t := 0; t < nTriples; t++ {
		for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
			if x := extOfClaim[c]; seen[x] != int32(t) {
				seen[x] = int32(t)
				g.tripleExtractors[t]++
			}
		}
	}
	return g
}

// dedupItem builds one item's group: its claims plus the deduplicated
// candidate list. Small items use a linear candidate scan; items with many
// distinct values switch to a map.
func dedupItem(claims []Claim, item kb.DataItem, idxs []int32) itemGroup {
	grp := itemGroup{item: item, claims: idxs, local: make([]int32, len(idxs))}
	var candIdx map[kb.Triple]int32 // lazily built past the scan threshold
	for k, c := range idxs {
		t := claims[c].Triple
		l := int32(-1)
		if candIdx == nil {
			for j := range grp.cands {
				if grp.cands[j] == t {
					l = int32(j)
					break
				}
			}
			if l < 0 && len(grp.cands) >= 32 {
				candIdx = make(map[kb.Triple]int32, 2*len(grp.cands))
				for j := range grp.cands {
					candIdx[grp.cands[j]] = int32(j)
				}
			}
		}
		if candIdx != nil {
			if j, ok := candIdx[t]; ok {
				l = j
			}
		}
		if l < 0 {
			l = int32(len(grp.cands))
			grp.cands = append(grp.cands, t)
			if candIdx != nil {
				candIdx[t] = l
			}
		}
		grp.local[k] = l
	}
	return grp
}

// csrByGroup builds a CSR adjacency from a dense group assignment: start has
// one span per group, and ids lists the element indexes of each group in
// ascending order.
func csrByGroup(groupOf []int32, nGroups int) (start, ids []int32) {
	start = make([]int32, nGroups+1)
	for _, p := range groupOf {
		start[p+1]++
	}
	for i := 0; i < nGroups; i++ {
		start[i+1] += start[i]
	}
	ids = make([]int32, len(groupOf))
	next := make([]int32, nGroups)
	copy(next, start[:nGroups])
	for i, p := range groupOf {
		ids[next[p]] = int32(i)
		next[p]++
	}
	return start, ids
}
