package fusion

import (
	"runtime"
	"slices"
	"sync"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
)

// graph is the compiled, immutable form of a claim set: every provenance,
// extractor, data item and candidate triple interned into a dense int32 ID,
// with CSR adjacency connecting them. It is built once per compilation
// (compile) and then every EM round of every fusion run over it iterates
// flat slices — no maps, no string hashing, no re-shuffling.
//
// ID spaces and invariants (all append-stable: extending the claim stream
// never renumbers an existing ID, which is what makes Append a generation of
// the same graph instead of a recompile):
//
//   - Claim IDs are the indexes of the input []Claim, unchanged.
//   - Item IDs are assigned in first-occurrence order of the claim stream.
//   - Triple IDs are assigned in global first-occurrence order of the claim
//     stream. An item's candidates are reached through the itemCands CSR
//     (ascending triple ID = per-item first-occurrence order); localOfTriple
//     is a triple's offset within its item's candidate list, and
//     localOfClaim maps a claim to its candidate's offset, so per-item
//     counting uses a dense scratch array.
//   - Provenance IDs are assigned in claim-index order of first use.
//   - itemClaims groups claim IDs by item in ascending claim-index order —
//     the same order the per-round shuffle of the seed engine produced, so
//     reservoir sampling sees the identical stream.
//
// The graph holds no configuration-dependent state: provenance accuracies,
// per-claim probabilities and scoring scratch all live in the per-run engine
// (engine.go), which is why one graph can serve any number of configs.
type graph struct {
	claims []Claim

	// Items.
	items          []kb.DataItem
	itemClaimStart []int32 // len nItems+1; span into itemClaims
	itemClaims     []int32 // claim IDs grouped by item, claim-index order

	// Candidate triples (the deduplicated Stage III output set), in global
	// first-occurrence order.
	triples          []kb.Triple
	itemCandStart    []int32 // len nItems+1; span into itemCands
	itemCands        []int32 // candidate triple IDs per item, ascending
	itemOfTriple     []int32 // triple ID -> item ID
	localOfTriple    []int32 // triple ID -> candidate offset within its item
	tripleOfClaim    []int32 // claim ID -> triple ID
	localOfClaim     []int32 // claim ID -> candidate offset within its item
	tripleClaimStart []int32 // len nTriples+1; span into tripleClaims
	tripleClaims     []int32 // claim IDs grouped by triple, claim-index order
	tripleExtractors []int32 // triple ID -> distinct extractor count

	// Provenances.
	provKeys       []string // prov ID -> provenance key
	provOfClaim    []int32  // claim ID -> prov ID
	provClaimStart []int32  // len nProvs+1; span into provClaims
	provClaims     []int32  // claim IDs grouped by prov, claim-index order

	// maxCandidates is the largest candidate count of any single item; it
	// sizes the per-worker scoring scratch.
	maxCandidates int
}

// claimIndex is the mutable interning state a compilation leaves behind so
// Append can extend the ID spaces without re-hashing the prefix. It is
// byproduct state, not part of the immutable graph: exactly one generation
// owns it at a time (see Compiled.takeIndex).
type claimIndex struct {
	// Every ID space interns through an open-addressing table
	// (interntab.go) over its dense key slice — g.provKeys, extKeys,
	// g.triples, g.items: per-claim interning is the compile hot loop, and
	// probing a flat (hash, ID) array beats the generic map's bucket walk.
	prov internTable[string]
	ext  internTable[string]
	tri  internTable[kb.Triple]
	item internTable[kb.DataItem]
	// extKeys, extOfClaim and nExt cover the extractor axis, which the
	// graph itself only keeps aggregated (tripleExtractors); Append needs
	// the per-claim assignment to recount the triples a batch touches.
	// nExt == len(extKeys) always.
	extKeys    []string
	extOfClaim []int32
	nExt       int
}

// Compiled is a compiled claim set: a reusable, immutable handle over the
// interned claim graph. Compilation is the expensive part of a fusion run —
// all interning plus the CSR builds — and it depends solely on the claims,
// never on a Config, so one Compiled can serve any number of fusion
// configurations:
//
//	c, _ := fusion.Compile(claims)
//	vote, _ := c.Fuse(fusion.VoteConfig())
//	accu, _ := c.Fuse(fusion.AccuConfig())
//	pop, _ := c.Fuse(fusion.PopAccuConfig())
//
// Each Fuse call builds its own engine state (provenance accuracies,
// per-claim probabilities, scratch buffers), so results are bit-identical to
// a fresh fusion.Fuse of the same claims and concurrent Fuse calls on one
// Compiled are safe. The caller must not mutate the claim slice after
// Compile.
//
// A Compiled is also one generation of an append-only claim feed: Append
// extends the graph with a claim batch — incrementally interning only the
// new provenances, extractors, items and triples — and returns the next
// generation, bit-identical to recompiling the concatenated claim stream
// (every ID space is assigned in first-occurrence order, so existing IDs
// never move). The previous generation stays fully usable.
//
// A Compiled is bound to its claims' provenance granularity:
// Config.Granularity acts when extractions are flattened into claims
// (Claims), never afterwards, so fusing configs that differ only in
// Granularity over one Compiled returns identical results. A granularity
// sweep needs one Compile per granularity's claim set — exper.Dataset does
// exactly that, caching one compiled graph per granularity.
type Compiled struct {
	g   *graph
	gen int

	// idx is the interning byproduct Append consumes. The first Append on
	// this generation takes it (and hands it to the generation it returns);
	// a later Append on the same generation rebuilds it from the graph —
	// correct, just slower. Guarded by mu; the graph itself is immutable.
	mu  sync.Mutex
	idx *claimIndex
}

// Compile interns a claim set into a reusable Compiled graph using all
// available cores. It is deterministic for a fixed input order: the same
// claims always produce the same graph (and therefore the same Fuse
// results), regardless of available parallelism. Compilation currently
// cannot fail — the error is reserved for future claim validation, keeping
// the signature stable for callers that already plumb it.
func Compile(claims []Claim) (*Compiled, error) {
	return CompileWorkers(claims, 0, 0)
}

// CompileWorkers is Compile with explicit resource bounds: workers caps the
// interning and counting goroutines (0 = GOMAXPROCS). The graph — and every
// result fused from it — is identical for any workers value. partitions is
// retained for signature compatibility with the former shuffle-based
// compiler and is inert: the first-occurrence ID assignment has no partition
// axis.
func CompileWorkers(claims []Claim, workers, partitions int) (*Compiled, error) {
	g, idx := compile(claims, workers, partitions)
	return &Compiled{g: g, idx: idx}, nil
}

// MustCompile is Compile for callers without error plumbing.
func MustCompile(claims []Claim) *Compiled {
	c, err := Compile(claims)
	if err != nil {
		panic(err)
	}
	return c
}

// ---- Read-only graph accessors ----
//
// These expose the interned ID spaces to other fusion models (e.g.
// internal/multitruth) so they can ride one compilation instead of building
// their own string-keyed indexes. All returned slices are views into the
// compiled graph and must not be modified.

// NumClaims reports the number of input claims.
func (c *Compiled) NumClaims() int { return len(c.g.claims) }

// NumItems reports the number of distinct data items.
func (c *Compiled) NumItems() int { return len(c.g.items) }

// NumTriples reports the number of distinct candidate triples.
func (c *Compiled) NumTriples() int { return len(c.g.triples) }

// NumProvenances reports the number of distinct provenance keys.
func (c *Compiled) NumProvenances() int { return len(c.g.provKeys) }

// Generation reports how many Appends produced this handle (0 for a fresh
// Compile).
func (c *Compiled) Generation() int { return c.gen }

// Claims returns the compiled claim slice (claim ID -> Claim).
func (c *Compiled) Claims() []Claim { return c.g.claims }

// Triple returns the triple with the given triple ID.
func (c *Compiled) Triple(t int) kb.Triple { return c.g.triples[t] }

// Item returns the data item with the given item ID.
func (c *Compiled) Item(i int) kb.DataItem { return c.g.items[i] }

// ProvKey returns the provenance key with the given provenance ID.
func (c *Compiled) ProvKey(p int) string { return c.g.provKeys[p] }

// ItemTriples returns the candidate triple IDs of item i in ascending
// (first-occurrence) order.
func (c *Compiled) ItemTriples(i int) []int32 {
	return c.g.itemCands[c.g.itemCandStart[i]:c.g.itemCandStart[i+1]]
}

// ItemClaims returns the claim IDs of item i in claim-index order.
func (c *Compiled) ItemClaims(i int) []int32 {
	return c.g.itemClaims[c.g.itemClaimStart[i]:c.g.itemClaimStart[i+1]]
}

// TripleClaims returns the claim IDs asserting triple t in claim-index order.
func (c *Compiled) TripleClaims(t int) []int32 {
	return c.g.tripleClaims[c.g.tripleClaimStart[t]:c.g.tripleClaimStart[t+1]]
}

// ClaimProv returns the provenance ID of a claim.
func (c *Compiled) ClaimProv(claim int32) int32 { return c.g.provOfClaim[claim] }

// internShardThreshold is the claim count below which interning runs
// sequentially: per-shard map setup and the merge pass only pay off once the
// single-threaded hashing loop dominates (the shared cutoff of every
// shard-and-merge pass; tuned in internal/csr).
const internShardThreshold = csr.ParallelThreshold

// compile interns a claim set into a graph plus the interning index Append
// consumes. Every ID space is assigned in first-occurrence order of the
// claim stream; large inputs intern with a parallel shard pass whose
// shard-local key lists fold through csr.MergeKeys' ordered pairwise merge,
// which reproduces the sequential order exactly. CSR adjacency builds with
// the parallel counting sort of csr.ByGroup. The result is deterministic for
// a fixed input order and independent of workers; the partitions parameter
// of the former shuffle-based compiler is inert.
func compile(claims []Claim, workers, _ int) (*graph, *claimIndex) {
	n := len(claims)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &graph{claims: claims}
	idx := &claimIndex{
		// Distinct provenances and triples run up to about half the claim
		// count in an extraction corpus (items a quarter); undershooting
		// just costs cheap grow() re-slots, overshooting costs zeroed pages
		// every compile.
		prov:       newInternTable[string](n/2, nil),
		ext:        newInternTable[string](32, nil),
		tri:        newInternTable(n/2, hashTriple),
		item:       newInternTable(n/4, hashItem),
		extOfClaim: make([]int32, n),
	}
	g.provOfClaim = make([]int32, n)
	g.tripleOfClaim = make([]int32, n)
	// Presize the key slices to the same priors: append-doubling on 64-byte
	// triples otherwise allocates ~2x the final footprint per compile and
	// copies it log-many times.
	g.triples = make([]kb.Triple, 0, n/2+16)
	g.provKeys = make([]string, 0, n/2+16)

	// ---- Intern provenances, extractors and triples ----
	if n < internShardThreshold || workers == 1 {
		// Claim streams arrive grouped by extractor (and largely by
		// provenance within a group), so a last-seen cache answers most
		// lookups without touching the hash tables. Triples do not repeat
		// consecutively — corroborating claims are whole groups apart.
		lastProv, lastExt := "", ""
		var lastPid, lastXid int32
		for i := range claims {
			c := &claims[i]
			pid := lastPid
			if c.Prov != lastProv || i == 0 {
				ph := idx.prov.hash(c.Prov)
				pid = idx.prov.id(ph, c.Prov, g.provKeys)
				if pid < 0 {
					pid = int32(len(g.provKeys))
					g.provKeys = append(g.provKeys, c.Prov)
					idx.prov.insert(ph, pid)
				}
				lastProv, lastPid = c.Prov, pid
			}
			g.provOfClaim[i] = pid
			xid := lastXid
			if c.Extractor != lastExt || i == 0 {
				xh := idx.ext.hash(c.Extractor)
				xid = idx.ext.id(xh, c.Extractor, idx.extKeys)
				if xid < 0 {
					xid = int32(idx.nExt)
					idx.extKeys = append(idx.extKeys, c.Extractor)
					idx.ext.insert(xh, xid)
					idx.nExt++
				}
				lastExt, lastXid = c.Extractor, xid
			}
			idx.extOfClaim[i] = xid
			h := idx.tri.hash(c.Triple)
			tid := idx.tri.id(h, c.Triple, g.triples)
			if tid < 0 {
				tid = int32(len(g.triples))
				g.triples = append(g.triples, c.Triple)
				idx.tri.insert(h, tid)
			}
			g.tripleOfClaim[i] = tid
		}
	} else {
		internClaimsParallel(g, idx, claims, workers)
	}

	// ---- Intern items and per-item candidate offsets (triple-ID order) ----
	// A triple belongs to exactly one item, so walking the triples in ID
	// (first-occurrence) order interns items in stream first-occurrence order
	// too, and hashes each distinct item once per candidate instead of once
	// per claim.
	internItems(g, idx, 0)

	assembleGraph(g, idx, 0, workers)
	return g, idx
}

// internClaimsParallel is the shard-and-merge interning pass: each worker
// interns a contiguous claim range into shard-local ID spaces, the
// shard-local key lists merge into the global first-occurrence order with
// csr.MergeKeys' ordered pairwise merge (bit-identical to a sequential
// fold), and a parallel remap rewrites the shard-local IDs in place.
func internClaimsParallel(g *graph, idx *claimIndex, claims []Claim, workers int) {
	n := len(claims)
	if workers > n {
		workers = n
	}
	type shard struct {
		provKeys, extKeys []string
		triKeys           []kb.Triple
	}
	shards := make([]shard, workers)
	csr.ParallelRange(n, workers, func(w, lo, hi int) {
		s := &shards[w]
		provID := make(map[string]int32, 256)
		extID := make(map[string]int32, 32)
		triID := make(map[kb.Triple]int32, hi-lo)
		for i := lo; i < hi; i++ {
			c := &claims[i]
			pid, ok := provID[c.Prov]
			if !ok {
				pid = int32(len(s.provKeys))
				provID[c.Prov] = pid
				s.provKeys = append(s.provKeys, c.Prov)
			}
			g.provOfClaim[i] = pid
			xid, ok := extID[c.Extractor]
			if !ok {
				xid = int32(len(s.extKeys))
				extID[c.Extractor] = xid
				s.extKeys = append(s.extKeys, c.Extractor)
			}
			idx.extOfClaim[i] = xid
			tid, ok := triID[c.Triple]
			if !ok {
				tid = int32(len(s.triKeys))
				triID[c.Triple] = tid
				s.triKeys = append(s.triKeys, c.Triple)
			}
			g.tripleOfClaim[i] = tid
		}
	})

	provShards := make([][]string, workers)
	extShards := make([][]string, workers)
	triShards := make([][]kb.Triple, workers)
	for w := range shards {
		provShards[w] = shards[w].provKeys
		extShards[w] = shards[w].extKeys
		triShards[w] = shards[w].triKeys
	}
	var provKeys, extKeys []string
	var triKeys []kb.Triple
	var provMap, extMap map[string]int32
	var triMap map[kb.Triple]int32
	// The three key spaces merge concurrently; each merge is itself a
	// parallel pairwise tree, and each reproduces the sequential fold's
	// global first-occurrence order exactly.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		provKeys, provMap = csr.MergeKeys(provShards, workers)
	}()
	go func() {
		defer wg.Done()
		extKeys, extMap = csr.MergeKeys(extShards, workers)
	}()
	triKeys, triMap = csr.MergeKeys(triShards, workers)
	wg.Wait()
	g.provKeys = provKeys
	g.triples = triKeys
	idx.extKeys = extKeys
	idx.nExt = len(extKeys)
	// The merge's scratch maps do the shard remap below; the index Append
	// continues from is the flat intern tables, bulk-loaded in ID order.
	idx.prov = buildInternTable(g.provKeys, nil)
	idx.ext = buildInternTable(extKeys, nil)
	idx.tri = buildInternTable(g.triples, hashTriple)

	// Same (n, workers) split as the intern pass, so chunk w rewrites
	// exactly the IDs shard w assigned.
	csr.ParallelRange(n, workers, func(w, lo, hi int) {
		s := &shards[w]
		provRemap := make([]int32, len(s.provKeys))
		for li, key := range s.provKeys {
			provRemap[li] = provMap[key]
		}
		extRemap := make([]int32, len(s.extKeys))
		for li, key := range s.extKeys {
			extRemap[li] = extMap[key]
		}
		triRemap := make([]int32, len(s.triKeys))
		for li, key := range s.triKeys {
			triRemap[li] = triMap[key]
		}
		for i := lo; i < hi; i++ {
			g.provOfClaim[i] = provRemap[g.provOfClaim[i]]
			idx.extOfClaim[i] = extRemap[idx.extOfClaim[i]]
			g.tripleOfClaim[i] = triRemap[g.tripleOfClaim[i]]
		}
	})
}

// internItems extends the item ID space and per-item candidate offsets over
// the triples from firstTriple on, walking them in ID order (the stream's
// first-occurrence order). candCounts in g.itemCandStart form is not yet
// available for new items, so offsets derive from a per-item running count
// seeded from the existing spans.
func internItems(g *graph, idx *claimIndex, firstTriple int) {
	need := len(g.triples) - firstTriple
	candCount := make([]int32, len(g.items), len(g.items)+need)
	for i := range candCount {
		candCount[i] = g.itemCandStart[i+1] - g.itemCandStart[i]
	}
	// One exact allocation per slice instead of append-doubling over the
	// triple walk (worst case every triple starts a new item).
	g.items = slices.Grow(g.items, need)
	g.itemOfTriple = slices.Grow(g.itemOfTriple, need)
	g.localOfTriple = slices.Grow(g.localOfTriple, need)
	for t := firstTriple; t < len(g.triples); t++ {
		item := g.triples[t].Item()
		h := idx.item.hash(item)
		iid := idx.item.id(h, item, g.items)
		if iid < 0 {
			iid = int32(len(g.items))
			g.items = append(g.items, item)
			idx.item.insert(h, iid)
			candCount = append(candCount, 0)
		}
		g.itemOfTriple = append(g.itemOfTriple, iid)
		g.localOfTriple = append(g.localOfTriple, candCount[iid])
		candCount[iid]++
	}
}

// assembleGraph builds every derived CSR and count of the graph from the
// interned ID assignments, reusing the previous generation's arrays from an
// old graph when appending (old != nil means g extends old's ID spaces and
// the new elements start at old's sizes). Exact for any workers value.
func assembleGraph(g *graph, idx *claimIndex, firstClaim int, workers int) {
	n := len(g.claims)
	nItems := len(g.items)
	nTriples := len(g.triples)

	// Claim -> item and claim -> local candidate offset, elementwise.
	g.localOfClaim = csr.ExtendInt32(g.localOfClaim, n)
	itemOfClaim := make([]int32, n-firstClaim)
	ew := workers
	if n-firstClaim < internShardThreshold {
		ew = 1
	}
	csr.ParallelRange(n-firstClaim, ew, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t := g.tripleOfClaim[firstClaim+i]
			g.localOfClaim[firstClaim+i] = g.localOfTriple[t]
			itemOfClaim[i] = g.itemOfTriple[t]
		}
	})

	if firstClaim == 0 {
		g.itemCandStart, g.itemCands = csr.ByGroup(g.itemOfTriple, nItems, workers)
		g.itemClaimStart, g.itemClaims = csr.ByGroup(itemOfClaim, nItems, workers)
		g.provClaimStart, g.provClaims = csr.ByGroup(g.provOfClaim, len(g.provKeys), workers)
		g.tripleClaimStart, g.tripleClaims = csr.ByGroup(g.tripleOfClaim, nTriples, workers)
	} else {
		g.itemCandStart, g.itemCands = csr.AppendByGroup(
			g.itemCandStart, g.itemCands, g.itemOfTriple[len(g.itemCands):], nItems, workers)
		g.itemClaimStart, g.itemClaims = csr.AppendByGroup(
			g.itemClaimStart, g.itemClaims, itemOfClaim, nItems, workers)
		g.provClaimStart, g.provClaims = csr.AppendByGroup(
			g.provClaimStart, g.provClaims, g.provOfClaim[firstClaim:], len(g.provKeys), workers)
		g.tripleClaimStart, g.tripleClaims = csr.AppendByGroup(
			g.tripleClaimStart, g.tripleClaims, g.tripleOfClaim[firstClaim:], nTriples, workers)
	}

	g.maxCandidates = 0
	for i := 0; i < nItems; i++ {
		if c := int(g.itemCandStart[i+1] - g.itemCandStart[i]); c > g.maxCandidates {
			g.maxCandidates = c
		}
	}

	if firstClaim == 0 {
		g.tripleExtractors = countTripleExtractors(g, idx.extOfClaim, idx.nExt, workers)
	} else {
		// Only triples asserted by the appended claims can change their
		// distinct-extractor count; recount exactly those.
		g.tripleExtractors = csr.ExtendInt32(g.tripleExtractors, nTriples)
		recountTouchedTriples(g, idx, firstClaim)
	}
}

// recountTouchedTriples recomputes the distinct-extractor count of every
// triple asserted by the claims from firstClaim on, with the same span walk
// and stamping scheme as countTripleExtractors, so the appended graph's
// counts match a full recompile's exactly.
func recountTouchedTriples(g *graph, idx *claimIndex, firstClaim int) {
	seen := make([]int32, idx.nExt)
	for i := range seen {
		seen[i] = -1
	}
	done := make(map[int32]bool, len(g.claims)-firstClaim)
	for i := firstClaim; i < len(g.claims); i++ {
		t := g.tripleOfClaim[i]
		if done[t] {
			continue
		}
		done[t] = true
		cnt := int32(0)
		for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
			if x := idx.extOfClaim[c]; seen[x] != t {
				seen[x] = t
				cnt++
			}
		}
		g.tripleExtractors[t] = cnt
	}
}

// countTripleExtractors computes the distinct extractor count of every
// triple, in parallel over triple ranges. Each worker stamps a private
// seen-set with the triple ID, so the scratch is never cleared; counts are
// exact, making the result independent of the split.
func countTripleExtractors(g *graph, extOfClaim []int32, extKeys, workers int) []int32 {
	nTriples := len(g.triples)
	out := make([]int32, nTriples)
	if nTriples < internShardThreshold {
		workers = 1 // goroutine setup would dominate
	}
	ParallelRange(nTriples, workers, func(_, lo, hi int) {
		seen := make([]int32, extKeys)
		for i := range seen {
			seen[i] = -1
		}
		for t := lo; t < hi; t++ {
			for _, c := range g.tripleClaims[g.tripleClaimStart[t]:g.tripleClaimStart[t+1]] {
				if x := extOfClaim[c]; seen[x] != int32(t) {
					seen[x] = int32(t)
					out[t]++
				}
			}
		}
	})
	return out
}

// ---- Append: the next generation of the graph ----

// Append extends the compiled graph with a claim batch and returns the next
// generation, using all available cores. The result is bit-identical to
// Compile over the concatenated claim stream — every ID space is assigned in
// first-occurrence order, so the IDs of existing provenances, items, triples
// and claims are unchanged and only the batch is interned — but skips
// re-hashing the prefix: the work is the batch's interning plus O(total)
// array assembly. The receiver stays fully usable (its arrays are never
// mutated); the mutable interning index moves to the returned generation, so
// appending repeatedly should chain (g0 -> g1 -> g2 ...). A second Append on
// the same generation is correct but rebuilds the index first. The caller
// must not mutate either claim slice afterwards.
func (c *Compiled) Append(claims []Claim) (*Compiled, error) {
	return c.AppendWorkers(claims, 0)
}

// AppendWorkers is Append with an explicit worker bound (0 = GOMAXPROCS).
// The graph is identical for any workers value.
func (c *Compiled) AppendWorkers(newClaims []Claim, workers int) (*Compiled, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := c.takeIndex()
	old := c.g
	nOld := len(old.claims)
	n := nOld + len(newClaims)

	g := &graph{
		claims:        append(append(make([]Claim, 0, n), old.claims...), newClaims...),
		items:         slices.Clip(old.items),
		triples:       slices.Clip(old.triples),
		itemOfTriple:  slices.Clip(old.itemOfTriple),
		localOfTriple: slices.Clip(old.localOfTriple),
		provKeys:      slices.Clip(old.provKeys),

		provOfClaim:   csr.ExtendInt32(old.provOfClaim, n),
		tripleOfClaim: csr.ExtendInt32(old.tripleOfClaim, n),
		localOfClaim:  old.localOfClaim,

		itemCandStart:    old.itemCandStart,
		itemCands:        old.itemCands,
		itemClaimStart:   old.itemClaimStart,
		itemClaims:       old.itemClaims,
		provClaimStart:   old.provClaimStart,
		provClaims:       old.provClaims,
		tripleClaimStart: old.tripleClaimStart,
		tripleClaims:     old.tripleClaims,
		tripleExtractors: old.tripleExtractors,
	}
	idx.extOfClaim = csr.ExtendInt32(idx.extOfClaim, n)

	// Intern the batch exactly as the sequential compile pass would have,
	// continuing the retained maps. Batches are typically a fraction of the
	// accumulated stream, so this stays sequential; the O(total) assembly
	// below is the parallel part.
	nTriOld := len(g.triples)
	for i := range newClaims {
		cl := &newClaims[i]
		ci := nOld + i
		ph := idx.prov.hash(cl.Prov)
		pid := idx.prov.id(ph, cl.Prov, g.provKeys)
		if pid < 0 {
			pid = int32(len(g.provKeys))
			g.provKeys = append(g.provKeys, cl.Prov)
			idx.prov.insert(ph, pid)
		}
		g.provOfClaim[ci] = pid
		xh := idx.ext.hash(cl.Extractor)
		xid := idx.ext.id(xh, cl.Extractor, idx.extKeys)
		if xid < 0 {
			xid = int32(idx.nExt)
			idx.extKeys = append(idx.extKeys, cl.Extractor)
			idx.ext.insert(xh, xid)
			idx.nExt++
		}
		idx.extOfClaim[ci] = xid
		h := idx.tri.hash(cl.Triple)
		tid := idx.tri.id(h, cl.Triple, g.triples)
		if tid < 0 {
			tid = int32(len(g.triples))
			g.triples = append(g.triples, cl.Triple)
			idx.tri.insert(h, tid)
		}
		g.tripleOfClaim[ci] = tid
	}
	internItems(g, idx, nTriOld)

	assembleGraph(g, idx, nOld, workers)
	return &Compiled{g: g, gen: c.gen + 1, idx: idx}, nil
}

// MustAppend is Append for callers without error plumbing.
func (c *Compiled) MustAppend(claims []Claim) *Compiled {
	next, err := c.Append(claims)
	if err != nil {
		panic(err)
	}
	return next
}

// takeIndex claims the generation's interning index, rebuilding it from the
// immutable graph when another Append already took it. The rebuild re-interns
// only the extractor axis per claim (the graph keeps every other space's key
// list); it exists for correctness — chained appends never hit it.
func (c *Compiled) takeIndex() *claimIndex {
	c.mu.Lock()
	idx := c.idx
	c.idx = nil
	c.mu.Unlock()
	if idx != nil {
		return idx
	}
	g := c.g
	idx = &claimIndex{
		prov:       buildInternTable(g.provKeys, nil),
		ext:        newInternTable[string](32, nil),
		tri:        buildInternTable(g.triples, hashTriple),
		item:       buildInternTable(g.items, hashItem),
		extOfClaim: make([]int32, len(g.claims)),
	}
	for i := range g.claims {
		ext := g.claims[i].Extractor
		xh := idx.ext.hash(ext)
		xid := idx.ext.id(xh, ext, idx.extKeys)
		if xid < 0 {
			xid = int32(idx.nExt)
			idx.extKeys = append(idx.extKeys, ext)
			idx.ext.insert(xh, xid)
			idx.nExt++
		}
		idx.extOfClaim[i] = xid
	}
	return idx
}

// clipInt32 (and siblings) return the slice with capacity clipped to its
// length, so a later append in the next generation can never write into this
// generation's backing array.
func clipInt32(s []int32) []int32     { return s[:len(s):len(s)] }
func clipStrings(s []string) []string { return s[:len(s):len(s)] }
func clipTriples(s []kb.Triple) []kb.Triple {
	return s[:len(s):len(s)]
}
func clipDataItems(s []kb.DataItem) []kb.DataItem { return s[:len(s):len(s)] }
