package fusion

// The FastMath equivalence suite: Config.FastMath swaps the exact
// math.Exp/math.Log kernels for the mathx.Fast polynomial set, and the
// contract (documented on Config.FastMath and mathx.FastTol) is twofold —
// outputs stay within mathx.FastTol of the exact engine's on every method
// family, and the fast path inherits the exact path's determinism: results
// are bit-identical for any Workers value. CI runs these tests under -race
// in a dedicated fastmath job so the approximation path cannot rot untested.

import (
	"fmt"
	"math"
	"testing"

	"kfusion/internal/mathx"
)

// assertWithinFastTol is assertEquivalent with mathx.FastTol in place of
// equivTol: everything discrete (triple set, support counts, prediction
// flags, rounds) must match the exact engine bit-for-bit; probabilities and
// accuracies may drift by the documented fast-kernel tolerance.
func assertWithinFastTol(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: Rounds = %d, want %d", name, got.Rounds, want.Rounds)
	}
	if got.Unpredicted != want.Unpredicted {
		t.Errorf("%s: Unpredicted = %d, want %d", name, got.Unpredicted, want.Unpredicted)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", name, len(got.Triples), len(want.Triples))
	}
	wantBy := want.ByTriple()
	for _, g := range got.Triples {
		w, ok := wantBy[g.Triple]
		if !ok {
			t.Fatalf("%s: unexpected triple %v", name, g.Triple)
		}
		if g.Predicted != w.Predicted || g.Provenances != w.Provenances ||
			g.ItemProvenances != w.ItemProvenances || g.Extractors != w.Extractors {
			t.Errorf("%s: %v support mismatch: %+v vs %+v", name, g.Triple, g, w)
		}
		if g.Predicted && math.Abs(g.Probability-w.Probability) > mathx.FastTol {
			t.Errorf("%s: %v probability %v, want %v (Δ=%g beyond FastTol)", name, g.Triple,
				g.Probability, w.Probability, g.Probability-w.Probability)
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: %d provenances, want %d", name, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for p, a := range got.ProvAccuracy {
		wa, ok := want.ProvAccuracy[p]
		if !ok {
			t.Fatalf("%s: unexpected provenance %q", name, p)
		}
		if math.Abs(a-wa) > mathx.FastTol {
			t.Errorf("%s: ProvAccuracy[%q] = %v, want %v beyond FastTol", name, p, a, wa)
		}
	}
}

// TestFastMathMatchesExactWithinFastTol pins the approximation bound at the
// engine level: every method family and §4.3 refinement, run with the fast
// kernels, lands within mathx.FastTol of the same run on the exact kernels.
// The per-call polynomial error (~5e-11 relative) amplifies through the EM
// rounds' sums and re-normalizations, so this is the iterated bound the
// per-call property tests in internal/mathx cannot give.
func TestFastMathMatchesExactWithinFastTol(t *testing.T) {
	for _, size := range []int{60, 400} {
		claims := randomClaims(int64(size)*31+1, size)
		for name, cfg := range equivalenceConfigs() {
			want, err := Fuse(claims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fast := cfg
			fast.FastMath = true
			got, err := Fuse(claims, fast)
			if err != nil {
				t.Fatal(err)
			}
			assertWithinFastTol(t, fmt.Sprintf("%s/n=%d", name, size), got, want)
		}
	}
}

// TestFastMathWorkerIndependent: the fast kernels are pure elementwise
// functions evaluated inside the same fixed-block reductions as the exact
// path, so FastMath output must stay bit-identical across Workers — the
// same determinism contract the exact engine carries.
func TestFastMathWorkerIndependent(t *testing.T) {
	claims := randomClaims(424242, 300)
	for name, cfg := range equivalenceConfigs() {
		cfg.FastMath = true
		base := cfg
		base.Workers = 1
		want, err := Fuse(claims, base)
		if err != nil {
			t.Fatal(err)
		}
		wantBy := want.ByTriple()
		for _, workers := range []int{3, 8} {
			c := cfg
			c.Workers = workers
			got, err := Fuse(claims, c)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Triples) != len(want.Triples) {
				t.Fatalf("%s/workers=%d: result size changed", name, workers)
			}
			for _, f := range got.Triples {
				if wantBy[f.Triple] != f {
					t.Fatalf("%s/workers=%d: %v differs: %+v vs %+v",
						name, workers, f.Triple, f, wantBy[f.Triple])
				}
			}
			for p, a := range got.ProvAccuracy {
				if want.ProvAccuracy[p] != a {
					t.Fatalf("%s/workers=%d: ProvAccuracy[%q] differs", name, workers, p)
				}
			}
		}
	}
}
