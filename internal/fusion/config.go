package fusion

import (
	"fmt"

	"kfusion/internal/kb"
)

// Method selects the fusion algorithm.
type Method uint8

const (
	// Vote counts provenances: p(T) = m/n (baseline).
	Vote Method = iota
	// Accu is Bayesian fusion with N uniformly-distributed false values.
	Accu
	// PopAccu is Bayesian fusion with the false-value distribution
	// estimated from the data.
	PopAccu
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case Vote:
		return "VOTE"
	case Accu:
		return "ACCU"
	case PopAccu:
		return "POPACCU"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Labeler reports the gold-standard label of a triple: label (true/false)
// and whether the triple is labeled at all (LCWA abstains on unknown items).
// It decouples fusion from the evaluation package.
type Labeler func(kb.Triple) (label bool, ok bool)

// Config parameterizes a fusion run. Zero value is not valid; start from a
// preset (VoteConfig, AccuConfig, PopAccuConfig, PopAccuPlusUnsupConfig,
// PopAccuPlusConfig) and adjust.
type Config struct {
	Method      Method
	Granularity Granularity

	// DefaultAccuracy is the initial provenance accuracy A (paper: 0.8).
	DefaultAccuracy float64
	// NFalse is ACCU's number of uniformly-distributed false values
	// (paper: N = 100).
	NFalse int
	// Rounds is the forced termination cap R (paper: 5).
	Rounds int
	// Epsilon stops iteration early when no provenance accuracy moves by
	// more than this between rounds.
	Epsilon float64
	// SampleL caps the number of claims any single reducer considers, both
	// per data item and per provenance (paper: 1M default, 1K works).
	SampleL int
	// SampleSeed seeds the deterministic reservoir sampling.
	SampleSeed int64

	// FilterByCoverage enables §4.3.2's coverage filter: round one scores
	// only data items where some triple has >= 2 provenances, and later
	// rounds ignore provenances still carrying the default accuracy.
	FilterByCoverage bool
	// AccuracyThreshold θ ignores provenances whose estimated accuracy
	// falls below it (0 disables). Items that lose every provenance fall
	// back to the mean accuracy of the triple's provenances.
	AccuracyThreshold float64

	// GoldLabeler, when set, initializes provenance accuracies from the
	// gold standard (§4.3.3) instead of DefaultAccuracy.
	GoldLabeler Labeler
	// GoldSampleRate uses only this fraction of gold labels (paper sweeps
	// 10%..100%). 0 means 1.0.
	GoldSampleRate float64

	// Workers bounds the parallelism of the one-time claim-graph compile
	// (a MapReduce job) and of the per-round stage loops (0 = GOMAXPROCS).
	// Results never depend on it. Partitions configures the compile
	// shuffle's partition count (0 = default).
	Workers    int
	Partitions int

	// FastMath runs the EM transcendentals on the mathx.Fast polynomial
	// kernels instead of math.Exp/math.Log. Output probabilities and
	// accuracies stay within mathx.FastTol of the exact engine's (pinned by
	// the FastMath equivalence suite) and remain bit-identical across worker
	// and shard counts — the approximation is elementwise and deterministic,
	// only the per-lane rounding differs from the exact kernels.
	FastMath bool

	// OnRound, when set, receives the per-triple probabilities after each
	// round — used by the convergence experiment (Figure 14).
	OnRound func(round int, probs map[kb.Triple]float64)

	// ClaimAccuracy, when set, overrides the accuracy used for a single
	// claim given its provenance's estimated accuracy — the hook behind the
	// confidence-aware extension (§5.5): extraction confidence modulates
	// how strongly one claim votes.
	ClaimAccuracy func(c Claim, provAcc float64) float64
}

// VoteConfig returns the VOTE baseline configuration.
func VoteConfig() Config {
	return Config{Method: Vote, Rounds: 1, SampleL: 1 << 20, Epsilon: 1e-3}
}

// AccuConfig returns the paper's ACCU configuration (A=0.8, N=100, R=5).
func AccuConfig() Config {
	return Config{
		Method:          Accu,
		DefaultAccuracy: 0.8,
		NFalse:          100,
		Rounds:          5,
		Epsilon:         1e-4,
		SampleL:         1 << 20,
	}
}

// PopAccuConfig returns the paper's POPACCU configuration.
func PopAccuConfig() Config {
	c := AccuConfig()
	c.Method = PopAccu
	return c
}

// PopAccuPlusUnsupConfig returns POPACCU+unsup: POPACCU with coverage
// filtering, (Extractor, Site, Predicate, Pattern) provenances and accuracy
// filtering at θ = 0.5 — the unsupervised refined system of §4.3.4.
func PopAccuPlusUnsupConfig() Config {
	c := PopAccuConfig()
	c.FilterByCoverage = true
	c.Granularity = GranExtractorSitePredPattern
	c.AccuracyThreshold = 0.5
	return c
}

// PopAccuPlusConfig returns POPACCU+: POPACCU+unsup plus gold-standard
// accuracy initialization — the semi-supervised refined system.
func PopAccuPlusConfig(labeler Labeler) Config {
	c := PopAccuPlusUnsupConfig()
	c.GoldLabeler = labeler
	c.GoldSampleRate = 1
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Method != Vote {
		if c.DefaultAccuracy <= 0 || c.DefaultAccuracy >= 1 {
			return fmt.Errorf("fusion: DefaultAccuracy must be in (0,1), got %v", c.DefaultAccuracy)
		}
		if c.Rounds < 1 {
			return fmt.Errorf("fusion: Rounds must be >= 1, got %d", c.Rounds)
		}
	}
	if c.Method == Accu && c.NFalse < 1 {
		return fmt.Errorf("fusion: NFalse must be >= 1 for ACCU, got %d", c.NFalse)
	}
	if c.SampleL < 1 {
		return fmt.Errorf("fusion: SampleL must be >= 1, got %d", c.SampleL)
	}
	if c.AccuracyThreshold < 0 || c.AccuracyThreshold >= 1 {
		return fmt.Errorf("fusion: AccuracyThreshold must be in [0,1), got %v", c.AccuracyThreshold)
	}
	if c.GoldSampleRate < 0 || c.GoldSampleRate > 1 {
		return fmt.Errorf("fusion: GoldSampleRate must be in [0,1], got %v", c.GoldSampleRate)
	}
	return nil
}
