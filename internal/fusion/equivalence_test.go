package fusion

import (
	"fmt"
	"math"
	"testing"

	"kfusion/internal/kb"
)

// The compiled engine (Fuse) must reproduce the seed shuffle-per-round
// engine (FuseReference) on every method and refinement. Summation orders
// differ between the two pipelines, so floating-point values are compared at
// 1e-12; everything discrete (triple set, support counts, prediction flags,
// rounds) must match exactly.

const equivTol = 1e-12

func assertEquivalent(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: Rounds = %d, want %d", name, got.Rounds, want.Rounds)
	}
	if got.Unpredicted != want.Unpredicted {
		t.Errorf("%s: Unpredicted = %d, want %d", name, got.Unpredicted, want.Unpredicted)
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", name, len(got.Triples), len(want.Triples))
	}
	wantBy := want.ByTriple()
	for _, g := range got.Triples {
		w, ok := wantBy[g.Triple]
		if !ok {
			t.Fatalf("%s: unexpected triple %v", name, g.Triple)
		}
		if g.Predicted != w.Predicted || g.Provenances != w.Provenances ||
			g.ItemProvenances != w.ItemProvenances || g.Extractors != w.Extractors {
			t.Errorf("%s: %v support mismatch: %+v vs %+v", name, g.Triple, g, w)
		}
		if g.Predicted && math.Abs(g.Probability-w.Probability) > equivTol {
			t.Errorf("%s: %v probability %v, want %v (Δ=%g)", name, g.Triple,
				g.Probability, w.Probability, g.Probability-w.Probability)
		}
	}
	if len(got.ProvAccuracy) != len(want.ProvAccuracy) {
		t.Fatalf("%s: %d provenances, want %d", name, len(got.ProvAccuracy), len(want.ProvAccuracy))
	}
	for p, a := range got.ProvAccuracy {
		wa, ok := want.ProvAccuracy[p]
		if !ok {
			t.Fatalf("%s: unexpected provenance %q", name, p)
		}
		if math.Abs(a-wa) > equivTol {
			t.Errorf("%s: ProvAccuracy[%q] = %v, want %v", name, p, a, wa)
		}
	}
}

// equivalenceConfigs covers every method plus each §4.3 refinement the
// engines must agree on.
func equivalenceConfigs() map[string]Config {
	goldLabeler := func(tr kb.Triple) (bool, bool) {
		// Label roughly half the triples, call a third of those false.
		h := kb.Triple.Hash(tr)
		return h%3 != 0, h%2 == 0
	}
	cfgs := map[string]Config{
		"vote":    VoteConfig(),
		"accu":    AccuConfig(),
		"popaccu": PopAccuConfig(),
	}
	cov := PopAccuConfig()
	cov.FilterByCoverage = true
	cfgs["coverage"] = cov

	thr := PopAccuConfig()
	thr.AccuracyThreshold = 0.6
	cfgs["threshold"] = thr

	plusUnsup := PopAccuPlusUnsupConfig()
	cfgs["popaccu+unsup"] = plusUnsup

	plus := PopAccuPlusConfig(goldLabeler)
	cfgs["popaccu+"] = plus

	rate := PopAccuPlusConfig(goldLabeler)
	rate.GoldSampleRate = 0.4
	cfgs["goldrate"] = rate

	hook := PopAccuConfig()
	hook.ClaimAccuracy = func(c Claim, provAcc float64) float64 {
		if c.Conf < 0 {
			return provAcc
		}
		return provAcc * c.Conf
	}
	cfgs["claimhook"] = hook

	accuHook := AccuConfig()
	accuHook.ClaimAccuracy = hook.ClaimAccuracy
	cfgs["claimhook-accu"] = accuHook

	return cfgs
}

// TestCompiledEngineMatchesReferenceItemSampling pins the item-level L
// sampling: the compiled engine feeds each item's reservoir the same claim
// stream with the same seed as the seed engine, so the sampled subsets are
// identical. (Provenance-level stage II sampling is the one documented
// divergence: the reservoir consumes probabilities in compiled claim order
// rather than shuffle emission order, so under a triggering SampleL the
// sampled subset — though equally sized and equally deterministic — can
// differ. The configs here keep per-provenance volumes under L.)
func TestCompiledEngineMatchesReferenceItemSampling(t *testing.T) {
	// Many provenances with at most 2 claims each, concentrated on two
	// items with hundreds of claims: item sampling triggers at L=32,
	// provenance sampling never does.
	var claims []Claim
	for i := 0; i < 220; i++ {
		prov := fmt.Sprintf("prov-%03d", i)
		val := fmt.Sprintf("v%d", i%3)
		claims = append(claims, cl("s1", "p", val, prov))
		if i%2 == 0 {
			claims = append(claims, cl("s2", "p", val, prov))
		}
	}
	for _, method := range []Config{VoteConfig(), AccuConfig(), PopAccuConfig()} {
		cfg := method
		cfg.SampleL = 32
		cfg.SampleSeed = 7
		want, err := FuseReference(claims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Fuse(claims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, fmt.Sprintf("itemsample/%v", cfg.Method), got, want)
	}
}

// TestCompiledSamplingWorkerIndependent pins that even under aggressive
// sampling at both levels, the compiled engine's output is exactly
// independent of Workers (reservoirs consume fixed CSR orders).
func TestCompiledSamplingWorkerIndependent(t *testing.T) {
	claims := randomClaims(7, 400)
	cfg := PopAccuConfig()
	cfg.SampleL = 8
	cfg.SampleSeed = 3
	base := MustFuse(claims, cfg)
	baseBy := base.ByTriple()
	for _, workers := range []int{1, 3, 8} {
		c := cfg
		c.Workers = workers
		got := MustFuse(claims, c)
		if len(got.Triples) != len(base.Triples) {
			t.Fatalf("workers=%d: result size changed", workers)
		}
		for _, f := range got.Triples {
			if baseBy[f.Triple] != f {
				t.Fatalf("workers=%d: %v differs: %+v vs %+v", workers, f.Triple, f, baseBy[f.Triple])
			}
		}
		for p, a := range got.ProvAccuracy {
			if base.ProvAccuracy[p] != a {
				t.Fatalf("workers=%d: ProvAccuracy[%q] differs", workers, p)
			}
		}
	}
}

func TestCompiledEngineMatchesReference(t *testing.T) {
	for _, size := range []int{1, 7, 60, 400} {
		claims := randomClaims(int64(size)*31+1, size)
		for name, cfg := range equivalenceConfigs() {
			want, err := FuseReference(claims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Fuse(claims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, fmt.Sprintf("%s/n=%d", name, size), got, want)
		}
	}
}

func TestCompiledEngineMatchesReferenceAcrossWorkers(t *testing.T) {
	claims := randomClaims(424242, 300)
	for name, cfg := range equivalenceConfigs() {
		want, err := FuseReference(claims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			c := cfg
			c.Workers = workers
			got, err := Fuse(claims, c)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, fmt.Sprintf("%s/workers=%d", name, workers), got, want)
		}
	}
}

// TestCompiledEngineOnRoundMatches pins the per-round probability streams of
// the two engines against each other.
func TestCompiledEngineOnRoundMatches(t *testing.T) {
	claims := randomClaims(99, 120)
	collect := func(fuse func([]Claim, Config) (*Result, error)) []map[kb.Triple]float64 {
		cfg := PopAccuConfig()
		cfg.Epsilon = 0 // force all rounds
		var rounds []map[kb.Triple]float64
		cfg.OnRound = func(r int, probs map[kb.Triple]float64) {
			cp := make(map[kb.Triple]float64, len(probs))
			for k, v := range probs {
				cp[k] = v
			}
			rounds = append(rounds, cp)
		}
		if _, err := fuse(claims, cfg); err != nil {
			t.Fatal(err)
		}
		return rounds
	}
	want := collect(FuseReference)
	got := collect(Fuse)
	if len(got) != len(want) {
		t.Fatalf("OnRound fired %d times, want %d", len(got), len(want))
	}
	for r := range got {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("round %d: %d scored triples, want %d", r, len(got[r]), len(want[r]))
		}
		for tr, p := range got[r] {
			wp, ok := want[r][tr]
			if !ok {
				t.Fatalf("round %d: unexpected scored triple %v", r, tr)
			}
			if math.Abs(p-wp) > equivTol {
				t.Errorf("round %d: %v = %v, want %v", r, tr, p, wp)
			}
		}
	}
}
