// Package copydetect implements the paper's §5.2 future direction:
// identifying copying between Web sources at scale. Classical copy
// detection (Dong et al. 2009) reasons about every pair of sources —
// "prohibitively expensive for the 1B+ Web sources in our data set". This
// package uses the standard scalable trick: invert the data. Rare triples
// are shingles; only site pairs that co-occur on rare triples are ever
// scored, so the pair space never materializes.
//
// The score follows the copy-detection insight the paper cites:
// "independent sources are less likely to make a lot of common mistakes".
// Sharing popular true triples is expected; sharing RARE triples — and
// especially rare FALSE ones — is evidence of copying. Detected copier
// pairs can then be fed back into fusion by discounting the copier's
// duplicated claims.
package copydetect

import (
	"math"
	"sort"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// Config parameterizes detection.
type Config struct {
	// RareMaxSites is the maximum number of sites asserting a triple for
	// it to count as a rare shingle (paper intuition: common knowledge is
	// everywhere; only rarities discriminate).
	RareMaxSites int
	// MinSharedRare is the minimum number of shared rare triples before a
	// pair is scored at all.
	MinSharedRare int
	// MinSubjects is the minimum number of distinct SUBJECTS among a
	// pair's shared rare triples. Two independent sites about the same
	// popular entity share rare triples about that one entity; a copier
	// replicates statements across many subjects.
	MinSubjects int
	// ScoreThreshold is the minimum score for a reported pair.
	ScoreThreshold float64
}

// DefaultConfig returns thresholds suitable for the synthetic corpora.
func DefaultConfig() Config {
	return Config{RareMaxSites: 3, MinSharedRare: 3, MinSubjects: 3, ScoreThreshold: 0.25}
}

// Pair is one detected copying relationship. Direction is not determined
// (the paper's temporal signals are unavailable in a snapshot); A < B.
type Pair struct {
	A, B string
	// SharedRare is the number of rare triples the two sites share.
	SharedRare int
	// Score is the Jaccard-style overlap of the sites' rare-triple sets.
	Score float64
}

// Detect finds suspicious site pairs in an extraction corpus.
func Detect(xs []extract.Extraction, cfg Config) []Pair {
	if cfg.RareMaxSites < 2 {
		cfg.RareMaxSites = 2
	}
	// Triple → set of sites asserting it.
	sitesOf := make(map[kb.Triple]map[string]bool)
	for _, x := range xs {
		s := sitesOf[x.Triple]
		if s == nil {
			s = make(map[string]bool)
			sitesOf[x.Triple] = s
		}
		s[x.Site] = true
	}
	// Rare-triple shingles per site, and co-occurrence counts per pair.
	rareCount := make(map[string]int)
	pairShared := make(map[[2]string]int)
	pairSubjects := make(map[[2]string]map[kb.EntityID]bool)
	for triple, sites := range sitesOf {
		if len(sites) < 2 || len(sites) > cfg.RareMaxSites {
			continue
		}
		list := make([]string, 0, len(sites))
		for s := range sites {
			list = append(list, s)
		}
		sort.Strings(list)
		for _, s := range list {
			rareCount[s]++
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				pk := [2]string{list[i], list[j]}
				pairShared[pk]++
				if pairSubjects[pk] == nil {
					pairSubjects[pk] = make(map[kb.EntityID]bool)
				}
				pairSubjects[pk][triple.Subject] = true
			}
		}
	}

	var out []Pair
	for pair, shared := range pairShared {
		if shared < cfg.MinSharedRare {
			continue
		}
		if cfg.MinSubjects > 1 && len(pairSubjects[pair]) < cfg.MinSubjects {
			continue
		}
		// Jaccard over rare-triple involvement: shared / (rareA + rareB - shared).
		union := rareCount[pair[0]] + rareCount[pair[1]] - shared
		if union <= 0 {
			continue
		}
		score := float64(shared) / float64(union)
		if score < cfg.ScoreThreshold {
			continue
		}
		out = append(out, Pair{A: pair[0], B: pair[1], SharedRare: shared, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// SuspectSites returns the set of sites involved in any detected pair, each
// mapped to its strongest partner.
func SuspectSites(pairs []Pair) map[string]string {
	out := make(map[string]string)
	for _, p := range pairs {
		if _, ok := out[p.A]; !ok {
			out[p.A] = p.B
		}
		if _, ok := out[p.B]; !ok {
			out[p.B] = p.A
		}
	}
	return out
}

// DiscountHook returns a fusion ClaimAccuracy hook that down-weights claims
// from detected copier clusters: a claim whose provenance belongs to a
// suspect site has its effective accuracy shrunk toward 0.5 (uninformative)
// by factor strength in [0,1]. Copied false values then stop accumulating
// independent-looking support — the paper's motivation for detecting
// copying at all.
func DiscountHook(pairs []Pair, siteOf func(prov string) string, strength float64) func(fusion.Claim, float64) float64 {
	if strength < 0 {
		strength = 0
	}
	if strength > 1 {
		strength = 1
	}
	suspects := SuspectSites(pairs)
	return func(c fusion.Claim, provAcc float64) float64 {
		site := siteOf(c.Prov)
		if _, ok := suspects[site]; !ok {
			return provAcc
		}
		return provAcc + strength*(0.5-provAcc)*weightToward(provAcc)
	}
}

// weightToward keeps the shrink gentle for mid accuracies and stronger for
// extreme ones (extreme copied accuracies are the dangerous ones).
func weightToward(acc float64) float64 {
	return math.Abs(acc-0.5)*2*0.5 + 0.5
}

// Kappa computes the κ correlation of two sites' triple sets within a
// corpus of kbSize distinct triples — the same Eq. 1 the paper applies to
// extractor pairs, reusable as a secondary copy signal.
func Kappa(shared, a, b, kbSize int) float64 {
	num := float64(shared)*float64(kbSize) - float64(a)*float64(b)
	den := float64(kbSize)*float64(kbSize) - float64(a)*float64(b)
	if den == 0 {
		return 0
	}
	return num / den
}
