package copydetect

import (
	"fmt"
	"strings"
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

func ex(subj, obj, site string) extract.Extraction {
	return extract.Extraction{
		Triple: kb.Triple{Subject: kb.EntityID(subj), Predicate: "/x/p", Object: kb.StringObject(obj)},
		Site:   site,
		URL:    "http://" + site + "/p",
	}
}

func TestDetectPlantedCopier(t *testing.T) {
	var xs []extract.Extraction
	// Site A and its copier share 6 rare triples; independents overlap
	// only on one popular triple.
	for i := 0; i < 6; i++ {
		subj := fmt.Sprintf("rare%d", i)
		xs = append(xs, ex(subj, "v", "siteA"), ex(subj, "v", "copier"))
	}
	for _, s := range []string{"siteA", "copier", "ind1", "ind2", "ind3", "ind4"} {
		xs = append(xs, ex("popular", "v", s))
	}
	for i := 0; i < 6; i++ {
		xs = append(xs, ex(fmt.Sprintf("own1-%d", i), "v", "ind1"))
		xs = append(xs, ex(fmt.Sprintf("own2-%d", i), "v", "ind2"))
	}
	pairs := Detect(xs, DefaultConfig())
	if len(pairs) == 0 {
		t.Fatal("planted copier not detected")
	}
	if pairs[0].A != "copier" || pairs[0].B != "siteA" {
		t.Errorf("top pair = %s/%s, want copier/siteA", pairs[0].A, pairs[0].B)
	}
	for _, p := range pairs {
		if strings.HasPrefix(p.A, "ind") && strings.HasPrefix(p.B, "ind") {
			t.Errorf("independent pair falsely detected: %+v", p)
		}
	}
}

func TestPopularTriplesDoNotTrigger(t *testing.T) {
	var xs []extract.Extraction
	// All sites assert the same 10 popular triples; nothing rare shared.
	for i := 0; i < 10; i++ {
		for s := 0; s < 6; s++ {
			xs = append(xs, ex(fmt.Sprintf("t%d", i), "v", fmt.Sprintf("site%d", s)))
		}
	}
	if pairs := Detect(xs, DefaultConfig()); len(pairs) != 0 {
		t.Errorf("popular overlap flagged as copying: %+v", pairs)
	}
}

func TestDetectOnSyntheticCorpus(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(70))
	ccfg := web.DefaultConfig(71)
	ccfg.SyndicationRate = 0.15
	corpus := web.MustGenerate(w, ccfg)
	if len(corpus.CopiedFrom) == 0 {
		t.Skip("no copiers generated at this seed")
	}
	suite := extract.NewSuite(w, 72)
	xs := suite.Run(w, corpus)

	pairs := Detect(xs, DefaultConfig())
	if len(pairs) == 0 {
		t.Fatal("no copying detected on a syndication-heavy corpus")
	}
	// Precision: most detected pairs must be genuine copier relations.
	isGenuine := func(a, b string) bool {
		return corpus.CopiedFrom[a] == b || corpus.CopiedFrom[b] == a
	}
	hits := 0
	for _, p := range pairs {
		if isGenuine(p.A, p.B) {
			hits++
		}
	}
	precision := float64(hits) / float64(len(pairs))
	t.Logf("detected %d pairs, %d genuine (precision %.2f); %d planted copiers",
		len(pairs), hits, precision, len(corpus.CopiedFrom))
	if precision < 0.5 {
		t.Errorf("copy-detection precision %.2f too low", precision)
	}
	// Recall over planted copiers with detectable overlap.
	found := map[string]bool{}
	for _, p := range pairs {
		if isGenuine(p.A, p.B) {
			if _, ok := corpus.CopiedFrom[p.A]; ok {
				found[p.A] = true
			} else {
				found[p.B] = true
			}
		}
	}
	if len(found) == 0 {
		t.Error("no planted copier recovered")
	}
}

func TestDiscountHook(t *testing.T) {
	pairs := []Pair{{A: "bad1", B: "bad2", SharedRare: 5, Score: 0.8}}
	siteOf := func(prov string) string {
		if i := strings.IndexByte(prov, '|'); i >= 0 {
			return prov[i+1:]
		}
		return prov
	}
	hook := DiscountHook(pairs, siteOf, 1)
	suspect := fusion.Claim{Prov: "E|bad1"}
	clean := fusion.Claim{Prov: "E|good"}
	if got := hook(clean, 0.9); got != 0.9 {
		t.Errorf("clean provenance discounted: %v", got)
	}
	got := hook(suspect, 0.9)
	if got >= 0.9 || got < 0.5 {
		t.Errorf("suspect accuracy %v, want shrunk toward 0.5", got)
	}
	// Symmetric for low accuracies.
	lo := hook(suspect, 0.1)
	if lo <= 0.1 || lo > 0.5 {
		t.Errorf("suspect low accuracy %v, want raised toward 0.5", lo)
	}
	// Zero strength = pass-through.
	if got := DiscountHook(pairs, siteOf, 0)(suspect, 0.9); got != 0.9 {
		t.Errorf("zero-strength hook changed accuracy: %v", got)
	}
}

func TestKappa(t *testing.T) {
	if Kappa(25, 50, 50, 100) != 0 {
		t.Error("independent sets should have κ=0")
	}
	if Kappa(50, 50, 50, 100) <= 0 {
		t.Error("identical sets should have κ>0")
	}
	if Kappa(5, 5, 5, 5) != 0 {
		t.Error("degenerate denominator should yield 0")
	}
}

func TestSuspectSites(t *testing.T) {
	pairs := []Pair{
		{A: "a", B: "b", Score: 0.9},
		{A: "a", B: "c", Score: 0.5},
	}
	s := SuspectSites(pairs)
	if s["a"] != "b" || s["b"] != "a" || s["c"] != "a" {
		t.Errorf("SuspectSites = %v", s)
	}
}
