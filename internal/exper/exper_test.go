package exper

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

func testDS(t testing.TB) *Dataset {
	t.Helper()
	return SharedDataset(ScaleSmall, 100)
}

func TestAllExperimentsRun(t *testing.T) {
	ds := testDS(t)
	for _, ex := range Registry {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tb := ex.Run(ds)
			if tb == nil {
				t.Fatal("nil table")
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tb.String()
			if !strings.Contains(out, tb.ID) {
				t.Error("render missing ID")
			}
			for _, n := range tb.Notes {
				if strings.HasPrefix(n, "VIOLATED") {
					t.Errorf("paper-shape check failed: %s", n)
				}
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("fig9") == nil {
		t.Error("fig9 missing from registry")
	}
	if ByID("nope") != nil {
		t.Error("unknown ID resolved")
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(ScaleSmall, 7)
	b := NewDataset(ScaleSmall, 7)
	if len(a.Extractions) != len(b.Extractions) {
		t.Fatalf("extraction counts differ: %d vs %d", len(a.Extractions), len(b.Extractions))
	}
	for i := range a.Extractions {
		if a.Extractions[i] != b.Extractions[i] {
			t.Fatalf("extraction %d differs", i)
		}
	}
}

func TestSharedDatasetCached(t *testing.T) {
	a := SharedDataset(ScaleSmall, 100)
	b := SharedDataset(ScaleSmall, 100)
	if a != b {
		t.Error("SharedDataset did not cache")
	}
}

func TestFuseCache(t *testing.T) {
	ds := testDS(t)
	a := ds.Fuse("VOTE", fusion.VoteConfig())
	b := ds.Fuse("VOTE", fusion.VoteConfig())
	if a != b {
		t.Error("Fuse did not cache by key")
	}
}

// TestFuseConcurrentSingleflight pins the fix for the double-checked-lock
// race: concurrent callers of one cacheKey must share a single fusion run
// and a single result pointer, never overwrite each other.
func TestFuseConcurrentSingleflight(t *testing.T) {
	ds := NewDataset(ScaleSmall, 31)
	var runs int32
	cfg := fusion.VoteConfig()
	cfg.OnRound = func(round int, _ map[kb.Triple]float64) {
		if round == 0 {
			atomic.AddInt32(&runs, 1)
		}
	}
	const callers = 16
	results := make([]*fusion.Result, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k] = ds.Fuse("vote-concurrent", cfg)
		}(k)
	}
	wg.Wait()
	for k := 1; k < callers; k++ {
		if results[k] != results[0] {
			t.Fatal("concurrent callers saw different result pointers")
		}
	}
	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Fatalf("fusion ran %d times for one cacheKey, want 1", got)
	}
}

// TestFusePanicRepanics pins the panic path of the per-key once: a build
// that panics must re-panic for every caller of that key, never consume the
// once and hand out silent nils.
func TestFusePanicRepanics(t *testing.T) {
	ds := testDS(t)
	bad := fusion.AccuConfig()
	bad.AccuracyThreshold = 1.5 // Validate rejects it -> MustFuse panics
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("call %d: invalid config did not panic", i)
				}
			}()
			ds.Fuse("bad-config", bad)
		}()
	}
}

// TestSharedDatasetConcurrent pins the per-key once: simultaneous requests
// for one new (scale, seed) must share a single build.
func TestSharedDatasetConcurrent(t *testing.T) {
	const callers = 8
	results := make([]*Dataset, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k] = SharedDataset(ScaleSmall, 987631)
		}(k)
	}
	wg.Wait()
	for k := 0; k < callers; k++ {
		if results[k] == nil || results[k] != results[0] {
			t.Fatal("concurrent SharedDataset callers saw different datasets")
		}
	}
}

// TestCompiledGraphReused pins the compiled-claim-graph cache: one graph per
// granularity, shared across presets, surviving ClearFusionCache, and
// producing results bit-identical to a fresh compile-and-fuse.
func TestCompiledGraphReused(t *testing.T) {
	ds := testDS(t)
	a := ds.Compiled(fusion.Granularity{})
	if b := ds.Compiled(fusion.Granularity{}); b != a {
		t.Error("Compiled not cached per granularity")
	}
	if c := ds.Compiled(fusion.GranExtractorSite); c == a {
		t.Error("distinct granularities share a compiled graph")
	}

	res := ds.Fuse("popaccu-reuse-check", fusion.PopAccuConfig())
	fresh := fusion.MustFuse(fusion.Claims(ds.Extractions, fusion.Granularity{}), fusion.PopAccuConfig())
	if len(res.Triples) != len(fresh.Triples) {
		t.Fatalf("%d triples via compiled reuse, want %d", len(res.Triples), len(fresh.Triples))
	}
	for i := range res.Triples {
		if res.Triples[i] != fresh.Triples[i] {
			t.Fatalf("triple %d differs from fresh compile: %+v vs %+v",
				i, res.Triples[i], fresh.Triples[i])
		}
	}

	ds.ClearFusionCache()
	if ds.Compiled(fusion.Granularity{}) != a {
		t.Error("ClearFusionCache dropped the compiled graph")
	}
	if res2 := ds.Fuse("popaccu-reuse-check", fusion.PopAccuConfig()); res2 == res {
		t.Error("ClearFusionCache kept the result cache")
	}
}

// TestUniqueCounts cross-checks the exported UniqueTriple support counts
// against an independent recount of the raw extractions.
func TestUniqueCounts(t *testing.T) {
	ds := testDS(t)
	type support struct {
		exts, urls map[string]bool
		provs      int
	}
	want := map[kb.Triple]*support{}
	for _, x := range ds.Extractions {
		s := want[x.Triple]
		if s == nil {
			s = &support{exts: map[string]bool{}, urls: map[string]bool{}}
			want[x.Triple] = s
		}
		s.exts[x.Extractor] = true
		s.urls[x.URL] = true
		s.provs++
	}
	uniq := ds.Unique()
	if len(uniq) != len(want) {
		t.Fatalf("%d unique triples, want %d", len(uniq), len(want))
	}
	for _, u := range uniq {
		s := want[u.Triple]
		if s == nil {
			t.Fatalf("unexpected triple %v", u.Triple)
		}
		if u.Extractors != len(s.exts) || u.URLs != len(s.urls) || u.Provenances != s.provs {
			t.Fatalf("%v: counts (%d ext, %d urls, %d provs), want (%d, %d, %d)",
				u.Triple, u.Extractors, u.URLs, u.Provenances, len(s.exts), len(s.urls), s.provs)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"A", "B"}}
	tb.AddRow("hello", 42)
	tb.AddRow(3.14159, "y")
	tb.Notef("note %d", 1)
	out := tb.String()
	for _, want := range []string{"hello", "42", "3.142", "note 1", "== x: t =="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
