package exper

import (
	"strings"
	"testing"

	"kfusion/internal/fusion"
)

func testDS(t testing.TB) *Dataset {
	t.Helper()
	return SharedDataset(ScaleSmall, 100)
}

func TestAllExperimentsRun(t *testing.T) {
	ds := testDS(t)
	for _, ex := range Registry {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tb := ex.Run(ds)
			if tb == nil {
				t.Fatal("nil table")
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tb.String()
			if !strings.Contains(out, tb.ID) {
				t.Error("render missing ID")
			}
			for _, n := range tb.Notes {
				if strings.HasPrefix(n, "VIOLATED") {
					t.Errorf("paper-shape check failed: %s", n)
				}
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("fig9") == nil {
		t.Error("fig9 missing from registry")
	}
	if ByID("nope") != nil {
		t.Error("unknown ID resolved")
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(ScaleSmall, 7)
	b := NewDataset(ScaleSmall, 7)
	if len(a.Extractions) != len(b.Extractions) {
		t.Fatalf("extraction counts differ: %d vs %d", len(a.Extractions), len(b.Extractions))
	}
	for i := range a.Extractions {
		if a.Extractions[i] != b.Extractions[i] {
			t.Fatalf("extraction %d differs", i)
		}
	}
}

func TestSharedDatasetCached(t *testing.T) {
	a := SharedDataset(ScaleSmall, 100)
	b := SharedDataset(ScaleSmall, 100)
	if a != b {
		t.Error("SharedDataset did not cache")
	}
}

func TestFuseCache(t *testing.T) {
	ds := testDS(t)
	a := ds.Fuse("VOTE", fusion.VoteConfig())
	b := ds.Fuse("VOTE", fusion.VoteConfig())
	if a != b {
		t.Error("Fuse did not cache by key")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"A", "B"}}
	tb.AddRow("hello", 42)
	tb.AddRow(3.14159, "y")
	tb.Notef("note %d", 1)
	out := tb.String()
	for _, want := range []string{"hello", "42", "3.142", "note 1", "== x: t =="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
