package exper

import (
	"fmt"
	"sort"

	"kfusion/internal/eval"
	"kfusion/internal/kb"
	"kfusion/internal/stats"
	"kfusion/internal/web"
)

// Figure3 reproduces Figure 3: triple contribution and overlap per content
// type.
func Figure3(ds *Dataset) *Table {
	// Map each unique triple to the set of content types whose extractors
	// produced it.
	typeOf := map[string]web.ContentType{}
	for _, name := range ds.Suite.Names() {
		typeOf[name] = ds.Suite.ContentTypeOf(name)
	}
	sets := map[kb.Triple]map[web.ContentType]bool{}
	for _, x := range ds.Extractions {
		if sets[x.Triple] == nil {
			sets[x.Triple] = map[web.ContentType]bool{}
		}
		sets[x.Triple][typeOf[x.Extractor]] = true
	}
	per := map[web.ContentType]int{}
	pair := map[[2]web.ContentType]int{}
	multi := 0
	for _, s := range sets {
		var ts []web.ContentType
		for ct := range s {
			ts = append(ts, ct)
			per[ct]++
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		if len(ts) > 1 {
			multi++
			for i := 0; i < len(ts); i++ {
				for j := i + 1; j < len(ts); j++ {
					pair[[2]web.ContentType{ts[i], ts[j]}]++
				}
			}
		}
	}
	tb := &Table{ID: "fig3", Title: "Contribution and overlap by content type",
		Header: []string{"Set", "#Triples", "Share"}}
	total := len(sets)
	for _, ct := range web.ContentTypes() {
		tb.AddRow(ct.String(), per[ct], fmt.Sprintf("%.1f%%", 100*float64(per[ct])/float64(total)))
	}
	for _, a := range web.ContentTypes() {
		for _, b := range web.ContentTypes() {
			if a < b {
				if n := pair[[2]web.ContentType{a, b}]; n > 0 {
					tb.AddRow(a.String()+" ∩ "+b.String(), n, fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total)))
				}
			}
		}
	}
	tb.AddRow("any overlap", multi, fmt.Sprintf("%.2f%%", 100*float64(multi)/float64(total)))
	tb.Notes = append(tb.Notes,
		"paper Figure 3: DOM contributes ~74%, TXT ~17%, ANO ~8%, TBL ~0.6%; overlaps are small",
		checkf(per[web.DOM] > per[web.TXT] && per[web.TXT] > per[web.TBL], "ordering DOM > TXT > TBL holds"))
	return tb
}

// Figure4 reproduces Figure 4: distribution of per-predicate accuracy.
func Figure4(ds *Dataset) *Table {
	trueN := map[kb.PredicateID]int{}
	labeled := map[kb.PredicateID]int{}
	for _, u := range ds.Unique() {
		if label, ok := ds.Gold.Label(u.Triple); ok {
			labeled[u.Triple.Predicate]++
			if label {
				trueN[u.Triple.Predicate]++
			}
		}
	}
	// Sorted predicates: the histogram and counters below must not observe
	// map iteration order.
	preds := make([]kb.PredicateID, 0, len(labeled))
	for p := range labeled {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	hist := stats.NewHistogram(0, 1, 10)
	low, high, n := 0, 0, 0
	for _, p := range preds {
		l := labeled[p]
		if l < 5 {
			continue // too few labels to estimate the predicate's accuracy
		}
		acc := float64(trueN[p]) / float64(l)
		hist.Add(acc)
		n++
		if acc < 0.3 {
			low++
		}
		if acc > 0.7 {
			high++
		}
	}
	tb := &Table{ID: "fig4", Title: "Distribution of predicate accuracy",
		Header: []string{"Accuracy bucket", "Share of predicates"}}
	for i, f := range hist.Fractions() {
		tb.AddRow(hist.BucketLabel(i), fmt.Sprintf("%.2f", f))
	}
	tb.Notef("predicates with >=5 labels: %d; accuracy <0.3: %.0f%%  >0.7: %.0f%% (paper: 44%% / 13%%)",
		n, 100*float64(low)/float64(max(n, 1)), 100*float64(high)/float64(max(n, 1)))
	return tb
}

// Figure5 reproduces Figure 5: the gap between the best and worst extractor
// accuracy per Web page. As in the paper, an extractor qualifies for a page
// when it extracted at least 5 triples there; its accuracy is measured over
// the labeled subset (>= 2 labels required for a usable estimate).
func Figure5(ds *Dataset) *Table {
	type cell struct{ trueN, labeled, extracted int }
	perPage := map[string]map[string]*cell{}
	for _, x := range ds.Extractions {
		if perPage[x.URL] == nil {
			perPage[x.URL] = map[string]*cell{}
		}
		c := perPage[x.URL][x.Extractor]
		if c == nil {
			c = &cell{}
			perPage[x.URL][x.Extractor] = c
		}
		c.extracted++
		if label, ok := ds.Gold.Label(x.Triple); ok {
			c.labeled++
			if label {
				c.trueN++
			}
		}
	}
	// Sorted page URLs: gaps feeds a float summary, so its element order —
	// and therefore the page visit order — must be deterministic.
	pages := make([]string, 0, len(perPage))
	for url := range perPage {
		pages = append(pages, url)
	}
	sort.Strings(pages)
	hist := stats.NewHistogram(0, 0.6, 7)
	var gaps []float64
	bigGap := 0
	for _, url := range pages {
		exts := perPage[url]
		lo, hi := 2.0, -1.0
		qualifying := 0
		//lint:ignore kflint/mapiter min/max over the cell set is order-insensitive and qualifying is an integer counter — no effect escapes in visit order.
		for _, c := range exts {
			if c.extracted < 5 || c.labeled < 2 {
				continue
			}
			qualifying++
			acc := float64(c.trueN) / float64(c.labeled)
			if acc < lo {
				lo = acc
			}
			if acc > hi {
				hi = acc
			}
		}
		if qualifying < 2 {
			continue
		}
		gap := hi - lo
		gaps = append(gaps, gap)
		hist.Add(gap)
		if gap > 0.5 {
			bigGap++
		}
	}
	tb := &Table{ID: "fig5", Title: "Best-vs-worst extractor accuracy gap per page",
		Header: []string{"Gap bucket", "Share of pages"}}
	for i, f := range hist.Fractions() {
		tb.AddRow(hist.BucketLabel(i), fmt.Sprintf("%.2f", f))
	}
	if len(gaps) > 0 {
		tb.Notef("pages measured: %d; mean gap %.2f (paper: 0.32); gap >0.5 on %.0f%% (paper: 21%%)",
			len(gaps), stats.Summarize(gaps).Mean, 100*float64(bigGap)/float64(len(gaps)))
	}
	return tb
}

// Figure6 reproduces Figure 6: triple accuracy by the number of extractors.
func Figure6(ds *Dataset) *Table {
	curve := stats.NewAccuracyCurve()
	singleExtractor, totalTriples := 0, 0
	for _, u := range ds.Unique() {
		totalTriples++
		if u.Extractors == 1 {
			singleExtractor++
		}
		if label, ok := ds.Gold.Label(u.Triple); ok {
			curve.Add(u.Extractors, label)
		}
	}
	tb := &Table{ID: "fig6", Title: "Triple accuracy by #extractors",
		Header: []string{"#Extractors", "Accuracy", "N"}}
	for _, x := range curve.Xs() {
		r, n := curve.Rate(x)
		tb.AddRow(x, fmt.Sprintf("%.2f", r), n)
	}
	lo, _ := curve.Rate(1)
	hi, hiN := curve.RateBetween(5, 100)
	tb.Notef("accuracy rises with #extractors: 1 extractor %.2f vs >=5 extractors %.2f (n=%d)", lo, hi, hiN)
	tb.Notef("%.0f%% of triples come from a single extractor (paper: 75%%)", 100*float64(singleExtractor)/float64(totalTriples))
	tb.Notes = append(tb.Notes, "paper: occasional drops at high counts from correlated extractors")
	return tb
}

// Figure7 reproduces Figure 7: triple accuracy by the number of URLs.
func Figure7(ds *Dataset) *Table {
	curve := stats.NewAccuracyCurve()
	single, total := 0, 0
	for _, u := range ds.Unique() {
		total++
		if u.URLs == 1 {
			single++
		}
		if label, ok := ds.Gold.Label(u.Triple); ok {
			curve.Add(u.URLs, label)
		}
	}
	tb := &Table{ID: "fig7", Title: "Triple accuracy by #URLs",
		Header: []string{"#URLs", "Accuracy", "N"}}
	buckets := [][2]int{{1, 1}, {2, 2}, {3, 4}, {5, 9}, {10, 19}, {20, 49}, {50, 1 << 30}}
	for _, b := range buckets {
		r, n := curve.RateBetween(b[0], b[1])
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d-%d", b[0], b[1])
		if b[1] >= 1<<30 {
			label = fmt.Sprintf(">=%d", b[0])
		}
		tb.AddRow(label, fmt.Sprintf("%.2f", r), n)
	}
	tb.Notef("%.0f%% of triples come from a single URL (paper: 51%%)", 100*float64(single)/float64(total))
	tb.Notes = append(tb.Notes, "paper: accuracy rises with #URLs but fluctuates where one extractor errs on many sources")
	return tb
}

// Figure18 reproduces Figure 18: accuracy by #provenances, stratified by the
// number of extractors.
func Figure18(ds *Dataset) *Table {
	all := stats.NewAccuracyCurve()
	one := stats.NewAccuracyCurve()
	many := stats.NewAccuracyCurve()
	for _, u := range ds.Unique() {
		label, ok := ds.Gold.Label(u.Triple)
		if !ok {
			continue
		}
		all.Add(u.Provenances, label)
		if u.Extractors == 1 {
			one.Add(u.Provenances, label)
		}
		if u.Extractors >= 8 {
			many.Add(u.Provenances, label)
		}
	}
	tb := &Table{ID: "fig18", Title: "Accuracy by #provenances and #extractors",
		Header: []string{"#Provenances", "All", "1 extractor", ">=8 extractors"}}
	buckets := [][2]int{{1, 1}, {2, 3}, {4, 7}, {8, 15}, {16, 31}, {32, 1 << 30}}
	cell := func(c *stats.AccuracyCurve, b [2]int) string {
		r, n := c.RateBetween(b[0], b[1])
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f (%d)", r, n)
	}
	for _, b := range buckets {
		label := fmt.Sprintf("%d-%d", b[0], b[1])
		if b[1] >= 1<<30 {
			label = fmt.Sprintf(">=%d", b[0])
		}
		tb.AddRow(label, cell(all, b), cell(one, b), cell(many, b))
	}
	loAll, _ := all.RateBetween(4, 1<<30)
	loOne, nOne := one.RateBetween(4, 1<<30)
	hiMany, nMany := many.RateBetween(4, 1<<30)
	if nOne > 0 && nMany > 0 {
		tb.Notef("at >=4 provenances: all %.2f, single-extractor %.2f, >=8 extractors %.2f (paper: multi-extractor much higher)",
			loAll, loOne, hiMany)
	}
	return tb
}

// Figure19 reproduces Figure 19: the kappa distribution across extractor
// pairs, split into same-content-type vs different-content-type pairs.
func Figure19(ds *Dataset) *Table {
	pairs := eval.KappaMatrix(ds.Extractions, func(a, b string) bool {
		return ds.Suite.ContentTypeOf(a) == ds.Suite.ContentTypeOf(b)
	})
	tb := &Table{ID: "fig19", Title: "Kappa measure across extractor pairs",
		Header: []string{"Kappa bucket", "Same type", "Different type"}}
	same := stats.NewHistogram(-0.05, 0.05, 10)
	diff := stats.NewHistogram(-0.05, 0.05, 10)
	var negN, posN, indepN int
	for _, p := range pairs {
		if p.SameType {
			same.Add(p.Kappa)
		} else {
			diff.Add(p.Kappa)
		}
		switch {
		case p.Kappa < -1e-4:
			negN++
		case p.Kappa > 1e-4:
			posN++
		default:
			indepN++
		}
	}
	for i := range same.Counts {
		tb.AddRow(same.BucketLabel(i), same.Counts[i], diff.Counts[i])
	}
	tb.Notef("pairs: %d total, %d anti-correlated, %d positively correlated, %d ~independent (paper: 40%% anti-correlated, 5 positive)",
		len(pairs), negN, posN, indepN)
	return tb
}

// Figure20 reproduces Figure 20: the number of gold truths per data item.
func Figure20(ds *Dataset) *Table {
	truths := map[kb.DataItem]int{}
	items := map[kb.DataItem]bool{}
	for _, u := range ds.Unique() {
		it := u.Triple.Item()
		if !ds.Gold.HasItem(it) {
			continue
		}
		items[it] = true
		if label, ok := ds.Gold.Label(u.Triple); ok && label {
			truths[it]++
		}
	}
	dist := map[int]int{}
	for it := range items {
		k := truths[it]
		if k > 5 {
			k = 6
		}
		dist[k]++
	}
	tb := &Table{ID: "fig20", Title: "#Truths per data item (gold standard)",
		Header: []string{"#Truths", "Share of items"}}
	total := len(items)
	for k := 0; k <= 6; k++ {
		if dist[k] == 0 && k > 2 {
			continue
		}
		label := fmt.Sprint(k)
		if k == 6 {
			label = ">5"
		}
		tb.AddRow(label, fmt.Sprintf("%.2f", float64(dist[k])/float64(max(total, 1))))
	}
	tb.Notef("paper Figure 20: 70%% zero truths, 25%% one, 3%% two")
	return tb
}

// Figure21 reproduces Figure 21: coverage and accuracy by extraction
// confidence for TXT1, DOM2, TBL1 and ANO.
func Figure21(ds *Dataset) *Table {
	extractors := []string{"TXT1", "DOM2", "TBL1", "ANO"}
	type bucket struct{ n, trueN, labeled int }
	data := map[string][]bucket{}
	totals := map[string]int{}
	for _, name := range extractors {
		data[name] = make([]bucket, 10)
	}
	for _, x := range ds.Extractions {
		bs, ok := data[x.Extractor]
		if !ok || !x.HasConfidence() {
			continue
		}
		bi := int(x.Confidence * 10)
		if bi > 9 {
			bi = 9
		}
		bs[bi].n++
		totals[x.Extractor]++
		if label, okL := ds.Gold.Label(x.Triple); okL {
			bs[bi].labeled++
			if label {
				bs[bi].trueN++
			}
		}
	}
	tb := &Table{ID: "fig21", Title: "Coverage and accuracy by extraction confidence",
		Header: []string{"Conf bucket", "TXT1 cov/acc", "DOM2 cov/acc", "TBL1 cov/acc", "ANO cov/acc"}}
	for bi := 0; bi < 10; bi++ {
		row := []any{fmt.Sprintf("[%.1f,%.1f)", float64(bi)/10, float64(bi+1)/10)}
		for _, name := range extractors {
			b := data[name][bi]
			cov := float64(b.n) / float64(max(totals[name], 1))
			acc := "-"
			if b.labeled > 0 {
				acc = fmt.Sprintf("%.2f", float64(b.trueN)/float64(b.labeled))
			}
			row = append(row, fmt.Sprintf("%.2f/%s", cov, acc))
		}
		tb.AddRow(row...)
	}
	tb.Notes = append(tb.Notes,
		"paper Figure 21: TXT1 confidences cluster mid-range and are informative;",
		"DOM2 confidences cluster near 0/1 and are informative; ANO near 0/1 but uninformative;",
		"TBL1 accuracy peaks at medium confidence (misleading)")
	return tb
}

// Figure22 reproduces Figure 22: triple coverage when filtering by
// confidence threshold.
func Figure22(ds *Dataset) *Table {
	// A triple survives threshold θ if any extraction of it carries
	// confidence >= θ; extractors without confidence count as 0, since
	// threshold filtering drops them.
	counts := make([]int, 11)
	bestConf := map[kb.Triple]float64{}
	for _, x := range ds.Extractions {
		c := 0.0
		if x.HasConfidence() {
			c = x.Confidence
		}
		if c > bestConf[x.Triple] {
			bestConf[x.Triple] = c
		}
	}
	for _, c := range bestConf {
		for t := 0; t <= 10; t++ {
			if c >= float64(t)/10 {
				counts[t]++
			}
		}
	}
	tb := &Table{ID: "fig22", Title: "Coverage by confidence threshold",
		Header: []string{"Threshold", "Coverage"}}
	for t := 1; t <= 10; t++ {
		tb.AddRow(fmt.Sprintf("%.1f", float64(t)/10), fmt.Sprintf("%.2f", float64(counts[t])/float64(max(len(bestConf), 1))))
	}
	tb.Notef("paper Figure 22: even threshold 0.1 loses ~15%% of triples")
	return tb
}

func checkf(ok bool, msg string) string {
	if ok {
		return "HOLDS: " + msg
	}
	return "VIOLATED: " + msg
}
