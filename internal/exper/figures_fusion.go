package exper

import (
	"fmt"
	"sort"

	"kfusion/internal/eval"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
)

// report evaluates one fusion configuration over the dataset.
func (ds *Dataset) report(name string, cfg fusion.Config) eval.Report {
	res := ds.Fuse(name, cfg)
	return eval.Evaluate(name, res, ds.Gold)
}

// addReportRows renders (Dev, WDev, AUC-PR) rows for a set of reports.
func addReportRows(tb *Table, reports []eval.Report) {
	for _, r := range reports {
		tb.AddRow(r.Name, fmt.Sprintf("%.4f", r.Dev), fmt.Sprintf("%.4f", r.WDev), fmt.Sprintf("%.4f", r.AUCPR), r.N)
	}
}

// calibrationRows appends the curve's non-empty buckets as rows.
func calibrationRows(tb *Table, reports []eval.Report) {
	tb.AddRow("--- calibration: predicted -> real (n) ---")
	for _, r := range reports {
		row := []any{r.Name}
		for _, b := range r.Curve.Buckets {
			if b.N == 0 {
				continue
			}
			row = append(row, fmt.Sprintf("%.2f->%.2f(%d)", b.MeanPred, b.Real, b.N))
		}
		tb.AddRow(row...)
	}
}

// Figure9 reproduces Figure 9: calibration of the three basic models plus
// the only-extractor and only-source provenance variants of POPACCU.
func Figure9(ds *Dataset) *Table {
	vote := fusion.VoteConfig()
	accu := fusion.AccuConfig()
	pop := fusion.PopAccuConfig()
	onlyExt := fusion.PopAccuConfig()
	onlyExt.Granularity = fusion.GranExtractorOnly
	onlySrc := fusion.PopAccuConfig()
	onlySrc.Granularity = fusion.GranSourceOnly

	reports := []eval.Report{
		ds.report("VOTE", vote),
		ds.report("ACCU", accu),
		ds.report("POPACCU", pop),
		ds.report("POPACCU (only ext)", onlyExt),
		ds.report("POPACCU (only src)", onlySrc),
	}
	tb := &Table{ID: "fig9", Title: "Basic fusion models: calibration and AUC-PR",
		Header: []string{"Model", "Dev", "WDev", "AUC-PR", "N"}}
	addReportRows(tb, reports)
	calibrationRows(tb, reports[:3])
	tb.Notes = append(tb.Notes,
		"paper Figure 9: POPACCU best WDev (.037), then ACCU (.042), VOTE worst (.061); ACCU best AUC-PR (.524)",
		// At sub-paper scale the POPACCU/VOTE WDev gap is within seed
		// noise; the robust shape is POPACCU within noise on calibration
		// and clearly ahead on ranking.
		checkf(reports[2].WDev <= reports[0].WDev+0.02, "POPACCU WDev within noise of VOTE WDev"),
		checkf(reports[2].AUCPR > reports[0].AUCPR, "POPACCU AUC-PR > VOTE AUC-PR"),
		checkf(reports[1].AUCPR > reports[0].AUCPR, "ACCU AUC-PR > VOTE AUC-PR"))
	return tb
}

// Figure10 reproduces Figure 10: provenance granularity sweep for POPACCU.
func Figure10(ds *Dataset) *Table {
	grans := []fusion.Granularity{
		fusion.GranExtractorURL,
		fusion.GranExtractorSite,
		fusion.GranExtractorSitePred,
		fusion.GranExtractorSitePredPattern,
	}
	tb := &Table{ID: "fig10", Title: "Provenance granularity (POPACCU)",
		Header: []string{"Granularity", "Dev", "WDev", "AUC-PR", "N"}}
	var reports []eval.Report
	for _, g := range grans {
		cfg := fusion.PopAccuConfig()
		cfg.Granularity = g
		reports = append(reports, ds.report(g.String(), cfg))
	}
	addReportRows(tb, reports)
	best := reports[0].WDev
	for _, r := range reports[1:] {
		if r.WDev < best {
			best = r.WDev
		}
	}
	tb.Notes = append(tb.Notes,
		"paper Figure 10: (Extractor, Site, Predicate, Pattern) calibrates best (WDev .032 vs .037 for (Extractor, URL))",
		// Granularity deltas are small; at sub-paper scale they sit within
		// noise, so the robust check is that coarsening/refining stays
		// competitive with the baseline rather than a strict ordering.
		checkf(reports[3].WDev <= reports[0].WDev+0.01, "finest granularity within 0.01 WDev of (Extractor, URL)"),
		checkf(best < reports[0].WDev+1e-9, "some refined granularity beats or ties (Extractor, URL)"))
	return tb
}

// Figure11 reproduces Figure 11: provenance selection by coverage and
// accuracy.
func Figure11(ds *Dataset) *Table {
	tb := &Table{ID: "fig11", Title: "Provenance selection (POPACCU)",
		Header: []string{"Filter", "Dev", "WDev", "AUC-PR", "N"}}
	var reports []eval.Report

	noFilter := fusion.PopAccuConfig()
	reports = append(reports, ds.report("NOFILTERING", noFilter))

	byCov := fusion.PopAccuConfig()
	byCov.FilterByCoverage = true
	reports = append(reports, ds.report("BYCOV", byCov))

	for _, theta := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := fusion.PopAccuConfig()
		cfg.FilterByCoverage = true
		cfg.AccuracyThreshold = theta
		reports = append(reports, ds.report(fmt.Sprintf("BYCOVACCU (θ=%.1f)", theta), cfg))
	}
	addReportRows(tb, reports)
	covRes := ds.Fuse("BYCOV", byCov)
	tb.Notef("coverage filter leaves %.1f%% of triples without a probability (paper: 8.2%%)",
		100*float64(covRes.Unpredicted)/float64(len(covRes.Triples)))
	tb.Notes = append(tb.Notes,
		"paper Figure 11: filtering smooths the calibration curve; θ beyond 0.5 starts hurting AUC-PR")
	return tb
}

// Figure12 reproduces Figure 12: gold-standard accuracy initialization at
// several label sampling rates.
func Figure12(ds *Dataset) *Table {
	tb := &Table{ID: "fig12", Title: "Gold-standard accuracy initialization (POPACCU)",
		Header: []string{"Init", "Dev", "WDev", "AUC-PR", "N"}}
	var reports []eval.Report
	reports = append(reports, ds.report("DefaultAccu", fusion.PopAccuConfig()))
	for _, rate := range []float64{0.1, 0.2, 0.5, 1.0} {
		cfg := fusion.PopAccuConfig()
		cfg.GoldLabeler = ds.Gold.Labeler()
		cfg.GoldSampleRate = rate
		reports = append(reports, ds.report(fmt.Sprintf("INITACCU (%.0f%%)", rate*100), cfg))
	}
	addReportRows(tb, reports)
	last := reports[len(reports)-1]
	first := reports[0]
	tb.Notes = append(tb.Notes,
		"paper Figure 12: gold init reduces WDev by 21% and raises AUC-PR by 18%; more labels help more",
		checkf(last.WDev < first.WDev && last.AUCPR > first.AUCPR, "full gold init improves both WDev and AUC-PR"))
	return tb
}

// Figure13 reproduces Figure 13: the cumulative refinements.
func Figure13(ds *Dataset) *Table {
	tb := &Table{ID: "fig13", Title: "Cumulative refinements",
		Header: []string{"Model", "Dev", "WDev", "AUC-PR", "N"}}

	base := fusion.PopAccuConfig()

	s1 := base
	s1.FilterByCoverage = true

	s2 := s1
	s2.Granularity = fusion.GranExtractorSitePredPattern

	s3 := s2
	s3.AccuracyThreshold = 0.5

	s4 := s3
	s4.GoldLabeler = ds.Gold.Labeler()
	s4.GoldSampleRate = 1

	reports := []eval.Report{
		ds.report("POPACCU", base),
		ds.report("+FilterByCov", s1),
		ds.report("+AccuGranularity", s2),
		ds.report("+FilterByAccu", s3),
		ds.report("+GoldStandard (POPACCU+)", s4),
	}
	addReportRows(tb, reports)
	calibrationRows(tb, []eval.Report{reports[0], reports[4]})
	tb.Notes = append(tb.Notes,
		"paper Figure 13: refinements together cut WDev by 13% and raise AUC-PR by 12%",
		checkf(reports[4].WDev < reports[0].WDev, "POPACCU+ WDev < POPACCU WDev"),
		checkf(reports[4].AUCPR > reports[0].AUCPR, "POPACCU+ AUC-PR > POPACCU AUC-PR"))
	return tb
}

// Figure14 reproduces Figure 14: weighted deviation round by round for the
// default and gold initializations, plus the sampling (L) and round-cap (R)
// robustness checks.
func Figure14(ds *Dataset) *Table {
	tb := &Table{ID: "fig14", Title: "Convergence and sampling",
		Header: []string{"Setting", "R1", "R2", "R3", "R4", "R5", "final WDev", "AUC-PR"}}

	roundWDevs := func(cfg fusion.Config, key string) ([]float64, eval.Report) {
		var wdevs []float64
		cfg.Epsilon = 0 // force all rounds so the trace has full length
		cfg.OnRound = func(round int, probs map[kb.Triple]float64) {
			// Sorted triples: Calibration breaks probability ties by slice
			// order, so preds must not be built in map iteration order.
			ts := make([]kb.Triple, 0, len(probs))
			for t := range probs {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i].Encode() < ts[j].Encode() })
			var preds []eval.Prediction
			for _, t := range ts {
				if label, ok := ds.Gold.Label(t); ok {
					preds = append(preds, eval.Prediction{Prob: probs[t], Label: label})
				}
			}
			wdevs = append(wdevs, eval.Calibration(preds, 20).WeightedDeviation())
		}
		res := fusion.MustFuse(fusion.Claims(ds.Extractions, cfg.Granularity), cfg)
		return wdevs, eval.Evaluate(key, res, ds.Gold)
	}

	addTrace := func(name string, cfg fusion.Config) {
		wdevs, rep := roundWDevs(cfg, name)
		row := []any{name}
		for i := 0; i < 5; i++ {
			if i < len(wdevs) {
				row = append(row, fmt.Sprintf("%.4f", wdevs[i]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, fmt.Sprintf("%.4f", rep.WDev), fmt.Sprintf("%.4f", rep.AUCPR))
		tb.AddRow(row...)
	}

	defCfg := fusion.PopAccuConfig()
	addTrace("DefaultAccu (L=1M,R=5)", defCfg)

	goldCfg := fusion.PopAccuConfig()
	goldCfg.GoldLabeler = ds.Gold.Labeler()
	goldCfg.GoldSampleRate = 1
	addTrace("InitAccuByGold (L=1M,R=5)", goldCfg)

	smallL := fusion.PopAccuConfig()
	smallL.SampleL = 16
	addTrace("DefaultAccu (L=16,R=5)", smallL)

	longR := fusion.PopAccuConfig()
	longR.Rounds = 25
	addTrace("DefaultAccu (L=1M,R=25)", longR)

	tb.Notes = append(tb.Notes,
		"paper Figure 14: probabilities move most between rounds 1 and 2, stable afterwards;",
		"gold init stabilizes earlier; L=1K sampling and R=25 give nearly identical results")
	return tb
}

// Figure15 reproduces Figure 15: PR curves for the five model variants.
func Figure15(ds *Dataset) *Table {
	models := []struct {
		name string
		cfg  fusion.Config
	}{
		{"VOTE", fusion.VoteConfig()},
		{"ACCU", fusion.AccuConfig()},
		{"POPACCU", fusion.PopAccuConfig()},
		{"POPACCU+(unsup)", fusion.PopAccuPlusUnsupConfig()},
		{"POPACCU+", fusion.PopAccuPlusConfig(ds.Gold.Labeler())},
	}
	tb := &Table{ID: "fig15", Title: "PR curves",
		Header: []string{"Model", "AUC-PR", "P@R=.2", "P@R=.4", "P@R=.6", "P@R=.8"}}
	aucs := map[string]float64{}
	for _, m := range models {
		res := ds.Fuse(m.name, m.cfg)
		preds, _ := eval.Predictions(res, ds.Gold)
		pts := eval.PRCurve(preds)
		precAt := func(r float64) string {
			for _, pt := range pts {
				if pt.Recall >= r {
					return fmt.Sprintf("%.3f", pt.Precision)
				}
			}
			return "-"
		}
		auc := eval.AUCPR(preds)
		aucs[m.name] = auc
		tb.AddRow(m.name, fmt.Sprintf("%.4f", auc), precAt(0.2), precAt(0.4), precAt(0.6), precAt(0.8))
	}
	tb.Notes = append(tb.Notes,
		"paper Figure 15: POPACCU+ has the best PR shape, then POPACCU+(unsup)",
		checkf(aucs["POPACCU+"] >= aucs["POPACCU"], "POPACCU+ AUC >= POPACCU AUC"))
	return tb
}

// Figure16 reproduces Figure 16: the distribution of predicted
// probabilities for POPACCU+.
func Figure16(ds *Dataset) *Table {
	res := ds.Fuse("POPACCU+", fusion.PopAccuPlusConfig(ds.Gold.Labeler()))
	var probs []float64
	for _, f := range res.Triples {
		if f.Predicted {
			probs = append(probs, f.Probability)
		}
	}
	dist := eval.Distribution(probs, 10)
	tb := &Table{ID: "fig16", Title: "Distribution of predicted probabilities (POPACCU+)",
		Header: []string{"Probability bucket", "Share of triples"}}
	for i, f := range dist {
		label := fmt.Sprintf("[%.1f,%.1f)", float64(i)/10, float64(i+1)/10)
		if i == 10 {
			label = "=1.0"
		}
		tb.AddRow(label, fmt.Sprintf("%.3f", f))
	}
	low := dist[0]
	high := dist[9] + dist[10]
	tb.Notef("share below 0.1: %.0f%% (paper: ~70%%); share above 0.9: %.0f%% (paper: ~10%%)", 100*low, 100*high)
	return tb
}

// Figure17 reproduces Figure 17: the error analysis of POPACCU+.
func Figure17(ds *Dataset) *Table {
	res := ds.Fuse("POPACCU+", fusion.PopAccuPlusConfig(ds.Gold.Labeler()))
	ea := eval.AnalyzeErrors(ds.World, ds.Snapshot, ds.Gold, res, ds.Extractions, 0.95, 0.05)
	tb := &Table{ID: "fig17", Title: "Error analysis (POPACCU+): false positives and false negatives",
		Header: []string{"Category", "Count", "Share"}}
	tb.AddRow(fmt.Sprintf("FALSE POSITIVES (%d)", ea.FPTotal), "", "")
	for r := eval.FPExtractionError; r <= eval.FPFreebaseWrong; r++ {
		if n := ea.FP[r]; n > 0 {
			tb.AddRow("  "+r.String(), n, fmt.Sprintf("%.0f%%", 100*float64(n)/float64(ea.FPTotal)))
		}
	}
	tb.AddRow(fmt.Sprintf("FALSE NEGATIVES (%d)", ea.FNTotal), "", "")
	for r := eval.FNMultipleTruths; r <= eval.FNWeakSupport; r++ {
		if n := ea.FN[r]; n > 0 {
			tb.AddRow("  "+r.String(), n, fmt.Sprintf("%.0f%%", 100*float64(n)/float64(ea.FNTotal)))
		}
	}
	lcwa := ea.FP[eval.FPClosedWorld] + ea.FP[eval.FPSpecificValue] + ea.FP[eval.FPGeneralValue] + ea.FP[eval.FPFreebaseWrong]
	if ea.FPTotal > 0 {
		tb.Notef("LCWA artifacts are %.0f%% of false positives (paper: ~55%%: 10 CWA + 1 Freebase-wrong of 20)",
			100*float64(lcwa)/float64(ea.FPTotal))
	}
	if ea.FNTotal > 0 {
		st := ea.FN[eval.FNMultipleTruths] + ea.FN[eval.FNSpecificGeneral]
		tb.Notef("single-truth/hierarchy artifacts are %.0f%% of false negatives (paper: 100%%: 13 multi-truth + 7 specific/general of 20)",
			100*float64(st)/float64(ea.FNTotal))
	}
	return tb
}
