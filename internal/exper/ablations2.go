package exper

import (
	"fmt"
	"strings"

	"kfusion/internal/copydetect"
	"kfusion/internal/eval"
	"kfusion/internal/funcdegree"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/valuesim"
)

// AblationCopyDetect: does scalable copy detection (§5.2) find the planted
// syndication relationships, and does discounting detected copiers improve
// fusion?
func AblationCopyDetect(ds *Dataset) *Table {
	pairs := copydetect.Detect(ds.Extractions, copydetect.DefaultConfig())

	tb := &Table{ID: "abl-copydetect", Title: "Ablation: copy detection between sources (§5.2)",
		Header: []string{"Quantity", "Value"}}
	planted := len(ds.Corpus.CopiedFrom)
	tb.AddRow("planted copier sites", planted)
	tb.AddRow("detected pairs", len(pairs))

	genuine := 0
	foundCopiers := map[string]bool{}
	for _, p := range pairs {
		if ds.Corpus.CopiedFrom[p.A] == p.B {
			genuine++
			foundCopiers[p.A] = true
		} else if ds.Corpus.CopiedFrom[p.B] == p.A {
			genuine++
			foundCopiers[p.B] = true
		}
	}
	precision := 0.0
	if len(pairs) > 0 {
		precision = float64(genuine) / float64(len(pairs))
	}
	recall := 0.0
	if planted > 0 {
		recall = float64(len(foundCopiers)) / float64(planted)
	}
	tb.AddRow("genuine pairs", genuine)
	tb.AddRow("precision", fmt.Sprintf("%.2f", precision))
	tb.AddRow("copier recall", fmt.Sprintf("%.2f", recall))

	// Fusion with copier discounting at site-level provenances.
	siteOf := func(prov string) string {
		if i := strings.IndexByte(prov, '|'); i >= 0 {
			return prov[i+1:]
		}
		return prov
	}
	baseCfg := fusion.PopAccuConfig()
	baseCfg.Granularity = fusion.GranExtractorSite
	base := ds.Fuse("POPACCU(site)", baseCfg)
	baseRep := ds.evalResult("POPACCU (site prov)", base)

	discCfg := baseCfg
	discCfg.ClaimAccuracy = copydetect.DiscountHook(pairs, siteOf, 0.8)
	disc := fusion.MustFuse(fusion.Claims(ds.Extractions, discCfg.Granularity), discCfg)
	discRep := ds.evalResult("POPACCU + copy discount", disc)

	tb.AddRow("", "")
	tb.AddRow("POPACCU (site prov) WDev/AUC", fmt.Sprintf("%.4f / %.4f", baseRep.WDev, baseRep.AUCPR))
	tb.AddRow("+ copy discount WDev/AUC", fmt.Sprintf("%.4f / %.4f", discRep.WDev, discRep.AUCPR))

	tb.Notes = append(tb.Notes,
		"paper §5.2: pairwise copy detection does not scale to 1B+ sources; rare-triple shingling avoids the pair space",
		checkf(planted == 0 || precision >= 0.5, "detected pairs are mostly genuine copiers"),
		// Copied support is not independent evidence: removing it improves
		// calibration when copiers carry weight, and must never noticeably
		// worsen it; it may cost a little ranking power since copied TRUE
		// triples also lose support.
		checkf(discRep.WDev <= baseRep.WDev+0.002, "copier discounting does not worsen calibration (WDev)"),
		checkf(discRep.AUCPR >= baseRep.AUCPR-0.05, "ranking cost of discounting stays small"))
	return tb
}

// AblationSoftLCWA: does the confidence-weighted gold standard (§5.7) lower
// the penalty for conflicts with uncertain negatives?
func AblationSoftLCWA(ds *Dataset) *Table {
	cfg := fusion.PopAccuPlusConfig(ds.Gold.Labeler())
	res := ds.Fuse("POPACCU+", cfg)

	// Degrees from the schema-free learner (no extra supervision).
	degrees := funcdegree.Learn(res, 6)
	soft := eval.NewSoftGold(ds.Gold, degrees.Degree)

	var triples []kb.Triple
	var probs []float64
	for _, f := range res.Triples {
		if f.Predicted {
			triples = append(triples, f.Triple)
			probs = append(probs, f.Probability)
		}
	}
	wp := eval.WeightedPredictions(triples, probs, soft)
	hard := make([]eval.WeightedPrediction, len(wp))
	copy(hard, wp)
	for i := range hard {
		hard[i].Confidence = 1
	}

	hardDev := eval.WeightedDeviation(hard, 20)
	softDev := eval.WeightedDeviation(wp, 20)

	tb := &Table{ID: "abl-softlcwa", Title: "Ablation: LCWA with label confidence (§5.7)",
		Header: []string{"Gold standard", "Weighted deviation"}}
	tb.AddRow("hard LCWA (all labels confidence 1)", fmt.Sprintf("%.4f", hardDev))
	tb.AddRow("soft LCWA (negatives discounted by functionality)", fmt.Sprintf("%.4f", softDev))
	tb.Notes = append(tb.Notes,
		"paper §5.7: 50% of apparent false positives were LCWA artifacts; soft negatives give them a lower penalty",
		checkf(softDev <= hardDev+1e-9, "soft labels never increase the measured deviation"))
	return tb
}

// AblationValueSim: does crediting similar values with each other's support
// (§5.4, "8849 and 8850 are similar") recover support lost to near-miss
// extraction garbage?
func AblationValueSim(ds *Dataset) *Table {
	base := ds.Fuse("POPACCU", fusion.PopAccuConfig())
	adjusted := valuesim.Adjust(base, valuesim.DefaultConfig())

	baseRep := ds.evalResult("POPACCU", base)
	adjRep := ds.evalResult("POPACCU + valuesim", adjusted)

	// Recall of gold-true triples at p >= 0.5 — the axis similarity credit
	// should move (lost support comes back to the approximated value).
	recall := func(res *fusion.Result) (float64, int) {
		hit, total := 0, 0
		for _, f := range res.Triples {
			if !f.Predicted {
				continue
			}
			if label, ok := ds.Gold.Label(f.Triple); ok && label {
				total++
				if f.Probability >= 0.5 {
					hit++
				}
			}
		}
		if total == 0 {
			return 0, 0
		}
		return float64(hit) / float64(total), total
	}
	bRec, n := recall(base)
	aRec, _ := recall(adjusted)

	tb := &Table{ID: "abl-valuesim", Title: "Ablation: value-similarity support (§5.4)",
		Header: []string{"Model", "True-triple recall@0.5", "WDev", "AUC-PR"}}
	tb.AddRow(baseRep.Name, fmt.Sprintf("%.3f (n=%d)", bRec, n), fmt.Sprintf("%.4f", baseRep.WDev), fmt.Sprintf("%.4f", baseRep.AUCPR))
	tb.AddRow(adjRep.Name, fmt.Sprintf("%.3f", aRec), fmt.Sprintf("%.4f", adjRep.WDev), fmt.Sprintf("%.4f", adjRep.AUCPR))
	tb.Notes = append(tb.Notes,
		"paper §5.4: a triple with a particular object partially supports a similar object",
		checkf(aRec >= bRec, "similarity credit never loses true triples"))
	return tb
}
