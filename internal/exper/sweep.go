package exper

import "kfusion/internal/fusion"

// SweepPreset names one configuration of the standard multi-config sweep.
type SweepPreset struct {
	Name string
	Cfg  fusion.Config
}

// ConfigSweep returns the 4-config sweep used by the multi-config
// benchmarks (BenchmarkConfigSweep, kfbench -benchjson): VOTE, ACCU,
// POPACCU and POPACCU with the §4.3.2 filters, all at the default
// (Extractor, URL) granularity so they share one compiled claim graph —
// the workload shape of the paper's Tables 1-3 and the ablation suite,
// where many methods run over one extracted claim set.
func ConfigSweep() []SweepPreset {
	filtered := fusion.PopAccuConfig()
	filtered.FilterByCoverage = true
	filtered.AccuracyThreshold = 0.5
	return []SweepPreset{
		{Name: "VOTE", Cfg: fusion.VoteConfig()},
		{Name: "ACCU", Cfg: fusion.AccuConfig()},
		{Name: "POPACCU", Cfg: fusion.PopAccuConfig()},
		{Name: "POPACCU+filters", Cfg: filtered},
	}
}
