package exper

import (
	"fmt"
	"sort"

	"kfusion/internal/confweight"
	"kfusion/internal/eval"
	"kfusion/internal/funcdegree"
	"kfusion/internal/fusion"
	"kfusion/internal/hierval"
	"kfusion/internal/kb"
	"kfusion/internal/multitruth"
	"kfusion/internal/twolayer"
)

// Ablations for the §5 future-direction implementations. Each compares the
// refined baseline against one extension on the axis the paper says the
// extension should move.

// evalResult evaluates an arbitrary fusion result (the extensions produce
// fusion.Result too).
func (ds *Dataset) evalResult(name string, res *fusion.Result) eval.Report {
	return eval.Evaluate(name, res, ds.Gold)
}

// AblationTwoLayer: does separating extractor precision from source accuracy
// (§5.1) recover the Figure 18 signal the flat provenance buries?
func AblationTwoLayer(ds *Dataset) *Table {
	base := ds.report("POPACCU", fusion.PopAccuConfig())

	// The two-layer model rides the dataset's shared compiled extraction
	// graph, the way the fusion models ride the shared claim graph.
	cfg := twolayer.DefaultConfig()
	cfg.SiteLevel = true
	two := twolayer.MustFuseCompiled(ds.ExtractionGraph(true), cfg)
	twoRep := ds.evalResult("TWOLAYER", two)

	tb := &Table{ID: "abl-twolayer", Title: "Ablation: two-layer source/extractor model (§5.1)",
		Header: []string{"Model", "Dev", "WDev", "AUC-PR", "N"}}
	addReportRows(tb, []eval.Report{base, twoRep})

	// The targeted signal: among triples both models push above 0.8, how do
	// single-extractor triples fare vs multi-extractor ones?
	strat := func(res *fusion.Result) (single, multi float64, ns, nm int) {
		for _, f := range res.Triples {
			if !f.Predicted || f.Probability < 0.8 {
				continue
			}
			label, ok := ds.Gold.Label(f.Triple)
			if !ok {
				continue
			}
			if f.Extractors <= 1 {
				ns++
				if label {
					single++
				}
			} else {
				nm++
				if label {
					multi++
				}
			}
		}
		if ns > 0 {
			single /= float64(ns)
		}
		if nm > 0 {
			multi /= float64(nm)
		}
		return single, multi, ns, nm
	}
	bs, bm, bns, bnm := strat(ds.Fuse("POPACCU", fusion.PopAccuConfig()))
	ts, tm, tns, tnm := strat(two)
	tb.AddRow("POPACCU confident singles/multi", fmt.Sprintf("%.2f (%d)", bs, bns), fmt.Sprintf("%.2f (%d)", bm, bnm), "", "")
	tb.AddRow("TWOLAYER confident singles/multi", fmt.Sprintf("%.2f (%d)", ts, tns), fmt.Sprintf("%.2f (%d)", tm, tnm), "", "")
	tb.Notes = append(tb.Notes,
		"paper §5.1: flat provenances bury the single-vs-multi extractor signal",
		checkf(tns <= bns || ts >= bs, "two-layer promotes fewer (or truer) single-extractor triples to high confidence"))
	return tb
}

// AblationMultiTruth: does the latent truth model recover multiple truths on
// non-functional predicates (§5.3)?
func AblationMultiTruth(ds *Dataset) *Table {
	// Both models ride the dataset's one compiled claim graph.
	single := ds.Fuse("POPACCU", fusion.PopAccuConfig())
	ltm := multitruth.MustFuseCompiled(ds.Compiled(fusion.GranExtractorURL), multitruth.DefaultConfig())

	// Multi-truth recovery: items with >= 2 gold-true extracted triples
	// where the model assigns >= 0.5 to at least two of them.
	recovered := func(res *fusion.Result) (hit, total int) {
		byItem := map[kb.DataItem][]fusion.FusedTriple{}
		for _, f := range res.Triples {
			if f.Predicted {
				byItem[f.Item()] = append(byItem[f.Item()], f)
			}
		}
		//lint:ignore kflint/mapiter Gold.Label is a pure lookup and the body only bumps integer counters — every visit order yields the same (hit, total).
		for _, fs := range byItem {
			goldTrue, confident := 0, 0
			for _, f := range fs {
				if label, ok := ds.Gold.Label(f.Triple); ok && label {
					goldTrue++
					if f.Probability >= 0.5 {
						confident++
					}
				}
			}
			if goldTrue >= 2 {
				total++
				if confident >= 2 {
					hit++
				}
			}
		}
		return hit, total
	}
	sHit, sTotal := recovered(single)
	mHit, mTotal := recovered(ltm)

	tb := &Table{ID: "abl-multitruth", Title: "Ablation: latent truth model for non-functional predicates (§5.3)",
		Header: []string{"Model", "Multi-truth items recovered", "Monotonicity"}}
	singlePreds, _ := eval.Predictions(single, ds.Gold)
	ltmPreds, _ := eval.Predictions(ltm, ds.Gold)
	tb.AddRow("POPACCU (single truth)", fmt.Sprintf("%d/%d", sHit, sTotal), fmt.Sprintf("%.3f", eval.Monotonicity(singlePreds)))
	tb.AddRow("LTM (multi truth)", fmt.Sprintf("%d/%d", mHit, mTotal), fmt.Sprintf("%.3f", eval.Monotonicity(ltmPreds)))
	tb.Notes = append(tb.Notes,
		"paper Figure 17: 65% of false negatives stem from the single-truth assumption",
		checkf(mHit >= sHit, "LTM recovers at least as many multi-truth items"),
		checkf(sTotal == mTotal, "both models see the same multi-truth items"))
	return tb
}

// AblationFuncDegree: does learning per-predicate functionality degrees and
// relaxing the single-truth squeeze improve truth recall (§5.3)?
func AblationFuncDegree(ds *Dataset) *Table {
	plusCfg := fusion.PopAccuPlusConfig(ds.Gold.Labeler())
	base := ds.Fuse("POPACCU+", plusCfg)
	degrees := funcdegree.LearnFromGold(base, ds.Gold.Label, 6)
	rescaled := funcdegree.Rescale(base, degrees)

	// Recall of gold-true triples at p >= 0.5.
	recall := func(res *fusion.Result) (float64, int) {
		hit, total := 0, 0
		for _, f := range res.Triples {
			if !f.Predicted {
				continue
			}
			if label, ok := ds.Gold.Label(f.Triple); ok && label {
				total++
				if f.Probability >= 0.5 {
					hit++
				}
			}
		}
		if total == 0 {
			return 0, 0
		}
		return float64(hit) / float64(total), total
	}
	bRec, n := recall(base)
	rRec, _ := recall(rescaled)
	baseRep := ds.evalResult("POPACCU+", base)
	resRep := ds.evalResult("POPACCU+ + funcdegree", rescaled)

	tb := &Table{ID: "abl-funcdegree", Title: "Ablation: learned functionality degrees (§5.3)",
		Header: []string{"Model", "True-triple recall@0.5", "WDev", "AUC-PR"}}
	tb.AddRow(baseRep.Name, fmt.Sprintf("%.3f (n=%d)", bRec, n), fmt.Sprintf("%.4f", baseRep.WDev), fmt.Sprintf("%.4f", baseRep.AUCPR))
	tb.AddRow(resRep.Name, fmt.Sprintf("%.3f", rRec), fmt.Sprintf("%.4f", resRep.WDev), fmt.Sprintf("%.4f", resRep.AUCPR))

	// Show the learned degrees line up with the schema. Sorted keys: the
	// float sums below must not accumulate in map iteration order.
	preds := make([]kb.PredicateID, 0, len(degrees))
	for p := range degrees {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	fnDeg, nfDeg, fnN, nfN := 0.0, 0.0, 0, 0
	for _, p := range preds {
		d := degrees[p]
		if pr := ds.World.Ont.Predicate(p); pr != nil {
			if pr.Functional {
				fnDeg += d
				fnN++
			} else {
				nfDeg += d
				nfN++
			}
		}
	}
	if fnN > 0 && nfN > 0 {
		tb.Notef("learned degree: functional predicates %.2f vs non-functional %.2f",
			fnDeg/float64(fnN), nfDeg/float64(nfN))
		tb.Notes = append(tb.Notes,
			checkf(nfDeg/float64(nfN) >= fnDeg/float64(fnN), "non-functional predicates learn higher degrees"))
	}
	tb.Notes = append(tb.Notes, checkf(rRec >= bRec, "degree rescaling does not lose true triples"))
	return tb
}

// AblationHierValues: does ancestor aggregation fix specific/general false
// negatives (§5.4)?
func AblationHierValues(ds *Dataset) *Table {
	plusCfg := fusion.PopAccuPlusConfig(ds.Gold.Labeler())
	base := ds.Fuse("POPACCU+", plusCfg)
	isHier := func(p kb.PredicateID) bool {
		pr := ds.World.Ont.Predicate(p)
		return pr != nil && pr.Hierarchical
	}
	adjusted := hierval.Adjust(base, ds.World.Hier, isHier)

	// Specific/general false negatives before and after.
	countFNs := func(res *fusion.Result) int {
		ea := eval.AnalyzeErrors(ds.World, ds.Snapshot, ds.Gold, res, ds.Extractions, 0.95, 0.05)
		return ea.FN[eval.FNSpecificGeneral]
	}
	baseFN := countFNs(base)
	adjFN := countFNs(adjusted)
	baseRep := ds.evalResult("POPACCU+", base)
	adjRep := ds.evalResult("POPACCU+ + hierval", adjusted)

	tb := &Table{ID: "abl-hierval", Title: "Ablation: hierarchical value aggregation (§5.4)",
		Header: []string{"Model", "Specific/general FNs", "WDev", "AUC-PR"}}
	tb.AddRow(baseRep.Name, baseFN, fmt.Sprintf("%.4f", baseRep.WDev), fmt.Sprintf("%.4f", baseRep.AUCPR))
	tb.AddRow(adjRep.Name, adjFN, fmt.Sprintf("%.4f", adjRep.WDev), fmt.Sprintf("%.4f", adjRep.AUCPR))
	tb.Notes = append(tb.Notes,
		"paper Figure 17: 35% of false negatives are specific/general value artifacts",
		checkf(adjFN <= baseFN, "ancestor aggregation does not add specific/general FNs"))
	return tb
}

// AblationConfidence: recalibrated confidence weighting (§5.5) vs the
// thresholding strawman of Figure 22.
func AblationConfidence(ds *Dataset) *Table {
	base := ds.report("POPACCU", fusion.PopAccuConfig())

	cal := confweight.Learn(ds.Extractions, ds.Gold.Label)
	hooked := fusion.MustFuse(
		fusion.Claims(ds.Extractions, fusion.GranExtractorURL),
		cal.Config(fusion.PopAccuConfig()))
	hookedRep := ds.evalResult("POPACCU + confweight", hooked)

	kept, coverage := confweight.FilterByThreshold(ds.Extractions, 0.5)
	filtered := fusion.MustFuse(fusion.Claims(kept, fusion.GranExtractorURL), fusion.PopAccuConfig())
	filteredRep := ds.evalResult("POPACCU on conf>=0.5 subset", filtered)

	tb := &Table{ID: "abl-confweight", Title: "Ablation: confidence-aware fusion (§5.5)",
		Header: []string{"Model", "Dev", "WDev", "AUC-PR", "N"}}
	addReportRows(tb, []eval.Report{base, hookedRep, filteredRep})
	tb.Notef("threshold filtering keeps only %.0f%% of unique triples (paper Figure 22: thresholds are costly)", 100*coverage)
	tb.Notes = append(tb.Notes,
		checkf(hookedRep.AUCPR >= base.AUCPR-0.02, "recalibrated confidences do not hurt ranking"),
		checkf(hookedRep.N > filteredRep.N, "recalibration keeps far more labeled triples than filtering"))
	return tb
}
