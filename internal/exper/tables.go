package exper

import (
	"fmt"
	"sort"

	"kfusion/internal/kb"
	"kfusion/internal/stats"
)

// Table1 reproduces Table 1: overview counts and skew statistics of the
// extracted knowledge.
func Table1(ds *Dataset) *Table {
	uniq := ds.Unique()
	subjects := map[kb.EntityID]bool{}
	predicates := map[kb.PredicateID]bool{}
	objects := map[kb.Object]bool{}
	items := map[kb.DataItem]bool{}
	types := map[kb.TypeID]bool{}

	triplesPerEntity := map[kb.EntityID]int{}
	triplesPerPredicate := map[kb.PredicateID]int{}
	triplesPerItem := map[kb.DataItem]int{}
	triplesPerType := map[kb.TypeID]int{}
	predsPerEntity := map[kb.EntityID]map[kb.PredicateID]bool{}

	for _, u := range uniq {
		t := u.Triple
		subjects[t.Subject] = true
		predicates[t.Predicate] = true
		objects[t.Object] = true
		items[t.Item()] = true
		triplesPerEntity[t.Subject]++
		triplesPerPredicate[t.Predicate]++
		triplesPerItem[t.Item()]++
		if e := ds.World.Ont.Entity(t.Subject); e != nil {
			for _, ty := range e.Types {
				types[ty] = true
				triplesPerType[ty]++
			}
		}
		if predsPerEntity[t.Subject] == nil {
			predsPerEntity[t.Subject] = map[kb.PredicateID]bool{}
		}
		predsPerEntity[t.Subject][t.Predicate] = true
	}

	tb := &Table{ID: "table1", Title: "Overview of extracted knowledge",
		Header: []string{"Quantity", "Value", "Median", "Min", "Max"}}
	tb.AddRow("#Triples (unique)", len(uniq))
	tb.AddRow("#Extracted (with provenance)", len(ds.Extractions))
	tb.AddRow("#Subjects (entities)", len(subjects))
	tb.AddRow("#Predicates", len(predicates))
	tb.AddRow("#Objects", len(objects))
	tb.AddRow("#Data items", len(items))
	tb.AddRow("#Types", len(types))
	addSummary := func(name string, s stats.Summary) {
		tb.AddRow(name, fmt.Sprintf("mean %.1f", s.Mean), fmt.Sprintf("%.0f", s.Median), fmt.Sprintf("%.0f", s.Min), fmt.Sprintf("%.0f", s.Max))
	}
	addSummary("#Triples/type", summarizeCounts(triplesPerType))
	addSummary("#Triples/entity", summarizeCounts(triplesPerEntity))
	addSummary("#Triples/predicate", summarizeCounts(triplesPerPredicate))
	addSummary("#Triples/data-item", summarizeCounts(triplesPerItem))
	predCounts := map[kb.EntityID]int{}
	for e, ps := range predsPerEntity {
		predCounts[e] = len(ps)
	}
	addSummary("#Predicates/entity", summarizeCounts(predCounts))
	tb.Notes = append(tb.Notes,
		"paper: distributions are highly skewed — median well below mean",
		fmt.Sprintf("skew check: triples/entity median %.0f vs mean %.1f",
			summarizeCounts(triplesPerEntity).Median, summarizeCounts(triplesPerEntity).Mean))
	return tb
}

func summarizeCounts[K comparable](m map[K]int) stats.Summary {
	xs := make([]int, 0, len(m))
	for _, v := range m {
		xs = append(xs, v)
	}
	// SummarizeInts sums float-converted values in slice order; sort so the
	// mean does not depend on map iteration order.
	sort.Ints(xs)
	return stats.SummarizeInts(xs)
}

// Table2 reproduces Table 2: per-extractor volume, patterns and accuracy.
func Table2(ds *Dataset) *Table {
	type row struct {
		triples  map[kb.Triple]bool
		pages    map[string]bool
		patterns map[string]bool
		hasConf  bool
	}
	rows := map[string]*row{}
	for _, x := range ds.Extractions {
		r := rows[x.Extractor]
		if r == nil {
			r = &row{triples: map[kb.Triple]bool{}, pages: map[string]bool{}, patterns: map[string]bool{}}
			rows[x.Extractor] = r
		}
		r.triples[x.Triple] = true
		r.pages[x.URL] = true
		if x.Pattern != "" {
			r.patterns[x.Pattern] = true
		}
		if x.HasConfidence() {
			r.hasConf = true
		}
	}
	// Accuracy on unique triples; high-confidence accuracy on the conf>=.7
	// subset of extraction instances (deduplicated by triple).
	accOf := func(name string, minConf float64) (float64, int) {
		seen := map[kb.Triple]bool{}
		trueN, labeled := 0, 0
		for _, x := range ds.Extractions {
			if x.Extractor != name || seen[x.Triple] {
				continue
			}
			if minConf > 0 && (!x.HasConfidence() || x.Confidence < minConf) {
				continue
			}
			seen[x.Triple] = true
			if label, ok := ds.Gold.Label(x.Triple); ok {
				labeled++
				if label {
					trueN++
				}
			}
		}
		if labeled == 0 {
			return 0, 0
		}
		return float64(trueN) / float64(labeled), labeled
	}

	tb := &Table{ID: "table2", Title: "Extractor volume and quality",
		Header: []string{"Extractor", "#Triples", "#Webpages", "#Patterns", "Accu", "Accu(conf>=.7)"}}
	for _, name := range ds.Suite.Names() {
		r := rows[name]
		if r == nil {
			continue
		}
		pat := "No pat."
		if len(r.patterns) > 0 {
			pat = fmt.Sprint(len(r.patterns))
		}
		acc, _ := accOf(name, 0)
		hi := "No conf."
		if r.hasConf {
			a, n := accOf(name, 0.7)
			if n > 0 {
				hi = fmt.Sprintf("%.2f", a)
			}
		}
		tb.AddRow(name, len(r.triples), len(r.pages), pat, fmt.Sprintf("%.2f", acc), hi)
	}
	tb.Notes = append(tb.Notes,
		"paper Table 2: accuracies span 0.09-0.78; TXT4 best, DOM2 worst",
		"paper: for confidence-reporting extractors, conf>=.7 accuracy is usually higher")
	return tb
}

// Table3 reproduces Table 3: functional vs non-functional predicates.
func Table3(ds *Dataset) *Table {
	uniq := ds.Unique()
	type agg struct {
		preds   map[kb.PredicateID]bool
		items   map[kb.DataItem]bool
		triples int
		trueN   int
		labeled int
	}
	fn := &agg{preds: map[kb.PredicateID]bool{}, items: map[kb.DataItem]bool{}}
	nf := &agg{preds: map[kb.PredicateID]bool{}, items: map[kb.DataItem]bool{}}
	for _, u := range uniq {
		p := ds.World.Ont.Predicate(u.Triple.Predicate)
		a := nf
		if p != nil && p.Functional {
			a = fn
		}
		a.preds[u.Triple.Predicate] = true
		a.items[u.Triple.Item()] = true
		a.triples++
		if label, ok := ds.Gold.Label(u.Triple); ok {
			a.labeled++
			if label {
				a.trueN++
			}
		}
	}
	totalPreds := len(fn.preds) + len(nf.preds)
	totalItems := len(fn.items) + len(nf.items)
	totalTriples := fn.triples + nf.triples
	pct := func(a, b int) string {
		if b == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
	}
	acc := func(a *agg) string {
		if a.labeled == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", float64(a.trueN)/float64(a.labeled))
	}
	tb := &Table{ID: "table3", Title: "Functional vs non-functional predicates",
		Header: []string{"Type", "Predicates", "Data items", "Triples", "Accuracy"}}
	tb.AddRow("Functional", pct(len(fn.preds), totalPreds), pct(len(fn.items), totalItems), pct(fn.triples, totalTriples), acc(fn))
	tb.AddRow("Non-functional", pct(len(nf.preds), totalPreds), pct(len(nf.items), totalItems), pct(nf.triples, totalTriples), acc(nf))
	tb.Notes = append(tb.Notes, "paper Table 3: 28%/72% predicates, 24%/76% data items, 32%/68% triples, accuracy 0.18/0.25")
	return tb
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
