package exper

import (
	"testing"

	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/twolayer"
)

// TestAppendExtractionsGenerationAware pins the generation-aware caches:
// after AppendExtractions, Compiled / ExtractionGraph return the next
// generation built via Append from the cached previous generation (not a
// recompile), results match a from-scratch compile of the grown feed
// bit-identically, the previous generation's handles stay usable, and the
// fusion result cache is generation-scoped.
func TestAppendExtractionsGenerationAware(t *testing.T) {
	ds := NewDataset(ScaleSmall, 99)
	gran := fusion.GranExtractorURL
	cfg := fusion.PopAccuConfig()

	g0 := ds.Compiled(gran)
	e0 := ds.ExtractionGraph(true)
	res0 := ds.Fuse("append-test", cfg)
	u0 := len(ds.Unique())
	if ds.Generation() != 0 || g0.Generation() != 0 || e0.Generation() != 0 {
		t.Fatalf("fresh dataset not at generation 0")
	}

	// The appended batch revisits the first pages under new URLs (new
	// sources, same sites) so it adds provenances, claims and statements.
	batch := make([]extract.Extraction, 60)
	copy(batch, ds.Extractions[:60])
	for i := range batch {
		batch[i].URL += "?v2"
	}
	ds.AppendExtractions(batch)
	if ds.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", ds.Generation())
	}

	g1 := ds.Compiled(gran)
	if g1.Generation() != 1 {
		t.Fatalf("claim graph generation = %d, want 1 (should be built via Append)", g1.Generation())
	}
	if same := ds.Compiled(gran); same != g1 {
		t.Fatal("repeated Compiled lookups at one generation must share the cached graph")
	}
	want := fusion.MustCompile(fusion.Claims(ds.Extractions, gran))
	got := g1.MustFuse(cfg)
	fresh := want.MustFuse(cfg)
	if len(got.Triples) != len(fresh.Triples) {
		t.Fatalf("%d triples, want %d", len(got.Triples), len(fresh.Triples))
	}
	for i := range got.Triples {
		if got.Triples[i] != fresh.Triples[i] {
			t.Fatalf("triple %d differs from recompile: %+v vs %+v", i, got.Triples[i], fresh.Triples[i])
		}
	}

	e1 := ds.ExtractionGraph(true)
	if e1.Generation() != 1 {
		t.Fatalf("extraction graph generation = %d, want 1", e1.Generation())
	}
	tcfg := twolayer.DefaultConfig()
	tcfg.SiteLevel = true
	gotT := twolayer.MustFuseCompiled(e1, tcfg)
	wantT := twolayer.MustFuseCompiled(extract.Compile(ds.Extractions, true), tcfg)
	if len(gotT.Triples) != len(wantT.Triples) {
		t.Fatalf("twolayer: %d triples, want %d", len(gotT.Triples), len(wantT.Triples))
	}
	for i := range gotT.Triples {
		if gotT.Triples[i] != wantT.Triples[i] {
			t.Fatalf("twolayer triple %d differs from recompile", i)
		}
	}

	// The previous generation stays fully usable.
	if g0.NumClaims() >= g1.NumClaims() {
		t.Fatalf("appended generation did not grow: %d vs %d claims", g1.NumClaims(), g0.NumClaims())
	}
	g0.MustFuse(cfg)

	// Fusion results are generation-scoped: the same key re-fuses on the
	// grown feed instead of returning the stale result.
	res1 := ds.Fuse("append-test", cfg)
	if res1 == res0 {
		t.Fatal("fuse cache returned the previous generation's result after an append")
	}
	if len(res1.Triples) != len(fresh.Triples) {
		t.Fatalf("cached fuse has %d triples, want %d", len(res1.Triples), len(fresh.Triples))
	}
	if u1 := len(ds.Unique()); u1 < u0 {
		t.Fatalf("Unique shrank across append: %d -> %d", u0, u1)
	}
}
