// Package exper implements the paper's evaluation section experiment by
// experiment: every table (1-3) and every figure (3-7, 9-22) has a function
// that regenerates it over a synthetic dataset and renders paper-style rows.
// The cmd/kfbench binary and the repository's benchmarks are thin wrappers
// around this package.
package exper

import (
	"sync"

	"kfusion/internal/eval"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Scale selects a dataset size.
type Scale int

const (
	// ScaleSmall is unit-test scale (sub-second end to end).
	ScaleSmall Scale = iota
	// ScaleBench is the scale used for the paper-reproduction numbers:
	// large enough for stable statistics, seconds to build.
	ScaleBench
	// ScaleLarge stresses the pipeline (hundreds of thousands of
	// extractions); used only by the throughput benchmarks.
	ScaleLarge
)

// Dataset bundles one generated world, its crawl, the extraction output and
// the gold standard — everything the experiments consume.
type Dataset struct {
	World       *world.World
	Corpus      *web.Corpus
	Suite       *extract.Suite
	Extractions []extract.Extraction
	Snapshot    *world.Snapshot
	Gold        *eval.GoldStandard

	// uniqueTriples caches the distinct extracted triples with their
	// support counts.
	uniqueOnce sync.Once
	unique     []UniqueTriple

	// mu guards only the cache maps below; the builds themselves run
	// outside it, serialized per key by each cell's once, so concurrent
	// callers of the same key share one computation (and one result
	// pointer) while different keys proceed in parallel.
	mu        sync.Mutex
	compiled  map[fusion.Granularity]*onceCell[*fusion.Compiled]
	extGraph  map[bool]*onceCell[*extract.Compiled]
	fuseCache map[string]*onceCell[*fusion.Result]
}

// UniqueTriple is one distinct extracted triple with its support counts.
type UniqueTriple struct {
	Triple kb.Triple
	// Extractors is the number of distinct extractors asserting the triple.
	Extractors int
	// URLs is the number of distinct Web pages asserting the triple.
	URLs int
	// Provenances is the total number of (extractor, URL) extraction
	// instances asserting the triple.
	Provenances int
}

// onceCell is a per-key singleflight cell: Get runs build exactly once and
// caches its value, so concurrent callers share one computation. A build
// panic is captured and re-raised for every caller — concurrent and future
// — so a failed build never poisons the cell into silently returning the
// zero value (sync.Once consumes its one shot even when f panics).
type onceCell[T any] struct {
	once     sync.Once
	val      T
	panicked any
}

func (c *onceCell[T]) Get(build func() T) T {
	c.once.Do(func() {
		defer func() { c.panicked = recover() }()
		c.val = build()
	})
	if c.panicked != nil {
		panic(c.panicked)
	}
	return c.val
}

// NewDataset builds a dataset at the given scale and seed, deterministic per
// (scale, seed).
func NewDataset(scale Scale, seed int64) *Dataset {
	wcfg := world.DefaultConfig(seed)
	ccfg := web.DefaultConfig(seed + 1)
	switch scale {
	case ScaleBench:
		wcfg = world.BenchConfig(seed)
		ccfg = web.BenchConfig(seed + 1)
	case ScaleLarge:
		wcfg = world.BenchConfig(seed)
		wcfg.NumEntities = 8000
		ccfg = web.BenchConfig(seed + 1)
		ccfg.NumSites = 8000
	}
	w := world.MustGenerate(wcfg)
	corpus := web.MustGenerate(w, ccfg)
	suite := extract.NewSuite(w, seed+2)
	ds := &Dataset{
		World:       w,
		Corpus:      corpus,
		Suite:       suite,
		Extractions: suite.Run(w, corpus),
		Snapshot:    world.BuildFreebase(w),
		compiled:    make(map[fusion.Granularity]*onceCell[*fusion.Compiled]),
		extGraph:    make(map[bool]*onceCell[*extract.Compiled]),
		fuseCache:   make(map[string]*onceCell[*fusion.Result]),
	}
	ds.Gold = eval.NewGoldStandard(ds.Snapshot)
	return ds
}

var (
	dsMu sync.Mutex
	// dsCache holds one cell per (scale, seed), so a slow build (ScaleLarge
	// takes seconds) never blocks lookups of other keys.
	dsCache = map[[2]int64]*onceCell[*Dataset]{}
)

// SharedDataset returns a process-wide cached dataset so that benchmarks and
// the kfbench tool build each (scale, seed) corpus once. The global lock
// covers only the cache lookup; the build runs under the entry's per-key
// once, so concurrent requests for different keys build in parallel and
// concurrent requests for the same key share one build.
func SharedDataset(scale Scale, seed int64) *Dataset {
	key := [2]int64{int64(scale), seed}
	dsMu.Lock()
	e, ok := dsCache[key]
	if !ok {
		e = &onceCell[*Dataset]{}
		dsCache[key] = e
	}
	dsMu.Unlock()
	return e.Get(func() *Dataset { return NewDataset(scale, seed) })
}

// Unique returns the distinct extracted triples with support counts.
func (ds *Dataset) Unique() []UniqueTriple {
	ds.uniqueOnce.Do(func() {
		type support struct {
			extractors map[string]bool
			urls       map[string]bool
		}
		idx := make(map[kb.Triple]int)
		var supports []support
		for _, x := range ds.Extractions {
			i, ok := idx[x.Triple]
			if !ok {
				i = len(ds.unique)
				idx[x.Triple] = i
				ds.unique = append(ds.unique, UniqueTriple{Triple: x.Triple})
				supports = append(supports, support{
					extractors: make(map[string]bool),
					urls:       make(map[string]bool),
				})
			}
			supports[i].extractors[x.Extractor] = true
			supports[i].urls[x.URL] = true
			ds.unique[i].Provenances++
		}
		for i := range ds.unique {
			ds.unique[i].Extractors = len(supports[i].extractors)
			ds.unique[i].URLs = len(supports[i].urls)
		}
	})
	return ds.unique
}

// Compiled returns the compiled claim graph for a provenance granularity,
// building it on first use. The graph depends only on (Extractions,
// granularity) — never on a fusion Config — so one compilation serves every
// preset and sweep at that granularity; Fuse goes through it. The build
// always uses default parallelism and partitioning (Config.Workers of the
// fusing calls bounds only their per-round stage loops), keeping the cached
// graph independent of which configuration happened to trigger it.
func (ds *Dataset) Compiled(g fusion.Granularity) *fusion.Compiled {
	ds.mu.Lock()
	if ds.compiled == nil {
		ds.compiled = make(map[fusion.Granularity]*onceCell[*fusion.Compiled])
	}
	e, ok := ds.compiled[g]
	if !ok {
		e = &onceCell[*fusion.Compiled]{}
		ds.compiled[g] = e
	}
	ds.mu.Unlock()
	return e.Get(func() *fusion.Compiled {
		return fusion.MustCompile(fusion.Claims(ds.Extractions, g))
	})
}

// ExtractionGraph returns the compiled extraction graph (extract.Compiled)
// for a source level, building it on first use — the extraction-layer
// sibling of Compiled: one interned (source × extractor × triple) graph per
// level serves every two-layer configuration, cached with the same per-key
// singleflight as the claim graphs. The build always uses default
// parallelism — safe to cache because compilation (including the
// shard-and-merge interning and the ext→statement incidence, both parallel
// at this scale) is bit-identical for every worker count, so the cached
// graph is independent of which configuration happened to trigger it and of
// the machine's core count.
func (ds *Dataset) ExtractionGraph(siteLevel bool) *extract.Compiled {
	ds.mu.Lock()
	if ds.extGraph == nil {
		ds.extGraph = make(map[bool]*onceCell[*extract.Compiled])
	}
	e, ok := ds.extGraph[siteLevel]
	if !ok {
		e = &onceCell[*extract.Compiled]{}
		ds.extGraph[siteLevel] = e
	}
	ds.mu.Unlock()
	return e.Get(func() *extract.Compiled {
		return extract.Compile(ds.Extractions, siteLevel)
	})
}

// Fuse runs (and caches) a fusion configuration over the dataset, reusing
// the granularity's compiled claim graph across configurations. Concurrent
// calls with the same cacheKey share one computation and one result pointer.
func (ds *Dataset) Fuse(cacheKey string, cfg fusion.Config) *fusion.Result {
	ds.mu.Lock()
	if ds.fuseCache == nil {
		ds.fuseCache = make(map[string]*onceCell[*fusion.Result])
	}
	e, ok := ds.fuseCache[cacheKey]
	if !ok {
		e = &onceCell[*fusion.Result]{}
		ds.fuseCache[cacheKey] = e
	}
	ds.mu.Unlock()
	return e.Get(func() *fusion.Result {
		return ds.Compiled(cfg.Granularity).MustFuse(cfg)
	})
}

// ClearFusionCache drops cached fusion results so benchmarks measure real
// recomputation instead of map lookups. Compiled claim graphs are kept: they
// are configuration-independent artifacts of the extraction set, and reusing
// them across configs is exactly what the experiment layer is meant to do.
func (ds *Dataset) ClearFusionCache() {
	ds.mu.Lock()
	ds.fuseCache = make(map[string]*onceCell[*fusion.Result])
	ds.mu.Unlock()
}

// LabeledAccuracy returns the gold-labeled accuracy over a triple set: the
// fraction of labeled triples that are true (and the labeled count).
func (ds *Dataset) LabeledAccuracy(triples []kb.Triple) (float64, int) {
	trueN, labeled := 0, 0
	for _, t := range triples {
		if label, ok := ds.Gold.Label(t); ok {
			labeled++
			if label {
				trueN++
			}
		}
	}
	if labeled == 0 {
		return 0, 0
	}
	return float64(trueN) / float64(labeled), labeled
}
