// Package exper implements the paper's evaluation section experiment by
// experiment: every table (1-3) and every figure (3-7, 9-22) has a function
// that regenerates it over a synthetic dataset and renders paper-style rows.
// The cmd/kfbench binary and the repository's benchmarks are thin wrappers
// around this package.
package exper

import (
	"sync"

	"kfusion/internal/eval"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Scale selects a dataset size.
type Scale int

const (
	// ScaleSmall is unit-test scale (sub-second end to end).
	ScaleSmall Scale = iota
	// ScaleBench is the scale used for the paper-reproduction numbers:
	// large enough for stable statistics, seconds to build.
	ScaleBench
	// ScaleLarge stresses the pipeline (hundreds of thousands of
	// extractions); used only by the throughput benchmarks.
	ScaleLarge
)

// Dataset bundles one generated world, its crawl, the extraction output and
// the gold standard — everything the experiments consume.
type Dataset struct {
	World       *world.World
	Corpus      *web.Corpus
	Suite       *extract.Suite
	Extractions []extract.Extraction
	Snapshot    *world.Snapshot
	Gold        *eval.GoldStandard

	// uniqueTriples caches the distinct extracted triples with their
	// support counts.
	uniqueOnce sync.Once
	unique     []uniqueTriple

	fuseMu    sync.Mutex
	fuseCache map[string]*fusion.Result
}

type uniqueTriple struct {
	triple     kb.Triple
	extractors map[string]bool
	urls       map[string]bool
	provs      int // (extractor, URL) pairs
}

// NewDataset builds a dataset at the given scale and seed, deterministic per
// (scale, seed).
func NewDataset(scale Scale, seed int64) *Dataset {
	wcfg := world.DefaultConfig(seed)
	ccfg := web.DefaultConfig(seed + 1)
	switch scale {
	case ScaleBench:
		wcfg = world.BenchConfig(seed)
		ccfg = web.BenchConfig(seed + 1)
	case ScaleLarge:
		wcfg = world.BenchConfig(seed)
		wcfg.NumEntities = 8000
		ccfg = web.BenchConfig(seed + 1)
		ccfg.NumSites = 8000
	}
	w := world.MustGenerate(wcfg)
	corpus := web.MustGenerate(w, ccfg)
	suite := extract.NewSuite(w, seed+2)
	ds := &Dataset{
		World:       w,
		Corpus:      corpus,
		Suite:       suite,
		Extractions: suite.Run(w, corpus),
		Snapshot:    world.BuildFreebase(w),
		fuseCache:   make(map[string]*fusion.Result),
	}
	ds.Gold = eval.NewGoldStandard(ds.Snapshot)
	return ds
}

var (
	dsMu    sync.Mutex
	dsCache = map[[2]int64]*Dataset{}
)

// SharedDataset returns a process-wide cached dataset so that benchmarks and
// the kfbench tool build each (scale, seed) corpus once.
func SharedDataset(scale Scale, seed int64) *Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := [2]int64{int64(scale), seed}
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds := NewDataset(scale, seed)
	dsCache[key] = ds
	return ds
}

// Unique returns the distinct extracted triples with support counts.
func (ds *Dataset) Unique() []uniqueTriple {
	ds.uniqueOnce.Do(func() {
		idx := make(map[kb.Triple]int)
		for _, x := range ds.Extractions {
			i, ok := idx[x.Triple]
			if !ok {
				i = len(ds.unique)
				idx[x.Triple] = i
				ds.unique = append(ds.unique, uniqueTriple{
					triple:     x.Triple,
					extractors: make(map[string]bool),
					urls:       make(map[string]bool),
				})
			}
			u := &ds.unique[i]
			u.extractors[x.Extractor] = true
			u.urls[x.URL] = true
			u.provs++
		}
	})
	return ds.unique
}

// Fuse runs (and caches) a fusion configuration over the dataset.
func (ds *Dataset) Fuse(cacheKey string, cfg fusion.Config) *fusion.Result {
	ds.fuseMu.Lock()
	if res, ok := ds.fuseCache[cacheKey]; ok {
		ds.fuseMu.Unlock()
		return res
	}
	ds.fuseMu.Unlock()
	claims := fusion.Claims(ds.Extractions, cfg.Granularity)
	res := fusion.MustFuse(claims, cfg)
	ds.fuseMu.Lock()
	ds.fuseCache[cacheKey] = res
	ds.fuseMu.Unlock()
	return res
}

// ClearFusionCache drops cached fusion results so benchmarks measure real
// recomputation instead of map lookups.
func (ds *Dataset) ClearFusionCache() {
	ds.fuseMu.Lock()
	ds.fuseCache = make(map[string]*fusion.Result)
	ds.fuseMu.Unlock()
}

// LabeledAccuracy returns the gold-labeled accuracy over a triple set: the
// fraction of labeled triples that are true (and the labeled count).
func (ds *Dataset) LabeledAccuracy(triples []kb.Triple) (float64, int) {
	trueN, labeled := 0, 0
	for _, t := range triples {
		if label, ok := ds.Gold.Label(t); ok {
			labeled++
			if label {
				trueN++
			}
		}
	}
	if labeled == 0 {
		return 0, 0
	}
	return float64(trueN) / float64(labeled), labeled
}
