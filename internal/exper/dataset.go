// Package exper implements the paper's evaluation section experiment by
// experiment: every table (1-3) and every figure (3-7, 9-22) has a function
// that regenerates it over a synthetic dataset and renders paper-style rows.
// The cmd/kfbench binary and the repository's benchmarks are thin wrappers
// around this package.
package exper

import (
	"fmt"
	"sync"

	"kfusion/internal/eval"
	"kfusion/internal/extract"
	"kfusion/internal/fusion"
	"kfusion/internal/kb"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Scale selects a dataset size.
type Scale int

const (
	// ScaleSmall is unit-test scale (sub-second end to end).
	ScaleSmall Scale = iota
	// ScaleBench is the scale used for the paper-reproduction numbers:
	// large enough for stable statistics, seconds to build.
	ScaleBench
	// ScaleLarge stresses the pipeline (hundreds of thousands of
	// extractions); used only by the throughput benchmarks.
	ScaleLarge
)

// Dataset bundles one generated world, its crawl, the extraction output and
// the gold standard — everything the experiments consume.
//
// A Dataset models an append-only extraction feed: AppendExtractions grows
// the feed and bumps the generation, and the compiled-graph caches are
// generation-aware — generation k's claim and extraction graphs are built by
// Append from generation k-1's cached graphs (bit-identical to recompiling
// the whole feed, a pinned invariant of the compile pipeline), so the
// experiment layer never re-interns the prefix. AppendExtractions is
// single-writer: it must not race with readers of Extractions or with cache
// lookups.
type Dataset struct {
	World       *world.World
	Corpus      *web.Corpus
	Suite       *extract.Suite
	Extractions []extract.Extraction
	Snapshot    *world.Snapshot
	Gold        *eval.GoldStandard

	// uniqueTriples caches the distinct extracted triples with their
	// support counts, per generation.
	uniqueMu  sync.Mutex
	uniqueGen int
	unique    []UniqueTriple

	// mu guards the generation counters and cache maps below; the builds
	// themselves run outside it, serialized per key by each cell's once, so
	// concurrent callers of the same key share one computation (and one
	// result pointer) while different keys proceed in parallel.
	mu sync.Mutex
	// gen counts AppendExtractions calls; cuts[k] is the feed length at
	// generation k, so generation k's graphs cover Extractions[:cuts[k]].
	gen       int
	cuts      []int
	compiled  map[fusion.Granularity]*claimGraphChain
	extGraph  map[bool]*graphChain[*extract.Compiled]
	fuseCache map[fuseKey]*onceCell[*fusion.Result]
}

// fuseKey scopes a cached fusion result to the generation it was fused on.
type fuseKey struct {
	gen int
	key string
}

// graphChain is one cache key's generation chain: one singleflight cell per
// generation. Cell k's build consumes cell k-1's graph (Append), so a lookup
// at generation k forces the chain below it exactly once.
type graphChain[T any] struct {
	cells []*onceCell[T]
}

// snapshot returns the chain's cells for generations 0..gen, extending the
// chain as needed. Must be called under the dataset lock; the returned
// slice is safe to use outside it (cells are never replaced).
func (c *graphChain[T]) snapshot(gen int) []*onceCell[T] {
	for len(c.cells) <= gen {
		c.cells = append(c.cells, &onceCell[T]{})
	}
	return append([]*onceCell[T](nil), c.cells[:gen+1]...)
}

// buildChain forces a generation chain bottom-up through its singleflight
// cells: cell 0 builds the base graph, cell k > 0 appends generation k onto
// the (recursively forced) generation k-1. Concurrent callers of any
// generation share one build per cell.
func buildChain[T any](cells []*onceCell[T], base func() T, appendGen func(prev T, k int) T) T {
	var build func(k int) T
	build = func(k int) T {
		return cells[k].Get(func() T {
			if k == 0 {
				return base()
			}
			return appendGen(build(k-1), k)
		})
	}
	return build(len(cells) - 1)
}

// claimGraphChain is the claim-graph generation chain for one granularity,
// plus the ClaimStream that carries the (provenance, triple) dedup set
// across batches. The stream is advanced exactly once per generation,
// inside that generation's cell build, so its state always matches the last
// built generation.
type claimGraphChain struct {
	graphChain[*fusion.Compiled]
	stream *fusion.ClaimStream
}

// UniqueTriple is one distinct extracted triple with its support counts.
type UniqueTriple struct {
	Triple kb.Triple
	// Extractors is the number of distinct extractors asserting the triple.
	Extractors int
	// URLs is the number of distinct Web pages asserting the triple.
	URLs int
	// Provenances is the total number of (extractor, URL) extraction
	// instances asserting the triple.
	Provenances int
}

// onceCell is a per-key singleflight cell: Get runs build exactly once and
// caches its value, so concurrent callers share one computation. A build
// panic is captured and re-raised for every caller — concurrent and future
// — so a failed build never poisons the cell into silently returning the
// zero value (sync.Once consumes its one shot even when f panics).
type onceCell[T any] struct {
	once     sync.Once
	val      T
	panicked any
}

func (c *onceCell[T]) Get(build func() T) T {
	c.once.Do(func() {
		defer func() { c.panicked = recover() }()
		c.val = build()
	})
	if c.panicked != nil {
		panic(c.panicked)
	}
	return c.val
}

// scaleConfigs maps a Scale to its world and corpus generator configs —
// the single definition NewDataset and SegmentExtractions share.
func scaleConfigs(scale Scale, seed int64) (world.Config, web.Config) {
	wcfg := world.DefaultConfig(seed)
	ccfg := web.DefaultConfig(seed + 1)
	switch scale {
	case ScaleBench:
		wcfg = world.BenchConfig(seed)
		ccfg = web.BenchConfig(seed + 1)
	case ScaleLarge:
		wcfg = world.BenchConfig(seed)
		wcfg.NumEntities = 8000
		ccfg = web.BenchConfig(seed + 1)
		ccfg.NumSites = 8000
	}
	return wcfg, ccfg
}

// SegmentExtractions generates segment i of a web-scale extraction feed: one
// ScaleLarge-sized world and crawl at a segment-derived seed, extracted and
// returned without building Dataset caches or a gold standard. Web-scale
// corpora (tens of millions of claims) are synthesized as a sequence of such
// segments streamed to disk — each segment is an independent crawl slice, so
// generation memory stays bounded by one segment regardless of the corpus
// target. Deterministic per (seed, segment); distinct segments use distinct
// seeds, so their worlds (and hence claims) are almost entirely disjoint.
func SegmentExtractions(seed int64, segment int) []extract.Extraction {
	s := seed + int64(segment)*1_000_003
	wcfg, ccfg := scaleConfigs(ScaleLarge, s)
	w := world.MustGenerate(wcfg)
	corpus := web.MustGenerate(w, ccfg)
	return extract.NewSuite(w, s+2).Run(w, corpus)
}

// NewDataset builds a dataset at the given scale and seed, deterministic per
// (scale, seed).
func NewDataset(scale Scale, seed int64) *Dataset {
	wcfg, ccfg := scaleConfigs(scale, seed)
	w := world.MustGenerate(wcfg)
	corpus := web.MustGenerate(w, ccfg)
	suite := extract.NewSuite(w, seed+2)
	ds := &Dataset{
		World:       w,
		Corpus:      corpus,
		Suite:       suite,
		Extractions: suite.Run(w, corpus),
		Snapshot:    world.BuildFreebase(w),
		compiled:    make(map[fusion.Granularity]*claimGraphChain),
		extGraph:    make(map[bool]*graphChain[*extract.Compiled]),
		fuseCache:   make(map[fuseKey]*onceCell[*fusion.Result]),
	}
	ds.cuts = []int{len(ds.Extractions)}
	ds.Gold = eval.NewGoldStandard(ds.Snapshot)
	return ds
}

// Generation reports how many extraction batches have been appended (0 for
// a freshly synthesized dataset).
func (ds *Dataset) Generation() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.gen
}

// AppendExtractions grows the extraction feed by one batch and advances the
// dataset to the next generation. Subsequent Compiled / ExtractionGraph /
// Fuse calls see the grown feed; their graphs are built incrementally from
// the previous generation's cached graphs via Append, never recompiling the
// prefix. Cached fusion results of earlier generations stay cached (their
// keys are generation-scoped) but are not reused. Single-writer: must not
// race with readers.
func (ds *Dataset) AppendExtractions(xs []extract.Extraction) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.Extractions = append(ds.Extractions, xs...)
	ds.gen++
	ds.cuts = append(ds.cuts, len(ds.Extractions))
}

var (
	dsMu sync.Mutex
	// dsCache holds one cell per (scale, seed), so a slow build (ScaleLarge
	// takes seconds) never blocks lookups of other keys.
	dsCache = map[[2]int64]*onceCell[*Dataset]{}
)

// SharedDataset returns a process-wide cached dataset so that benchmarks and
// the kfbench tool build each (scale, seed) corpus once. The global lock
// covers only the cache lookup; the build runs under the entry's per-key
// once, so concurrent requests for different keys build in parallel and
// concurrent requests for the same key share one build.
func SharedDataset(scale Scale, seed int64) *Dataset {
	key := [2]int64{int64(scale), seed}
	dsMu.Lock()
	e, ok := dsCache[key]
	if !ok {
		e = &onceCell[*Dataset]{}
		dsCache[key] = e
	}
	dsMu.Unlock()
	return e.Get(func() *Dataset { return NewDataset(scale, seed) })
}

// Unique returns the distinct extracted triples with support counts, for
// the current generation of the feed.
func (ds *Dataset) Unique() []UniqueTriple {
	ds.mu.Lock()
	gen := ds.gen
	xs := ds.Extractions[:ds.cuts[gen]]
	ds.mu.Unlock()
	ds.uniqueMu.Lock()
	defer ds.uniqueMu.Unlock()
	if ds.unique == nil || ds.uniqueGen != gen {
		ds.unique = uniqueTriples(xs)
		ds.uniqueGen = gen
	}
	return ds.unique
}

// uniqueTriples computes the distinct triples of an extraction stream with
// their support counts.
func uniqueTriples(xs []extract.Extraction) []UniqueTriple {
	type support struct {
		extractors map[string]bool
		urls       map[string]bool
	}
	idx := make(map[kb.Triple]int)
	var unique []UniqueTriple
	var supports []support
	for _, x := range xs {
		i, ok := idx[x.Triple]
		if !ok {
			i = len(unique)
			idx[x.Triple] = i
			unique = append(unique, UniqueTriple{Triple: x.Triple})
			supports = append(supports, support{
				extractors: make(map[string]bool),
				urls:       make(map[string]bool),
			})
		}
		supports[i].extractors[x.Extractor] = true
		supports[i].urls[x.URL] = true
		unique[i].Provenances++
	}
	for i := range unique {
		unique[i].Extractors = len(supports[i].extractors)
		unique[i].URLs = len(supports[i].urls)
	}
	return unique
}

// Compiled returns the compiled claim graph for a provenance granularity at
// the dataset's current generation, building it on first use. The graph
// depends only on (Extractions, granularity) — never on a fusion Config —
// so one compilation serves every preset and sweep at that granularity;
// Fuse goes through it. After AppendExtractions, the new generation's graph
// is built incrementally: the appended batch flattens through the
// granularity's ClaimStream (carrying the cross-batch dedup set) and joins
// the previous generation's cached graph via fusion's Append — bit-identical
// to compiling the whole feed. The build always uses default parallelism,
// keeping the cached graph independent of which configuration happened to
// trigger it.
func (ds *Dataset) Compiled(g fusion.Granularity) *fusion.Compiled {
	ds.mu.Lock()
	chain, ok := ds.compiled[g]
	if !ok {
		chain = &claimGraphChain{stream: fusion.NewClaimStream(g)}
		ds.compiled[g] = chain
	}
	cuts := ds.cuts
	xs := ds.Extractions
	cells := chain.snapshot(ds.gen)
	ds.mu.Unlock()

	return buildChain(cells,
		func() *fusion.Compiled {
			return fusion.MustCompile(chain.stream.Add(xs[:cuts[0]]))
		},
		func(prev *fusion.Compiled, k int) *fusion.Compiled {
			return prev.MustAppend(chain.stream.Add(xs[cuts[k-1]:cuts[k]]))
		})
}

// ExtractionGraph returns the compiled extraction graph (extract.Compiled)
// for a source level at the dataset's current generation, building it on
// first use — the extraction-layer sibling of Compiled: one interned
// (source × extractor × triple) graph per level serves every two-layer
// configuration, cached with the same per-key singleflight as the claim
// graphs, and grown across generations with extract's Append. The build
// always uses default parallelism — safe to cache because compilation and
// Append are bit-identical for every worker count, so the cached graph is
// independent of which configuration happened to trigger it and of the
// machine's core count.
func (ds *Dataset) ExtractionGraph(siteLevel bool) *extract.Compiled {
	ds.mu.Lock()
	chain, ok := ds.extGraph[siteLevel]
	if !ok {
		chain = &graphChain[*extract.Compiled]{}
		ds.extGraph[siteLevel] = chain
	}
	cuts := ds.cuts
	xs := ds.Extractions
	cells := chain.snapshot(ds.gen)
	ds.mu.Unlock()

	return buildChain(cells,
		func() *extract.Compiled {
			return extract.Compile(xs[:cuts[0]], siteLevel)
		},
		func(prev *extract.Compiled, k int) *extract.Compiled {
			return prev.Append(xs[cuts[k-1]:cuts[k]])
		})
}

// Fuse runs (and caches) a fusion configuration over the dataset's current
// generation, reusing the granularity's compiled claim graph across
// configurations. Concurrent calls with the same cacheKey share one
// computation and one result pointer; results are scoped per generation.
func (ds *Dataset) Fuse(cacheKey string, cfg fusion.Config) *fusion.Result {
	ds.mu.Lock()
	k := fuseKey{gen: ds.gen, key: cacheKey}
	e, ok := ds.fuseCache[k]
	if !ok {
		e = &onceCell[*fusion.Result]{}
		ds.fuseCache[k] = e
	}
	ds.mu.Unlock()
	return e.Get(func() *fusion.Result {
		return ds.Compiled(cfg.Granularity).MustFuse(cfg)
	})
}

// ClearFusionCache drops cached fusion results so benchmarks measure real
// recomputation instead of map lookups. Compiled claim graphs are kept: they
// are configuration-independent artifacts of the extraction set, and reusing
// them across configs is exactly what the experiment layer is meant to do.
func (ds *Dataset) ClearFusionCache() {
	ds.mu.Lock()
	ds.fuseCache = make(map[fuseKey]*onceCell[*fusion.Result])
	ds.mu.Unlock()
}

// LabeledAccuracy returns the gold-labeled accuracy over a triple set: the
// fraction of labeled triples that are true (and the labeled count).
func (ds *Dataset) LabeledAccuracy(triples []kb.Triple) (float64, int) {
	trueN, labeled := 0, 0
	for _, t := range triples {
		if label, ok := ds.Gold.Label(t); ok {
			labeled++
			if label {
				trueN++
			}
		}
	}
	if labeled == 0 {
		return 0, 0
	}
	return float64(trueN) / float64(labeled), labeled
}

// HydrateClaimGraph seeds the generation-0 claim graph for a granularity
// with a graph restored from persistent state (a genstore snapshot), so an
// experiment run warm-boots instead of recompiling the feed. The caller owns
// the correspondence: c must be the compiled form of the dataset's current
// extraction feed at g. The granularity's ClaimStream is reconstructed from
// the graph, so later AppendExtractions generations dedup and append exactly
// as if the graph had been compiled in-process. Fails if a graph for g was
// already built or the dataset has advanced past generation 0.
func (ds *Dataset) HydrateClaimGraph(g fusion.Granularity, c *fusion.Compiled) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.gen != 0 {
		return fmt.Errorf("exper: hydrate at generation %d, want 0", ds.gen)
	}
	if _, ok := ds.compiled[g]; ok {
		return fmt.Errorf("exper: claim graph at granularity %s already built", g)
	}
	chain := &claimGraphChain{stream: fusion.SeedClaimStream(g, c)}
	chain.snapshot(0)[0].Get(func() *fusion.Compiled { return c })
	ds.compiled[g] = chain
	return nil
}

// HydrateExtractionGraph seeds the generation-0 extraction graph for a
// source level with a graph restored from persistent state — the
// extraction-layer sibling of HydrateClaimGraph, under the same contract.
func (ds *Dataset) HydrateExtractionGraph(siteLevel bool, g *extract.Compiled) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.gen != 0 {
		return fmt.Errorf("exper: hydrate at generation %d, want 0", ds.gen)
	}
	if _, ok := ds.extGraph[siteLevel]; ok {
		return fmt.Errorf("exper: extraction graph at site-level=%v already built", siteLevel)
	}
	chain := &graphChain[*extract.Compiled]{}
	chain.snapshot(0)[0].Get(func() *extract.Compiled { return g })
	ds.extGraph[siteLevel] = chain
	return nil
}
