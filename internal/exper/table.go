package exper

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: paper-style rows plus free-form
// notes (the qualitative claims to check against the paper).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
