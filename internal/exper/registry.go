package exper

// Experiment binds a paper artifact to the function that regenerates it.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Dataset) *Table
}

// Registry lists every reproduced table and figure in paper order.
var Registry = []Experiment{
	{"table1", "Overview of extracted knowledge (Table 1)", Table1},
	{"table2", "Extractor volume and quality (Table 2)", Table2},
	{"table3", "Functional vs non-functional predicates (Table 3)", Table3},
	{"fig3", "Contribution and overlap by content type (Figure 3)", Figure3},
	{"fig4", "Distribution of predicate accuracy (Figure 4)", Figure4},
	{"fig5", "Best-vs-worst extractor gap per page (Figure 5)", Figure5},
	{"fig6", "Triple accuracy by #extractors (Figure 6)", Figure6},
	{"fig7", "Triple accuracy by #URLs (Figure 7)", Figure7},
	{"fig9", "Basic fusion models (Figure 9)", Figure9},
	{"fig10", "Provenance granularity (Figure 10)", Figure10},
	{"fig11", "Provenance selection (Figure 11)", Figure11},
	{"fig12", "Gold-standard initialization (Figure 12)", Figure12},
	{"fig13", "Cumulative refinements (Figure 13)", Figure13},
	{"fig14", "Convergence and sampling (Figure 14)", Figure14},
	{"fig15", "PR curves (Figure 15)", Figure15},
	{"fig16", "Probability distribution (Figure 16)", Figure16},
	{"fig17", "Error analysis (Figure 17)", Figure17},
	{"fig18", "Accuracy by #provenances and #extractors (Figure 18)", Figure18},
	{"fig19", "Kappa across extractor pairs (Figure 19)", Figure19},
	{"fig20", "#Truths per data item (Figure 20)", Figure20},
	{"fig21", "Coverage and accuracy by confidence (Figure 21)", Figure21},
	{"fig22", "Coverage by confidence threshold (Figure 22)", Figure22},
	{"abl-twolayer", "Ablation: two-layer source/extractor model (§5.1)", AblationTwoLayer},
	{"abl-multitruth", "Ablation: latent truth model (§5.3)", AblationMultiTruth},
	{"abl-funcdegree", "Ablation: functionality degrees (§5.3)", AblationFuncDegree},
	{"abl-hierval", "Ablation: hierarchical values (§5.4)", AblationHierValues},
	{"abl-confweight", "Ablation: confidence-aware fusion (§5.5)", AblationConfidence},
	{"abl-copydetect", "Ablation: copy detection between sources (§5.2)", AblationCopyDetect},
	{"abl-softlcwa", "Ablation: LCWA with label confidence (§5.7)", AblationSoftLCWA},
	{"abl-valuesim", "Ablation: value-similarity support (§5.4)", AblationValueSim},
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}
