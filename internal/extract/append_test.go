package extract

import (
	"fmt"
	"reflect"
	"testing"

	"kfusion/internal/kb"
)

// appendGraphsEqual compares every structural field of two compiled
// extraction graphs. Empty and nil slices are interchangeable.
func appendGraphsEqual(t *testing.T, name string, got, want *Compiled) {
	t.Helper()
	eq := func(field string, g, w any) {
		t.Helper()
		gv, wv := reflect.ValueOf(g), reflect.ValueOf(w)
		if gv.Kind() == reflect.Slice && gv.Len() == 0 && wv.Len() == 0 {
			return
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: field %s differs:\n got %v\nwant %v", name, field, g, w)
		}
	}
	eq("siteLevel", got.siteLevel, want.siteLevel)
	eq("sources", got.sources, want.sources)
	eq("extractors", got.extractors, want.extractors)
	eq("stSource", got.stSource, want.stSource)
	eq("stTriple", got.stTriple, want.stTriple)
	eq("stExtStart", got.stExtStart, want.stExtStart)
	eq("stExts", got.stExts, want.stExts)
	eq("srcExtStart", got.srcExtStart, want.srcExtStart)
	eq("srcExts", got.srcExts, want.srcExts)
	eq("srcStStart", got.srcStStart, want.srcStStart)
	eq("srcSts", got.srcSts, want.srcSts)
	eq("triples", got.triples, want.triples)
	eq("tripleStStart", got.tripleStStart, want.tripleStStart)
	eq("tripleSts", got.tripleSts, want.tripleSts)
	eq("tripleExts", got.tripleExts, want.tripleExts)
	eq("items", got.items, want.items)
	eq("itemOfTriple", got.itemOfTriple, want.itemOfTriple)
	eq("itemTripleStart", got.itemTripleStart, want.itemTripleStart)
	eq("itemTriples", got.itemTriples, want.itemTriples)
	eq("itemStatements", got.itemStatements, want.itemStatements)
	eq("extStStart", got.extStStart, want.extStStart)
	eq("extSts", got.extSts, want.extSts)
	eq("extHits", got.extHits, want.extHits)
	eq("extBlocks", got.extBlocks, want.extBlocks)
	eq("maxItemTriples", got.maxItemTriples, want.maxItemTriples)
}

// appendStream synthesizes a deterministic extraction stream in which later
// batches revisit earlier sources and triples, add new extractors to
// existing sources (the case that re-shapes the ext→statement incidence),
// flip existing (extractor, statement) cells from miss to hit, and introduce
// brand-new sources, items and triples.
func appendStream(n int) []Extraction {
	xs := make([]Extraction, n)
	for i := range xs {
		nExt := 3 + i/(n/3+1) // the extractor fleet grows as the feed grows
		xs[i] = Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", i%(n/6+1))),
				Predicate: kb.PredicateID(fmt.Sprintf("p%d", i%3)),
				Object:    kb.StringObject(fmt.Sprintf("v%d", (i*7)%5)),
			},
			Extractor:  fmt.Sprintf("X%d", (i*13)%nExt),
			Pattern:    fmt.Sprintf("pat%d", i%2),
			URL:        fmt.Sprintf("http://site%d.example/page%d", i%17, (i*3)%41),
			Site:       fmt.Sprintf("site%d.example", i%17),
			Confidence: -1,
		}
	}
	return xs
}

// TestExtractAppendMatchesRecompile is the tentpole contract at the
// extraction layer: appending a batch produces the exact graph a fresh
// compile of the concatenated stream builds — same IDs for every
// pre-existing source, extractor, triple, item and statement, same CSR and
// incidence bits — at several split points, both source levels, and several
// worker counts.
func TestExtractAppendMatchesRecompile(t *testing.T) {
	xs := appendStream(3000)
	for _, siteLevel := range []bool{false, true} {
		for _, split := range []int{0, 1, 1500, 2700, 2999, 3000} {
			for _, workers := range []int{1, 2, 4, 8} {
				base := CompileWorkers(xs[:split], siteLevel, workers)
				next := base.AppendWorkers(xs[split:], workers)
				want := CompileWorkers(xs, siteLevel, workers)
				appendGraphsEqual(t, fmt.Sprintf("site=%v split=%d workers=%d", siteLevel, split, workers), next, want)
				if next.Generation() != 1 {
					t.Fatalf("generation = %d, want 1", next.Generation())
				}
			}
		}
	}
}

// TestExtractAppendChain appends in several batches — the streaming shape —
// and requires the final generation to equal one big compile.
func TestExtractAppendChain(t *testing.T) {
	xs := appendStream(4000)
	g := Compile(xs[:1000], true)
	for _, cut := range [][2]int{{1000, 1800}, {1800, 1801}, {1801, 3990}, {3990, 4000}} {
		g = g.Append(xs[cut[0]:cut[1]])
	}
	if g.Generation() != 4 {
		t.Fatalf("generation = %d, want 4", g.Generation())
	}
	appendGraphsEqual(t, "chain", g, Compile(xs, true))
}

// TestExtractAppendAboveShardThreshold crosses the parallel interning
// threshold so the append extends a graph built by the shard-and-merge path
// (pairwise-merged key spaces).
func TestExtractAppendAboveShardThreshold(t *testing.T) {
	xs := appendStream(internShardThreshold + 4096)
	split := internShardThreshold + 256
	base := CompileWorkers(xs[:split], true, 4)
	next := base.AppendWorkers(xs[split:], 4)
	appendGraphsEqual(t, "sharded", next, CompileWorkers(xs, true, 4))
}

// TestExtractAppendLeavesPreviousGenerationUsable pins the generational
// contract: the base graph's arrays must be untouched by an append, and a
// second append on the consumed base (index rebuilt) must still match.
func TestExtractAppendLeavesPreviousGenerationUsable(t *testing.T) {
	xs := appendStream(2000)
	base := Compile(xs[:1500], false)
	want := CompileWorkers(xs[:1500], false, 1)
	next := base.Append(xs[1500:])
	appendGraphsEqual(t, "base-untouched", base, want)
	if next.NumStatements() < base.NumStatements() {
		t.Fatal("appended generation lost statements")
	}
	again := base.Append(xs[1500:])
	appendGraphsEqual(t, "rebuilt-index", again, next)
}

// TestInternParallelPairwiseMerge re-pins the parallel interning path —
// now pairwise-merged — against the sequential loop at several worker
// counts (the graphs must be identical in every field).
func TestInternParallelPairwiseMerge(t *testing.T) {
	xs := appendStream(internShardThreshold + internShardThreshold/2)
	want := CompileWorkers(xs, true, 1)
	for _, workers := range []int{2, 3, 7, 8} {
		got := CompileWorkers(xs, true, workers)
		appendGraphsEqual(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}
