package extract

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
)

// Compiled is the interned, immutable form of an extraction set for the
// models that need the full three-dimensional (source × extractor × triple)
// structure — today the two-layer model of internal/twolayer, which must see
// which extractors did and did NOT extract a statement from a source. It is
// the extraction-layer sibling of fusion.Compiled: every source, extractor,
// (source, triple) statement pair, candidate triple and data item is interned
// into a dense int32 ID with CSR adjacency, built once, and then every EM
// round iterates flat slices — no maps, no string hashing.
//
// ID spaces and invariants (all deterministic for a fixed extraction order,
// independent of the worker count):
//
//   - Source, extractor, triple, item and statement IDs are assigned in
//     first-occurrence order of the extraction stream.
//   - A statement is a distinct (source, triple) pair; its extractor list
//     holds the distinct extractors that produced it there, in
//     first-extraction order.
//   - SourceExtractors lists the distinct extractors with at least one
//     extraction from the source, in first-extraction order — the "which
//     extractors processed this source" set the two-layer model scores
//     silence against.
//   - SourceStatements, TripleStatements and ItemTriples are CSR spans in
//     ascending ID order (the same order the map-based reference model
//     appends them in).
//   - ExtBlockStatements spans (the ext→statement CSR) list, per extractor,
//     every statement whose source the extractor processed, in ascending
//     statement order, with a hit flag marking the statements it actually
//     extracted — pre-cut into csr.ReduceBlockSize blocks so the two-layer
//     M-step can reduce per-extractor sums in parallel with a fixed,
//     worker-independent addition tree.
//
// A Compiled is bound to its source level: URL-level or site-level keys are
// chosen at Compile time, mirroring how fusion.Compiled is bound to its
// claims' provenance granularity. It holds no model state, so one Compiled
// can serve any number of two-layer configurations concurrently.
type Compiled struct {
	siteLevel bool

	sources    []string // source ID -> URL or site key
	extractors []string // extractor ID -> name

	// Statements: distinct (source, triple) pairs.
	stSource   []int32 // statement ID -> source ID
	stTriple   []int32 // statement ID -> triple ID
	stExtStart []int32 // len nStatements+1; span into stExts
	stExts     []int32 // extractor IDs per statement, first-extraction order

	// Per-source adjacency.
	srcExtStart []int32 // len nSources+1; span into srcExts
	srcExts     []int32 // distinct extractor IDs per source, first-extraction order
	srcStStart  []int32 // len nSources+1; span into srcSts
	srcSts      []int32 // statement IDs per source, ascending

	// Candidate triples and data items.
	triples         []kb.Triple   // triple ID -> triple
	tripleStStart   []int32       // len nTriples+1; span into tripleSts
	tripleSts       []int32       // statement IDs per triple, ascending
	tripleExts      []int32       // triple ID -> distinct extractor count
	items           []kb.DataItem // item ID -> data item
	itemOfTriple    []int32       // triple ID -> item ID
	itemTripleStart []int32       // len nItems+1; span into itemTriples
	itemTriples     []int32       // triple IDs per item, ascending
	itemStatements  []int32       // item ID -> total statements on the item

	// Ext→statement incidence: for each extractor, the statements whose
	// source it processed (ascending statement order), with a parallel hit
	// flag for the statements it extracted. This is the two-layer M-step's
	// reduction domain; extBlocks is its fixed csr.ReduceBlockSize partition.
	extStStart []int32     // len nExtractors+1; span into extSts/extHits
	extSts     []int32     // statement IDs per extractor, ascending
	extHits    []bool      // aligned with extSts: extractor extracted it
	extHitsF   []float64   // extHits as 0/1 floats (derived; see buildExtHitsF)
	extBlocks  []csr.Block // fixed-size blocks covering the extStStart spans

	// maxItemTriples is the largest candidate count of any single item; it
	// sizes per-worker scoring scratch.
	maxItemTriples int

	// gen counts the Appends that produced this handle (0 for a fresh
	// Compile).
	gen int

	// idx is the interning byproduct Append consumes: the key -> ID maps of
	// every interned space. The first Append on this generation takes it
	// (and hands it to the generation it returns); a later Append on the
	// same generation rebuilds it from the graph — correct, just slower.
	// Guarded by mu; everything else in the struct is immutable.
	mu  sync.Mutex
	idx *extractIndex
}

// extractIndex is the mutable interning state a compilation leaves behind so
// Append can extend the ID spaces without re-hashing the prefix.
type extractIndex struct {
	src  map[string]int32
	ext  map[string]int32
	tri  map[kb.Triple]int32
	item map[kb.DataItem]int32
	st   map[stKey]int32
}

func newExtractIndex(n int) *extractIndex {
	return &extractIndex{
		src:  make(map[string]int32, 1024),
		ext:  make(map[string]int32, 32),
		tri:  make(map[kb.Triple]int32, n),
		item: make(map[kb.DataItem]int32, n),
		st:   make(map[stKey]int32, n),
	}
}

// Compile interns an extraction set into a reusable Compiled graph using all
// available cores. siteLevel keys sources at site level instead of URL level.
// The graph is deterministic for a fixed extraction order and independent of
// available parallelism.
func Compile(xs []Extraction, siteLevel bool) *Compiled {
	return CompileWorkers(xs, siteLevel, 0)
}

// CompileWorkers is Compile with an explicit bound on the CSR-building and
// interning goroutines (0 = GOMAXPROCS). The graph is identical for any
// workers value.
func CompileWorkers(xs []Extraction, siteLevel bool, workers int) *Compiled {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Compiled{siteLevel: siteLevel}
	g.idx = newExtractIndex(len(xs))

	// Interning pass: every ID space is assigned in first-occurrence order of
	// the extraction stream. Large inputs run a parallel shard-and-merge pass
	// (internParallel); small ones intern sequentially — both produce the
	// exact same graph and leave the same index behind for Append.
	var stExtLists, srcExtLists [][]int32
	if len(xs) >= internShardThreshold && workers > 1 {
		stExtLists, srcExtLists = internParallel(g, g.idx, xs, siteLevel, workers)
	} else {
		stExtLists, srcExtLists = internSequential(g, g.idx, xs, siteLevel)
	}

	// ---- Flatten the per-statement and per-source extractor lists ----
	g.stExtStart, g.stExts = flattenLists(stExtLists)
	g.srcExtStart, g.srcExts = flattenLists(srcExtLists)

	// ---- CSR adjacency by parallel counting sort ----
	nSt := len(g.stSource)
	nTriples := len(g.triples)
	nItems := len(g.items)
	g.srcStStart, g.srcSts = csr.ByGroup(g.stSource, len(g.sources), workers)
	g.tripleStStart, g.tripleSts = csr.ByGroup(g.stTriple, nTriples, workers)
	g.itemTripleStart, g.itemTriples = csr.ByGroup(g.itemOfTriple, nItems, workers)
	for i := 0; i < nItems; i++ {
		if n := int(g.itemTripleStart[i+1] - g.itemTripleStart[i]); n > g.maxItemTriples {
			g.maxItemTriples = n
		}
	}

	// ---- Config-independent support counts ----
	// Statements per item (the two-layer result's ItemProvenances).
	g.itemStatements = make([]int32, nItems)
	for si := 0; si < nSt; si++ {
		g.itemStatements[g.itemOfTriple[g.stTriple[si]]]++
	}
	// Distinct extractors per triple, in parallel over triple ranges: each
	// worker stamps a private seen-set with the triple ID, so counts are
	// exact and independent of the split.
	g.tripleExts = make([]int32, nTriples)
	tw := workers
	if nSt < internShardThreshold {
		tw = 1 // goroutine setup would dominate
	}
	csr.ParallelRange(nTriples, tw, func(_, lo, hi int) {
		seen := make([]int32, len(g.extractors))
		for i := range seen {
			seen[i] = -1
		}
		for t := lo; t < hi; t++ {
			g.recountTriple(int32(t), seen)
		}
	})

	g.buildExtStatements(workers)
	return g
}

// recountTriple recomputes one triple's distinct-extractor count using a
// caller-owned seen-set stamped with the triple ID. Shared by the compile
// pass and Append's touched-triple recount so both produce identical counts.
func (g *Compiled) recountTriple(t int32, seen []int32) {
	cnt := int32(0)
	for _, si := range g.tripleSts[g.tripleStStart[t]:g.tripleStStart[t+1]] {
		for _, e := range g.stExts[g.stExtStart[si]:g.stExtStart[si+1]] {
			if seen[e] != t {
				seen[e] = t
				cnt++
			}
		}
	}
	g.tripleExts[t] = cnt
}

// buildExtStatements materializes the ext→statement incidence: for every
// extractor, the statements whose source it processed (ascending statement
// order) with a hit flag for the ones it extracted — the two-layer M-step's
// per-extractor reduction domain, walked there in csr.ReduceBlockSize blocks
// (extBlocks). Built with the same parallel counting-sort scheme as
// csr.ByGroup, except each statement scatters into several extractor spans;
// each (worker, extractor) cell owns a disjoint output range ordered by
// worker, so the result is identical for every workers value.
func (g *Compiled) buildExtStatements(workers int) {
	nSt := len(g.stSource)
	nExt := len(g.extractors)
	ew := workers
	if nSt < internShardThreshold {
		ew = 1 // goroutine setup would dominate
	}
	if ew > nSt {
		ew = nSt
	}
	if ew < 1 {
		ew = 1
	}
	counts := make([]int32, ew*nExt)
	csr.ParallelRange(nSt, ew, func(w, lo, hi int) {
		c := counts[w*nExt : (w+1)*nExt]
		for si := lo; si < hi; si++ {
			for _, x := range g.SourceExtractors(g.stSource[si]) {
				c[x]++
			}
		}
	})
	// The incidence is a product space — sum over sources of
	// |extractors(src)| x |statements(src)| — so unlike the ID spaces it is
	// not bounded by the extraction count; run the prefix sum in int64 and
	// refuse to build corrupt int32 spans if it ever crosses 2^31.
	g.extStStart = make([]int32, nExt+1)
	run := int64(0)
	for x := 0; x < nExt; x++ {
		g.extStStart[x] = int32(run)
		for w := 0; w < ew; w++ {
			c := counts[w*nExt+x]
			counts[w*nExt+x] = int32(run)
			run += int64(c)
		}
	}
	if run > math.MaxInt32 {
		panic(fmt.Sprintf("extract: ext→statement incidence has %d entries, exceeding the int32 CSR offset space; shard the extraction set", run))
	}
	g.extStStart[nExt] = int32(run)
	g.extSts = make([]int32, run)
	g.extHits = make([]bool, run)
	csr.ParallelRange(nSt, ew, func(w, lo, hi int) {
		next := counts[w*nExt : (w+1)*nExt]
		stamp := make([]int32, nExt)
		for i := range stamp {
			stamp[i] = -1
		}
		for si := lo; si < hi; si++ {
			for _, x := range g.StatementExtractors(int32(si)) {
				stamp[x] = int32(si)
			}
			for _, x := range g.SourceExtractors(g.stSource[si]) {
				g.extSts[next[x]] = int32(si)
				g.extHits[next[x]] = stamp[x] == int32(si)
				next[x]++
			}
		}
	})
	g.extBlocks = csr.SpanBlocks(g.extStStart)
	g.buildExtHitsF()
}

// buildExtHitsF derives the float mirror of extHits: exactly 0 or 1 per
// entry, so multiplying an accumulation term by it reproduces the branchy
// hit test bit-for-bit (x*1 == x, and adding x*0 == +0 leaves a
// non-negative sum unchanged) while keeping the two-layer M-step block loop
// branch-free. Derived state, rebuilt on snapshot load like extBlocks.
func (g *Compiled) buildExtHitsF() {
	g.extHitsF = make([]float64, len(g.extHits))
	for i, h := range g.extHits {
		if h {
			g.extHitsF[i] = 1
		}
	}
}

// internShardThreshold is the extraction count below which interning runs
// sequentially: per-shard map setup and the ordered merge only pay off once
// the single-threaded hashing loop dominates (the shared cutoff of every
// shard-and-merge pass; tuned in internal/csr).
const internShardThreshold = csr.ParallelThreshold

// stKey identifies a statement: a distinct (source, triple) pair.
type stKey struct{ src, tri int32 }

// internSequential interns the extraction stream in order with one map per
// ID space (the maps live in idx and are retained for Append). The
// per-statement and per-source extractor lists are deduplicated here too;
// both are short (bounded by the extractor fleet), so linear scans beat
// maps.
func internSequential(g *Compiled, idx *extractIndex, xs []Extraction, siteLevel bool) (stExtLists, srcExtLists [][]int32) {
	for i := range xs {
		x := &xs[i]
		key := x.URL
		if siteLevel {
			key = x.Site
		}
		src, ok := idx.src[key]
		if !ok {
			src = int32(len(g.sources))
			idx.src[key] = src
			g.sources = append(g.sources, key)
			srcExtLists = append(srcExtLists, nil)
		}
		ext, ok := idx.ext[x.Extractor]
		if !ok {
			ext = int32(len(g.extractors))
			idx.ext[x.Extractor] = ext
			g.extractors = append(g.extractors, x.Extractor)
		}
		if !containsID(srcExtLists[src], ext) {
			srcExtLists[src] = append(srcExtLists[src], ext)
		}
		tri, ok := idx.tri[x.Triple]
		if !ok {
			tri = int32(len(g.triples))
			idx.tri[x.Triple] = tri
			g.triples = append(g.triples, x.Triple)
			item, iok := idx.item[x.Triple.Item()]
			if !iok {
				item = int32(len(g.items))
				idx.item[x.Triple.Item()] = item
				g.items = append(g.items, x.Triple.Item())
			}
			g.itemOfTriple = append(g.itemOfTriple, item)
		}
		si, ok := idx.st[stKey{src, tri}]
		if !ok {
			si = int32(len(g.stSource))
			idx.st[stKey{src, tri}] = si
			g.stSource = append(g.stSource, src)
			g.stTriple = append(g.stTriple, tri)
			stExtLists = append(stExtLists, nil)
		}
		if !containsID(stExtLists[si], ext) {
			stExtLists[si] = append(stExtLists[si], ext)
		}
	}
	return stExtLists, srcExtLists
}

// extShard is one worker's shard-local interning output: every ID space in
// shard-local first-occurrence order, plus the shard-local extractor lists
// and (filled during the merge) the local -> global remaps.
type extShard struct {
	sources, extractors []string
	triples             []kb.Triple
	stSrc, stTri        []int32   // per local statement: local source/triple ID
	stExtLists          [][]int32 // per local statement: local extractor IDs
	srcExtLists         [][]int32 // per local source: local extractor IDs
	srcRemap, extRemap  []int32   // local ID -> global ID (merge output)
}

// internParallel is the shard-and-merge interning pass: each worker interns
// a contiguous extraction range into shard-local ID spaces, the shard-local
// key lists merge into the global first-occurrence order, and shard-local
// IDs are remapped through the merged indexes. Because any key's first
// global occurrence lies in the earliest shard that saw it, and shard-local
// lists preserve stream order, the merged ID spaces (and the
// first-extraction-ordered extractor lists) are identical to
// internSequential's.
//
// The merges themselves run as csr.MergeKeys' ordered pairwise trees —
// adjacent shard pairs merged concurrently — so the formerly sequential
// key-merge walk (the bound ROADMAP called out on ExtractCompileParallel's
// scaling) parallelizes too: sources, extractors and triples merge
// concurrently with each other, then statements merge over globally-remapped
// (source, triple) keys built in parallel per shard. Only the extractor-list
// folds remain a sequential walk; their work per statement is bounded by the
// extractor fleet, not the corpus.
func internParallel(g *Compiled, idx *extractIndex, xs []Extraction, siteLevel bool, workers int) (stExtLists, srcExtLists [][]int32) {
	n := len(xs)
	if workers > n {
		workers = n
	}
	shards := make([]extShard, workers)
	csr.ParallelRange(n, workers, func(w, lo, hi int) {
		s := &shards[w]
		srcIdx := make(map[string]int32, 1024)
		extIdx := make(map[string]int32, 32)
		triIdx := make(map[kb.Triple]int32, hi-lo)
		stIdx := make(map[stKey]int32, hi-lo)
		for i := lo; i < hi; i++ {
			x := &xs[i]
			key := x.URL
			if siteLevel {
				key = x.Site
			}
			src, ok := srcIdx[key]
			if !ok {
				src = int32(len(s.sources))
				srcIdx[key] = src
				s.sources = append(s.sources, key)
				s.srcExtLists = append(s.srcExtLists, nil)
			}
			ext, ok := extIdx[x.Extractor]
			if !ok {
				ext = int32(len(s.extractors))
				extIdx[x.Extractor] = ext
				s.extractors = append(s.extractors, x.Extractor)
			}
			if !containsID(s.srcExtLists[src], ext) {
				s.srcExtLists[src] = append(s.srcExtLists[src], ext)
			}
			tri, ok := triIdx[x.Triple]
			if !ok {
				tri = int32(len(s.triples))
				triIdx[x.Triple] = tri
				s.triples = append(s.triples, x.Triple)
			}
			si, ok := stIdx[stKey{src, tri}]
			if !ok {
				si = int32(len(s.stSrc))
				stIdx[stKey{src, tri}] = si
				s.stSrc = append(s.stSrc, src)
				s.stTri = append(s.stTri, tri)
				s.stExtLists = append(s.stExtLists, nil)
			}
			if !containsID(s.stExtLists[si], ext) {
				s.stExtLists[si] = append(s.stExtLists[si], ext)
			}
		}
	})

	// Pairwise-merge the string/triple key spaces, concurrently with each
	// other.
	srcShards := make([][]string, workers)
	extShards := make([][]string, workers)
	triShards := make([][]kb.Triple, workers)
	for w := range shards {
		srcShards[w] = shards[w].sources
		extShards[w] = shards[w].extractors
		triShards[w] = shards[w].triples
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.sources, idx.src = csr.MergeKeys(srcShards, workers)
	}()
	go func() {
		defer wg.Done()
		g.extractors, idx.ext = csr.MergeKeys(extShards, workers)
	}()
	g.triples, idx.tri = csr.MergeKeys(triShards, workers)
	wg.Wait()

	// Items are interned from the merged triple list exactly as in the
	// sequential pass: a globally-new triple interns its item if unseen, and
	// the merged list is in stream first-occurrence order, so item IDs come
	// out in stream first-occurrence order too.
	for _, t := range g.triples {
		item, ok := idx.item[t.Item()]
		if !ok {
			item = int32(len(g.items))
			idx.item[t.Item()] = item
			g.items = append(g.items, t.Item())
		}
		g.itemOfTriple = append(g.itemOfTriple, item)
	}

	// Remap each shard's statement keys to global (source, triple) IDs in
	// parallel, then pairwise-merge the statement key space like the others.
	stKeyShards := make([][]stKey, workers)
	csr.ParallelRange(workers, workers, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			s := &shards[w]
			s.srcRemap = make([]int32, len(s.sources))
			for li, key := range s.sources {
				s.srcRemap[li] = idx.src[key]
			}
			s.extRemap = make([]int32, len(s.extractors))
			for li, key := range s.extractors {
				s.extRemap[li] = idx.ext[key]
			}
			triRemap := make([]int32, len(s.triples))
			for li, t := range s.triples {
				triRemap[li] = idx.tri[t]
			}
			keys := make([]stKey, len(s.stSrc))
			for lsi := range s.stSrc {
				keys[lsi] = stKey{s.srcRemap[s.stSrc[lsi]], triRemap[s.stTri[lsi]]}
			}
			stKeyShards[w] = keys
		}
	})
	var stKeys []stKey
	stKeys, idx.st = csr.MergeKeys(stKeyShards, workers)
	g.stSource = make([]int32, len(stKeys))
	g.stTriple = make([]int32, len(stKeys))
	for si, k := range stKeys {
		g.stSource[si] = k.src
		g.stTriple[si] = k.tri
	}

	// Fold the per-statement and per-source extractor lists shard by shard
	// (stream order), preserving first-extraction order across shards.
	stExtLists = make([][]int32, len(stKeys))
	srcExtLists = make([][]int32, len(g.sources))
	for w := range shards {
		s := &shards[w]
		for lsi := range s.stSrc {
			gsi := idx.st[stKeyShards[w][lsi]]
			for _, lx := range s.stExtLists[lsi] {
				if gx := s.extRemap[lx]; !containsID(stExtLists[gsi], gx) {
					stExtLists[gsi] = append(stExtLists[gsi], gx)
				}
			}
		}
		for ls := range s.srcExtLists {
			gs := s.srcRemap[ls]
			for _, lx := range s.srcExtLists[ls] {
				if gx := s.extRemap[lx]; !containsID(srcExtLists[gs], gx) {
					srcExtLists[gs] = append(srcExtLists[gs], gx)
				}
			}
		}
	}
	return stExtLists, srcExtLists
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// flattenLists concatenates per-ID lists into a CSR (start, flat) pair.
func flattenLists(lists [][]int32) (start, flat []int32) {
	start = make([]int32, len(lists)+1)
	total := 0
	for i, l := range lists {
		start[i] = int32(total)
		total += len(l)
	}
	start[len(lists)] = int32(total)
	flat = make([]int32, 0, total)
	for _, l := range lists {
		flat = append(flat, l...)
	}
	return start, flat
}

// ---- Read-only accessors ----
//
// All returned slices are views into the compiled graph and must not be
// modified.

// SiteLevel reports whether sources are keyed at site level.
func (g *Compiled) SiteLevel() bool { return g.siteLevel }

// Generation reports how many Appends produced this handle (0 for a fresh
// Compile).
func (g *Compiled) Generation() int { return g.gen }

// NumStatements reports the number of distinct (source, triple) pairs.
func (g *Compiled) NumStatements() int { return len(g.stSource) }

// NumSources reports the number of distinct sources.
func (g *Compiled) NumSources() int { return len(g.sources) }

// NumExtractors reports the number of distinct extractors.
func (g *Compiled) NumExtractors() int { return len(g.extractors) }

// NumTriples reports the number of distinct candidate triples.
func (g *Compiled) NumTriples() int { return len(g.triples) }

// NumItems reports the number of distinct data items.
func (g *Compiled) NumItems() int { return len(g.items) }

// SourceKey returns the URL or site key of a source ID.
func (g *Compiled) SourceKey(s int32) string { return g.sources[s] }

// ExtractorName returns the name of an extractor ID.
func (g *Compiled) ExtractorName(e int32) string { return g.extractors[e] }

// Triple returns the triple with the given triple ID.
func (g *Compiled) Triple(t int32) kb.Triple { return g.triples[t] }

// Item returns the data item with the given item ID.
func (g *Compiled) Item(i int32) kb.DataItem { return g.items[i] }

// StatementSource returns the source ID of a statement.
func (g *Compiled) StatementSource(si int32) int32 { return g.stSource[si] }

// StatementTriple returns the triple ID of a statement.
func (g *Compiled) StatementTriple(si int32) int32 { return g.stTriple[si] }

// StatementExtractors returns the distinct extractor IDs that extracted the
// statement, in first-extraction order.
func (g *Compiled) StatementExtractors(si int32) []int32 {
	return g.stExts[g.stExtStart[si]:g.stExtStart[si+1]]
}

// SourceExtractors returns the distinct extractor IDs that processed the
// source, in first-extraction order.
func (g *Compiled) SourceExtractors(s int32) []int32 {
	return g.srcExts[g.srcExtStart[s]:g.srcExtStart[s+1]]
}

// SourceStatements returns the statement IDs of a source in ascending order.
func (g *Compiled) SourceStatements(s int32) []int32 {
	return g.srcSts[g.srcStStart[s]:g.srcStStart[s+1]]
}

// TripleStatements returns the statement IDs asserting a triple in ascending
// order.
func (g *Compiled) TripleStatements(t int32) []int32 {
	return g.tripleSts[g.tripleStStart[t]:g.tripleStStart[t+1]]
}

// TripleExtractors returns the number of distinct extractors asserting the
// triple anywhere.
func (g *Compiled) TripleExtractors(t int32) int32 { return g.tripleExts[t] }

// ItemOfTriple returns the item ID of a triple.
func (g *Compiled) ItemOfTriple(t int32) int32 { return g.itemOfTriple[t] }

// ItemTriples returns the candidate triple IDs of an item in ascending order.
func (g *Compiled) ItemTriples(i int32) []int32 {
	return g.itemTriples[g.itemTripleStart[i]:g.itemTripleStart[i+1]]
}

// ItemStatements returns the total statement count on an item.
func (g *Compiled) ItemStatements(i int32) int32 { return g.itemStatements[i] }

// ExtStatements returns, for an extractor, the statements whose source it
// processed in ascending statement order, and the aligned hit flags marking
// the statements it actually extracted there.
func (g *Compiled) ExtStatements(x int32) (sts []int32, hits []bool) {
	return g.extSts[g.extStStart[x]:g.extStStart[x+1]], g.extHits[g.extStStart[x]:g.extStStart[x+1]]
}

// ExtStatementBlocks returns the fixed csr.ReduceBlockSize partition of the
// ext→statement spans: blocks are grouped by extractor in extractor-ID order
// (Block.Group is the extractor ID). The partition depends only on the span
// lengths, so reductions over it are bit-identical for any worker count.
func (g *Compiled) ExtStatementBlocks() []csr.Block { return g.extBlocks }

// ExtBlockStatements returns one block's slice of the ext→statement
// incidence: statement IDs (ascending) and aligned hit flags.
func (g *Compiled) ExtBlockStatements(b csr.Block) (sts []int32, hits []bool) {
	return g.extSts[b.Lo:b.Hi], g.extHits[b.Lo:b.Hi]
}

// ExtBlockStatementsF is ExtBlockStatements with the hit flags as 0/1
// floats — the branch-free form the two-layer M-step block reduction
// consumes (multiply by the flag instead of testing it).
func (g *Compiled) ExtBlockStatementsF(b csr.Block) (sts []int32, hitsF []float64) {
	return g.extSts[b.Lo:b.Hi], g.extHitsF[b.Lo:b.Hi]
}

// MaxItemTriples returns the largest candidate-triple count of any item.
func (g *Compiled) MaxItemTriples() int { return g.maxItemTriples }
