package extract

import (
	"runtime"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
)

// Compiled is the interned, immutable form of an extraction set for the
// models that need the full three-dimensional (source × extractor × triple)
// structure — today the two-layer model of internal/twolayer, which must see
// which extractors did and did NOT extract a statement from a source. It is
// the extraction-layer sibling of fusion.Compiled: every source, extractor,
// (source, triple) statement pair, candidate triple and data item is interned
// into a dense int32 ID with CSR adjacency, built once, and then every EM
// round iterates flat slices — no maps, no string hashing.
//
// ID spaces and invariants (all deterministic for a fixed extraction order,
// independent of the worker count):
//
//   - Source, extractor, triple, item and statement IDs are assigned in
//     first-occurrence order of the extraction stream.
//   - A statement is a distinct (source, triple) pair; its extractor list
//     holds the distinct extractors that produced it there, in
//     first-extraction order.
//   - SourceExtractors lists the distinct extractors with at least one
//     extraction from the source, in first-extraction order — the "which
//     extractors processed this source" set the two-layer model scores
//     silence against.
//   - SourceStatements, TripleStatements and ItemTriples are CSR spans in
//     ascending ID order (the same order the map-based reference model
//     appends them in).
//
// A Compiled is bound to its source level: URL-level or site-level keys are
// chosen at Compile time, mirroring how fusion.Compiled is bound to its
// claims' provenance granularity. It holds no model state, so one Compiled
// can serve any number of two-layer configurations concurrently.
type Compiled struct {
	siteLevel bool

	sources    []string // source ID -> URL or site key
	extractors []string // extractor ID -> name

	// Statements: distinct (source, triple) pairs.
	stSource   []int32 // statement ID -> source ID
	stTriple   []int32 // statement ID -> triple ID
	stExtStart []int32 // len nStatements+1; span into stExts
	stExts     []int32 // extractor IDs per statement, first-extraction order

	// Per-source adjacency.
	srcExtStart []int32 // len nSources+1; span into srcExts
	srcExts     []int32 // distinct extractor IDs per source, first-extraction order
	srcStStart  []int32 // len nSources+1; span into srcSts
	srcSts      []int32 // statement IDs per source, ascending

	// Candidate triples and data items.
	triples         []kb.Triple   // triple ID -> triple
	tripleStStart   []int32       // len nTriples+1; span into tripleSts
	tripleSts       []int32       // statement IDs per triple, ascending
	tripleExts      []int32       // triple ID -> distinct extractor count
	items           []kb.DataItem // item ID -> data item
	itemOfTriple    []int32       // triple ID -> item ID
	itemTripleStart []int32       // len nItems+1; span into itemTriples
	itemTriples     []int32       // triple IDs per item, ascending
	itemStatements  []int32       // item ID -> total statements on the item

	// maxItemTriples is the largest candidate count of any single item; it
	// sizes per-worker scoring scratch.
	maxItemTriples int
}

// Compile interns an extraction set into a reusable Compiled graph using all
// available cores. siteLevel keys sources at site level instead of URL level.
// The graph is deterministic for a fixed extraction order and independent of
// available parallelism.
func Compile(xs []Extraction, siteLevel bool) *Compiled {
	return CompileWorkers(xs, siteLevel, 0)
}

// CompileWorkers is Compile with an explicit bound on the CSR-building
// goroutines (0 = GOMAXPROCS). The graph is identical for any workers value.
func CompileWorkers(xs []Extraction, siteLevel bool, workers int) *Compiled {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Compiled{siteLevel: siteLevel}

	// Interning pass: sequential, in extraction order, so every ID space is
	// first-occurrence ordered regardless of parallelism. The per-statement
	// and per-source extractor lists are deduplicated here too; both are
	// short (bounded by the extractor fleet), so linear scans beat maps.
	type stKey struct{ src, tri int32 }
	srcIdx := make(map[string]int32, 1024)
	extIdx := make(map[string]int32, 32)
	triIdx := make(map[kb.Triple]int32, len(xs))
	itemIdx := make(map[kb.DataItem]int32, len(xs))
	stIdx := make(map[stKey]int32, len(xs))
	var stExtLists [][]int32
	var srcExtLists [][]int32
	for i := range xs {
		x := &xs[i]
		key := x.URL
		if siteLevel {
			key = x.Site
		}
		src, ok := srcIdx[key]
		if !ok {
			src = int32(len(g.sources))
			srcIdx[key] = src
			g.sources = append(g.sources, key)
			srcExtLists = append(srcExtLists, nil)
		}
		ext, ok := extIdx[x.Extractor]
		if !ok {
			ext = int32(len(g.extractors))
			extIdx[x.Extractor] = ext
			g.extractors = append(g.extractors, x.Extractor)
		}
		if !containsID(srcExtLists[src], ext) {
			srcExtLists[src] = append(srcExtLists[src], ext)
		}
		tri, ok := triIdx[x.Triple]
		if !ok {
			tri = int32(len(g.triples))
			triIdx[x.Triple] = tri
			g.triples = append(g.triples, x.Triple)
			item, iok := itemIdx[x.Triple.Item()]
			if !iok {
				item = int32(len(g.items))
				itemIdx[x.Triple.Item()] = item
				g.items = append(g.items, x.Triple.Item())
			}
			g.itemOfTriple = append(g.itemOfTriple, item)
		}
		si, ok := stIdx[stKey{src, tri}]
		if !ok {
			si = int32(len(g.stSource))
			stIdx[stKey{src, tri}] = si
			g.stSource = append(g.stSource, src)
			g.stTriple = append(g.stTriple, tri)
			stExtLists = append(stExtLists, nil)
		}
		if !containsID(stExtLists[si], ext) {
			stExtLists[si] = append(stExtLists[si], ext)
		}
	}

	// ---- Flatten the per-statement and per-source extractor lists ----
	g.stExtStart, g.stExts = flattenLists(stExtLists)
	g.srcExtStart, g.srcExts = flattenLists(srcExtLists)

	// ---- CSR adjacency by parallel counting sort ----
	nSt := len(g.stSource)
	nTriples := len(g.triples)
	nItems := len(g.items)
	g.srcStStart, g.srcSts = csr.ByGroup(g.stSource, len(g.sources), workers)
	g.tripleStStart, g.tripleSts = csr.ByGroup(g.stTriple, nTriples, workers)
	g.itemTripleStart, g.itemTriples = csr.ByGroup(g.itemOfTriple, nItems, workers)
	for i := 0; i < nItems; i++ {
		if n := int(g.itemTripleStart[i+1] - g.itemTripleStart[i]); n > g.maxItemTriples {
			g.maxItemTriples = n
		}
	}

	// ---- Config-independent support counts ----
	// Statements per item (the two-layer result's ItemProvenances).
	g.itemStatements = make([]int32, nItems)
	for si := 0; si < nSt; si++ {
		g.itemStatements[g.itemOfTriple[g.stTriple[si]]]++
	}
	// Distinct extractors per triple, in parallel over triple ranges: each
	// worker stamps a private seen-set with the triple ID, so counts are
	// exact and independent of the split.
	g.tripleExts = make([]int32, nTriples)
	tw := workers
	if nSt < 1<<14 {
		tw = 1 // goroutine setup would dominate
	}
	csr.ParallelRange(nTriples, tw, func(_, lo, hi int) {
		seen := make([]int32, len(g.extractors))
		for i := range seen {
			seen[i] = -1
		}
		for t := lo; t < hi; t++ {
			for _, si := range g.tripleSts[g.tripleStStart[t]:g.tripleStStart[t+1]] {
				for _, e := range g.stExts[g.stExtStart[si]:g.stExtStart[si+1]] {
					if seen[e] != int32(t) {
						seen[e] = int32(t)
						g.tripleExts[t]++
					}
				}
			}
		}
	})
	return g
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// flattenLists concatenates per-ID lists into a CSR (start, flat) pair.
func flattenLists(lists [][]int32) (start, flat []int32) {
	start = make([]int32, len(lists)+1)
	total := 0
	for i, l := range lists {
		start[i] = int32(total)
		total += len(l)
	}
	start[len(lists)] = int32(total)
	flat = make([]int32, 0, total)
	for _, l := range lists {
		flat = append(flat, l...)
	}
	return start, flat
}

// ---- Read-only accessors ----
//
// All returned slices are views into the compiled graph and must not be
// modified.

// SiteLevel reports whether sources are keyed at site level.
func (g *Compiled) SiteLevel() bool { return g.siteLevel }

// NumStatements reports the number of distinct (source, triple) pairs.
func (g *Compiled) NumStatements() int { return len(g.stSource) }

// NumSources reports the number of distinct sources.
func (g *Compiled) NumSources() int { return len(g.sources) }

// NumExtractors reports the number of distinct extractors.
func (g *Compiled) NumExtractors() int { return len(g.extractors) }

// NumTriples reports the number of distinct candidate triples.
func (g *Compiled) NumTriples() int { return len(g.triples) }

// NumItems reports the number of distinct data items.
func (g *Compiled) NumItems() int { return len(g.items) }

// SourceKey returns the URL or site key of a source ID.
func (g *Compiled) SourceKey(s int32) string { return g.sources[s] }

// ExtractorName returns the name of an extractor ID.
func (g *Compiled) ExtractorName(e int32) string { return g.extractors[e] }

// Triple returns the triple with the given triple ID.
func (g *Compiled) Triple(t int32) kb.Triple { return g.triples[t] }

// Item returns the data item with the given item ID.
func (g *Compiled) Item(i int32) kb.DataItem { return g.items[i] }

// StatementSource returns the source ID of a statement.
func (g *Compiled) StatementSource(si int32) int32 { return g.stSource[si] }

// StatementTriple returns the triple ID of a statement.
func (g *Compiled) StatementTriple(si int32) int32 { return g.stTriple[si] }

// StatementExtractors returns the distinct extractor IDs that extracted the
// statement, in first-extraction order.
func (g *Compiled) StatementExtractors(si int32) []int32 {
	return g.stExts[g.stExtStart[si]:g.stExtStart[si+1]]
}

// SourceExtractors returns the distinct extractor IDs that processed the
// source, in first-extraction order.
func (g *Compiled) SourceExtractors(s int32) []int32 {
	return g.srcExts[g.srcExtStart[s]:g.srcExtStart[s+1]]
}

// SourceStatements returns the statement IDs of a source in ascending order.
func (g *Compiled) SourceStatements(s int32) []int32 {
	return g.srcSts[g.srcStStart[s]:g.srcStStart[s+1]]
}

// TripleStatements returns the statement IDs asserting a triple in ascending
// order.
func (g *Compiled) TripleStatements(t int32) []int32 {
	return g.tripleSts[g.tripleStStart[t]:g.tripleStStart[t+1]]
}

// TripleExtractors returns the number of distinct extractors asserting the
// triple anywhere.
func (g *Compiled) TripleExtractors(t int32) int32 { return g.tripleExts[t] }

// ItemOfTriple returns the item ID of a triple.
func (g *Compiled) ItemOfTriple(t int32) int32 { return g.itemOfTriple[t] }

// ItemTriples returns the candidate triple IDs of an item in ascending order.
func (g *Compiled) ItemTriples(i int32) []int32 {
	return g.itemTriples[g.itemTripleStart[i]:g.itemTripleStart[i+1]]
}

// ItemStatements returns the total statement count on an item.
func (g *Compiled) ItemStatements(i int32) int32 { return g.itemStatements[i] }

// MaxItemTriples returns the largest candidate-triple count of any item.
func (g *Compiled) MaxItemTriples() int { return g.maxItemTriples }
