package extract

import (
	"sort"

	"kfusion/internal/randx"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// Suite bundles the 12 extractors over one world, with the shared components
// wired the way the paper describes: "a lot of extractors employ the same
// entity linkage components, [so] they may make common linkage mistakes"
// (§5.2). Nine extractors share the main linker; TXT4, DOM3 and TBL2 use a
// better one — which is also why those three are the most accurate rows of
// Table 2.
type Suite struct {
	Extractors []*Extractor
	Seed       int64

	// LinkerMain and LinkerAlt are exposed for tests and diagnostics.
	LinkerMain *Linker
	LinkerAlt  *Linker
}

// NewSuite builds the 12-extractor fleet over w. The per-extractor
// parameters are calibrated so that measured accuracies land near Table 2's
// spread (0.09–0.78) with the same ordering.
func NewSuite(w *world.World, seed int64) *Suite {
	linkMain := NewLinker("linker-main", 0.07, w)
	linkAlt := NewLinker("linker-alt", 0.02, w)

	mapTXT := NewSchemaMapper("map-txt", 0.07, w)
	mapTXT4 := NewSchemaMapper("map-txt4", 0.03, w)
	mapDOM := NewSchemaMapper("map-dom", 0.06, w)
	mapDOM2 := NewSchemaMapper("map-dom2", 0.12, w)
	mapTBL1 := NewSchemaMapper("map-tbl1", 0.28, w)
	mapTBL2 := NewSchemaMapper("map-tbl2", 0.03, w)
	mapANO := NewSchemaMapper("map-ano", 0.2, w)

	txt := []web.ContentType{web.TXT}
	dom := []web.ContentType{web.DOM}
	domTbl := []web.ContentType{web.DOM, web.TBL}
	tbl := []web.ContentType{web.TBL}
	ano := []web.ContentType{web.ANO}
	normal := []string{"directory", "commerce", "data"}

	s := &Suite{Seed: seed, LinkerMain: linkMain, LinkerAlt: linkAlt}
	s.Extractors = []*Extractor{
		// TXT1: bespoke implementation, runs on all Webpages; mid accuracy,
		// informative confidences (Figure 21).
		{Name: "TXT1", ContentTypes: txt, Recall: 0.7, Patterns: PatTemplate, PatternCoverage: 0.8,
			ToxicPatternRate: 0.05, TripleIDRate: 0.65, Linker: linkMain, Mapper: mapTXT, Conf: ConfInformative},
		// TXT2: same framework as TXT3/4 but on "normal" Webpages; noisy.
		{Name: "TXT2", ContentTypes: txt, SiteClasses: normal, Recall: 0.55, Patterns: PatTemplate, PatternCoverage: 0.6,
			ToxicPatternRate: 0.12, TripleIDRate: 1.1, Linker: linkMain, Mapper: mapTXT, Conf: ConfInformative},
		// TXT3: newswire.
		{Name: "TXT3", ContentTypes: txt, SiteClasses: []string{"news"}, Recall: 0.6, Patterns: PatTemplate, PatternCoverage: 0.65,
			ToxicPatternRate: 0.08, TripleIDRate: 1.0, Linker: linkMain, Mapper: mapTXT, Conf: ConfInformative},
		// TXT4: Wikipedia; clean text and the better linker — the most
		// accurate extractor.
		{Name: "TXT4", ContentTypes: txt, SiteClasses: []string{"wiki"}, Recall: 0.65, Patterns: PatTemplate, PatternCoverage: 0.7,
			ToxicPatternRate: 0.01, TripleIDRate: 0.10, Linker: linkAlt, Mapper: mapTXT4, Conf: ConfInformative},
		// DOM1: wrapper-style patterns per (site class, attribute); the
		// volume leader. Also reads Web tables (they are DOM too).
		{Name: "DOM1", ContentTypes: domTbl, Recall: 0.85, Patterns: PatSiteAttr, PatternCoverage: 0.9,
			ToxicPatternRate: 0.07, TripleIDRate: 0.48, Linker: linkMain, Mapper: mapDOM, Conf: ConfInformative},
		// DOM2: runs everywhere with no patterns; huge volume, very low
		// precision, bimodal confidences.
		{Name: "DOM2", ContentTypes: dom, Recall: 0.6, TripleIDRate: 1.6, Linker: linkMain, Mapper: mapDOM2, Conf: ConfBimodal},
		// DOM3: entity-type focused, better linker.
		{Name: "DOM3", ContentTypes: dom, Recall: 0.5, TripleIDRate: 0.22, Linker: linkAlt, Mapper: mapDOM, Conf: ConfInformative, EntityPredsOnly: true},
		// DOM4: entity-type focused, noisier sibling of DOM3.
		{Name: "DOM4", ContentTypes: dom, Recall: 0.55, TripleIDRate: 1.0, Linker: linkMain, Mapper: mapDOM, Conf: ConfInformative, EntityPredsOnly: true},
		// DOM5: Wikipedia-only, no confidences, weak.
		{Name: "DOM5", ContentTypes: dom, SiteClasses: []string{"wiki"}, Recall: 0.6, TripleIDRate: 1.5, Linker: linkMain, Mapper: mapDOM, Conf: ConfNone},
		// TBL1: schema mapping is its weak point; misleading confidences.
		{Name: "TBL1", ContentTypes: tbl, Recall: 0.55, TripleIDRate: 0.62, Linker: linkMain, Mapper: mapTBL1, Conf: ConfMisleading},
		// TBL2: better schema mapping, no confidences.
		{Name: "TBL2", ContentTypes: tbl, Recall: 0.6, TripleIDRate: 0.12, Linker: linkAlt, Mapper: mapTBL2, Conf: ConfNone},
		// ANO: semi-automatic itemprop mapping; uninformative confidences.
		{Name: "ANO", ContentTypes: ano, Recall: 0.8, TripleIDRate: 0.66, Linker: linkMain, Mapper: mapANO, Conf: ConfUninformative},
	}
	return s
}

// Names returns the extractor names in suite order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.Extractors))
	for i, e := range s.Extractors {
		out[i] = e.Name
	}
	return out
}

// ByName returns the extractor with the given name, or nil.
func (s *Suite) ByName(name string) *Extractor {
	for _, e := range s.Extractors {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// ContentTypeOf returns the primary content type an extractor targets,
// which Figure 19 uses to split extractor pairs into same-type vs
// different-type.
func (s *Suite) ContentTypeOf(name string) web.ContentType {
	e := s.ByName(name)
	if e == nil || len(e.ContentTypes) == 0 {
		return web.TXT
	}
	return e.ContentTypes[0]
}

// Run extracts the whole corpus with all 12 extractors. The result is
// deterministic for a given (world, corpus, seed) and sorted by (extractor,
// URL, triple) for stable downstream processing.
func (s *Suite) Run(w *world.World, corpus *web.Corpus) []Extraction {
	root := randx.New(s.Seed)
	var out []Extraction
	for pi, page := range corpus.Pages {
		for _, e := range s.Extractors {
			src := root.SplitN(e.Name+"|"+page.URL, int64(pi))
			out = append(out, e.Extract(w, page, src)...)
		}
	}
	sortExtractions(out)
	return out
}

func sortExtractions(xs []Extraction) {
	sort.Slice(xs, func(i, j int) bool {
		a, b := xs[i], xs[j]
		if a.Extractor != b.Extractor {
			return a.Extractor < b.Extractor
		}
		if a.URL != b.URL {
			return a.URL < b.URL
		}
		if a.Triple.Subject != b.Triple.Subject {
			return a.Triple.Subject < b.Triple.Subject
		}
		if a.Triple.Predicate != b.Triple.Predicate {
			return a.Triple.Predicate < b.Triple.Predicate
		}
		return a.Triple.Object.String() < b.Triple.Object.String()
	})
}

// UniqueTriples returns the distinct triples in the extraction set.
func UniqueTriples(xs []Extraction) []Extraction {
	seen := make(map[string]bool, len(xs))
	var out []Extraction
	for _, x := range xs {
		k := x.Triple.Encode()
		if !seen[k] {
			seen[k] = true
			out = append(out, x)
		}
	}
	return out
}
