// Package extract simulates the paper's 12 information extractors (TXT1-4,
// DOM1-5, TBL1-2, ANO). Extractors parse the surface forms of the synthetic
// Web corpus and emit (triple, provenance) extractions, injecting the three
// error classes the paper's §3.2.1 sampling found: triple-identification
// errors (44%), entity-linkage errors (44%) and predicate-linkage errors
// (20%), on top of the sources' own factual errors (4%).
//
// Two design points matter for reproducing the paper's phenomena:
//
//   - Entity-linkage and schema-mapping errors are DETERMINISTIC per surface
//     form and per component. Extractors share linkage components, so the
//     same wrong triple is extracted by many extractors from many pages —
//     the correlated errors behind Figures 6, 18 and 19.
//   - TXT and DOM extractors only fire when they know a pattern for the
//     (template, attribute) combination, and a small fraction of patterns
//     are systematically broken ("toxic"), producing the per-pattern quality
//     spread that makes pattern-granularity provenances pay off (Figure 10).
package extract

import (
	"hash/fnv"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
	"kfusion/internal/world"
)

// ErrorKind attributes an extraction's dominant error, for the mechanical
// error analysis of Figure 17. It is hidden from the fusion layer.
type ErrorKind uint8

const (
	// ErrNone marks a faithful extraction of what the page said.
	ErrNone ErrorKind = iota
	// ErrTripleID marks a triple-identification error (wrong span/row).
	ErrTripleID
	// ErrEntityLink marks an entity-linkage error (wrong entity ID).
	ErrEntityLink
	// ErrPredicateLink marks a predicate-linkage error (wrong predicate).
	ErrPredicateLink
	// ErrSource marks a faithful extraction of a source's wrong statement.
	ErrSource
)

// String names the error kind as in the paper's analysis.
func (k ErrorKind) String() string {
	switch k {
	case ErrNone:
		return "none"
	case ErrTripleID:
		return "triple-identification"
	case ErrEntityLink:
		return "entity-linkage"
	case ErrPredicateLink:
		return "predicate-linkage"
	case ErrSource:
		return "source"
	default:
		return "unknown"
	}
}

// Extraction is one extracted (triple, provenance) pair — a cell of the
// paper's three-dimensional input.
type Extraction struct {
	Triple    kb.Triple
	Extractor string
	// Pattern identifies the extraction pattern used, or "" for extractors
	// without patterns (Table 2's "No pat." rows).
	Pattern string
	URL     string
	Site    string
	// Confidence is the extractor's self-reported confidence in [0,1], or
	// -1 for extractors that provide none (DOM5, TBL2 in Table 2).
	Confidence float64
	// Error attributes the extraction's dominant error (simulator ground
	// truth; not visible to fusion).
	Error ErrorKind
}

// HasConfidence reports whether the extractor attached a confidence.
func (e Extraction) HasConfidence() bool { return e.Confidence >= 0 }

// hashProb maps the concatenation of parts to a deterministic pseudo-random
// value in [0,1). It is the mechanism behind systematic (repeatable)
// component errors.
func hashProb(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	const den = 1 << 53
	return float64(h.Sum64()>>11) / float64(den)
}

// hashPick deterministically picks an index in [0,n) from parts.
func hashPick(n int, parts ...string) int {
	if n <= 0 {
		return 0
	}
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{1})
	}
	return int(h.Sum64() % uint64(n))
}

// Linker is an entity-linkage component. Several extractors share one
// linker, so its mistakes are common mistakes. A linker's behaviour is a
// deterministic function of the surface name: genuinely ambiguous names
// (several entities share them) resolve by the linker's fixed policy, and a
// per-name fuzziness mislinks some unique names to a confusable twin.
type Linker struct {
	ID string
	// ErrRate is the fraction of names the linker systematically mislinks
	// when a confusable twin exists.
	ErrRate float64

	w      *world.World
	byName map[string][]kb.EntityID
}

// NewLinker builds a linker over the world's entity names.
func NewLinker(id string, errRate float64, w *world.World) *Linker {
	l := &Linker{ID: id, ErrRate: errRate, w: w, byName: make(map[string][]kb.EntityID)}
	for _, eid := range w.Ont.Entities() {
		name := w.Ont.Entity(eid).Name
		l.byName[name] = append(l.byName[name], eid)
	}
	return l
}

// Resolve maps a surface name to an entity ID. intended is the entity the
// page meant; a real linker does not know it, and the simulation only uses
// it to keep the returned mistakes well-formed (a plausible wrong entity
// rather than a random ID). The second result reports whether the resolution
// is a linkage error.
func (l *Linker) Resolve(name string, intended kb.EntityID) (kb.EntityID, bool) {
	cands := l.byName[name]
	if len(cands) > 1 {
		// Ambiguous surface form: the linker always picks by its fixed
		// policy — the most popular candidate, tie-broken by a hash of the
		// linker ID. Pages meaning a less popular namesake get mislinked.
		best := cands[0]
		for _, c := range cands[1:] {
			if l.w.Popularity(c) > l.w.Popularity(best) {
				best = c
			}
		}
		if hashProb(l.ID, "ambig", name) < 0.15 {
			// A slice of ambiguous names resolve by hash instead — linkers
			// differ on which namesake they prefer.
			best = cands[hashPick(len(cands), l.ID, name)]
		}
		return best, best != intended
	}
	// Unique (or unknown) name: systematic per-name fuzziness.
	if hashProb(l.ID, "fuzz", name) < l.ErrRate {
		// Deterministic confusable choice for this (linker, name).
		twinSrc := randx.New(int64(hashPick(1<<31, l.ID, "twin", name)))
		if twin, ok := l.w.Confusable(twinSrc, intended); ok {
			return twin, true
		}
	}
	return intended, false
}

// ItemComponent is one connected component of the extraction graph under
// the paper's Stage I/III independence relation: every extraction whose
// triple names the same data item (subject, predicate). Triples belong to
// exactly one item, and the fusion engines never read across items in the
// per-item stages, so items are exactly the units a sharded pipeline may
// place independently (internal/shard routes them by kb.DataItem.Hash).
type ItemComponent struct {
	// Item is the component's data item.
	Item kb.DataItem
	// Extractions indexes into the input slice, in input order.
	Extractions []int
}

// ItemComponents partitions extractions into their data-item components, in
// first-occurrence order of the item. The result is deterministic for a
// given input order: component c's item appeared before component c+1's,
// and each component lists its extraction indices in input order. An empty
// or nil input yields nil.
func ItemComponents(xs []Extraction) []ItemComponent {
	if len(xs) == 0 {
		return nil
	}
	idx := make(map[kb.DataItem]int, len(xs)/4+1)
	var comps []ItemComponent
	for i, x := range xs {
		item := x.Triple.Item()
		c, ok := idx[item]
		if !ok {
			c = len(comps)
			idx[item] = c
			comps = append(comps, ItemComponent{Item: item})
		}
		comps[c].Extractions = append(comps[c].Extractions, i)
	}
	return comps
}

// SchemaMapper is a predicate-linkage component: it maps surface attribute
// labels to predicate IDs. Mistakes are deterministic per (mapper, label,
// subject type): the same column header is mapped to the same wrong sibling
// predicate everywhere — the "book author as book editor" error class.
type SchemaMapper struct {
	ID      string
	ErrRate float64
	w       *world.World
}

// NewSchemaMapper builds a mapper.
func NewSchemaMapper(id string, errRate float64, w *world.World) *SchemaMapper {
	return &SchemaMapper{ID: id, ErrRate: errRate, w: w}
}

// Map resolves an attribute label to a predicate, given the intended
// predicate (the simulation contract mirrors Linker.Resolve). The second
// result reports whether the mapping is a predicate-linkage error.
func (m *SchemaMapper) Map(intended kb.PredicateID) (kb.PredicateID, bool) {
	if hashProb(m.ID, string(intended)) >= m.ErrRate {
		return intended, false
	}
	sibSrc := randx.New(int64(hashPick(1<<31, m.ID, "sib", string(intended))))
	if sib, ok := m.w.SiblingPredicate(sibSrc, intended); ok {
		return sib, true
	}
	return intended, false
}
