package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kfusion/internal/kb"
)

func tripleFor(subj, pred, obj string) kb.Triple {
	return kb.Triple{
		Subject:   kb.EntityID(subj),
		Predicate: kb.PredicateID(pred),
		Object:    kb.StringObject(obj),
	}
}

// TestItemComponentsEmpty: no extractions, no components.
func TestItemComponentsEmpty(t *testing.T) {
	if got := ItemComponents(nil); got != nil {
		t.Fatalf("ItemComponents(nil) = %v, want nil", got)
	}
	if got := ItemComponents([]Extraction{}); got != nil {
		t.Fatalf("ItemComponents(empty) = %v, want nil", got)
	}
}

// TestItemComponentsSingletons: every extraction names a distinct item, so
// every component is a singleton, in input order.
func TestItemComponentsSingletons(t *testing.T) {
	xs := make([]Extraction, 16)
	for i := range xs {
		xs[i] = Extraction{
			Triple:    tripleFor(fmt.Sprintf("s%d", i), "/p/only", "v"),
			Extractor: "E1",
			URL:       "http://a/1",
			Site:      "a",
		}
	}
	comps := ItemComponents(xs)
	if len(comps) != len(xs) {
		t.Fatalf("got %d components, want %d singletons", len(comps), len(xs))
	}
	for i, c := range comps {
		if c.Item != xs[i].Triple.Item() {
			t.Fatalf("component %d item = %v, want %v (first-occurrence order)", i, c.Item, xs[i].Triple.Item())
		}
		if !reflect.DeepEqual(c.Extractions, []int{i}) {
			t.Fatalf("component %d extractions = %v, want [%d]", i, c.Extractions, i)
		}
	}
}

// TestItemComponentsGiant: every extraction names the same item — one giant
// component holding every index in input order, regardless of object value,
// extractor, or source.
func TestItemComponentsGiant(t *testing.T) {
	xs := make([]Extraction, 64)
	want := make([]int, len(xs))
	for i := range xs {
		xs[i] = Extraction{
			Triple:    tripleFor("s", "/p/giant", fmt.Sprintf("v%d", i%7)),
			Extractor: fmt.Sprintf("E%d", i%3),
			URL:       fmt.Sprintf("http://site%d/p", i%5),
			Site:      fmt.Sprintf("site%d", i%5),
		}
		want[i] = i
	}
	comps := ItemComponents(xs)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1 giant component", len(comps))
	}
	if comps[0].Item != xs[0].Triple.Item() {
		t.Fatalf("component item = %v, want %v", comps[0].Item, xs[0].Triple.Item())
	}
	if !reflect.DeepEqual(comps[0].Extractions, want) {
		t.Fatalf("giant component does not hold every index in order: %v", comps[0].Extractions)
	}
}

// TestItemComponentsPartition: on a random mixed stream the components form
// an exact partition — every index appears exactly once, each component's
// indices all share its item, components are in first-occurrence order, and
// indices within a component stay in input order.
func TestItemComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := randomExtractions(rng, 2000)
	comps := ItemComponents(xs)

	seen := make(map[int]bool, len(xs))
	firstSeen := -1
	for ci, c := range comps {
		if len(c.Extractions) == 0 {
			t.Fatalf("component %d is empty", ci)
		}
		if c.Extractions[0] <= firstSeen {
			t.Fatalf("component %d first index %d out of first-occurrence order", ci, c.Extractions[0])
		}
		firstSeen = c.Extractions[0]
		prev := -1
		for _, i := range c.Extractions {
			if i <= prev {
				t.Fatalf("component %d indices out of input order: %v", ci, c.Extractions)
			}
			prev = i
			if seen[i] {
				t.Fatalf("index %d appears in two components", i)
			}
			seen[i] = true
			if xs[i].Triple.Item() != c.Item {
				t.Fatalf("index %d item %v placed in component for %v", i, xs[i].Triple.Item(), c.Item)
			}
		}
	}
	if len(seen) != len(xs) {
		t.Fatalf("partition covers %d of %d extractions", len(seen), len(xs))
	}
}
