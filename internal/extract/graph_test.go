package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kfusion/internal/kb"
)

// randomExtractions builds a synthetic extraction stream with heavy
// (source, triple, extractor) collisions so statement dedup, the extractor
// sets and the CSR spans all get exercised.
func randomExtractions(rng *rand.Rand, n int) []Extraction {
	xs := make([]Extraction, n)
	for i := range xs {
		site := fmt.Sprintf("site%d", rng.Intn(8))
		xs[i] = Extraction{
			Triple: kb.Triple{
				Subject:   kb.EntityID(fmt.Sprintf("s%d", rng.Intn(12))),
				Predicate: kb.PredicateID(fmt.Sprintf("/p/%d", rng.Intn(4))),
				Object:    kb.StringObject(fmt.Sprintf("v%d", rng.Intn(6))),
			},
			Extractor: fmt.Sprintf("E%d", rng.Intn(5)),
			URL:       fmt.Sprintf("http://%s/page%d", site, rng.Intn(6)),
			Site:      site,
		}
	}
	return xs
}

// TestCompiledGraphMatchesBruteForce rebuilds every interned relation with
// maps and checks the graph agrees, at both source levels and for several
// worker counts (the graph must be independent of parallelism).
func TestCompiledGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := randomExtractions(rng, 5000)
	for _, siteLevel := range []bool{false, true} {
		want := CompileWorkers(xs, siteLevel, 1)
		for _, workers := range []int{2, 4, 8} {
			got := CompileWorkers(xs, siteLevel, workers)
			if got.NumStatements() != want.NumStatements() || got.NumSources() != want.NumSources() ||
				got.NumTriples() != want.NumTriples() || got.NumItems() != want.NumItems() ||
				got.NumExtractors() != want.NumExtractors() {
				t.Fatalf("siteLevel=%v workers=%d: sizes differ from workers=1", siteLevel, workers)
			}
			for si := 0; si < got.NumStatements(); si++ {
				if got.StatementSource(int32(si)) != want.StatementSource(int32(si)) ||
					got.StatementTriple(int32(si)) != want.StatementTriple(int32(si)) {
					t.Fatalf("siteLevel=%v workers=%d: statement %d differs", siteLevel, workers, si)
				}
			}
			for ti := 0; ti < got.NumTriples(); ti++ {
				if !equalSpans(got.TripleStatements(int32(ti)), want.TripleStatements(int32(ti))) {
					t.Fatalf("siteLevel=%v workers=%d: TripleStatements(%d) differs", siteLevel, workers, ti)
				}
				if got.TripleExtractors(int32(ti)) != want.TripleExtractors(int32(ti)) {
					t.Fatalf("siteLevel=%v workers=%d: TripleExtractors(%d) differs", siteLevel, workers, ti)
				}
			}
		}

		g := want
		sourceOf := func(x Extraction) string {
			if siteLevel {
				return x.Site
			}
			return x.URL
		}

		// Brute-force reconstruction.
		type stKey struct {
			src string
			tri kb.Triple
		}
		stExts := map[stKey][]string{}
		srcExts := map[string][]string{}
		tripleSts := map[kb.Triple]map[stKey]bool{}
		itemSts := map[kb.DataItem]map[stKey]bool{}
		tripleExts := map[kb.Triple]map[string]bool{}
		for _, x := range xs {
			src := sourceOf(x)
			k := stKey{src, x.Triple}
			if !hasString(stExts[k], x.Extractor) {
				stExts[k] = append(stExts[k], x.Extractor)
			}
			if !hasString(srcExts[src], x.Extractor) {
				srcExts[src] = append(srcExts[src], x.Extractor)
			}
			if tripleSts[x.Triple] == nil {
				tripleSts[x.Triple] = map[stKey]bool{}
			}
			tripleSts[x.Triple][k] = true
			if itemSts[x.Triple.Item()] == nil {
				itemSts[x.Triple.Item()] = map[stKey]bool{}
			}
			itemSts[x.Triple.Item()][k] = true
			if tripleExts[x.Triple] == nil {
				tripleExts[x.Triple] = map[string]bool{}
			}
			tripleExts[x.Triple][x.Extractor] = true
		}

		if g.NumStatements() != len(stExts) {
			t.Fatalf("siteLevel=%v: %d statements, want %d", siteLevel, g.NumStatements(), len(stExts))
		}
		if g.NumSources() != len(srcExts) {
			t.Fatalf("siteLevel=%v: %d sources, want %d", siteLevel, g.NumSources(), len(srcExts))
		}
		for si := 0; si < g.NumStatements(); si++ {
			src := g.SourceKey(g.StatementSource(int32(si)))
			tri := g.Triple(g.StatementTriple(int32(si)))
			k := stKey{src, tri}
			if !equalNames(g, g.StatementExtractors(int32(si)), stExts[k]) {
				t.Fatalf("siteLevel=%v: statement %d extractors = %v, want %v",
					siteLevel, si, names(g, g.StatementExtractors(int32(si))), stExts[k])
			}
		}
		for s := 0; s < g.NumSources(); s++ {
			if !equalNames(g, g.SourceExtractors(int32(s)), srcExts[g.SourceKey(int32(s))]) {
				t.Fatalf("siteLevel=%v: source %q extractor set mismatch", siteLevel, g.SourceKey(int32(s)))
			}
			if len(g.SourceStatements(int32(s))) == 0 {
				t.Fatalf("siteLevel=%v: source %q has no statements", siteLevel, g.SourceKey(int32(s)))
			}
			for _, si := range g.SourceStatements(int32(s)) {
				if g.StatementSource(si) != int32(s) {
					t.Fatalf("siteLevel=%v: SourceStatements(%d) contains foreign statement", siteLevel, s)
				}
			}
		}
		for ti := 0; ti < g.NumTriples(); ti++ {
			tri := g.Triple(int32(ti))
			if len(g.TripleStatements(int32(ti))) != len(tripleSts[tri]) {
				t.Fatalf("siteLevel=%v: triple %v has %d statements, want %d",
					siteLevel, tri, len(g.TripleStatements(int32(ti))), len(tripleSts[tri]))
			}
			if int(g.TripleExtractors(int32(ti))) != len(tripleExts[tri]) {
				t.Fatalf("siteLevel=%v: triple %v extractor count %d, want %d",
					siteLevel, tri, g.TripleExtractors(int32(ti)), len(tripleExts[tri]))
			}
		}
		for i := 0; i < g.NumItems(); i++ {
			item := g.Item(int32(i))
			if int(g.ItemStatements(int32(i))) != len(itemSts[item]) {
				t.Fatalf("siteLevel=%v: item %v has %d statements, want %d",
					siteLevel, item, g.ItemStatements(int32(i)), len(itemSts[item]))
			}
			for _, ti := range g.ItemTriples(int32(i)) {
				if g.ItemOfTriple(ti) != int32(i) {
					t.Fatalf("siteLevel=%v: ItemTriples(%d) contains foreign triple", siteLevel, i)
				}
			}
		}
	}
}

// TestExtStatementIncidenceMatchesBruteForce cross-checks the ext→statement
// CSR (the two-layer M-step's reduction domain) against a direct per-source
// reconstruction: extractor x's span must hold exactly the statements of the
// sources x processed, ascending, with hit flags matching membership in the
// statement's extractor list — and the block partition must tile the spans.
func TestExtStatementIncidenceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{0, 1, 300, 5000} {
		xs := randomExtractions(rng, n)
		for _, siteLevel := range []bool{false, true} {
			g := Compile(xs, siteLevel)
			for x := int32(0); x < int32(g.NumExtractors()); x++ {
				var wantSts []int32
				var wantHits []bool
				for si := int32(0); si < int32(g.NumStatements()); si++ {
					if !containsID(g.SourceExtractors(g.StatementSource(si)), x) {
						continue
					}
					wantSts = append(wantSts, si)
					wantHits = append(wantHits, containsID(g.StatementExtractors(si), x))
				}
				sts, hits := g.ExtStatements(x)
				if !equalSpans(sts, wantSts) {
					t.Fatalf("n=%d siteLevel=%v: ExtStatements(%d) = %v, want %v", n, siteLevel, x, sts, wantSts)
				}
				for i := range hits {
					if hits[i] != wantHits[i] {
						t.Fatalf("n=%d siteLevel=%v: ExtStatements(%d) hit[%d] = %v, want %v",
							n, siteLevel, x, i, hits[i], wantHits[i])
					}
				}
			}
			// Blocks tile the spans in extractor order.
			pos := map[int32]int{}
			for _, b := range g.ExtStatementBlocks() {
				sts, hits := g.ExtBlockStatements(b)
				if len(sts) == 0 || len(sts) != len(hits) {
					t.Fatalf("n=%d siteLevel=%v: bad block %+v", n, siteLevel, b)
				}
				full, _ := g.ExtStatements(b.Group)
				if pos[b.Group]+len(sts) > len(full) || !equalSpans(sts, full[pos[b.Group]:pos[b.Group]+len(sts)]) {
					t.Fatalf("n=%d siteLevel=%v: block %+v does not continue span of extractor %d",
						n, siteLevel, b, b.Group)
				}
				pos[b.Group] += len(sts)
			}
			for x := int32(0); x < int32(g.NumExtractors()); x++ {
				full, _ := g.ExtStatements(x)
				if pos[x] != len(full) {
					t.Fatalf("n=%d siteLevel=%v: blocks cover %d of %d statements of extractor %d",
						n, siteLevel, pos[x], len(full), x)
				}
			}
		}
	}
}

// TestInternParallelMatchesSequential is the forced-worker property test for
// the shard-and-merge interning pass: above the shard threshold, the whole
// compiled graph — every ID space, every CSR span, every extractor list and
// the ext→statement blocks — must be identical to the sequential build for
// any worker count.
func TestInternParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := internShardThreshold + 4321
	xs := randomExtractions(rng, n)
	for _, siteLevel := range []bool{false, true} {
		want := CompileWorkers(xs, siteLevel, 1)
		for _, workers := range []int{2, 3, 7, 8} {
			got := CompileWorkers(xs, siteLevel, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("siteLevel=%v workers=%d: parallel interning diverged from sequential", siteLevel, workers)
			}
		}
	}
}

func TestCompiledGraphEmpty(t *testing.T) {
	g := Compile(nil, false)
	if g.NumStatements() != 0 || g.NumSources() != 0 || g.NumTriples() != 0 ||
		g.NumItems() != 0 || g.NumExtractors() != 0 || g.MaxItemTriples() != 0 {
		t.Fatalf("empty graph not empty: %+v", g)
	}
}

func equalSpans(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func names(g *Compiled, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.ExtractorName(id)
	}
	return out
}

func equalNames(g *Compiled, ids []int32, want []string) bool {
	if len(ids) != len(want) {
		return false
	}
	for i, id := range ids {
		if g.ExtractorName(id) != want[i] {
			return false
		}
	}
	return true
}

func hasString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
