package extract

import (
	"strconv"
	"strings"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

// ConfStyle selects an extractor's confidence model. Figure 21 shows the
// real extractors differ wildly: some produce informative confidences, some
// uninformative ones, and some actively misleading ones.
type ConfStyle uint8

const (
	// ConfNone: the extractor reports no confidence (DOM5, TBL2).
	ConfNone ConfStyle = iota
	// ConfInformative: confidence correlates with correctness, spread
	// around the middle (TXT1 style).
	ConfInformative
	// ConfBimodal: confidences cluster near 0 and 1 and correlate with
	// correctness (DOM2 style).
	ConfBimodal
	// ConfUninformative: confidences cluster near 0 and 1 but are
	// independent of correctness (ANO style).
	ConfUninformative
	// ConfMisleading: accuracy peaks at medium confidence (TBL style).
	ConfMisleading
)

// PatternStyle selects how an extractor derives its pattern identifier.
type PatternStyle uint8

const (
	// PatNone: the extractor has no patterns (Table 2's "No pat.").
	PatNone PatternStyle = iota
	// PatTemplate: patterns key on (sentence template, attribute) — the
	// distant-supervision TXT extractors.
	PatTemplate
	// PatSiteAttr: patterns key on (site, attribute) — wrapper-induction
	// style DOM extraction.
	PatSiteAttr
)

// Extractor simulates one of the paper's 12 extractors.
type Extractor struct {
	// Name is the paper's extractor name, e.g. "TXT1".
	Name string
	// ContentTypes lists the content forms this extractor reads. DOM
	// extractors may include TBL: "an extractor targeted at DOM can also
	// extract from TBL since Web tables are in DOM-tree format".
	ContentTypes []web.ContentType
	// SiteClasses restricts the extractor to site profiles (e.g. TXT4 runs
	// only on wiki sites); empty means all sites.
	SiteClasses []string

	// Recall is the probability the extractor fires on an available,
	// pattern-covered statement.
	Recall float64
	// Patterns selects the pattern identifier scheme.
	Patterns PatternStyle
	// PatternCoverage is the fraction of patterns the extractor knows
	// (deterministic per pattern); 1 when Patterns == PatNone.
	PatternCoverage float64
	// ToxicPatternRate is the fraction of known patterns that are
	// systematically broken: every firing produces the same wrong reading.
	ToxicPatternRate float64
	// TripleIDRate is the stochastic triple-identification error rate,
	// scaled per predicate by the world's extraction difficulty.
	TripleIDRate float64

	// Linker resolves entity mentions; shared linkers create correlated
	// errors across extractors.
	Linker *Linker
	// Mapper resolves attribute labels to predicates.
	Mapper *SchemaMapper

	// Conf selects the confidence model.
	Conf ConfStyle
	// EntityPredsOnly restricts extraction to entity-valued predicates
	// (DOM3/DOM4 "focus on identifying entity types").
	EntityPredsOnly bool
}

// siteClass extracts the profile prefix of a synthetic site name
// ("wiki042.example.com" → "wiki").
func siteClass(site string) string {
	for i := 0; i < len(site); i++ {
		if site[i] >= '0' && site[i] <= '9' {
			return site[:i]
		}
	}
	return site
}

// runsOn reports whether the extractor processes pages of this site.
func (e *Extractor) runsOn(site string) bool {
	if len(e.SiteClasses) == 0 {
		return true
	}
	c := siteClass(site)
	for _, s := range e.SiteClasses {
		if s == c {
			return true
		}
	}
	return false
}

// reads reports whether the extractor parses the given content type.
func (e *Extractor) reads(ct web.ContentType) bool {
	for _, t := range e.ContentTypes {
		if t == ct {
			return true
		}
	}
	return false
}

// patternKey derives the pattern identifier for a mention, or "" when the
// extractor has none. The second result is false when the extractor does not
// know the pattern and therefore cannot extract the statement.
func (e *Extractor) patternKey(page *web.Page, tpl int, m web.Mention) (string, bool) {
	switch e.Patterns {
	case PatTemplate:
		key := "tpl" + strconv.Itoa(tpl) + "|" + m.AttrLabel
		if hashProb(e.Name, "pat", key) >= e.PatternCoverage {
			return "", false
		}
		return key, true
	case PatSiteAttr:
		key := siteClass(page.Site) + "|" + m.AttrLabel
		if hashProb(e.Name, "pat", key) >= e.PatternCoverage {
			return "", false
		}
		return key, true
	default:
		return "", true
	}
}

// Extract runs the extractor over one page. src must be a stream dedicated
// to this (extractor, page) pair so corpora extract deterministically and
// independently of page order.
func (e *Extractor) Extract(w *world.World, page *web.Page, src *randx.Source) []Extraction {
	if !e.runsOn(page.Site) {
		return nil
	}
	var out []Extraction
	seen := make(map[kb.Triple]bool)
	for bi := range page.Blocks {
		b := &page.Blocks[bi]
		if !e.reads(b.Type) {
			continue
		}
		switch b.Type {
		case web.TXT:
			for _, s := range b.Sentences {
				e.extractMention(w, page, s.Template, s.M, src, seen, &out)
			}
		default:
			for _, m := range b.Mentions() {
				e.extractMention(w, page, 0, m, src, seen, &out)
			}
		}
	}
	return out
}

func (e *Extractor) extractMention(w *world.World, page *web.Page, tpl int, m web.Mention, src *randx.Source, seen map[kb.Triple]bool, out *[]Extraction) {
	pred := w.Ont.Predicate(m.Predicate)
	if e.EntityPredsOnly && (pred == nil || pred.Domain != kb.DomainEntity) {
		return
	}
	pattern, known := e.patternKey(page, tpl, m)
	if !known {
		return
	}
	if !src.Bool(e.Recall) {
		return
	}

	triple, kind := e.interpret(w, page, pattern, m, src)
	if triple.Object.IsZero() {
		return
	}
	if kind == ErrNone && m.SourceError {
		kind = ErrSource
	}
	if seen[triple] {
		return // one extraction per (extractor, URL, triple)
	}
	seen[triple] = true
	*out = append(*out, Extraction{
		Triple:     triple,
		Extractor:  e.Name,
		Pattern:    pattern,
		URL:        page.URL,
		Site:       page.Site,
		Confidence: e.confidence(src, kind),
		Error:      kind,
	})
}

// interpret parses a mention into a triple, possibly injecting errors. The
// returned ErrorKind is the dominant *extraction* error (ErrNone when the
// extractor faithfully read the page).
func (e *Extractor) interpret(w *world.World, page *web.Page, pattern string, m web.Mention, src *randx.Source) (kb.Triple, ErrorKind) {
	// Toxic patterns systematically misread: same wrong output for the
	// same input everywhere, across all pages the pattern fires on.
	if pattern != "" && hashProb(e.Name, "toxic", pattern) < e.ToxicPatternRate {
		return e.toxicReading(page, pattern, m), ErrTripleID
	}

	// Entity linkage: resolve the subject mention and, for entity-valued
	// objects, the object mention. Mistakes are deterministic per name.
	subject, subjErr := e.Linker.Resolve(m.SubjectName, m.Subject)
	object := m.Object
	objErr := false
	if _, isEnt := m.Object.Entity(); isEnt {
		resolved, bad := e.Linker.Resolve(m.ObjectName, kb.EntityID(m.Object.Str))
		object = kb.EntityObject(resolved)
		objErr = bad
	}

	// Predicate linkage via the schema mapper.
	predicate, predErr := e.Mapper.Map(m.Predicate)

	// Stochastic triple-identification errors, scaled by how hard the
	// predicate is to extract (Figure 4's per-predicate spread). Rates may
	// exceed 1 before clamping: the weakest extractors (DOM2-style) are
	// wrong on easy predicates too.
	rate := e.TripleIDRate * (0.35 + 1.3*w.Difficulty[m.Predicate])
	if rate > 0.97 {
		rate = 0.97
	}
	if src.Bool(rate) {
		return e.tripleIDError(w, page, m, subject, predicate, object, src), ErrTripleID
	}

	t := kb.Triple{Subject: subject, Predicate: predicate, Object: object}
	switch {
	case subjErr || objErr:
		return t, ErrEntityLink
	case predErr:
		return t, ErrPredicateLink
	default:
		return t, ErrNone
	}
}

// toxicReading is the fixed wrong output of a broken pattern: it mangles the
// object span deterministically, so every page the pattern fires on yields
// the same wrong triple for the same statement — wrong triples with very
// many supporting URLs (Figure 7's drops).
func (e *Extractor) toxicReading(page *web.Page, pattern string, m web.Mention) kb.Triple {
	switch hashPick(3, e.Name, "toxicmode", pattern) {
	case 0:
		// Take only the first word of the object span ("part of the album
		// name as the artist").
		return kb.Triple{Subject: m.Subject, Predicate: m.Predicate, Object: kb.StringObject(firstWord(m.ObjectName))}
	case 1:
		// Read the attribute label cell as the value.
		return kb.Triple{Subject: m.Subject, Predicate: m.Predicate, Object: kb.StringObject(m.AttrLabel)}
	default:
		// Concatenate subject and object spans.
		return kb.Triple{Subject: m.Subject, Predicate: m.Predicate, Object: kb.StringObject(firstWord(m.SubjectName) + " " + m.ObjectName)}
	}
}

// tripleIDError produces a plausible wrong reading of the page region. Most
// mis-segmentations land on OTHER data items (wrong subject, swapped roles):
// the paper's junk spreads across items ("taking part of the album name as
// the artist"), so most items carry either the truth or nothing — which is
// what exposes VOTE's pathologies on single-value items (Figure 9).
func (e *Extractor) tripleIDError(w *world.World, page *web.Page, m web.Mention, subject kb.EntityID, predicate kb.PredicateID, object kb.Object, src *randx.Source) kb.Triple {
	switch src.Intn(8) {
	case 0, 1, 2, 3:
		// Attach the value to another entity mentioned on the page.
		if other := otherSubject(page, m.Subject, src); other != "" {
			return kb.Triple{Subject: other, Predicate: predicate, Object: object}
		}
		fallthrough
	case 4, 5:
		// Mangle the object span.
		return kb.Triple{Subject: subject, Predicate: predicate, Object: mangleObject(m, src)}
	case 6:
		// Swap subject and object when the object is an entity.
		if obj, ok := object.Entity(); ok {
			return kb.Triple{Subject: obj, Predicate: predicate, Object: kb.EntityObject(subject)}
		}
		return kb.Triple{Subject: subject, Predicate: predicate, Object: mangleObject(m, src)}
	default:
		// Attach a neighbouring statement's value to this item.
		if v := otherValue(page, m, src); !v.IsZero() {
			return kb.Triple{Subject: subject, Predicate: predicate, Object: v}
		}
		return kb.Triple{Subject: subject, Predicate: predicate, Object: mangleObject(m, src)}
	}
}

func otherSubject(page *web.Page, not kb.EntityID, src *randx.Source) kb.EntityID {
	ms := page.Mentions()
	for try := 0; try < 4 && len(ms) > 0; try++ {
		c := ms[src.Intn(len(ms))].Subject
		if c != not {
			return c
		}
	}
	if page.Topic != "" && page.Topic != not {
		return page.Topic
	}
	return ""
}

func otherValue(page *web.Page, m web.Mention, src *randx.Source) kb.Object {
	ms := page.Mentions()
	for try := 0; try < 4 && len(ms) > 0; try++ {
		c := ms[src.Intn(len(ms))]
		if c.Object != m.Object {
			return c.Object
		}
	}
	return kb.Object{}
}

// mangleObject produces long-tail span-reading garbage. Unlike the toxic
// patterns (whose wrong output is deliberately repeatable), these mistakes
// vary per extraction: real extractors mis-segment differently in different
// page contexts, so most wrong readings are near-unique strings with little
// accumulated support.
func mangleObject(m web.Mention, src *randx.Source) kb.Object {
	switch m.Object.Kind {
	case kb.KindNumber:
		// Off-by-digit misreadings.
		switch src.Intn(3) {
		case 0:
			return kb.NumberObject(m.Object.Num*10 + float64(src.Intn(10)))
		case 1:
			return kb.NumberObject(m.Object.Num + float64(1+src.Intn(9)))
		default:
			return kb.NumberObject(float64(int(m.Object.Num) / 10))
		}
	default:
		s := m.ObjectName
		switch src.Intn(4) {
		case 0:
			return kb.StringObject(firstWord(s))
		case 1:
			return kb.StringObject(lastWord(s))
		case 2:
			// Random truncation: a distinct garbage string per extraction.
			if len(s) > 2 {
				return kb.StringObject(s[:1+src.Intn(len(s)-1)])
			}
			return kb.StringObject(s + "?")
		default:
			// Span overrun: the value glued to neighbouring words.
			return kb.StringObject(s + " " + firstWord(m.SubjectName))
		}
	}
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

func lastWord(s string) string {
	if i := strings.LastIndexByte(s, ' '); i >= 0 && i+1 < len(s) {
		return s[i+1:]
	}
	return s
}

// confidence draws a self-reported confidence given whether the extraction
// was corrupted. Source errors look like faithful extractions to the
// extractor, so they get "correct"-shaped confidences.
func (e *Extractor) confidence(src *randx.Source, kind ErrorKind) float64 {
	correct := kind == ErrNone || kind == ErrSource
	switch e.Conf {
	case ConfNone:
		return -1
	case ConfInformative:
		if correct {
			return src.Clamped01(0.68, 0.18)
		}
		return src.Clamped01(0.38, 0.18)
	case ConfBimodal:
		if correct {
			if src.Bool(0.85) {
				return src.Clamped01(0.92, 0.08)
			}
			return src.Clamped01(0.15, 0.1)
		}
		if src.Bool(0.72) {
			return src.Clamped01(0.08, 0.08)
		}
		return src.Clamped01(0.9, 0.08)
	case ConfUninformative:
		if src.Bool(0.5) {
			return src.Clamped01(0.9, 0.1)
		}
		return src.Clamped01(0.12, 0.1)
	case ConfMisleading:
		// Accuracy peaks at medium confidence: correct extractions get
		// mid confidences, wrong ones get extreme ones.
		if correct {
			return src.Clamped01(0.5, 0.12)
		}
		if src.Bool(0.5) {
			return src.Clamped01(0.9, 0.1)
		}
		return src.Clamped01(0.1, 0.1)
	default:
		return -1
	}
}
