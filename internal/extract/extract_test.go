package extract

import (
	"testing"

	"kfusion/internal/kb"
	"kfusion/internal/randx"
	"kfusion/internal/web"
	"kfusion/internal/world"
)

func testSetup(t testing.TB, seed int64) (*world.World, *web.Corpus, *Suite, []Extraction) {
	t.Helper()
	w := world.MustGenerate(world.DefaultConfig(seed))
	corpus := web.MustGenerate(w, web.DefaultConfig(seed+1))
	suite := NewSuite(w, seed+2)
	return w, corpus, suite, suite.Run(w, corpus)
}

func TestRunDeterministic(t *testing.T) {
	_, _, _, a := testSetup(t, 21)
	_, _, _, b := testSetup(t, 21)
	if len(a) != len(b) {
		t.Fatalf("extraction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("extraction %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestAllExtractorsFire(t *testing.T) {
	_, _, suite, xs := testSetup(t, 22)
	counts := map[string]int{}
	for _, x := range xs {
		counts[x.Extractor]++
	}
	for _, name := range suite.Names() {
		if counts[name] == 0 {
			t.Errorf("extractor %s produced no extractions", name)
		}
	}
	if len(xs) < 5000 {
		t.Errorf("too few extractions overall: %d", len(xs))
	}
}

func extractorAccuracy(w *world.World, xs []Extraction) map[string][2]int {
	acc := map[string][2]int{}
	for _, x := range xs {
		c := acc[x.Extractor]
		c[1]++
		if w.IsTrue(x.Triple) {
			c[0]++
		}
		acc[x.Extractor] = c
	}
	return acc
}

func TestExtractorAccuracySpread(t *testing.T) {
	w, _, suite, xs := testSetup(t, 23)
	acc := extractorAccuracy(w, xs)
	rates := map[string]float64{}
	for _, name := range suite.Names() {
		c := acc[name]
		if c[1] == 0 {
			t.Fatalf("no extractions for %s", name)
		}
		rates[name] = float64(c[0]) / float64(c[1])
		t.Logf("%-5s accuracy %.3f  (%d triples)", name, rates[name], c[1])
	}
	// Table 2's ordering at the extremes: TXT4 is the most accurate
	// extractor, DOM2 the least; the spread is wide.
	for name, r := range rates {
		if name != "TXT4" && r > rates["TXT4"] {
			t.Errorf("%s accuracy %.2f exceeds TXT4's %.2f", name, r, rates["TXT4"])
		}
		if name != "DOM2" && r < rates["DOM2"] {
			t.Errorf("%s accuracy %.2f below DOM2's %.2f", name, r, rates["DOM2"])
		}
	}
	if rates["TXT4"] < 0.6 {
		t.Errorf("TXT4 accuracy %.2f too low (Table 2: 0.78)", rates["TXT4"])
	}
	if rates["DOM2"] > 0.25 {
		t.Errorf("DOM2 accuracy %.2f too high (Table 2: 0.09)", rates["DOM2"])
	}
	if rates["TXT4"]-rates["DOM2"] < 0.4 {
		t.Errorf("accuracy spread too narrow: %.2f..%.2f", rates["DOM2"], rates["TXT4"])
	}
}

func TestOverallAccuracyNearPaper(t *testing.T) {
	w, _, _, xs := testSetup(t, 24)
	// The paper estimates ~30% of extracted triples are correct. Unique
	// triples, not extraction instances.
	uniq := map[kb.Triple]bool{}
	trueN := 0
	for _, x := range xs {
		if !uniq[x.Triple] {
			uniq[x.Triple] = true
			if w.IsTrue(x.Triple) {
				trueN++
			}
		}
	}
	rate := float64(trueN) / float64(len(uniq))
	t.Logf("unique triples %d, overall accuracy %.3f", len(uniq), rate)
	if rate < 0.15 || rate > 0.5 {
		t.Errorf("overall unique-triple accuracy %.2f outside [0.15,0.50] (paper: ~0.30)", rate)
	}
}

func TestErrorKindConsistency(t *testing.T) {
	w, _, _, xs := testSetup(t, 25)
	for _, x := range xs {
		switch x.Error {
		case ErrNone:
			if !w.IsTrue(x.Triple) {
				t.Fatalf("ErrNone extraction is false: %+v", x)
			}
		case ErrSource:
			if w.IsTrue(x.Triple) {
				t.Fatalf("ErrSource extraction is true: %+v", x)
			}
		}
	}
}

func TestErrorMixMatchesPaper(t *testing.T) {
	w, _, _, xs := testSetup(t, 26)
	// Among FALSE extractions: extraction errors dominate, source errors
	// are a small minority (§3.2.1: 44/44/20/4).
	counts := map[ErrorKind]int{}
	falseN := 0
	for _, x := range xs {
		if w.IsTrue(x.Triple) {
			continue
		}
		falseN++
		counts[x.Error]++
	}
	if falseN == 0 {
		t.Fatal("no false extractions")
	}
	srcShare := float64(counts[ErrSource]) / float64(falseN)
	if srcShare > 0.15 {
		t.Errorf("source errors are %.1f%% of false extractions; should be a small minority", 100*srcShare)
	}
	for _, k := range []ErrorKind{ErrTripleID, ErrEntityLink, ErrPredicateLink} {
		if counts[k] == 0 {
			t.Errorf("no false extraction attributed to %v", k)
		}
	}
	if counts[ErrTripleID] < counts[ErrPredicateLink] {
		t.Errorf("triple-identification errors (%d) should outnumber predicate-linkage errors (%d)",
			counts[ErrTripleID], counts[ErrPredicateLink])
	}
}

func TestConfidenceRanges(t *testing.T) {
	_, _, _, xs := testSetup(t, 27)
	noConf := map[string]bool{"DOM5": true, "TBL2": true}
	for _, x := range xs {
		if noConf[x.Extractor] {
			if x.HasConfidence() {
				t.Fatalf("%s should not report confidence: %+v", x.Extractor, x)
			}
			continue
		}
		if !x.HasConfidence() || x.Confidence > 1 {
			t.Fatalf("bad confidence %v for %s", x.Confidence, x.Extractor)
		}
	}
}

func TestConfidenceInformativeness(t *testing.T) {
	w, _, _, xs := testSetup(t, 28)
	// TXT1's confidences should be informative: accuracy above threshold
	// 0.7 clearly better than below (Table 2: 0.36 → 0.52).
	hiT, hiC, loT, loC := 0, 0, 0, 0
	for _, x := range xs {
		if x.Extractor != "TXT1" {
			continue
		}
		if x.Confidence >= 0.7 {
			hiT++
			if w.IsTrue(x.Triple) {
				hiC++
			}
		} else {
			loT++
			if w.IsTrue(x.Triple) {
				loC++
			}
		}
	}
	if hiT < 50 || loT < 50 {
		t.Skip("not enough TXT1 volume")
	}
	hi, lo := float64(hiC)/float64(hiT), float64(loC)/float64(loT)
	if hi <= lo {
		t.Errorf("TXT1 high-confidence accuracy %.2f not above low-confidence %.2f", hi, lo)
	}
}

func TestSiteRestrictedExtractors(t *testing.T) {
	_, _, _, xs := testSetup(t, 29)
	for _, x := range xs {
		cls := siteClass(x.Site)
		switch x.Extractor {
		case "TXT3":
			if cls != "news" {
				t.Fatalf("TXT3 extracted from %s", x.Site)
			}
		case "TXT4", "DOM5":
			if cls != "wiki" {
				t.Fatalf("%s extracted from %s", x.Extractor, x.Site)
			}
		case "TXT2":
			if cls == "wiki" || cls == "news" {
				t.Fatalf("TXT2 extracted from %s", x.Site)
			}
		}
	}
}

func TestPatternsOnlyForPatternExtractors(t *testing.T) {
	_, _, suite, xs := testSetup(t, 30)
	for _, x := range xs {
		e := suite.ByName(x.Extractor)
		if e.Patterns == PatNone && x.Pattern != "" {
			t.Fatalf("%s reported pattern %q", x.Extractor, x.Pattern)
		}
		if e.Patterns != PatNone && x.Pattern == "" {
			t.Fatalf("%s missing pattern", x.Extractor)
		}
	}
}

func TestSharedLinkerCausesCorrelatedErrors(t *testing.T) {
	w, _, _, xs := testSetup(t, 31)
	// Some false triple must be extracted by >= 4 extractors (shared
	// linkage/toxic mistakes) — the phenomenon behind Figure 6's drop.
	extractorsPerTriple := map[kb.Triple]map[string]bool{}
	for _, x := range xs {
		if extractorsPerTriple[x.Triple] == nil {
			extractorsPerTriple[x.Triple] = map[string]bool{}
		}
		extractorsPerTriple[x.Triple][x.Extractor] = true
	}
	maxFalse := 0
	for tr, exts := range extractorsPerTriple {
		if !w.IsTrue(tr) && len(exts) > maxFalse {
			maxFalse = len(exts)
		}
	}
	if maxFalse < 4 {
		t.Errorf("max extractors agreeing on a false triple = %d; want >= 4 (correlated errors)", maxFalse)
	}
}

func TestLinkerDeterministicPerName(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(40))
	l := NewLinker("test-linker", 0.3, w)
	for _, eid := range w.Ont.Entities()[:200] {
		name := w.Ont.Entity(eid).Name
		a, errA := l.Resolve(name, eid)
		b, errB := l.Resolve(name, eid)
		if a != b || errA != errB {
			t.Fatalf("linker not deterministic for %q: %v/%v vs %v/%v", name, a, errA, b, errB)
		}
	}
}

func TestLinkerErrorRateScales(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(41))
	strict := NewLinker("strict", 0.0, w)
	sloppy := NewLinker("sloppy", 0.5, w)
	strictErrs, sloppyErrs := 0, 0
	for _, eid := range w.Ont.Entities() {
		name := w.Ont.Entity(eid).Name
		if _, bad := strict.Resolve(name, eid); bad {
			strictErrs++
		}
		if _, bad := sloppy.Resolve(name, eid); bad {
			sloppyErrs++
		}
	}
	if sloppyErrs <= strictErrs {
		t.Errorf("sloppy linker errors (%d) not above strict linker errors (%d)", sloppyErrs, strictErrs)
	}
}

func TestSchemaMapperDeterministicAndScaled(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(42))
	m := NewSchemaMapper("m1", 0.5, w)
	clean := NewSchemaMapper("m2", 0.0, w)
	errs := 0
	for _, pid := range w.Ont.Predicates() {
		a, badA := m.Map(pid)
		b, badB := m.Map(pid)
		if a != b || badA != badB {
			t.Fatalf("mapper not deterministic for %s", pid)
		}
		if badA {
			errs++
			p, q := w.Ont.Predicate(pid), w.Ont.Predicate(a)
			if p.SubjectType != q.SubjectType || p.Domain != q.Domain {
				t.Fatalf("mapper produced non-sibling: %s -> %s", pid, a)
			}
		}
		if got, bad := clean.Map(pid); bad || got != pid {
			t.Fatalf("zero-rate mapper erred on %s", pid)
		}
	}
	if errs == 0 {
		t.Error("0.5-rate mapper never erred")
	}
}

func TestUniqueTriples(t *testing.T) {
	_, _, _, xs := testSetup(t, 43)
	uniq := UniqueTriples(xs)
	seen := map[kb.Triple]bool{}
	for _, x := range uniq {
		if seen[x.Triple] {
			t.Fatal("UniqueTriples returned a duplicate")
		}
		seen[x.Triple] = true
	}
	if len(uniq) >= len(xs) {
		t.Errorf("no deduplication happened: %d unique of %d", len(uniq), len(xs))
	}
}

func TestExtractorPageLevelDeterminism(t *testing.T) {
	w := world.MustGenerate(world.DefaultConfig(44))
	corpus := web.MustGenerate(w, web.DefaultConfig(45))
	suite := NewSuite(w, 46)
	page := corpus.Pages[0]
	e := suite.Extractors[0]
	a := e.Extract(w, page, randx.New(7))
	b := e.Extract(w, page, randx.New(7))
	if len(a) != len(b) {
		t.Fatalf("page extraction not deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("extraction %d differs", i)
		}
	}
}
