package extract

// Append: the extraction graph as one generation of an append-only feed.
//
// The paper's setting is a continuously crawled Web — extraction feeds grow,
// they are not recompiled from scratch. Append extends a compiled extraction
// graph with a batch and returns the next generation, bit-identical to
// CompileWorkers over the concatenated stream: every ID space is assigned in
// first-occurrence order (an invariant of Compile since the beginning), so
// the IDs of existing sources, extractors, triples, items and statements
// never move — only the batch is hashed, against the interning index the
// previous compilation left behind. The derived CSR arrays are rebuilt as
// O(total) array passes: the per-source/per-triple/per-item statement spans
// merge through csr.AppendByGroup (new statement IDs all exceed old ones, so
// each span is oldSpan ++ newIDs), the flattened extractor lists re-flatten
// around the batch's additions, and the ext→statement incidence — whose
// rows can interleave old and new statements when a batch introduces a new
// (extractor, source) pairing — is rebuilt by the same parallel pass a
// fresh compile uses. No string or triple is re-hashed for the prefix.

import (
	"runtime"
	"slices"

	"kfusion/internal/csr"
)

// Append extends the compiled graph with an extraction batch and returns the
// next generation, using all available cores. The result is bit-identical to
// Compile over the concatenated extraction stream; existing IDs are stable.
// The receiver stays fully usable (its arrays are never mutated); the
// mutable interning index moves to the returned generation, so appends
// should chain (g0 -> g1 -> g2 ...) — a second Append on the same generation
// is correct but rebuilds the index first.
func (g *Compiled) Append(xs []Extraction) *Compiled {
	return g.AppendWorkers(xs, 0)
}

// AppendWorkers is Append with an explicit worker bound (0 = GOMAXPROCS).
// The graph is identical for any workers value.
func (g *Compiled) AppendWorkers(xs []Extraction, workers int) *Compiled {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := g.takeIndex()
	nStOld := len(g.stSource)
	nSrcOld := len(g.sources)
	nTriOld := len(g.triples)

	next := &Compiled{
		siteLevel: g.siteLevel,
		gen:       g.gen + 1,
		idx:       idx,

		sources:      slices.Clip(g.sources),
		extractors:   slices.Clip(g.extractors),
		stSource:     slices.Clip(g.stSource),
		stTriple:     slices.Clip(g.stTriple),
		triples:      slices.Clip(g.triples),
		itemOfTriple: slices.Clip(g.itemOfTriple),
		items:        slices.Clip(g.items),
	}

	// Extractor-list growth: additions to existing statements/sources are
	// keyed sparsely (most are untouched by a batch); new statements/sources
	// get dense lists indexed from the old counts.
	stAdd := map[int32][]int32{}
	srcAdd := map[int32][]int32{}
	var newStLists, newSrcLists [][]int32
	stExts := func(si int32) ([]int32, []int32) { // old span + additions
		if si < int32(nStOld) {
			return g.stExts[g.stExtStart[si]:g.stExtStart[si+1]], stAdd[si]
		}
		return nil, newStLists[si-int32(nStOld)]
	}
	srcExts := func(s int32) ([]int32, []int32) {
		if s < int32(nSrcOld) {
			return g.srcExts[g.srcExtStart[s]:g.srcExtStart[s+1]], srcAdd[s]
		}
		return nil, newSrcLists[s-int32(nSrcOld)]
	}

	// ---- Intern the batch, continuing the retained maps ----
	// This mirrors internSequential exactly; only the batch is hashed.
	for i := range xs {
		x := &xs[i]
		key := x.URL
		if next.siteLevel {
			key = x.Site
		}
		src, ok := idx.src[key]
		if !ok {
			src = int32(len(next.sources))
			idx.src[key] = src
			next.sources = append(next.sources, key)
			newSrcLists = append(newSrcLists, nil)
		}
		ext, ok := idx.ext[x.Extractor]
		if !ok {
			ext = int32(len(next.extractors))
			idx.ext[x.Extractor] = ext
			next.extractors = append(next.extractors, x.Extractor)
		}
		if old, add := srcExts(src); !containsID(old, ext) && !containsID(add, ext) {
			if src < int32(nSrcOld) {
				srcAdd[src] = append(srcAdd[src], ext)
			} else {
				newSrcLists[src-int32(nSrcOld)] = append(newSrcLists[src-int32(nSrcOld)], ext)
			}
		}
		tri, ok := idx.tri[x.Triple]
		if !ok {
			tri = int32(len(next.triples))
			idx.tri[x.Triple] = tri
			next.triples = append(next.triples, x.Triple)
			item, iok := idx.item[x.Triple.Item()]
			if !iok {
				item = int32(len(next.items))
				idx.item[x.Triple.Item()] = item
				next.items = append(next.items, x.Triple.Item())
			}
			next.itemOfTriple = append(next.itemOfTriple, item)
		}
		si, ok := idx.st[stKey{src, tri}]
		if !ok {
			si = int32(len(next.stSource))
			idx.st[stKey{src, tri}] = si
			next.stSource = append(next.stSource, src)
			next.stTriple = append(next.stTriple, tri)
			newStLists = append(newStLists, nil)
		}
		if old, add := stExts(si); !containsID(old, ext) && !containsID(add, ext) {
			if si < int32(nStOld) {
				stAdd[si] = append(stAdd[si], ext)
			} else {
				newStLists[si-int32(nStOld)] = append(newStLists[si-int32(nStOld)], ext)
			}
		}
	}

	nSt := len(next.stSource)
	nSrc := len(next.sources)
	nTriples := len(next.triples)
	nItems := len(next.items)

	// ---- Re-flatten the extractor lists around the additions ----
	next.stExtStart, next.stExts = reflattenLists(g.stExtStart, g.stExts, stAdd, newStLists, nSt)
	next.srcExtStart, next.srcExts = reflattenLists(g.srcExtStart, g.srcExts, srcAdd, newSrcLists, nSrc)

	// ---- CSR adjacency by ordered span merge ----
	next.srcStStart, next.srcSts = csr.AppendByGroup(g.srcStStart, g.srcSts, next.stSource[nStOld:], nSrc, workers)
	next.tripleStStart, next.tripleSts = csr.AppendByGroup(g.tripleStStart, g.tripleSts, next.stTriple[nStOld:], nTriples, workers)
	next.itemTripleStart, next.itemTriples = csr.AppendByGroup(g.itemTripleStart, g.itemTriples, next.itemOfTriple[nTriOld:], nItems, workers)
	for i := 0; i < nItems; i++ {
		if n := int(next.itemTripleStart[i+1] - next.itemTripleStart[i]); n > next.maxItemTriples {
			next.maxItemTriples = n
		}
	}

	// ---- Support counts: extend, then recount only what the batch touched ----
	next.itemStatements = csr.ExtendInt32(g.itemStatements, nItems)
	for si := nStOld; si < nSt; si++ {
		next.itemStatements[next.itemOfTriple[next.stTriple[si]]]++
	}
	next.tripleExts = csr.ExtendInt32(g.tripleExts, nTriples)
	seen := make([]int32, len(next.extractors))
	for i := range seen {
		seen[i] = -1
	}
	touched := make(map[int32]bool, nSt-nStOld+len(stAdd))
	for si := nStOld; si < nSt; si++ {
		touched[next.stTriple[si]] = true
	}
	for si := range stAdd {
		touched[next.stTriple[si]] = true
	}
	//lint:ignore kflint/mapiter recountTriple overwrites only triple t's count, and the seen scratch is stamped with t itself so stale entries from other triples are ignored — per-key effects are disjoint.
	for t := range touched {
		next.recountTriple(t, seen)
	}

	// The ext→statement incidence interleaves old and new statement IDs when
	// the batch adds an extractor to an existing source (every old statement
	// of that source joins the extractor's span) — rebuild it with the
	// compile pass's parallel builder.
	next.buildExtStatements(workers)
	return next
}

// takeIndex claims the generation's interning index, rebuilding it from the
// immutable graph when another Append already took it. The rebuild hashes
// each distinct key once (not once per extraction); it exists for
// correctness — chained appends never hit it.
func (g *Compiled) takeIndex() *extractIndex {
	g.mu.Lock()
	idx := g.idx
	g.idx = nil
	g.mu.Unlock()
	if idx != nil {
		return idx
	}
	idx = newExtractIndex(len(g.stSource))
	for s, key := range g.sources {
		idx.src[key] = int32(s)
	}
	for x, key := range g.extractors {
		idx.ext[key] = int32(x)
	}
	for t := range g.triples {
		idx.tri[g.triples[t]] = int32(t)
	}
	for i := range g.items {
		idx.item[g.items[i]] = int32(i)
	}
	for si := range g.stSource {
		idx.st[stKey{g.stSource[si], g.stTriple[si]}] = int32(si)
	}
	return idx
}

// reflattenLists rebuilds a flattened (start, flat) extractor-list pair
// around sparse additions to old rows plus dense lists for new rows. Old row
// contents keep their relative order with additions appended — exactly the
// first-extraction order a full recompile would produce.
func reflattenLists(oldStart, oldFlat []int32, add map[int32][]int32, newLists [][]int32, nRows int) (start, flat []int32) {
	oldRows := len(oldStart) - 1
	if oldRows < 0 {
		oldRows = 0
	}
	total := len(oldFlat)
	for _, l := range add {
		total += len(l)
	}
	for _, l := range newLists {
		total += len(l)
	}
	start = make([]int32, nRows+1)
	flat = make([]int32, 0, total)
	for r := 0; r < nRows; r++ {
		start[r] = int32(len(flat))
		if r < oldRows {
			flat = append(flat, oldFlat[oldStart[r]:oldStart[r+1]]...)
			flat = append(flat, add[int32(r)]...)
		} else {
			flat = append(flat, newLists[r-oldRows]...)
		}
	}
	start[nRows] = int32(len(flat))
	return start, flat
}
