package extract

import (
	"bytes"
	"testing"
)

// TestExtractSnapshotRoundTrip checks the durability contract at the
// extraction layer: a decoded snapshot is field-identical to the encoded
// graph (including the rebuilt extBlocks partition) and re-encodes to the
// same bytes.
func TestExtractSnapshotRoundTrip(t *testing.T) {
	for _, siteLevel := range []bool{false, true} {
		xs := appendStream(400)
		g := Compile(xs, siteLevel)

		var buf bytes.Buffer
		if err := g.EncodeSnapshot(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := DecodeSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		appendGraphsEqual(t, "decoded", dec, g)
		if dec.gen != g.gen {
			t.Fatalf("gen = %d, want %d", dec.gen, g.gen)
		}

		var buf2 bytes.Buffer
		if err := dec.EncodeSnapshot(&buf2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding a decoded snapshot changed the bytes")
		}
	}
}

// TestExtractSnapshotAppendMatchesOriginal checks that a decoded generation
// accepts Append (rebuilding the interning index) and produces the exact
// graph the in-memory generation does.
func TestExtractSnapshotAppendMatchesOriginal(t *testing.T) {
	xs := appendStream(500)
	split := len(xs) / 2
	base := Compile(xs[:split], true)

	var buf bytes.Buffer
	if err := base.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	want := base.Append(xs[split:])
	got := dec.Append(xs[split:])
	appendGraphsEqual(t, "appended", got, want)
	if got.gen != want.gen {
		t.Fatalf("gen = %d, want %d", got.gen, want.gen)
	}
}

// TestExtractSnapshotDecodeCorrupt truncates and bit-flips an encoded
// snapshot and asserts decode never panics (checksums above this layer catch
// silent corruption; this is about decoder memory safety).
func TestExtractSnapshotDecodeCorrupt(t *testing.T) {
	g := Compile(appendStream(150), false)
	var buf bytes.Buffer
	if err := g.EncodeSnapshot(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodeSnapshot(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for off := 0; off < len(full); off += 11 {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x41
		_, _ = DecodeSnapshot(mut) // must not panic
	}
}
