package extract

import (
	"fmt"
	"io"

	"kfusion/internal/csr"
	"kfusion/internal/kb"
	"kfusion/internal/wire"
)

// snapshotVersion versions the Compiled wire encoding (see the fusion
// counterpart for the contract).
const snapshotVersion = 1

// EncodeSnapshot serializes the compiled extraction graph — every ID table
// and CSR span verbatim — so a decoded graph is field-identical and
// Append/FuseCompiled behave bit-identically. extBlocks is the only derived
// field: it is a pure function of extStStart and is rebuilt on decode. The
// interning index is not serialized; the first Append rebuilds it.
func (g *Compiled) EncodeSnapshot(out io.Writer) error {
	w := wire.NewWriter(out)
	w.U8(snapshotVersion)
	w.Int(g.gen)
	w.Bool(g.siteLevel)

	w.Strings(g.sources)
	w.Strings(g.extractors)
	kb.EncodeTriples(w, g.triples)
	kb.EncodeItems(w, g.items)

	w.Int32s(g.stSource)
	w.Int32s(g.stTriple)
	w.Int32s(g.stExtStart)
	w.Int32s(g.stExts)

	w.Int32s(g.srcExtStart)
	w.Int32s(g.srcExts)
	w.Int32s(g.srcStStart)
	w.Int32s(g.srcSts)

	w.Int32s(g.tripleStStart)
	w.Int32s(g.tripleSts)
	w.Int32s(g.tripleExts)
	w.Int32s(g.itemOfTriple)
	w.Int32s(g.itemTripleStart)
	w.Int32s(g.itemTriples)
	w.Int32s(g.itemStatements)

	w.Int32s(g.extStStart)
	w.Int32s(g.extSts)
	w.Bools(g.extHits)

	w.Int(g.maxItemTriples)
	return w.Err()
}

// DecodeSnapshot reconstructs a Compiled from EncodeSnapshot bytes, with
// every length, ID and CSR span validated first so corrupt input errors
// instead of panicking.
func DecodeSnapshot(data []byte) (*Compiled, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("extract: snapshot version %d, want %d", v, snapshotVersion)
	}
	g := &Compiled{}
	g.gen = r.Int()
	g.siteLevel = r.Bool()

	g.sources = r.Strings()
	g.extractors = r.Strings()
	var err error
	g.triples, err = kb.DecodeTriples(r)
	if err != nil {
		return nil, fmt.Errorf("extract: snapshot: %w", err)
	}
	g.items, err = kb.DecodeItems(r)
	if err != nil {
		return nil, fmt.Errorf("extract: snapshot: %w", err)
	}

	g.stSource = r.Int32s()
	g.stTriple = r.Int32s()
	g.stExtStart = r.Int32s()
	g.stExts = r.Int32s()

	g.srcExtStart = r.Int32s()
	g.srcExts = r.Int32s()
	g.srcStStart = r.Int32s()
	g.srcSts = r.Int32s()

	g.tripleStStart = r.Int32s()
	g.tripleSts = r.Int32s()
	g.tripleExts = r.Int32s()
	g.itemOfTriple = r.Int32s()
	g.itemTripleStart = r.Int32s()
	g.itemTriples = r.Int32s()
	g.itemStatements = r.Int32s()

	g.extStStart = r.Int32s()
	g.extSts = r.Int32s()
	g.extHits = r.Bools()

	g.maxItemTriples = r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("extract: snapshot: %w", err)
	}

	nSrc := len(g.sources)
	nExt := len(g.extractors)
	nTriples := len(g.triples)
	nItems := len(g.items)
	nSt := len(g.stSource)
	if len(g.stTriple) != nSt {
		return nil, fmt.Errorf("extract: snapshot: stTriple has %d entries, want %d statements", len(g.stTriple), nSt)
	}
	if len(g.itemOfTriple) != nTriples || len(g.tripleExts) != nTriples {
		return nil, fmt.Errorf("extract: snapshot: triple column lengths disagree with %d triples", nTriples)
	}
	if len(g.itemStatements) != nItems {
		return nil, fmt.Errorf("extract: snapshot: itemStatements has %d entries, want %d items", len(g.itemStatements), nItems)
	}
	if len(g.extHits) != len(g.extSts) {
		return nil, fmt.Errorf("extract: snapshot: extHits has %d entries, want %d", len(g.extHits), len(g.extSts))
	}
	for _, c := range []struct {
		name string
		ids  []int32
		n    int
	}{
		{"stSource", g.stSource, nSrc},
		{"stTriple", g.stTriple, nTriples},
		{"stExts", g.stExts, nExt},
		{"srcExts", g.srcExts, nExt},
		{"srcSts", g.srcSts, nSt},
		{"tripleSts", g.tripleSts, nSt},
		{"itemOfTriple", g.itemOfTriple, nItems},
		{"itemTriples", g.itemTriples, nTriples},
		{"extSts", g.extSts, nSt},
	} {
		if err := wire.CheckIDs(c.name, c.ids, c.n); err != nil {
			return nil, fmt.Errorf("extract: snapshot: %w", err)
		}
	}
	for _, c := range []struct {
		name    string
		start   []int32
		groups  int
		flatLen int
	}{
		{"stExtStart", g.stExtStart, nSt, len(g.stExts)},
		{"srcExtStart", g.srcExtStart, nSrc, len(g.srcExts)},
		{"srcStStart", g.srcStStart, nSrc, len(g.srcSts)},
		{"tripleStStart", g.tripleStStart, nTriples, len(g.tripleSts)},
		{"itemTripleStart", g.itemTripleStart, nItems, len(g.itemTriples)},
		{"extStStart", g.extStStart, nExt, len(g.extSts)},
	} {
		if err := wire.CheckCSR(c.name, c.start, c.groups, c.flatLen); err != nil {
			return nil, fmt.Errorf("extract: snapshot: %w", err)
		}
	}

	if len(g.extStStart) > 0 {
		g.extBlocks = csr.SpanBlocks(g.extStStart)
	}
	g.buildExtHitsF()
	// idx stays nil: the first Append rebuilds it from the graph.
	return g, nil
}
