package extract

import (
	"testing"

	"kfusion/internal/stats"
	"kfusion/internal/world"
)

// confidenceProfile measures, for one extractor, accuracy per confidence
// tercile over an extraction set.
func confidenceProfile(w *world.World, xs []Extraction, name string) (lo, mid, hi float64, n int) {
	curves := [3]*stats.AccuracyCurve{stats.NewAccuracyCurve(), stats.NewAccuracyCurve(), stats.NewAccuracyCurve()}
	for _, x := range xs {
		if x.Extractor != name || !x.HasConfidence() {
			continue
		}
		n++
		bucket := 0
		switch {
		case x.Confidence >= 2.0/3.0:
			bucket = 2
		case x.Confidence >= 1.0/3.0:
			bucket = 1
		}
		curves[bucket].Add(0, w.IsTrue(x.Triple))
	}
	l, _ := curves[0].Rate(0)
	m, _ := curves[1].Rate(0)
	h, _ := curves[2].Rate(0)
	return l, m, h, n
}

// TestConfidenceShapes verifies the four Figure 21 signatures the suite is
// designed to produce.
func TestConfidenceShapes(t *testing.T) {
	w, _, _, xs := testSetup(t, 90)

	// TXT1: informative — accuracy rises with confidence.
	lo, _, hi, n := confidenceProfile(w, xs, "TXT1")
	if n < 100 {
		t.Skip("not enough TXT1 volume")
	}
	if hi <= lo {
		t.Errorf("TXT1 not informative: lo=%.2f hi=%.2f", lo, hi)
	}

	// DOM2: bimodal but still informative.
	lo, _, hi, n = confidenceProfile(w, xs, "DOM2")
	if n >= 100 && hi <= lo {
		t.Errorf("DOM2 not informative: lo=%.2f hi=%.2f", lo, hi)
	}

	// TBL1: misleading — accuracy peaks at MEDIUM confidence.
	lo, mid, hi, n := confidenceProfile(w, xs, "TBL1")
	if n >= 60 {
		if mid <= lo || mid <= hi {
			t.Errorf("TBL1 not misleading: lo=%.2f mid=%.2f hi=%.2f", lo, mid, hi)
		}
	}

	// ANO: uninformative — high and low confidence accuracy within noise.
	lo, _, hi, n = confidenceProfile(w, xs, "ANO")
	if n >= 100 {
		if diff := hi - lo; diff > 0.2 || diff < -0.2 {
			t.Errorf("ANO suspiciously informative: lo=%.2f hi=%.2f", lo, hi)
		}
	}
}

// TestToxicPatternsRepeatable: the same toxic pattern must produce the same
// wrong triple for the same statement on different pages — the mechanism
// behind Figure 7's many-URL false triples.
func TestToxicPatternsRepeatable(t *testing.T) {
	w, corpus, suite, xs := testSetup(t, 91)
	_ = corpus
	_ = suite
	// Group false triples by (extractor, pattern); toxic patterns show up
	// as patterns whose extractions cluster on few distinct triples over
	// many URLs.
	type key struct{ ext, pattern string }
	urls := map[key]map[string]bool{}
	triples := map[key]map[string]bool{}
	for _, x := range xs {
		if x.Pattern == "" || w.IsTrue(x.Triple) {
			continue
		}
		k := key{x.Extractor, x.Pattern}
		if urls[k] == nil {
			urls[k] = map[string]bool{}
			triples[k] = map[string]bool{}
		}
		urls[k][x.URL] = true
		triples[k][x.Triple.Encode()] = true
	}
	found := false
	for k, u := range urls {
		if len(u) >= 5 && len(triples[k]) <= len(u)/2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no repeatable (toxic-pattern-like) false-triple cluster found")
	}
}

// TestDifficultyDrivesAccuracy: predicates with low extraction difficulty
// should come out more accurate than the hardest ones (Figure 4's driver).
func TestDifficultyDrivesAccuracy(t *testing.T) {
	w, _, _, xs := testSetup(t, 92)
	easy, hard := stats.NewAccuracyCurve(), stats.NewAccuracyCurve()
	for _, x := range xs {
		d := w.Difficulty[x.Triple.Predicate]
		switch {
		case d < 0.15:
			easy.Add(0, w.IsTrue(x.Triple))
		case d > 0.55:
			hard.Add(0, w.IsTrue(x.Triple))
		}
	}
	er, en := easy.Rate(0)
	hr, hn := hard.Rate(0)
	if en < 100 || hn < 100 {
		t.Skip("not enough volume in difficulty extremes")
	}
	if er <= hr {
		t.Errorf("easy-predicate accuracy %.2f not above hard-predicate accuracy %.2f", er, hr)
	}
}
