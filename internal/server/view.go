package server

import (
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
	"kfusion/internal/httpapi"
	"kfusion/internal/kb"
)

// genView is one published generation: the fused result plus read indexes,
// fully immutable after construction. The server swaps views with a single
// atomic pointer store, so readers never take a lock and never observe a
// generation mid-build — a request resolves entirely against the view it
// loaded, even while the next append is compiling. Index slices hold
// positions into res.Triples, whose order is the fusion engine's
// deterministic output order; every response lists triples in that order.
type genView struct {
	generation int
	consumed   int
	res        *fusion.Result
	byItem     map[kb.DataItem][]int32
	bySubject  map[kb.EntityID][]int32
}

// newGenView indexes a recovered or freshly-appended state for serving. A
// state with no result yet (empty store) yields an empty, ready view.
func newGenView(st *genstore.State) *genView {
	v := &genView{
		generation: st.Batches,
		consumed:   st.Consumed,
		res:        st.Result,
		byItem:     map[kb.DataItem][]int32{},
		bySubject:  map[kb.EntityID][]int32{},
	}
	if st.Result == nil {
		return v
	}
	for i, t := range st.Result.Triples {
		item := t.Triple.Item()
		v.byItem[item] = append(v.byItem[item], int32(i))
		v.bySubject[item.Subject] = append(v.bySubject[item.Subject], int32(i))
	}
	return v
}

// triples returns the view's fused rows, nil for an empty generation.
func (v *genView) triples() []fusion.FusedTriple {
	if v.res == nil {
		return nil
	}
	return v.res.Triples
}

// item resolves one data item to its wire response, false if the view holds
// no fused value for it.
func (v *genView) item(subject, predicate string) (*httpapi.ItemResponse, bool) {
	idxs, ok := v.byItem[kb.DataItem{Subject: kb.EntityID(subject), Predicate: kb.PredicateID(predicate)}]
	if !ok {
		return nil, false
	}
	resp := &httpapi.ItemResponse{
		Subject:    subject,
		Predicate:  predicate,
		Generation: v.generation,
		Triples:    make([]httpapi.FusedTriple, 0, len(idxs)),
	}
	for _, i := range idxs {
		resp.Triples = append(resp.Triples, httpapi.FromFused(v.res.Triples[i]))
	}
	return resp, true
}

// triplesQuery filters the view's fused rows. An empty subject scans the
// whole generation; a subject narrows through the bySubject index first.
// Total counts every match; at most limit rows are returned.
func (v *genView) triplesQuery(subject, predicate string, minProb float64, limit int) *httpapi.TriplesResponse {
	resp := &httpapi.TriplesResponse{Generation: v.generation}
	match := func(t fusion.FusedTriple) bool {
		if predicate != "" && string(t.Triple.Predicate) != predicate {
			return false
		}
		return t.Probability >= minProb
	}
	add := func(t fusion.FusedTriple) {
		resp.Total++
		if len(resp.Triples) < limit {
			resp.Triples = append(resp.Triples, httpapi.FromFused(t))
		}
	}
	if subject != "" {
		for _, i := range v.bySubject[kb.EntityID(subject)] {
			if t := v.res.Triples[i]; match(t) {
				add(t)
			}
		}
		return resp
	}
	for _, t := range v.triples() {
		if match(t) {
			add(t)
		}
	}
	return resp
}
