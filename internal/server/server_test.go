package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kfusion/client"
	"kfusion/internal/exper"
	"kfusion/internal/faultfs"
	"kfusion/internal/fusion"
	"kfusion/internal/httpapi"
)

// newTestServer builds a hydrated in-memory server and mounts it on an
// httptest listener. Config overrides apply on top of the test defaults.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{FS: faultfs.NewMem(), Method: "popaccu", Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hydrate(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// decodeError reads a non-2xx response and asserts its JSON error shape.
func decodeError(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var er httpapi.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if er.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", er.Code, wantCode, er.Message)
	}
}

func TestHealthzAlwaysLive(t *testing.T) {
	s, err := New(Config{FS: faultfs.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// No Hydrate: liveness must not depend on readiness.
	resp, err := http.Get(ts.URL + httpapi.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before hydration = %d, want 200", resp.StatusCode)
	}
}

func TestDataRoutesNotReadyBeforeHydration(t *testing.T) {
	s, err := New(Config{FS: faultfs.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{
		httpapi.PathReadyz,
		httpapi.ItemPath("/m/1", "/p"),
		httpapi.PathTriples,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		decodeError(t, resp, http.StatusServiceUnavailable, httpapi.CodeNotReady)
	}
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json",
		strings.NewReader(`{"extractions":[{"s":"/m/1","p":"/p","o":"s:v","extractor":"X","url":"u","site":"s","conf":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusServiceUnavailable, httpapi.CodeNotReady)
}

func TestUnknownRouteIsJSON404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v2/everything")
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusNotFound, httpapi.CodeNotFound)
}

func TestMalformedAppendJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(`{"extractions": [`))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusBadRequest, httpapi.CodeBadBatch)
}

func TestAppendBadObjectTag(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"extractions":[{"s":"/m/1","p":"/p","o":"not-a-tagged-object","extractor":"X","url":"u","site":"s","conf":1}]}`
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusBadRequest, httpapi.CodeBadBatch)
}

func TestAppendEmptyBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(`{"extractions":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusBadRequest, httpapi.CodeBadBatch)
}

func TestAppendOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBody = 512 })
	var sb strings.Builder
	sb.WriteString(`{"extractions":[`)
	for i := 0; sb.Len() < 4096; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"s":"/m/%d","p":"/p","o":"s:v","extractor":"X","url":"u","site":"s","conf":1}`, i)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusRequestEntityTooLarge, httpapi.CodeBadBatch)
}

func TestBadItemIDAndQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + httpapi.PathItems + "no-separator")
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusBadRequest, httpapi.CodeBadRequest)

	resp, err = http.Get(ts.URL + httpapi.PathTriples + "?min_prob=high")
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusBadRequest, httpapi.CodeBadRequest)
}

// TestAppendWhileAppending pins the single-writer contract: a POST arriving
// while another append holds the writer slot gets 409 busy, not a queue.
func TestAppendWhileAppending(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.mu.Lock() // stand in for an in-flight append holding the writer slot
	defer s.mu.Unlock()
	body := `{"extractions":[{"s":"/m/1","p":"/p","o":"s:v","extractor":"X","url":"u","site":"s","conf":1}]}`
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusConflict, httpapi.CodeBusy)
}

// TestRoundTripMatchesDatasetFuse is the bit-for-bit read contract: fused
// posteriors served over HTTP equal the in-process Dataset.Fuse output
// exactly — same rows, same order, same float64 bits.
func TestRoundTripMatchesDatasetFuse(t *testing.T) {
	ds := exper.SharedDataset(exper.ScaleSmall, 42)
	cfg := fusion.PopAccuConfig()
	want := ds.Fuse("server-roundtrip-popaccu", cfg)

	_, ts := newTestServer(t, nil)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	// One batch = the whole feed, so the server's cold fuse runs the same
	// full-round EM as Dataset.Fuse.
	ar, err := c.Append(ctx, ds.Extractions)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Generation != 1 || ar.Triples != len(want.Triples) {
		t.Fatalf("append published generation %d with %d triples, want 1 with %d",
			ar.Generation, ar.Triples, len(want.Triples))
	}

	got, err := c.Triples(ctx, client.TriplesQuery{Limit: len(want.Triples) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != len(want.Triples) || len(got.Triples) != len(want.Triples) {
		t.Fatalf("served %d/%d triples, want %d", len(got.Triples), got.Total, len(want.Triples))
	}
	for i, w := range want.Triples {
		g := got.Triples[i]
		if g.Subject != string(w.Triple.Subject) || g.Predicate != string(w.Triple.Predicate) ||
			g.Object != w.Triple.Object.String() {
			t.Fatalf("row %d is (%s,%s,%s), want (%s,%s,%s)",
				i, g.Subject, g.Predicate, g.Object, w.Triple.Subject, w.Triple.Predicate, w.Triple.Object)
		}
		if math.Float64bits(g.Probability) != math.Float64bits(w.Probability) {
			t.Fatalf("row %d probability %v != %v (bit-for-bit)", i, g.Probability, w.Probability)
		}
		if g.Predicted != w.Predicted || g.Provenances != w.Provenances || g.Extractors != w.Extractors {
			t.Fatalf("row %d metadata diverged: got %+v want %+v", i, g, w)
		}
	}

	// Spot-check the item route against the same result.
	w0 := want.Triples[0]
	item, err := c.Item(ctx, string(w0.Triple.Subject), string(w0.Triple.Predicate))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range item.Triples {
		if g.Object == w0.Triple.Object.String() {
			found = true
			if math.Float64bits(g.Probability) != math.Float64bits(w0.Probability) {
				t.Fatalf("item route probability %v != %v", g.Probability, w0.Probability)
			}
		}
	}
	if !found {
		t.Fatalf("item route lost value %s of %s", w0.Triple.Object, w0.Triple.Item())
	}

	// A value the generation does not hold is a typed not-found.
	_, err = c.Item(ctx, "/m/does-not-exist", "/p")
	if !errors.Is(err, httpapi.ErrNotFound) {
		t.Fatalf("missing item error = %v, want ErrNotFound", err)
	}
}

// TestCrashRestartServesIdenticalGeneration is the restart contract: a
// server killed after appends (journal durable, no snapshot, no clean
// Close) and reopened on the same state directory serves the identical
// generation — the read responses are byte-for-byte equal.
func TestCrashRestartServesIdenticalGeneration(t *testing.T) {
	ds := exper.SharedDataset(exper.ScaleSmall, 42)
	xs := ds.Extractions
	cut := len(xs) / 2

	mem := faultfs.NewMem()
	// SnapshotEvery is set beyond the append count, so durability rests on
	// the journal alone — the crash-recovery path under test.
	a, tsA := newTestServer(t, func(c *Config) { c.FS = mem; c.SnapshotEvery = 1000 })
	if _, err := a.Append(xs[:cut]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(xs[cut:]); err != nil {
		t.Fatal(err)
	}

	// Clone the state as the moment of the kill; server A is deliberately
	// never Closed (no final snapshot).
	b, tsB := newTestServer(t, func(c *Config) { c.FS = mem.Clone(); c.SnapshotEvery = 1000 })

	readAll := func(ts *httptest.Server) []byte {
		resp, err := http.Get(ts.URL + httpapi.PathTriples + "?limit=1000000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("triples read = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	bodyA, bodyB := readAll(tsA), readAll(tsB)
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("restarted server serves a different generation:\n A: %d bytes\n B: %d bytes", len(bodyA), len(bodyB))
	}

	stA, stB := a.Status(), b.Status()
	if *stA != *stB {
		t.Fatalf("status diverged after restart: %+v vs %+v", stA, stB)
	}
	if stB.Generation != 2 || !stB.Ready {
		t.Fatalf("restarted server at generation %d (ready=%v), want 2 (ready)", stB.Generation, stB.Ready)
	}
}

// TestAppendAfterCloseIsNotReady pins the drain contract: once Close ran,
// the write path reports not ready instead of touching a closed store.
func TestAppendAfterCloseIsNotReady(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	body := `{"extractions":[{"s":"/m/1","p":"/p","o":"s:v","extractor":"X","url":"u","site":"s","conf":1}]}`
	resp, err := http.Post(ts.URL+httpapi.PathAppend, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	decodeError(t, resp, http.StatusServiceUnavailable, httpapi.CodeNotReady)
}

// TestTriplesQueryFilters exercises subject/predicate/min_prob/limit.
func TestTriplesQueryFilters(t *testing.T) {
	_, ts := newTestServer(t, nil)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	ds := exper.SharedDataset(exper.ScaleSmall, 42)
	if _, err := c.Append(ctx, ds.Extractions); err != nil {
		t.Fatal(err)
	}
	all, err := c.Triples(ctx, client.TriplesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Total == 0 {
		t.Fatal("no triples served")
	}
	first := all.Triples[0]

	bySubj, err := c.Triples(ctx, client.TriplesQuery{Subject: first.Subject})
	if err != nil {
		t.Fatal(err)
	}
	if bySubj.Total == 0 || bySubj.Total > all.Total {
		t.Fatalf("subject filter returned %d of %d", bySubj.Total, all.Total)
	}
	for _, g := range bySubj.Triples {
		if g.Subject != first.Subject {
			t.Fatalf("subject filter leaked %q", g.Subject)
		}
	}

	limited, err := c.Triples(ctx, client.TriplesQuery{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Triples) != 1 || limited.Total != all.Total {
		t.Fatalf("limit=1 returned %d rows with total %d, want 1 with %d", len(limited.Triples), limited.Total, all.Total)
	}

	confident, err := c.Triples(ctx, client.TriplesQuery{MinProb: 0.9, HasMinProb: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range confident.Triples {
		if g.Probability < 0.9 {
			t.Fatalf("min_prob filter leaked probability %v", g.Probability)
		}
	}
	if confident.Total >= all.Total {
		t.Fatalf("min_prob=0.9 kept %d of %d rows; filter had no effect", confident.Total, all.Total)
	}
}

// TestMethodMismatchRefusesState pins the hydration check: a state
// directory built by one method must not be served as another. The method
// binding travels in snapshots (the journal is method-agnostic), so the
// first server closes cleanly to write one.
func TestMethodMismatchRefusesState(t *testing.T) {
	mem := faultfs.NewMem()
	a, _ := newTestServer(t, func(c *Config) { c.FS = mem; c.Method = "vote" })
	ds := exper.SharedDataset(exper.ScaleSmall, 42)
	if _, err := a.Append(ds.Extractions[:100]); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{FS: mem.Clone(), Method: "popaccu"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Hydrate(); err == nil || !strings.Contains(err.Error(), "method") {
		t.Fatalf("hydrating vote state as popaccu: err = %v, want method mismatch", err)
	}
}
