// Package server implements kfserved: a long-running fusion service that
// owns the live compiled-graph chain and serves fused posteriors over a
// versioned JSON API. The wire contract (routes, DTOs, typed errors) lives
// in internal/httpapi, shared with the typed client in kfusion/client.
//
// # Lifecycle
//
// New validates the configuration and builds the router; Hydrate opens the
// generation store (genstore.Open + journal replay through the method's
// apply chain — the restart path is load-and-replay, never recompile) and
// publishes the recovered generation; Close drains nothing itself (callers
// drain HTTP via http.Server.Shutdown first) but takes the writer lock,
// waits out an in-flight append, writes a final snapshot and closes the
// store. Until Hydrate completes, /readyz reports 503 and every data route
// returns the not_ready error; /healthz is live from the start.
//
// # Generation visibility
//
// Readers never lock: the current generation is an immutable genView behind
// one atomic pointer. An append journals the batch (durability point),
// applies it (incremental graph Append + warm EM), then publishes the new
// view with a single pointer swap — a reader holds whichever generation it
// loaded for its whole request, and two reads inside one request never mix
// generations. Appends are single-writer: a second concurrent append is
// rejected with the busy error rather than queued, so the caller owns retry
// policy and the handler never blocks the drain path.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"kfusion/internal/extract"
	"kfusion/internal/faultfs"
	"kfusion/internal/fusion"
	"kfusion/internal/genstore"
	"kfusion/internal/httpapi"
)

// Config parameterizes a Server.
type Config struct {
	// StateDir is the durable state directory (genstore journal +
	// snapshots). Required unless FS is set.
	StateDir string
	// FS overrides the state filesystem (tests and in-memory benchmarks
	// inject faultfs.Mem here). When set, StateDir is ignored.
	FS faultfs.FS
	// Method is the fusion method the daemon serves: vote, accu, popaccu,
	// popaccu+unsup or twolayer. Default popaccu.
	Method string
	// Granularity overrides the claim-layer provenance granularity; the
	// zero value keeps the method preset.
	Granularity fusion.Granularity
	// SiteLevel keys twolayer sources at site level.
	SiteLevel bool
	// Workers bounds fusion/compile parallelism (0 = all cores).
	Workers int
	// WarmRounds is the EM round budget of each post-cold append (online
	// EM; default 1). The first batch always cold-fuses at the method's
	// full round cap.
	WarmRounds int
	// SnapshotEvery snapshots the store after this many appends (default
	// 16; the journal makes every append durable regardless — snapshots
	// only bound restart replay time). 0 snapshots only on Close.
	SnapshotEvery int
	// MaxBody caps the append request body in bytes (default 64 MiB).
	MaxBody int64
	// Logf receives operational log lines (degradations, snapshot
	// failures). Nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Method == "" {
		out.Method = "popaccu"
	}
	if out.WarmRounds == 0 {
		out.WarmRounds = 1
	}
	if out.SnapshotEvery == 0 {
		out.SnapshotEvery = 16
	}
	if out.MaxBody == 0 {
		out.MaxBody = 64 << 20
	}
	if out.FS == nil && out.StateDir == "" {
		return out, fmt.Errorf("server: config needs a StateDir (or an injected FS)")
	}
	return out, nil
}

// Server is the kfserved daemon core, independent of any listener: Handler
// exposes the API, so tests mount it on httptest and cmd/kfserved on a real
// http.Server.
type Server struct {
	cfg     Config
	drv     *driver
	handler http.Handler

	// current is the published generation; nil until Hydrate completes.
	// Readers load it exactly once per request.
	current atomic.Pointer[genView]

	// mu is the single-writer lock: appends TryLock it (busy on
	// contention), Hydrate and Close take it. Readers never touch it.
	mu        sync.Mutex
	store     *genstore.Store
	st        *genstore.State
	sinceSnap int
	closed    bool
}

// New validates cfg and builds the server. The store is not opened yet:
// call Hydrate (synchronously or in the background) before the data routes
// can answer.
func New(cfg Config) (*Server, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	drv, err := newDriver(&full)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: full, drv: drv}
	s.handler = newRouter(s)
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Ready reports whether hydration has completed and a generation is
// published.
func (s *Server) Ready() bool { return s.current.Load() != nil }

// Hydrate opens (or creates) the generation store and publishes the
// recovered generation: newest valid snapshot plus journal replay through
// the method's apply chain — by the append contract, bit-identical to the
// uncrashed process's state. Degradations are logged, never fatal; a state
// directory built by a different method or granularity is.
func (s *Server) Hydrate() error {
	fsys := s.cfg.FS
	if fsys == nil {
		var err error
		fsys, err = faultfs.NewOS(s.cfg.StateDir)
		if err != nil {
			return err
		}
	}
	store, st, err := genstore.OpenFS(fsys, s.drv.apply)
	if err != nil {
		return err
	}
	for _, d := range store.Degradations() {
		s.logf("state recovery: %s", d)
	}
	if err := s.drv.check(st); err != nil {
		store.Close()
		return err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		store.Close()
		return fmt.Errorf("server: hydrate after Close")
	}
	if s.store != nil {
		s.mu.Unlock()
		store.Close()
		return fmt.Errorf("server: already hydrated")
	}
	s.store, s.st = store, st
	s.mu.Unlock()

	s.current.Store(newGenView(st))
	s.logf("hydrated generation %d (%d extractions consumed, %d fused triples)",
		st.Batches, st.Consumed, len(newGenView(st).triples()))
	return nil
}

// Append folds one extraction batch into the live chain: journal (the
// durability point — a crash after this replays the batch on restart),
// incremental graph Append plus warm EM via the method driver, then an
// atomic publish of the new generation. Single-writer: a concurrent append
// returns ErrBusy instead of queuing. A failed periodic snapshot is logged
// and does not fail the append — the journal already holds the batch.
func (s *Server) Append(batch []extract.Extraction) (*httpapi.AppendResponse, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", httpapi.ErrBadBatch)
	}
	if !s.mu.TryLock() {
		return nil, fmt.Errorf("%w: another append holds the writer slot", httpapi.ErrBusy)
	}
	defer s.mu.Unlock()
	if s.store == nil || s.closed {
		return nil, fmt.Errorf("%w: hydration has not completed", httpapi.ErrNotReady)
	}
	if err := s.store.Append(s.st, batch); err != nil {
		return nil, err
	}
	s.sinceSnap++
	if s.cfg.SnapshotEvery > 0 && s.sinceSnap >= s.cfg.SnapshotEvery {
		if err := s.store.Snapshot(s.st); err != nil {
			s.logf("periodic snapshot failed (journal still durable): %v", err)
		} else {
			s.sinceSnap = 0
		}
	}
	v := newGenView(s.st)
	s.current.Store(v)
	return &httpapi.AppendResponse{
		Generation: v.generation,
		Added:      len(batch),
		Triples:    len(v.triples()),
		Rounds:     s.st.Result.Rounds,
	}, nil
}

// Close takes the writer lock (waiting out an in-flight append), writes a
// final snapshot and closes the store. Callers drain HTTP first
// (http.Server.Shutdown); after Close every data route reports not ready.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.store == nil {
		return nil
	}
	err := s.store.Snapshot(s.st)
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	s.store = nil
	return err
}

// view returns the published generation, or the typed not-ready error
// before hydration.
func (s *Server) view() (*genView, error) {
	v := s.current.Load()
	if v == nil {
		return nil, fmt.Errorf("%w: hydration has not completed", httpapi.ErrNotReady)
	}
	return v, nil
}

// Status summarizes the published generation for /v1/status.
func (s *Server) Status() *httpapi.StatusResponse {
	resp := &httpapi.StatusResponse{Method: s.drv.name}
	if v := s.current.Load(); v != nil {
		resp.Ready = true
		resp.Generation = v.generation
		resp.Consumed = v.consumed
		resp.Triples = len(v.triples())
	}
	return resp
}
